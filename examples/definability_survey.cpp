// definability_survey: how often is a random relation definable, per
// query language?
//
// Samples random data graphs and random relations, runs all four checkers
// on each, and prints the definability rate per language plus the observed
// strict-inclusion counts. This makes the paper's expressiveness hierarchy
// (RPQ ⊊ RDPQ_= ⊊ RDPQ_mem ⊊ UCRDPQ on the definability side) visible
// statistically: every definable-at-level-L instance is definable at every
// higher level, and the gaps are witnessed by actual samples.
//
//   $ ./definability_survey [num_samples] [seed]

#include <cstdio>
#include <cstdlib>

#include "definability/krem_definability.h"
#include "definability/ree_definability.h"
#include "definability/rpq_definability.h"
#include "definability/ucrdpq_definability.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  using namespace gqd;

  std::size_t samples = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60;
  std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  struct Tally {
    std::size_t definable = 0;
    std::size_t undecided = 0;
  };
  Tally rpq, rem, ree, ucrdpq;
  std::size_t gap_ree_minus_rpq = 0;   // REE-definable but not RPQ
  std::size_t gap_rem_minus_ree = 0;   // REM-definable but not REE
  std::size_t gap_ucrdpq_minus_rem = 0;
  std::size_t hierarchy_violations = 0;

  KRemDefinabilityOptions rem_options;
  rem_options.max_tuples = 20'000;

  for (std::size_t i = 0; i < samples; i++) {
    DataGraph g = RandomDataGraph({.num_nodes = 4,
                                   .num_labels = 2,
                                   .num_data_values = 2,
                                   .edge_percent = 25,
                                   .seed = seed * 1000 + i});
    BinaryRelation s = RandomRelation(4, 15, seed * 2000 + i);

    auto rpq_result = CheckRpqDefinability(g, s, rem_options);
    auto ree_result = CheckReeDefinability(g, s);
    auto rem_result = CheckRemDefinability(g, s, rem_options);  // δ = 2
    auto ucrdpq_result = CheckUcrdpqDefinability(g, s);
    if (!rpq_result.ok() || !ree_result.ok() || !rem_result.ok() ||
        !ucrdpq_result.ok()) {
      std::fprintf(stderr, "checker error on sample %zu\n", i);
      return 1;
    }
    auto classify = [](DefinabilityVerdict v, Tally* tally) {
      if (v == DefinabilityVerdict::kDefinable) {
        tally->definable++;
        return 1;
      }
      if (v == DefinabilityVerdict::kBudgetExhausted) {
        tally->undecided++;
        return -1;
      }
      return 0;
    };
    int d_rpq = classify(rpq_result.value().verdict, &rpq);
    int d_ree = classify(ree_result.value().verdict, &ree);
    int d_rem = classify(rem_result.value().verdict, &rem);
    int d_ucrdpq = classify(ucrdpq_result.value().verdict, &ucrdpq);

    if (d_ree == 1 && d_rpq == 0) {
      gap_ree_minus_rpq++;
    }
    if (d_rem == 1 && d_ree == 0) {
      gap_rem_minus_ree++;
    }
    if (d_ucrdpq == 1 && d_rem == 0) {
      gap_ucrdpq_minus_rem++;
    }
    // Hierarchy check: definable at a lower level forces definable above
    // (ignoring undecided verdicts).
    if ((d_rpq == 1 && d_ree == 0) || (d_ree == 1 && d_rem == 0) ||
        (d_rem == 1 && d_ucrdpq == 0)) {
      hierarchy_violations++;
    }
  }

  std::printf("samples: %zu (4-node graphs, δ = 2, |Σ| = 2)\n\n", samples);
  std::printf("%-22s %10s %10s\n", "language", "definable", "undecided");
  auto row = [&](const char* name, const Tally& tally) {
    std::printf("%-22s %9zu%% %10zu\n", name,
                tally.definable * 100 / samples, tally.undecided);
  };
  row("RPQ", rpq);
  row("RDPQ_= (REE)", ree);
  row("RDPQ_mem (REM, k=δ)", rem);
  row("UCRDPQ", ucrdpq);
  std::printf("\nstrict gaps observed:\n");
  std::printf("  REE-definable but not RPQ:    %zu\n", gap_ree_minus_rpq);
  std::printf("  REM-definable but not REE:    %zu\n", gap_rem_minus_ree);
  std::printf("  UCRDPQ-definable but not REM: %zu\n",
              gap_ucrdpq_minus_rem);
  std::printf("hierarchy violations (must be 0): %zu\n",
              hierarchy_violations);
  return hierarchy_violations == 0 ? 0 : 2;
}
