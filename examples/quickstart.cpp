// Quickstart: the paper's running example end to end.
//
// Builds the Figure-1 data graph, evaluates the three queries of
// Example 12 (an RPQ, an REM query and an REE query), then runs the
// definability checkers on S1, S2, S3 and prints synthesized defining
// queries where they exist.
//
//   $ ./quickstart

#include <cstdio>
#include <string>

#include "definability/krem_definability.h"
#include "definability/ree_definability.h"
#include "definability/rpq_definability.h"
#include "definability/ucrdpq_definability.h"
#include "eval/explain.h"
#include "eval/rem_eval.h"
#include "eval/ree_eval.h"
#include "eval/rpq_eval.h"
#include "graph/examples.h"
#include "graph/serialization.h"
#include "rem/parser.h"
#include "ree/parser.h"
#include "regex/parser.h"
#include "synthesis/synthesis.h"

namespace {

void PrintVerdict(const char* language, const char* relation,
                  gqd::DefinabilityVerdict verdict) {
  std::printf("  %-28s %-4s -> %s\n", language, relation,
              gqd::DefinabilityVerdictToString(verdict));
}

}  // namespace

int main() {
  using namespace gqd;

  DataGraph graph = Figure1Graph();
  std::printf("== The Figure-1 data graph ==\n%s\n",
              WriteGraphText(graph).c_str());

  // --- Example 12: evaluate the three queries ----------------------------
  RegexPtr q1 = ParseRegex("a a a").ValueOrDie();
  RemPtr q2 = ParseRem("$r1. a $r2. a[r1=] a[r2=]").ValueOrDie();
  ReePtr q3 = ParseRee("(a (a)= a)=").ValueOrDie();

  std::printf("== Example 12: query evaluation ==\n");
  std::printf("Q1 = x -[%s]-> y (RPQ):\n  S1 = %s\n", RegexToString(q1).c_str(),
              EvaluateRpq(graph, q1).ToString(graph).c_str());
  std::printf("Q2 = x -[%s]-> y (RDPQ_mem):\n  S2 = %s\n",
              RemToString(q2).c_str(),
              EvaluateRem(graph, q2).ToString(graph).c_str());
  std::printf("Q3 = x -[%s]-> y (RDPQ_=):\n  S3 = %s\n\n",
              ReeToString(q3).c_str(),
              EvaluateRee(graph, q3).ToString(graph).c_str());

  // --- Definability: which language can define which relation? -----------
  std::printf("== Definability of S1, S2, S3 ==\n");
  struct NamedRelation {
    const char* name;
    BinaryRelation relation;
  };
  NamedRelation relations[] = {{"S1", Figure1S1(graph)},
                               {"S2", Figure1S2(graph)},
                               {"S3", Figure1S3(graph)}};
  for (const auto& [name, s] : relations) {
    PrintVerdict("RPQ (regex)", name,
                 CheckRpqDefinability(graph, s).ValueOrDie().verdict);
    PrintVerdict("RDPQ_mem, 1 register", name,
                 CheckKRemDefinability(graph, s, 1).ValueOrDie().verdict);
    PrintVerdict("RDPQ_mem, 2 registers", name,
                 CheckKRemDefinability(graph, s, 2).ValueOrDie().verdict);
    PrintVerdict("RDPQ_= (REE)", name,
                 CheckReeDefinability(graph, s).ValueOrDie().verdict);
    PrintVerdict("UCRDPQ", name,
                 CheckUcrdpqDefinability(graph, s).ValueOrDie().verdict);
    std::printf("\n");
  }

  // --- Synthesis: extract defining queries -------------------------------
  std::printf("== Synthesized defining queries ==\n");
  auto rpq = SynthesizeRpqQuery(graph, Figure1S1(graph));
  if (rpq.ok() && rpq.value().has_value()) {
    std::printf("S1 as an RPQ:  %s\n", RegexToString(*rpq.value()).c_str());
  }
  auto rem = SynthesizeKRemQuery(graph, Figure1S2(graph), 2);
  if (rem.ok() && rem.value().has_value()) {
    std::printf("S2 as a 2-REM: %s\n", RemToString(*rem.value()).c_str());
  }
  auto ree = SynthesizeReeQuery(graph, Figure1S3(graph));
  if (ree.ok() && ree.value().has_value()) {
    std::printf("S3 as an REE:  %s\n", ReeToString(*ree.value()).c_str());
  }

  // --- Explanations: concrete witness paths ------------------------------
  std::printf("\n== Witness paths ==\n");
  Figure1Nodes n = Figure1NodeIds(graph);
  auto witness = ExplainRemPair(graph, q2, n.v1, n.v4);
  if (witness.has_value()) {
    std::printf("(v1, v4) ∈ Q2(G) because of the data path  %s\n",
                witness->data_path.ToString(graph).c_str());
  }
  auto ree_witness = ExplainReePair(graph, q3, n.v1, n.v3);
  if (ree_witness.has_value()) {
    std::printf("(v1, v3) ∈ Q3(G) because of the data path  %s\n",
                ree_witness->data_path.ToString(graph).c_str());
  }
  return 0;
}
