// definability_explorer: a command-line front end for the whole library.
//
// Usage:
//   definability_explorer <graph-file> <relation-file> [--k <max-registers>]
//
// The graph file uses the `node`/`edge` text format, the relation file the
// `pair` format (see graph/serialization.h). The tool evaluates every
// definability checker against the relation, prints verdicts, and
// synthesizes defining queries where they exist.
//
// With no arguments it runs on the built-in Figure-1 graph and S2.

#include <cstdio>
#include <cstring>
#include <string>

#include "definability/krem_definability.h"
#include "definability/ree_definability.h"
#include "definability/rpq_definability.h"
#include "definability/ucrdpq_definability.h"
#include "graph/examples.h"
#include "graph/serialization.h"
#include "synthesis/synthesis.h"

int main(int argc, char** argv) {
  using namespace gqd;

  DataGraph graph;
  BinaryRelation relation;
  std::size_t max_k = 2;

  if (argc >= 3) {
    auto graph_text = ReadFileToString(argv[1]);
    if (!graph_text.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   graph_text.status().ToString().c_str());
      return 1;
    }
    auto parsed_graph = ReadGraphText(graph_text.value());
    if (!parsed_graph.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   parsed_graph.status().ToString().c_str());
      return 1;
    }
    graph = std::move(parsed_graph).value();
    auto relation_text = ReadFileToString(argv[2]);
    if (!relation_text.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   relation_text.status().ToString().c_str());
      return 1;
    }
    auto parsed_relation = ReadRelationText(graph, relation_text.value());
    if (!parsed_relation.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   parsed_relation.status().ToString().c_str());
      return 1;
    }
    relation = std::move(parsed_relation).value();
    for (int i = 3; i + 1 < argc; i++) {
      if (std::strcmp(argv[i], "--k") == 0) {
        max_k = static_cast<std::size_t>(std::stoul(argv[i + 1]));
      }
    }
  } else {
    std::printf("(no arguments: using the built-in Figure-1 graph and S2)\n");
    graph = Figure1Graph();
    relation = Figure1S2(graph);
  }

  std::printf("graph: %zu nodes, %zu edges, |Σ| = %zu, δ = %zu\n",
              graph.NumNodes(), graph.NumEdges(), graph.NumLabels(),
              graph.NumDataValues());
  std::printf("relation: %s\n\n", relation.ToString(graph).c_str());

  // RPQ.
  auto rpq = CheckRpqDefinability(graph, relation);
  if (!rpq.ok()) {
    std::fprintf(stderr, "RPQ checker error: %s\n",
                 rpq.status().ToString().c_str());
  } else {
    std::printf("RPQ:                 %s",
                DefinabilityVerdictToString(rpq.value().verdict));
    if (rpq.value().verdict == DefinabilityVerdict::kDefinable) {
      std::printf("   query: %s",
                  RegexToString(RegexFromWitnesses(rpq.value(),
                                                   graph.labels()))
                      .c_str());
    }
    std::printf("\n");
  }

  // k-REM for k = 0..max_k.
  for (std::size_t k = 0; k <= max_k; k++) {
    auto krem = CheckKRemDefinability(graph, relation, k);
    if (!krem.ok()) {
      std::fprintf(stderr, "%zu-REM checker error: %s\n", k,
                   krem.status().ToString().c_str());
      continue;
    }
    std::printf("RDPQ_mem (k = %zu):    %s", k,
                DefinabilityVerdictToString(krem.value().verdict));
    if (krem.value().verdict == DefinabilityVerdict::kDefinable) {
      auto query = SynthesizeKRemQuery(graph, relation, k);
      if (query.ok() && query.value().has_value()) {
        std::printf("   query: %s", RemToString(*query.value()).c_str());
      }
    }
    std::printf("\n");
  }

  // REE.
  auto ree = CheckReeDefinability(graph, relation);
  if (!ree.ok()) {
    std::fprintf(stderr, "REE checker error: %s\n",
                 ree.status().ToString().c_str());
  } else {
    std::printf("RDPQ_= (REE):        %s",
                DefinabilityVerdictToString(ree.value().verdict));
    if (ree.value().verdict == DefinabilityVerdict::kDefinable &&
        ree.value().defining_expression != nullptr) {
      std::printf("   query: %s",
                  ReeToString(ree.value().defining_expression).c_str());
    }
    std::printf("   (monoid: %zu relations, %zu levels)",
                ree.value().monoid_size, ree.value().levels_used);
    std::printf("\n");
  }

  // UCRDPQ.
  auto ucrdpq = CheckUcrdpqDefinability(graph, relation);
  if (!ucrdpq.ok()) {
    std::fprintf(stderr, "UCRDPQ checker error: %s\n",
                 ucrdpq.status().ToString().c_str());
  } else {
    std::printf("UCRDPQ:              %s   (%zu homomorphism searches)\n",
                DefinabilityVerdictToString(ucrdpq.value().verdict),
                ucrdpq.value().seeds_tried);
    if (ucrdpq.value().violating_homomorphism.has_value()) {
      std::printf("  violating homomorphism maps");
      const NodeTuple& t = *ucrdpq.value().violated_tuple;
      std::printf(" (");
      for (std::size_t i = 0; i < t.size(); i++) {
        std::printf("%s%s", i ? "," : "", graph.NodeName(t[i]).c_str());
      }
      std::printf(") to (");
      for (std::size_t i = 0; i < t.size(); i++) {
        std::printf(
            "%s%s", i ? "," : "",
            graph.NodeName(
                     (*ucrdpq.value().violating_homomorphism)[t[i]])
                .c_str());
      }
      std::printf(") ∉ S\n");
    }
  }
  return 0;
}
