// The coNP lower bound, executably: 3-CNF unsatisfiability as a
// definability question (Theorem 35 / Figure 3 of the paper).
//
// Reads a DIMACS file (or uses a built-in pigeonhole-style formula), builds
// the Figure-3 data graph and target relation S, and shows that
//   F unsatisfiable  ⟺  S is UCRDPQ-definable
// by running both the DPLL solver and the homomorphism-based definability
// checker. For satisfiable formulas it prints the violating homomorphism
// that Lemma 34 promises.
//
//   $ ./sat_definability [formula.cnf]

#include <cstdio>
#include <string>

#include "definability/ucrdpq_definability.h"
#include "graph/serialization.h"
#include "reductions/cnf.h"
#include "reductions/sat_reduction.h"

int main(int argc, char** argv) {
  using namespace gqd;

  CnfFormula formula;
  if (argc > 1) {
    auto text = ReadFileToString(argv[1]);
    if (!text.ok()) {
      std::fprintf(stderr, "error: %s\n", text.status().ToString().c_str());
      return 1;
    }
    auto parsed = ParseDimacs(text.value());
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
      return 1;
    }
    auto three = parsed.value().ToThreeCnf();
    if (!three.ok()) {
      std::fprintf(stderr, "error: %s\n", three.status().ToString().c_str());
      return 1;
    }
    formula = three.value();
  } else {
    // (x1 ∨ x2 ∨ x3) ∧ (¬x1 ∨ ¬x2 ∨ ¬x3) ∧ (x1 ∨ ¬x2 ∨ x3): satisfiable.
    formula.num_variables = 3;
    formula.clauses = {{1, 2, 3}, {-1, -2, -3}, {1, -2, 3}};
  }

  std::printf("== Formula ==\n%s\n", WriteDimacs(formula).c_str());

  auto sat = SolveCnf(formula);
  if (!sat.ok()) {
    std::fprintf(stderr, "DPLL error: %s\n", sat.status().ToString().c_str());
    return 1;
  }
  std::printf("DPLL verdict: %s\n",
              sat.value().has_value() ? "SATISFIABLE" : "UNSATISFIABLE");

  auto reduction = BuildSatReduction(formula);
  if (!reduction.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 reduction.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== Figure-3 reduction graph ==\n");
  std::printf("nodes: %zu, edges: %zu, |S| = %zu (unary)\n",
              reduction.value().graph.NumNodes(),
              reduction.value().graph.NumEdges(),
              reduction.value().relation.size());

  auto definable = CheckUcrdpqDefinability(reduction.value().graph,
                                           reduction.value().relation);
  if (!definable.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 definable.status().ToString().c_str());
    return 1;
  }
  std::printf("UCRDPQ-definability of S: %s  (%zu homomorphism searches)\n",
              DefinabilityVerdictToString(definable.value().verdict),
              definable.value().seeds_tried);

  bool agree = (definable.value().verdict ==
                DefinabilityVerdict::kDefinable) ==
               !sat.value().has_value();
  std::printf("\nTheorem 35 check: F unsat ⟺ S definable ... %s\n",
              agree ? "HOLDS" : "VIOLATED");

  if (definable.value().violating_homomorphism.has_value()) {
    const DataGraph& g = reduction.value().graph;
    const NodeMapping& h = *definable.value().violating_homomorphism;
    std::printf("\nViolating homomorphism (non-identity part):\n");
    for (NodeId v = 0; v < g.NumNodes(); v++) {
      if (h[v] != v) {
        std::printf("  h(%s) = %s\n", g.NodeName(v).c_str(),
                    g.NodeName(h[v]).c_str());
      }
    }
  }
  return agree ? 0 : 2;
}
