// Schema-mapping extraction: the paper's motivating scenario (Section 1).
//
// A social-network data graph labels each member node with their favourite
// movie and links members by `friend` edges. A target relation `movieLink`
// should relate members with the same favourite movie who are connected by
// a chain of friends. Given only the graph and the example relation, this
// program *derives* the mapping: it checks which query language can define
// movieLink and synthesizes the defining query — exactly the definability
// workflow the paper motivates.
//
//   $ ./schema_mapping

#include <cstdio>

#include "definability/krem_definability.h"
#include "definability/ree_definability.h"
#include "definability/rpq_definability.h"
#include "eval/rem_eval.h"
#include "eval/ree_eval.h"
#include "graph/data_graph.h"
#include "graph/serialization.h"
#include "synthesis/simplify.h"
#include "synthesis/synthesis.h"

int main() {
  using namespace gqd;

  // The social network: nodes carry favourite movies as data values.
  DataGraph network;
  network.AddLabel("friend");
  struct Member {
    const char* name;
    const char* movie;
  };
  Member members[] = {
      {"ann", "Alien"},   {"bob", "Brazil"}, {"cam", "Alien"},
      {"dee", "Casablanca"}, {"eve", "Brazil"}, {"fin", "Alien"},
  };
  for (const Member& m : members) {
    network.AddNodeWithValue(m.movie, m.name);
  }
  auto node = [&](const char* name) {
    return network.FindNode(name).ValueOrDie();
  };
  // Friendship chains: ann-bob-cam-dee and eve-fin.
  network.AddEdgeByName(node("ann"), "friend", node("bob"));
  network.AddEdgeByName(node("bob"), "friend", node("cam"));
  network.AddEdgeByName(node("cam"), "friend", node("dee"));
  network.AddEdgeByName(node("eve"), "friend", node("fin"));
  network.AddEdgeByName(node("fin"), "friend", node("ann"));

  std::printf("== Social network ==\n%s\n",
              WriteGraphText(network).c_str());

  // The example target relation, as a user would supply it: members with
  // the same favourite movie linked by a chain of friends. (Here we list
  // the pairs explicitly — ann→bob→cam shares Alien, eve→fin→ann→bob
  // shares Brazil, fin→ann shares Alien, and so on around the cycle.)
  BinaryRelation movie_link(network.NumNodes());
  ValueId alien = *network.data_values().Find("Alien");
  (void)alien;
  {
    // Enumerate same-movie pairs connected by ≥1 friend edges.
    BinaryRelation friends(network.NumNodes());
    for (const Edge& e : network.edges()) {
      friends.Set(e.from, e.to);
    }
    BinaryRelation chain = TransitivePlus(friends);
    for (const auto& [u, v] : chain.Pairs()) {
      if (network.DataValueOf(u) == network.DataValueOf(v)) {
        movie_link.Set(u, v);
      }
    }
  }
  std::printf("== Example relation movieLink ==\n%s\n\n",
              movie_link.ToString(network).c_str());

  // Which language defines it?
  std::printf("== Deriving the schema mapping ==\n");
  auto rpq = CheckRpqDefinability(network, movie_link);
  std::printf("RPQ-definable:      %s\n",
              DefinabilityVerdictToString(rpq.ValueOrDie().verdict));
  auto ree = SynthesizeReeQuery(network, movie_link);
  if (ree.ok() && ree.value().has_value()) {
    std::printf("RDPQ_=-definable:   yes\n");
    std::printf("  raw synthesis:    x -[%s]-> y\n",
                ReeToString(*ree.value()).c_str());
    auto simplified =
        SimplifyReeOnGraph(network, *ree.value(), movie_link);
    if (simplified.ok()) {
      std::printf("  simplified:       x -[%s]-> y\n",
                  ReeToString(simplified.value()).c_str());
    }
    BinaryRelation check = EvaluateRee(network, *ree.value());
    std::printf("  re-evaluated:     %s\n",
                check.ToString(network).c_str());
  } else {
    std::printf("RDPQ_=-definable:   no\n");
  }
  auto rem = SynthesizeKRemQuery(network, movie_link, 1);
  if (rem.ok() && rem.value().has_value()) {
    std::printf("1-REM-definable:    yes\n");
    std::printf("  movieLink(x, y) := x -[%s]-> y\n",
                RemToString(*rem.value()).c_str());
  } else {
    std::printf("1-REM-definable:    no\n");
  }

  // The idiomatic hand-written mapping for comparison.
  std::printf(
      "\nThe intended hand-written mapping is x -[$r1. friend+ [r1=]]-> y\n"
      "(store the favourite movie, follow friends, compare at the end).\n");
  return 0;
}
