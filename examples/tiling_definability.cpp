// The EXPSPACE lower bound, executably: corridor tiling as a definability
// question (Theorem 25 of the paper).
//
// Builds a small tiling instance, constructs the reduction data graph, and
// demonstrates the forward direction end to end: the brute-force solver
// finds a tiling, the paper's REM (3) is assembled for it, and evaluating
// that REM on the reduction graph yields exactly {⟨p2, q2⟩}. For an
// unsolvable instance the program shows that no bounded-length p2→q2 path
// decodes to a legal tiling.
//
//   $ ./tiling_definability

#include <cstdio>

#include "eval/rem_eval.h"
#include "graph/data_path.h"
#include "reductions/tiling.h"
#include "reductions/tiling_reduction.h"

namespace {

void Demonstrate(const gqd::TilingInstance& instance, const char* title) {
  using namespace gqd;
  std::printf("== %s ==\n", title);
  std::printf("tiles: %zu, width: 2^%zu = %zu, t_i = %u, t_f = %u\n",
              instance.num_tile_types, instance.width_bits, instance.Width(),
              instance.initial_tile, instance.final_tile);

  auto reduction = BuildTilingReduction(instance);
  if (!reduction.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 reduction.status().ToString().c_str());
    return;
  }
  std::printf("reduction graph: %zu nodes, %zu edges, %zu data values\n",
              reduction.value().graph.NumNodes(),
              reduction.value().graph.NumEdges(),
              reduction.value().graph.NumDataValues());

  auto solution = SolveCorridorTiling(instance);
  if (!solution.ok()) {
    std::fprintf(stderr, "solver error: %s\n",
                 solution.status().ToString().c_str());
    return;
  }
  if (!solution.value().has_value()) {
    std::printf("tiling: NONE — {<p2,q2>} is not RDPQ_mem-definable "
                "(Theorem 25, backward direction)\n\n");
    return;
  }
  std::printf("tiling found (%zu rows):\n", solution.value()->rows.size());
  for (const auto& row : solution.value()->rows) {
    std::printf("  |");
    for (gqd::TileType t : row) {
      std::printf(" %u |", t);
    }
    std::printf("\n");
  }
  auto rem = TilingEncodingRem(instance, *solution.value());
  if (!rem.ok()) {
    std::fprintf(stderr, "error: %s\n", rem.status().ToString().c_str());
    return;
  }
  std::printf("REM (3) for this tiling:\n  %s\n",
              RemToString(rem.value()).c_str());
  BinaryRelation result =
      EvaluateRem(reduction.value().graph, rem.value());
  std::printf("evaluating it on the reduction graph: %s\n",
              result.ToString(reduction.value().graph).c_str());
  BinaryRelation expected(reduction.value().graph.NumNodes());
  expected.Set(reduction.value().p2, reduction.value().q2);
  std::printf("defines exactly {<p2,q2>}: %s\n\n",
              result == expected ? "YES" : "NO");
}

}  // namespace

int main() {
  using namespace gqd;

  TilingInstance solvable;
  solvable.num_tile_types = 2;
  solvable.horizontal = {{0, 1}, {1, 0}};
  solvable.vertical = {{0, 0}, {1, 1}};
  solvable.initial_tile = 0;
  solvable.final_tile = 1;
  solvable.width_bits = 1;
  Demonstrate(solvable, "Solvable instance (width 2)");

  TilingInstance wide;
  wide.num_tile_types = 2;
  wide.horizontal = {{0, 0}, {0, 1}, {1, 1}};
  wide.vertical = {{0, 0}, {1, 1}};
  wide.initial_tile = 0;
  wide.final_tile = 1;
  wide.width_bits = 2;
  Demonstrate(wide, "Solvable instance (width 4)");

  TilingInstance unsolvable;
  unsolvable.num_tile_types = 2;
  unsolvable.horizontal = {{0, 1}};
  unsolvable.vertical = {};
  unsolvable.initial_tile = 0;
  unsolvable.final_tile = 0;
  unsolvable.width_bits = 1;
  Demonstrate(unsolvable, "Unsolvable instance");
  return 0;
}
