// Cross-cutting property sweeps: algebraic laws of the relation algebra,
// data-path invariants, automorphism invariance (Fact 10) of all three
// expression families, and exhaustive minterm round-trips.

#include <gtest/gtest.h>

#include <algorithm>

#include "eval/ree_eval.h"
#include "eval/rpq_eval.h"
#include "graph/data_path.h"
#include "graph/generators.h"
#include "rem/condition.h"
#include "rem/parser.h"
#include "rem/register_automaton.h"
#include "ree/membership.h"
#include "ree/parser.h"
#include "regex/parser.h"

namespace gqd {
namespace {

// --- Relation-algebra laws (Definition 26 + the claims below it) ------------

class RelationAlgebra : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  BinaryRelation A() { return RandomRelation(9, 25, GetParam() * 3 + 1); }
  BinaryRelation B() { return RandomRelation(9, 25, GetParam() * 3 + 2); }
  BinaryRelation C() { return RandomRelation(9, 25, GetParam() * 3 + 3); }
  DataGraph G() {
    return RandomDataGraph({.num_nodes = 9,
                            .num_labels = 1,
                            .num_data_values = 3,
                            .edge_percent = 20,
                            .seed = GetParam()});
  }
};

TEST_P(RelationAlgebra, UnionCommutativeAssociative) {
  EXPECT_EQ(A() | B(), B() | A());
  EXPECT_EQ((A() | B()) | C(), A() | (B() | C()));
}

TEST_P(RelationAlgebra, CompositionAssociative) {
  EXPECT_EQ(A().Compose(B()).Compose(C()), A().Compose(B().Compose(C())));
}

TEST_P(RelationAlgebra, CompositionDistributesOverUnionBothSides) {
  EXPECT_EQ((A() | B()).Compose(C()), A().Compose(C()) | B().Compose(C()));
  EXPECT_EQ(C().Compose(A() | B()), C().Compose(A()) | C().Compose(B()));
}

TEST_P(RelationAlgebra, RestrictionsPartitionAndAreIdempotent) {
  DataGraph g = G();
  BinaryRelation a = A();
  BinaryRelation eq = a.EqRestrict(g);
  BinaryRelation neq = a.NeqRestrict(g);
  EXPECT_EQ(eq | neq, a);
  EXPECT_EQ(eq.EqRestrict(g), eq);  // idempotent
  EXPECT_EQ(neq.NeqRestrict(g), neq);
  EXPECT_TRUE(eq.NeqRestrict(g).Empty());
  EXPECT_TRUE(neq.EqRestrict(g).Empty());
}

TEST_P(RelationAlgebra, RestrictionDistributesOverUnion) {
  DataGraph g = G();
  EXPECT_EQ((A() | B()).EqRestrict(g),
            A().EqRestrict(g) | B().EqRestrict(g));
  EXPECT_EQ((A() | B()).NeqRestrict(g),
            A().NeqRestrict(g) | B().NeqRestrict(g));
}

TEST_P(RelationAlgebra, TransitivePlusIsIdempotentAndMonotone) {
  BinaryRelation a = A();
  BinaryRelation plus = TransitivePlus(a);
  EXPECT_TRUE(a.IsSubsetOf(plus));
  EXPECT_EQ(TransitivePlus(plus), plus);
  EXPECT_TRUE(plus.Compose(plus).IsSubsetOf(plus));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelationAlgebra,
                         ::testing::Range<std::uint64_t>(1, 9));

// --- Data-path invariants ----------------------------------------------------

TEST(DataPathProperties, ConcatIsAssociative) {
  DataPath w1{{0, 1}, {0}};
  DataPath w2{{1, 2, 1}, {0, 1}};
  DataPath w3{{1, 0}, {1}};
  DataPath left =
      w1.Concat(w2).ValueOrDie().Concat(w3).ValueOrDie();
  DataPath right =
      w1.Concat(w2.Concat(w3).ValueOrDie()).ValueOrDie();
  EXPECT_EQ(left, right);
}

TEST(DataPathProperties, CanonicalFormIsIdempotent) {
  SplitMix64 rng(42);
  for (int trial = 0; trial < 50; trial++) {
    DataPath w;
    std::size_t len = 1 + rng.NextBelow(6);
    w.values.push_back(static_cast<ValueId>(rng.NextBelow(5)));
    for (std::size_t i = 1; i < len; i++) {
      w.Append(static_cast<LabelId>(rng.NextBelow(2)),
               static_cast<ValueId>(rng.NextBelow(5)));
    }
    DataPath canonical = w.CanonicalForm();
    EXPECT_EQ(canonical.CanonicalForm(), canonical);
    EXPECT_TRUE(w.IsAutomorphicTo(canonical));
  }
}

TEST(DataPathProperties, AutomorphismIsEquivalenceRelation) {
  DataPath a{{0, 1, 0}, {0, 0}};
  DataPath b{{5, 2, 5}, {0, 0}};
  DataPath c{{9, 3, 9}, {0, 0}};
  DataPath different{{5, 2, 2}, {0, 0}};
  EXPECT_TRUE(a.IsAutomorphicTo(a));
  EXPECT_TRUE(a.IsAutomorphicTo(b));
  EXPECT_TRUE(b.IsAutomorphicTo(a));
  EXPECT_TRUE(a.IsAutomorphicTo(c));
  EXPECT_TRUE(b.IsAutomorphicTo(c));  // transitivity instance
  EXPECT_FALSE(a.IsAutomorphicTo(different));
}

// --- Fact 10: automorphism invariance across all three families --------------

/// Applies a value permutation to a path.
DataPath Permute(const DataPath& w, const std::vector<ValueId>& pi) {
  DataPath out = w;
  for (ValueId& v : out.values) {
    v = pi[v];
  }
  return out;
}

class Fact10 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fact10, MembershipInvariantUnderValuePermutations) {
  StringInterner labels;
  labels.Intern("a");
  labels.Intern("b");
  SplitMix64 rng(GetParam());
  // Random path over values {0,1,2}.
  DataPath w;
  w.values.push_back(static_cast<ValueId>(rng.NextBelow(3)));
  std::size_t len = 2 + rng.NextBelow(4);
  for (std::size_t i = 0; i < len; i++) {
    w.Append(static_cast<LabelId>(rng.NextBelow(2)),
             static_cast<ValueId>(rng.NextBelow(3)));
  }
  std::vector<ValueId> pi = {0, 1, 2};
  do {
    DataPath pw = Permute(w, pi);
    for (const char* rem_text :
         {"$r1. a[r1=]", "$r1. (a | b)+ [r1!=]", "$(r1,r2). a b[r2=]"}) {
      RemPtr e = ParseRem(rem_text).ValueOrDie();
      EXPECT_EQ(RemMatches(e, w, &labels), RemMatches(e, pw, &labels))
          << rem_text;
    }
    for (const char* ree_text : {"(a)=", "((a)!= (b)!=)!=", "(a+)= b"}) {
      ReePtr e = ParseRee(ree_text).ValueOrDie();
      EXPECT_EQ(ReeMatches(e, w, labels), ReeMatches(e, pw, labels))
          << ree_text;
    }
  } while (std::next_permutation(pi.begin(), pi.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fact10,
                         ::testing::Range<std::uint64_t>(1, 11));

// --- Minterm exhaustive round-trips ------------------------------------------

class MintermSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MintermSweep, FromMintermsIsRightInverseOfToMinterms) {
  std::size_t k = GetParam();
  std::size_t count = NumMinterms(k);
  MintermMask full =
      (count == 64) ? ~MintermMask{0} : ((MintermMask{1} << count) - 1);
  for (MintermMask mask = 0; mask <= full; mask++) {
    ConditionPtr c = ConditionFromMinterms(mask, k);
    EXPECT_EQ(ConditionToMinterms(c, k), mask) << "k=" << k;
    // The rendered syntax parses back to the same semantics.
    auto reparsed = ParseCondition(ConditionToString(c));
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(ConditionToMinterms(reparsed.value(), k), mask);
    if (full == ~MintermMask{0}) {
      break;  // avoid overflow on the k = 6 boundary (not used here)
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RegisterCounts, MintermSweep,
                         ::testing::Values(0, 1, 2, 3));

// --- Data-free expression families agree --------------------------------------

TEST(DataFreeAgreement, RegexAndReeEvaluateIdentically) {
  // On expressions without =/≠, REE semantics coincide with regex
  // semantics; the two evaluators must produce the same relation.
  for (std::uint64_t seed = 1; seed <= 6; seed++) {
    DataGraph g = RandomDataGraph({.num_nodes = 8,
                                   .num_labels = 2,
                                   .num_data_values = 3,
                                   .edge_percent = 20,
                                   .seed = seed});
    for (const char* text :
         {"a", "a b", "(a | b)+", "a* b a*", "a+ | b+"}) {
      BinaryRelation via_rpq =
          EvaluateRpq(g, ParseRegex(text).ValueOrDie());
      BinaryRelation via_ree =
          EvaluateRee(g, ParseRee(text).ValueOrDie());
      EXPECT_EQ(via_rpq, via_ree) << text << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace gqd
