// Cluster serving tests: consistent-hash placement, load replication,
// routed evaluation, worker-death failover, warm replay on rejoin,
// admission-shed degradation through the router, and the aggregated
// gqd_cluster_* metrics — all over real TCP sockets against in-process
// `gqd serve` workers.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/hash_ring.h"
#include "cluster/router.h"
#include "cluster/worker_link.h"
#include "eval/rpq_eval.h"
#include "graph/examples.h"
#include "graph/generators.h"
#include "graph/serialization.h"
#include "regex/parser.h"
#include "runtime/client.h"
#include "runtime/json.h"
#include "runtime/server.h"
#include "runtime/service.h"

namespace gqd {
namespace {

/// Routed responses carry per-request routing metadata — served_by,
/// failovers, trace_id — that legitimately differs between replicas and
/// requests. The bit-identity invariant covers the query payload, so
/// comparisons strip the metadata first.
std::string PayloadOnly(const std::string& line) {
  auto parsed = JsonValue::Parse(line);
  if (!parsed.ok() || !parsed.value().is_object()) {
    return line;
  }
  JsonValue::Object body;
  for (const auto& [key, value] : parsed.value().AsObject()) {
    if (key == "served_by" || key == "failovers" || key == "trace_id") {
      continue;
    }
    body.emplace_back(key, value);
  }
  return JsonValue(std::move(body)).Serialize();
}

// --- Hash ring ----------------------------------------------------------

TEST(HashRingTest, OwnersAreDeterministicAndDistinct) {
  HashRing ring;
  for (std::size_t i = 0; i < 5; i++) {
    ring.AddWorker(i);
  }
  std::vector<std::size_t> owners = ring.Owners("deadbeefcafef00d", 3);
  ASSERT_EQ(owners.size(), 3u);
  EXPECT_EQ(std::set<std::size_t>(owners.begin(), owners.end()).size(), 3u);
  // Placement is a pure function of the fleet and the key.
  EXPECT_EQ(ring.Owners("deadbeefcafef00d", 3), owners);

  HashRing same_fleet;
  for (std::size_t i = 0; i < 5; i++) {
    same_fleet.AddWorker(i);
  }
  EXPECT_EQ(same_fleet.Owners("deadbeefcafef00d", 3), owners);
}

TEST(HashRingTest, ReplicasClampToFleetSize) {
  HashRing ring;
  ring.AddWorker(0);
  ring.AddWorker(1);
  std::vector<std::size_t> owners = ring.Owners("anything", 16);
  std::sort(owners.begin(), owners.end());
  EXPECT_EQ(owners, (std::vector<std::size_t>{0, 1}));
}

TEST(HashRingTest, KeysSpreadAcrossTheFleet) {
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kKeys = 4000;
  HashRing ring;
  for (std::size_t i = 0; i < kWorkers; i++) {
    ring.AddWorker(i);
  }
  std::vector<std::size_t> primary_count(kWorkers, 0);
  for (std::size_t k = 0; k < kKeys; k++) {
    std::vector<std::size_t> owners =
        ring.Owners("fingerprint-" + std::to_string(k), 1);
    ASSERT_EQ(owners.size(), 1u);
    primary_count[owners[0]]++;
  }
  // 64 vnodes/worker keeps the skew modest; the guard here is loose on
  // purpose (placement quality, not an exact distribution).
  const std::size_t mean = kKeys / kWorkers;
  for (std::size_t i = 0; i < kWorkers; i++) {
    EXPECT_GT(primary_count[i], mean / 3) << "worker " << i << " starved";
    EXPECT_LT(primary_count[i], mean * 3) << "worker " << i << " hot";
  }
}

// --- Router fixture -----------------------------------------------------

/// Three `gqd serve` workers (tiny admission gates so shed scenarios are
/// easy to stage) behind a Router with replication 2 and a fast probe.
class ClusterTest : public ::testing::Test {
 protected:
  static constexpr int kWorkers = 3;

  void SetUp() override {
    RouterOptions options;
    for (int i = 0; i < kWorkers; i++) {
      AddWorker();
      options.worker_ports.push_back(servers_.back()->port());
    }
    options.replication = 2;
    options.pool_size = 2;
    options.probe_interval_ms = 10;
    options.suspect_threshold = 2;
    router_ = std::make_unique<Router>(options);
    ASSERT_TRUE(router_->Start().ok());
  }

  void TearDown() override {
    router_->Stop();
    for (auto& server : servers_) {
      if (server != nullptr) {
        server->Stop();
        server->Wait();
      }
    }
  }

  void AddWorker() {
    ServiceOptions options;
    options.admission.max_concurrent = 1;
    options.admission.max_queue = 4;
    options.admission.retry_after_ms = 30;
    services_.push_back(std::make_unique<QueryService>(options));
    servers_.push_back(std::make_unique<Server>(services_.back().get()));
    ASSERT_TRUE(servers_.back()->Start(0).ok());
  }

  std::string Route(const std::string& line) {
    bool shutdown = false;
    return router_->HandleLine(line, &shutdown);
  }

  /// Loads Figure 1 as "fig1" through the router; returns the response.
  std::string LoadFig1() {
    JsonValue::Object load;
    load.emplace_back("cmd", "load");
    load.emplace_back("name", "fig1");
    load.emplace_back("text", WriteGraphText(Figure1Graph()));
    return Route(JsonValue(std::move(load)).Serialize());
  }

  static std::string EvalLine(const std::string& query) {
    JsonValue::Object request;
    request.emplace_back("cmd", "eval");
    request.emplace_back("graph", "fig1");
    request.emplace_back("language", "rpq");
    request.emplace_back("query", query);
    return JsonValue(std::move(request)).Serialize();
  }

  /// Asks worker `i` directly (bypassing the router) whether it has the
  /// graph registered.
  bool WorkerHasGraph(int i, const std::string& name) {
    LineClient client;
    if (!client.Connect(servers_[i]->port()).ok()) {
      return false;
    }
    auto response =
        client.Call(R"({"cmd":"info","graph":")" + name + R"("})");
    return response.ok() &&
           response.value().find("\"ok\":true") != std::string::npos;
  }

  /// The workers that took at least one routed request, per the router's
  /// own counters, relative to `before`.
  std::vector<int> WorkersServing(const std::vector<std::uint64_t>& before) {
    Router::Snapshot now = router_->GetSnapshot();
    std::vector<int> served;
    for (int i = 0; i < kWorkers; i++) {
      if (now.worker_requests[i] > before[i]) {
        served.push_back(i);
      }
    }
    return served;
  }

  bool WaitForWorkerState(int i, WorkerState want,
                          std::chrono::seconds timeout =
                              std::chrono::seconds(10)) {
    auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      if (router_->worker_state(i) == want) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  }

  std::vector<std::unique_ptr<QueryService>> services_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::unique_ptr<Router> router_;
};

// --- Placement and routing ----------------------------------------------

TEST_F(ClusterTest, LoadReplicatesToExactlyROwners) {
  std::string loaded = LoadFig1();
  auto parsed = JsonValue::Parse(loaded);
  ASSERT_TRUE(parsed.ok()) << loaded;
  ASSERT_TRUE(parsed.value().Find("ok")->AsBool()) << loaded;
  EXPECT_EQ(parsed.value().GetString("fingerprint").ValueOrDie().size(),
            16u);

  // At least the R ring owners hold the graph. The seed worker that
  // computed the fingerprint may hold a harmless extra copy, so this is a
  // lower bound, not an equality.
  int copies = 0;
  for (int i = 0; i < kWorkers; i++) {
    copies += WorkerHasGraph(i, "fig1") ? 1 : 0;
  }
  EXPECT_GE(copies, 2);
}

TEST_F(ClusterTest, EvalRoutesAndMatchesDirectEvaluation) {
  ASSERT_NE(LoadFig1().find("\"ok\":true"), std::string::npos);
  std::string response = Route(EvalLine("a.a"));
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  ASSERT_TRUE(parsed.value().Find("ok")->AsBool()) << response;
  DataGraph g = Figure1Graph();
  EXPECT_EQ(parsed.value().GetString("relation").ValueOrDie(),
            EvaluateRpq(g, ParseRegex("a.a").ValueOrDie()).ToString(g));
}

TEST_F(ClusterTest, RequestIdIsRelayedThroughTheRouter) {
  ASSERT_NE(LoadFig1().find("\"ok\":true"), std::string::npos);
  std::string response = Route(
      R"({"id":"q7","cmd":"eval","graph":"fig1","language":"rpq",)"
      R"("query":"a"})");
  EXPECT_NE(response.find("\"id\":\"q7\""), std::string::npos) << response;
}

TEST_F(ClusterTest, PingReportsRouterRoleAndRoutableFleet) {
  std::string response = Route(R"({"cmd":"ping"})");
  EXPECT_NE(response.find("\"pong\":true"), std::string::npos) << response;
  EXPECT_NE(response.find("\"role\":\"router\""), std::string::npos)
      << response;
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_EQ(parsed.value().Find("routable_workers")->AsNumber(), kWorkers);
}

TEST_F(ClusterTest, StatsAndMetricsAggregateAcrossTheFleet) {
  ASSERT_NE(LoadFig1().find("\"ok\":true"), std::string::npos);
  (void)Route(EvalLine("a+"));

  std::string stats = Route(R"({"cmd":"stats"})");
  EXPECT_NE(stats.find("\"workers\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"healthy\""), std::string::npos) << stats;

  std::string metrics = Route(R"({"cmd":"metrics"})");
  EXPECT_NE(metrics.find("gqd_cluster_requests_total"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("gqd_cluster_workers"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("gqd_cluster_worker_up"), std::string::npos)
      << metrics;
}

// --- Distributed tracing ------------------------------------------------

TEST_F(ClusterTest, RoutedResponsesCarryServedByAndFailovers) {
  ASSERT_NE(LoadFig1().find("\"ok\":true"), std::string::npos);
  auto parsed = JsonValue::Parse(Route(EvalLine("a.a")));
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed.value().Find("ok")->AsBool());
  std::int64_t served_by = parsed.value().GetInt("served_by").ValueOrDie();
  EXPECT_GE(served_by, 0);
  EXPECT_LT(served_by, static_cast<std::int64_t>(kWorkers));
  EXPECT_EQ(parsed.value().GetInt("failovers").ValueOrDie(), 0);
}

#ifndef GQD_DISABLE_TRACING

/// Recursively checks the merged-tree node schema and collects
/// (name, source) pairs plus the parent name of every node.
void WalkMergedTree(const JsonValue::Array& nodes, const std::string& parent,
                    std::set<std::pair<std::string, std::string>>* seen,
                    std::map<std::string, std::string>* parent_of) {
  for (const JsonValue& node : nodes) {
    ASSERT_TRUE(node.is_object());
    // Golden schema: exactly these keys, pinned so external consumers of
    // routed "trace":true responses can rely on them.
    for (const char* key :
         {"name", "start_us", "dur_us", "tid", "source", "args",
          "children"}) {
      ASSERT_NE(node.Find(key), nullptr) << key;
    }
    std::string name = node.GetString("name").ValueOrDie();
    std::string source = node.GetString("source").ValueOrDie();
    seen->insert({name, source});
    parent_of->emplace(name, parent);
    const JsonValue* children = node.Find("children");
    ASSERT_TRUE(children->is_array());
    WalkMergedTree(children->AsArray(), name, seen, parent_of);
  }
}

TEST_F(ClusterTest, TracedRoutedEvalReturnsOneMergedSpanTree) {
  ASSERT_NE(LoadFig1().find("\"ok\":true"), std::string::npos);
  std::string response = Route(
      R"({"cmd":"eval","graph":"fig1","language":"rpq","query":"a.a",)"
      R"("trace":true})");
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  ASSERT_TRUE(parsed.value().Find("ok")->AsBool()) << response;
  EXPECT_EQ(parsed.value().GetString("trace_id").ValueOrDie().size(), 32u);
  const JsonValue* trace = parsed.value().Find("trace");
  ASSERT_NE(trace, nullptr) << response;
  ASSERT_TRUE(trace->is_array()) << response;

  std::set<std::pair<std::string, std::string>> seen;
  std::map<std::string, std::string> parent_of;
  WalkMergedTree(trace->AsArray(), "", &seen, &parent_of);

  // Router spans: the request root, the replica pick, and the transport.
  EXPECT_TRUE(seen.count({"route.request", "router"})) << response;
  EXPECT_TRUE(seen.count({"route.replica_pick", "router"})) << response;
  EXPECT_TRUE(seen.count({"route.transport", "router"})) << response;
  // Worker spans arrive from a "worker N" source and share the tree.
  bool worker_request = false;
  bool worker_handler = false;
  bool worker_cache = false;
  for (const auto& [name, source] : seen) {
    if (source.rfind("worker ", 0) != 0) {
      continue;
    }
    worker_request |= name == "serve.request";
    worker_handler |= name == "serve.handler";
    worker_cache |= name == "serve.cache_lookup";
  }
  EXPECT_TRUE(worker_request) << response;
  EXPECT_TRUE(worker_handler) << response;
  EXPECT_TRUE(worker_cache) << response;
  // Cross-process nesting: the worker's request root sits under the
  // router transport span that carried it, which sits under the request.
  EXPECT_EQ(parent_of["serve.request"], "route.transport") << response;
  EXPECT_EQ(parent_of["route.transport"], "route.request") << response;

  // Without "trace":true the routed response embeds no tree.
  std::string untraced = Route(EvalLine("a.a"));
  EXPECT_NE(untraced.find("\"ok\":true"), std::string::npos) << untraced;
  EXPECT_EQ(untraced.find("\"trace\":["), std::string::npos) << untraced;
}

TEST_F(ClusterTest, FailoverEmitsAStructuredLogEventCorrelatedToTheTrace) {
  ASSERT_NE(LoadFig1().find("\"ok\":true"), std::string::npos);
  std::vector<std::uint64_t> before =
      router_->GetSnapshot().worker_requests;
  ASSERT_NE(Route(EvalLine("a.a")).find("\"ok\":true"), std::string::npos);
  std::vector<int> served = WorkersServing(before);
  ASSERT_EQ(served.size(), 1u);
  const int primary = served[0];
  servers_[primary]->Stop();
  servers_[primary]->Wait();

  // Two requests cover both rotation slots; at least one fails over. The
  // client sees zero errors either way.
  std::set<std::string> trace_ids;
  for (int i = 0; i < 2; i++) {
    auto parsed = JsonValue::Parse(Route(EvalLine("a.a")));
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(parsed.value().Find("ok")->AsBool());
    trace_ids.insert(parsed.value().GetString("trace_id").ValueOrDie());
  }
  ASSERT_GE(router_->GetSnapshot().failovers, 1u);

  std::string log = Route(R"({"cmd":"log"})");
  auto parsed = JsonValue::Parse(log);
  ASSERT_TRUE(parsed.ok()) << log;
  EXPECT_TRUE(parsed.value().Find("ok")->AsBool()) << log;
  const JsonValue* events = parsed.value().Find("events");
  ASSERT_NE(events, nullptr) << log;
  ASSERT_TRUE(events->is_array()) << log;
  bool found = false;
  for (const JsonValue& event : events->AsArray()) {
    if (event.GetStringOr("event", "").ValueOrDie() != "failover") {
      continue;
    }
    // The event joins the merged trace through the request's trace id.
    if (trace_ids.count(event.GetStringOr("trace_id", "").ValueOrDie()) ==
        0) {
      continue;
    }
    found = true;
    EXPECT_EQ(event.GetStringOr("component", "").ValueOrDie(), "cluster");
    EXPECT_EQ(event.GetStringOr("level", "").ValueOrDie(), "warn");
    EXPECT_EQ(event.GetStringOr("cmd", "").ValueOrDie(), "eval");
    EXPECT_EQ(event.GetStringOr("graph", "").ValueOrDie(), "fig1");
    EXPECT_FALSE(event.GetStringOr("to_worker", "").ValueOrDie().empty());
  }
  EXPECT_TRUE(found) << log;
}

TEST_F(ClusterTest, RouterStatsReportPerCommandQuantilesAndExemplars) {
  ASSERT_NE(LoadFig1().find("\"ok\":true"), std::string::npos);
  for (int i = 0; i < 3; i++) {
    ASSERT_NE(Route(EvalLine("a.a")).find("\"ok\":true"),
              std::string::npos);
  }
  std::string stats = Route(R"({"cmd":"stats"})");
  auto parsed = JsonValue::Parse(stats);
  ASSERT_TRUE(parsed.ok()) << stats;
  const JsonValue* cluster = parsed.value().Find("cluster");
  ASSERT_NE(cluster, nullptr) << stats;
  // Same {count, p50, p99} shape the worker-side stats block uses.
  const JsonValue* per_command = cluster->Find("per_command_latency_us");
  ASSERT_NE(per_command, nullptr) << stats;
  const JsonValue* eval_latency = per_command->Find("eval");
  ASSERT_NE(eval_latency, nullptr) << stats;
  EXPECT_GE(eval_latency->GetInt("count").ValueOrDie(), 3);
  EXPECT_GE(eval_latency->GetInt("p99").ValueOrDie(),
            eval_latency->GetInt("p50").ValueOrDie());
  // Every eval is traced, so the exemplar store (below capacity) kept
  // them: each entry carries the retained merged tree.
  const JsonValue* exemplars = parsed.value().Find("exemplars");
  ASSERT_NE(exemplars, nullptr) << stats;
  const JsonValue* eval_exemplars = exemplars->Find("eval");
  ASSERT_NE(eval_exemplars, nullptr) << stats;
  ASSERT_TRUE(eval_exemplars->is_array()) << stats;
  ASSERT_FALSE(eval_exemplars->AsArray().empty()) << stats;
  std::uint64_t previous = ~std::uint64_t{0};
  for (const JsonValue& exemplar : eval_exemplars->AsArray()) {
    EXPECT_EQ(exemplar.GetString("trace_id").ValueOrDie().size(), 32u);
    auto latency =
        static_cast<std::uint64_t>(exemplar.GetInt("latency_us").ValueOrDie());
    EXPECT_LE(latency, previous);  // slowest first
    previous = latency;
    EXPECT_GT(exemplar.GetInt("ts_ms").ValueOrDie(), 0);
    const JsonValue* tree = exemplar.Find("trace");
    ASSERT_NE(tree, nullptr) << stats;
    EXPECT_TRUE(tree->is_array()) << stats;
  }
}

#endif  // GQD_DISABLE_TRACING

// --- Failover -----------------------------------------------------------

TEST_F(ClusterTest, WorkerDeathFailsOverWithBitIdenticalResponse) {
  ASSERT_NE(LoadFig1().find("\"ok\":true"), std::string::npos);

  std::vector<std::uint64_t> before =
      router_->GetSnapshot().worker_requests;
  std::string canonical = Route(EvalLine("a.a"));
  ASSERT_NE(canonical.find("\"ok\":true"), std::string::npos) << canonical;
  std::vector<int> served = WorkersServing(before);
  ASSERT_EQ(served.size(), 1u);
  const int primary = served[0];

  // Kill the worker that served the request, mid-fleet.
  servers_[primary]->Stop();
  servers_[primary]->Wait();

  // Reads rotate across the two owners, so two back-to-back requests hit
  // both rotation slots: one lands on the dead worker first and fails
  // over. Either way the client sees the bit-identical payload — no
  // error, no retry needed.
  EXPECT_EQ(PayloadOnly(Route(EvalLine("a.a"))), PayloadOnly(canonical));
  EXPECT_EQ(PayloadOnly(Route(EvalLine("a.a"))), PayloadOnly(canonical));
  EXPECT_GE(router_->GetSnapshot().failovers, 1u);
}

TEST_F(ClusterTest, DeadWorkerIsDetectedByTheHealthLoop) {
  servers_[1]->Stop();
  servers_[1]->Wait();
  EXPECT_TRUE(WaitForWorkerState(1, WorkerState::kDead));
  std::string response = Route(R"({"cmd":"ping"})");
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_EQ(parsed.value().Find("routable_workers")->AsNumber(),
            kWorkers - 1);
}

TEST_F(ClusterTest, RejoiningWorkerIsWarmedFromTheReplayLog) {
  ASSERT_NE(LoadFig1().find("\"ok\":true"), std::string::npos);
  // A couple of evals so the warm log has entries to replay. The first
  // one also identifies a routing-table owner of fig1 from the router's
  // own counters (only a table owner gets warm-replayed, not a seed
  // holding a stray copy).
  std::vector<std::uint64_t> before =
      router_->GetSnapshot().worker_requests;
  ASSERT_NE(Route(EvalLine("a.a")).find("\"ok\":true"), std::string::npos);
  std::vector<int> served = WorkersServing(before);
  ASSERT_EQ(served.size(), 1u);
  const int owner = served[0];
  ASSERT_NE(Route(EvalLine("a+")).find("\"ok\":true"), std::string::npos);
  const std::uint16_t port = servers_[owner]->port();
  servers_[owner]->Stop();
  servers_[owner]->Wait();
  ASSERT_TRUE(WaitForWorkerState(owner, WorkerState::kDead));

  // Restart on the same port with a FRESH registry: recovery genuinely
  // depends on the router's warm replay, not on surviving state.
  services_[owner] = std::make_unique<QueryService>();
  servers_[owner] = std::make_unique<Server>(services_[owner].get());
  ASSERT_TRUE(servers_[owner]->Start(port).ok());

  ASSERT_TRUE(WaitForWorkerState(owner, WorkerState::kHealthy));
  Router::Snapshot snapshot = router_->GetSnapshot();
  EXPECT_GE(snapshot.warm_replays, 1u);
  EXPECT_GE(snapshot.warm_lines, 1u);
  // The replay reloaded the graph, so the rejoined worker can serve its
  // shard again.
  EXPECT_TRUE(WorkerHasGraph(owner, "fig1"));
}

TEST_F(ClusterTest, AllReplicasDownReturnsUnavailableWithRetryHint) {
  ASSERT_NE(LoadFig1().find("\"ok\":true"), std::string::npos);
  for (auto& server : servers_) {
    server->Stop();
    server->Wait();
  }
  std::string response = Route(EvalLine("a.a"));
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_FALSE(parsed.value().Find("ok")->AsBool()) << response;
  const JsonValue* error = parsed.value().Find("error");
  ASSERT_NE(error, nullptr) << response;
  EXPECT_EQ(error->GetString("code").ValueOrDie(), "Unavailable");
  EXPECT_GE(error->GetInt("retry_after_ms").ValueOrDie(), 0);
  EXPECT_GE(router_->GetSnapshot().all_down_returned, 1u);
}

// --- Degradation under load ---------------------------------------------

/// Holds every worker's single admission slot with a slow krem check so a
/// routed heavy request sheds on all replicas.
class ClusterOverloadTest : public ClusterTest {
 protected:
  void SetUp() override {
    ClusterTest::SetUp();
    RandomGraphOptions graph_options;
    graph_options.num_nodes = 12;
    graph_options.num_labels = 2;
    graph_options.num_data_values = 6;
    graph_options.edge_percent = 25;
    graph_options.seed = 7;
    for (int i = 0; i < kWorkers; i++) {
      DataGraph g = RandomDataGraph(graph_options);
      relation_text_ =
          WriteRelationText(g, RandomRelation(g.NumNodes(), 30, 11));
      services_[i]->registry().Register("hard", std::move(g));
    }
  }

  /// A check request that holds one admission slot for ~deadline_ms.
  std::string SlowCheckRequest(double deadline_ms) {
    JsonValue::Object request;
    request.emplace_back("cmd", "check");
    request.emplace_back("graph", "hard");
    request.emplace_back("checker", "krem");
    request.emplace_back("k", 3.0);
    request.emplace_back("relation", relation_text_);
    request.emplace_back("deadline_ms", deadline_ms);
    return JsonValue(std::move(request)).Serialize();
  }

  /// Saturates every worker's slot and wait queue directly (bypassing the
  /// router), returning the holder threads.
  std::vector<std::thread> SaturateFleet(double deadline_ms) {
    std::vector<std::thread> holders;
    // One request holds the slot, four more fill the wait queue, so a
    // routed request is shed immediately instead of queueing.
    for (int i = 0; i < kWorkers; i++) {
      for (int j = 0; j < 5; j++) {
        holders.emplace_back([this, i, deadline_ms] {
          LineClient client;
          if (client.Connect(servers_[i]->port()).ok()) {
            (void)client.Call(SlowCheckRequest(deadline_ms));
          }
        });
      }
    }
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      bool saturated = true;
      for (int i = 0; i < kWorkers; i++) {
        AdmissionStats stats = services_[i]->admission_stats();
        saturated &= stats.active >= 1 && stats.waiting >= 4;
      }
      if (saturated) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return holders;
  }

  std::string relation_text_;
};

TEST_F(ClusterOverloadTest, AllReplicasSheddingReturnsWorkerRetryHint) {
  ASSERT_NE(LoadFig1().find("\"ok\":true"), std::string::npos);
  std::vector<std::thread> holders = SaturateFleet(400.0);

  std::string response = Route(EvalLine("a.a"));
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_FALSE(parsed.value().Find("ok")->AsBool()) << response;
  const JsonValue* error = parsed.value().Find("error");
  ASSERT_NE(error, nullptr) << response;
  EXPECT_EQ(error->GetString("code").ValueOrDie(), "Unavailable");
  // The hint is the smallest the replicas supplied — the workers' own
  // configured 30ms, not the router's fallback.
  EXPECT_EQ(error->GetInt("retry_after_ms").ValueOrDie(), 30);
  EXPECT_GE(router_->GetSnapshot().sheds_returned, 1u);

  // ping still bypasses admission everywhere: the fleet probes healthy
  // even while fully saturated, so nobody gets marked dead.
  std::string pong = Route(R"({"cmd":"ping"})");
  EXPECT_NE(pong.find("\"pong\":true"), std::string::npos) << pong;

  for (std::thread& holder : holders) {
    holder.join();
  }
}

TEST_F(ClusterOverloadTest, CallWithRetryRidesOutClusterOverload) {
  ASSERT_NE(LoadFig1().find("\"ok\":true"), std::string::npos);

  // Front server so the retrying client speaks to the router over TCP,
  // exactly like production.
  Server front(router_.get());
  ASSERT_TRUE(front.Start(0).ok());

  std::vector<std::thread> holders = SaturateFleet(300.0);

  LineClient client;
  ASSERT_TRUE(client.Connect(front.port()).ok());
  RetryPolicy policy;
  policy.max_attempts = 50;
  // Deliberately huge exponential base: the only way the retry loop can
  // succeed inside the test timeout is by honouring the server-supplied
  // retry_after_ms hint instead (satellite fix).
  policy.initial_backoff = std::chrono::milliseconds(5000);
  policy.jitter_seed = 17;
  auto start = std::chrono::steady_clock::now();
  auto response = client.CallWithRetry(EvalLine("a.a"), policy);
  auto elapsed = std::chrono::steady_clock::now() - start;

  for (std::thread& holder : holders) {
    holder.join();
  }
  front.Stop();
  front.Wait();

  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_NE(response.value().find("\"ok\":true"), std::string::npos)
      << response.value();
  EXPECT_GE(client.retries(), 1u);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            4000);
}

}  // namespace
}  // namespace gqd
