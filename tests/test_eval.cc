// Integration tests for query evaluation on the Figure-1 graph:
// Examples 12 and 14 of the paper, plus cross-validation of the three
// evaluators against path enumeration on random graphs.

#include <gtest/gtest.h>

#include "eval/query.h"
#include "eval/rem_eval.h"
#include "eval/ree_eval.h"
#include "eval/rpq_eval.h"
#include "graph/data_path.h"
#include "graph/examples.h"
#include "graph/generators.h"
#include "ree/membership.h"
#include "ree/parser.h"
#include "regex/parser.h"
#include "rem/parser.h"
#include "rem/register_automaton.h"

namespace gqd {
namespace {

TEST(RpqEval, Example12Q1) {
  // Q1 : x -aaa-> y evaluates to S1 on the Figure-1 graph.
  DataGraph g = Figure1Graph();
  BinaryRelation result =
      EvaluateRpq(g, ParseRegex("a a a").ValueOrDie());
  EXPECT_EQ(result, Figure1S1(g)) << result.ToString(g);
}

TEST(RpqEval, StarReachability) {
  DataGraph g = Figure1Graph();
  Figure1Nodes n = Figure1NodeIds(g);
  BinaryRelation result = EvaluateRpq(g, ParseRegex("a*").ValueOrDie());
  // a* includes the diagonal.
  EXPECT_TRUE(result.Test(n.v1, n.v1));
  EXPECT_TRUE(result.Test(n.v1, n.w4));  // v1 →* v'4
  EXPECT_FALSE(result.Test(n.v4, n.v1)); // v4 has no out-edges
}

TEST(RemEval, Example12Q2DefinesS2) {
  // Q2 : x -e2-> y with e2 = ↓r1·a·↓r2·a[r1=]·a[r2=] evaluates to S2.
  DataGraph g = Figure1Graph();
  RemPtr e2 = ParseRem("$r1. a $r2. a[r1=] a[r2=]").ValueOrDie();
  BinaryRelation result = EvaluateRem(g, e2);
  EXPECT_EQ(result, Figure1S2(g)) << result.ToString(g);
}

TEST(ReeEval, Example12Q3DefinesS3) {
  // Q3 : x -e3-> y with e3 = (a·(a)=·a)= evaluates to S3.
  DataGraph g = Figure1Graph();
  ReePtr e3 = ParseRee("(a (a)= a)=").ValueOrDie();
  BinaryRelation result = EvaluateRee(g, e3);
  EXPECT_EQ(result, Figure1S3(g)) << result.ToString(g);
}

TEST(ReeEval, EpsilonIsIdentity) {
  DataGraph g = Figure1Graph();
  EXPECT_EQ(EvaluateRee(g, ParseRee("eps").ValueOrDie()),
            BinaryRelation::Identity(g.NumNodes()));
}

TEST(RemEval, EpsilonIsIdentity) {
  DataGraph g = Figure1Graph();
  EXPECT_EQ(EvaluateRem(g, ParseRem("eps").ValueOrDie()),
            BinaryRelation::Identity(g.NumNodes()));
}

TEST(RemEval, UnsatisfiableConditionYieldsEmpty) {
  DataGraph g = Figure1Graph();
  EXPECT_TRUE(EvaluateRem(g, ParseRem("a[~T]").ValueOrDie()).Empty());
  // r1= with r1 unbound is unsatisfiable too.
  EXPECT_TRUE(EvaluateRem(g, ParseRem("a[r1=]").ValueOrDie()).Empty());
}

TEST(Eval, ReeAgreesWithRemOnEquivalentExpressions) {
  // (a)= is expressible as the 1-REM ↓r1. a[r1=]; (a)≠ as ↓r1. a[r1≠].
  DataGraph g = Figure1Graph();
  EXPECT_EQ(EvaluateRee(g, ParseRee("(a)=").ValueOrDie()),
            EvaluateRem(g, ParseRem("$r1. a[r1=]").ValueOrDie()));
  EXPECT_EQ(EvaluateRee(g, ParseRee("(a)!=").ValueOrDie()),
            EvaluateRem(g, ParseRem("$r1. a[r1!=]").ValueOrDie()));
}

TEST(Eval, RpqAgreesWithRemWithoutRegisters) {
  // A register-free REM is an ordinary regex; the evaluators must agree.
  for (std::uint64_t seed = 1; seed <= 5; seed++) {
    DataGraph g = RandomDataGraph({.num_nodes = 7,
                                   .num_labels = 2,
                                   .num_data_values = 3,
                                   .edge_percent = 20,
                                   .seed = seed});
    EXPECT_EQ(EvaluateRpq(g, ParseRegex("a (a | b)+").ValueOrDie()),
              EvaluateRem(g, ParseRem("a (a | b)+").ValueOrDie()))
        << "seed " << seed;
  }
}

// Oracle: evaluate a query by enumerating all connecting data paths up to a
// length bound and testing membership. Sound for queries whose shortest
// witnesses fit the bound; used on small random graphs.
BinaryRelation OracleRee(const DataGraph& g, const ReePtr& e,
                         std::size_t max_len) {
  BinaryRelation out(g.NumNodes());
  for (NodeId u = 0; u < g.NumNodes(); u++) {
    for (NodeId v = 0; v < g.NumNodes(); v++) {
      for (const DataPath& p : EnumerateConnectingPaths(g, u, v, max_len)) {
        if (ReeMatches(e, p, g.labels())) {
          out.Set(u, v);
          break;
        }
      }
    }
  }
  return out;
}

BinaryRelation OracleRem(const DataGraph& g, const RemPtr& e,
                         std::size_t max_len) {
  BinaryRelation out(g.NumNodes());
  StringInterner labels = g.labels();
  RegisterAutomaton ra = CompileRem(e, &labels);
  for (NodeId u = 0; u < g.NumNodes(); u++) {
    for (NodeId v = 0; v < g.NumNodes(); v++) {
      for (const DataPath& p : EnumerateConnectingPaths(g, u, v, max_len)) {
        if (ra.AcceptsDataPath(p)) {
          out.Set(u, v);
          break;
        }
      }
    }
  }
  return out;
}

class EvalOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EvalOracleTest, ReeEvalMatchesPathEnumeration) {
  DataGraph g = RandomDataGraph({.num_nodes = 5,
                                 .num_labels = 2,
                                 .num_data_values = 2,
                                 .edge_percent = 25,
                                 .seed = GetParam()});
  // Expressions whose shortest witnesses have <= 4 letters on a 5-node
  // graph (no unbounded iteration, so path enumeration is exact).
  for (const char* text :
       {"a", "(a)=", "(a b)!=", "a (b)= | (a a)=", "((a)!= (b)!=)!="}) {
    ReePtr e = ParseRee(text).ValueOrDie();
    EXPECT_EQ(EvaluateRee(g, e), OracleRee(g, e, 4))
        << text << " seed " << GetParam();
  }
}

TEST_P(EvalOracleTest, RemEvalMatchesPathEnumeration) {
  DataGraph g = RandomDataGraph({.num_nodes = 5,
                                 .num_labels = 2,
                                 .num_data_values = 2,
                                 .edge_percent = 25,
                                 .seed = GetParam()});
  for (const char* text :
       {"$r1. a[r1=]", "$r1. a b[r1=]", "$r1. a $r2. a[r1=] a[r2=]",
        "$r1. a (a | b)[r1!=]"}) {
    RemPtr e = ParseRem(text).ValueOrDie();
    EXPECT_EQ(EvaluateRem(g, e), OracleRem(g, e, 4))
        << text << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, EvalOracleTest,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(CrdpqEval, Example14Q4) {
  // Q4: Ans(x1,y1) := x1 -a-> y1 ∧ x1 -a-> y2 ∧ y2 -a-> y1.
  // The unique valuation maps x1=v1, y1=v2, y2=z2; result {(v1,v2)}.
  DataGraph g = Figure1Graph();
  Figure1Nodes n = Figure1NodeIds(g);
  Crdpq q4;
  q4.answer_variables = {"x1", "y1"};
  RegexPtr a = ParseRegex("a").ValueOrDie();
  q4.atoms = {{"x1", "y1", a}, {"x1", "y2", a}, {"y2", "y1", a}};
  auto result = EvaluateCrdpq(g, q4);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().size(), 1u);
  EXPECT_TRUE(result.value().Contains({n.v1, n.v2}));
}

TEST(CrdpqEval, Example14Q5) {
  // Q5: Ans(x1,y1,x2) := x1 -(a)≠-> y1 ∧ x2 -(a)≠-> y1.
  //
  // The paper's example lists {(v1,z2,z1), (v3,v4,v'2), (v3,v'3,v'2)} — the
  // "two distinct nodes converging" pattern — but under the literal
  // Definition-13 semantics nothing forces µ(x1) ≠ µ(x2), so the full
  // answer also contains the diagonal (x1 = x2) and swapped tuples. We
  // check against a brute-force oracle of the definition and additionally
  // require the paper's three representative tuples (recorded in
  // EXPERIMENTS.md as a paper-text looseness).
  DataGraph g = Figure1Graph();
  Figure1Nodes n = Figure1NodeIds(g);
  Crdpq q5;
  q5.answer_variables = {"x1", "y1", "x2"};
  ReePtr aneq = ParseRee("(a)!=").ValueOrDie();
  q5.atoms = {{"x1", "y1", aneq}, {"x2", "y1", aneq}};
  auto result = EvaluateCrdpq(g, q5);
  ASSERT_TRUE(result.ok()) << result.status();

  BinaryRelation atom = EvaluateRee(g, aneq);
  TupleRelation expected(3);
  for (NodeId x1 = 0; x1 < g.NumNodes(); x1++) {
    for (NodeId y1 = 0; y1 < g.NumNodes(); y1++) {
      for (NodeId x2 = 0; x2 < g.NumNodes(); x2++) {
        if (atom.Test(x1, y1) && atom.Test(x2, y1)) {
          expected.Insert({x1, y1, x2});
        }
      }
    }
  }
  EXPECT_EQ(result.value(), expected);
  EXPECT_TRUE(result.value().Contains({n.v1, n.z2, n.z1}));
  EXPECT_TRUE(result.value().Contains({n.v3, n.v4, n.w2}));
  EXPECT_TRUE(result.value().Contains({n.v3, n.w3, n.w2}));
}

TEST(CrdpqEval, ValidationErrors) {
  DataGraph g = Figure1Graph();
  Crdpq empty;
  empty.answer_variables = {"x"};
  EXPECT_FALSE(EvaluateCrdpq(g, empty).ok());
  Crdpq unused;
  unused.answer_variables = {"z"};
  unused.atoms = {{"x", "y", ParseRegex("a").ValueOrDie()}};
  EXPECT_FALSE(EvaluateCrdpq(g, unused).ok());
}

TEST(UcrdpqEval, UnionOfDisjuncts) {
  DataGraph g = Figure1Graph();
  Figure1Nodes n = Figure1NodeIds(g);
  Crdpq q1;
  q1.answer_variables = {"x", "y"};
  q1.atoms = {{"x", "y", ParseRegex("a a a").ValueOrDie()}};
  Crdpq q2;
  q2.answer_variables = {"u", "v"};
  q2.atoms = {{"u", "v",
               RemPtr(ParseRem("$r1. a $r2. a[r1=] a[r2=]").ValueOrDie())}};
  Ucrdpq u{{q1, q2}};
  auto result = EvaluateUcrdpq(g, u);
  ASSERT_TRUE(result.ok()) << result.status();
  // q2's pairs are a subset of q1's (S2 ⊆ S1), so the union equals S1.
  EXPECT_EQ(result.value().size(), Figure1S1(g).Count());
  EXPECT_TRUE(result.value().Contains({n.v1, n.v4}));
}

TEST(UcrdpqEval, MixedArityRejected) {
  DataGraph g = Figure1Graph();
  Crdpq q1;
  q1.answer_variables = {"x", "y"};
  q1.atoms = {{"x", "y", ParseRegex("a").ValueOrDie()}};
  Crdpq q2;
  q2.answer_variables = {"x"};
  q2.atoms = {{"x", "y", ParseRegex("a").ValueOrDie()}};
  Ucrdpq u{{q1, q2}};
  EXPECT_FALSE(EvaluateUcrdpq(g, u).ok());
}

TEST(Eval, SchemaMappingMovieLinkScenario) {
  // The introduction's movieLink mapping: same favourite movie, linked by a
  // chain of friends — the REM  ↓r1. friend+ [r1=]  (equivalently the REE
  // (friend+)=).
  DataGraph g;
  g.AddLabel("friend");
  for (const char* movie : {"Alien", "Brazil", "Casablanca"}) {
    g.AddDataValue(movie);
  }
  NodeId ann = g.AddNodeWithValue("Alien", "ann");
  NodeId bob = g.AddNodeWithValue("Brazil", "bob");
  NodeId cam = g.AddNodeWithValue("Alien", "cam");
  NodeId dee = g.AddNodeWithValue("Casablanca", "dee");
  g.AddEdgeByName(ann, "friend", bob);
  g.AddEdgeByName(bob, "friend", cam);
  g.AddEdgeByName(cam, "friend", dee);
  BinaryRelation rem_result =
      EvaluateRem(g, ParseRem("$r1. friend+ [r1=]").ValueOrDie());
  BinaryRelation ree_result =
      EvaluateRee(g, ParseRee("(friend+)=").ValueOrDie());
  EXPECT_EQ(rem_result, ree_result);
  EXPECT_EQ(rem_result.Count(), 1u);
  EXPECT_TRUE(rem_result.Test(ann, cam));
}

}  // namespace
}  // namespace gqd
