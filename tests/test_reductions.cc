// Tests for the lower-bound machinery: the corridor-tiling problem and the
// Theorem 25 reduction, the DPLL solver and the Theorem 35 (Figure 3)
// reduction, and the Theorem 32 constant-value transformation.
//
// The Theorem 25 reduction cannot be validated by running the REM
// definability checker on its output (that is EXPSPACE by the theorem
// itself). Instead we validate the proof's own conditions empirically:
//   (2) every tiling is encodable as a p2→q2 data path,
//   (3) no p1→q1 path is (automorphic to) a legal encoding, and
//   (4) every illegal p2→q2 path has an automorphic copy connecting p1→q1 —
// using Lemma 15's e[w] expressions evaluated by the RDPQ_mem engine, plus
// the forward direction end-to-end: the paper's REM (3) for a solver-found
// tiling evaluates to exactly {⟨p2, q2⟩}.

#include <gtest/gtest.h>

#include "eval/rem_eval.h"
#include "definability/ucrdpq_definability.h"
#include "graph/data_path.h"
#include "reductions/cnf.h"
#include "reductions/sat_reduction.h"
#include "reductions/theorem32.h"
#include "reductions/tiling.h"
#include "reductions/tiling_reduction.h"
#include "rem/register_automaton.h"

namespace gqd {
namespace {

/// n=1 (width 2), solvable with the single row [0, 1].
TilingInstance SolvableInstance() {
  TilingInstance instance;
  instance.num_tile_types = 2;
  instance.horizontal = {{0, 1}, {1, 0}};
  instance.vertical = {{0, 0}, {1, 1}};
  instance.initial_tile = 0;
  instance.final_tile = 1;
  instance.width_bits = 1;
  return instance;
}

/// n=1, unsolvable: the only horizontally-valid row is [0, 1], which ends
/// with 1 ≠ t_f = 0, and no vertical pairs exist to add rows.
TilingInstance UnsolvableInstance() {
  TilingInstance instance;
  instance.num_tile_types = 2;
  instance.horizontal = {{0, 1}};
  instance.vertical = {};
  instance.initial_tile = 0;
  instance.final_tile = 0;
  instance.width_bits = 1;
  return instance;
}

/// n=2 (width 4), solvable with one row [0, 0, 0, 1].
TilingInstance WideInstance() {
  TilingInstance instance;
  instance.num_tile_types = 2;
  instance.horizontal = {{0, 0}, {0, 1}, {1, 1}};
  instance.vertical = {{0, 0}, {1, 1}};
  instance.initial_tile = 0;
  instance.final_tile = 1;
  instance.width_bits = 2;
  return instance;
}

TEST(TilingSolver, SolvesSolvableInstance) {
  auto result = SolveCorridorTiling(SolvableInstance());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result.value().has_value());
  EXPECT_TRUE(IsLegalTiling(SolvableInstance(), *result.value()));
}

TEST(TilingSolver, DetectsUnsolvableInstance) {
  auto result = SolveCorridorTiling(UnsolvableInstance());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result.value().has_value());
}

TEST(TilingSolver, SolvesWideInstance) {
  auto result = SolveCorridorTiling(WideInstance());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result.value().has_value());
  EXPECT_TRUE(IsLegalTiling(WideInstance(), *result.value()));
  EXPECT_EQ(result.value()->rows[0].size(), 4u);
}

TEST(TilingSolver, MultiRowSolution) {
  // t_f only reachable after a vertical step: row [0,1] then [2,1].
  TilingInstance instance;
  instance.num_tile_types = 3;
  instance.horizontal = {{0, 1}, {2, 1}};
  instance.vertical = {{0, 2}, {1, 1}};
  instance.initial_tile = 0;
  instance.final_tile = 1;
  instance.width_bits = 1;
  // Single-row [0,1] already ends in 1 == t_f, so to force multiple rows
  // make t_f = a tile only present in the second row's start... instead:
  // check that IsLegalTiling accepts the stacked solution explicitly.
  TilingSolution stacked{{{0, 1}, {2, 1}}};
  EXPECT_TRUE(IsLegalTiling(instance, stacked));
  auto result = SolveCorridorTiling(instance);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().has_value());
}

TEST(TilingSolver, ValidatesInstances) {
  TilingInstance bad = SolvableInstance();
  bad.initial_tile = 9;
  EXPECT_FALSE(SolveCorridorTiling(bad).ok());
  bad = SolvableInstance();
  bad.width_bits = 9;
  EXPECT_FALSE(SolveCorridorTiling(bad).ok());
}

TEST(TilingReduction, BuildsValidGraph) {
  auto reduction = BuildTilingReduction(SolvableInstance());
  ASSERT_TRUE(reduction.ok()) << reduction.status();
  const DataGraph& g = reduction.value().graph;
  EXPECT_TRUE(g.Validate().ok());
  // Polynomial size, distinguished nodes present.
  EXPECT_LT(g.NumNodes(), 500u);
  EXPECT_EQ(g.NodeName(reduction.value().p2), "p2");
  EXPECT_EQ(g.NodeName(reduction.value().q2), "q2");
}

TEST(TilingReduction, EncodingRemDefinesP2Q2OnSolvableInstance) {
  // Forward direction of Theorem 25: a legal tiling's REM (3) evaluates to
  // exactly {⟨p2, q2⟩} on the reduction graph.
  TilingInstance instance = SolvableInstance();
  auto reduction = BuildTilingReduction(instance);
  ASSERT_TRUE(reduction.ok()) << reduction.status();
  auto solution = SolveCorridorTiling(instance);
  ASSERT_TRUE(solution.ok());
  ASSERT_TRUE(solution.value().has_value());
  auto rem = TilingEncodingRem(instance, *solution.value());
  ASSERT_TRUE(rem.ok()) << rem.status();
  BinaryRelation result = EvaluateRem(reduction.value().graph, rem.value());
  BinaryRelation expected(reduction.value().graph.NumNodes());
  expected.Set(reduction.value().p2, reduction.value().q2);
  EXPECT_EQ(expected, result)
      << RemToString(rem.value()) << "\n"
      << result.ToString(reduction.value().graph);
}

TEST(TilingReduction, EncodingRemDefinesP2Q2OnWideInstance) {
  TilingInstance instance = WideInstance();
  auto reduction = BuildTilingReduction(instance);
  ASSERT_TRUE(reduction.ok()) << reduction.status();
  auto solution = SolveCorridorTiling(instance);
  ASSERT_TRUE(solution.ok());
  ASSERT_TRUE(solution.value().has_value());
  auto rem = TilingEncodingRem(instance, *solution.value());
  ASSERT_TRUE(rem.ok()) << rem.status();
  BinaryRelation result = EvaluateRem(reduction.value().graph, rem.value());
  BinaryRelation expected(reduction.value().graph.NumNodes());
  expected.Set(reduction.value().p2, reduction.value().q2);
  EXPECT_EQ(expected, result);
}

/// Shared machinery for the condition-2/3/4 sweeps: enumerate every
/// p2→q2 data path up to `max_letters`, classify it as a legal or illegal
/// encoding, and compare against the e[w]-based p1→q1 test.
void CheckConditions(const TilingInstance& instance,
                     std::size_t max_letters, bool expect_some_legal) {
  auto reduction_or = BuildTilingReduction(instance);
  ASSERT_TRUE(reduction_or.ok()) << reduction_or.status();
  const TilingReduction& reduction = reduction_or.value();
  const DataGraph& g = reduction.graph;

  std::size_t legal_count = 0, illegal_count = 0;
  for (const DataPath& w :
       EnumerateConnectingPaths(g, reduction.p2, reduction.q2, max_letters)) {
    auto decoded = DecodeTilingPath(instance, w, g.labels());
    bool legal =
        decoded.has_value() && IsLegalTiling(instance, *decoded);
    (legal ? legal_count : illegal_count)++;
    // e[w] evaluates on the graph; by Lemma 15 its relation is the set of
    // pairs connected by automorphic copies of w.
    RemPtr path_rem = BuildPathRem(w, g.labels());
    BinaryRelation connected = EvaluateRem(g, path_rem);
    EXPECT_TRUE(connected.Test(reduction.p2, reduction.q2));
    if (legal) {
      // Condition 3: legal encodings (and their automorphic copies) never
      // connect p1 to q1.
      EXPECT_FALSE(connected.Test(reduction.p1, reduction.q1))
          << "legal path caught by a gadget: " << w.ToString(g);
    } else {
      // Condition 4: every illegal path has an automorphic copy p1→q1.
      EXPECT_TRUE(connected.Test(reduction.p1, reduction.q1))
          << "illegal path missed by all gadgets: " << w.ToString(g);
    }
  }
  EXPECT_GT(illegal_count, 0u);
  EXPECT_EQ(expect_some_legal, legal_count > 0) << legal_count;
}

TEST(TilingReduction, ConditionsHoldOnSolvableInstance) {
  // Width 2: one-row encodings have 4 letters, two-row encodings 6.
  CheckConditions(SolvableInstance(), 6, /*expect_some_legal=*/true);
}

TEST(TilingReduction, ConditionsHoldOnUnsolvableInstance) {
  CheckConditions(UnsolvableInstance(), 6, /*expect_some_legal=*/false);
}

TEST(TilingReduction, ConditionTwoEveryTilingEncodable) {
  // Condition 2: the encoding of any legal tiling is a p2→q2 path — via
  // REM (3), whose relation we already checked equals {⟨p2,q2⟩}; here we
  // additionally decode one enumerated legal path back to the solver's
  // solution shape.
  TilingInstance instance = SolvableInstance();
  auto reduction = BuildTilingReduction(instance);
  ASSERT_TRUE(reduction.ok());
  const DataGraph& g = reduction.value().graph;
  bool found_solver_solution = false;
  auto solution = SolveCorridorTiling(instance);
  ASSERT_TRUE(solution.ok() && solution.value().has_value());
  for (const DataPath& w : EnumerateConnectingPaths(
           g, reduction.value().p2, reduction.value().q2, 6)) {
    auto decoded = DecodeTilingPath(instance, w, g.labels());
    if (decoded.has_value() && decoded->rows == solution.value()->rows) {
      found_solver_solution = true;
    }
  }
  EXPECT_TRUE(found_solver_solution);
}

TEST(TilingReduction, DecodeRejectsMalformedPaths) {
  TilingInstance instance = SolvableInstance();
  auto reduction = BuildTilingReduction(instance);
  ASSERT_TRUE(reduction.ok());
  const DataGraph& g = reduction.value().graph;
  StringInterner labels = g.labels();
  auto label = [&](const char* name) { return *labels.Find(name); };
  // No dollars at all.
  DataPath no_dollar{{0, 1}, {label("t0")}};
  EXPECT_FALSE(DecodeTilingPath(instance, no_dollar, labels).has_value());
  // Dollar-wrapped but empty body.
  DataPath empty_body{{0, 1, 2}, {label("$"), label("$")}};
  EXPECT_FALSE(DecodeTilingPath(instance, empty_body, labels).has_value());
}

// --- CNF / DPLL -------------------------------------------------------------

TEST(Cnf, DimacsRoundTrip) {
  CnfFormula f;
  f.num_variables = 3;
  f.clauses = {{1, -2, 3}, {-1, 2, 2}};
  std::string text = WriteDimacs(f);
  auto parsed = ParseDimacs(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().num_variables, 3u);
  EXPECT_EQ(parsed.value().clauses, f.clauses);
}

TEST(Cnf, DimacsRejectsMalformed) {
  EXPECT_FALSE(ParseDimacs("1 2 0\n").ok());
  EXPECT_FALSE(ParseDimacs("p cnf 2 1\n1 2\n").ok());
  EXPECT_FALSE(ParseDimacs("p cnf 2 2\n1 2 0\n").ok());
  EXPECT_FALSE(ParseDimacs("p cnf 1 1\n5 0\n").ok());
}

TEST(Cnf, DimacsErrorsNameTheLine) {
  auto clause_first = ParseDimacs("c comment\n1 2 0\n");
  ASSERT_FALSE(clause_first.ok());
  EXPECT_NE(clause_first.status().message().find("line 2"),
            std::string::npos)
      << clause_first.status();

  auto unterminated = ParseDimacs("p cnf 2 1\n1 2\n");
  ASSERT_FALSE(unterminated.ok());
  EXPECT_NE(unterminated.status().message().find("line 2"),
            std::string::npos)
      << unterminated.status();

  auto bad_header = ParseDimacs("p cnf nope 1\n");
  ASSERT_FALSE(bad_header.ok());
  EXPECT_NE(bad_header.status().message().find("line 1"), std::string::npos)
      << bad_header.status();
}

TEST(Dpll, SolvesSatisfiable) {
  CnfFormula f;
  f.num_variables = 3;
  f.clauses = {{1, 2, 3}, {-1, -2, -3}, {1, -2, 3}};
  auto result = SolveCnf(f);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().has_value());
  EXPECT_TRUE(Satisfies(f, *result.value()));
}

TEST(Dpll, DetectsUnsatisfiable) {
  // All eight sign patterns over three variables.
  CnfFormula f;
  f.num_variables = 3;
  for (int mask = 0; mask < 8; mask++) {
    std::vector<Literal> clause;
    for (int v = 1; v <= 3; v++) {
      clause.push_back((mask >> (v - 1)) & 1 ? v : -v);
    }
    f.clauses.push_back(clause);
  }
  auto result = SolveCnf(f);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().has_value());
}

TEST(Dpll, MatchesBruteForceOnRandomFormulas) {
  for (std::uint64_t seed = 1; seed <= 30; seed++) {
    CnfFormula f = RandomThreeCnf(4, 6 + seed % 5, seed);
    auto result = SolveCnf(f);
    ASSERT_TRUE(result.ok());
    // Brute force over 2^4 assignments.
    bool brute_sat = false;
    for (int mask = 0; mask < 16; mask++) {
      Assignment a(5, false);
      for (int v = 1; v <= 4; v++) {
        a[v] = (mask >> (v - 1)) & 1;
      }
      if (Satisfies(f, a)) {
        brute_sat = true;
        break;
      }
    }
    EXPECT_EQ(result.value().has_value(), brute_sat) << "seed " << seed;
  }
}

TEST(Cnf, ToThreeCnfPads) {
  CnfFormula f;
  f.num_variables = 2;
  f.clauses = {{1}, {1, -2}};
  auto three = f.ToThreeCnf();
  ASSERT_TRUE(three.ok());
  EXPECT_TRUE(three.value().IsThreeCnf());
  // Padded clauses are logically equivalent.
  for (int mask = 0; mask < 4; mask++) {
    Assignment a(3, false);
    a[1] = mask & 1;
    a[2] = (mask >> 1) & 1;
    EXPECT_EQ(Satisfies(f, a), Satisfies(three.value(), a));
  }
}

// --- Theorem 35 reduction ----------------------------------------------------

TEST(SatReduction, SatisfiableYieldsViolatingHomomorphism) {
  CnfFormula f;
  f.num_variables = 3;
  f.clauses = {{1, 2, 3}, {-1, -2, 3}};
  auto reduction = BuildSatReduction(f);
  ASSERT_TRUE(reduction.ok()) << reduction.status();
  auto assignment = SolveCnf(f);
  ASSERT_TRUE(assignment.ok());
  ASSERT_TRUE(assignment.value().has_value());
  auto hom = HomomorphismFromAssignment(f, reduction.value(),
                                        *assignment.value());
  ASSERT_TRUE(hom.ok()) << hom.status();
  // The induced mapping is a data-graph homomorphism that maps a tuple of
  // S outside S (Lemma 34's certificate, constructively).
  EXPECT_TRUE(IsDataGraphHomomorphism(reduction.value().graph, hom.value()));
  bool violates = false;
  for (const NodeTuple& t : reduction.value().relation.tuples()) {
    if (!reduction.value().relation.Contains({hom.value()[t[0]]})) {
      violates = true;
    }
  }
  EXPECT_TRUE(violates);
}

class SatReductionEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SatReductionEquivalence, UnsatIffDefinable) {
  // Theorem 35 end-to-end on random 3-CNF: F unsatisfiable ⟺ S is
  // UCRDPQ-definable on the Figure-3 graph.
  CnfFormula f = RandomThreeCnf(3, 2 + GetParam() % 3, GetParam() * 131);
  auto reduction = BuildSatReduction(f);
  ASSERT_TRUE(reduction.ok()) << reduction.status();
  auto sat = SolveCnf(f);
  ASSERT_TRUE(sat.ok());
  auto definable = CheckUcrdpqDefinability(reduction.value().graph,
                                           reduction.value().relation);
  ASSERT_TRUE(definable.ok()) << definable.status();
  ASSERT_NE(definable.value().verdict, DefinabilityVerdict::kBudgetExhausted);
  EXPECT_EQ(definable.value().verdict == DefinabilityVerdict::kDefinable,
            !sat.value().has_value())
      << WriteDimacs(f);
  if (definable.value().verdict == DefinabilityVerdict::kNotDefinable) {
    ASSERT_TRUE(definable.value().violating_homomorphism.has_value());
    EXPECT_TRUE(IsDataGraphHomomorphism(
        reduction.value().graph, *definable.value().violating_homomorphism));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomFormulas, SatReductionEquivalence,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(SatReduction, RejectsNonThreeCnf) {
  CnfFormula f;
  f.num_variables = 1;
  f.clauses = {{1}};
  EXPECT_FALSE(BuildSatReduction(f).ok());
}

// --- Theorem 32 --------------------------------------------------------------

TEST(Theorem32, ConstantValueGraphPreservesStructure) {
  DataGraph g;
  g.AddLabel("a");
  g.AddDataValue("7");
  g.AddDataValue("9");
  NodeId u = g.AddNodeWithValue("7", "u");
  NodeId v = g.AddNodeWithValue("9", "v");
  g.AddEdgeByName(u, "a", v);
  DataGraph h = WithConstantDataValue(g);
  EXPECT_EQ(h.NumNodes(), 2u);
  EXPECT_EQ(h.NumDataValues(), 1u);
  EXPECT_EQ(h.NumEdges(), 1u);
  EXPECT_EQ(h.DataValueOf(0), h.DataValueOf(1));
  EXPECT_TRUE(h.HasEdge(u, 0, v));
  EXPECT_EQ(h.NodeName(u), "u");
}

}  // namespace
}  // namespace gqd
