// End-to-end pipelines that thread several subsystems together:
//   * tiling → reduction → REM (3) → witness extraction → decode → the
//     same tiling (a full round trip through five modules);
//   * k-REM witnesses satisfy Definition 17 directly on random graphs;
//   * the simplifier is idempotent and composes with synthesis.

#include <gtest/gtest.h>

#include "definability/krem_definability.h"
#include "eval/explain.h"
#include "eval/rem_eval.h"
#include "eval/ree_eval.h"
#include "graph/generators.h"
#include "reductions/tiling.h"
#include "reductions/tiling_reduction.h"
#include "ree/parser.h"
#include "synthesis/simplify.h"
#include "synthesis/synthesis.h"

namespace gqd {
namespace {

TEST(EndToEnd, TilingSurvivesTheFullPipeline) {
  // Solve a tiling; encode it as REM (3); ask the explainer for the
  // witness data path on the reduction graph; decode that path back into
  // a tiling. The decoded tiling must be legal — and for this instance,
  // identical to the solver's solution.
  TilingInstance instance;
  instance.num_tile_types = 2;
  instance.horizontal = {{0, 1}, {1, 0}};
  instance.vertical = {{0, 0}, {1, 1}};
  instance.initial_tile = 0;
  instance.final_tile = 1;
  instance.width_bits = 1;

  auto solution = SolveCorridorTiling(instance);
  ASSERT_TRUE(solution.ok());
  ASSERT_TRUE(solution.value().has_value());

  auto reduction = BuildTilingReduction(instance);
  ASSERT_TRUE(reduction.ok());

  auto rem = TilingEncodingRem(instance, *solution.value());
  ASSERT_TRUE(rem.ok());

  auto witness = ExplainRemPair(reduction.value().graph, rem.value(),
                                reduction.value().p2, reduction.value().q2);
  ASSERT_TRUE(witness.has_value());

  auto decoded = DecodeTilingPath(instance, witness->data_path,
                                  reduction.value().graph.labels());
  ASSERT_TRUE(decoded.has_value())
      << witness->data_path.ToString(reduction.value().graph);
  EXPECT_TRUE(IsLegalTiling(instance, *decoded));
  EXPECT_EQ(decoded->rows, solution.value()->rows);
}

TEST(EndToEnd, WideTilingSurvivesTheFullPipeline) {
  TilingInstance instance;
  instance.num_tile_types = 2;
  instance.horizontal = {{0, 0}, {0, 1}, {1, 1}};
  instance.vertical = {{0, 0}, {1, 1}};
  instance.initial_tile = 0;
  instance.final_tile = 1;
  instance.width_bits = 2;

  auto solution = SolveCorridorTiling(instance);
  ASSERT_TRUE(solution.ok() && solution.value().has_value());
  auto reduction = BuildTilingReduction(instance);
  ASSERT_TRUE(reduction.ok());
  auto rem = TilingEncodingRem(instance, *solution.value());
  ASSERT_TRUE(rem.ok());
  auto witness = ExplainRemPair(reduction.value().graph, rem.value(),
                                reduction.value().p2, reduction.value().q2);
  ASSERT_TRUE(witness.has_value());
  auto decoded = DecodeTilingPath(instance, witness->data_path,
                                  reduction.value().graph.labels());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(IsLegalTiling(instance, *decoded));
}

class WitnessProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WitnessProperty, WitnessesSatisfyDefinition17) {
  // Definition 17, verified semantically: each returned witness's basic
  // k-REM (1) connects its pair and (2) adds no extraneous pairs.
  DataGraph g = RandomDataGraph({.num_nodes = 4,
                                 .num_labels = 2,
                                 .num_data_values = 2,
                                 .edge_percent = 30,
                                 .seed = GetParam()});
  BinaryRelation s = EvaluateRem(
      g, rem::Bind({0}, rem::Concat({rem::Letter("a"),
                                     rem::Test(rem::Letter("a"),
                                               cond::RegisterEq(0))})));
  auto result = CheckKRemDefinability(g, s, 1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().verdict, DefinabilityVerdict::kDefinable)
      << "seed " << GetParam();
  for (const KRemWitness& witness : result.value().witnesses) {
    RemPtr e = BasicRemFromBlocks(witness.blocks, 1, g.labels());
    BinaryRelation defined = EvaluateRem(g, e);
    EXPECT_TRUE(defined.Test(witness.from, witness.to))
        << RemToString(e);  // condition 1: connecting path
    EXPECT_TRUE(defined.IsSubsetOf(s))
        << RemToString(e);  // condition 2: no extraneous pairs
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, WitnessProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(EndToEnd, SimplifierIsIdempotent) {
  for (std::uint64_t seed = 1; seed <= 6; seed++) {
    DataGraph g = RandomDataGraph({.num_nodes = 4,
                                   .num_labels = 2,
                                   .num_data_values = 2,
                                   .edge_percent = 30,
                                   .seed = seed});
    BinaryRelation s = EvaluateRee(g, ParseRee("(a+)= | (b)!=").ValueOrDie());
    auto synthesized = SynthesizeReeQuery(g, s);
    ASSERT_TRUE(synthesized.ok());
    if (!synthesized.value().has_value()) {
      continue;
    }
    auto once = SimplifyReeOnGraph(g, *synthesized.value(), s);
    ASSERT_TRUE(once.ok());
    auto twice = SimplifyReeOnGraph(g, once.value(), s);
    ASSERT_TRUE(twice.ok());
    EXPECT_EQ(ReeToString(once.value()), ReeToString(twice.value()))
        << "seed " << seed;
  }
}

TEST(EndToEnd, SynthesizedReeNormalizesWithoutChangingTheRelation) {
  DataGraph g = RandomDataGraph({.num_nodes = 5,
                                 .num_labels = 2,
                                 .num_data_values = 2,
                                 .edge_percent = 25,
                                 .seed = 21});
  BinaryRelation s = EvaluateRee(g, ParseRee("(a (b)= | b)=").ValueOrDie());
  auto synthesized = SynthesizeReeQuery(g, s);
  ASSERT_TRUE(synthesized.ok());
  ASSERT_TRUE(synthesized.value().has_value());
  ReePtr normalized = NormalizeRee(*synthesized.value());
  EXPECT_EQ(EvaluateRee(g, normalized), s);
}

}  // namespace
}  // namespace gqd
