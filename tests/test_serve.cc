// End-to-end tests for `gqd serve` over real TCP sockets: concurrent
// clients, batched evaluation vs the single-threaded evaluators, deadline
// enforcement over the wire, admission control and load shedding,
// per-request budgets, request-size limits, stats, and shutdown.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "eval/ree_eval.h"
#include "eval/rem_eval.h"
#include "eval/rpq_eval.h"
#include "graph/examples.h"
#include "graph/generators.h"
#include "graph/serialization.h"
#include "obs/trace_context.h"
#include "ree/parser.h"
#include "regex/parser.h"
#include "rem/parser.h"
#include "runtime/client.h"
#include "runtime/json.h"
#include "runtime/server.h"
#include "runtime/service.h"

namespace gqd {
namespace {

/// A service + server bound to an ephemeral loopback port.
class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<Server>(&service_);
    ASSERT_TRUE(server_->Start(0).ok());
  }

  void TearDown() override {
    server_->Stop();
    server_->Wait();
  }

  /// One request/response round trip on a fresh connection.
  std::string Call(const std::string& request) {
    LineClient client;
    EXPECT_TRUE(client.Connect(server_->port()).ok());
    auto response = client.Call(request);
    EXPECT_TRUE(response.ok()) << response.status();
    return response.ok() ? response.value() : "";
  }

  QueryService service_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServeTest, LoadEvalInfoRoundTrip) {
  JsonValue::Object load;
  load.emplace_back("cmd", "load");
  load.emplace_back("name", "fig1");
  load.emplace_back("text", WriteGraphText(Figure1Graph()));
  std::string loaded = Call(JsonValue(std::move(load)).Serialize());
  auto parsed = JsonValue::Parse(loaded);
  ASSERT_TRUE(parsed.ok()) << loaded;
  EXPECT_TRUE(parsed.value().Find("ok")->AsBool());
  EXPECT_EQ(parsed.value().GetString("fingerprint").ValueOrDie().size(),
            16u);
  EXPECT_EQ(parsed.value().Find("info")->Find("nodes")->AsNumber(), 10);

  std::string evaled = Call(
      R"({"id":"q1","cmd":"eval","graph":"fig1","language":"rpq",)"
      R"("query":"a.a.a"})");
  auto eval_parsed = JsonValue::Parse(evaled);
  ASSERT_TRUE(eval_parsed.ok()) << evaled;
  EXPECT_TRUE(eval_parsed.value().Find("ok")->AsBool());
  EXPECT_EQ(eval_parsed.value().GetString("id").ValueOrDie(), "q1");
  DataGraph g = Figure1Graph();
  EXPECT_EQ(eval_parsed.value().GetString("relation").ValueOrDie(),
            EvaluateRpq(g, ParseRegex("a.a.a").ValueOrDie()).ToString(g));

  std::string info = Call(R"({"cmd":"info","graph":"fig1"})");
  EXPECT_NE(info.find("\"fingerprint\""), std::string::npos) << info;
}

TEST_F(ServeTest, FourConcurrentClients) {
  service_.registry().Register("fig1", Figure1Graph());
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 50;
  std::vector<int> failures(kClients, 0);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; c++) {
    clients.emplace_back([this, c, &failures] {
      LineClient client;
      if (!client.Connect(server_->port()).ok()) {
        failures[c] = kRequestsPerClient;
        return;
      }
      const char* queries[] = {"a+", "a.a", "a.a.a", "a*"};
      for (int i = 0; i < kRequestsPerClient; i++) {
        JsonValue::Object request;
        request.emplace_back("cmd", "eval");
        request.emplace_back("graph", "fig1");
        request.emplace_back("language", "rpq");
        request.emplace_back("query", queries[(c + i) % 4]);
        auto response =
            client.Call(JsonValue(std::move(request)).Serialize());
        if (!response.ok() ||
            response.value().find("\"ok\":true") == std::string::npos) {
          failures[c]++;
        }
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
  for (int c = 0; c < kClients; c++) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }
  EXPECT_GE(service_.total_requests(),
            static_cast<std::uint64_t>(kClients * kRequestsPerClient));
}

TEST_F(ServeTest, BatchMatchesSingleThreadedEval) {
  service_.registry().Register("fig1", Figure1Graph());
  DataGraph g = Figure1Graph();
  // One batch per language; each result must equal the plain
  // single-threaded evaluator's rendering (the `gqd eval` code path).
  struct Case {
    const char* language;
    std::vector<std::string> queries;
    std::vector<std::string> expected;
  };
  std::vector<Case> cases;
  {
    Case c;
    c.language = "rpq";
    c.queries = {"a", "a.a", "a.a.a", "a+", "a*"};
    for (const std::string& q : c.queries) {
      c.expected.push_back(
          EvaluateRpq(g, ParseRegex(q).ValueOrDie()).ToString(g));
    }
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.language = "rem";
    c.queries = {"$r1. a+ [r1=]", "$r1. a.a [r1!=]"};
    for (const std::string& q : c.queries) {
      c.expected.push_back(
          EvaluateRem(g, ParseRem(q).ValueOrDie()).ToString(g));
    }
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.language = "ree";
    c.queries = {"(a.a)=", "(a+)="};
    for (const std::string& q : c.queries) {
      c.expected.push_back(
          EvaluateRee(g, ParseRee(q).ValueOrDie()).ToString(g));
    }
    cases.push_back(std::move(c));
  }
  for (const Case& test_case : cases) {
    JsonValue::Object request;
    request.emplace_back("cmd", "eval");
    request.emplace_back("graph", "fig1");
    request.emplace_back("language", test_case.language);
    JsonValue::Array queries;
    for (const std::string& q : test_case.queries) {
      queries.emplace_back(q);
    }
    request.emplace_back("queries", JsonValue(std::move(queries)));
    std::string response = Call(JsonValue(std::move(request)).Serialize());
    auto parsed = JsonValue::Parse(response);
    ASSERT_TRUE(parsed.ok()) << response;
    ASSERT_TRUE(parsed.value().Find("ok")->AsBool()) << response;
    const JsonValue::Array& results =
        parsed.value().Find("results")->AsArray();
    ASSERT_EQ(results.size(), test_case.queries.size());
    for (std::size_t i = 0; i < results.size(); i++) {
      EXPECT_TRUE(results[i].Find("ok")->AsBool());
      EXPECT_EQ(results[i].GetString("relation").ValueOrDie(),
                test_case.expected[i])
          << test_case.language << " " << test_case.queries[i];
    }
  }
}

TEST_F(ServeTest, BatchReportsPerQueryErrors) {
  service_.registry().Register("fig1", Figure1Graph());
  std::string response = Call(
      R"({"cmd":"eval","graph":"fig1","language":"rpq",)"
      R"("queries":["a+","((","a.a"]})");
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  ASSERT_TRUE(parsed.value().Find("ok")->AsBool()) << response;
  const JsonValue::Array& results =
      parsed.value().Find("results")->AsArray();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].Find("ok")->AsBool());
  EXPECT_FALSE(results[1].Find("ok")->AsBool());
  EXPECT_NE(results[1].Find("error"), nullptr);
  EXPECT_TRUE(results[2].Find("ok")->AsBool());
}

TEST_F(ServeTest, DeadlineExceededOverTheWire) {
  // A definability instance that runs for minutes unconstrained must come
  // back as DeadlineExceeded well within deadline + grace.
  RandomGraphOptions options;
  options.num_nodes = 12;
  options.num_labels = 2;
  options.num_data_values = 6;
  options.edge_percent = 25;
  options.seed = 7;
  DataGraph g = RandomDataGraph(options);
  BinaryRelation s = RandomRelation(g.NumNodes(), 30, 11);
  std::string relation_text = WriteRelationText(g, s);
  service_.registry().Register("hard", std::move(g));

  JsonValue::Object request;
  request.emplace_back("cmd", "check");
  request.emplace_back("graph", "hard");
  request.emplace_back("checker", "krem");
  request.emplace_back("k", 3.0);
  request.emplace_back("relation", relation_text);
  request.emplace_back("deadline_ms", 100.0);
  auto start = std::chrono::steady_clock::now();
  std::string response = Call(JsonValue(std::move(request)).Serialize());
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_FALSE(parsed.value().Find("ok")->AsBool()) << response;
  EXPECT_EQ(
      parsed.value().Find("error")->GetString("code").ValueOrDie(),
      "DeadlineExceeded")
      << response;
  EXPECT_LT(elapsed_ms, 2000.0);
}

TEST_F(ServeTest, LoadErrorsCarryLineNumbers) {
  std::string response = Call(
      R"({"cmd":"load","name":"bad","text":"node u 0\nbogus here\n"})");
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_FALSE(parsed.value().Find("ok")->AsBool());
  EXPECT_NE(parsed.value()
                .Find("error")
                ->GetString("message")
                .ValueOrDie()
                .find("line 2"),
            std::string::npos)
      << response;
}

TEST_F(ServeTest, LintAndStatsCommands) {
  service_.registry().Register("fig1", Figure1Graph());
  std::string lint = Call(
      R"({"cmd":"lint","language":"rem","query":"$r1. a+ [r1=]",)"
      R"("graph":"fig1"})");
  auto lint_parsed = JsonValue::Parse(lint);
  ASSERT_TRUE(lint_parsed.ok()) << lint;
  EXPECT_TRUE(lint_parsed.value().Find("ok")->AsBool()) << lint;
  EXPECT_TRUE(lint_parsed.value().Find("diagnostics")->is_array());

  (void)Call(
      R"({"cmd":"eval","graph":"fig1","language":"rpq","query":"a+"})");
  std::string stats = Call(R"({"cmd":"stats"})");
  auto stats_parsed = JsonValue::Parse(stats);
  ASSERT_TRUE(stats_parsed.ok()) << stats;
  const JsonValue* body = stats_parsed.value().Find("stats");
  ASSERT_NE(body, nullptr);
  EXPECT_GE(body->GetInt("requests").ValueOrDie(), 2);
  ASSERT_NE(body->Find("cache"), nullptr);
  ASSERT_NE(body->Find("pool"), nullptr);
  ASSERT_NE(body->Find("latency_histogram_us"), nullptr);
}

TEST_F(ServeTest, TracedEvalReturnsSpanTreeInline) {
  service_.registry().Register("fig1", Figure1Graph());
  std::string traced = Call(
      R"({"cmd":"eval","graph":"fig1","language":"rpq","query":"a+",)"
      R"("trace":true})");
  auto parsed = JsonValue::Parse(traced);
  ASSERT_TRUE(parsed.ok()) << traced;
  EXPECT_TRUE(parsed.value().Find("ok")->AsBool()) << traced;
  const JsonValue* trace = parsed.value().Find("trace");
  ASSERT_NE(trace, nullptr) << traced;
  ASSERT_TRUE(trace->is_array()) << traced;
#ifndef GQD_DISABLE_TRACING
  // The span tree covers the full serving path: admission gate, cache
  // lookup, and the handler, all nested under serve.request.
  EXPECT_NE(traced.find("\"serve.request\""), std::string::npos) << traced;
  EXPECT_NE(traced.find("\"serve.admission\""), std::string::npos) << traced;
  EXPECT_NE(traced.find("\"serve.handler\""), std::string::npos) << traced;
  EXPECT_NE(traced.find("\"serve.cache_lookup\""), std::string::npos)
      << traced;
  // A cold cache lookup reports hit: 0.
  EXPECT_NE(traced.find("\"hit\":0"), std::string::npos) << traced;
#endif  // GQD_DISABLE_TRACING

  // Without trace:true no trace field is attached.
  std::string untraced = Call(
      R"({"cmd":"eval","graph":"fig1","language":"rpq","query":"a.a"})");
  EXPECT_EQ(untraced.find("\"trace\""), std::string::npos) << untraced;
}

#ifndef GQD_DISABLE_TRACING

// The distributed-tracing path: a request carrying a traceparent string
// records spans quietly; the router (here: the test) drains them later
// with the `spans` command.
TEST_F(ServeTest, StringTraceContextRecordsSpansForTheSpansDrain) {
  service_.registry().Register("fig1", Figure1Graph());
  TraceContext context = TraceContext::Mint();
  context.parent_span = 42;  // plays the router's transport span

  JsonValue::Object request;
  request.emplace_back("cmd", "eval");
  request.emplace_back("graph", "fig1");
  request.emplace_back("language", "rpq");
  request.emplace_back("query", "a+");
  request.emplace_back("trace", context.ToTraceparent());
  std::string response = Call(JsonValue(std::move(request)).Serialize());
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_TRUE(parsed.value().Find("ok")->AsBool()) << response;
  // The response echoes the trace id but embeds no inline tree — the
  // spans wait server-side for the drain.
  EXPECT_EQ(parsed.value().GetString("trace_id").ValueOrDie(),
            context.TraceIdHex());
  EXPECT_EQ(response.find("\"serve.request\""), std::string::npos)
      << response;

  JsonValue::Object drain;
  drain.emplace_back("cmd", "spans");
  drain.emplace_back("trace", context.ToTraceparent());
  std::string drain_line = JsonValue(std::move(drain)).Serialize();
  std::string drained = Call(drain_line);
  auto drain_parsed = JsonValue::Parse(drained);
  ASSERT_TRUE(drain_parsed.ok()) << drained;
  EXPECT_TRUE(drain_parsed.value().Find("ok")->AsBool()) << drained;
  EXPECT_EQ(drain_parsed.value().GetString("trace_id").ValueOrDie(),
            context.TraceIdHex());
  ASSERT_NE(drain_parsed.value().Find("now_ns"), nullptr) << drained;
  EXPECT_GT(drain_parsed.value().Find("now_ns")->AsNumber(), 0) << drained;
  const JsonValue* spans = drain_parsed.value().Find("spans");
  ASSERT_NE(spans, nullptr) << drained;
  ASSERT_TRUE(spans->is_array()) << drained;
  std::vector<OwnedSpan> batch =
      ParseSpanBatch(spans->Serialize(), "worker 0", 2);
  ASSERT_FALSE(batch.empty()) << drained;
  bool found_request = false;
  for (const OwnedSpan& span : batch) {
    if (span.name == "serve.request") {
      found_request = true;
      // The request root parented under the caller's span id.
      EXPECT_EQ(span.parent_id, 42u);
    }
  }
  EXPECT_TRUE(found_request) << drained;

  // Take is destructive: a second drain of the same trace is empty.
  std::string again = Call(drain_line);
  EXPECT_NE(again.find("\"spans\":[]"), std::string::npos) << again;
}

#endif  // GQD_DISABLE_TRACING

TEST_F(ServeTest, SpansCommandRejectsMissingOrMalformedTrace) {
  EXPECT_NE(Call(R"({"cmd":"spans"})").find("\"ok\":false"),
            std::string::npos);
  std::string bad = Call(R"({"cmd":"spans","trace":"garbage"})");
  EXPECT_NE(bad.find("\"ok\":false"), std::string::npos) << bad;
  EXPECT_NE(bad.find("traceparent"), std::string::npos) << bad;
}

TEST_F(ServeTest, LogCommandReturnsStructuredEvents) {
  JsonValue::Object load;
  load.emplace_back("cmd", "load");
  load.emplace_back("name", "fig1");
  load.emplace_back("text", WriteGraphText(Figure1Graph()));
  std::string loaded = Call(JsonValue(std::move(load)).Serialize());
  EXPECT_NE(loaded.find("\"ok\":true"), std::string::npos) << loaded;

  std::string response = Call(R"({"cmd":"log"})");
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_TRUE(parsed.value().Find("ok")->AsBool()) << response;
  EXPECT_GE(parsed.value().GetInt("emitted").ValueOrDie(), 1);
  const JsonValue* events = parsed.value().Find("events");
  ASSERT_NE(events, nullptr) << response;
  ASSERT_TRUE(events->is_array()) << response;
  bool found_load = false;
  for (const JsonValue& event : events->AsArray()) {
    if (event.GetStringOr("event", "").ValueOrDie() == "graph_load" &&
        event.GetStringOr("graph", "").ValueOrDie() == "fig1") {
      found_load = true;
      EXPECT_EQ(event.GetStringOr("component", "").ValueOrDie(), "serve");
      EXPECT_EQ(event.GetStringOr("level", "").ValueOrDie(), "info");
    }
  }
  EXPECT_TRUE(found_load) << response;

  // The min_level filter narrows the snapshot; garbage is rejected.
  std::string errors_only = Call(R"({"cmd":"log","min_level":"error"})");
  EXPECT_NE(errors_only.find("\"ok\":true"), std::string::npos)
      << errors_only;
  EXPECT_EQ(errors_only.find("graph_load"), std::string::npos)
      << errors_only;
  EXPECT_NE(Call(R"({"cmd":"log","min_level":"loud"})").find("\"ok\":false"),
            std::string::npos);
}

TEST_F(ServeTest, MetricsCommandRendersPrometheusText) {
  service_.registry().Register("fig1", Figure1Graph());
  (void)Call(
      R"({"cmd":"eval","graph":"fig1","language":"rpq","query":"a+"})");
  std::string response = Call(R"({"cmd":"metrics"})");
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_TRUE(parsed.value().Find("ok")->AsBool()) << response;
  std::string text = parsed.value().GetString("metrics").ValueOrDie();
  // Every serving subsystem exposes at least one family.
  EXPECT_NE(text.find("# TYPE gqd_requests_total counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("gqd_request_latency_us_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("gqd_command_requests_total{command=\"eval\"}"),
            std::string::npos);
  EXPECT_NE(text.find("gqd_cache_hits_total"), std::string::npos);
  EXPECT_NE(text.find("gqd_pool_threads"), std::string::npos);
  EXPECT_NE(text.find("gqd_admission_admitted_total"), std::string::npos);
  // Budget-axis counters are pre-registered so dashboards see zeros
  // before the first trip.
  EXPECT_NE(text.find("gqd_budget_exhausted_total{axis=\"bytes\"} 0"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("gqd_budget_exhausted_total{axis=\"tuples\"}"),
            std::string::npos);
  EXPECT_NE(text.find("gqd_budget_exhausted_total{axis=\"wall\"}"),
            std::string::npos);
  // Failpoint sites registered anywhere in the binary are mirrored.
  EXPECT_NE(text.find("gqd_failpoint_triggered_total{site="),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("gqd_failpoint_hits_total{site="), std::string::npos);
}

TEST_F(ServeTest, StatsReportPerCommandLatencyQuantiles) {
  service_.registry().Register("fig1", Figure1Graph());
  (void)Call(
      R"({"cmd":"eval","graph":"fig1","language":"rpq","query":"a+"})");
  (void)Call(R"({"cmd":"ping"})");
  std::string stats = Call(R"({"cmd":"stats"})");
  auto parsed = JsonValue::Parse(stats);
  ASSERT_TRUE(parsed.ok()) << stats;
  const JsonValue* body = parsed.value().Find("stats");
  ASSERT_NE(body, nullptr);
  const JsonValue* per_command = body->Find("per_command_latency_us");
  ASSERT_NE(per_command, nullptr) << stats;
  const JsonValue* eval_latency = per_command->Find("eval");
  ASSERT_NE(eval_latency, nullptr) << stats;
  EXPECT_GE(eval_latency->GetInt("count").ValueOrDie(), 1);
  EXPECT_GE(eval_latency->GetInt("p99").ValueOrDie(),
            eval_latency->GetInt("p50").ValueOrDie());
  ASSERT_NE(body->Find("budget_exhausted"), nullptr) << stats;
  EXPECT_EQ(body->Find("budget_exhausted")->GetInt("bytes").ValueOrDie(), 0);
}

TEST_F(ServeTest, MalformedRequestsGetErrors) {
  EXPECT_NE(Call("this is not json").find("\"ok\":false"),
            std::string::npos);
  EXPECT_NE(Call("[1,2,3]").find("must be a JSON object"),
            std::string::npos);
  EXPECT_NE(Call(R"({"cmd":"frobnicate"})").find("unknown command"),
            std::string::npos);
  EXPECT_NE(Call(R"({"cmd":"eval"})").find("graph"), std::string::npos);
}

TEST_F(ServeTest, PingRoundTrip) {
  std::string response = Call(R"({"cmd":"ping"})");
  EXPECT_NE(response.find("\"pong\":true"), std::string::npos) << response;
}

TEST_F(ServeTest, PerRequestBudgetReturnsPartialProgress) {
  // The same hard instance as DeadlineExceededOverTheWire, but bounded by a
  // per-request byte budget instead of a deadline: the response must be a
  // *successful* budget-exhausted verdict with a partial-progress report.
  RandomGraphOptions options;
  options.num_nodes = 12;
  options.num_labels = 2;
  options.num_data_values = 6;
  options.edge_percent = 25;
  options.seed = 7;
  DataGraph g = RandomDataGraph(options);
  BinaryRelation s = RandomRelation(g.NumNodes(), 30, 11);
  std::string relation_text = WriteRelationText(g, s);
  service_.registry().Register("hard", std::move(g));

  JsonValue::Object request;
  request.emplace_back("cmd", "check");
  request.emplace_back("graph", "hard");
  request.emplace_back("checker", "krem");
  request.emplace_back("k", 3.0);
  request.emplace_back("relation", relation_text);
  // 4 MiB: enough for the assignment graph to build (~2.2 MiB of adjacency
  // on this instance), so the budget trips mid-BFS and yields a partial
  // verdict rather than a hard build-phase error.
  request.emplace_back("max_bytes", 4194304.0);
  std::string response = Call(JsonValue(std::move(request)).Serialize());
  auto parsed = JsonValue::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  ASSERT_TRUE(parsed.value().Find("ok")->AsBool()) << response;
  EXPECT_EQ(parsed.value().GetString("verdict").ValueOrDie(),
            "budget exhausted")
      << response;
  const JsonValue* partial = parsed.value().Find("partial");
  ASSERT_NE(partial, nullptr) << response;
  EXPECT_EQ(partial->GetString("stage").ValueOrDie(), "krem-bfs");
  EXPECT_GT(partial->GetInt("tuples_explored").ValueOrDie(), 0);
  EXPECT_GE(partial->GetInt("bytes_peak").ValueOrDie(), 4194304);
}

TEST_F(ServeTest, NegativeBudgetIsRejected) {
  service_.registry().Register("fig1", Figure1Graph());
  std::string response = Call(
      R"({"cmd":"eval","graph":"fig1","language":"rpq","query":"a",)"
      R"("max_bytes":-1})");
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;
  EXPECT_NE(response.find("max_bytes"), std::string::npos) << response;
}

/// A service behind a deliberately tiny admission gate — one slot, no wait
/// queue — plus a hard instance to hold that slot for a while.
class ServeOverloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServiceOptions options;
    options.admission.max_concurrent = 1;
    options.admission.max_queue = 0;
    options.admission.retry_after_ms = 25;
    service_ = std::make_unique<QueryService>(options);
    server_ = std::make_unique<Server>(service_.get());
    ASSERT_TRUE(server_->Start(0).ok());

    service_->registry().Register("fig1", Figure1Graph());
    RandomGraphOptions graph_options;
    graph_options.num_nodes = 12;
    graph_options.num_labels = 2;
    graph_options.num_data_values = 6;
    graph_options.edge_percent = 25;
    graph_options.seed = 7;
    DataGraph g = RandomDataGraph(graph_options);
    relation_text_ =
        WriteRelationText(g, RandomRelation(g.NumNodes(), 30, 11));
    service_->registry().Register("hard", std::move(g));
  }

  void TearDown() override {
    server_->Stop();
    server_->Wait();
  }

  /// A check request that holds the admission slot for ~deadline_ms.
  std::string SlowCheckRequest(double deadline_ms) {
    JsonValue::Object request;
    request.emplace_back("cmd", "check");
    request.emplace_back("graph", "hard");
    request.emplace_back("checker", "krem");
    request.emplace_back("k", 3.0);
    request.emplace_back("relation", relation_text_);
    request.emplace_back("deadline_ms", deadline_ms);
    return JsonValue(std::move(request)).Serialize();
  }

  /// Spins until the in-flight slow request holds the only slot.
  bool WaitForSaturation() {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      if (service_->admission_stats().active >= 1) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  }

  std::unique_ptr<QueryService> service_;
  std::unique_ptr<Server> server_;
  std::string relation_text_;
};

TEST_F(ServeOverloadTest, ShedsWithRetryHintWhenSaturated) {
  std::thread slow([this] {
    LineClient client;
    if (client.Connect(server_->port()).ok()) {
      (void)client.Call(SlowCheckRequest(800.0));
    }
  });
  ASSERT_TRUE(WaitForSaturation());

  // A heavy request beyond the (zero-length) wait queue is shed
  // immediately with the configured backoff hint.
  LineClient client;
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  auto shed = client.Call(
      R"({"cmd":"eval","graph":"fig1","language":"rpq","query":"a"})");
  ASSERT_TRUE(shed.ok()) << shed.status();
  auto parsed = JsonValue::Parse(shed.value());
  ASSERT_TRUE(parsed.ok()) << shed.value();
  EXPECT_FALSE(parsed.value().Find("ok")->AsBool()) << shed.value();
  const JsonValue* error = parsed.value().Find("error");
  ASSERT_NE(error, nullptr) << shed.value();
  EXPECT_EQ(error->GetString("code").ValueOrDie(), "Unavailable");
  EXPECT_EQ(error->GetInt("retry_after_ms").ValueOrDie(), 25);

  // Cheap commands bypass admission: health checks work under full load.
  auto pong = client.Call(R"({"cmd":"ping"})");
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_NE(pong.value().find("\"pong\":true"), std::string::npos);
  auto stats = client.Call(R"({"cmd":"stats"})");
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_NE(stats.value().find("\"admission\""), std::string::npos);

  slow.join();
  EXPECT_GE(service_->shed_requests(), 1u);
  EXPECT_GE(service_->admission_stats().shed, 1u);
}

TEST_F(ServeOverloadTest, CallWithRetryRidesOutTheOverload) {
  std::thread slow([this] {
    LineClient client;
    if (client.Connect(server_->port()).ok()) {
      (void)client.Call(SlowCheckRequest(400.0));
    }
  });
  ASSERT_TRUE(WaitForSaturation());

  LineClient client;
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  RetryPolicy policy;
  // Each shed carries the server's 25 ms retry hint, which the client
  // honours instead of its exponential schedule — so riding out the
  // 400 ms occupancy takes ~16 evenly-spaced polls, not a handful of
  // doubling ones. 30 attempts leaves slack for jitter.
  policy.max_attempts = 30;
  policy.initial_backoff = std::chrono::milliseconds(25);
  policy.jitter_seed = 42;
  auto response = client.CallWithRetry(
      R"({"cmd":"eval","graph":"fig1","language":"rpq","query":"a"})",
      policy);
  slow.join();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_NE(response.value().find("\"ok\":true"), std::string::npos)
      << response.value();
  EXPECT_GE(client.retries(), 1u);
}

TEST(ServeLimits, OversizedRequestLineIsRejected) {
  QueryService service;
  ServerOptions server_options;
  server_options.max_line_bytes = 1024;
  Server server(&service, server_options);
  ASSERT_TRUE(server.Start(0).ok());

  // Raw socket: LineClient always terminates its line, but this test needs
  // an *unterminated* line that outgrows the bound.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(server.port());
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&address),
                      sizeof(address)),
            0);
  std::string oversized(2048, 'x');  // > max_line_bytes, no newline
  ASSERT_EQ(::write(fd, oversized.data(), oversized.size()),
            static_cast<ssize_t>(oversized.size()));
  std::string response;
  char chunk[4096];
  for (;;) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      break;
    }
    response.append(chunk, static_cast<std::size_t>(n));
    if (response.find('\n') != std::string::npos) {
      break;
    }
  }
  ::close(fd);
  EXPECT_NE(response.find("request_too_large"), std::string::npos)
      << response;

  // The limit is per-connection, not per-server: the next client is fine.
  LineClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  auto pong = client.Call(R"({"cmd":"ping"})");
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_NE(pong.value().find("\"pong\":true"), std::string::npos);

  server.Stop();
  server.Wait();
}

TEST_F(ServeTest, ShutdownCommandStopsServer) {
  LineClient client;
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  auto response = client.Call(R"({"cmd":"shutdown"})");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_NE(response.value().find("\"shutting_down\":true"),
            std::string::npos);
  server_->Wait();  // must return (and quickly) once shutdown is handled
  LineClient late;
  EXPECT_FALSE(late.Connect(server_->port()).ok());
}

}  // namespace
}  // namespace gqd
