// Tests for the expressiveness-inclusion converters (regex → REM,
// REE → REM) and witness-path extraction.

#include <gtest/gtest.h>

#include "eval/convert.h"
#include "eval/explain.h"
#include "eval/rem_eval.h"
#include "eval/ree_eval.h"
#include "eval/rpq_eval.h"
#include "graph/examples.h"
#include "graph/generators.h"
#include "ree/membership.h"
#include "ree/parser.h"
#include "regex/parser.h"
#include "rem/parser.h"
#include "rem/register_automaton.h"

namespace gqd {
namespace {

TEST(Convert, RegexToRemIsRegisterFree) {
  RegexPtr e = ParseRegex("a (b | c)* a+").ValueOrDie();
  RemPtr rem = RegexToRem(e);
  EXPECT_EQ(RemNumRegisters(rem), 0u);
}

TEST(Convert, ReeRestrictionDepthCountsNestingNotOccurrences) {
  EXPECT_EQ(ReeRestrictionDepth(ParseRee("a").ValueOrDie()), 0u);
  EXPECT_EQ(ReeRestrictionDepth(ParseRee("(a)=").ValueOrDie()), 1u);
  // Two sequential restrictions share a depth level.
  EXPECT_EQ(ReeRestrictionDepth(ParseRee("(a)= (b)!=").ValueOrDie()), 1u);
  // Example 8 nests one level deep.
  EXPECT_EQ(ReeRestrictionDepth(
                ParseRee("((a)!= (b)!=)!=").ValueOrDie()),
            2u);
  EXPECT_EQ(ReeRestrictionDepth(
                ParseRee("(((a)= b)= c)=").ValueOrDie()),
            3u);
}

TEST(Convert, ReeToRemRegisterBudgetIsDepth) {
  ReePtr e = ParseRee("((a)!= (b)!=)!=").ValueOrDie();
  EXPECT_EQ(RemNumRegisters(ReeToRem(e)), 2u);
  ReePtr sequential = ParseRee("(a)= (b)= (a b)=").ValueOrDie();
  EXPECT_EQ(RemNumRegisters(ReeToRem(sequential)), 1u);
}

class ConvertEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConvertEquivalence, RegexToRemPreservesEvaluation) {
  DataGraph g = RandomDataGraph({.num_nodes = 6,
                                 .num_labels = 2,
                                 .num_data_values = 3,
                                 .edge_percent = 25,
                                 .seed = GetParam()});
  for (const char* text : {"a", "a b", "(a | b)+", "a* b", "a+ | b a"}) {
    RegexPtr e = ParseRegex(text).ValueOrDie();
    EXPECT_EQ(EvaluateRpq(g, e), EvaluateRem(g, RegexToRem(e)))
        << text << " seed " << GetParam();
  }
}

TEST_P(ConvertEquivalence, ReeToRemPreservesEvaluation) {
  DataGraph g = RandomDataGraph({.num_nodes = 6,
                                 .num_labels = 2,
                                 .num_data_values = 3,
                                 .edge_percent = 25,
                                 .seed = GetParam()});
  for (const char* text :
       {"(a)=", "(a)!=", "(a b)= | (b)!=", "((a)!= (b)!=)!=",
        "(a (a)= a)=", "((a)=)+", "(a+)=", "(a)= (b)= (a)!="}) {
    ReePtr e = ParseRee(text).ValueOrDie();
    EXPECT_EQ(EvaluateRee(g, e), EvaluateRem(g, ReeToRem(e)))
        << text << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, ConvertEquivalence,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(Convert, ReeToRemPreservesMembershipOnPaths) {
  StringInterner labels;
  labels.Intern("a");
  labels.Intern("b");
  ReePtr e = ParseRee("((a)!= (b)!=)!=").ValueOrDie();
  RemPtr converted = ReeToRem(e);
  // Enumerate all two-letter paths over values {0,1,2}.
  for (ValueId d0 = 0; d0 < 3; d0++) {
    for (ValueId d1 = 0; d1 < 3; d1++) {
      for (ValueId d2 = 0; d2 < 3; d2++) {
        for (LabelId l0 = 0; l0 < 2; l0++) {
          for (LabelId l1 = 0; l1 < 2; l1++) {
            DataPath w{{d0, d1, d2}, {l0, l1}};
            EXPECT_EQ(ReeMatches(e, w, labels),
                      RemMatches(converted, w, &labels));
          }
        }
      }
    }
  }
}

TEST(Explain, RemWitnessOnFigure1) {
  DataGraph g = Figure1Graph();
  Figure1Nodes n = Figure1NodeIds(g);
  // Example 12's e2 = ↓r1·a·↓r2·a[r1=]·a[r2=].
  RemPtr e2 = ParseRem("$r1. a $r2. a[r1=] a[r2=]").ValueOrDie();
  auto witness = ExplainRemPair(g, e2, n.v1, n.v4);
  ASSERT_TRUE(witness.has_value());
  // The witness is v1 → v2 → v3 → v4 with data path 0a1a0a1.
  EXPECT_EQ(witness->nodes,
            (std::vector<NodeId>{n.v1, n.v2, n.v3, n.v4}));
  EXPECT_EQ(witness->data_path.values,
            (std::vector<ValueId>{0, 1, 0, 1}));
}

TEST(Explain, ReturnsNulloptForUnconnectedPair) {
  DataGraph g = Figure1Graph();
  Figure1Nodes n = Figure1NodeIds(g);
  auto witness = ExplainRpqPair(g, ParseRegex("a a a").ValueOrDie(),
                                n.v4, n.v1);  // v4 is a sink
  EXPECT_FALSE(witness.has_value());
}

TEST(Explain, RpqWitnessIsShortest) {
  DataGraph g = Figure1Graph();
  Figure1Nodes n = Figure1NodeIds(g);
  // v1 reaches v2 by paths of length 1 and 2; a+ must be explained by the
  // length-1 path.
  auto witness = ExplainRpqPair(g, ParseRegex("a+").ValueOrDie(),
                                n.v1, n.v2);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->labels.size(), 1u);
}

TEST(Explain, ReeWitnessMatchesExpression) {
  DataGraph g = Figure1Graph();
  Figure1Nodes n = Figure1NodeIds(g);
  ReePtr e3 = ParseRee("(a (a)= a)=").ValueOrDie();
  auto witness = ExplainReePair(g, e3, n.v1, n.v3);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->data_path.values, (std::vector<ValueId>{0, 1, 1, 0}));
  EXPECT_TRUE(ReeMatches(e3, witness->data_path, g.labels()));
}

class ExplainConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExplainConsistency, EveryEvaluatedPairIsExplainable) {
  DataGraph g = RandomDataGraph({.num_nodes = 5,
                                 .num_labels = 2,
                                 .num_data_values = 2,
                                 .edge_percent = 25,
                                 .seed = GetParam()});
  StringInterner labels = g.labels();
  for (const char* text : {"$r1. a[r1=]", "$r1. (a | b)+ [r1!=]"}) {
    RemPtr e = ParseRem(text).ValueOrDie();
    BinaryRelation result = EvaluateRem(g, e);
    for (NodeId u = 0; u < g.NumNodes(); u++) {
      for (NodeId v = 0; v < g.NumNodes(); v++) {
        auto witness = ExplainRemPair(g, e, u, v);
        EXPECT_EQ(witness.has_value(), result.Test(u, v))
            << text << " (" << u << "," << v << ") seed " << GetParam();
        if (witness.has_value()) {
          // The witness is a real path, connects the right endpoints, and
          // its data path is in L(e).
          EXPECT_EQ(witness->nodes.front(), u);
          EXPECT_EQ(witness->nodes.back(), v);
          EXPECT_TRUE(RemMatches(e, witness->data_path, &labels));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, ExplainConsistency,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace gqd
