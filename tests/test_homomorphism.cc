// Unit tests for the CSP engine and data-graph homomorphisms (Def. 33).

#include <gtest/gtest.h>

#include <chrono>
#include <set>

#include "common/cancel.h"
#include "graph/examples.h"
#include "graph/generators.h"
#include "homomorphism/csp.h"
#include "homomorphism/data_graph_hom.h"

namespace gqd {
namespace {

TEST(Csp, TrivialSatisfiable) {
  Csp csp = Csp::Full(2, 3);
  // x != y.
  DynamicBitset neq(9);
  for (std::uint32_t a = 0; a < 3; a++) {
    for (std::uint32_t b = 0; b < 3; b++) {
      if (a != b) {
        neq.Set(a * 3 + b);
      }
    }
  }
  csp.AddConstraint(0, 1, neq);
  auto solution = SolveCsp(csp);
  ASSERT_TRUE(solution.ok());
  ASSERT_TRUE(solution.value().has_value());
  EXPECT_NE((*solution.value())[0], (*solution.value())[1]);
}

TEST(Csp, DetectsUnsatisfiable) {
  // 3 mutually-different variables over a 2-value domain.
  Csp csp = Csp::Full(3, 2);
  DynamicBitset neq(4);
  neq.Set(0 * 2 + 1);
  neq.Set(1 * 2 + 0);
  csp.AddConstraint(0, 1, neq);
  csp.AddConstraint(1, 2, neq);
  csp.AddConstraint(0, 2, neq);
  auto solution = SolveCsp(csp);
  ASSERT_TRUE(solution.ok());
  EXPECT_FALSE(solution.value().has_value());
}

TEST(Csp, PinRestrictsSolution) {
  Csp csp = Csp::Full(2, 4);
  csp.Pin(0, 2);
  auto solution = SolveCsp(csp);
  ASSERT_TRUE(solution.ok());
  ASSERT_TRUE(solution.value().has_value());
  EXPECT_EQ((*solution.value())[0], 2u);
}

TEST(Csp, EnumerationCountsGraphColorings) {
  // Proper 3-colorings of a triangle: 3! = 6.
  Csp csp = Csp::Full(3, 3);
  DynamicBitset neq(9);
  for (std::uint32_t a = 0; a < 3; a++) {
    for (std::uint32_t b = 0; b < 3; b++) {
      if (a != b) {
        neq.Set(a * 3 + b);
      }
    }
  }
  csp.AddConstraint(0, 1, neq);
  csp.AddConstraint(1, 2, neq);
  csp.AddConstraint(0, 2, neq);
  auto solutions = EnumerateCspSolutions(csp);
  ASSERT_TRUE(solutions.ok());
  EXPECT_EQ(solutions.value().size(), 6u);
}

TEST(Csp, Ac3OffMatchesAc3On) {
  // Same solutions either way; AC-3 just prunes the search.
  for (std::uint64_t seed = 1; seed <= 6; seed++) {
    SplitMix64 rng(seed);
    Csp csp = Csp::Full(4, 4);
    for (std::size_t i = 0; i < 4; i++) {
      for (std::size_t j = i + 1; j < 4; j++) {
        DynamicBitset allowed(16);
        for (std::size_t bit = 0; bit < 16; bit++) {
          if (rng.NextBool(60, 100)) {
            allowed.Set(bit);
          }
        }
        csp.AddConstraint(i, j, allowed);
      }
    }
    CspOptions with, without;
    with.use_ac3 = true;
    without.use_ac3 = false;
    auto a = SolveCsp(csp, with);
    auto b = SolveCsp(csp, without);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().has_value(), b.value().has_value()) << seed;
  }
}

TEST(Csp, BudgetIsReported) {
  // A hard unsatisfiable instance with a tiny node budget.
  Csp csp = Csp::Full(8, 8);
  DynamicBitset neq(64);
  for (std::uint32_t a = 0; a < 8; a++) {
    for (std::uint32_t b = 0; b < 8; b++) {
      if (a != b) {
        neq.Set(a * 8 + b);
      }
    }
  }
  // 9-clique coloring with 8 colors is unsat, but we only have 8 vars;
  // make it unsat by pinning two vars equal and constraining them apart.
  csp.AddConstraint(0, 1, neq);
  csp.Pin(0, 3);
  csp.Pin(1, 3);
  CspOptions options;
  options.use_ac3 = false;  // otherwise the initial AC-3 pass refutes it
  options.max_nodes = 0;    // forces exhaustion immediately
  auto result = SolveCsp(csp, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(Csp, DeadlineCancelsMidSearch) {
  // All-different with one more variable than values: unsatisfiable, but
  // AC-3 over != constraints only prunes singletons, so refuting it by
  // backtracking is astronomically expensive. The strided cancel poll must
  // stop the search shortly after the deadline instead.
  constexpr std::size_t kVariables = 13;
  constexpr std::uint32_t kValues = 12;
  Csp csp = Csp::Full(kVariables, kValues);
  DynamicBitset neq(kValues * kValues);
  for (std::uint32_t a = 0; a < kValues; a++) {
    for (std::uint32_t b = 0; b < kValues; b++) {
      if (a != b) {
        neq.Set(a * kValues + b);
      }
    }
  }
  for (std::size_t i = 0; i < kVariables; i++) {
    for (std::size_t j = i + 1; j < kVariables; j++) {
      csp.AddConstraint(i, j, neq);
    }
  }
  CancelToken cancel(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::milliseconds(20)));
  CspOptions options;
  options.cancel = &cancel;
  auto start = std::chrono::steady_clock::now();
  auto result = SolveCsp(csp, options);
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status();
  EXPECT_LT(elapsed_ms, 5000.0);
}

TEST(DataGraphHom, IdentityIsAlwaysHomomorphism) {
  DataGraph g = Figure1Graph();
  NodeMapping identity(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); v++) {
    identity[v] = v;
  }
  EXPECT_TRUE(IsDataGraphHomomorphism(g, identity));
}

TEST(DataGraphHom, RejectsEdgeViolation) {
  DataGraph g = Figure1Graph();
  Figure1Nodes n = Figure1NodeIds(g);
  NodeMapping mapping(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); v++) {
    mapping[v] = v;
  }
  mapping[n.v2] = n.v4;  // v1 -a-> v2 needs v1 -a-> v4, which is absent
  EXPECT_FALSE(IsDataGraphHomomorphism(g, mapping));
}

TEST(DataGraphHom, Reachability) {
  DataGraph g = Figure1Graph();
  Figure1Nodes n = Figure1NodeIds(g);
  BinaryRelation reach = Reachability(g);
  EXPECT_TRUE(reach.Test(n.v1, n.v1));   // reflexive
  EXPECT_TRUE(reach.Test(n.v1, n.w4));   // v1 →* v'4
  EXPECT_FALSE(reach.Test(n.v4, n.v1));  // v4 is a sink
}

/// Oracle: enumerate all n^n mappings and filter by Definition 33.
std::vector<NodeMapping> NaiveHomomorphisms(const DataGraph& g) {
  std::vector<NodeMapping> result;
  std::size_t n = g.NumNodes();
  NodeMapping mapping(n, 0);
  while (true) {
    if (IsDataGraphHomomorphism(g, mapping)) {
      result.push_back(mapping);
    }
    std::size_t i = n;
    while (i > 0) {
      i--;
      if (++mapping[i] < n) {
        break;
      }
      mapping[i] = 0;
      if (i == 0) {
        return result;
      }
    }
  }
}

class HomEnumerationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HomEnumerationTest, CspEnumerationMatchesNaive) {
  DataGraph g = RandomDataGraph({.num_nodes = 5,
                                 .num_labels = 2,
                                 .num_data_values = 2,
                                 .edge_percent = 25,
                                 .seed = GetParam()});
  auto csp_homs = EnumerateHomomorphisms(g);
  ASSERT_TRUE(csp_homs.ok());
  std::vector<NodeMapping> naive = NaiveHomomorphisms(g);
  // Compare as sets.
  std::set<NodeMapping> a(csp_homs.value().begin(), csp_homs.value().end());
  std::set<NodeMapping> b(naive.begin(), naive.end());
  EXPECT_EQ(a, b) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, HomEnumerationTest,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(DataGraphHom, PinsSeedTheSearch) {
  DataGraph g = Figure1Graph();
  Figure1Nodes n = Figure1NodeIds(g);
  // Pinning the identity on every node succeeds.
  std::vector<std::pair<NodeId, NodeId>> pins;
  for (NodeId v = 0; v < g.NumNodes(); v++) {
    pins.emplace_back(v, v);
  }
  auto hom = FindHomomorphismWithPins(g, pins);
  ASSERT_TRUE(hom.ok());
  EXPECT_TRUE(hom.value().has_value());
  // Pinning v1 -> v4 (a sink with a different value situation) must fail:
  // v1 has out-edges, v4 has none, violating single-step compatibility.
  auto bad = FindHomomorphismWithPins(g, {{n.v1, n.v4}});
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad.value().has_value());
}

}  // namespace
}  // namespace gqd
