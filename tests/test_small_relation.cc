// Tests for the packed 64-bit relation representation used by the REE
// definability fast path: every operation must agree with BinaryRelation.

#include <gtest/gtest.h>

#include "definability/ree_definability.h"
#include "definability/small_relation.h"
#include "graph/generators.h"

namespace gqd {
namespace {

DataGraph SmallGraph(std::uint64_t seed, std::size_t n = 7) {
  return RandomDataGraph({.num_nodes = n,
                          .num_labels = 2,
                          .num_data_values = 3,
                          .edge_percent = 30,
                          .seed = seed});
}

TEST(SmallRelation, PackUnpackRoundTrip) {
  DataGraph g = SmallGraph(1);
  SmallRelationSpace space(g);
  for (std::uint64_t seed = 1; seed <= 20; seed++) {
    BinaryRelation r = RandomRelation(g.NumNodes(), 30, seed);
    EXPECT_EQ(space.Unpack(space.Pack(r)), r);
  }
}

TEST(SmallRelation, IdentityAndLabels) {
  DataGraph g = SmallGraph(2);
  SmallRelationSpace space(g);
  EXPECT_EQ(space.Unpack(space.Identity()),
            BinaryRelation::Identity(g.NumNodes()));
  for (LabelId a = 0; a < g.NumLabels(); a++) {
    EXPECT_EQ(space.Unpack(space.FromLabel(a)),
              BinaryRelation::FromEdges(g, a));
  }
  EXPECT_EQ(space.Unpack(space.Empty()), BinaryRelation(g.NumNodes()));
}

class SmallRelationAgreement
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SmallRelationAgreement, ComposeMatchesBinaryRelation) {
  DataGraph g = SmallGraph(GetParam());
  SmallRelationSpace space(g);
  BinaryRelation a = RandomRelation(g.NumNodes(), 25, GetParam() * 2 + 1);
  BinaryRelation b = RandomRelation(g.NumNodes(), 25, GetParam() * 2 + 2);
  EXPECT_EQ(space.Unpack(space.Compose(space.Pack(a), space.Pack(b))),
            a.Compose(b));
}

TEST_P(SmallRelationAgreement, RestrictionsMatchBinaryRelation) {
  DataGraph g = SmallGraph(GetParam());
  SmallRelationSpace space(g);
  BinaryRelation a = RandomRelation(g.NumNodes(), 35, GetParam() * 5 + 3);
  EXPECT_EQ(space.Unpack(space.EqRestrict(space.Pack(a))),
            a.EqRestrict(g));
  EXPECT_EQ(space.Unpack(space.NeqRestrict(space.Pack(a))),
            a.NeqRestrict(g));
}

TEST_P(SmallRelationAgreement, SubsetMatchesBinaryRelation) {
  DataGraph g = SmallGraph(GetParam());
  SmallRelationSpace space(g);
  BinaryRelation a = RandomRelation(g.NumNodes(), 20, GetParam() * 7 + 1);
  BinaryRelation b = RandomRelation(g.NumNodes(), 50, GetParam() * 7 + 2);
  EXPECT_EQ(space.IsSubsetOf(space.Pack(a), space.Pack(b)),
            a.IsSubsetOf(b));
  BinaryRelation superset = a;
  superset.UnionWith(b);
  EXPECT_TRUE(space.IsSubsetOf(space.Pack(a), space.Pack(superset)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmallRelationAgreement,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(SmallRelation, EightNodeBoundary) {
  // n = 8 uses all 64 bits; masks must not overflow.
  DataGraph g = SmallGraph(9, 8);
  SmallRelationSpace space(g);
  BinaryRelation full = BinaryRelation::Full(8);
  EXPECT_EQ(space.Unpack(space.Pack(full)), full);
  EXPECT_EQ(space.Unpack(space.Compose(space.Pack(full), space.Pack(full))),
            full.Compose(full));
}

TEST(SmallRelation, ReeCheckerAgreesAcrossRepresentations) {
  // n = 9 forces the BinaryRelation path; an isomorphic-by-construction
  // n = 8 instance uses the packed path. Rather than comparing across
  // different graphs, verify the checker's verdicts on an 8-node graph
  // against independently computed definable relations.
  DataGraph g = LineGraph({0, 1, 0, 1, 2, 0, 2, 1});  // 8 nodes, acyclic
  BinaryRelation definable =
      BinaryRelation::FromEdges(g, 0).EqRestrict(g);  // S_{(a)=}
  auto result = CheckReeDefinability(g, definable);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().verdict, DefinabilityVerdict::kDefinable);
}

}  // namespace
}  // namespace gqd
