// Integration tests for the four definability checkers against the paper's
// Example 12 / Example 14 claims on the Figure-1 graph, plus synthesis
// round-trips and cross-checker implication properties on random graphs.

#include <gtest/gtest.h>

#include <chrono>

#include "common/cancel.h"
#include "definability/krem_definability.h"
#include "definability/ree_definability.h"
#include "definability/rpq_definability.h"
#include "definability/ucrdpq_definability.h"
#include "eval/rem_eval.h"
#include "eval/ree_eval.h"
#include "eval/rpq_eval.h"
#include "graph/examples.h"
#include "graph/generators.h"
#include "rem/parser.h"
#include "ree/parser.h"
#include "regex/parser.h"

namespace gqd {
namespace {

// --- Figure 1 / Example 12 ------------------------------------------------

TEST(RpqDefinability, S1IsRpqDefinable) {
  DataGraph g = Figure1Graph();
  auto result = CheckRpqDefinability(g, Figure1S1(g));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().verdict, DefinabilityVerdict::kDefinable);
  // The defining regex round-trips through the RPQ evaluator.
  RegexPtr regex = RegexFromWitnesses(result.value(), g.labels());
  EXPECT_EQ(EvaluateRpq(g, regex), Figure1S1(g)) << RegexToString(regex);
}

TEST(RpqDefinability, S2IsNotRpqDefinable) {
  // Example 12: "Neither S2 nor S3 can be defined using RPQs."
  DataGraph g = Figure1Graph();
  auto result = CheckRpqDefinability(g, Figure1S2(g));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().verdict, DefinabilityVerdict::kNotDefinable);
}

TEST(RpqDefinability, S3IsNotRpqDefinable) {
  DataGraph g = Figure1Graph();
  auto result = CheckRpqDefinability(g, Figure1S3(g));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().verdict, DefinabilityVerdict::kNotDefinable);
}

TEST(KRemDefinability, S2IsTwoRemDefinable) {
  // Example 12: e2 = ↓r1·a·↓r2·a[r1=]·a[r2=] defines S2 with 2 registers.
  DataGraph g = Figure1Graph();
  auto result = CheckKRemDefinability(g, Figure1S2(g), 2);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result.value().verdict, DefinabilityVerdict::kDefinable);
  // Round-trip: the union of synthesized witnesses evaluates to exactly S2.
  BinaryRelation defined(g.NumNodes());
  for (const KRemWitness& witness : result.value().witnesses) {
    RemPtr e = BasicRemFromBlocks(witness.blocks, 2, g.labels());
    BinaryRelation rel = EvaluateRem(g, e);
    EXPECT_TRUE(rel.Test(witness.from, witness.to)) << RemToString(e);
    EXPECT_TRUE(rel.IsSubsetOf(Figure1S2(g))) << RemToString(e);
    defined.UnionWith(rel);
  }
  EXPECT_EQ(defined, Figure1S2(g));
}

TEST(KRemDefinability, S2IsNotOneRemDefinable) {
  // Example 12 argues S2 needs the interleaved check — 2 registers.
  DataGraph g = Figure1Graph();
  auto result = CheckKRemDefinability(g, Figure1S2(g), 1);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().verdict, DefinabilityVerdict::kNotDefinable);
}

TEST(KRemDefinability, S3IsTwoRemDefinableButNotOne) {
  // Example 12: "S3 cannot be defined by an RDPQ_mem that uses a 1-REM.
  // A 2-REM would work though."
  DataGraph g = Figure1Graph();
  auto with_two = CheckKRemDefinability(g, Figure1S3(g), 2);
  ASSERT_TRUE(with_two.ok()) << with_two.status();
  EXPECT_EQ(with_two.value().verdict, DefinabilityVerdict::kDefinable);
  auto with_one = CheckKRemDefinability(g, Figure1S3(g), 1);
  ASSERT_TRUE(with_one.ok()) << with_one.status();
  EXPECT_EQ(with_one.value().verdict, DefinabilityVerdict::kNotDefinable);
}

TEST(KRemDefinability, S1IsZeroRemDefinable) {
  // S1 is RPQ-definable, i.e. 0-REM-definable.
  DataGraph g = Figure1Graph();
  auto result = CheckKRemDefinability(g, Figure1S1(g), 0);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().verdict, DefinabilityVerdict::kDefinable);
}

TEST(KRemDefinability, MonotoneInK) {
  // Definable with k registers ⇒ definable with k+1 (property sweep on
  // Figure 1's three relations, k = 0, 1, 2).
  DataGraph g = Figure1Graph();
  for (const BinaryRelation& s :
       {Figure1S1(g), Figure1S2(g), Figure1S3(g)}) {
    bool definable_before = false;
    for (std::size_t k = 0; k <= 2; k++) {
      auto result = CheckKRemDefinability(g, s, k);
      ASSERT_TRUE(result.ok());
      bool definable =
          result.value().verdict == DefinabilityVerdict::kDefinable;
      if (definable_before) {
        EXPECT_TRUE(definable) << "k=" << k;
      }
      definable_before = definable;
    }
  }
}

TEST(ReeDefinability, S3IsReeDefinable) {
  DataGraph g = Figure1Graph();
  auto result = CheckReeDefinability(g, Figure1S3(g));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result.value().verdict, DefinabilityVerdict::kDefinable);
  // Round-trip: the synthesized REE evaluates to exactly S3.
  EXPECT_EQ(EvaluateRee(g, result.value().defining_expression),
            Figure1S3(g))
      << ReeToString(result.value().defining_expression);
}

TEST(ReeDefinability, S2IsNotReeDefinable) {
  // Example 12: "For the same reason, S2 cannot be defined using RDPQ_=."
  DataGraph g = Figure1Graph();
  auto result = CheckReeDefinability(g, Figure1S2(g));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().verdict, DefinabilityVerdict::kNotDefinable);
}

TEST(ReeDefinability, S1IsReeDefinable) {
  DataGraph g = Figure1Graph();
  auto result = CheckReeDefinability(g, Figure1S1(g));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result.value().verdict, DefinabilityVerdict::kDefinable);
  EXPECT_EQ(EvaluateRee(g, result.value().defining_expression),
            Figure1S1(g));
}

TEST(ReeDefinability, EmptyRelationDefinable) {
  DataGraph g = Figure1Graph();
  auto result = CheckReeDefinability(g, BinaryRelation(g.NumNodes()));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().verdict, DefinabilityVerdict::kDefinable);
  EXPECT_TRUE(
      EvaluateRee(g, result.value().defining_expression).Empty());
}

TEST(UcrdpqDefinability, Example14RelationIsDefinable) {
  // {(v1, v2)} is UCRDPQ-definable (by Q4) even though no RDPQ defines it.
  DataGraph g = Figure1Graph();
  Figure1Nodes n = Figure1NodeIds(g);
  TupleRelation s(2);
  s.Insert({n.v1, n.v2});
  auto result = CheckUcrdpqDefinability(g, s);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().verdict, DefinabilityVerdict::kDefinable);
  // ... while no RDPQ_mem (2 registers suffice to probe) defines it:
  BinaryRelation binary(g.NumNodes());
  binary.Set(n.v1, n.v2);
  auto rem = CheckKRemDefinability(g, binary, 2);
  ASSERT_TRUE(rem.ok());
  EXPECT_EQ(rem.value().verdict, DefinabilityVerdict::kNotDefinable);
  auto ree = CheckReeDefinability(g, binary);
  ASSERT_TRUE(ree.ok());
  EXPECT_EQ(ree.value().verdict, DefinabilityVerdict::kNotDefinable);
}

TEST(UcrdpqDefinability, AllFigure1RelationsDefinable) {
  // REM/REE-definable relations are UCRDPQ-definable (single-atom CRDPQ).
  DataGraph g = Figure1Graph();
  for (const BinaryRelation& s :
       {Figure1S1(g), Figure1S2(g), Figure1S3(g)}) {
    auto result = CheckUcrdpqDefinability(g, s);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().verdict, DefinabilityVerdict::kDefinable);
  }
}

TEST(UcrdpqDefinability, NonDefinableProducesCertificate) {
  // A relation violated by some homomorphism. On Figure 1, {(v1, v4)}
  // alone: the path 0a1a0a1 also connects via automorphic images, and a
  // homomorphism moving the primed chain onto... — we simply assert that
  // whenever the checker says "not definable" it hands back a certificate
  // that passes Definition 33 and maps a tuple of S outside S.
  DataGraph g = Figure1Graph();
  Figure1Nodes n = Figure1NodeIds(g);
  TupleRelation s(2);
  s.Insert({n.v1, n.v4});  // S2 without (v'1, v'4)
  auto result = CheckUcrdpqDefinability(g, s);
  ASSERT_TRUE(result.ok()) << result.status();
  if (result.value().verdict == DefinabilityVerdict::kNotDefinable) {
    ASSERT_TRUE(result.value().violating_homomorphism.has_value());
    ASSERT_TRUE(result.value().violated_tuple.has_value());
    const NodeMapping& h = *result.value().violating_homomorphism;
    EXPECT_TRUE(IsDataGraphHomomorphism(g, h));
    NodeTuple image;
    for (NodeId v : *result.value().violated_tuple) {
      image.push_back(h[v]);
    }
    EXPECT_FALSE(s.Contains(image));
  }
}

TEST(UcrdpqDefinability, DeadlineCancelsSeedLoop) {
  // An expired deadline must surface as DeadlineExceeded from inside the
  // seeded-search loop — even when every individual CSP search is far too
  // small to reach the engine's strided cancel poll.
  DataGraph g = Figure1Graph();
  BinaryRelation s = Figure1S2(g);
  CancelToken cancel{std::chrono::nanoseconds(0)};
  UcrdpqDefinabilityOptions options;
  options.csp.cancel = &cancel;
  auto result = CheckUcrdpqDefinability(g, s, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status();
}

TEST(UcrdpqDefinability, HalfOfS2) {
  // {(v1,v4)} vs S2: the primed chain v'1..v'4 maps onto v1..v4 by an
  // automorphism-like homomorphism only if data compatibility allows; the
  // checker must agree with naive enumeration either way.
  DataGraph g = Figure1Graph();
  Figure1Nodes n = Figure1NodeIds(g);
  TupleRelation s(2);
  s.Insert({n.v1, n.v4});
  auto fast = CheckUcrdpqDefinability(g, s);
  ASSERT_TRUE(fast.ok());
  // Naive oracle over all homomorphisms.
  auto homs = EnumerateHomomorphisms(g);
  ASSERT_TRUE(homs.ok());
  bool preserved = true;
  for (const NodeMapping& h : homs.value()) {
    if (!s.Contains({h[n.v1], h[n.v4]})) {
      preserved = false;
      break;
    }
  }
  EXPECT_EQ(fast.value().verdict == DefinabilityVerdict::kDefinable,
            preserved);
}

// --- Synthesis round-trips on random graphs --------------------------------

class DefinabilityRoundTrip : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  DataGraph MakeGraph() {
    return RandomDataGraph({.num_nodes = 4,
                            .num_labels = 2,
                            .num_data_values = 2,
                            .edge_percent = 30,
                            .seed = GetParam()});
  }
};

TEST_P(DefinabilityRoundTrip, EvaluatedReeIsReeDefinable) {
  // S := Q(G) for a concrete REE Q must be REE-definable, and the
  // synthesized expression must evaluate back to S.
  DataGraph g = MakeGraph();
  for (const char* text :
       {"(a)=", "a b", "((a)!= (b)!=)!=", "(a+)=", "a | (b)="}) {
    BinaryRelation s = EvaluateRee(g, ParseRee(text).ValueOrDie());
    auto result = CheckReeDefinability(g, s);
    ASSERT_TRUE(result.ok()) << text;
    ASSERT_EQ(result.value().verdict, DefinabilityVerdict::kDefinable)
        << text << " seed " << GetParam();
    if (!s.Empty()) {
      EXPECT_EQ(EvaluateRee(g, result.value().defining_expression), s)
          << text;
    }
  }
}

TEST_P(DefinabilityRoundTrip, EvaluatedRemIsKRemDefinable) {
  // S := Q(G) for a k-register REM Q must be k-REM-definable.
  DataGraph g = MakeGraph();
  struct Case {
    const char* text;
    std::size_t k;
  };
  for (const Case& c : {Case{"$r1. a[r1=]", 1}, Case{"$r1. a b[r1=]", 1},
                        Case{"$r1. a $r2. b a[r2=]", 2},
                        Case{"a (a | b)", 0}}) {
    BinaryRelation s = EvaluateRem(g, ParseRem(c.text).ValueOrDie());
    auto result = CheckKRemDefinability(g, s, c.k);
    ASSERT_TRUE(result.ok()) << c.text;
    ASSERT_EQ(result.value().verdict, DefinabilityVerdict::kDefinable)
        << c.text << " seed " << GetParam();
    // Union of witnesses re-evaluates to exactly S.
    BinaryRelation defined(g.NumNodes());
    for (const KRemWitness& witness : result.value().witnesses) {
      RemPtr e = BasicRemFromBlocks(witness.blocks, c.k, g.labels());
      defined.UnionWith(EvaluateRem(g, e));
    }
    EXPECT_EQ(defined, s) << c.text;
  }
}

TEST_P(DefinabilityRoundTrip, ImplicationChain) {
  // RPQ-definable ⇒ REE-definable ⇒ REM-definable ⇒ UCRDPQ-definable,
  // checked on random relations (skipping any budget-exhausted verdicts).
  DataGraph g = MakeGraph();
  BinaryRelation s = RandomRelation(g.NumNodes(), 20, GetParam() * 977 + 5);
  // Keep the REM leg's budget small: not-definable verdicts require
  // exhausting the macro-tuple space (the paper's EXPSPACE wall), and the
  // implications below skip budget-exhausted verdicts anyway.
  KRemDefinabilityOptions rem_options;
  rem_options.max_tuples = 5'000;
  auto rpq = CheckRpqDefinability(g, s, rem_options);
  auto ree = CheckReeDefinability(g, s);
  auto rem = CheckRemDefinability(g, s, rem_options);  // δ = 2: exact k
  auto ucrdpq = CheckUcrdpqDefinability(g, s);
  ASSERT_TRUE(rpq.ok() && ree.ok() && rem.ok() && ucrdpq.ok());
  auto definable = [](DefinabilityVerdict v) {
    return v == DefinabilityVerdict::kDefinable;
  };
  auto decided = [](DefinabilityVerdict v) {
    return v != DefinabilityVerdict::kBudgetExhausted;
  };
  if (decided(rpq.value().verdict) && decided(ree.value().verdict) &&
      definable(rpq.value().verdict)) {
    EXPECT_TRUE(definable(ree.value().verdict));
  }
  if (decided(ree.value().verdict) && decided(rem.value().verdict) &&
      definable(ree.value().verdict)) {
    EXPECT_TRUE(definable(rem.value().verdict));
  }
  if (decided(rem.value().verdict) && decided(ucrdpq.value().verdict) &&
      definable(rem.value().verdict)) {
    EXPECT_TRUE(definable(ucrdpq.value().verdict));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, DefinabilityRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 11));

// --- Edge cases -------------------------------------------------------------

TEST(Definability, EmptyRelationRemAlwaysDefinable) {
  DataGraph g = Figure1Graph();
  auto result = CheckKRemDefinability(g, BinaryRelation(g.NumNodes()), 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().verdict, DefinabilityVerdict::kDefinable);
}

TEST(Definability, EmptyRelationRpqDependsOnGraph) {
  // On a graph where every word connects some pair (single self-loop),
  // ∅ is NOT RPQ-definable; on a dag it is (any long-enough word).
  DataGraph loop;
  loop.AddLabel("a");
  loop.AddDataValue("0");
  NodeId u = loop.AddNodeWithValue("0", "u");
  loop.AddEdgeByName(u, "a", u);
  auto on_loop = CheckRpqDefinability(loop, BinaryRelation(1));
  ASSERT_TRUE(on_loop.ok());
  EXPECT_EQ(on_loop.value().verdict, DefinabilityVerdict::kNotDefinable);

  DataGraph line = LineGraph({0, 1});
  auto on_line = CheckRpqDefinability(line, BinaryRelation(2));
  ASSERT_TRUE(on_line.ok());
  EXPECT_EQ(on_line.value().verdict, DefinabilityVerdict::kDefinable);
  ASSERT_TRUE(on_line.value().empty_relation_witness.has_value());
  // The killing word connects no pair.
  RegexPtr regex = RegexFromWitnesses(on_line.value(), line.labels());
  EXPECT_TRUE(EvaluateRpq(line, regex).Empty());
}

TEST(Definability, FullDiagonalDefinableByEpsilon) {
  DataGraph g = Figure1Graph();
  BinaryRelation diagonal = BinaryRelation::Identity(g.NumNodes());
  auto result = CheckKRemDefinability(g, diagonal, 0);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().verdict, DefinabilityVerdict::kDefinable);
  // Every pair's witness is the empty block sequence (ε).
  for (const KRemWitness& w : result.value().witnesses) {
    EXPECT_TRUE(w.blocks.empty());
  }
}

TEST(Definability, SingleDiagonalPairNotDefinableByEpsilon) {
  // {(v1, v1)} alone: ε connects every node to itself, so ε is not a
  // witness; some other expression may or may not exist.
  DataGraph g = Figure1Graph();
  Figure1Nodes n = Figure1NodeIds(g);
  BinaryRelation s(g.NumNodes());
  s.Set(n.v1, n.v1);
  auto result = CheckKRemDefinability(g, s, 1);
  ASSERT_TRUE(result.ok());
  if (result.value().verdict == DefinabilityVerdict::kDefinable) {
    for (const KRemWitness& w : result.value().witnesses) {
      EXPECT_FALSE(w.blocks.empty());
    }
  }
}

TEST(Definability, MismatchedRelationSizeRejected) {
  DataGraph g = Figure1Graph();
  BinaryRelation wrong(3);
  EXPECT_FALSE(CheckKRemDefinability(g, wrong, 1).ok());
  EXPECT_FALSE(CheckReeDefinability(g, wrong).ok());
}

TEST(Definability, KTooLargeRejected) {
  DataGraph g = Figure1Graph();
  auto result = CheckKRemDefinability(g, Figure1S2(g), 5);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(Definability, BudgetExhaustionReported) {
  DataGraph g = Figure1Graph();
  KRemDefinabilityOptions options;
  options.max_tuples = 2;
  auto result = CheckKRemDefinability(g, Figure1S2(g), 2, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().verdict, DefinabilityVerdict::kBudgetExhausted);
}

// --- Theorem 32's reduction: constant-value graphs --------------------------

TEST(Theorem32, ConstantValueGraphReeEqualsRpq) {
  // On a graph with a single data value, RDPQ_=-definability coincides
  // with RPQ-definability (used in the paper's PSPACE-hardness proof).
  for (std::uint64_t seed = 1; seed <= 8; seed++) {
    DataGraph g = RandomDataGraph({.num_nodes = 4,
                                   .num_labels = 2,
                                   .num_data_values = 1,
                                   .edge_percent = 30,
                                   .seed = seed});
    for (std::uint32_t percent : {15u, 40u}) {
      BinaryRelation s =
          RandomRelation(g.NumNodes(), percent, seed * 31 + percent);
      if (s.Empty()) {
        // The paper's Theorem-32 proof assumes T non-empty: ∅ is always
        // RDPQ_=-definable ((ε)≠) but RPQ-definable only on some graphs.
        continue;
      }
      auto rpq = CheckRpqDefinability(g, s);
      auto ree = CheckReeDefinability(g, s);
      ASSERT_TRUE(rpq.ok() && ree.ok());
      if (rpq.value().verdict != DefinabilityVerdict::kBudgetExhausted &&
          ree.value().verdict != DefinabilityVerdict::kBudgetExhausted) {
        EXPECT_EQ(rpq.value().verdict, ree.value().verdict)
            << "seed " << seed << " percent " << percent;
      }
    }
  }
}

}  // namespace
}  // namespace gqd
