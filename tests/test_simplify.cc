// Tests for graph-relative query simplification (Discussion §6).

#include <gtest/gtest.h>

#include "eval/ree_eval.h"
#include "eval/rpq_eval.h"
#include "graph/examples.h"
#include "graph/generators.h"
#include "ree/parser.h"
#include "regex/parser.h"
#include "synthesis/simplify.h"
#include "synthesis/synthesis.h"

namespace gqd {
namespace {

TEST(NormalizeRee, FlattensAndDeduplicates) {
  ReePtr e = ParseRee("(a | (a | b)) | b").ValueOrDie();
  ReePtr n = NormalizeRee(e);
  EXPECT_EQ(ReeToString(n), "a | b");
}

TEST(NormalizeRee, DropsEpsilonInConcat) {
  ReePtr e = ParseRee("eps a eps b eps").ValueOrDie();
  EXPECT_EQ(ReeToString(NormalizeRee(e)), "a b");
}

TEST(NormalizeRee, CollapsesNestedRestrictions) {
  EXPECT_EQ(ReeToString(NormalizeRee(ParseRee("((a b)=)=").ValueOrDie())),
            "(a b)=");
  EXPECT_EQ(ReeToString(NormalizeRee(ParseRee("((a)=)!=").ValueOrDie())),
            "eps!=");  // (e=)≠ = ∅
  EXPECT_EQ(ReeToString(NormalizeRee(ParseRee("((a)!=)=").ValueOrDie())),
            "eps!=");  // (e≠)= = ∅
  EXPECT_EQ(ReeToString(NormalizeRee(ParseRee("((a)!=)!=").ValueOrDie())),
            "a!=");
}

TEST(NormalizeRee, EmptyAnnihilatesConcatAndDropsFromUnion) {
  EXPECT_EQ(ReeToString(NormalizeRee(
                ParseRee("a (eps)!= b").ValueOrDie())),
            "eps!=");
  EXPECT_EQ(ReeToString(NormalizeRee(
                ParseRee("a | (eps)!=").ValueOrDie())),
            "a");
}

TEST(NormalizeRee, PlusIdempotent) {
  EXPECT_EQ(ReeToString(NormalizeRee(ParseRee("(a+)+").ValueOrDie())),
            "a+");
  EXPECT_EQ(ReeToString(NormalizeRee(ParseRee("eps+").ValueOrDie())),
            "eps");
}

TEST(NormalizeRee, PreservesLanguageOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 6; seed++) {
    DataGraph g = RandomDataGraph({.num_nodes = 6,
                                   .num_labels = 2,
                                   .num_data_values = 2,
                                   .edge_percent = 25,
                                   .seed = seed});
    for (const char* text :
         {"(a | (a | b))", "eps a", "((a)=)=", "a ((b)=)!=",
          "(a b a b)= | eps+", "(a | b) eps (a | b)"}) {
      ReePtr e = ParseRee(text).ValueOrDie();
      EXPECT_EQ(EvaluateRee(g, e), EvaluateRee(g, NormalizeRee(e)))
          << text << " seed " << seed;
    }
  }
}

TEST(NormalizeRegex, StarPlusInteraction) {
  EXPECT_EQ(RegexToString(NormalizeRegex(ParseRegex("(a+)+").ValueOrDie())),
            "a+");
  EXPECT_EQ(RegexToString(NormalizeRegex(ParseRegex("(a*)+").ValueOrDie())),
            "a*");
  EXPECT_EQ(RegexToString(NormalizeRegex(ParseRegex("(a+)*").ValueOrDie())),
            "a*");
}

TEST(SimplifyRee, RediscoversMovieLinkPlus) {
  // The schema-mapping scenario: the synthesized union of =-restricted
  // friend-powers must simplify to (friend⁺)=.
  DataGraph g;
  g.AddLabel("friend");
  for (const char* movie : {"Alien", "Brazil", "Casablanca"}) {
    g.AddDataValue(movie);
  }
  NodeId ann = g.AddNodeWithValue("Alien", "ann");
  NodeId bob = g.AddNodeWithValue("Brazil", "bob");
  NodeId cam = g.AddNodeWithValue("Alien", "cam");
  NodeId dee = g.AddNodeWithValue("Casablanca", "dee");
  NodeId eve = g.AddNodeWithValue("Brazil", "eve");
  g.AddEdgeByName(ann, "friend", bob);
  g.AddEdgeByName(bob, "friend", cam);
  g.AddEdgeByName(cam, "friend", dee);
  g.AddEdgeByName(dee, "friend", eve);

  BinaryRelation movie_link =
      EvaluateRee(g, ParseRee("(friend+)=").ValueOrDie());
  ASSERT_GE(movie_link.Count(), 2u);  // ann→cam (Alien), bob→eve (Brazil)

  auto synthesized = SynthesizeReeQuery(g, movie_link);
  ASSERT_TRUE(synthesized.ok());
  ASSERT_TRUE(synthesized.value().has_value());
  auto simplified = SimplifyReeOnGraph(g, *synthesized.value(), movie_link);
  ASSERT_TRUE(simplified.ok()) << simplified.status();
  EXPECT_EQ(ReeToString(simplified.value()), "(friend+)=")
      << "from " << ReeToString(*synthesized.value());
  EXPECT_EQ(EvaluateRee(g, simplified.value()), movie_link);
}

TEST(SimplifyRee, LeavesNonGeneralizableQueriesAlone) {
  DataGraph g = Figure1Graph();
  BinaryRelation s3 = Figure1S3(g);
  ReePtr e = ParseRee("(a (a)= a)=").ValueOrDie();
  auto simplified = SimplifyReeOnGraph(g, e, s3);
  ASSERT_TRUE(simplified.ok());
  EXPECT_EQ(EvaluateRee(g, simplified.value()), s3);
  // No shorter generalization exists; the query survives unchanged.
  EXPECT_EQ(ReeToString(simplified.value()), "(a a= a)=");
}

TEST(SimplifyRee, RejectsMismatchedRelation) {
  DataGraph g = Figure1Graph();
  ReePtr e = ParseRee("a").ValueOrDie();
  BinaryRelation wrong(g.NumNodes());  // not the evaluation of `a`
  auto simplified = SimplifyReeOnGraph(g, e, wrong);
  EXPECT_FALSE(simplified.ok());
}

TEST(SimplifyRegex, UnionOfPowersBecomesPlus) {
  // A 4-cycle where every node reaches every node by a-paths of length
  // 1..4: the relation of a | aa | aaa | aaaa equals the relation of a+.
  DataGraph g = CycleGraph({0, 0, 0, 0});
  RegexPtr e = ParseRegex("a | a a | a a a | a a a a").ValueOrDie();
  BinaryRelation s = EvaluateRpq(g, e);
  auto simplified = SimplifyRegexOnGraph(g, e, s);
  ASSERT_TRUE(simplified.ok());
  EXPECT_EQ(RegexToString(simplified.value()), "a+");
  EXPECT_EQ(EvaluateRpq(g, simplified.value()), s);
}

TEST(SimplifyRegex, KeepsUnionWhenPlusOvershoots) {
  // On a 5-node line, a | aa reaches strictly less than a+; the rewrite
  // must be rejected by verification.
  DataGraph g = LineGraph({0, 0, 0, 0, 0});
  RegexPtr e = ParseRegex("a | a a").ValueOrDie();
  BinaryRelation s = EvaluateRpq(g, e);
  auto simplified = SimplifyRegexOnGraph(g, e, s);
  ASSERT_TRUE(simplified.ok());
  EXPECT_EQ(EvaluateRpq(g, simplified.value()), s);
  EXPECT_NE(RegexToString(simplified.value()), "a+");
}

TEST(SimplifyRee, VerifiedOnRandomSynthesizedQueries) {
  // End to end: synthesize a defining REE for a definable relation, then
  // simplify; the result must still define the relation exactly.
  for (std::uint64_t seed = 1; seed <= 8; seed++) {
    DataGraph g = RandomDataGraph({.num_nodes = 4,
                                   .num_labels = 2,
                                   .num_data_values = 2,
                                   .edge_percent = 30,
                                   .seed = seed});
    BinaryRelation s = EvaluateRee(g, ParseRee("(a+)=").ValueOrDie());
    auto synthesized = SynthesizeReeQuery(g, s);
    ASSERT_TRUE(synthesized.ok());
    ASSERT_TRUE(synthesized.value().has_value());
    auto simplified = SimplifyReeOnGraph(g, *synthesized.value(), s);
    ASSERT_TRUE(simplified.ok()) << simplified.status();
    EXPECT_EQ(EvaluateRee(g, simplified.value()), s) << "seed " << seed;
    EXPECT_LE(ReeToString(simplified.value()).size(),
              ReeToString(*synthesized.value()).size());
  }
}

}  // namespace
}  // namespace gqd
