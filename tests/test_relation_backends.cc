// Property and differential tests for the density-adaptive relation layer
// (graph/sparse_relation.h) and the .gqdr relation container
// (storage/relation_store.h).
//
// The contract under test: every physical representation of a pair set —
// dense matrix, CSR coordinate list, blocked array/bitmap rows — describes
// exactly the same relation (membership, canonical pair order, REE operator
// results), the array↔bitmap flip point sits precisely at ArrayThreshold,
// and a relation survives the container and pair-text formats byte-for-byte
// while corrupted containers fail with a Status instead of crashing.

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/relation.h"
#include "graph/serialization.h"
#include "graph/sparse_relation.h"
#include "storage/relation_store.h"

namespace gqd {
namespace {

using Pairs = std::vector<std::pair<NodeId, NodeId>>;

/// Deterministic pair sample: `draws` draws of (u, v) over n nodes.
Pairs RandomPairs(std::size_t n, std::size_t draws, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Pairs pairs;
  pairs.reserve(draws);
  for (std::size_t i = 0; i < draws; i++) {
    pairs.emplace_back(static_cast<NodeId>(rng.NextBelow(n)),
                       static_cast<NodeId>(rng.NextBelow(n)));
  }
  return pairs;
}

TEST(RelationBackendNames, RoundTrip) {
  for (RelationBackend backend :
       {RelationBackend::kAuto, RelationBackend::kDense,
        RelationBackend::kSparse, RelationBackend::kBlocked}) {
    RelationBackend parsed;
    ASSERT_TRUE(ParseRelationBackend(RelationBackendName(backend), &parsed));
    EXPECT_EQ(parsed, backend);
  }
  RelationBackend parsed;
  EXPECT_FALSE(ParseRelationBackend("roaring", &parsed));
  EXPECT_FALSE(ParseRelationBackend("", &parsed));
}

TEST(ChooseRelationBackend, SmallGraphsStayDense) {
  // n ≤ 4096 ⇒ the matrix is at most 2 MB; dense wins outright.
  EXPECT_EQ(ChooseRelationBackend(16, 0), RelationBackend::kDense);
  EXPECT_EQ(ChooseRelationBackend(4096, 100), RelationBackend::kDense);
}

TEST(ChooseRelationBackend, SparseWhenRowsAreLight) {
  // nnz ≤ 8n on a big graph: a handful of entries per row.
  EXPECT_EQ(ChooseRelationBackend(100'000, 100'000),
            RelationBackend::kSparse);
  EXPECT_EQ(ChooseRelationBackend(1'000'000, 8'000'000),
            RelationBackend::kSparse);
}

TEST(ChooseRelationBackend, BlockedInBetweenDenseWhenHeavy) {
  std::size_t n = 100'000;
  EXPECT_EQ(ChooseRelationBackend(n, 9 * n), RelationBackend::kBlocked);
  // Average row degree at n/32: containers cannot beat the matrix.
  EXPECT_EQ(ChooseRelationBackend(n, n * (n / 32)), RelationBackend::kDense);
}

TEST(EstimateRelationBytes, TracksRepresentationCosts) {
  std::size_t n = 1'000'000;
  std::size_t nnz = 5'000;
  // Dense is the n²/8 matrix regardless of nnz.
  EXPECT_GE(EstimateRelationBytes(RelationBackend::kDense, n, nnz),
            n * n / 8);
  // Sparse is O(n + nnz) — a million-node relation in megabytes.
  EXPECT_LT(EstimateRelationBytes(RelationBackend::kSparse, n, nnz),
            std::size_t{100} << 20);
  // kAuto estimates what ChooseRelationBackend would build.
  EXPECT_EQ(EstimateRelationBytes(RelationBackend::kAuto, n, nnz),
            EstimateRelationBytes(ChooseRelationBackend(n, nnz), n, nnz));
  // More pairs never get cheaper.
  EXPECT_LE(EstimateRelationBytes(RelationBackend::kSparse, n, nnz),
            EstimateRelationBytes(RelationBackend::kSparse, n, 10 * nnz));
}

TEST(SparseBinaryRelation, MatchesDenseMembershipOnRandomSweeps) {
  for (std::uint64_t seed = 1; seed <= 8; seed++) {
    std::size_t n = 24 + seed;
    Pairs pairs = RandomPairs(n, 3 * n, seed);
    BinaryRelation dense = BinaryRelation::FromPairs(n, pairs);
    SparseBinaryRelation sparse = SparseBinaryRelation::FromPairs(n, pairs);
    EXPECT_EQ(sparse.Nnz(), dense.Count()) << "seed " << seed;
    for (NodeId u = 0; u < n; u++) {
      std::size_t degree = 0;
      for (NodeId v = 0; v < n; v++) {
        EXPECT_EQ(sparse.Test(u, v), dense.Test(u, v))
            << "seed " << seed << " (" << u << "," << v << ")";
        degree += dense.Test(u, v) ? 1 : 0;
      }
      EXPECT_EQ(sparse.RowDegree(u), degree) << "seed " << seed;
    }
    EXPECT_EQ(sparse.Pairs(), dense.Pairs()) << "seed " << seed;
  }
}

TEST(BlockedBinaryRelation, MatchesDenseMembershipOnRandomSweeps) {
  for (std::uint64_t seed = 1; seed <= 8; seed++) {
    std::size_t n = 24 + seed;
    Pairs pairs = RandomPairs(n, 4 * n, seed * 11);
    BinaryRelation dense = BinaryRelation::FromPairs(n, pairs);
    BlockedBinaryRelation blocked =
        BlockedBinaryRelation::FromPairs(n, pairs);
    EXPECT_EQ(blocked.Nnz(), dense.Count()) << "seed " << seed;
    for (NodeId u = 0; u < n; u++) {
      for (NodeId v = 0; v < n; v++) {
        EXPECT_EQ(blocked.Test(u, v), dense.Test(u, v))
            << "seed " << seed << " (" << u << "," << v << ")";
      }
    }
    EXPECT_EQ(blocked.Pairs(), dense.Pairs()) << "seed " << seed;
    EXPECT_EQ(blocked.ToDense(), dense) << "seed " << seed;
    EXPECT_EQ(BlockedBinaryRelation::FromDense(dense), blocked)
        << "seed " << seed;
  }
}

TEST(BlockedBinaryRelation, ArrayFlipsToBitmapExactlyAtThreshold) {
  std::size_t n = 512;
  std::size_t threshold = BlockedBinaryRelation::ArrayThreshold(n);
  ASSERT_GT(threshold, 1u);
  // Row 0 holds exactly `threshold` entries (stays array), row 1 exactly
  // `threshold + 1` (must flip), row 2 one entry, row 3 none.
  Pairs pairs;
  for (std::size_t i = 0; i < threshold; i++) {
    pairs.emplace_back(0, static_cast<NodeId>(i));
  }
  for (std::size_t i = 0; i < threshold + 1; i++) {
    pairs.emplace_back(1, static_cast<NodeId>(i));
  }
  pairs.emplace_back(2, 7);
  BlockedBinaryRelation r = BlockedBinaryRelation::FromPairs(n, pairs);
  EXPECT_FALSE(r.RowIsBitmap(0));
  EXPECT_TRUE(r.RowIsBitmap(1));
  EXPECT_FALSE(r.RowIsBitmap(2));
  EXPECT_FALSE(r.RowIsBitmap(3));
  EXPECT_EQ(r.RowDegree(0), threshold);
  EXPECT_EQ(r.RowDegree(1), threshold + 1);
  // The same boundary holds after a mutation re-canonicalizes the row:
  // dropping one entry from the bitmap row lands it back in an array.
  DynamicBitset scratch(n);
  for (std::size_t i = 0; i < threshold; i++) {
    scratch.Set(i);
  }
  r.SetRowFromBitset(1, scratch);
  EXPECT_FALSE(r.RowIsBitmap(1));
  EXPECT_EQ(r.RowDegree(1), threshold);
}

TEST(BlockedBinaryRelation, EmptyAndFullRows) {
  std::size_t n = 200;
  Pairs pairs;
  for (NodeId v = 0; v < n; v++) {
    pairs.emplace_back(3, v);  // full row
  }
  BlockedBinaryRelation r = BlockedBinaryRelation::FromPairs(n, pairs);
  EXPECT_TRUE(r.RowIsBitmap(3));
  EXPECT_EQ(r.RowDegree(3), n);
  EXPECT_EQ(r.RowDegree(0), 0u);
  std::size_t visited = 0;
  r.ForEachInRow(3, [&](NodeId v) {
    EXPECT_EQ(v, visited);
    visited++;
  });
  EXPECT_EQ(visited, n);
  r.ForEachInRow(0, [&](NodeId) { FAIL() << "empty row visited"; });
  // An all-empty relation and its properties.
  BlockedBinaryRelation empty(n);
  EXPECT_TRUE(empty.Empty());
  EXPECT_TRUE(empty.IsSubsetOf(r));
  EXPECT_FALSE(r.IsSubsetOf(empty));
}

TEST(BlockedBinaryRelation, OperatorsMatchDense) {
  // Union, composition, =/≠ restriction, subset, equality and hashing all
  // agree with the dense oracles — the REE closure builds on exactly these.
  for (std::uint64_t seed = 1; seed <= 6; seed++) {
    DataGraph g = RandomDataGraph({.num_nodes = 40,
                                   .num_labels = 2,
                                   .num_data_values = 3,
                                   .edge_percent = 15,
                                   .seed = seed});
    std::size_t n = g.NumNodes();
    ValueClassMasks masks(g);
    Pairs pa = RandomPairs(n, 5 * n, seed * 3 + 1);
    Pairs pb = RandomPairs(n, 2 * n, seed * 3 + 2);
    BinaryRelation da = BinaryRelation::FromPairs(n, pa);
    BinaryRelation db = BinaryRelation::FromPairs(n, pb);
    BlockedBinaryRelation ba = BlockedBinaryRelation::FromPairs(n, pa);
    BlockedBinaryRelation bb = BlockedBinaryRelation::FromPairs(n, pb);

    EXPECT_EQ(ba.Compose(bb).ToDense(), da.Compose(db)) << "seed " << seed;
    EXPECT_EQ(ba.EqRestrict(masks).ToDense(), da.EqRestrict(masks))
        << "seed " << seed;
    EXPECT_EQ(ba.NeqRestrict(masks).ToDense(), da.NeqRestrict(masks))
        << "seed " << seed;
    BlockedBinaryRelation bu = ba;
    bu.UnionWith(bb);
    BinaryRelation du = da;
    du.UnionWith(db);
    EXPECT_EQ(bu.ToDense(), du) << "seed " << seed;
    EXPECT_EQ(ba.IsSubsetOf(bu), da.IsSubsetOf(du)) << "seed " << seed;
    EXPECT_EQ(BlockedBinaryRelation::Identity(n).ToDense(),
              BinaryRelation::Identity(n));
    for (LabelId a = 0; a < g.NumLabels(); a++) {
      EXPECT_EQ(BlockedBinaryRelation::FromEdges(g, a).ToDense(),
                BinaryRelation::FromEdges(g, a))
          << "seed " << seed << " label " << a;
    }
    // Canonical containers ⇒ equal relations are physically equal and
    // hash equal however they were built.
    BlockedBinaryRelation rebuilt =
        BlockedBinaryRelation::FromDense(da);
    EXPECT_EQ(rebuilt, ba) << "seed " << seed;
    EXPECT_EQ(rebuilt.Hash(), ba.Hash()) << "seed " << seed;
  }
}

TEST(AdaptiveRelation, AllBackendsAgreeOnPairsAndMembership) {
  for (std::uint64_t seed = 1; seed <= 6; seed++) {
    std::size_t n = 30;
    Pairs pairs = RandomPairs(n, 4 * n, seed * 17);
    BinaryRelation oracle = BinaryRelation::FromPairs(n, pairs);
    for (RelationBackend backend :
         {RelationBackend::kDense, RelationBackend::kSparse,
          RelationBackend::kBlocked}) {
      AdaptiveRelation r = AdaptiveRelation::FromPairs(n, pairs, backend);
      EXPECT_EQ(r.backend(), backend);
      EXPECT_EQ(r.Nnz(), oracle.Count()) << "seed " << seed;
      EXPECT_EQ(r.Pairs(), oracle.Pairs()) << "seed " << seed;
      EXPECT_EQ(r.ToDense(), oracle) << "seed " << seed;
      for (NodeId u = 0; u < n; u++) {
        for (NodeId v = 0; v < n; v++) {
          EXPECT_EQ(r.Test(u, v), oracle.Test(u, v)) << "seed " << seed;
        }
      }
    }
    // kAuto picks dense here (n ≤ 4096) — and says so.
    AdaptiveRelation chosen = AdaptiveRelation::FromPairs(n, pairs);
    EXPECT_EQ(chosen.backend(), RelationBackend::kDense);
  }
}

TEST(AdaptiveRelation, ByteSizeReflectsBackend) {
  // At a million nodes the sparse representation must be orders of
  // magnitude under the dense matrix the estimate refuses.
  std::size_t n = 1'000'000;
  Pairs pairs = RandomPairs(n, 5'000, 9);
  AdaptiveRelation r = AdaptiveRelation::FromPairs(n, pairs);
  EXPECT_EQ(r.backend(), RelationBackend::kSparse);
  EXPECT_LT(r.ByteSize(), std::size_t{64} << 20);
  EXPECT_GT(EstimateRelationBytes(RelationBackend::kDense, n, pairs.size()),
            std::size_t{100} << 30);
}

// --- Relation container (.gqdr) ------------------------------------------

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "gqd_relation_" + name + ".gqdr";
}

TEST(RelationStore, WriteOpenRoundTripsCanonically) {
  std::size_t n = 100;
  Pairs pairs = RandomPairs(n, 300, 21);
  // The writer canonicalizes; the reader must hand back exactly the
  // canonical (row-major sorted, deduplicated) order.
  BinaryRelation oracle = BinaryRelation::FromPairs(n, pairs);
  std::string path = TempPath("roundtrip");
  ASSERT_TRUE(WriteRelationContainer(n, pairs, /*graph_fingerprint=*/0x1234,
                                     path)
                  .ok());
  EXPECT_TRUE(IsRelationContainerFile(path));
  auto stored = OpenRelationContainer(path);
  ASSERT_TRUE(stored.ok()) << stored.status();
  EXPECT_EQ(stored.value().pairs, oracle.Pairs());
  EXPECT_EQ(stored.value().info.num_nodes, n);
  EXPECT_EQ(stored.value().info.num_pairs, oracle.Count());
  EXPECT_EQ(stored.value().info.graph_fingerprint, 0x1234u);
  // Header statistics match a direct recount.
  std::size_t distinct = 0;
  std::size_t max_degree = 0;
  for (NodeId u = 0; u < n; u++) {
    std::size_t degree = oracle.Row(u).Count();
    distinct += degree > 0 ? 1 : 0;
    max_degree = std::max(max_degree, degree);
  }
  EXPECT_EQ(stored.value().info.distinct_sources, distinct);
  EXPECT_EQ(stored.value().info.max_row_degree, max_degree);
  std::remove(path.c_str());
}

TEST(RelationStore, FingerprintBindingIsEnforced) {
  std::string path = TempPath("binding");
  ASSERT_TRUE(WriteRelationContainer(10, {{0, 1}}, 0xabcd, path).ok());
  EXPECT_TRUE(OpenRelationContainer(path, 0xabcd).ok());
  // 0 = caller doesn't care; a different fingerprint is a refusal.
  EXPECT_TRUE(OpenRelationContainer(path, 0).ok());
  EXPECT_FALSE(OpenRelationContainer(path, 0xbeef).ok());
  // An unbound container (fingerprint 0) admits any expectation.
  ASSERT_TRUE(WriteRelationContainer(10, {{0, 1}}, 0, path).ok());
  EXPECT_TRUE(OpenRelationContainer(path, 0xbeef).ok());
  std::remove(path.c_str());
}

TEST(RelationStore, CorruptionFailsWithStatusNotCrash) {
  std::size_t n = 50;
  Pairs pairs = RandomPairs(n, 200, 33);
  std::string path = TempPath("corrupt");
  ASSERT_TRUE(WriteRelationContainer(n, pairs, 0, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 128u);
  // Flip one byte at every offset; every mutation must fail cleanly or —
  // never — crash. (A flip inside `reserved` may legitimately still load
  // on format versions ignoring it, so only checksum-covered payload bytes
  // and the header fields that feed validation are asserted to fail.)
  for (std::size_t at : {std::size_t{0}, std::size_t{4}, std::size_t{8},
                         std::size_t{16}, std::size_t{40},
                         std::size_t{128}, bytes.size() - 1}) {
    std::string mutated = bytes;
    mutated[at] = static_cast<char>(mutated[at] ^ 0x5a);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << mutated;
    out.close();
    auto r = OpenRelationContainer(path);
    EXPECT_FALSE(r.ok()) << "byte " << at << " flip not detected";
  }
  // Truncations at every boundary class: inside the header, at the header
  // edge, mid-payload.
  for (std::size_t keep : {std::size_t{0}, std::size_t{7}, std::size_t{127},
                           std::size_t{128}, bytes.size() - 5}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes.substr(0, keep);
    out.close();
    auto r = OpenRelationContainer(path);
    EXPECT_FALSE(r.ok()) << "truncation to " << keep << " not detected";
  }
  std::remove(path.c_str());
}

TEST(RelationStore, PairTextParity) {
  // text -> pairs -> container -> pairs -> text is a fixed point, and both
  // loaders feed AdaptiveRelation identically.
  DataGraph g = RandomDataGraph({.num_nodes = 30,
                                 .num_labels = 1,
                                 .num_data_values = 2,
                                 .edge_percent = 20,
                                 .seed = 5});
  Pairs pairs = RandomPairs(g.NumNodes(), 90, 44);
  std::string text = WriteRelationPairsText(g, pairs);
  auto parsed = ReadRelationPairsText(g, text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value(),
            BinaryRelation::FromPairs(g.NumNodes(), pairs).Pairs());
  EXPECT_EQ(WriteRelationPairsText(g, parsed.value()), text);
  std::string path = TempPath("parity");
  ASSERT_TRUE(
      WriteRelationContainer(g.NumNodes(), parsed.value(), 0, path).ok());
  auto stored = OpenRelationContainer(path);
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored.value().pairs, parsed.value());
  // The dense parser (ReadRelationText) and the pair parser agree.
  auto dense = ReadRelationText(g, text);
  ASSERT_TRUE(dense.ok());
  EXPECT_EQ(AdaptiveRelation::FromPairs(g.NumNodes(), parsed.value())
                .ToDense(),
            dense.value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gqd
