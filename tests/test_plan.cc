// Tests for the query-plan static analyzer: automaton
// reachability/liveness analysis, dead-transition elimination,
// kernel-dispatch classification, plan dumps, metrics, and the lint "plan"
// pass surfacing.

#include <gtest/gtest.h>

#include "analysis/pass_manager.h"
#include "analysis/plan/automaton_analysis.h"
#include "analysis/plan/kernel_dispatch.h"
#include "analysis/plan/plan_metrics.h"
#include "analysis/plan/query_plan.h"
#include "definability/assignment_graph.h"
#include "definability/krem_definability.h"
#include "eval/rem_eval.h"
#include "graph/examples.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "rem/parser.h"
#include "rem/register_automaton.h"

namespace gqd {
namespace {

RemPtr MustParse(const std::string& text) {
  auto parsed = ParseRem(text);
  EXPECT_TRUE(parsed.ok()) << text;
  return parsed.value();
}

TEST(AutomatonAnalysis, CleanAutomatonKeepsEverything) {
  StringInterner labels;
  RegisterAutomaton ra =
      CompileRem(MustParse("$r1. a+ [r1=]"), &labels,
                 /*intern_new_labels=*/true);
  AutomatonAnalysis analysis = AnalyzeAutomaton(ra);
  EXPECT_EQ(analysis.num_states, ra.num_states);
  EXPECT_EQ(analysis.live_states, ra.num_states);
  EXPECT_EQ(analysis.kept_transitions, analysis.total_transitions);
  EXPECT_TRUE(analysis.eliminated.empty());
  std::vector<Diagnostic> diagnostics;
  AppendPlanDiagnostics(analysis, &diagnostics);
  EXPECT_TRUE(diagnostics.empty());
}

TEST(AutomatonAnalysis, OutOfAlphabetLetterProducesDeadFragment) {
  // Plan against a concrete alphabet: `zz` is not interned, so its
  // fragment compiles to states no accepting run can traverse.
  DataGraph graph = Figure1Graph();
  StringInterner labels = graph.labels();
  RegisterAutomaton ra =
      CompileRem(MustParse("$r1. (a | zz) [r1=]"), &labels,
                 /*intern_new_labels=*/false);
  AutomatonAnalysis analysis = AnalyzeAutomaton(ra);
  EXPECT_LT(analysis.live_states, analysis.num_states);
  EXPECT_LT(analysis.kept_transitions, analysis.total_transitions);
  EXPECT_FALSE(analysis.eliminated.empty());
  for (const EliminatedTransition& t : analysis.eliminated) {
    EXPECT_EQ(t.kind, EliminatedTransition::Kind::kDeadEndpoint);
  }

  std::vector<Diagnostic> diagnostics;
  AppendPlanDiagnostics(analysis, &diagnostics);
  bool saw_elimination = false;
  for (const Diagnostic& d : diagnostics) {
    if (d.code == "GQD-PLAN-001") {
      saw_elimination = true;
    }
  }
  EXPECT_TRUE(saw_elimination);
}

TEST(AutomatonAnalysis, UnsatisfiableCheckIsEliminated) {
  StringInterner labels;
  RegisterAutomaton ra =
      CompileRem(MustParse("$r1. a [r1= & r1!=]"), &labels,
                 /*intern_new_labels=*/true);
  AutomatonAnalysis analysis = AnalyzeAutomaton(ra);
  EXPECT_GT(analysis.EliminatedCount(
                EliminatedTransition::Kind::kUnsatisfiableCheck) +
                analysis.EliminatedCount(
                    EliminatedTransition::Kind::kDeadEndpoint),
            0u);
}

TEST(AutomatonAnalysis, PruneIsLanguagePreserving) {
  // The pruned machine must evaluate to the same relation as the full
  // compilation path on every query, including ones with dead fragments.
  DataGraph graph = Figure1Graph();
  const char* queries[] = {
      "$r1. a+ [r1=]",
      "$r1. (a | zz)+ [r1=]",
      "$r1. a $r2. a a[r1=] a[r2!=]",
      "(a | b)+",
  };
  for (const char* q : queries) {
    RemPtr expression = MustParse(q);
    StringInterner labels = graph.labels();
    RegisterAutomaton full =
        CompileRem(expression, &labels, /*intern_new_labels=*/false);
    RegisterAutomaton pruned = PruneAutomaton(full, AnalyzeAutomaton(full));
    EXPECT_LE(pruned.num_states, full.num_states) << q;
    BinaryRelation via_expression = EvaluateRem(graph, expression);
    auto via_pruned = EvaluateRemAutomaton(graph, pruned);
    ASSERT_TRUE(via_pruned.ok()) << q;
    EXPECT_EQ(via_expression, via_pruned.value()) << q;
  }
}

TEST(KernelDispatch, ClassifiesEveryTransition) {
  DataGraph graph = RandomDataGraph({.num_nodes = 8,
                                     .num_labels = 2,
                                     .num_data_values = 2,
                                     .edge_percent = 30,
                                     .seed = 7});
  auto ag = AssignmentGraph::Build(graph, 1);
  ASSERT_TRUE(ag.ok());
  KernelDispatchTable table = KernelDispatchTable::Build(ag.value());
  ASSERT_TRUE(table.enabled());
  // Census covers every (mask, label, pattern) triple.
  std::size_t census = 0;
  for (std::size_t cls = 0; cls < kNumKernelClasses; cls++) {
    census += table.class_counts()[cls];
  }
  EXPECT_EQ(census, table.num_store_masks() * table.num_labels() *
                        (std::size_t{1} << ag.value().k()));
  // kGeneric and kDiagonal never appear in a built table — generic means
  // "no table", diagonal is the REE-side class.
  EXPECT_EQ(table.class_counts()[static_cast<std::size_t>(
                TransitionKernelClass::kGeneric)],
            0u);
  EXPECT_EQ(table.class_counts()[static_cast<std::size_t>(
                TransitionKernelClass::kDiagonal)],
            0u);
}

TEST(KernelDispatch, PlannedCensusAttachesToQueryPlan) {
  DataGraph graph = Figure1Graph();
  StringInterner labels = graph.labels();
  QueryPlan plan = BuildRemQueryPlan(MustParse("$r1. a+ [r1=]"), &labels,
                                     /*intern_new_labels=*/false);
  EXPECT_FALSE(plan.has_dispatch);
  auto ag = AssignmentGraph::Build(graph, plan.num_registers);
  ASSERT_TRUE(ag.ok());
  KernelDispatchTable table = KernelDispatchTable::Build(ag.value());
  AttachDispatchCensus(table, &plan);
  EXPECT_TRUE(plan.has_dispatch);
  EXPECT_TRUE(plan.dispatch_enabled);
  EXPECT_EQ(plan.dispatch_states, ag.value().num_states());
  // Non-noop kernels are listed in canonical order with nonzero costs.
  for (const QueryPlanKernelChoice& k : plan.kernels) {
    EXPECT_NE(k.cls, TransitionKernelClass::kNoOp);
    EXPECT_GT(k.cost, 0u);
  }
}

TEST(QueryPlan, DumpsAreDeterministic) {
  DataGraph graph = Figure1Graph();
  auto build = [&] {
    StringInterner labels = graph.labels();
    QueryPlan plan =
        BuildRemQueryPlan(MustParse("$r1. (a | zz)+ [r1=]"), &labels,
                          /*intern_new_labels=*/false);
    auto ag = AssignmentGraph::Build(graph, 1);
    EXPECT_TRUE(ag.ok());
    KernelDispatchTable table = KernelDispatchTable::Build(ag.value());
    AttachDispatchCensus(table, &plan);
    StringInterner names = graph.labels();
    return plan.ToText(&names) + "\n" + plan.ToJson(&names);
  };
  std::string first = build();
  std::string second = build();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("GQD-PLAN-001"), std::string::npos);
  EXPECT_NE(first.find("\"dispatch\""), std::string::npos);
  EXPECT_NE(first.find("class census"), std::string::npos);
}

TEST(PlanMetrics, BuildAndHitCountersAdvance) {
  PlanCounterSnapshot before = GetPlanCounterSnapshot();
  DataGraph graph = RandomDataGraph({.num_nodes = 6,
                                     .num_labels = 1,
                                     .num_data_values = 2,
                                     .edge_percent = 40,
                                     .seed = 3});
  BinaryRelation relation = RandomRelation(6, 25, 9);
  KRemDefinabilityOptions options;
  options.engine = KRemEngine::kPlanned;
  options.max_tuples = 20'000;
  auto r = CheckKRemDefinability(graph, relation, 1, options);
  ASSERT_TRUE(r.ok());
  PlanCounterSnapshot after = GetPlanCounterSnapshot();
  EXPECT_GT(after.builds, before.builds);
  std::uint64_t hits_before = 0;
  std::uint64_t hits_after = 0;
  for (std::size_t cls = 0; cls < kNumKernelClasses; cls++) {
    hits_before += before.kernel_hits[cls];
    hits_after += after.kernel_hits[cls];
  }
  EXPECT_GT(hits_after, hits_before);
}

TEST(PlanMetrics, RenderIntoRegistry) {
  // Force at least one build so every metric family exists.
  DataGraph graph = Figure1Graph();
  auto ag = AssignmentGraph::Build(graph, 1);
  ASSERT_TRUE(ag.ok());
  (void)KernelDispatchTable::Build(ag.value());
  MetricsRegistry registry;
  UpdatePlanMetrics(&registry);
  std::string exposition = registry.RenderPrometheus();
  EXPECT_NE(exposition.find("gqd_plan_builds_total"), std::string::npos);
  EXPECT_NE(exposition.find("gqd_plan_kernel_transitions_total"),
            std::string::npos);
  EXPECT_NE(exposition.find("gqd_plan_kernel_hits_total"),
            std::string::npos);
  EXPECT_NE(exposition.find("gqd_plan_transitions_eliminated_total"),
            std::string::npos);
}

TEST(PlanLintPass, SurfacesThroughLintRem) {
  DataGraph graph = Figure1Graph();
  AnalysisOptions options;
  options.graph = &graph;
  std::vector<Diagnostic> diagnostics =
      LintRem(MustParse("$r1. (a | zz)+ [r1=]"), options);
  bool saw_plan = false;
  for (const Diagnostic& d : diagnostics) {
    if (d.code.rfind("GQD-PLAN-", 0) == 0) {
      saw_plan = true;
    }
  }
  EXPECT_TRUE(saw_plan);
}

TEST(PlanLintPass, CleanQueryHasNoPlanFindings) {
  DataGraph graph = Figure1Graph();
  AnalysisOptions options;
  options.graph = &graph;
  std::vector<Diagnostic> diagnostics =
      LintRem(MustParse("$r1. a+ [r1=]"), options);
  for (const Diagnostic& d : diagnostics) {
    EXPECT_NE(d.code.rfind("GQD-PLAN-", 0), 0u) << d.code;
  }
}

}  // namespace
}  // namespace gqd
