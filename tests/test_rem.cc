// Unit tests for REM: conditions, parser, printer, register automata,
// the Lemma-15 path expression, and the paper's Example 6.

#include <gtest/gtest.h>

#include <sstream>

#include "common/interner.h"
#include "graph/data_path.h"
#include "rem/ast.h"
#include "rem/condition.h"
#include "rem/parser.h"
#include "rem/register_automaton.h"

namespace gqd {
namespace {

StringInterner AbLabels() {
  StringInterner labels;
  labels.Intern("a");
  labels.Intern("b");
  return labels;
}

/// Builds a data path from strings like "0 a 1 b 0" (values are numbers,
/// letters resolve against `labels`).
DataPath Path(const StringInterner& labels, const std::string& text) {
  DataPath p;
  std::istringstream is(text);
  std::string token;
  bool expect_value = true;
  while (is >> token) {
    if (expect_value) {
      p.values.push_back(static_cast<ValueId>(std::stoul(token)));
    } else {
      p.letters.push_back(*labels.Find(token));
    }
    expect_value = !expect_value;
  }
  return p;
}

TEST(Condition, Satisfaction) {
  // τ = (5, ⊥)
  RegisterAssignment tau = {5, kEmptyRegister};
  EXPECT_TRUE(ConditionSatisfied(cond::True(), 9, tau));
  EXPECT_TRUE(ConditionSatisfied(cond::RegisterEq(0), 5, tau));
  EXPECT_FALSE(ConditionSatisfied(cond::RegisterEq(0), 9, tau));
  // ⊥ differs from every value (Definition 3).
  EXPECT_TRUE(ConditionSatisfied(cond::RegisterNeq(1), 5, tau));
  EXPECT_FALSE(ConditionSatisfied(cond::RegisterEq(1), 5, tau));
  EXPECT_TRUE(ConditionSatisfied(
      cond::And(cond::RegisterEq(0), cond::RegisterNeq(1)), 5, tau));
  EXPECT_TRUE(ConditionSatisfied(
      cond::Or(cond::RegisterEq(0), cond::RegisterEq(1)), 5, tau));
  EXPECT_FALSE(ConditionSatisfied(cond::Not(cond::True()), 5, tau));
}

TEST(Condition, ParseAndPrintRoundTrip) {
  for (const char* text :
       {"T", "r1=", "r2!=", "r1= & r2!=", "r1= | ~(r2= & r3!=)", "~T"}) {
    auto c1 = ParseCondition(text);
    ASSERT_TRUE(c1.ok()) << c1.status();
    auto c2 = ParseCondition(ConditionToString(c1.value()));
    ASSERT_TRUE(c2.ok());
    std::size_t k = std::max<std::size_t>(
        ConditionNumRegisters(c1.value()), 1);
    EXPECT_EQ(ConditionToMinterms(c1.value(), k),
              ConditionToMinterms(c2.value(), k))
        << text;
  }
}

TEST(Condition, MintermRoundTrip) {
  // Every minterm set over k=2 registers converts to an AST and back.
  for (MintermMask mask = 0; mask < 16; mask++) {
    ConditionPtr c = ConditionFromMinterms(mask, 2);
    EXPECT_EQ(ConditionToMinterms(c, 2), mask) << "mask=" << mask;
  }
}

TEST(Condition, MintermsOfAtoms) {
  // Over k=1: patterns are {0 (r1 != d), 1 (r1 = d)}.
  EXPECT_EQ(ConditionToMinterms(cond::RegisterEq(0), 1), MintermMask{0b10});
  EXPECT_EQ(ConditionToMinterms(cond::RegisterNeq(0), 1), MintermMask{0b01});
  EXPECT_EQ(ConditionToMinterms(cond::True(), 1), MintermMask{0b11});
  EXPECT_EQ(ConditionToMinterms(cond::False(), 1), MintermMask{0b00});
}

TEST(Condition, EqualityPattern) {
  RegisterAssignment tau = {7, kEmptyRegister, 3};
  EXPECT_EQ(EqualityPattern(7, tau), 0b001u);
  EXPECT_EQ(EqualityPattern(3, tau), 0b100u);
  EXPECT_EQ(EqualityPattern(9, tau), 0b000u);
}

TEST(RemParser, ParsesExample6) {
  // Example 6: ↓r1 · a · [r1=], written here as `$r1. a[r1=]`.
  auto e = ParseRem("$r1. a[r1=]");
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_EQ(RemNumRegisters(e.value()), 1u);
  auto f = ParseRem("$r1. a $r2. b a[r1=] b[r2!=]");
  ASSERT_TRUE(f.ok()) << f.status();
  EXPECT_EQ(RemNumRegisters(f.value()), 2u);
}

TEST(RemParser, MultiRegisterBind) {
  auto e = ParseRem("$(r1,r3). a");
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_EQ(RemNumRegisters(e.value()), 3u);
}

TEST(RemParser, RejectsMalformed) {
  EXPECT_FALSE(ParseRem("").ok());
  EXPECT_FALSE(ParseRem("$x. a").ok());
  EXPECT_FALSE(ParseRem("$r0. a").ok());
  EXPECT_FALSE(ParseRem("a[r1]").ok());
  EXPECT_FALSE(ParseRem("a[r1=").ok());
  EXPECT_FALSE(ParseRem("$r1 a").ok());
  EXPECT_FALSE(ParseRem("(a").ok());
}

TEST(RemPrinter, RoundTrip) {
  StringInterner labels = AbLabels();
  std::vector<DataPath> probes = {
      Path(labels, "0 a 0"),     Path(labels, "0 a 1"),
      Path(labels, "0 a 1 a 0"), Path(labels, "0 a 1 b 1"),
      Path(labels, "0 a 0 a 0 a 0"), Path(labels, "1 a 2 b 3 a 2 b 3"),
  };
  for (const char* text :
       {"$r1. a[r1=]", "$r1. a $r2. b a[r1=] b[r2!=]", "a | b+",
        "($r1. a[r1=]) | b", "$(r1,r2). (a | b)[r1= & r2=]",
        "a ($r1. b[r1!=])"}) {
    auto e1 = ParseRem(text);
    ASSERT_TRUE(e1.ok()) << text << ": " << e1.status();
    std::string printed = RemToString(e1.value());
    auto e2 = ParseRem(printed);
    ASSERT_TRUE(e2.ok()) << text << " -> " << printed;
    for (const DataPath& p : probes) {
      EXPECT_EQ(RemMatches(e1.value(), p, &labels),
                RemMatches(e2.value(), p, &labels))
          << text << " vs " << printed;
    }
  }
}

TEST(RegisterAutomaton, Example6FirstExpression) {
  // L(↓r1·a·[r1=]) = { d a d }.
  StringInterner labels = AbLabels();
  RemPtr e = ParseRem("$r1. a[r1=]").ValueOrDie();
  EXPECT_TRUE(RemMatches(e, Path(labels, "4 a 4"), &labels));
  EXPECT_FALSE(RemMatches(e, Path(labels, "4 a 5"), &labels));
  EXPECT_FALSE(RemMatches(e, Path(labels, "4 b 4"), &labels));
  EXPECT_FALSE(RemMatches(e, Path(labels, "4 a 4 a 4"), &labels));
  EXPECT_FALSE(RemMatches(e, Path(labels, "4"), &labels));
}

TEST(RegisterAutomaton, Example6SecondExpression) {
  // L(↓r1·a·↓r2·b·a[r1=]·b[r2≠]) = { d1 a d2 b d3 a d4 b d5 :
  //                                   d1 = d4, d2 ≠ d5 }.
  StringInterner labels = AbLabels();
  RemPtr e = ParseRem("$r1. a $r2. b a[r1=] b[r2!=]").ValueOrDie();
  EXPECT_TRUE(RemMatches(e, Path(labels, "1 a 2 b 3 a 1 b 5"), &labels));
  EXPECT_TRUE(RemMatches(e, Path(labels, "1 a 2 b 1 a 1 b 3"), &labels));
  // d1 != d4:
  EXPECT_FALSE(RemMatches(e, Path(labels, "1 a 2 b 3 a 9 b 5"), &labels));
  // d2 == d5:
  EXPECT_FALSE(RemMatches(e, Path(labels, "1 a 2 b 3 a 1 b 2"), &labels));
}

TEST(RegisterAutomaton, EpsilonMatchesSingleValueOnly) {
  StringInterner labels = AbLabels();
  RemPtr e = ParseRem("eps").ValueOrDie();
  EXPECT_TRUE(RemMatches(e, DataPath::Unit(3), &labels));
  EXPECT_FALSE(RemMatches(e, Path(labels, "3 a 3"), &labels));
}

TEST(RegisterAutomaton, PlusIteratesWithSharedBoundary) {
  // ($r1. a[r1=])+ : every a-step repeats its own start value: d a d a d...
  StringInterner labels = AbLabels();
  RemPtr e = ParseRem("($r1. a[r1=])+").ValueOrDie();
  EXPECT_TRUE(RemMatches(e, Path(labels, "2 a 2"), &labels));
  EXPECT_TRUE(RemMatches(e, Path(labels, "2 a 2 a 2"), &labels));
  EXPECT_FALSE(RemMatches(e, Path(labels, "2 a 2 a 3"), &labels));
  EXPECT_FALSE(RemMatches(e, DataPath::Unit(2), &labels));
}

TEST(RegisterAutomaton, StarSugarAcceptsUnit) {
  StringInterner labels = AbLabels();
  RemPtr e = ParseRem("($r1. a[r1=])*").ValueOrDie();
  EXPECT_TRUE(RemMatches(e, DataPath::Unit(2), &labels));
  EXPECT_TRUE(RemMatches(e, Path(labels, "2 a 2"), &labels));
}

TEST(RegisterAutomaton, RegisterPersistsAcrossConcat) {
  // ($r1. a) b[r1=] — the register bound in the left factor is visible in
  // the right factor. This is exactly what REE cannot express.
  StringInterner labels = AbLabels();
  RemPtr e = ParseRem("$r1. a b[r1=]").ValueOrDie();
  EXPECT_TRUE(RemMatches(e, Path(labels, "7 a 8 b 7"), &labels));
  EXPECT_FALSE(RemMatches(e, Path(labels, "7 a 8 b 8"), &labels));
}

TEST(RegisterAutomaton, FreshValueConditionUsesBottomSemantics) {
  // a[r1!=] with r1 never bound: ⊥ ≠ d always holds, so any a-step works.
  StringInterner labels = AbLabels();
  RemPtr e = ParseRem("a[r1!=]").ValueOrDie();
  EXPECT_TRUE(RemMatches(e, Path(labels, "0 a 1"), &labels));
  EXPECT_TRUE(RemMatches(e, Path(labels, "0 a 0"), &labels));
  // a[r1=] with r1 never bound is unsatisfiable.
  RemPtr f = ParseRem("a[r1=]").ValueOrDie();
  EXPECT_FALSE(RemMatches(f, Path(labels, "0 a 0"), &labels));
}

TEST(BuildPathRem, LanguageIsAutomorphismClass) {
  StringInterner labels = AbLabels();
  DataPath w = Path(labels, "0 a 1 b 0 a 2");
  RemPtr e = BuildPathRem(w, labels);
  // w itself and automorphic copies match.
  EXPECT_TRUE(RemMatches(e, w, &labels));
  EXPECT_TRUE(RemMatches(e, Path(labels, "5 a 9 b 5 a 7"), &labels));
  // Non-automorphic variants do not.
  EXPECT_FALSE(RemMatches(e, Path(labels, "5 a 9 b 5 a 5"), &labels));
  EXPECT_FALSE(RemMatches(e, Path(labels, "5 a 9 b 9 a 7"), &labels));
  EXPECT_FALSE(RemMatches(e, Path(labels, "5 a 9 b 5 a 9"), &labels));
  EXPECT_FALSE(RemMatches(e, Path(labels, "5 a 9 a 5 a 7"), &labels));
  EXPECT_FALSE(RemMatches(e, Path(labels, "5 a 9 b 5"), &labels));
}

TEST(BuildPathRem, ExhaustiveAutomorphismCheck) {
  // Property check (Lemma 15): over all data paths with values in {0,1,2}
  // and letters a/b of length 3, membership in L(e[w]) coincides with
  // automorphism to w.
  StringInterner labels = AbLabels();
  DataPath w = Path(labels, "0 a 1 a 1 b 2");
  RemPtr e = BuildPathRem(w, labels);
  for (ValueId d0 = 0; d0 < 3; d0++) {
    for (ValueId d1 = 0; d1 < 3; d1++) {
      for (ValueId d2 = 0; d2 < 3; d2++) {
        for (ValueId d3 = 0; d3 < 3; d3++) {
          for (LabelId l0 = 0; l0 < 2; l0++) {
            for (LabelId l1 = 0; l1 < 2; l1++) {
              for (LabelId l2 = 0; l2 < 2; l2++) {
                DataPath candidate{{d0, d1, d2, d3}, {l0, l1, l2}};
                EXPECT_EQ(RemMatches(e, candidate, &labels),
                          candidate.IsAutomorphicTo(w));
              }
            }
          }
        }
      }
    }
  }
}

TEST(BuildPathRem, UnitPath) {
  StringInterner labels = AbLabels();
  RemPtr e = BuildPathRem(DataPath::Unit(7), labels);
  EXPECT_TRUE(RemMatches(e, DataPath::Unit(0), &labels));
  EXPECT_FALSE(RemMatches(e, Path(labels, "0 a 0"), &labels));
}

TEST(RemNumRegisters, CountsConditionsAndBinds) {
  EXPECT_EQ(RemNumRegisters(ParseRem("a").ValueOrDie()), 0u);
  EXPECT_EQ(RemNumRegisters(ParseRem("a[r3=]").ValueOrDie()), 3u);
  EXPECT_EQ(RemNumRegisters(ParseRem("$r2. a").ValueOrDie()), 2u);
}

}  // namespace
}  // namespace gqd
