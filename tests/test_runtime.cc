// Tests for the serving runtime: JSON model, thread pool, graph registry,
// result cache, cancellation tokens, and deadline propagation through the
// evaluators and definability checkers.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "definability/krem_definability.h"
#include "definability/ree_definability.h"
#include "eval/eval_options.h"
#include "eval/rem_eval.h"
#include "eval/rpq_eval.h"
#include "graph/generators.h"
#include "rem/parser.h"
#include "regex/parser.h"
#include "runtime/graph_registry.h"
#include "runtime/json.h"
#include "runtime/result_cache.h"
#include "runtime/service.h"
#include "runtime/stats.h"
#include "common/thread_pool.h"

namespace gqd {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// ---------------------------------------------------------------- JSON --

TEST(Json, ParsesScalarsAndContainers) {
  auto v = JsonValue::Parse(
      R"({"s":"a\nb","n":42,"f":-1.5,"t":true,"x":null,"a":[1,2]})");
  ASSERT_TRUE(v.ok()) << v.status();
  const JsonValue& root = v.value();
  EXPECT_EQ(root.GetString("s").ValueOrDie(), "a\nb");
  EXPECT_EQ(root.GetInt("n").ValueOrDie(), 42);
  EXPECT_DOUBLE_EQ(root.Find("f")->AsNumber(), -1.5);
  EXPECT_TRUE(root.Find("t")->AsBool());
  EXPECT_TRUE(root.Find("x")->is_null());
  ASSERT_TRUE(root.Find("a")->is_array());
  EXPECT_EQ(root.Find("a")->AsArray().size(), 2u);
  EXPECT_EQ(root.Find("missing"), nullptr);
}

TEST(Json, RoundTripsThroughSerialize) {
  const std::string text =
      R"({"cmd":"eval","graph":"g","queries":["a+","a.a"],"deadline_ms":5})";
  auto v = JsonValue::Parse(text);
  ASSERT_TRUE(v.ok());
  auto again = JsonValue::Parse(v.value().Serialize());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().Serialize(), v.value().Serialize());
}

TEST(Json, SerializeEscapesControlCharacters) {
  JsonValue v(std::string("tab\there\nquote\""));
  EXPECT_EQ(v.Serialize(), "\"tab\\there\\nquote\\\"\"");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("").ok());
}

TEST(Json, MissingFieldErrorsNameTheKey) {
  auto v = JsonValue::Parse("{\"cmd\":\"eval\"}");
  ASSERT_TRUE(v.ok());
  auto missing = v.value().GetString("graph");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("graph"), std::string::npos);
}

// --------------------------------------------------------- CancelToken --

TEST(CancelToken, FreshTokenIsNotExpired) {
  CancelToken token;
  EXPECT_FALSE(token.Expired());
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancelToken, CancelLatches) {
  CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.Expired());
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelToken, PastDeadlineExpires) {
  CancelToken token(std::chrono::nanoseconds(0));
  EXPECT_TRUE(token.Expired());
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
}

// ----------------------------------------------------------- ThreadPool --

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kTasks = 200;
  std::atomic<int> done{0};
  for (int i = 0; i < kTasks; i++) {
    pool.Submit([&] {
      counter.fetch_add(1, std::memory_order_relaxed);
      done.fetch_add(1, std::memory_order_release);
    });
  }
  while (done.load(std::memory_order_acquire) < kTasks) {
    std::this_thread::yield();
  }
  EXPECT_EQ(counter.load(), kTasks);
  ThreadPool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.num_threads, 4u);
  EXPECT_EQ(stats.tasks_executed, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(stats.queued_tasks, 0u);
}

TEST(ThreadPool, WorkerSubmittedTasksRun) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.Submit([&] {
    // Recursive fan-out from inside a worker goes to the worker's own
    // queue and must still execute (possibly via a steal).
    for (int i = 0; i < 8; i++) {
      pool.Submit([&] { done.fetch_add(1, std::memory_order_release); });
    }
    done.fetch_add(1, std::memory_order_release);
  });
  while (done.load(std::memory_order_acquire) < 9) {
    std::this_thread::yield();
  }
  SUCCEED();
}

// -------------------------------------------------------- GraphRegistry --

TEST(GraphRegistry, LoadGetAndFingerprint) {
  GraphRegistry registry;
  const std::string text = "node u 0\nnode v 1\nedge u a v\n";
  auto entry = registry.Load("g", text);
  ASSERT_TRUE(entry.ok()) << entry.status();
  EXPECT_EQ(entry.value().fingerprint.size(), 16u);
  EXPECT_EQ(entry.value().graph->NumNodes(), 2u);

  auto fetched = registry.Get("g");
  ASSERT_TRUE(fetched.ok());
  // Same parsed object is shared, not re-parsed.
  EXPECT_EQ(fetched.value().graph.get(), entry.value().graph.get());

  // Same content => same fingerprint, under any name.
  auto other = registry.Load("h", text);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other.value().fingerprint, entry.value().fingerprint);

  // Different content => different fingerprint.
  auto changed = registry.Load("g", "node u 0\nnode v 2\nedge u a v\n");
  ASSERT_TRUE(changed.ok());
  EXPECT_NE(changed.value().fingerprint, entry.value().fingerprint);

  EXPECT_EQ(registry.Names(), (std::vector<std::string>{"g", "h"}));
}

TEST(GraphRegistry, UnknownNameIsNotFound) {
  GraphRegistry registry;
  auto missing = registry.Get("nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(GraphRegistry, ParseErrorsCarryLineNumbers) {
  GraphRegistry registry;
  auto bad = registry.Load("g", "node u 0\nbogus line here\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos)
      << bad.status();
}

// ---------------------------------------------------------- ResultCache --

TEST(ResultCache, HitReturnsSharedValueAndCounts) {
  ResultCache cache(64);
  std::string key = ResultCache::MakeKey("fp", "rpq", "a+");
  EXPECT_EQ(cache.Get(key), nullptr);
  auto value = std::make_shared<const BinaryRelation>(3);
  cache.Put(key, value);
  EXPECT_EQ(cache.Get(key).get(), value.get());
  ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCache, DistinctComponentsDistinctKeys) {
  EXPECT_NE(ResultCache::MakeKey("fp", "rpq", "a+"),
            ResultCache::MakeKey("fp", "rem", "a+"));
  EXPECT_NE(ResultCache::MakeKey("fp1", "rpq", "a+"),
            ResultCache::MakeKey("fp2", "rpq", "a+"));
  // The separator keeps "ab"+"c" and "a"+"bc" apart.
  EXPECT_NE(ResultCache::MakeKey("f", "rpqx", "y"),
            ResultCache::MakeKey("f", "rpq", "xy"));
}

TEST(ResultCache, EvictsBeyondCapacity) {
  ResultCache cache(8);  // one entry per shard
  auto value = std::make_shared<const BinaryRelation>(1);
  for (int i = 0; i < 100; i++) {
    cache.Put(ResultCache::MakeKey("fp", "rpq", std::to_string(i)), value);
  }
  ResultCache::Stats stats = cache.GetStats();
  EXPECT_LE(stats.entries, 8u);
  EXPECT_GT(stats.evictions, 0u);
}

// ---------------------------------------------------------- ServerStats --

TEST(ServerStats, RecordsAndSerializes) {
  ServerStats stats;
  stats.Record("eval", true, std::chrono::microseconds(3));
  stats.Record("eval", true, std::chrono::milliseconds(2));
  stats.Record("lint", false, std::chrono::microseconds(1));
  EXPECT_EQ(stats.total_requests(), 3u);
  ThreadPool::Stats pool;
  pool.num_threads = 4;
  ResultCache::Stats cache;
  cache.hits = 7;
  std::string json = stats.ToJson(pool, cache);
  auto parsed = JsonValue::Parse(json);
  ASSERT_TRUE(parsed.ok()) << json;
  EXPECT_EQ(parsed.value().GetInt("requests").ValueOrDie(), 3);
  EXPECT_EQ(parsed.value().GetInt("errors").ValueOrDie(), 1);
  EXPECT_EQ(parsed.value().Find("per_command")->Find("eval")->AsNumber(), 2);
  EXPECT_EQ(parsed.value().Find("cache")->Find("hits")->AsNumber(), 7);
  EXPECT_EQ(parsed.value().Find("pool")->Find("num_threads")->AsNumber(), 4);
}

// ------------------------------------------------- deadline propagation --

TEST(Deadline, EvalReturnsDeadlineExceeded) {
  std::vector<std::uint32_t> values;
  for (int i = 0; i < 400; i++) {
    values.push_back(static_cast<std::uint32_t>(i % 7));
  }
  DataGraph g = LineGraph(values);
  CancelToken token(std::chrono::nanoseconds(0));
  EvalOptions options;
  options.cancel = &token;
  auto result =
      EvaluateRem(g, ParseRem("$r1. a+ [r1=]").ValueOrDie(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(Deadline, KRemCheckerStopsWithinGrace) {
  // This instance runs for minutes unconstrained (the macro-tuple BFS on a
  // 12-node, 2-label, 6-value graph with k=3 explores an enormous space);
  // with a 100 ms deadline it must come back almost immediately.
  RandomGraphOptions options;
  options.num_nodes = 12;
  options.num_labels = 2;
  options.num_data_values = 6;
  options.edge_percent = 25;
  options.seed = 7;
  DataGraph g = RandomDataGraph(options);
  BinaryRelation s = RandomRelation(g.NumNodes(), 30, 11);
  CancelToken token(std::chrono::milliseconds(100));
  KRemDefinabilityOptions check_options;
  check_options.max_tuples = 100'000'000;
  check_options.cancel = &token;
  auto start = Clock::now();
  auto result = CheckKRemDefinability(g, s, 3, check_options);
  double elapsed_ms = MsSince(start);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // Deadline 100 ms + generous grace for slow CI machines.
  EXPECT_LT(elapsed_ms, 2000.0);
}

TEST(Deadline, ReeCheckerStopsWithinGrace) {
  RandomGraphOptions options;
  options.num_nodes = 14;
  options.num_labels = 2;
  options.num_data_values = 7;
  options.edge_percent = 30;
  options.seed = 5;
  DataGraph g = RandomDataGraph(options);
  BinaryRelation s = RandomRelation(g.NumNodes(), 30, 13);
  CancelToken token(std::chrono::milliseconds(100));
  ReeDefinabilityOptions check_options;
  check_options.max_monoid_size = 100'000'000;
  check_options.cancel = &token;
  auto start = Clock::now();
  auto result = CheckReeDefinability(g, s, check_options);
  double elapsed_ms = MsSince(start);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed_ms, 2000.0);
}

// ------------------------------------------------------ service caching --

TEST(ServiceCache, HitIsFasterAndBitIdentical) {
  QueryService service;
  std::vector<std::uint32_t> values;
  for (int i = 0; i < 400; i++) {
    values.push_back(static_cast<std::uint32_t>(i % 7));
  }
  service.registry().Register("line", LineGraph(values));
  const std::string request =
      R"({"cmd":"eval","graph":"line","language":"rem",)"
      R"("query":"$r1. a+ [r1=]"})";
  bool shutdown = false;

  auto cold_start = Clock::now();
  std::string cold = service.HandleLine(request, &shutdown);
  double cold_ms = MsSince(cold_start);
  ASSERT_NE(cold.find("\"ok\":true"), std::string::npos) << cold;

  // Best warm run of three (one-shot timing on a loaded CI box is noisy).
  double warm_ms = 1e18;
  std::string warm;
  for (int i = 0; i < 3; i++) {
    auto warm_start = Clock::now();
    warm = service.HandleLine(request, &shutdown);
    warm_ms = std::min(warm_ms, MsSince(warm_start));
  }
  // Bit-identical response, and the cache hit actually skipped the BFS.
  EXPECT_EQ(warm, cold);
  EXPECT_GE(service.cache_stats().hits, 3u);
  EXPECT_LT(warm_ms * 5.0, cold_ms)
      << "cold=" << cold_ms << "ms warm=" << warm_ms << "ms";
}

TEST(ServiceCache, NormalizationSharesEntries) {
  QueryService service;
  service.registry().Register("line",
                              LineGraph({0, 1, 0, 1}, "a"));
  bool shutdown = false;
  std::string first = service.HandleLine(
      R"({"cmd":"eval","graph":"line","language":"rpq","query":"a.a"})",
      &shutdown);
  ASSERT_NE(first.find("\"ok\":true"), std::string::npos) << first;
  ResultCache::Stats before = service.cache_stats();
  // Different surface syntax, same canonical form => cache hit.
  std::string second = service.HandleLine(
      R"({"cmd":"eval","graph":"line","language":"rpq","query":"a . a"})",
      &shutdown);
  ASSERT_NE(second.find("\"ok\":true"), std::string::npos) << second;
  EXPECT_EQ(service.cache_stats().hits, before.hits + 1);
}

}  // namespace
}  // namespace gqd
