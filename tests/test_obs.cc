// Tests for the observability subsystem: span tracer semantics (nesting,
// cross-thread drain, ring overflow, overhead when idle), the metrics
// registry with Prometheus exposition, and the Chrome trace-event export
// (including a golden-file schema check so the format stays stable for
// external tooling).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <new>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "definability/krem_definability.h"
#include "graph/examples.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

// Global allocation counter so the no-tracer-installed path can be shown
// allocation-free. Counting is binary-wide but only read as a delta around
// the code under test.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// GCC flags free() inside a replaced operator delete as a new/free
// mismatch; the pairing is correct since operator new below mallocs.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace gqd {
namespace {

// --- Tracer ---------------------------------------------------------------

// Tests below that assert spans were *recorded* require the span sites to
// be compiled in; with -DGQD_ENABLE_TRACING=OFF they are skipped (the
// no-op behaviors and the metrics/export layers are still covered).
#ifndef GQD_DISABLE_TRACING

TEST(Tracer, RecordsNestedSpansWithParentLinks) {
  Tracer tracer;
  {
    Tracer::Scope scope(&tracer);
    GQD_TRACE_SPAN(outer, "outer");
    {
      GQD_TRACE_SPAN(inner, "inner");
      GQD_TRACE_SPAN_ATTR(inner, "value", 7);
    }
  }
  Tracer::DrainResult out = tracer.Drain();
  ASSERT_EQ(out.spans.size(), 2u);
  // Sorted by start time: outer opened first.
  const SpanRecord& outer = out.spans[0];
  const SpanRecord& inner = out.spans[1];
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_EQ(inner.parent_id, outer.span_id);
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.depth, 1u);
  ASSERT_EQ(inner.num_attrs, 1u);
  EXPECT_STREQ(inner.attrs[0].key, "value");
  EXPECT_EQ(inner.attrs[0].value, 7u);
  // Children close before parents, so durations nest.
  EXPECT_LE(inner.start_ns + inner.dur_ns, outer.start_ns + outer.dur_ns);
  EXPECT_GE(inner.start_ns, outer.start_ns);
}

#endif  // GQD_DISABLE_TRACING

TEST(Tracer, NoTracerInstalledRecordsNothing) {
  ASSERT_EQ(Tracer::Current(), nullptr);
  GQD_TRACE_SPAN(span, "ignored");
  GQD_TRACE_SPAN_ATTR(span, "key", 1);
  Tracer tracer;
  EXPECT_TRUE(tracer.Drain().spans.empty());
}

TEST(Tracer, NoTracerInstalledAllocatesNothing) {
  ASSERT_EQ(Tracer::Current(), nullptr);
  std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; i++) {
    GQD_TRACE_SPAN(span, "hot");
    GQD_TRACE_SPAN_ATTR(span, "iteration", i);
  }
  std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

TEST(Tracer, NullScopeLeavesInstallationAlone) {
  Tracer tracer;
  Tracer::Scope outer(&tracer);
  {
    Tracer::Scope inner(nullptr);
    EXPECT_EQ(Tracer::Current(), &tracer);
  }
  EXPECT_EQ(Tracer::Current(), &tracer);
}

#ifndef GQD_DISABLE_TRACING

TEST(Tracer, CrossThreadDrainMergesRingsWithDistinctTids) {
  Tracer tracer;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&tracer] {
      Tracer::Scope scope(&tracer);
      for (int i = 0; i < kSpansPerThread; i++) {
        GQD_TRACE_SPAN(span, "worker.step");
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  Tracer::DrainResult out = tracer.Drain();
  EXPECT_EQ(out.spans.size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  std::set<std::uint32_t> tids;
  std::set<std::uint64_t> span_ids;
  for (const SpanRecord& span : out.spans) {
    tids.insert(span.tid);
    span_ids.insert(span.span_id);
  }
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  // Span ids are process-unique even across threads.
  EXPECT_EQ(span_ids.size(), out.spans.size());
  ASSERT_EQ(out.totals.size(), 1u);
  EXPECT_EQ(out.totals[0].name, "worker.step");
  EXPECT_EQ(out.totals[0].count,
            static_cast<std::uint64_t>(kThreads * kSpansPerThread));
}

TEST(Tracer, RingOverflowDropsOldestButKeepsTotalsExact) {
  Tracer tracer(/*ring_capacity=*/8);
  {
    Tracer::Scope scope(&tracer);
    for (int i = 0; i < 20; i++) {
      GQD_TRACE_SPAN(span, "step");
    }
  }
  Tracer::DrainResult out = tracer.Drain();
  EXPECT_EQ(out.spans.size(), 8u);
  EXPECT_EQ(out.dropped_spans, 12u);
  ASSERT_EQ(out.totals.size(), 1u);
  EXPECT_EQ(out.totals[0].count, 20u);  // exact despite the drops
  // The retained records are the newest ones, in order.
  for (std::size_t i = 1; i < out.spans.size(); i++) {
    EXPECT_GT(out.spans[i].span_id, out.spans[i - 1].span_id);
  }
}

TEST(Tracer, DrainResetsStateForReuse) {
  Tracer tracer;
  {
    Tracer::Scope scope(&tracer);
    GQD_TRACE_SPAN(span, "first");
  }
  EXPECT_EQ(tracer.Drain().spans.size(), 1u);
  {
    Tracer::Scope scope(&tracer);
    GQD_TRACE_SPAN(span, "second");
  }
  Tracer::DrainResult out = tracer.Drain();
  ASSERT_EQ(out.spans.size(), 1u);
  EXPECT_STREQ(out.spans[0].name, "second");
}

// Frontier-parallel k-REM under a tracer: per-generation BFS spans must
// exist, nest under krem.bfs, and their durations sum to no more than the
// parent's (they partition the loop, minus witness reconstruction).
TEST(Tracer, TracedParallelKRemGenerationSpansNestAndSum) {
  DataGraph g = Figure1Graph();
  Tracer tracer;
  {
    Tracer::Scope scope(&tracer);
    KRemDefinabilityOptions options;
    options.num_threads = 2;
    auto result = CheckKRemDefinability(g, Figure1S2(g), 2, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result.value().verdict, DefinabilityVerdict::kDefinable);
  }
  Tracer::DrainResult out = tracer.Drain();
  const SpanRecord* bfs = nullptr;
  std::vector<const SpanRecord*> generations;
  for (const SpanRecord& span : out.spans) {
    if (std::string(span.name) == "krem.bfs") {
      bfs = &span;
    } else if (std::string(span.name) == "krem.bfs_generation") {
      generations.push_back(&span);
    }
  }
  ASSERT_NE(bfs, nullptr);
  ASSERT_FALSE(generations.empty());
  std::uint64_t generation_sum = 0;
  for (const SpanRecord* generation : generations) {
    EXPECT_EQ(generation->parent_id, bfs->span_id);
    EXPECT_GE(generation->start_ns, bfs->start_ns);
    generation_sum += generation->dur_ns;
  }
  EXPECT_LE(generation_sum, bfs->dur_ns);
}

#endif  // GQD_DISABLE_TRACING

// --- Metrics --------------------------------------------------------------

TEST(Metrics, CounterGaugeHistogramRoundTrip) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("gqd_test_total");
  counter->Inc();
  counter->Inc(4);
  EXPECT_EQ(counter->value(), 5u);
  // Same name + labels resolves to the same instrument.
  EXPECT_EQ(registry.GetCounter("gqd_test_total"), counter);

  Gauge* gauge = registry.GetGauge("gqd_test_active");
  gauge->Set(3);
  gauge->Add(-1);
  EXPECT_EQ(gauge->value(), 2);

  Histogram* histogram = registry.GetHistogram("gqd_test_latency_us");
  histogram->Observe(1);
  histogram->Observe(100);
  histogram->Observe(100);
  EXPECT_EQ(histogram->count(), 3u);
  EXPECT_EQ(histogram->sum(), 201u);
  // 100 lands in bucket [64, 127]; p50/p99 report its upper bound.
  EXPECT_EQ(histogram->QuantileUpperBound(0.99), 127u);
  EXPECT_EQ(histogram->QuantileUpperBound(0.01), 1u);
}

TEST(Metrics, LabelsCreateDistinctInstruments) {
  MetricsRegistry registry;
  Counter* eval = registry.GetCounter("gqd_cmd_total", {{"command", "eval"}});
  Counter* check = registry.GetCounter("gqd_cmd_total", {{"command", "check"}});
  EXPECT_NE(eval, check);
  eval->Inc(2);
  check->Inc(3);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("gqd_cmd_total{command=\"eval\"} 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("gqd_cmd_total{command=\"check\"} 3"), std::string::npos)
      << text;
}

TEST(Metrics, RenderPrometheusEmitsTypedFamilies) {
  MetricsRegistry registry;
  registry.GetCounter("gqd_requests_total")->Inc(7);
  registry.GetGauge("gqd_active")->Set(2);
  Histogram* histogram = registry.GetHistogram("gqd_latency_us");
  histogram->Observe(3);
  std::string text = registry.RenderPrometheus();

  EXPECT_NE(text.find("# TYPE gqd_requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("gqd_requests_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gqd_active gauge"), std::string::npos);
  EXPECT_NE(text.find("gqd_active 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gqd_latency_us histogram"), std::string::npos);
  // Cumulative buckets: 3 falls in le="3"; every later bucket and +Inf
  // carry the count, and _sum/_count close the family.
  EXPECT_NE(text.find("gqd_latency_us_bucket{le=\"3\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("gqd_latency_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("gqd_latency_us_sum 3"), std::string::npos);
  EXPECT_NE(text.find("gqd_latency_us_count 1"), std::string::npos);
  // Exposition ends with a newline (scrape-format requirement).
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(Metrics, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.GetCounter("gqd_sites_total", {{"site", "a\"b\\c\nd"}})->Inc();
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("gqd_sites_total{site=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos)
      << text;
}

TEST(Metrics, KindMismatchYieldsDetachedInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("gqd_thing")->Inc(5);
  // Asking for the same name as a gauge must not corrupt the counter; the
  // returned instrument is usable but never rendered.
  Gauge* gauge = registry.GetGauge("gqd_thing");
  ASSERT_NE(gauge, nullptr);
  gauge->Set(99);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("gqd_thing 5"), std::string::npos);
  EXPECT_EQ(text.find("99"), std::string::npos) << text;
}

// --- Exports --------------------------------------------------------------

Tracer::DrainResult FixedTrace() {
  Tracer::DrainResult trace;
  SpanRecord check;
  check.name = "krem.bfs";
  check.start_ns = 1000;
  check.dur_ns = 503500;
  check.span_id = 1;
  check.parent_id = 0;
  check.tid = 0;
  check.depth = 0;
  check.attrs[0] = {"tuples_explored", 42};
  check.num_attrs = 1;
  SpanRecord generation;
  generation.name = "krem.bfs_generation";
  generation.start_ns = 2000;
  generation.dur_ns = 501000;
  generation.span_id = 2;
  generation.parent_id = 1;
  generation.tid = 0;
  generation.depth = 1;
  generation.attrs[0] = {"generation", 0};
  generation.attrs[1] = {"tuples", 17};
  generation.num_attrs = 2;
  SpanRecord worker;
  worker.name = "krem.worker_generate";
  worker.start_ns = 2500;
  worker.dur_ns = 400000;
  worker.span_id = 3;
  worker.parent_id = 0;
  worker.tid = 1;
  worker.depth = 0;
  trace.spans = {check, generation, worker};
  trace.totals = {StageTotal{"krem.bfs", 1, 503500},
                  StageTotal{"krem.bfs_generation", 1, 501000},
                  StageTotal{"krem.worker_generate", 1, 400000}};
  trace.dropped_spans = 0;
  return trace;
}

// The Chrome trace-event schema is consumed by external tools
// (chrome://tracing, Perfetto, tools/check_observability.sh); pin the
// exact serialization with a golden file.
TEST(Export, ChromeJsonMatchesGoldenFile) {
  std::string rendered = TraceToChromeJson(FixedTrace());
  std::ifstream golden_file(std::string(GQD_TESTS_DATA_DIR) +
                            "/golden_trace.json");
  ASSERT_TRUE(golden_file.is_open())
      << "missing " << GQD_TESTS_DATA_DIR << "/golden_trace.json";
  std::stringstream golden;
  golden << golden_file.rdbuf();
  std::string expected = golden.str();
  // The golden file ends with a trailing newline; the serializer does not.
  if (!expected.empty() && expected.back() == '\n') {
    expected.pop_back();
  }
  EXPECT_EQ(rendered, expected);
}

TEST(Export, ChromeJsonCarriesStageTotalsAndDrops) {
  Tracer::DrainResult trace = FixedTrace();
  trace.dropped_spans = 3;
  std::string rendered = TraceToChromeJson(trace);
  EXPECT_NE(rendered.find("\"gqdDroppedSpans\":3"), std::string::npos);
  EXPECT_NE(
      rendered.find("\"krem.bfs\":{\"count\":1,\"total_ns\":503500}"),
      std::string::npos)
      << rendered;
}

TEST(Export, SpanTreeNestsChildrenAndOrphansBecomeRoots) {
  std::string tree = SpanTreeToJson(FixedTrace().spans);
  // krem.bfs_generation is nested inside krem.bfs; the worker span (whose
  // parent id 0 marks a root) renders as a second root.
  std::size_t bfs = tree.find("\"name\":\"krem.bfs\"");
  std::size_t generation = tree.find("\"name\":\"krem.bfs_generation\"");
  std::size_t worker = tree.find("\"name\":\"krem.worker_generate\"");
  ASSERT_NE(bfs, std::string::npos);
  ASSERT_NE(generation, std::string::npos);
  ASSERT_NE(worker, std::string::npos);
  EXPECT_LT(bfs, generation);
  EXPECT_LT(generation, worker);
  EXPECT_NE(tree.find("\"args\":{\"generation\":0,\"tuples\":17}"),
            std::string::npos)
      << tree;
}

}  // namespace
}  // namespace gqd
