// Tests for the observability subsystem: span tracer semantics (nesting,
// cross-thread drain, ring overflow, overhead when idle), the metrics
// registry with Prometheus exposition, and the Chrome trace-event export
// (including a golden-file schema check so the format stays stable for
// external tooling).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "definability/krem_definability.h"
#include "graph/examples.h"
#include "obs/export.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

// Global allocation counter so the no-tracer-installed path can be shown
// allocation-free. Counting is binary-wide but only read as a delta around
// the code under test.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// GCC flags free() inside a replaced operator delete as a new/free
// mismatch; the pairing is correct since operator new below mallocs.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace gqd {
namespace {

// --- Tracer ---------------------------------------------------------------

// Tests below that assert spans were *recorded* require the span sites to
// be compiled in; with -DGQD_ENABLE_TRACING=OFF they are skipped (the
// no-op behaviors and the metrics/export layers are still covered).
#ifndef GQD_DISABLE_TRACING

TEST(Tracer, RecordsNestedSpansWithParentLinks) {
  Tracer tracer;
  {
    Tracer::Scope scope(&tracer);
    GQD_TRACE_SPAN(outer, "outer");
    {
      GQD_TRACE_SPAN(inner, "inner");
      GQD_TRACE_SPAN_ATTR(inner, "value", 7);
    }
  }
  Tracer::DrainResult out = tracer.Drain();
  ASSERT_EQ(out.spans.size(), 2u);
  // Sorted by start time: outer opened first.
  const SpanRecord& outer = out.spans[0];
  const SpanRecord& inner = out.spans[1];
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_EQ(inner.parent_id, outer.span_id);
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.depth, 1u);
  ASSERT_EQ(inner.num_attrs, 1u);
  EXPECT_STREQ(inner.attrs[0].key, "value");
  EXPECT_EQ(inner.attrs[0].value, 7u);
  // Children close before parents, so durations nest.
  EXPECT_LE(inner.start_ns + inner.dur_ns, outer.start_ns + outer.dur_ns);
  EXPECT_GE(inner.start_ns, outer.start_ns);
}

#endif  // GQD_DISABLE_TRACING

TEST(Tracer, NoTracerInstalledRecordsNothing) {
  ASSERT_EQ(Tracer::Current(), nullptr);
  GQD_TRACE_SPAN(span, "ignored");
  GQD_TRACE_SPAN_ATTR(span, "key", 1);
  Tracer tracer;
  EXPECT_TRUE(tracer.Drain().spans.empty());
}

TEST(Tracer, NoTracerInstalledAllocatesNothing) {
  ASSERT_EQ(Tracer::Current(), nullptr);
  std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; i++) {
    GQD_TRACE_SPAN(span, "hot");
    GQD_TRACE_SPAN_ATTR(span, "iteration", i);
  }
  std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

TEST(Tracer, NullScopeLeavesInstallationAlone) {
  Tracer tracer;
  Tracer::Scope outer(&tracer);
  {
    Tracer::Scope inner(nullptr);
    EXPECT_EQ(Tracer::Current(), &tracer);
  }
  EXPECT_EQ(Tracer::Current(), &tracer);
}

#ifndef GQD_DISABLE_TRACING

TEST(Tracer, CrossThreadDrainMergesRingsWithDistinctTids) {
  Tracer tracer;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&tracer] {
      Tracer::Scope scope(&tracer);
      for (int i = 0; i < kSpansPerThread; i++) {
        GQD_TRACE_SPAN(span, "worker.step");
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  Tracer::DrainResult out = tracer.Drain();
  EXPECT_EQ(out.spans.size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  std::set<std::uint32_t> tids;
  std::set<std::uint64_t> span_ids;
  for (const SpanRecord& span : out.spans) {
    tids.insert(span.tid);
    span_ids.insert(span.span_id);
  }
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  // Span ids are process-unique even across threads.
  EXPECT_EQ(span_ids.size(), out.spans.size());
  ASSERT_EQ(out.totals.size(), 1u);
  EXPECT_EQ(out.totals[0].name, "worker.step");
  EXPECT_EQ(out.totals[0].count,
            static_cast<std::uint64_t>(kThreads * kSpansPerThread));
}

TEST(Tracer, RingOverflowDropsOldestButKeepsTotalsExact) {
  Tracer tracer(/*ring_capacity=*/8);
  {
    Tracer::Scope scope(&tracer);
    for (int i = 0; i < 20; i++) {
      GQD_TRACE_SPAN(span, "step");
    }
  }
  Tracer::DrainResult out = tracer.Drain();
  EXPECT_EQ(out.spans.size(), 8u);
  EXPECT_EQ(out.dropped_spans, 12u);
  ASSERT_EQ(out.totals.size(), 1u);
  EXPECT_EQ(out.totals[0].count, 20u);  // exact despite the drops
  // The retained records are the newest ones, in order.
  for (std::size_t i = 1; i < out.spans.size(); i++) {
    EXPECT_GT(out.spans[i].span_id, out.spans[i - 1].span_id);
  }
}

TEST(Tracer, DrainResetsStateForReuse) {
  Tracer tracer;
  {
    Tracer::Scope scope(&tracer);
    GQD_TRACE_SPAN(span, "first");
  }
  EXPECT_EQ(tracer.Drain().spans.size(), 1u);
  {
    Tracer::Scope scope(&tracer);
    GQD_TRACE_SPAN(span, "second");
  }
  Tracer::DrainResult out = tracer.Drain();
  ASSERT_EQ(out.spans.size(), 1u);
  EXPECT_STREQ(out.spans[0].name, "second");
}

// Frontier-parallel k-REM under a tracer: per-generation BFS spans must
// exist, nest under krem.bfs, and their durations sum to no more than the
// parent's (they partition the loop, minus witness reconstruction).
TEST(Tracer, TracedParallelKRemGenerationSpansNestAndSum) {
  DataGraph g = Figure1Graph();
  Tracer tracer;
  {
    Tracer::Scope scope(&tracer);
    KRemDefinabilityOptions options;
    options.num_threads = 2;
    auto result = CheckKRemDefinability(g, Figure1S2(g), 2, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result.value().verdict, DefinabilityVerdict::kDefinable);
  }
  Tracer::DrainResult out = tracer.Drain();
  const SpanRecord* bfs = nullptr;
  std::vector<const SpanRecord*> generations;
  for (const SpanRecord& span : out.spans) {
    if (std::string(span.name) == "krem.bfs") {
      bfs = &span;
    } else if (std::string(span.name) == "krem.bfs_generation") {
      generations.push_back(&span);
    }
  }
  ASSERT_NE(bfs, nullptr);
  ASSERT_FALSE(generations.empty());
  std::uint64_t generation_sum = 0;
  for (const SpanRecord* generation : generations) {
    EXPECT_EQ(generation->parent_id, bfs->span_id);
    EXPECT_GE(generation->start_ns, bfs->start_ns);
    generation_sum += generation->dur_ns;
  }
  EXPECT_LE(generation_sum, bfs->dur_ns);
}

#endif  // GQD_DISABLE_TRACING

// --- Metrics --------------------------------------------------------------

TEST(Metrics, CounterGaugeHistogramRoundTrip) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("gqd_test_total");
  counter->Inc();
  counter->Inc(4);
  EXPECT_EQ(counter->value(), 5u);
  // Same name + labels resolves to the same instrument.
  EXPECT_EQ(registry.GetCounter("gqd_test_total"), counter);

  Gauge* gauge = registry.GetGauge("gqd_test_active");
  gauge->Set(3);
  gauge->Add(-1);
  EXPECT_EQ(gauge->value(), 2);

  Histogram* histogram = registry.GetHistogram("gqd_test_latency_us");
  histogram->Observe(1);
  histogram->Observe(100);
  histogram->Observe(100);
  EXPECT_EQ(histogram->count(), 3u);
  EXPECT_EQ(histogram->sum(), 201u);
  // 100 lands in bucket [64, 127]; p50/p99 report its upper bound.
  EXPECT_EQ(histogram->QuantileUpperBound(0.99), 127u);
  EXPECT_EQ(histogram->QuantileUpperBound(0.01), 1u);
}

TEST(Metrics, LabelsCreateDistinctInstruments) {
  MetricsRegistry registry;
  Counter* eval = registry.GetCounter("gqd_cmd_total", {{"command", "eval"}});
  Counter* check = registry.GetCounter("gqd_cmd_total", {{"command", "check"}});
  EXPECT_NE(eval, check);
  eval->Inc(2);
  check->Inc(3);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("gqd_cmd_total{command=\"eval\"} 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("gqd_cmd_total{command=\"check\"} 3"), std::string::npos)
      << text;
}

TEST(Metrics, RenderPrometheusEmitsTypedFamilies) {
  MetricsRegistry registry;
  registry.GetCounter("gqd_requests_total")->Inc(7);
  registry.GetGauge("gqd_active")->Set(2);
  Histogram* histogram = registry.GetHistogram("gqd_latency_us");
  histogram->Observe(3);
  std::string text = registry.RenderPrometheus();

  EXPECT_NE(text.find("# TYPE gqd_requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("gqd_requests_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gqd_active gauge"), std::string::npos);
  EXPECT_NE(text.find("gqd_active 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gqd_latency_us histogram"), std::string::npos);
  // Cumulative buckets: 3 falls in le="3"; every later bucket and +Inf
  // carry the count, and _sum/_count close the family.
  EXPECT_NE(text.find("gqd_latency_us_bucket{le=\"3\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("gqd_latency_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("gqd_latency_us_sum 3"), std::string::npos);
  EXPECT_NE(text.find("gqd_latency_us_count 1"), std::string::npos);
  // Exposition ends with a newline (scrape-format requirement).
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(Metrics, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.GetCounter("gqd_sites_total", {{"site", "a\"b\\c\nd"}})->Inc();
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("gqd_sites_total{site=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos)
      << text;
}

TEST(Metrics, KindMismatchYieldsDetachedInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("gqd_thing")->Inc(5);
  // Asking for the same name as a gauge must not corrupt the counter; the
  // returned instrument is usable but never rendered.
  Gauge* gauge = registry.GetGauge("gqd_thing");
  ASSERT_NE(gauge, nullptr);
  gauge->Set(99);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("gqd_thing 5"), std::string::npos);
  EXPECT_EQ(text.find("99"), std::string::npos) << text;
}

// --- Exports --------------------------------------------------------------

Tracer::DrainResult FixedTrace() {
  Tracer::DrainResult trace;
  SpanRecord check;
  check.name = "krem.bfs";
  check.start_ns = 1000;
  check.dur_ns = 503500;
  check.span_id = 1;
  check.parent_id = 0;
  check.tid = 0;
  check.depth = 0;
  check.attrs[0] = {"tuples_explored", 42};
  check.num_attrs = 1;
  SpanRecord generation;
  generation.name = "krem.bfs_generation";
  generation.start_ns = 2000;
  generation.dur_ns = 501000;
  generation.span_id = 2;
  generation.parent_id = 1;
  generation.tid = 0;
  generation.depth = 1;
  generation.attrs[0] = {"generation", 0};
  generation.attrs[1] = {"tuples", 17};
  generation.num_attrs = 2;
  SpanRecord worker;
  worker.name = "krem.worker_generate";
  worker.start_ns = 2500;
  worker.dur_ns = 400000;
  worker.span_id = 3;
  worker.parent_id = 0;
  worker.tid = 1;
  worker.depth = 0;
  trace.spans = {check, generation, worker};
  trace.totals = {StageTotal{"krem.bfs", 1, 503500},
                  StageTotal{"krem.bfs_generation", 1, 501000},
                  StageTotal{"krem.worker_generate", 1, 400000}};
  trace.dropped_spans = 0;
  return trace;
}

// The Chrome trace-event schema is consumed by external tools
// (chrome://tracing, Perfetto, tools/check_observability.sh); pin the
// exact serialization with a golden file.
TEST(Export, ChromeJsonMatchesGoldenFile) {
  std::string rendered = TraceToChromeJson(FixedTrace());
  std::ifstream golden_file(std::string(GQD_TESTS_DATA_DIR) +
                            "/golden_trace.json");
  ASSERT_TRUE(golden_file.is_open())
      << "missing " << GQD_TESTS_DATA_DIR << "/golden_trace.json";
  std::stringstream golden;
  golden << golden_file.rdbuf();
  std::string expected = golden.str();
  // The golden file ends with a trailing newline; the serializer does not.
  if (!expected.empty() && expected.back() == '\n') {
    expected.pop_back();
  }
  EXPECT_EQ(rendered, expected);
}

TEST(Export, ChromeJsonCarriesStageTotalsAndDrops) {
  Tracer::DrainResult trace = FixedTrace();
  trace.dropped_spans = 3;
  std::string rendered = TraceToChromeJson(trace);
  EXPECT_NE(rendered.find("\"gqdDroppedSpans\":3"), std::string::npos);
  EXPECT_NE(
      rendered.find("\"krem.bfs\":{\"count\":1,\"total_ns\":503500}"),
      std::string::npos)
      << rendered;
}

// --- TraceContext ---------------------------------------------------------

TEST(TraceContext, MintedContextRoundTripsThroughTraceparent) {
  TraceContext minted = TraceContext::Mint();
  EXPECT_TRUE(minted.valid());
  EXPECT_EQ(minted.parent_span, 0u);
  minted.parent_span = 0x1234abcd5678ef01ULL;
  std::string wire = minted.ToTraceparent();
  ASSERT_EQ(wire.size(), 55u);
  EXPECT_EQ(wire.substr(0, 3), "00-");
  EXPECT_EQ(wire.substr(53), "01");
  TraceContext parsed;
  ASSERT_TRUE(TraceContext::FromTraceparent(wire, &parsed));
  EXPECT_EQ(parsed.trace_hi, minted.trace_hi);
  EXPECT_EQ(parsed.trace_lo, minted.trace_lo);
  EXPECT_EQ(parsed.parent_span, minted.parent_span);
  EXPECT_EQ(parsed.TraceIdHex().size(), 32u);
  EXPECT_EQ(parsed.TraceIdHex(), minted.TraceIdHex());
}

TEST(TraceContext, MintedTraceIdsAreDistinct) {
  EXPECT_NE(TraceContext::Mint().TraceIdHex(),
            TraceContext::Mint().TraceIdHex());
}

TEST(TraceContext, RejectsMalformedTraceparentsWithoutTouchingOutput) {
  const char* bad[] = {
      "",
      "00-0123",
      // Version must be 00, flags 01, separators '-' in the fixed slots.
      "01-00000000000000000000000000000001-0000000000000001-01",
      "00-00000000000000000000000000000001-0000000000000001-00",
      "00x00000000000000000000000000000001-0000000000000001-01",
      "00-00000000000000000000000000000001x0000000000000001-01",
      "00-00000000000000000000000000000001-0000000000000001x01",
      // Hex is lowercase-only (the format we emit); 'g' is not hex at all.
      "00-0000000000000000000000000000000G-0000000000000001-01",
      "00-0000000000000000000000000000000g-0000000000000001-01",
      // An all-zero trace id means "untraced" and must not parse.
      "00-00000000000000000000000000000000-0000000000000001-01",
      // One char too long / too short around the right separators.
      "00-000000000000000000000000000000001-0000000000000001-01",
      "00-0000000000000000000000000000001-0000000000000001-01",
  };
  TraceContext out;
  out.trace_hi = 7;
  out.trace_lo = 9;
  for (const char* text : bad) {
    EXPECT_FALSE(TraceContext::FromTraceparent(text, &out)) << text;
  }
  EXPECT_EQ(out.trace_hi, 7u);
  EXPECT_EQ(out.trace_lo, 9u);
}

// --- Span batches (the `spans` drain wire format) -------------------------

TEST(SpanBatch, SerializeParseRoundTripPreserves64BitIds) {
  SpanRecord span;
  span.name = "route.transport";
  span.start_ns = 1234567;
  span.dur_ns = 890;
  // Both ids would lose low bits if they crossed the wire as JSON doubles.
  span.span_id = 0xfedcba9876543210ULL;
  span.parent_id = 0x0123456789abcdefULL;
  span.tid = 3;
  span.attrs[0] = {"worker", 2};
  span.num_attrs = 1;
  std::string wire = SerializeSpanBatch({span});
  EXPECT_NE(wire.find("\"span_id\":\"fedcba9876543210\""), std::string::npos)
      << wire;
  EXPECT_NE(wire.find("\"parent_id\":\"0123456789abcdef\""), std::string::npos)
      << wire;
  std::vector<OwnedSpan> parsed = ParseSpanBatch(wire, "worker 2", 4);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].name, "route.transport");
  EXPECT_EQ(parsed[0].span_id, span.span_id);
  EXPECT_EQ(parsed[0].parent_id, span.parent_id);
  EXPECT_EQ(parsed[0].start_ns, span.start_ns);
  EXPECT_EQ(parsed[0].dur_ns, span.dur_ns);
  EXPECT_EQ(parsed[0].tid, 3u);
  EXPECT_EQ(parsed[0].pid, 4u);
  EXPECT_EQ(parsed[0].source, "worker 2");
  ASSERT_EQ(parsed[0].args.size(), 1u);
  EXPECT_EQ(parsed[0].args[0].first, "worker");
  EXPECT_EQ(parsed[0].args[0].second, 2u);
}

TEST(SpanBatch, MalformedEntriesAreSkippedNotFatal) {
  EXPECT_TRUE(ParseSpanBatch("not json", "w", 2).empty());
  EXPECT_TRUE(ParseSpanBatch("{\"x\":1}", "w", 2).empty());
  std::string mixed =
      "[{\"name\":\"\",\"span_id\":\"0000000000000001\"},"
      "{\"name\":\"bad_id\",\"span_id\":\"zz\"},"
      "{\"name\":\"good\",\"span_id\":\"0000000000000005\","
      "\"parent_id\":\"0000000000000004\","
      "\"start_ns\":10,\"dur_ns\":2,\"tid\":1,\"args\":{\"k\":3}},"
      "42]";
  std::vector<OwnedSpan> parsed = ParseSpanBatch(mixed, "w", 2);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].name, "good");
  EXPECT_EQ(parsed[0].span_id, 5u);
  EXPECT_EQ(parsed[0].parent_id, 4u);
  ASSERT_EQ(parsed[0].args.size(), 1u);
  EXPECT_EQ(parsed[0].args[0].second, 3u);
}

// --- SpanCollector --------------------------------------------------------

SpanRecord StampedSpan(const char* name, std::uint64_t trace_hi,
                       std::uint64_t trace_lo, std::uint64_t span_id,
                       std::uint64_t start_ns) {
  SpanRecord span;
  span.name = name;
  span.trace_hi = trace_hi;
  span.trace_lo = trace_lo;
  span.span_id = span_id;
  span.start_ns = start_ns;
  return span;
}

TEST(SpanCollector, TakeExtractsOneTraceAndHoldsTheRest) {
  SpanCollector collector;
  collector.tracer()->Record(StampedSpan("a", 1, 1, 10, 5));
  collector.tracer()->Record(StampedSpan("b", 2, 2, 11, 6));
  collector.tracer()->Record(StampedSpan("c", 1, 1, 12, 1));
  std::vector<SpanRecord> first = collector.Take(1, 1);
  ASSERT_EQ(first.size(), 2u);
  // Ordered by start time regardless of record order.
  EXPECT_STREQ(first[0].name, "c");
  EXPECT_STREQ(first[1].name, "a");
  // The other trace's span stayed held across the first Take.
  std::vector<SpanRecord> second = collector.Take(2, 2);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_STREQ(second[0].name, "b");
  EXPECT_TRUE(collector.Take(1, 1).empty());
  EXPECT_EQ(collector.evicted(), 0u);
}

TEST(SpanCollector, BoundedHoldingAreaEvictsOldestUndrained) {
  SpanCollector collector(/*capacity=*/4);
  for (std::uint64_t i = 0; i < 10; i++) {
    collector.tracer()->Record(StampedSpan("s", 9, 9, 100 + i, i));
  }
  // Taking an absent trace still runs the eviction sweep.
  EXPECT_TRUE(collector.Take(3, 3).empty());
  EXPECT_EQ(collector.evicted(), 6u);
  std::vector<SpanRecord> rest = collector.Take(9, 9);
  ASSERT_EQ(rest.size(), 4u);
  EXPECT_EQ(rest.front().span_id, 106u);  // the newest four survived
  EXPECT_EQ(rest.back().span_id, 109u);
}

#ifndef GQD_DISABLE_TRACING

TEST(TraceBinding, StampsTraceIdAndReparentsRoots) {
  Tracer tracer;
  {
    Tracer::Scope scope(&tracer);
    TraceBindingScope binding(Tracer::Binding{0xaa, 0xbb, 77});
    GQD_TRACE_SPAN(root, "root");
    { GQD_TRACE_SPAN(child, "child"); }
  }
  Tracer::Binding after = Tracer::CurrentBinding();
  EXPECT_EQ(after.trace_hi, 0u);
  EXPECT_EQ(after.parent_span, 0u);
  Tracer::DrainResult out = tracer.Drain();
  ASSERT_EQ(out.spans.size(), 2u);
  const SpanRecord& root = out.spans[0];
  const SpanRecord& child = out.spans[1];
  EXPECT_STREQ(root.name, "root");
  // The root parents under the remote span id carried by the binding; the
  // child still parents locally.
  EXPECT_EQ(root.parent_id, 77u);
  EXPECT_EQ(child.parent_id, root.span_id);
  for (const SpanRecord& span : out.spans) {
    EXPECT_EQ(span.trace_hi, 0xaau);
    EXPECT_EQ(span.trace_lo, 0xbbu);
  }
}

#endif  // GQD_DISABLE_TRACING

// --- Merged cross-process traces ------------------------------------------

std::vector<OwnedSpan> FixedMergedSpans() {
  OwnedSpan transport;
  transport.name = "route.transport";
  transport.start_ns = 1000;
  transport.dur_ns = 5000;
  transport.span_id = 1;
  transport.parent_id = 0;
  transport.tid = 0;
  transport.pid = 1;
  transport.source = "router";
  transport.args = {{"worker", 0}};
  OwnedSpan request;
  request.name = "serve.request";
  request.start_ns = 2000;
  request.dur_ns = 3000;
  request.span_id = 2;
  request.parent_id = 1;  // resolves across sources to the router span
  request.tid = 0;
  request.pid = 2;
  request.source = "worker 0";
  OwnedSpan handler;
  handler.name = "serve.handler";
  handler.start_ns = 2100;
  handler.dur_ns = 2000;
  handler.span_id = 3;
  handler.parent_id = 2;
  handler.tid = 0;
  handler.pid = 2;
  handler.source = "worker 0";
  OwnedSpan orphan;
  orphan.name = "orphan";
  orphan.start_ns = 9000;
  orphan.dur_ns = 0;
  orphan.span_id = 4;
  orphan.parent_id = 999;  // absent parent → becomes a root
  orphan.tid = 1;
  orphan.pid = 2;
  orphan.source = "worker 0";
  // Deliberately out of start order: the renderer must sort.
  return {orphan, handler, transport, request};
}

// The merged-tree schema is what routed `"trace":true` responses embed;
// pin the exact serialization.
TEST(MergedTrace, SpanTreeResolvesParentsAcrossSources) {
  std::string rendered = MergedSpanTreeToJson(FixedMergedSpans());
  EXPECT_EQ(rendered,
            "[{\"name\":\"route.transport\",\"start_us\":1.000,"
            "\"dur_us\":5.000,\"tid\":0,\"source\":\"router\","
            "\"args\":{\"worker\":0},\"children\":["
            "{\"name\":\"serve.request\",\"start_us\":2.000,"
            "\"dur_us\":3.000,\"tid\":0,\"source\":\"worker 0\","
            "\"args\":{},\"children\":["
            "{\"name\":\"serve.handler\",\"start_us\":2.100,"
            "\"dur_us\":2.000,\"tid\":0,\"source\":\"worker 0\","
            "\"args\":{},\"children\":[]}]}]},"
            "{\"name\":\"orphan\",\"start_us\":9.000,\"dur_us\":0.000,"
            "\"tid\":1,\"source\":\"worker 0\",\"args\":{},"
            "\"children\":[]}]");
}

TEST(MergedTrace, ChromeJsonNamesOneProcessTrackPerSource) {
  std::string rendered = MergedTraceToChromeJson(FixedMergedSpans());
  // One metadata event per pid, named by source.
  EXPECT_NE(rendered.find("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
                          "\"tid\":0,\"args\":{\"name\":\"router\"}}"),
            std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
                          "\"tid\":0,\"args\":{\"name\":\"worker 0\"}}"),
            std::string::npos)
      << rendered;
  // Spans keep their process track and the complete-event schema.
  EXPECT_NE(rendered.find("{\"name\":\"serve.handler\",\"cat\":\"gqd\","
                          "\"ph\":\"X\",\"ts\":2.100,\"dur\":2.000,"
                          "\"pid\":2,\"tid\":0,\"args\":{}}"),
            std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

// --- EventLog -------------------------------------------------------------

TEST(EventLog, RingBoundDropsOldestAndCountsDrops) {
  EventLog log(/*capacity=*/3);
  for (int i = 0; i < 5; i++) {
    log.Emit(LogLevel::kInfo, "test", "e" + std::to_string(i));
  }
  EXPECT_EQ(log.emitted(), 5u);
  EXPECT_EQ(log.dropped(), 2u);
  std::vector<LogEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.front().event, "e2");
  EXPECT_EQ(events.back().event, "e4");
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
}

TEST(EventLog, MinLevelFiltersAtEmitAndAtSnapshot) {
  EventLog log;
  log.SetMinLevel(LogLevel::kWarn);
  log.Emit(LogLevel::kInfo, "test", "suppressed");
  log.Emit(LogLevel::kError, "test", "kept");
  EXPECT_EQ(log.emitted(), 1u);
  ASSERT_EQ(log.Snapshot().size(), 1u);
  EXPECT_EQ(log.Snapshot()[0].event, "kept");
  log.SetMinLevel(LogLevel::kDebug);
  log.Emit(LogLevel::kInfo, "test", "now_kept");
  EXPECT_EQ(log.Snapshot().size(), 2u);
  // Snapshot-side filter is independent of the emit-side gate.
  ASSERT_EQ(log.Snapshot(LogLevel::kWarn).size(), 1u);
  EXPECT_EQ(log.Snapshot(LogLevel::kWarn)[0].event, "kept");
}

TEST(EventLog, EventJsonShapeParsesAndEscapesFields) {
  EventLog log;
  log.Emit(LogLevel::kWarn, "cluster", "failover",
           {{"cmd", "eval"}, {"note", "a\"b\nc"}});
  std::vector<LogEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  auto parsed = JsonValue::Parse(events[0].ToJson());
  ASSERT_TRUE(parsed.ok()) << events[0].ToJson();
  const JsonValue& event = parsed.value();
  EXPECT_EQ(event.GetStringOr("level", "").value(), "warn");
  EXPECT_EQ(event.GetStringOr("component", "").value(), "cluster");
  EXPECT_EQ(event.GetStringOr("event", "").value(), "failover");
  EXPECT_EQ(event.GetStringOr("cmd", "").value(), "eval");
  EXPECT_EQ(event.GetStringOr("note", "").value(), "a\"b\nc");
  EXPECT_GT(event.GetIntOr("seq", 0).value(), 0);
  EXPECT_GT(event.GetIntOr("ts_ms", 0).value(), 0);
  // Uncorrelated events carry no trace_id key at all.
  EXPECT_EQ(event.Find("trace_id"), nullptr);
}

#ifndef GQD_DISABLE_TRACING

TEST(EventLog, CorrelatesWithTheCurrentTraceBinding) {
  EventLog log;
  {
    TraceBindingScope binding(Tracer::Binding{0xaa, 0xbb, 0});
    log.Emit(LogLevel::kInfo, "test", "bound");
  }
  log.Emit(LogLevel::kInfo, "test", "unbound");
  std::vector<LogEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].trace_id, "00000000000000aa00000000000000bb");
  EXPECT_TRUE(events[1].trace_id.empty());
  EXPECT_NE(events[0].ToJson().find(
                "\"trace_id\":\"00000000000000aa00000000000000bb\""),
            std::string::npos);
  EXPECT_EQ(events[1].ToJson().find("trace_id"), std::string::npos);
}

#endif  // GQD_DISABLE_TRACING

TEST(EventLog, FileSinkAppendsOneJsonLinePerEvent) {
  std::string path = testing::TempDir() + "gqd_eventlog_sink_test.jsonl";
  std::remove(path.c_str());
  {
    EventLog log;
    ASSERT_TRUE(log.OpenSink(path).ok());
    log.Emit(LogLevel::kInfo, "test", "one");
    log.Emit(LogLevel::kWarn, "test", "two");
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(JsonValue::Parse(line).ok()) << line;
    lines++;
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(EventLog, ParseLogLevelAcceptsTheFourNames) {
  LogLevel level = LogLevel::kError;
  ASSERT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  ASSERT_TRUE(ParseLogLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  ASSERT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  ASSERT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "warn");
}

// --- Prometheus exposition edge cases -------------------------------------

TEST(Metrics, HistogramBucketsAreCumulativeAndMonotonic) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("gqd_mono_us");
  const std::uint64_t values[] = {0, 1, 2, 3, 64, 127, 128, 1000000,
                                  ~std::uint64_t{0}};
  for (std::uint64_t value : values) {
    histogram->Observe(value);
  }
  std::string text = registry.RenderPrometheus();
  std::istringstream stream(text);
  std::string line;
  std::uint64_t previous = 0;
  std::uint64_t inf_count = 0;
  double previous_le = -1.0;
  int bucket_lines = 0;
  while (std::getline(stream, line)) {
    if (line.rfind("gqd_mono_us_bucket{le=\"", 0) != 0) {
      continue;
    }
    bucket_lines++;
    std::size_t close = line.find('"', 23);
    ASSERT_NE(close, std::string::npos) << line;
    std::string le = line.substr(23, close - 23);
    std::uint64_t count = std::stoull(line.substr(close + 2));
    // Cumulative counts never decrease as le grows.
    EXPECT_GE(count, previous) << line;
    previous = count;
    if (le == "+Inf") {
      inf_count = count;
    } else {
      // Bucket bounds are strictly increasing.
      double bound = std::stod(le);
      EXPECT_GT(bound, previous_le) << line;
      previous_le = bound;
    }
  }
  EXPECT_GE(bucket_lines, 2);
  // +Inf closes the family at the total observation count.
  EXPECT_EQ(inf_count, static_cast<std::uint64_t>(std::size(values)));
}

// Mirrors the line validator tools/check_observability.sh runs against a
// live scrape, so escaping bugs fail here before they fail in CI.
TEST(Metrics, ExpositionSurvivesTheScrapeFormatValidator) {
  MetricsRegistry registry;
  registry.GetCounter("gqd_esc_total", {{"q", "line1\nline2\"quoted\"\\s"}})
      ->Inc();
  registry.GetGauge("gqd_negative")->Set(-5);
  Histogram* histogram = registry.GetHistogram("gqd_h_us");
  histogram->Observe(10);
  std::string text = registry.RenderPrometheus();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  const std::regex sample_re(
      "^[a-zA-Z_:][a-zA-Z0-9_:]*"
      "(\\{[a-zA-Z_][a-zA-Z0-9_]*=\"(\\\\.|[^\"\\\\])*\""
      "(,[a-zA-Z_][a-zA-Z0-9_]*=\"(\\\\.|[^\"\\\\])*\")*\\})? "
      "-?[0-9]+(\\.[0-9]+)?([eE][+-]?[0-9]+)?$");
  const std::regex type_re(
      "^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$");
  std::istringstream stream(text);
  std::string line;
  bool saw_escaped = false;
  while (std::getline(stream, line)) {
    if (line.rfind("# TYPE", 0) == 0) {
      EXPECT_TRUE(std::regex_match(line, type_re)) << line;
    } else {
      EXPECT_TRUE(std::regex_match(line, sample_re)) << line;
    }
    if (line.rfind("gqd_esc_total", 0) == 0) {
      saw_escaped = true;
      // The newline stayed escaped: the sample is still one line.
      EXPECT_NE(line.find("\\n"), std::string::npos) << line;
    }
  }
  EXPECT_TRUE(saw_escaped);
}

TEST(Export, SpanTreeNestsChildrenAndOrphansBecomeRoots) {
  std::string tree = SpanTreeToJson(FixedTrace().spans);
  // krem.bfs_generation is nested inside krem.bfs; the worker span (whose
  // parent id 0 marks a root) renders as a second root.
  std::size_t bfs = tree.find("\"name\":\"krem.bfs\"");
  std::size_t generation = tree.find("\"name\":\"krem.bfs_generation\"");
  std::size_t worker = tree.find("\"name\":\"krem.worker_generate\"");
  ASSERT_NE(bfs, std::string::npos);
  ASSERT_NE(generation, std::string::npos);
  ASSERT_NE(worker, std::string::npos);
  EXPECT_LT(bfs, generation);
  EXPECT_LT(generation, worker);
  EXPECT_NE(tree.find("\"args\":{\"generation\":0,\"tuples\":17}"),
            std::string::npos)
      << tree;
}

}  // namespace
}  // namespace gqd
