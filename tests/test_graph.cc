// Unit tests for the graph substrate: DataGraph, BinaryRelation,
// TupleRelation, data paths, generators, serialization, and the Figure-1
// running example.

#include <gtest/gtest.h>

#include "graph/data_graph.h"
#include "graph/data_path.h"
#include "graph/examples.h"
#include "graph/generators.h"
#include "graph/relation.h"
#include "graph/serialization.h"

namespace gqd {
namespace {

DataGraph TinyGraph() {
  // u(0) -a-> v(1) -b-> w(0), v -a-> v
  DataGraph g;
  g.AddLabel("a");
  g.AddLabel("b");
  g.AddDataValue("0");
  g.AddDataValue("1");
  NodeId u = g.AddNodeWithValue("0", "u");
  NodeId v = g.AddNodeWithValue("1", "v");
  NodeId w = g.AddNodeWithValue("0", "w");
  g.AddEdgeByName(u, "a", v);
  g.AddEdgeByName(v, "b", w);
  g.AddEdgeByName(v, "a", v);
  return g;
}

TEST(DataGraph, BasicShape) {
  DataGraph g = TinyGraph();
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumLabels(), 2u);
  EXPECT_EQ(g.NumDataValues(), 2u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(DataGraph, EdgesAndAdjacency) {
  DataGraph g = TinyGraph();
  NodeId u = g.FindNode("u").ValueOrDie();
  NodeId v = g.FindNode("v").ValueOrDie();
  NodeId w = g.FindNode("w").ValueOrDie();
  LabelId a = *g.labels().Find("a");
  LabelId b = *g.labels().Find("b");
  EXPECT_TRUE(g.HasEdge(u, a, v));
  EXPECT_TRUE(g.HasEdge(v, b, w));
  EXPECT_TRUE(g.HasEdge(v, a, v));
  EXPECT_FALSE(g.HasEdge(u, b, v));
  EXPECT_EQ(g.OutEdges(u).size(), 1u);
  EXPECT_EQ(g.OutEdges(v).size(), 2u);
  EXPECT_EQ(g.InEdges(v).size(), 2u);  // from u and the self-loop
}

TEST(DataGraph, DuplicateEdgesIgnored) {
  DataGraph g = TinyGraph();
  std::size_t before = g.NumEdges();
  g.AddEdgeByName(g.FindNode("u").ValueOrDie(), "a",
                  g.FindNode("v").ValueOrDie());
  EXPECT_EQ(g.NumEdges(), before);
}

TEST(DataGraph, FindNodeErrors) {
  DataGraph g = TinyGraph();
  EXPECT_FALSE(g.FindNode("nope").ok());
  EXPECT_EQ(g.FindNode("nope").status().code(), StatusCode::kNotFound);
}

TEST(DataGraph, DataValues) {
  DataGraph g = TinyGraph();
  NodeId u = g.FindNode("u").ValueOrDie();
  NodeId v = g.FindNode("v").ValueOrDie();
  NodeId w = g.FindNode("w").ValueOrDie();
  EXPECT_EQ(g.DataValueOf(u), g.DataValueOf(w));
  EXPECT_NE(g.DataValueOf(u), g.DataValueOf(v));
}

TEST(BinaryRelation, BasicOps) {
  BinaryRelation r(4);
  EXPECT_TRUE(r.Empty());
  r.Set(0, 1);
  r.Set(1, 2);
  EXPECT_EQ(r.Count(), 2u);
  EXPECT_TRUE(r.Test(0, 1));
  EXPECT_FALSE(r.Test(1, 0));
  auto pairs = r.Pairs();
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], std::make_pair(NodeId{0}, NodeId{1}));
}

TEST(BinaryRelation, Compose) {
  BinaryRelation r(4), s(4);
  r.Set(0, 1);
  r.Set(0, 2);
  s.Set(1, 3);
  s.Set(2, 0);
  BinaryRelation c = r.Compose(s);
  EXPECT_TRUE(c.Test(0, 3));
  EXPECT_TRUE(c.Test(0, 0));
  EXPECT_EQ(c.Count(), 2u);
}

TEST(BinaryRelation, ComposeWithIdentityIsNoop) {
  BinaryRelation r = RandomRelation(10, 30, 7);
  BinaryRelation id = BinaryRelation::Identity(10);
  EXPECT_EQ(r.Compose(id), r);
  EXPECT_EQ(id.Compose(r), r);
}

TEST(BinaryRelation, ComposeAssociative) {
  BinaryRelation a = RandomRelation(12, 20, 1);
  BinaryRelation b = RandomRelation(12, 20, 2);
  BinaryRelation c = RandomRelation(12, 20, 3);
  EXPECT_EQ(a.Compose(b).Compose(c), a.Compose(b.Compose(c)));
}

TEST(BinaryRelation, ComposeDistributesOverUnion) {
  BinaryRelation a = RandomRelation(10, 25, 4);
  BinaryRelation b = RandomRelation(10, 25, 5);
  BinaryRelation c = RandomRelation(10, 25, 6);
  BinaryRelation lhs = (a | b).Compose(c);
  BinaryRelation rhs = a.Compose(c) | b.Compose(c);
  EXPECT_EQ(lhs, rhs);
}

TEST(BinaryRelation, Restrictions) {
  DataGraph g = TinyGraph();  // values: u=0, v=1, w=0
  BinaryRelation full = BinaryRelation::Full(3);
  BinaryRelation eq = full.EqRestrict(g);
  BinaryRelation neq = full.NeqRestrict(g);
  NodeId u = g.FindNode("u").ValueOrDie();
  NodeId v = g.FindNode("v").ValueOrDie();
  NodeId w = g.FindNode("w").ValueOrDie();
  EXPECT_TRUE(eq.Test(u, w));
  EXPECT_TRUE(eq.Test(u, u));
  EXPECT_FALSE(eq.Test(u, v));
  EXPECT_TRUE(neq.Test(u, v));
  EXPECT_FALSE(neq.Test(u, w));
  // The restrictions partition the relation.
  EXPECT_EQ(eq.Count() + neq.Count(), full.Count());
  BinaryRelation merged = eq | neq;
  EXPECT_EQ(merged, full);
}

TEST(BinaryRelation, RestrictionDistributesOverUnion) {
  DataGraph g = RandomDataGraph({.num_nodes = 9,
                                 .num_labels = 1,
                                 .num_data_values = 3,
                                 .edge_percent = 20,
                                 .seed = 11});
  BinaryRelation a = RandomRelation(9, 30, 8);
  BinaryRelation b = RandomRelation(9, 30, 9);
  EXPECT_EQ((a | b).EqRestrict(g), a.EqRestrict(g) | b.EqRestrict(g));
  EXPECT_EQ((a | b).NeqRestrict(g), a.NeqRestrict(g) | b.NeqRestrict(g));
}

TEST(BinaryRelation, SubsetAndHash) {
  BinaryRelation a(5), b(5);
  a.Set(0, 1);
  b.Set(0, 1);
  b.Set(2, 3);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_NE(a.Hash(), b.Hash());
  b.Reset(2, 3);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_EQ(a, b);
}

TEST(BinaryRelation, TransitivePlus) {
  // 0 -> 1 -> 2 -> 3 chain.
  BinaryRelation r(4);
  r.Set(0, 1);
  r.Set(1, 2);
  r.Set(2, 3);
  BinaryRelation closure = TransitivePlus(r);
  EXPECT_TRUE(closure.Test(0, 3));
  EXPECT_TRUE(closure.Test(1, 3));
  EXPECT_FALSE(closure.Test(0, 0));
  EXPECT_EQ(closure.Count(), 6u);
}

TEST(BinaryRelation, TransitivePlusOnCycleIsFullAmongCycleNodes) {
  BinaryRelation r(3);
  r.Set(0, 1);
  r.Set(1, 2);
  r.Set(2, 0);
  BinaryRelation closure = TransitivePlus(r);
  EXPECT_EQ(closure, BinaryRelation::Full(3));
}

TEST(TupleRelation, InsertContains) {
  TupleRelation r(3);
  r.Insert({0, 1, 2});
  r.Insert({0, 1, 2});
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains({0, 1, 2}));
  EXPECT_FALSE(r.Contains({2, 1, 0}));
}

TEST(DataPath, ConcatRequiresSharedBoundary) {
  DataPath w1{{0, 1}, {0}};
  DataPath w2{{1, 2}, {0}};
  DataPath w3{{5, 2}, {0}};
  auto ok = w1.Concat(w2);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().values, (std::vector<ValueId>{0, 1, 2}));
  EXPECT_EQ(ok.value().letters, (std::vector<LabelId>{0, 0}));
  EXPECT_FALSE(w1.Concat(w3).ok());
}

TEST(DataPath, CanonicalFormAndAutomorphism) {
  DataPath w1{{5, 9, 5, 9}, {0, 0, 0}};
  DataPath w2{{2, 3, 2, 3}, {0, 0, 0}};
  DataPath w3{{2, 3, 2, 2}, {0, 0, 0}};
  EXPECT_TRUE(w1.IsAutomorphicTo(w2));
  EXPECT_FALSE(w1.IsAutomorphicTo(w3));
  EXPECT_EQ(w1.CanonicalForm().values, (std::vector<ValueId>{0, 1, 0, 1}));
}

TEST(DataPath, EnumerateConnectingPaths) {
  DataGraph g = TinyGraph();
  NodeId u = g.FindNode("u").ValueOrDie();
  NodeId w = g.FindNode("w").ValueOrDie();
  // u -a-> v (-a-> v)* -b-> w; lengths 2 and 3 within bound 3.
  auto paths = EnumerateConnectingPaths(g, u, w, 3);
  EXPECT_EQ(paths.size(), 2u);
  for (const auto& p : paths) {
    EXPECT_EQ(p.values.front(), g.DataValueOf(u));
    EXPECT_EQ(p.values.back(), g.DataValueOf(w));
  }
}

TEST(Generators, RandomGraphIsValidAndDeterministic) {
  RandomGraphOptions options{.num_nodes = 12,
                             .num_labels = 2,
                             .num_data_values = 4,
                             .edge_percent = 25,
                             .seed = 42};
  DataGraph g1 = RandomDataGraph(options);
  DataGraph g2 = RandomDataGraph(options);
  EXPECT_TRUE(g1.Validate().ok());
  EXPECT_EQ(g1.NumNodes(), 12u);
  EXPECT_EQ(g1.NumEdges(), g2.NumEdges());
  EXPECT_EQ(WriteGraphText(g1), WriteGraphText(g2));
}

TEST(Generators, LineAndCycle) {
  DataGraph line = LineGraph({0, 1, 0});
  EXPECT_EQ(line.NumNodes(), 3u);
  EXPECT_EQ(line.NumEdges(), 2u);
  DataGraph cycle = CycleGraph({0, 1, 0});
  EXPECT_EQ(cycle.NumEdges(), 3u);
}

TEST(Serialization, GraphRoundTrip) {
  DataGraph g = Figure1Graph();
  std::string text = WriteGraphText(g);
  auto parsed = ReadGraphText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(WriteGraphText(parsed.value()), text);
}

TEST(Serialization, RelationRoundTrip) {
  DataGraph g = Figure1Graph();
  BinaryRelation s1 = Figure1S1(g);
  std::string text = WriteRelationText(g, s1);
  auto parsed = ReadRelationText(g, text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value(), s1);
}

TEST(Serialization, RejectsMalformedInput) {
  EXPECT_FALSE(ReadGraphText("node x").ok());
  EXPECT_FALSE(ReadGraphText("edge a b c").ok());
  EXPECT_FALSE(ReadGraphText("node x 0\nnode x 1").ok());
  EXPECT_FALSE(ReadGraphText("bogus line here").ok());
  DataGraph g = Figure1Graph();
  EXPECT_FALSE(ReadRelationText(g, "pair v1 nosuch").ok());
  EXPECT_FALSE(ReadTupleRelationText(g, "tuple v1 v2\ntuple v1 v2 v3").ok());
}

TEST(Serialization, ParseErrorsNameTheLine) {
  // Readers must report where the problem is, not just that one exists.
  auto bad_graph = ReadGraphText("node u 0\nnode v 1\nbogus here\n");
  ASSERT_FALSE(bad_graph.ok());
  EXPECT_NE(bad_graph.status().message().find("line 3"), std::string::npos)
      << bad_graph.status();

  DataGraph g = Figure1Graph();
  auto bad_pair = ReadRelationText(g, "pair v1 v2\npair v1 nosuch\n");
  ASSERT_FALSE(bad_pair.ok());
  EXPECT_NE(bad_pair.status().message().find("line 2"), std::string::npos)
      << bad_pair.status();
  // The offending node is named, so typos are findable in big files.
  EXPECT_NE(bad_pair.status().message().find("'nosuch'"), std::string::npos)
      << bad_pair.status();

  auto bad_tuple = ReadTupleRelationText(g, "tuple v1 v2\ntuple v1\n");
  ASSERT_FALSE(bad_tuple.ok());
  EXPECT_NE(bad_tuple.status().message().find("line 2"), std::string::npos)
      << bad_tuple.status();
}

TEST(Serialization, DotOutputMentionsAllNodes) {
  DataGraph g = TinyGraph();
  std::string dot = WriteGraphDot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"u\\n0\""), std::string::npos);
}

TEST(Figure1, MatchesPaperFacts) {
  DataGraph g = Figure1Graph();
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.NumNodes(), 10u);
  EXPECT_EQ(g.NumEdges(), 12u);
  EXPECT_EQ(g.NumDataValues(), 4u);
  Figure1Nodes n = Figure1NodeIds(g);
  // The only data paths connecting v1 to v2 are 0a1 and 0a1a1 (Example 14).
  auto paths = EnumerateConnectingPaths(g, n.v1, n.v2, 4);
  ASSERT_EQ(paths.size(), 2u);
  // w5 = 0a1a1a0 connects v1 to v3 (Example 12).
  bool found_w5 = false;
  for (const auto& p : EnumerateConnectingPaths(g, n.v1, n.v3, 3)) {
    if (p.values == std::vector<ValueId>{0, 1, 1, 0}) {
      found_w5 = true;
    }
  }
  EXPECT_TRUE(found_w5);
}

}  // namespace
}  // namespace gqd
