// Compile-and-touch test for the umbrella header: `#include "gqd.h"` must
// pull in every public module, and one symbol from each must link.

#include "gqd.h"

#include <gtest/gtest.h>

namespace gqd {
namespace {

TEST(Umbrella, OneSymbolFromEveryModuleLinks) {
  // common
  Status status = Status::OK();
  EXPECT_TRUE(status.ok());
  DynamicBitset bits(8);
  bits.Set(3);
  StringInterner interner;
  interner.Intern("x");
  // graph
  DataGraph g = Figure1Graph();
  BinaryRelation s1 = Figure1S1(g);
  EXPECT_EQ(s1.Count(), 10u);
  // regex / rem / ree
  EXPECT_TRUE(ParseRegex("a a a").ok());
  EXPECT_TRUE(ParseRem("$r1. a[r1=]").ok());
  EXPECT_TRUE(ParseRee("(a)=").ok());
  // eval
  EXPECT_EQ(EvaluateRpq(g, ParseRegex("a a a").ValueOrDie()), s1);
  // homomorphism
  EXPECT_TRUE(Reachability(g).Test(0, 0));
  // definability
  auto check = CheckRpqDefinability(g, s1);
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check.value().verdict, DefinabilityVerdict::kDefinable);
  // reductions
  CnfFormula f;
  f.num_variables = 1;
  f.clauses = {{1, 1, 1}};
  EXPECT_TRUE(BuildSatReduction(f).ok());
  // synthesis
  EXPECT_TRUE(SynthesizeRpqQuery(g, s1).ok());
}

}  // namespace
}  // namespace gqd
