// Cross-validation of the paper's alternative EXPSPACE route (Section 3
// opening): RDPQ_mem-definability on G versus RPQ-definability on the
// automorphism-closure graph G_aut. The two checkers implement the same
// decision problem through entirely different machinery (assignment-graph
// macro tuples vs δ! value-annotated copies), so agreement is a strong
// correctness signal for both.

#include <gtest/gtest.h>

#include "definability/rem_via_rpq.h"
#include "graph/generators.h"

namespace gqd {
namespace {

TEST(AutomorphismClosure, ShapeIsDeltaFactorialCopies) {
  DataGraph g = LineGraph({0, 1, 0});  // δ = 2
  BinaryRelation s(3);
  s.Set(0, 2);
  auto closure = BuildAutomorphismClosure(g, s);
  ASSERT_TRUE(closure.ok()) << closure.status();
  EXPECT_EQ(closure.value().num_copies, 2u);  // 2! permutations
  EXPECT_EQ(closure.value().graph.NumNodes(), 6u);
  EXPECT_EQ(closure.value().graph.NumEdges(), 4u);
  // The lifted relation has a pair in every copy.
  EXPECT_EQ(closure.value().lifted_relation.Count(), 2u);
  EXPECT_TRUE(closure.value().lifted_relation.Test(0, 2));
  EXPECT_TRUE(closure.value().lifted_relation.Test(3, 5));
}

TEST(AutomorphismClosure, AnnotatedLettersDifferAcrossCopies) {
  DataGraph g = LineGraph({0, 1});  // one edge, δ = 2
  BinaryRelation s(2);
  s.Set(0, 1);
  auto closure = BuildAutomorphismClosure(g, s);
  ASSERT_TRUE(closure.ok());
  // Copy of identity permutation: letter "0|a|1"; swapped copy: "1|a|0".
  EXPECT_TRUE(closure.value().graph.labels().Find("0|a|1").has_value());
  EXPECT_TRUE(closure.value().graph.labels().Find("1|a|0").has_value());
}

TEST(AutomorphismClosure, RefusesLargeDelta) {
  DataGraph g = RandomDataGraph({.num_nodes = 8,
                                 .num_labels = 1,
                                 .num_data_values = 6,
                                 .edge_percent = 20,
                                 .seed = 1});
  BinaryRelation s(8);
  s.Set(0, 1);
  EXPECT_FALSE(BuildAutomorphismClosure(g, s).ok());
}

TEST(RemViaRpq, DefinableSingletonOnLine) {
  // Line 0a1a0a1: the full-length path's automorphism class connects only
  // (v0, v3), so {(v0, v3)} is REM-definable.
  DataGraph g = LineGraph({0, 1, 0, 1});
  BinaryRelation s(4);
  s.Set(0, 3);
  auto via_rpq = CheckRemDefinabilityViaRpq(g, s);
  ASSERT_TRUE(via_rpq.ok()) << via_rpq.status();
  EXPECT_EQ(via_rpq.value().verdict, DefinabilityVerdict::kDefinable);
  auto direct = CheckRemDefinability(g, s);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct.value().verdict, DefinabilityVerdict::kDefinable);
}

TEST(RemViaRpq, NonDefinableSingletonOnLine) {
  // {(v0, v2)}: its only path 0a1a0 is automorphic to 1a0a1 = v1→v3, so no
  // REM can separate them.
  DataGraph g = LineGraph({0, 1, 0, 1});
  BinaryRelation s(4);
  s.Set(0, 2);
  auto via_rpq = CheckRemDefinabilityViaRpq(g, s);
  ASSERT_TRUE(via_rpq.ok()) << via_rpq.status();
  EXPECT_EQ(via_rpq.value().verdict, DefinabilityVerdict::kNotDefinable);
  auto direct = CheckRemDefinability(g, s);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct.value().verdict, DefinabilityVerdict::kNotDefinable);
}

TEST(RemViaRpq, BothPathsTogetherAreDefinable) {
  // {(v0, v2), (v1, v3)} is the full automorphism class — definable.
  DataGraph g = LineGraph({0, 1, 0, 1});
  BinaryRelation s(4);
  s.Set(0, 2);
  s.Set(1, 3);
  auto via_rpq = CheckRemDefinabilityViaRpq(g, s);
  ASSERT_TRUE(via_rpq.ok());
  EXPECT_EQ(via_rpq.value().verdict, DefinabilityVerdict::kDefinable);
}

TEST(RemViaRpq, EmptyRelationShortCircuits) {
  DataGraph g = LineGraph({0, 1});
  auto result = CheckRemDefinabilityViaRpq(g, BinaryRelation(2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().verdict, DefinabilityVerdict::kDefinable);
  EXPECT_EQ(result.value().num_copies, 0u);  // never built
}

class RemViaRpqAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RemViaRpqAgreement, MatchesDirectChecker) {
  DataGraph g = RandomDataGraph({.num_nodes = 4,
                                 .num_labels = 2,
                                 .num_data_values = 2,
                                 .edge_percent = 25,
                                 .seed = GetParam()});
  KRemDefinabilityOptions options;
  options.max_tuples = 30'000;
  for (std::uint32_t percent : {10u, 25u}) {
    BinaryRelation s =
        RandomRelation(4, percent, GetParam() * 7919 + percent);
    auto direct = CheckRemDefinability(g, s, options);
    auto via_rpq = CheckRemDefinabilityViaRpq(g, s, options);
    ASSERT_TRUE(direct.ok() && via_rpq.ok());
    if (direct.value().verdict != DefinabilityVerdict::kBudgetExhausted &&
        via_rpq.value().verdict != DefinabilityVerdict::kBudgetExhausted) {
      EXPECT_EQ(direct.value().verdict, via_rpq.value().verdict)
          << "seed " << GetParam() << " percent " << percent;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, RemViaRpqAgreement,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace gqd
