// Parser robustness: random garbage and adversarial near-miss inputs must
// produce InvalidArgument statuses — never crashes or accepts — and every
// valid expression the generators produce must round-trip.

#include <gtest/gtest.h>

#include <string>

#include "graph/generators.h"
#include "ree/parser.h"
#include "regex/parser.h"
#include "rem/parser.h"

namespace gqd {
namespace {

std::string RandomGarbage(SplitMix64* rng, std::size_t length) {
  static const char kChars[] =
      "ab|+*()[]$.,=!~ \trT123'&#%{}";
  std::string out;
  for (std::size_t i = 0; i < length; i++) {
    out += kChars[rng->NextBelow(sizeof(kChars) - 1)];
  }
  return out;
}

TEST(ParserRobustness, RandomGarbageNeverCrashes) {
  SplitMix64 rng(2024);
  int regex_accepted = 0, rem_accepted = 0, ree_accepted = 0;
  for (int trial = 0; trial < 3000; trial++) {
    std::string input = RandomGarbage(&rng, 1 + rng.NextBelow(24));
    auto regex = ParseRegex(input);
    auto rem = ParseRem(input);
    auto ree = ParseRee(input);
    // A parse either succeeds (and the result prints and re-parses) or
    // fails with InvalidArgument.
    if (regex.ok()) {
      regex_accepted++;
      EXPECT_TRUE(ParseRegex(RegexToString(regex.value())).ok()) << input;
    } else {
      EXPECT_EQ(regex.status().code(), StatusCode::kInvalidArgument);
    }
    if (rem.ok()) {
      rem_accepted++;
      EXPECT_TRUE(ParseRem(RemToString(rem.value())).ok()) << input;
    } else {
      EXPECT_EQ(rem.status().code(), StatusCode::kInvalidArgument);
    }
    if (ree.ok()) {
      ree_accepted++;
      EXPECT_TRUE(ParseRee(ReeToString(ree.value())).ok()) << input;
    } else {
      EXPECT_EQ(ree.status().code(), StatusCode::kInvalidArgument);
    }
  }
  // Sanity: the garbage alphabet does produce some valid expressions.
  EXPECT_GT(regex_accepted, 0);
  EXPECT_GT(rem_accepted, 0);
  EXPECT_GT(ree_accepted, 0);
}

/// Random well-formed expression generators (structural fuzzing).
RegexPtr RandomRegex(SplitMix64* rng, int depth) {
  if (depth == 0 || rng->NextBool(1, 3)) {
    switch (rng->NextBelow(3)) {
      case 0:
        return re::Epsilon();
      case 1:
        return re::Letter("a");
      default:
        return re::Letter("b");
    }
  }
  switch (rng->NextBelow(4)) {
    case 0:
      return re::Union(
          {RandomRegex(rng, depth - 1), RandomRegex(rng, depth - 1)});
    case 1:
      return re::Concat(
          {RandomRegex(rng, depth - 1), RandomRegex(rng, depth - 1)});
    case 2:
      return re::Star(RandomRegex(rng, depth - 1));
    default:
      return re::Plus(RandomRegex(rng, depth - 1));
  }
}

ReePtr RandomRee(SplitMix64* rng, int depth) {
  if (depth == 0 || rng->NextBool(1, 3)) {
    switch (rng->NextBelow(3)) {
      case 0:
        return ree::Epsilon();
      case 1:
        return ree::Letter("a");
      default:
        return ree::Letter("b");
    }
  }
  switch (rng->NextBelow(5)) {
    case 0:
      return ree::Union(
          {RandomRee(rng, depth - 1), RandomRee(rng, depth - 1)});
    case 1:
      return ree::Concat(
          {RandomRee(rng, depth - 1), RandomRee(rng, depth - 1)});
    case 2:
      return ree::Plus(RandomRee(rng, depth - 1));
    case 3:
      return ree::Eq(RandomRee(rng, depth - 1));
    default:
      return ree::Neq(RandomRee(rng, depth - 1));
  }
}

RemPtr RandomRem(SplitMix64* rng, int depth) {
  if (depth == 0 || rng->NextBool(1, 3)) {
    switch (rng->NextBelow(3)) {
      case 0:
        return rem::Epsilon();
      case 1:
        return rem::Letter("a");
      default:
        return rem::Letter("b");
    }
  }
  switch (rng->NextBelow(6)) {
    case 0:
      return rem::Union(
          {RandomRem(rng, depth - 1), RandomRem(rng, depth - 1)});
    case 1:
      return rem::Concat(
          {RandomRem(rng, depth - 1), RandomRem(rng, depth - 1)});
    case 2:
      return rem::Plus(RandomRem(rng, depth - 1));
    case 3:
      return rem::Bind({rng->NextBelow(2)}, RandomRem(rng, depth - 1));
    case 4: {
      ConditionPtr c = rng->NextBool(1, 2)
                           ? cond::RegisterEq(rng->NextBelow(2))
                           : cond::RegisterNeq(rng->NextBelow(2));
      if (rng->NextBool(1, 3)) {
        c = cond::Not(std::move(c));
      }
      return rem::Test(RandomRem(rng, depth - 1), std::move(c));
    }
    default:
      return rem::Concat(
          {RandomRem(rng, depth - 1), RandomRem(rng, depth - 1)});
  }
}

TEST(ParserRobustness, GeneratedRegexesRoundTripExactly) {
  SplitMix64 rng(7);
  for (int trial = 0; trial < 500; trial++) {
    RegexPtr e = RandomRegex(&rng, 4);
    std::string printed = RegexToString(e);
    auto reparsed = ParseRegex(printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    // Printing is a normal form: print(parse(print(e))) == print(e).
    EXPECT_EQ(RegexToString(reparsed.value()), printed);
  }
}

TEST(ParserRobustness, GeneratedReesRoundTripExactly) {
  SplitMix64 rng(11);
  for (int trial = 0; trial < 500; trial++) {
    ReePtr e = RandomRee(&rng, 4);
    std::string printed = ReeToString(e);
    auto reparsed = ParseRee(printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_EQ(ReeToString(reparsed.value()), printed);
  }
}

TEST(ParserRobustness, GeneratedRemsRoundTripExactly) {
  SplitMix64 rng(13);
  for (int trial = 0; trial < 500; trial++) {
    RemPtr e = RandomRem(&rng, 4);
    std::string printed = RemToString(e);
    auto reparsed = ParseRem(printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_EQ(RemToString(reparsed.value()), printed);
  }
}

TEST(ParserRobustness, DeepNestingParses) {
  std::string deep;
  for (int i = 0; i < 200; i++) {
    deep += "(";
  }
  deep += "a";
  for (int i = 0; i < 200; i++) {
    deep += ")";
  }
  EXPECT_TRUE(ParseRegex(deep).ok());
  EXPECT_TRUE(ParseRee(deep).ok());
  EXPECT_TRUE(ParseRem(deep).ok());
}

}  // namespace
}  // namespace gqd
