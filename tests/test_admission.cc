// AdmissionController under concurrent shed: the concurrency cap holds
// under a storm, releases drain the wait queue one admission at a time,
// every shed carries the configured retry_after_ms hint, and the cheap
// command bypass (ping/stats/info/metrics) keeps working while the queue
// is full.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "graph/examples.h"
#include "graph/generators.h"
#include "graph/serialization.h"
#include "runtime/admission.h"
#include "runtime/json.h"
#include "runtime/service.h"

namespace gqd {
namespace {

TEST(AdmissionConcurrencyTest, StormNeverExceedsTheConcurrencyCap) {
  constexpr std::size_t kMaxConcurrent = 4;
  constexpr int kThreads = 32;
  AdmissionOptions options;
  options.max_concurrent = kMaxConcurrent;
  options.max_queue = 8;
  AdmissionController controller(options);

  std::atomic<int> active{0};
  std::atomic<int> peak_active{0};
  std::atomic<int> admitted{0};
  std::atomic<int> shed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      auto ticket = controller.Admit();
      if (!ticket.ok()) {
        EXPECT_EQ(ticket.status().code(), StatusCode::kUnavailable);
        shed.fetch_add(1);
        return;
      }
      int now = active.fetch_add(1) + 1;
      int seen = peak_active.load();
      while (now > seen && !peak_active.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      active.fetch_sub(1);
      admitted.fetch_add(1);
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  EXPECT_LE(peak_active.load(), static_cast<int>(kMaxConcurrent));
  EXPECT_GE(peak_active.load(), 1);
  EXPECT_EQ(admitted.load() + shed.load(), kThreads);
  AdmissionStats stats = controller.GetStats();
  EXPECT_EQ(stats.admitted, static_cast<std::uint64_t>(admitted.load()));
  EXPECT_EQ(stats.shed, static_cast<std::uint64_t>(shed.load()));
  EXPECT_EQ(stats.active, 0u);
  EXPECT_EQ(stats.waiting, 0u);
}

TEST(AdmissionConcurrencyTest, ReleaseAdmitsExactlyOneWaiter) {
  constexpr int kWaiters = 4;
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queue = kWaiters;
  AdmissionController controller(options);

  auto holder = controller.Admit();
  ASSERT_TRUE(holder.ok());

  std::atomic<int> active{0};
  std::atomic<bool> cap_violated{false};
  std::atomic<int> drained{0};
  std::vector<std::thread> waiters;
  for (int t = 0; t < kWaiters; t++) {
    waiters.emplace_back([&] {
      auto ticket = controller.Admit();
      ASSERT_TRUE(ticket.ok()) << ticket.status();
      if (active.fetch_add(1) + 1 > 1) {
        cap_violated.store(true);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      active.fetch_sub(1);
      drained.fetch_add(1);
    });
  }

  // All four are queued behind the held slot; a fifth newcomer is shed.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (controller.GetStats().waiting <
             static_cast<std::size_t>(kWaiters) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(controller.GetStats().waiting,
            static_cast<std::size_t>(kWaiters));
  EXPECT_EQ(controller.Admit().status().code(), StatusCode::kUnavailable);

  // Releasing the slot drains the queue one admission per release: with a
  // single slot, the waiters run strictly one at a time.
  holder.value().Release();
  for (std::thread& waiter : waiters) {
    waiter.join();
  }
  EXPECT_FALSE(cap_violated.load());
  EXPECT_EQ(drained.load(), kWaiters);
  AdmissionStats stats = controller.GetStats();
  EXPECT_EQ(stats.queued, static_cast<std::uint64_t>(kWaiters));
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.waiting, 0u);
}

TEST(AdmissionConcurrencyTest, EveryShedCarriesTheConfiguredHint) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queue = 0;
  options.retry_after_ms = 35;
  AdmissionController controller(options);

  auto holder = controller.Admit();
  ASSERT_TRUE(holder.ok());
  std::uint64_t last_shed = 0;
  for (int i = 0; i < 16; i++) {
    auto shed = controller.Admit();
    ASSERT_FALSE(shed.ok());
    EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
    // The hint is stable across sheds — clients backing off per the hint
    // never see it shrink mid-overload.
    EXPECT_EQ(controller.retry_after_ms(), 35);
    std::uint64_t count = controller.GetStats().shed;
    EXPECT_GT(count, last_shed);  // shed counter is strictly monotone
    last_shed = count;
  }
}

// --- Bypass under saturation (service level) ----------------------------

/// A service with one admission slot plus a hard krem instance to hold it,
/// driven through HandleLine directly (no sockets needed).
class AdmissionBypassTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServiceOptions options;
    options.admission.max_concurrent = 1;
    options.admission.max_queue = 2;
    options.admission.retry_after_ms = 25;
    service_ = std::make_unique<QueryService>(options);

    service_->registry().Register("fig1", Figure1Graph());
    RandomGraphOptions graph_options;
    graph_options.num_nodes = 12;
    graph_options.num_labels = 2;
    graph_options.num_data_values = 6;
    graph_options.edge_percent = 25;
    graph_options.seed = 7;
    DataGraph g = RandomDataGraph(graph_options);
    relation_text_ =
        WriteRelationText(g, RandomRelation(g.NumNodes(), 30, 11));
    service_->registry().Register("hard", std::move(g));
  }

  std::string Handle(const std::string& line) {
    bool shutdown = false;
    return service_->HandleLine(line, &shutdown);
  }

  std::string SlowCheckRequest(double deadline_ms) {
    JsonValue::Object request;
    request.emplace_back("cmd", "check");
    request.emplace_back("graph", "hard");
    request.emplace_back("checker", "krem");
    request.emplace_back("k", 3.0);
    request.emplace_back("relation", relation_text_);
    request.emplace_back("deadline_ms", deadline_ms);
    return JsonValue(std::move(request)).Serialize();
  }

  bool WaitForSaturation(std::size_t active, std::size_t waiting) {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      AdmissionStats stats = service_->admission_stats();
      if (stats.active >= active && stats.waiting >= waiting) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  }

  std::unique_ptr<QueryService> service_;
  std::string relation_text_;
};

TEST_F(AdmissionBypassTest, CheapCommandsBypassAFullQueue) {
  // One request holds the slot and two more fill the entire wait queue.
  std::vector<std::thread> heavy;
  for (int i = 0; i < 3; i++) {
    heavy.emplace_back([this] { (void)Handle(SlowCheckRequest(500.0)); });
  }
  ASSERT_TRUE(WaitForSaturation(1, 2));

  // Heavy work beyond the queue is shed with the hint...
  std::string shed = Handle(
      R"({"cmd":"eval","graph":"fig1","language":"rpq","query":"a"})");
  EXPECT_NE(shed.find("\"ok\":false"), std::string::npos) << shed;
  EXPECT_NE(shed.find("\"retry_after_ms\":25"), std::string::npos) << shed;

  // ...while health checks and introspection cut straight through.
  std::string pong = Handle(R"({"cmd":"ping"})");
  EXPECT_NE(pong.find("\"pong\":true"), std::string::npos) << pong;
  std::string stats = Handle(R"({"cmd":"stats"})");
  EXPECT_NE(stats.find("\"ok\":true"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"admission\""), std::string::npos) << stats;
  std::string info = Handle(R"({"cmd":"info","graph":"fig1"})");
  EXPECT_NE(info.find("\"ok\":true"), std::string::npos) << info;
  std::string metrics = Handle(R"({"cmd":"metrics"})");
  EXPECT_NE(metrics.find("\"ok\":true"), std::string::npos) << metrics;

  // The saturation reading taken mid-storm was consistent: one active,
  // both queue seats taken, and at least one shed recorded.
  AdmissionStats mid = service_->admission_stats();
  EXPECT_GE(mid.shed, 1u);

  for (std::thread& thread : heavy) {
    thread.join();
  }
  AdmissionStats final_stats = service_->admission_stats();
  EXPECT_EQ(final_stats.active, 0u);
  EXPECT_EQ(final_stats.waiting, 0u);
  EXPECT_EQ(final_stats.admitted, 3u);
  EXPECT_EQ(final_stats.queued, 2u);
}

}  // namespace
}  // namespace gqd
