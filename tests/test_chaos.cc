// Chaos suite: fires every registered failpoint and checks that the system
// degrades the way docs/robustness.md promises — a clean structured Status
// (or a documented soft degradation), never a crash — and that once the
// fault clears, a retry produces results bit-identical to a run that never
// saw the fault.
//
// The suite is registry-driven: SiteMap() below must name every site the
// binary registers. A newly planted failpoint without a chaos scenario
// fails RegistryHasAScenarioForEverySite instead of going silently
// untested.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.h"
#include "common/budget.h"
#include "common/cancel.h"
#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "definability/assignment_graph.h"
#include "definability/krem_definability.h"
#include "definability/ree_definability.h"
#include "definability/ucrdpq_definability.h"
#include "graph/examples.h"
#include "graph/generators.h"
#include "graph/relation.h"
#include "graph/serialization.h"
#include "homomorphism/csp.h"
#include "runtime/client.h"
#include "runtime/json.h"
#include "runtime/result_cache.h"
#include "runtime/server.h"
#include "runtime/service.h"
#include "storage/container.h"
#include "storage/graph_store.h"
#include "storage/relation_store.h"

namespace gqd {
namespace {

/// Every failpoint the suite knows how to exercise. Compared against the
/// live registry so unplanted scenarios and unscenarioed sites both fail.
const std::vector<std::string>& KnownSites() {
  static const std::vector<std::string> sites = {
      "assignment_graph.build", "client.connect",   "client.read",
      "client.write",           "cluster.connect",  "cluster.probe",
      "cluster.read",           "cluster.write",    "csp.search",
      "krem.arena.grow",        "ree.closure",      "relation.open",
      "relation.write",         "result_cache.put", "server.accept",
      "server.read",            "server.write",     "storage.mmap",
      "storage.open",           "storage.truncate", "storage.write",
      "thread_pool.dispatch",   "ucrdpq.search",
  };
  return sites;
}

/// Arms `spec` via the registry, failing the test on a parse error.
void Arm(const std::string& spec) {
  Status status = FailpointRegistry::Instance().Configure(spec);
  ASSERT_TRUE(status.ok()) << spec << ": " << status;
}

std::uint64_t FiredCount(const std::string& site) {
  FailpointSite* s = FailpointRegistry::Instance().Find(site);
  return s == nullptr ? 0 : s->fired();
}

/// Disarms everything after each test so an armed site cannot leak into
/// the rest of the suite. Fault-injection scenarios require the sites to
/// exist, so the whole fixture skips when they are compiled out
/// (-DGQD_ENABLE_FAILPOINTS=OFF); the ResourceBudgetTest suite below has
/// no failpoint dependency and runs in every configuration.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if defined(GQD_DISABLE_FAILPOINTS)
    GTEST_SKIP() << "failpoints compiled out (GQD_ENABLE_FAILPOINTS=OFF)";
#endif
  }
  void TearDown() override { FailpointRegistry::Instance().Reset(); }
};

TEST_F(ChaosTest, RegistryHasAScenarioForEverySite) {
  std::vector<std::string> registered =
      FailpointRegistry::Instance().SiteNames();
  std::vector<std::string> known = KnownSites();
  std::sort(known.begin(), known.end());
  EXPECT_EQ(registered, known)
      << "a failpoint site was added or removed without updating the chaos "
         "suite (tests/test_chaos.cc) and docs/robustness.md";
}

TEST_F(ChaosTest, SpecParsingAndArming) {
  auto& registry = FailpointRegistry::Instance();
  EXPECT_FALSE(registry.Configure("no-colon-anywhere").ok());
  EXPECT_FALSE(registry.Configure("csp.search:bogus-mode").ok());
  EXPECT_TRUE(registry.Configure("").ok());
  // Unknown names are remembered, not rejected: the site may simply live in
  // a translation unit that has not initialized yet.
  EXPECT_TRUE(registry.Configure("not.a.real.site:fail").ok());

  FailpointSite* site = registry.Find("csp.search");
  ASSERT_NE(site, nullptr);
  Arm("csp.search:fail-nth:3");
  std::uint64_t fired_before = site->fired();
  EXPECT_FALSE(site->ShouldFail());
  EXPECT_FALSE(site->ShouldFail());
  EXPECT_TRUE(site->ShouldFail());  // third hit
  EXPECT_FALSE(site->ShouldFail());  // once only
  EXPECT_EQ(site->fired(), fired_before + 1);

  // fail-prob is deterministic for a fixed seed and hit sequence.
  auto run_prob = [&]() {
    Arm("csp.search:fail-prob:50:7");
    std::vector<bool> fires;
    for (int i = 0; i < 32; i++) {
      fires.push_back(site->ShouldFail());
    }
    return fires;
  };
  EXPECT_EQ(run_prob(), run_prob());

  registry.Reset();
  EXPECT_FALSE(site->ShouldFail());
}

// --- Checker failpoints: fail cleanly, then recover bit-identically -----

/// A Figure-1 instance big enough that the macro-tuple store grows (>48
/// interned tuples) yet terminates in milliseconds.
struct KRemInstance {
  DataGraph graph = Figure1Graph();
  BinaryRelation relation = Figure1S2(graph);
};

TEST_F(ChaosTest, KRemArenaGrowFailsCleanlyAndRecovers) {
  KRemInstance instance;
  auto baseline = CheckKRemDefinability(instance.graph, instance.relation, 2);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  std::uint64_t fired_before = FiredCount("krem.arena.grow");
  Arm("krem.arena.grow:fail-once");
  auto faulted = CheckKRemDefinability(instance.graph, instance.relation, 2);
  EXPECT_GT(FiredCount("krem.arena.grow"), fired_before)
      << "instance too small to grow the tuple store";
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(faulted.status().message().find("krem.arena.grow"),
            std::string::npos)
      << faulted.status();

  FailpointRegistry::Instance().Reset();
  auto retried = CheckKRemDefinability(instance.graph, instance.relation, 2);
  ASSERT_TRUE(retried.ok()) << retried.status();
  EXPECT_EQ(retried.value().verdict, baseline.value().verdict);
  EXPECT_EQ(retried.value().tuples_explored,
            baseline.value().tuples_explored);
  ASSERT_EQ(retried.value().witnesses.size(),
            baseline.value().witnesses.size());
  for (std::size_t i = 0; i < retried.value().witnesses.size(); i++) {
    EXPECT_EQ(retried.value().witnesses[i].from,
              baseline.value().witnesses[i].from);
    EXPECT_EQ(retried.value().witnesses[i].to,
              baseline.value().witnesses[i].to);
    EXPECT_EQ(retried.value().witnesses[i].blocks.size(),
              baseline.value().witnesses[i].blocks.size());
  }
}

TEST_F(ChaosTest, AssignmentGraphBuildFailsCleanlyAndRecovers) {
  KRemInstance instance;
  auto baseline = CheckKRemDefinability(instance.graph, instance.relation, 1);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  Arm("assignment_graph.build:fail-once");
  auto faulted = CheckKRemDefinability(instance.graph, instance.relation, 1);
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(faulted.status().message().find("assignment_graph.build"),
            std::string::npos)
      << faulted.status();

  FailpointRegistry::Instance().Reset();
  auto retried = CheckKRemDefinability(instance.graph, instance.relation, 1);
  ASSERT_TRUE(retried.ok()) << retried.status();
  EXPECT_EQ(retried.value().verdict, baseline.value().verdict);
  EXPECT_EQ(retried.value().tuples_explored,
            baseline.value().tuples_explored);
}

TEST_F(ChaosTest, ReeClosureFailsCleanlyAndRecovers) {
  DataGraph g = Figure1Graph();
  BinaryRelation s = Figure1S2(g);
  auto baseline = CheckReeDefinability(g, s);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  Arm("ree.closure:fail-once");
  auto faulted = CheckReeDefinability(g, s);
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(faulted.status().message().find("ree.closure"),
            std::string::npos)
      << faulted.status();

  FailpointRegistry::Instance().Reset();
  auto retried = CheckReeDefinability(g, s);
  ASSERT_TRUE(retried.ok()) << retried.status();
  EXPECT_EQ(retried.value().verdict, baseline.value().verdict);
  EXPECT_EQ(retried.value().levels_used, baseline.value().levels_used);
  EXPECT_EQ(retried.value().monoid_size, baseline.value().monoid_size);
}

TEST_F(ChaosTest, CspSearchFailsCleanlyAndRecovers) {
  Csp csp = Csp::Full(3, 3);
  DynamicBitset neq(9);
  for (std::uint32_t a = 0; a < 3; a++) {
    for (std::uint32_t b = 0; b < 3; b++) {
      if (a != b) {
        neq.Set(a * 3 + b);
      }
    }
  }
  csp.AddConstraint(0, 1, neq);
  csp.AddConstraint(1, 2, neq);
  csp.AddConstraint(0, 2, neq);
  auto baseline = SolveCsp(csp);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_TRUE(baseline.value().has_value());

  Arm("csp.search:fail-once");
  auto faulted = SolveCsp(csp);
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(faulted.status().message().find("csp.search"),
            std::string::npos)
      << faulted.status();

  FailpointRegistry::Instance().Reset();
  auto retried = SolveCsp(csp);
  ASSERT_TRUE(retried.ok()) << retried.status();
  ASSERT_TRUE(retried.value().has_value());
  EXPECT_EQ(*retried.value(), *baseline.value());
}

TEST_F(ChaosTest, UcrdpqSearchFailsCleanlyAndRecovers) {
  DataGraph g = Figure1Graph();
  BinaryRelation s = Figure1S2(g);
  auto baseline = CheckUcrdpqDefinability(g, s);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  Arm("ucrdpq.search:fail-once");
  auto faulted = CheckUcrdpqDefinability(g, s);
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(faulted.status().message().find("ucrdpq.search"),
            std::string::npos)
      << faulted.status();

  FailpointRegistry::Instance().Reset();
  auto retried = CheckUcrdpqDefinability(g, s);
  ASSERT_TRUE(retried.ok()) << retried.status();
  EXPECT_EQ(retried.value().verdict, baseline.value().verdict);
  EXPECT_EQ(retried.value().seeds_tried, baseline.value().seeds_tried);
}

// --- Soft-degradation failpoints: no error, documented fallback ---------

TEST_F(ChaosTest, ThreadPoolDispatchFallsBackToInlineExecution) {
  ThreadPool pool(2);
  Arm("thread_pool.dispatch:fail");
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; i++) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  // Inline fallback runs on the submitting thread, so all four tasks have
  // completed by the time Submit returned — no waiting needed.
  EXPECT_EQ(ran.load(), 4);
  EXPECT_GE(pool.GetStats().tasks_inline, 4u);

  FailpointRegistry::Instance().Reset();
}

TEST_F(ChaosTest, ThreadPoolDispatchFaultKeepsKRemDeterministic) {
  // The batched BFS must return bit-identical results even when every
  // dispatch fails over to inline execution.
  KRemInstance instance;
  KRemDefinabilityOptions sequential;
  auto baseline =
      CheckKRemDefinability(instance.graph, instance.relation, 2, sequential);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  Arm("thread_pool.dispatch:fail");
  KRemDefinabilityOptions threaded;
  threaded.num_threads = 2;
  auto degraded =
      CheckKRemDefinability(instance.graph, instance.relation, 2, threaded);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_EQ(degraded.value().verdict, baseline.value().verdict);
  EXPECT_EQ(degraded.value().tuples_explored,
            baseline.value().tuples_explored);
}

TEST_F(ChaosTest, ResultCachePutDropsInsertQuietly) {
  ResultCache cache(64);
  BinaryRelation r(4);
  r.Set(1, 2);
  std::string key = ResultCache::MakeKey("fp", "rpq", "a.a");

  Arm("result_cache.put:fail-once");
  cache.Put(key, std::make_shared<const BinaryRelation>(r));
  EXPECT_EQ(cache.Get(key), nullptr);
  EXPECT_GE(cache.GetStats().drops, 1u);

  FailpointRegistry::Instance().Reset();
  cache.Put(key, std::make_shared<const BinaryRelation>(r));
  auto hit = cache.Get(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->Test(1, 2));
}

// --- Storage failpoints: I/O faults fail cleanly, retry recovers --------

/// A container on disk plus its expected text, for the storage scenarios.
struct StorageInstance {
  StorageInstance() {
    RandomGraphOptions options;
    options.num_nodes = 16;
    options.edge_percent = 25;
    graph = RandomDataGraph(options);
    text = WriteGraphText(graph);
    // Unique per test case: ctest runs cases as parallel processes, and a
    // shared scratch file can SIGBUS (truncate under another's mapping).
    path = ::testing::TempDir() + "gqd_chaos_storage_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".gqdg";
  }
  DataGraph graph;
  std::string text;
  std::string path;
};

TEST_F(ChaosTest, StorageWriteFaultFailsCleanlyAndRecovers) {
  StorageInstance instance;
  Arm("storage.write:fail-once");
  Status faulted = WriteGraphContainer(instance.graph, instance.path);
  ASSERT_FALSE(faulted.ok());
  EXPECT_NE(faulted.message().find("storage.write"), std::string::npos)
      << faulted;

  FailpointRegistry::Instance().Reset();
  ASSERT_TRUE(WriteGraphContainer(instance.graph, instance.path).ok());
  auto mapped = GraphStore::OpenContainer(instance.path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_EQ(WriteGraphText(*mapped.value().graph), instance.text);
}

TEST_F(ChaosTest, StorageOpenAndMmapFaultsFailCleanlyAndRecover) {
  StorageInstance instance;
  ASSERT_TRUE(WriteGraphContainer(instance.graph, instance.path).ok());

  for (const char* site : {"storage.open", "storage.mmap"}) {
    Arm(std::string(site) + ":fail-once");
    auto faulted = GraphStore::OpenContainer(instance.path);
    ASSERT_FALSE(faulted.ok()) << site;
    EXPECT_NE(faulted.status().message().find(site), std::string::npos)
        << faulted.status();
    FailpointRegistry::Instance().Reset();
    auto retried = GraphStore::OpenContainer(instance.path);
    ASSERT_TRUE(retried.ok()) << site << ": " << retried.status();
    EXPECT_EQ(WriteGraphText(*retried.value().graph), instance.text);
  }
}

TEST_F(ChaosTest, StorageTruncateTornWriteIsDetectedOnOpen) {
  StorageInstance instance;
  // The torn-write failpoint lets the write complete, then cuts the file in
  // half — simulating a crash mid-flush. The open must detect the damage
  // with a clean Status, and a rewrite must recover bit-identically.
  Arm("storage.truncate:fail-once");
  Status torn = WriteGraphContainer(instance.graph, instance.path);
  ASSERT_FALSE(torn.ok());
  Status opened = GraphStore::OpenContainer(instance.path).status();
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.code(), StatusCode::kIOError) << opened;

  FailpointRegistry::Instance().Reset();
  ASSERT_TRUE(WriteGraphContainer(instance.graph, instance.path).ok());
  OpenOptions deep;
  deep.validate = true;
  auto recovered = GraphStore::OpenContainer(instance.path, deep);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(WriteGraphText(*recovered.value().graph), instance.text);
}

TEST_F(ChaosTest, RelationWriteAndOpenFaultsFailCleanlyAndRecover) {
  // The .gqdr store has its own write/open failpoints mirroring the graph
  // container's: a fault is a clean Status naming the site, and a retry
  // after disarming recovers the identical canonical pair list.
  std::string path = ::testing::TempDir() + "gqd_chaos_relation.gqdr";
  std::vector<std::pair<NodeId, NodeId>> pairs = {{3, 1}, {0, 2}, {0, 2}};

  Arm("relation.write:fail-once");
  Status faulted = WriteRelationContainer(8, pairs, 0, path);
  ASSERT_FALSE(faulted.ok());
  EXPECT_NE(faulted.message().find("relation.write"), std::string::npos)
      << faulted;
  FailpointRegistry::Instance().Reset();
  ASSERT_TRUE(WriteRelationContainer(8, pairs, 0, path).ok());

  Arm("relation.open:fail-once");
  auto open_faulted = OpenRelationContainer(path);
  ASSERT_FALSE(open_faulted.ok());
  EXPECT_NE(open_faulted.status().message().find("relation.open"),
            std::string::npos)
      << open_faulted.status();
  FailpointRegistry::Instance().Reset();
  auto retried = OpenRelationContainer(path);
  ASSERT_TRUE(retried.ok()) << retried.status();
  std::vector<std::pair<NodeId, NodeId>> canonical = {{0, 2}, {3, 1}};
  EXPECT_EQ(retried.value().pairs, canonical);
  std::remove(path.c_str());
}

// --- Socket failpoints: connection-local faults, retry recovers ---------

/// Server + service on an ephemeral port for the socket-fault scenarios.
class SocketChaosTest : public ChaosTest {
 protected:
  void SetUp() override {
    ChaosTest::SetUp();
    if (IsSkipped()) {
      return;
    }
    server_ = std::make_unique<Server>(&service_);
    ASSERT_TRUE(server_->Start(0).ok());
  }

  void TearDown() override {
    FailpointRegistry::Instance().Reset();
    if (server_ != nullptr) {
      server_->Stop();
      server_->Wait();
    }
  }

  QueryService service_;
  std::unique_ptr<Server> server_;
};

TEST_F(SocketChaosTest, ServerAcceptFaultDropsOneConnectionOnly) {
  Arm("server.accept:fail-once");
  LineClient dropped;
  // The TCP handshake is completed by the kernel, so Connect succeeds; the
  // injected post-accept fault then closes the connection server-side.
  ASSERT_TRUE(dropped.Connect(server_->port()).ok());
  EXPECT_FALSE(dropped.Call(R"({"cmd":"ping"})").ok());

  LineClient fine;
  ASSERT_TRUE(fine.Connect(server_->port()).ok());
  auto pong = fine.Call(R"({"cmd":"ping"})");
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_NE(pong.value().find("\"pong\":true"), std::string::npos);
}

TEST_F(SocketChaosTest, ServerReadFaultDropsOneConnectionOnly) {
  Arm("server.read:fail-once");
  LineClient dropped;
  ASSERT_TRUE(dropped.Connect(server_->port()).ok());
  EXPECT_FALSE(dropped.Call(R"({"cmd":"ping"})").ok());

  LineClient fine;
  ASSERT_TRUE(fine.Connect(server_->port()).ok());
  EXPECT_TRUE(fine.Call(R"({"cmd":"ping"})").ok());
}

TEST_F(SocketChaosTest, ServerWriteFaultRecoversViaClientRetry) {
  Arm("server.write:fail-once");
  LineClient client;
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  RetryPolicy policy;
  policy.initial_backoff = std::chrono::milliseconds(1);
  policy.jitter_seed = 1;
  auto response = client.CallWithRetry(R"({"cmd":"ping"})", policy);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_NE(response.value().find("\"pong\":true"), std::string::npos);
  EXPECT_GE(client.retries(), 1u);
}

TEST_F(SocketChaosTest, ClientConnectFaultFailsThenReconnects) {
  Arm("client.connect:fail-once");
  LineClient client;
  Status first = client.Connect(server_->port());
  ASSERT_FALSE(first.ok());
  EXPECT_NE(first.message().find("client.connect"), std::string::npos)
      << first;
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  EXPECT_TRUE(client.Call(R"({"cmd":"ping"})").ok());
}

TEST_F(SocketChaosTest, ClientWriteFaultRecoversViaRetry) {
  LineClient client;
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  Arm("client.write:fail-once");
  RetryPolicy policy;
  policy.initial_backoff = std::chrono::milliseconds(1);
  policy.jitter_seed = 2;
  auto response = client.CallWithRetry(R"({"cmd":"ping"})", policy);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_NE(response.value().find("\"pong\":true"), std::string::npos);
  EXPECT_GE(client.retries(), 1u);
}

TEST_F(SocketChaosTest, ClientReadFaultRecoversViaRetry) {
  LineClient client;
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  Arm("client.read:fail-once");
  RetryPolicy policy;
  policy.initial_backoff = std::chrono::milliseconds(1);
  policy.jitter_seed = 3;
  auto response = client.CallWithRetry(R"({"cmd":"ping"})", policy);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_NE(response.value().find("\"pong\":true"), std::string::npos);
  EXPECT_GE(client.retries(), 1u);
}

// --- Serve path: checker faults surface as structured error responses ---

TEST_F(SocketChaosTest, CheckerFaultsSurfaceAsErrorResponsesUnderServe) {
  service_.registry().Register("fig1", Figure1Graph());
  DataGraph fig1 = Figure1Graph();
  std::string fig1_relation = WriteRelationText(fig1, Figure1S2(fig1));

  // The csp.search site only fires when a seeded search survives the
  // initial AC-3 pass, which needs an instance with a genuine violating
  // homomorphism: a uniform-value a-path folding onto its own tail.
  DataGraph tiny;
  NodeId t0 = tiny.AddNodeWithValue("d", "n0");
  NodeId t1 = tiny.AddNodeWithValue("d", "n1");
  NodeId t2 = tiny.AddNodeWithValue("d", "n2");
  tiny.AddEdgeByName(t0, "a", t1);
  tiny.AddEdgeByName(t1, "a", t2);
  tiny.AddEdgeByName(t2, "a", t2);
  BinaryRelation tiny_s(tiny.NumNodes());
  tiny_s.Set(t0, t1);
  std::string tiny_relation = WriteRelationText(tiny, tiny_s);
  service_.registry().Register("tiny", std::move(tiny));

  struct Scenario {
    const char* site;
    const char* graph;
    const std::string* relation;
    const char* checker;
    double k;
    /// csp.search faults reach the UCRDPQ checker as a CSP-level
    /// ResourceExhausted, which it folds into a budget-exhausted *verdict*
    /// (an ok response) rather than an error.
    bool degrades_to_verdict;
  };
  const Scenario scenarios[] = {
      {"krem.arena.grow", "fig1", &fig1_relation, "krem", 2.0, false},
      {"assignment_graph.build", "fig1", &fig1_relation, "krem", 1.0,
       false},
      {"ree.closure", "fig1", &fig1_relation, "ree", 0.0, false},
      {"ucrdpq.search", "fig1", &fig1_relation, "ucrdpq", 0.0, false},
      {"csp.search", "tiny", &tiny_relation, "ucrdpq", 0.0, true},
  };
  for (const Scenario& scenario : scenarios) {
    SCOPED_TRACE(scenario.site);
    JsonValue::Object request;
    request.emplace_back("cmd", "check");
    request.emplace_back("graph", scenario.graph);
    request.emplace_back("checker", scenario.checker);
    if (scenario.k > 0) {
      request.emplace_back("k", scenario.k);
    }
    request.emplace_back("relation", *scenario.relation);
    std::string line = JsonValue(std::move(request)).Serialize();

    LineClient client;
    ASSERT_TRUE(client.Connect(server_->port()).ok());
    Arm(std::string(scenario.site) + ":fail-once");
    auto faulted = client.Call(line);
    ASSERT_TRUE(faulted.ok()) << faulted.status();
    auto parsed = JsonValue::Parse(faulted.value());
    ASSERT_TRUE(parsed.ok()) << faulted.value();
    if (scenario.degrades_to_verdict) {
      EXPECT_TRUE(parsed.value().Find("ok")->AsBool()) << faulted.value();
      EXPECT_EQ(parsed.value().GetString("verdict").ValueOrDie(),
                "budget exhausted")
          << faulted.value();
    } else {
      EXPECT_FALSE(parsed.value().Find("ok")->AsBool()) << faulted.value();
      EXPECT_EQ(
          parsed.value().Find("error")->GetString("code").ValueOrDie(),
          "ResourceExhausted")
          << faulted.value();
    }

    // fail-once has burned out: the very same request now succeeds on the
    // same server, and the connection survived the checker fault.
    FailpointRegistry::Instance().Reset();
    auto clean = client.Call(line);
    ASSERT_TRUE(clean.ok()) << clean.status();
    EXPECT_NE(clean.value().find("\"ok\":true"), std::string::npos)
        << clean.value();
  }
}

// --- Cluster failpoints: router-side faults fail over to a replica ------

/// Two workers behind a router with replication 2 — every graph lives on
/// both, so any single injected fault has a live replica to fail over to.
/// Routed responses carry per-request routing metadata — served_by,
/// failovers, trace_id — that legitimately differs between replicas; the
/// bit-identity invariant covers the query payload.
std::string PayloadOnly(const std::string& line) {
  auto parsed = JsonValue::Parse(line);
  if (!parsed.ok() || !parsed.value().is_object()) {
    return line;
  }
  JsonValue::Object body;
  for (const auto& [key, value] : parsed.value().AsObject()) {
    if (key == "served_by" || key == "failovers" || key == "trace_id") {
      continue;
    }
    body.emplace_back(key, value);
  }
  return JsonValue(std::move(body)).Serialize();
}

class ClusterChaosTest : public ChaosTest {
 protected:
  void SetUp() override {
    ChaosTest::SetUp();
    if (IsSkipped()) {
      return;
    }
    RouterOptions options;
    for (int i = 0; i < 2; i++) {
      auto service = std::make_unique<QueryService>();
      auto server = std::make_unique<Server>(service.get());
      ASSERT_TRUE(server->Start(0).ok());
      options.worker_ports.push_back(server->port());
      services_.push_back(std::move(service));
      servers_.push_back(std::move(server));
    }
    options.replication = 2;
    options.pool_size = 2;
    options.probe_interval_ms = 10;
    options.suspect_threshold = 2;
    router_ = std::make_unique<Router>(options);
    ASSERT_TRUE(router_->Start().ok());

    JsonValue::Object load;
    load.emplace_back("cmd", "load");
    load.emplace_back("name", "fig1");
    load.emplace_back("text", WriteGraphText(Figure1Graph()));
    std::string loaded = Route(JsonValue(std::move(load)).Serialize());
    ASSERT_NE(loaded.find("\"ok\":true"), std::string::npos) << loaded;
  }

  void TearDown() override {
    FailpointRegistry::Instance().Reset();
    if (router_ != nullptr) {
      router_->Stop();
    }
    for (auto& server : servers_) {
      server->Stop();
      server->Wait();
    }
  }

  std::string Route(const std::string& line) {
    bool shutdown = false;
    return router_->HandleLine(line, &shutdown);
  }

  static std::string EvalLine() {
    return R"({"cmd":"eval","graph":"fig1","language":"rpq",)"
           R"("query":"a.a"})";
  }

  /// Polls until every worker probes healthy again (the armed fault has
  /// burned out and any rejoin warm replay has completed).
  bool WaitForFleetHealthy() {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      bool all_healthy = true;
      for (std::size_t i = 0; i < router_->worker_count(); i++) {
        all_healthy &= router_->worker_state(i) == WorkerState::kHealthy;
      }
      if (all_healthy) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  }

  std::vector<std::unique_ptr<QueryService>> services_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::unique_ptr<Router> router_;
};

TEST_F(ClusterChaosTest, ConnectFaultFailsOverInvisibly) {
  std::string canonical = Route(EvalLine());
  ASSERT_NE(canonical.find("\"ok\":true"), std::string::npos) << canonical;
  Arm("cluster.connect:fail-once");
  std::string faulted = Route(EvalLine());
  // The client sees the bit-identical response the replica computed, not
  // the transport fault.
  EXPECT_EQ(PayloadOnly(faulted), PayloadOnly(canonical));
  EXPECT_GE(router_->GetSnapshot().failovers, 1u);
  EXPECT_GE(FiredCount("cluster.connect"), 1u);
  EXPECT_TRUE(WaitForFleetHealthy());
}

TEST_F(ClusterChaosTest, WriteFaultFailsOverInvisibly) {
  std::string canonical = Route(EvalLine());
  ASSERT_NE(canonical.find("\"ok\":true"), std::string::npos) << canonical;
  Arm("cluster.write:fail-once");
  std::string faulted = Route(EvalLine());
  EXPECT_EQ(PayloadOnly(faulted), PayloadOnly(canonical));
  EXPECT_GE(router_->GetSnapshot().failovers, 1u);
  EXPECT_TRUE(WaitForFleetHealthy());
}

TEST_F(ClusterChaosTest, ReadFaultMidRequestReExecutesOnReplica) {
  // cluster.read fires *after* the worker processed the request — the
  // mid-request-kill model. Queries are pure, so re-execution on the
  // replica returns the same bytes.
  std::string canonical = Route(EvalLine());
  ASSERT_NE(canonical.find("\"ok\":true"), std::string::npos) << canonical;
  Arm("cluster.read:fail-once");
  std::string faulted = Route(EvalLine());
  EXPECT_EQ(PayloadOnly(faulted), PayloadOnly(canonical));
  EXPECT_GE(router_->GetSnapshot().failovers, 1u);
  EXPECT_TRUE(WaitForFleetHealthy());
}

TEST_F(ClusterChaosTest, ProbeLossMarksSuspectThenRecovers) {
  Arm("cluster.probe:fail-once");
  // The next probe of some worker is lost; the worker turns suspect, the
  // probe after that succeeds and pulls it back through rejoining (with a
  // warm replay) to healthy. Traffic keeps flowing the whole time.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (FiredCount("cluster.probe") == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(FiredCount("cluster.probe"), 1u);
  std::string response = Route(EvalLine());
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
  EXPECT_TRUE(WaitForFleetHealthy());
}

// --- Resource governance --------------------------------------------------

TEST(ResourceBudgetTest, ChargesPeaksAndLatches) {
  ResourceBudget budget(1000, 10);
  EXPECT_FALSE(budget.Exhausted());
  budget.ChargeBytes(800);
  budget.ChargeBytes(400);
  EXPECT_EQ(budget.bytes_used(), 1200u);
  EXPECT_EQ(budget.bytes_peak(), 1200u);
  EXPECT_TRUE(budget.Exhausted());  // observed while over budget
  budget.ChargeBytes(-600);
  EXPECT_EQ(budget.bytes_used(), 600u);
  EXPECT_EQ(budget.bytes_peak(), 1200u);  // peak never decreases
  // Exhaustion latched at the poll above, even though current usage has
  // dropped back under the cap.
  EXPECT_TRUE(budget.Exhausted());
  EXPECT_EQ(budget.Check().code(), StatusCode::kResourceExhausted);

  ResourceBudget tuples(0, 10);
  tuples.ChargeTuples(11);
  EXPECT_TRUE(tuples.Exhausted());
  EXPECT_NE(tuples.Check().message().find("tuple budget"),
            std::string::npos);

  ResourceBudget unlimited;
  unlimited.ChargeBytes(1 << 30);
  unlimited.ChargeTuples(1 << 30);
  EXPECT_FALSE(unlimited.Exhausted());
  EXPECT_TRUE(unlimited.Check().ok());
}

TEST(ResourceBudgetTest, WallClockAxis) {
  ResourceBudget budget(0, 0, std::chrono::nanoseconds(0));
  EXPECT_TRUE(budget.Exhausted());
  EXPECT_NE(budget.Check().message().find("wall-clock"), std::string::npos);
}

TEST(ResourceBudgetTest, StrideCheckPollsEvery256) {
  ResourceBudget budget(1, 0);
  budget.ChargeBytes(2);  // over budget immediately
  std::uint32_t counter = 0;
  int trips = 0;
  for (int i = 0; i < 512; i++) {
    if (GQD_BUDGET_STRIDE_CHECK(&budget, counter)) {
      trips++;
    }
  }
  EXPECT_EQ(trips, 2);  // fires at the 256th and 512th poll only

  const ResourceBudget* none = nullptr;
  std::uint32_t null_counter = 0;
  EXPECT_FALSE(GQD_BUDGET_STRIDE_CHECK(none, null_counter));
}

TEST(ResourceBudgetTest, KRemByteBudgetStopsCleanlyOnBenchWorkload) {
  // The acceptance workload: the E2 bench's largest SweepN graph (n = 7,
  // δ = 2, seed 99) at k = 2, with the legacy tuple cap out of the way so
  // the 32 MiB byte budget is what stops the BFS — after well over 200k
  // macro tuples. The checker must return a budget-exhausted verdict with
  // a partial-progress report — not crash or OOM.
  RandomGraphOptions options;
  options.num_nodes = 7;
  options.num_labels = 1;
  options.num_data_values = 2;
  options.edge_percent = 30;
  options.seed = 99;
  DataGraph g = RandomDataGraph(options);
  BinaryRelation s = RandomRelation(g.NumNodes(), 20, 1234);

  constexpr std::uint64_t kByteCap = 32ull << 20;
  ResourceBudget budget(kByteCap, 0);
  KRemDefinabilityOptions krem_options;
  krem_options.max_tuples = std::numeric_limits<std::size_t>::max();
  krem_options.budget = &budget;
  auto result = CheckKRemDefinability(g, s, 2, krem_options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().verdict, DefinabilityVerdict::kBudgetExhausted);
  ASSERT_TRUE(result.value().partial.has_value());
  const PartialProgress& partial = *result.value().partial;
  EXPECT_EQ(partial.stage, "krem-bfs");
  EXPECT_GT(partial.tuples_explored, 200'000u);
  EXPECT_GT(partial.bytes_peak, kByteCap);
  // Coarse accounting may overshoot by one growth step, not by gigabytes.
  EXPECT_LT(partial.bytes_peak, 4 * kByteCap);
  EXPECT_FALSE(PartialProgressToString(partial).empty());
}

TEST(ResourceBudgetTest, ReeClosureReportsPartialProgress) {
  // A relation whose monoid is far larger than a 1-tuple budget allows.
  RandomGraphOptions options;
  options.num_nodes = 6;
  options.num_labels = 2;
  options.num_data_values = 3;
  options.edge_percent = 40;
  options.seed = 5;
  DataGraph g = RandomDataGraph(options);
  BinaryRelation s = RandomRelation(g.NumNodes(), 8, 21);

  ResourceBudget budget(0, 1);
  ReeDefinabilityOptions ree_options;
  ree_options.budget = &budget;
  auto result = CheckReeDefinability(g, s, ree_options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().verdict, DefinabilityVerdict::kBudgetExhausted);
  ASSERT_TRUE(result.value().partial.has_value());
  EXPECT_EQ(result.value().partial->stage, "ree-closure");
}

TEST(ResourceBudgetTest, ReeMonoidByteCapLatchesWithPartialProgress) {
  // The monoid cap is byte-denominated: a cap far below one element's
  // footprint latches on the first insertion and the checker reports how
  // far it got, exactly like an options.budget trip but under its own
  // stage name.
  DataGraph g = Figure1Graph();
  BinaryRelation s = Figure1S2(g);
  ReeDefinabilityOptions options;
  options.max_monoid_bytes = 1;
  auto result = CheckReeDefinability(g, s, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().verdict, DefinabilityVerdict::kBudgetExhausted);
  ASSERT_TRUE(result.value().partial.has_value());
  const PartialProgress& partial = *result.value().partial;
  EXPECT_EQ(partial.stage, "ree-monoid");
  EXPECT_GE(partial.tuples_explored, 1u);
  EXPECT_GT(partial.bytes_peak, 1u);
  EXPECT_EQ(result.value().monoid_size, partial.tuples_explored);
}

TEST(ResourceBudgetTest, ReeMonoidCountCapReportsPartialProgress) {
  // The legacy element-count cap rides the same internal budget now, so
  // it produces the same structured partial report instead of a bare
  // verdict.
  DataGraph g = Figure1Graph();
  BinaryRelation s = Figure1S2(g);
  ReeDefinabilityOptions options;
  options.max_monoid_size = 2;
  auto result = CheckReeDefinability(g, s, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().verdict, DefinabilityVerdict::kBudgetExhausted);
  ASSERT_TRUE(result.value().partial.has_value());
  EXPECT_EQ(result.value().partial->stage, "ree-monoid");
  EXPECT_GT(result.value().partial->tuples_explored, 2u);
}

TEST(ResourceBudgetTest, ReeMonoidCapsUnlimitedWhenZero) {
  // 0 disables both monoid caps (ResourceBudget semantics): Figure 1's S2
  // closure completes and returns a real verdict.
  DataGraph g = Figure1Graph();
  BinaryRelation s = Figure1S2(g);
  ReeDefinabilityOptions options;
  options.max_monoid_size = 0;
  options.max_monoid_bytes = 0;
  auto result = CheckReeDefinability(g, s, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result.value().verdict, DefinabilityVerdict::kBudgetExhausted);
  EXPECT_FALSE(result.value().partial.has_value());
}

}  // namespace
}  // namespace gqd
