// Tests for the static-analysis subsystem (src/analysis/): one unit test
// per diagnostic code, rendering (text + JSON), pass selection, the
// AST-vs-automaton register-dataflow cross-check, the evaluation
// pre-flight, the synthesis lint post-pass, and the seeded-defect example
// suite shipped under examples/data/.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/condition_analysis.h"
#include "analysis/diagnostic.h"
#include "analysis/graph_checks.h"
#include "analysis/hygiene.h"
#include "analysis/lint_suite.h"
#include "analysis/pass_manager.h"
#include "analysis/register_dataflow.h"
#include "eval/preflight.h"
#include "eval/rem_eval.h"
#include "eval/ree_eval.h"
#include "eval/rpq_eval.h"
#include "graph/examples.h"
#include "graph/generators.h"
#include "graph/serialization.h"
#include "regex/parser.h"
#include "rem/parser.h"
#include "rem/register_automaton.h"
#include "ree/parser.h"
#include "synthesis/lint_postpass.h"
#include "synthesis/synthesis.h"

namespace gqd {
namespace {

RemPtr Rem(const std::string& text) {
  auto parsed = ParseRem(text);
  EXPECT_TRUE(parsed.ok()) << text << ": " << parsed.status();
  return parsed.ValueOrDie();
}

ReePtr Ree(const std::string& text) {
  auto parsed = ParseRee(text);
  EXPECT_TRUE(parsed.ok()) << text << ": " << parsed.status();
  return parsed.ValueOrDie();
}

RegexPtr Regex(const std::string& text) {
  auto parsed = ParseRegex(text);
  EXPECT_TRUE(parsed.ok()) << text << ": " << parsed.status();
  return parsed.ValueOrDie();
}

std::vector<std::string> Codes(const std::vector<Diagnostic>& diagnostics) {
  std::vector<std::string> codes;
  for (const Diagnostic& d : diagnostics) {
    codes.push_back(d.code);
  }
  return codes;
}

bool HasCode(const std::vector<Diagnostic>& diagnostics,
             const std::string& code) {
  const std::vector<std::string> codes = Codes(diagnostics);
  return std::find(codes.begin(), codes.end(), code) != codes.end();
}

// --- Diagnostic plumbing ---------------------------------------------------

TEST(Diagnostics, RegistryCodesAreUniqueWithSummaries) {
  const auto& registry = AllDiagnosticCodes();
  ASSERT_FALSE(registry.empty());
  std::set<std::string> seen;
  for (const DiagnosticCodeInfo& info : registry) {
    EXPECT_TRUE(seen.insert(info.code).second) << info.code;
    EXPECT_NE(std::string(info.summary), "");
    EXPECT_EQ(std::string(info.code).substr(0, 4), "GQD-") << info.code;
  }
}

TEST(Diagnostics, TextRenderingIsCompilerStyle) {
  std::vector<Diagnostic> diagnostics = {
      {DiagnosticSeverity::kError, "GQD-REG-001", "bad read", "a[r1=]"},
      {DiagnosticSeverity::kNote, "GQD-AUT-004", "redundant", ""}};
  std::string text = DiagnosticsToText(diagnostics);
  EXPECT_NE(text.find("error GQD-REG-001: bad read"), std::string::npos);
  EXPECT_NE(text.find("in: a[r1=]"), std::string::npos);
  EXPECT_NE(text.find("note GQD-AUT-004: redundant"), std::string::npos);
}

TEST(Diagnostics, JsonRenderingEscapesAndCounts) {
  std::vector<Diagnostic> diagnostics = {
      {DiagnosticSeverity::kWarning, "GQD-REG-002", "quote \" slash \\",
       "a\tb"}};
  std::string json = DiagnosticsToJson(diagnostics);
  EXPECT_NE(json.find("\"code\":\"GQD-REG-002\""), std::string::npos);
  EXPECT_NE(json.find("quote \\\" slash \\\\"), std::string::npos);
  EXPECT_NE(json.find("a\\tb"), std::string::npos);
  EXPECT_NE(json.find("\"errors\":0"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\":1"), std::string::npos);
}

TEST(Diagnostics, JsonEscapeControlCharacters) {
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonEscape("\n"), "\\n");
}

// --- One unit test per diagnostic code -------------------------------------

TEST(DiagnosticCode, ParseErrorInSuite) {  // GQD-PARSE-001
  auto entries = RunLintSuite("rem ((broken\n");
  ASSERT_TRUE(entries.ok()) << entries.status();
  ASSERT_EQ(entries.value().size(), 1u);
  EXPECT_TRUE(HasCode(entries.value()[0].diagnostics, "GQD-PARSE-001"));
  EXPECT_TRUE(SuiteHasErrors(entries.value()));
}

TEST(DiagnosticCode, ReadBeforeStoreEquality) {  // GQD-REG-001
  std::vector<Diagnostic> diagnostics = LintRem(Rem("a [r1=]"));
  EXPECT_TRUE(HasCode(diagnostics, "GQD-REG-001"));
  EXPECT_TRUE(HasErrors(diagnostics));
}

TEST(DiagnosticCode, ReadBeforeStoreInequality) {  // GQD-REG-002
  std::vector<Diagnostic> diagnostics = LintRem(Rem("a [r1!=]"));
  EXPECT_TRUE(HasCode(diagnostics, "GQD-REG-002"));
  EXPECT_FALSE(HasErrors(diagnostics));
}

TEST(DiagnosticCode, DeadStore) {  // GQD-REG-003
  std::vector<Diagnostic> diagnostics = LintRem(Rem("$r1. a"));
  EXPECT_TRUE(HasCode(diagnostics, "GQD-REG-003"));
}

TEST(DiagnosticCode, UnsatisfiableCondition) {  // GQD-COND-001
  std::vector<Diagnostic> diagnostics = LintRem(Rem("$r1. a [r1= & r1!=]"));
  EXPECT_TRUE(HasCode(diagnostics, "GQD-COND-001"));
  EXPECT_TRUE(HasErrors(diagnostics));
}

TEST(DiagnosticCode, DeadBranch) {  // GQD-COND-002
  std::vector<Diagnostic> diagnostics =
      LintRem(Rem("$(r1,r2). a [r1= | (r2= & r2!=)]"));
  EXPECT_TRUE(HasCode(diagnostics, "GQD-COND-002"));
  // The whole condition is satisfiable, so no COND-001.
  EXPECT_FALSE(HasCode(diagnostics, "GQD-COND-001"));
}

TEST(DiagnosticCode, Tautology) {  // GQD-COND-003
  std::vector<Diagnostic> diagnostics = LintRem(Rem("$r1. a [r1= | r1!=]"));
  EXPECT_TRUE(HasCode(diagnostics, "GQD-COND-003"));
  // A literal T does not warrant the note.
  EXPECT_FALSE(HasCode(LintRem(Rem("$r1. a [T] [r1=]")), "GQD-COND-003"));
}

// ∧_{i<k} (τ_i= ∨ τ_i≠): a tautology mentioning registers 0..k-1.
ConditionPtr WideTautology(std::size_t k) {
  ConditionPtr c = cond::True();
  for (std::size_t i = 0; i < k; i++) {
    c = cond::And(std::move(c),
                  cond::Or(cond::RegisterEq(i), cond::RegisterNeq(i)));
  }
  return c;
}

TEST(ConditionAnalysis, RegisterCountBoundary) {
  // k = 6 is the widest analyzable condition: NumMinterms(6) == 64, so
  // FullMask must take its ~0 branch instead of the (1 << 64) shift.
  EXPECT_EQ(NumMinterms(kMaxAnalyzableRegisters), 64u);
  EXPECT_EQ(ConditionToMinterms(cond::True(), kMaxAnalyzableRegisters),
            ~MintermMask{0});

  // Tautology at the boundary (its tautological conjuncts additionally
  // draw COND-002 dead-branch warnings; only the codes matter here).
  std::vector<Diagnostic> diagnostics;
  AnalyzeCondition(WideTautology(6), "ctx", &diagnostics);
  EXPECT_TRUE(HasCode(diagnostics, "GQD-COND-003"));
  EXPECT_FALSE(HasCode(diagnostics, "GQD-COND-001"));

  // Unsatisfiable at the boundary: the full 64-minterm tautology conjoined
  // with a contradiction on the highest register.
  diagnostics.clear();
  AnalyzeCondition(
      cond::And(WideTautology(6),
                cond::And(cond::RegisterEq(5), cond::RegisterNeq(5))),
      "ctx", &diagnostics);
  EXPECT_TRUE(HasCode(diagnostics, "GQD-COND-001"));
}

TEST(ConditionAnalysis, WiderThanBoundaryIsSkipped) {
  // 7 registers exceed the 64-bit minterm mask; the analysis must decline
  // rather than report (even though this condition is a tautology).
  std::vector<Diagnostic> diagnostics;
  AnalyzeCondition(WideTautology(7), "ctx", &diagnostics);
  EXPECT_TRUE(diagnostics.empty());
}

TEST(DiagnosticCode, UnreachableAndDeadStates) {  // GQD-AUT-001, GQD-AUT-002
  DataGraph g = RandomDataGraph({.num_labels = 1});  // alphabet {a}
  AnalysisOptions options;
  options.graph = &g;
  std::vector<Diagnostic> diagnostics = LintRem(Rem("a b"), options);
  EXPECT_TRUE(HasCode(diagnostics, "GQD-AUT-001"));
  EXPECT_TRUE(HasCode(diagnostics, "GQD-AUT-002"));
}

TEST(DiagnosticCode, EmptyLanguage) {  // GQD-AUT-003
  EXPECT_TRUE(HasCode(LintRee(Ree("(eps)!=")), "GQD-AUT-003"));
  EXPECT_TRUE(HasCode(LintRee(Ree("((a)=)!=")), "GQD-AUT-003"));
  EXPECT_TRUE(HasCode(LintRem(Rem("$r1. a [r1= & r1!=]")), "GQD-AUT-003"));
  // Only the topmost empty node is reported.
  std::vector<Diagnostic> diagnostics = LintRee(Ree("a ((eps)!=) b"));
  EXPECT_EQ(CountSeverity(diagnostics, DiagnosticSeverity::kError), 1u);
}

TEST(DiagnosticCode, RedundantNesting) {  // GQD-AUT-004
  EXPECT_TRUE(HasCode(LintRem(Rem("(a+)+")), "GQD-AUT-004"));
  EXPECT_TRUE(HasCode(LintRegex(Regex("(a*)*")), "GQD-AUT-004"));
  EXPECT_TRUE(HasCode(LintRegex(Regex("a | a")), "GQD-AUT-004"));
  EXPECT_TRUE(HasCode(LintRee(Ree("((a)=)=")), "GQD-AUT-004"));
  EXPECT_FALSE(HasCode(LintRegex(Regex("a b | b a")), "GQD-AUT-004"));
}

TEST(DiagnosticCode, LetterOutsideAlphabet) {  // GQD-GRF-001
  DataGraph g = RandomDataGraph({.num_labels = 2});  // alphabet {a, b}
  AnalysisOptions options;
  options.graph = &g;
  std::vector<Diagnostic> diagnostics = LintRegex(Regex("a zzz"), options);
  EXPECT_TRUE(HasCode(diagnostics, "GQD-GRF-001"));
  EXPECT_TRUE(HasErrors(diagnostics));
  EXPECT_FALSE(HasCode(LintRegex(Regex("a b"), options), "GQD-GRF-001"));
}

TEST(DiagnosticCode, MoreRegistersThanDataValues) {  // GQD-GRF-002
  DataGraph g = RandomDataGraph({.num_labels = 1, .num_data_values = 2});
  AnalysisOptions options;
  options.graph = &g;
  std::vector<Diagnostic> diagnostics =
      LintRem(Rem("$(r1,r2,r3). a [r1=] [r2=] [r3=]"), options);
  EXPECT_TRUE(HasCode(diagnostics, "GQD-GRF-002"));
  EXPECT_FALSE(HasCode(LintRem(Rem("$(r1,r2). a [r1=] [r2=]"), options),
                       "GQD-GRF-002"));
}

// --- Pass manager behavior -------------------------------------------------

TEST(PassManager, CleanQueryHasNoDiagnostics) {
  EXPECT_TRUE(LintRem(Rem("$r1. a b [r1=]")).empty());
  EXPECT_TRUE(LintRee(Ree("(a b)= | c")).empty());
  EXPECT_TRUE(LintRegex(Regex("(a | b)+ c*")).empty());
}

TEST(PassManager, OnlyPassesFilters) {
  AnalysisOptions options;
  options.only_passes = {"redundancy"};
  // (a+)+ with a vacuous read: only the redundancy finding survives.
  std::vector<Diagnostic> diagnostics = LintRem(Rem("(a [r1=] +)+"), options);
  for (const Diagnostic& d : diagnostics) {
    EXPECT_EQ(d.code, "GQD-AUT-004") << d.code;
  }
  EXPECT_TRUE(HasCode(diagnostics, "GQD-AUT-004"));
}

TEST(PassManager, IncludeNotesFalseDropsNotes) {
  AnalysisOptions options;
  options.include_notes = false;
  EXPECT_TRUE(LintRem(Rem("(a+)+"), options).empty());
}

TEST(PassManager, PassNamesAreStable) {
  const std::vector<std::string>& names = LintPassNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "register-dataflow"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "graph-checks"),
            names.end());
}

TEST(PassManager, EmittedCodesAreRegistered) {
  std::set<std::string> registered;
  for (const DiagnosticCodeInfo& info : AllDiagnosticCodes()) {
    registered.insert(info.code);
  }
  DataGraph g = RandomDataGraph({.num_labels = 1, .num_data_values = 2});
  AnalysisOptions options;
  options.graph = &g;
  for (const Diagnostic& d : LintRem(
           Rem("$(r1,r2,r3). (a+)+ b [r1= & r1!=] [r9=] [r9!=]"), options)) {
    EXPECT_TRUE(registered.count(d.code)) << d.code;
  }
}

// --- AST vs automaton register-dataflow cross-check ------------------------

RemPtr RandomRem(SplitMix64* rng, int depth) {
  if (depth == 0 || rng->NextBool(1, 3)) {
    switch (rng->NextBelow(3)) {
      case 0:
        return rem::Epsilon();
      case 1:
        return rem::Letter("a");
      default:
        return rem::Letter("b");
    }
  }
  switch (rng->NextBelow(6)) {
    case 0:
      return rem::Union(
          {RandomRem(rng, depth - 1), RandomRem(rng, depth - 1)});
    case 1:
      return rem::Concat(
          {RandomRem(rng, depth - 1), RandomRem(rng, depth - 1)});
    case 2:
      return rem::Plus(RandomRem(rng, depth - 1));
    case 3:
      return rem::Bind({rng->NextBelow(3)}, RandomRem(rng, depth - 1));
    case 4: {
      ConditionPtr c = rng->NextBool(1, 2)
                           ? cond::RegisterEq(rng->NextBelow(3))
                           : cond::RegisterNeq(rng->NextBelow(3));
      if (rng->NextBool(1, 3)) {
        c = cond::And(std::move(c), rng->NextBool(1, 2)
                                        ? cond::RegisterEq(rng->NextBelow(3))
                                        : cond::RegisterNeq(rng->NextBelow(3)));
      }
      return rem::Test(RandomRem(rng, depth - 1), std::move(c));
    }
    default:
      return rem::Star(RandomRem(rng, depth - 1));
  }
}

TEST(RegisterDataflow, AstAndAutomatonAgreeOnRandomRems) {
  SplitMix64 rng(20150531);  // PODS 2015.
  for (int trial = 0; trial < 400; trial++) {
    RemPtr e = RandomRem(&rng, 5);
    std::vector<VacuousRead> from_ast = DeduplicateReads(AstVacuousReads(e));
    StringInterner labels;
    RegisterAutomaton ra =
        CompileRem(e, &labels, /*intern_new_labels=*/true);
    std::vector<VacuousRead> from_automaton = AutomatonVacuousReads(ra);
    EXPECT_EQ(from_ast, from_automaton) << RemToString(e);
  }
}

TEST(RegisterDataflow, PlusLoopFeedsBackStores) {
  // In ($r1. a | b [r1=])+ the second iteration may read a store from the
  // first: not a vacuous read.
  RemPtr e = Rem("($r1. a | b [r1=])+");
  EXPECT_TRUE(AstVacuousReads(e).empty());
  StringInterner labels;
  EXPECT_TRUE(
      AutomatonVacuousReads(CompileRem(e, &labels, true)).empty());
}

TEST(RegisterDataflow, StoreAppliesBeforeItsBody) {
  // ↓r1.(a[r1=]) stores the first value before the test reads it.
  EXPECT_TRUE(AstVacuousReads(Rem("$r1. (a [r1=])")).empty());
}

TEST(RegisterDataflow, UnionBranchesAreIndependent) {
  // The store in the left branch cannot feed the read in the right branch.
  std::vector<VacuousReadSite> sites =
      AstVacuousReads(Rem("$r1. a | b [r1=]"));
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].read.register_index, 0u);
  EXPECT_TRUE(sites[0].read.is_equality);
}

TEST(RegisterDataflow, DeadStoresListsUnreadRegisters) {
  std::vector<std::size_t> dead = DeadStores(Rem("$(r1,r3). a [r3=]"));
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], 0u);
}

// --- Emptiness predicates --------------------------------------------------

TEST(Emptiness, ReeInvariants) {
  EXPECT_TRUE(ReeDefinitelyEmpty(Ree("(eps)!="), nullptr));
  EXPECT_TRUE(ReeDefinitelyEmpty(Ree("((a)=)!="), nullptr));
  EXPECT_TRUE(ReeDefinitelyEmpty(Ree("((a)!=)="), nullptr));
  // (e≠)≠ and (e=)= are consistent; concat of = parts stays =.
  EXPECT_FALSE(ReeDefinitelyEmpty(Ree("((a)!=)!="), nullptr));
  EXPECT_TRUE(ReeDefinitelyEmpty(Ree("((a)= (b)=)!="), nullptr));
  // A ≠ part inside a concat frees the endpoints: no contradiction.
  EXPECT_FALSE(ReeDefinitelyEmpty(Ree("((a)!= (b)=)="), nullptr));
}

TEST(Emptiness, GraphAlphabetMakesLettersEmpty) {
  DataGraph g = RandomDataGraph({.num_labels = 1});
  EXPECT_TRUE(RemDefinitelyEmpty(Rem("a zzz"), &g));
  EXPECT_FALSE(RemDefinitelyEmpty(Rem("a | zzz"), &g));
  EXPECT_TRUE(RegexDefinitelyEmpty(Regex("zzz+"), &g));
  EXPECT_FALSE(RegexDefinitelyEmpty(Regex("zzz*"), &g));  // matches ε
}

// --- Pre-flight ------------------------------------------------------------

TEST(Preflight, RejectsErrorFindingsOnly) {
  DataGraph g = RandomDataGraph({.num_labels = 1});
  Status bad = PreflightPathExpression(g, PathExpression(Rem("a [r1=]")));
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("GQD-REG-001"), std::string::npos);
  // Warnings never block.
  EXPECT_TRUE(
      PreflightPathExpression(g, PathExpression(Rem("a [r1!=]"))).ok());
  EXPECT_TRUE(
      PreflightPathExpression(g, PathExpression(Regex("a+"))).ok());
}

TEST(Preflight, CoversAllThreeFamilies) {
  DataGraph g = RandomDataGraph({.num_labels = 1});
  EXPECT_FALSE(
      PreflightPathExpression(g, PathExpression(Regex("zzz"))).ok());
  EXPECT_FALSE(
      PreflightPathExpression(g, PathExpression(Ree("(eps)!="))).ok());
  EXPECT_FALSE(
      PreflightPathExpression(g, PathExpression(Rem("zzz"))).ok());
}

TEST(Preflight, LintPathExpressionReportsWithoutRejecting) {
  DataGraph g = RandomDataGraph({.num_labels = 1});
  std::vector<Diagnostic> diagnostics =
      LintPathExpression(g, PathExpression(Rem("a [r1!=]")));
  EXPECT_TRUE(HasCode(diagnostics, "GQD-REG-002"));
}

// --- Synthesis post-pass / property sweep ----------------------------------

TEST(SynthesisLint, SynthesizedQueriesAreErrorFree) {
  // Sweep random graphs; relations produced by evaluating queries are
  // definable by construction, so synthesis must succeed AND be lint-clean
  // at error level (the post-pass inside Synthesize* would fail otherwise;
  // this re-checks directly against the public lint entry points).
  for (std::uint64_t seed = 1; seed <= 12; seed++) {
    DataGraph g = RandomDataGraph({.num_nodes = 4,
                                   .num_labels = 2,
                                   .num_data_values = 2,
                                   .edge_percent = 35,
                                   .seed = seed});
    AnalysisOptions options;
    options.graph = &g;

    BinaryRelation from_rpq = EvaluateRpq(g, Regex("a b | b"));
    auto rpq = SynthesizeRpqQuery(g, from_rpq);
    ASSERT_TRUE(rpq.ok()) << rpq.status();
    if (rpq.value().has_value()) {
      EXPECT_FALSE(HasErrors(LintRegex(*rpq.value(), options)))
          << RegexToString(*rpq.value());
    }

    BinaryRelation from_rem =
        EvaluateRem(g, Rem("$r1. a (b | a) [r1!=]"));
    auto krem = SynthesizeKRemQuery(g, from_rem, 1);
    ASSERT_TRUE(krem.ok()) << krem.status();
    if (krem.value().has_value() && !from_rem.Empty()) {
      EXPECT_FALSE(HasErrors(LintRem(*krem.value(), options)))
          << RemToString(*krem.value());
    }

    BinaryRelation from_ree = EvaluateRee(g, Ree("(a b)= | b"));
    auto ree_q = SynthesizeReeQuery(g, from_ree);
    ASSERT_TRUE(ree_q.ok()) << ree_q.status();
    if (ree_q.value().has_value() && !from_ree.Empty()) {
      EXPECT_FALSE(HasErrors(LintRee(*ree_q.value(), options)))
          << ReeToString(*ree_q.value());
    }
  }
}

TEST(SynthesisLint, PostpassAcceptsCleanAndEmptyTargets) {
  DataGraph g = Figure1Graph();
  BinaryRelation s2 = Figure1S2(g);
  auto query = SynthesizeKRemQuery(g, s2, 2);
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_TRUE(query.value().has_value());
  auto lint = LintSynthesizedRem(g, s2, *query.value());
  ASSERT_TRUE(lint.ok()) << lint.status();

  // The empty-relation ε[¬⊤] query intentionally carries a COND-001 error;
  // the post-pass must not reject it.
  BinaryRelation empty(g.NumNodes());
  auto empty_query = SynthesizeKRemQuery(g, empty, 1);
  ASSERT_TRUE(empty_query.ok());
  ASSERT_TRUE(empty_query.value().has_value());
  auto empty_lint = LintSynthesizedRem(g, empty, *empty_query.value());
  EXPECT_TRUE(empty_lint.ok()) << empty_lint.status();
  EXPECT_TRUE(HasCode(empty_lint.value(), "GQD-COND-001"));
}

TEST(SynthesisLint, PostpassRejectsDefectiveQuery) {
  DataGraph g = Figure1Graph();
  BinaryRelation s1 = Figure1S1(g);  // non-empty
  auto lint = LintSynthesizedRem(g, s1, Rem("a [r1=]"));
  ASSERT_FALSE(lint.ok());
  EXPECT_EQ(lint.status().code(), StatusCode::kInternal);
  EXPECT_NE(lint.status().message().find("GQD-REG-001"), std::string::npos);
}

// --- Lint suites -----------------------------------------------------------

TEST(LintSuite, StructureErrorsFailTheRun) {
  EXPECT_EQ(RunLintSuite("klingon a\n").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunLintSuite("rem\n").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LintSuite, RendersTextAndJson) {
  auto entries = RunLintSuite("# comment\n\nrem a [r1=]\nregex a | a\n");
  ASSERT_TRUE(entries.ok()) << entries.status();
  ASSERT_EQ(entries.value().size(), 2u);
  std::string text = LintSuiteToText(entries.value());
  EXPECT_NE(text.find("GQD-REG-001"), std::string::npos);
  EXPECT_NE(text.find("GQD-AUT-004"), std::string::npos);
  std::string json = LintSuiteToJson(entries.value());
  EXPECT_NE(json.find("\"language\":\"rem\""), std::string::npos);
  EXPECT_NE(json.find("\"code\":\"GQD-REG-001\""), std::string::npos);
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.is_open()) << path;
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

TEST(LintSuite, SeededDefectSuiteCoversAllPassFamilies) {
  const std::string data_dir = GQD_EXAMPLES_DATA_DIR;
  std::string suite_text = ReadFileOrDie(data_dir + "/lint_defects.suite");
  DataGraph g =
      ReadGraphText(ReadFileOrDie(data_dir + "/social_network.graph"))
          .ValueOrDie();
  AnalysisOptions options;
  options.graph = &g;
  auto entries = RunLintSuite(suite_text, options);
  ASSERT_TRUE(entries.ok()) << entries.status();

  std::set<std::string> codes;
  for (const LintSuiteEntry& entry : entries.value()) {
    for (const Diagnostic& d : entry.diagnostics) {
      codes.insert(d.code);
    }
    EXPECT_FALSE(HasCode(entry.diagnostics, "GQD-PARSE-001"))
        << entry.expression_text;
  }
  // Every pass family fires somewhere in the suite.
  for (const char* code :
       {"GQD-REG-001", "GQD-REG-002", "GQD-REG-003", "GQD-COND-001",
        "GQD-COND-002", "GQD-COND-003", "GQD-AUT-001", "GQD-AUT-002",
        "GQD-AUT-003", "GQD-AUT-004", "GQD-GRF-001", "GQD-GRF-002"}) {
    EXPECT_TRUE(codes.count(code)) << code;
  }
}

}  // namespace
}  // namespace gqd
