// Differential tests for the word-parallel successor kernels.
//
// The k-REM and REE checkers each keep two engines: the kernel engine
// (rowized bitset adjacency / packed relations, incremental subset unions)
// and the reference engine (the shape of the original per-successor,
// from-scratch implementation). Both explore in the same canonical order,
// so on every input they must agree not just on the verdict but on the
// exact exploration cost and the exact synthesized witnesses — which is
// what these tests pin down over randomized small instances, alongside
// bit-identical results at every thread count and deadline handling on
// the frontier-parallel path.

#include <chrono>

#include <gtest/gtest.h>

#include "common/cancel.h"
#include "definability/krem_definability.h"
#include "definability/ree_definability.h"
#include "definability/rpq_definability.h"
#include "definability/ucrdpq_definability.h"
#include "eval/rem_eval.h"
#include "eval/ree_eval.h"
#include "graph/generators.h"
#include "graph/sparse_relation.h"
#include "ree/parser.h"
#include "storage/container.h"
#include "storage/graph_store.h"

namespace gqd {
namespace {

struct RandomCase {
  DataGraph graph;
  BinaryRelation relation;
  std::size_t k;
};

/// A deterministic family of small instances: n ≤ 6, k ≤ 2, varying label
/// and value counts. Small enough to finish in milliseconds, varied enough
/// to hit definable, non-definable and budget-exhausted outcomes.
RandomCase MakeCase(std::uint64_t seed) {
  std::size_t n = 3 + seed % 4;  // 3..6
  DataGraph graph = RandomDataGraph({.num_nodes = n,
                                     .num_labels = 1 + seed % 2,
                                     .num_data_values = 2 + seed % 2,
                                     .edge_percent =
                                         static_cast<std::uint32_t>(
                                             30 + 5 * (seed % 4)),
                                     .seed = seed});
  BinaryRelation relation = RandomRelation(n, 25, seed * 7 + 1);
  return RandomCase{std::move(graph), std::move(relation), seed % 3};
}

bool SameBlocks(const std::vector<BasicRemBlock>& a,
                const std::vector<BasicRemBlock>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); i++) {
    if (a[i].store_mask != b[i].store_mask || a[i].label != b[i].label ||
        a[i].condition != b[i].condition) {
      return false;
    }
  }
  return true;
}

void ExpectSameKRemResult(const KRemDefinabilityResult& a,
                          const KRemDefinabilityResult& b,
                          std::uint64_t seed) {
  EXPECT_EQ(a.verdict, b.verdict) << "seed " << seed;
  EXPECT_EQ(a.tuples_explored, b.tuples_explored) << "seed " << seed;
  ASSERT_EQ(a.witnesses.size(), b.witnesses.size()) << "seed " << seed;
  for (std::size_t w = 0; w < a.witnesses.size(); w++) {
    EXPECT_EQ(a.witnesses[w].from, b.witnesses[w].from) << "seed " << seed;
    EXPECT_EQ(a.witnesses[w].to, b.witnesses[w].to) << "seed " << seed;
    EXPECT_TRUE(SameBlocks(a.witnesses[w].blocks, b.witnesses[w].blocks))
        << "seed " << seed << " witness " << w;
  }
}

TEST(KRemDiff, KernelMatchesReferenceOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 24; seed++) {
    RandomCase c = MakeCase(seed);
    KRemDefinabilityOptions kernel, reference;
    kernel.max_tuples = reference.max_tuples = 20'000;
    kernel.engine = KRemEngine::kKernel;
    reference.engine = KRemEngine::kReference;
    auto a = CheckKRemDefinability(c.graph, c.relation, c.k, kernel);
    auto b = CheckKRemDefinability(c.graph, c.relation, c.k, reference);
    ASSERT_TRUE(a.ok()) << "seed " << seed;
    ASSERT_TRUE(b.ok()) << "seed " << seed;
    ExpectSameKRemResult(a.value(), b.value(), seed);

    // Witness validity: the union of the evaluated witnesses must be
    // exactly S (Lemma 21's characterization, checked end to end).
    if (a.value().verdict == DefinabilityVerdict::kDefinable) {
      BinaryRelation defined(c.graph.NumNodes());
      for (const KRemWitness& witness : a.value().witnesses) {
        RemPtr e = BasicRemFromBlocks(witness.blocks, c.k, c.graph.labels());
        BinaryRelation rel = EvaluateRem(c.graph, e);
        EXPECT_TRUE(rel.Test(witness.from, witness.to)) << "seed " << seed;
        defined.UnionWith(rel);
      }
      EXPECT_EQ(defined, c.relation) << "seed " << seed;
    }
  }
}

TEST(KRemDiff, ThreadCountsProduceIdenticalResults) {
  for (std::uint64_t seed = 1; seed <= 16; seed++) {
    RandomCase c = MakeCase(seed);
    KRemDefinabilityOptions sequential;
    sequential.max_tuples = 20'000;
    auto base = CheckKRemDefinability(c.graph, c.relation, c.k, sequential);
    ASSERT_TRUE(base.ok()) << "seed " << seed;
    for (std::size_t threads : {2, 4}) {
      KRemDefinabilityOptions parallel = sequential;
      parallel.num_threads = threads;
      auto r = CheckKRemDefinability(c.graph, c.relation, c.k, parallel);
      ASSERT_TRUE(r.ok()) << "seed " << seed << " threads " << threads;
      ExpectSameKRemResult(base.value(), r.value(), seed);
    }
  }
}

TEST(KRemDiff, ParallelReferenceEngineAlsoAgrees) {
  // The reference engine runs on the same frontier-parallel scaffolding;
  // cross engine × thread count must still be one result.
  RandomCase c = MakeCase(3);
  KRemDefinabilityOptions options;
  options.max_tuples = 20'000;
  auto base = CheckKRemDefinability(c.graph, c.relation, c.k, options);
  ASSERT_TRUE(base.ok());
  options.engine = KRemEngine::kReference;
  options.num_threads = 4;
  auto r = CheckKRemDefinability(c.graph, c.relation, c.k, options);
  ASSERT_TRUE(r.ok());
  ExpectSameKRemResult(base.value(), r.value(), 3);
}

TEST(KRemDiff, DeadlineHonoredUnderThreads) {
  RandomCase c = MakeCase(1);
  CancelToken expired(std::chrono::nanoseconds(0));
  for (std::size_t threads : {1, 4}) {
    KRemDefinabilityOptions options;
    options.num_threads = threads;
    options.cancel = &expired;
    auto r = CheckKRemDefinability(c.graph, c.relation, 2, options);
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
        << "threads " << threads;
  }
}

TEST(KRemDiff, DeadlineDuringSearchUnderThreads) {
  // A running (not pre-expired) deadline that trips mid-search: the
  // checker must return DeadlineExceeded, not a verdict, once the budget
  // of a few microseconds runs out on a non-trivial instance.
  DataGraph g = RandomDataGraph({.num_nodes = 6,
                                 .num_labels = 2,
                                 .num_data_values = 3,
                                 .edge_percent = 40,
                                 .seed = 5});
  BinaryRelation s = RandomRelation(6, 25, 11);
  CancelToken deadline(std::chrono::microseconds(50));
  KRemDefinabilityOptions options;
  options.num_threads = 4;
  options.cancel = &deadline;
  auto r = CheckKRemDefinability(g, s, 2, options);
  if (!r.ok()) {
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  }
  // A fast machine may legitimately finish first; either way, no crash,
  // no partial result.
}

TEST(ReeDiff, KernelMatchesReferenceOnSmallGraphs) {
  // n ≤ 6 exercises the packed SmallRelation path against the generic
  // per-bit reference.
  for (std::uint64_t seed = 1; seed <= 16; seed++) {
    RandomCase c = MakeCase(seed);
    ReeDefinabilityOptions kernel, reference;
    kernel.max_monoid_size = reference.max_monoid_size = 20'000;
    reference.engine = ReeEngine::kReference;
    auto a = CheckReeDefinability(c.graph, c.relation, kernel);
    auto b = CheckReeDefinability(c.graph, c.relation, reference);
    ASSERT_TRUE(a.ok()) << "seed " << seed;
    ASSERT_TRUE(b.ok()) << "seed " << seed;
    EXPECT_EQ(a.value().verdict, b.value().verdict) << "seed " << seed;
    EXPECT_EQ(a.value().levels_used, b.value().levels_used)
        << "seed " << seed;
    EXPECT_EQ(a.value().monoid_size, b.value().monoid_size)
        << "seed " << seed;
    if (a.value().verdict == DefinabilityVerdict::kDefinable &&
        !c.relation.Empty()) {
      EXPECT_EQ(EvaluateRee(c.graph, a.value().defining_expression),
                c.relation)
          << "seed " << seed;
      EXPECT_EQ(EvaluateRee(c.graph, b.value().defining_expression),
                c.relation)
          << "seed " << seed;
    }
  }
}

TEST(ReeDiff, KernelMatchesReferenceOnBigGraphs) {
  // n > 8 exercises the rowized ValueClassMasks path against the per-bit
  // reference. Low density keeps the monoid small.
  for (std::uint64_t seed = 1; seed <= 6; seed++) {
    DataGraph g = RandomDataGraph({.num_nodes = 10,
                                   .num_labels = 1,
                                   .num_data_values = 2,
                                   .edge_percent = 8,
                                   .seed = seed});
    BinaryRelation s = RandomRelation(10, 10, seed * 3 + 2);
    ReeDefinabilityOptions kernel, reference;
    kernel.max_monoid_size = reference.max_monoid_size = 20'000;
    reference.engine = ReeEngine::kReference;
    auto a = CheckReeDefinability(g, s, kernel);
    auto b = CheckReeDefinability(g, s, reference);
    ASSERT_TRUE(a.ok()) << "seed " << seed;
    ASSERT_TRUE(b.ok()) << "seed " << seed;
    EXPECT_EQ(a.value().verdict, b.value().verdict) << "seed " << seed;
    EXPECT_EQ(a.value().levels_used, b.value().levels_used)
        << "seed " << seed;
    EXPECT_EQ(a.value().monoid_size, b.value().monoid_size)
        << "seed " << seed;
  }
}

TEST(KRemDiff, PlannedMatchesKernelAndReference) {
  // The planned engine (dispatch-table specialized inner loops) computes
  // the same pattern-part bits as the kernel and reference engines, so all
  // three must agree on verdicts, witnesses and exploration cost exactly.
  for (std::uint64_t seed = 1; seed <= 24; seed++) {
    RandomCase c = MakeCase(seed);
    KRemDefinabilityOptions planned, kernel, reference;
    planned.max_tuples = kernel.max_tuples = reference.max_tuples = 20'000;
    planned.engine = KRemEngine::kPlanned;
    kernel.engine = KRemEngine::kKernel;
    reference.engine = KRemEngine::kReference;
    auto p = CheckKRemDefinability(c.graph, c.relation, c.k, planned);
    auto a = CheckKRemDefinability(c.graph, c.relation, c.k, kernel);
    auto b = CheckKRemDefinability(c.graph, c.relation, c.k, reference);
    ASSERT_TRUE(p.ok()) << "seed " << seed;
    ASSERT_TRUE(a.ok()) << "seed " << seed;
    ASSERT_TRUE(b.ok()) << "seed " << seed;
    ExpectSameKRemResult(p.value(), a.value(), seed);
    ExpectSameKRemResult(p.value(), b.value(), seed);
  }
}

TEST(KRemDiff, PlannedThreadCountsProduceIdenticalResults) {
  for (std::uint64_t seed = 1; seed <= 12; seed++) {
    RandomCase c = MakeCase(seed);
    KRemDefinabilityOptions sequential;
    sequential.max_tuples = 20'000;
    sequential.engine = KRemEngine::kPlanned;
    auto base = CheckKRemDefinability(c.graph, c.relation, c.k, sequential);
    ASSERT_TRUE(base.ok()) << "seed " << seed;
    for (std::size_t threads : {2, 4}) {
      KRemDefinabilityOptions parallel = sequential;
      parallel.num_threads = threads;
      auto r = CheckKRemDefinability(c.graph, c.relation, c.k, parallel);
      ASSERT_TRUE(r.ok()) << "seed " << seed << " threads " << threads;
      ExpectSameKRemResult(base.value(), r.value(), seed);
    }
  }
}

/// n nodes with pairwise-distinct data values (ρ injective — the shape the
/// planned REE engine's diagonal kernel specializes), plus deterministic
/// pseudo-random `a`-edges.
DataGraph DistinctValuesGraph(std::size_t n, std::uint64_t seed) {
  DataGraph g;
  LabelId a = g.AddLabel("a");
  for (std::size_t i = 0; i < n; i++) {
    g.AddNodeWithValue("v" + std::to_string(i), "n" + std::to_string(i));
  }
  std::uint64_t state = seed * 0x9e3779b97f4a7c15ULL + 1;
  for (std::size_t u = 0; u < n; u++) {
    for (std::size_t v = 0; v < n; v++) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      if ((state >> 33) % 100 < 20) {
        g.AddEdge(static_cast<NodeId>(u), a, static_cast<NodeId>(v));
      }
    }
  }
  return g;
}

TEST(ReeDiff, PlannedDiagonalMatchesKernelAndReference) {
  // n > 8 all-distinct-values graphs take the diagonal Eq/Neq kernels;
  // the planned engine must agree with kernel and reference bit for bit.
  // Kept small: the reference oracle is quadratic per monoid element and
  // distinct-value graphs grow the monoid quickly.
  for (std::uint64_t seed = 1; seed <= 4; seed++) {
    DataGraph g = DistinctValuesGraph(9 + seed % 2, seed);
    BinaryRelation s = RandomRelation(g.NumNodes(), 10, seed * 3 + 2);
    ReeDefinabilityOptions planned, kernel, reference;
    planned.max_monoid_size = kernel.max_monoid_size =
        reference.max_monoid_size = 4'000;
    planned.engine = ReeEngine::kPlanned;
    kernel.engine = ReeEngine::kKernel;
    reference.engine = ReeEngine::kReference;
    auto p = CheckReeDefinability(g, s, planned);
    auto a = CheckReeDefinability(g, s, kernel);
    auto b = CheckReeDefinability(g, s, reference);
    ASSERT_TRUE(p.ok()) << "seed " << seed;
    ASSERT_TRUE(a.ok()) << "seed " << seed;
    ASSERT_TRUE(b.ok()) << "seed " << seed;
    EXPECT_EQ(p.value().verdict, a.value().verdict) << "seed " << seed;
    EXPECT_EQ(p.value().verdict, b.value().verdict) << "seed " << seed;
    EXPECT_EQ(p.value().levels_used, a.value().levels_used)
        << "seed " << seed;
    EXPECT_EQ(p.value().monoid_size, a.value().monoid_size)
        << "seed " << seed;
    EXPECT_EQ(p.value().monoid_size, b.value().monoid_size)
        << "seed " << seed;
  }
}

TEST(ReeDiff, PlannedFallsBackWhenValuesRepeat) {
  // Repeated data values (ρ not injective) disable the diagonal kernel;
  // the planned engine must transparently match the kernel path.
  for (std::uint64_t seed = 1; seed <= 6; seed++) {
    DataGraph g = RandomDataGraph({.num_nodes = 10,
                                   .num_labels = 1,
                                   .num_data_values = 2,
                                   .edge_percent = 8,
                                   .seed = seed});
    BinaryRelation s = RandomRelation(10, 10, seed * 5 + 3);
    ReeDefinabilityOptions planned, kernel;
    planned.max_monoid_size = kernel.max_monoid_size = 20'000;
    planned.engine = ReeEngine::kPlanned;
    kernel.engine = ReeEngine::kKernel;
    auto p = CheckReeDefinability(g, s, planned);
    auto a = CheckReeDefinability(g, s, kernel);
    ASSERT_TRUE(p.ok()) << "seed " << seed;
    ASSERT_TRUE(a.ok()) << "seed " << seed;
    EXPECT_EQ(p.value().verdict, a.value().verdict) << "seed " << seed;
    EXPECT_EQ(p.value().monoid_size, a.value().monoid_size)
        << "seed " << seed;
  }
}

TEST(ReeDiff, DiagonalRestrictOverloadsAgree) {
  // On an injective-ρ graph the diagonal forms are definitionally equal to
  // the masked and per-bit restrictions, on arbitrary relations.
  for (std::uint64_t seed = 1; seed <= 8; seed++) {
    DataGraph g = DistinctValuesGraph(12, seed);
    ValueClassMasks masks(g);
    ASSERT_TRUE(masks.AllSingletons()) << "seed " << seed;
    BinaryRelation r = RandomRelation(12, 35, seed + 200);
    EXPECT_EQ(r.EqRestrictDiagonal(), r.EqRestrict(g)) << "seed " << seed;
    EXPECT_EQ(r.EqRestrictDiagonal(), r.EqRestrict(masks))
        << "seed " << seed;
    EXPECT_EQ(r.NeqRestrictDiagonal(), r.NeqRestrict(g)) << "seed " << seed;
    EXPECT_EQ(r.NeqRestrictDiagonal(), r.NeqRestrict(masks))
        << "seed " << seed;
  }
}

TEST(ReeDiff, SmallRelationBoundary) {
  // n = 8 is the last packed SmallRelation width, n = 9 the first rowized
  // one; both sides of the boundary must agree with the reference engine.
  for (std::size_t n : {8, 9}) {
    for (std::uint64_t seed = 1; seed <= 4; seed++) {
      DataGraph g = RandomDataGraph({.num_nodes = n,
                                     .num_labels = 1,
                                     .num_data_values = 2,
                                     .edge_percent = 10,
                                     .seed = seed});
      BinaryRelation s = RandomRelation(n, 12, seed * 9 + 4);
      ReeDefinabilityOptions fast, reference;
      fast.max_monoid_size = reference.max_monoid_size = 20'000;
      reference.engine = ReeEngine::kReference;
      auto a = CheckReeDefinability(g, s, fast);
      auto b = CheckReeDefinability(g, s, reference);
      ASSERT_TRUE(a.ok()) << "n " << n << " seed " << seed;
      ASSERT_TRUE(b.ok()) << "n " << n << " seed " << seed;
      EXPECT_EQ(a.value().verdict, b.value().verdict)
          << "n " << n << " seed " << seed;
      EXPECT_EQ(a.value().monoid_size, b.value().monoid_size)
          << "n " << n << " seed " << seed;
    }
  }
}

TEST(ReeDiff, RestrictOverloadsAgree) {
  // The rowized EqRestrict/NeqRestrict must equal the per-bit originals on
  // arbitrary relations, not only monoid elements.
  for (std::uint64_t seed = 1; seed <= 10; seed++) {
    DataGraph g = RandomDataGraph({.num_nodes = 12,
                                   .num_labels = 2,
                                   .num_data_values = 3,
                                   .edge_percent = 30,
                                   .seed = seed});
    ValueClassMasks masks(g);
    BinaryRelation r = RandomRelation(12, 35, seed + 100);
    EXPECT_EQ(r.EqRestrict(g), r.EqRestrict(masks)) << "seed " << seed;
    EXPECT_EQ(r.NeqRestrict(g), r.NeqRestrict(masks)) << "seed " << seed;
  }
}

// --- Relation backends: dense vs sparse vs blocked, bit-identical --------

/// The pair list of a dense relation, row-major (the canonical order every
/// adaptive representation builds from).
std::vector<std::pair<NodeId, NodeId>> PairsOf(const BinaryRelation& r) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (NodeId u = 0; u < r.num_nodes(); u++) {
    for (NodeId v = 0; v < r.num_nodes(); v++) {
      if (r.Test(u, v)) {
        pairs.emplace_back(u, v);
      }
    }
  }
  return pairs;
}

constexpr RelationBackend kAllBackends[] = {RelationBackend::kDense,
                                            RelationBackend::kSparse,
                                            RelationBackend::kBlocked};

TEST(RelationBackendDiff, KRemIdenticalAcrossBackendsAndThreads) {
  // Every physical representation of the same pair set must produce the
  // dense checker's exact result — verdict, exploration count, witnesses —
  // at every thread count. Identity is pinned via max_tuples, never byte
  // budgets: the stores charge their actual (representation-specific)
  // allocations, so a byte budget would trip at different points.
  for (std::uint64_t seed = 1; seed <= 16; seed++) {
    RandomCase c = MakeCase(seed);
    KRemDefinabilityOptions options;
    options.max_tuples = 20'000;
    auto dense = CheckKRemDefinability(c.graph, c.relation, c.k, options);
    ASSERT_TRUE(dense.ok()) << "seed " << seed;
    for (RelationBackend backend : kAllBackends) {
      AdaptiveRelation adaptive = AdaptiveRelation::FromPairs(
          c.graph.NumNodes(), PairsOf(c.relation), backend);
      ASSERT_EQ(adaptive.backend(), backend) << "seed " << seed;
      for (std::size_t threads : {1, 4}) {
        KRemDefinabilityOptions parallel = options;
        parallel.num_threads = threads;
        auto r = CheckKRemDefinability(c.graph, adaptive, c.k, parallel);
        ASSERT_TRUE(r.ok())
            << "seed " << seed << " backend "
            << RelationBackendName(backend) << " threads " << threads;
        ExpectSameKRemResult(dense.value(), r.value(), seed);
      }
    }
  }
}

TEST(KRemDiff, SparseFrontierStoreMatchesDenseStore) {
  // The frontier-streaming tuple store explores the same canonical order
  // as the dense bitset store, so forcing each one over the same instance
  // must agree exactly — including under the sparse store's
  // ignore-engine/threads contract.
  for (std::uint64_t seed = 1; seed <= 16; seed++) {
    RandomCase c = MakeCase(seed);
    KRemDefinabilityOptions dense_store, sparse_store;
    dense_store.max_tuples = sparse_store.max_tuples = 20'000;
    dense_store.tuple_store = KRemTupleStore::kDense;
    sparse_store.tuple_store = KRemTupleStore::kSparseFrontier;
    auto a = CheckKRemDefinability(c.graph, c.relation, c.k, dense_store);
    auto b = CheckKRemDefinability(c.graph, c.relation, c.k, sparse_store);
    ASSERT_TRUE(a.ok()) << "seed " << seed;
    ASSERT_TRUE(b.ok()) << "seed " << seed;
    ExpectSameKRemResult(a.value(), b.value(), seed);
    // engine/num_threads must be no-ops on the sparse-frontier path.
    KRemDefinabilityOptions sparse_threads = sparse_store;
    sparse_threads.num_threads = 4;
    sparse_threads.engine = KRemEngine::kReference;
    auto t = CheckKRemDefinability(c.graph, c.relation, c.k, sparse_threads);
    ASSERT_TRUE(t.ok()) << "seed " << seed;
    ExpectSameKRemResult(a.value(), t.value(), seed);
  }
}

TEST(KRemDiff, SparseFrontierMaxTuplesTripsIdentically) {
  // A max_tuples trip is representation-independent (unlike byte budgets),
  // so both stores must stop with the same partial verdict.
  RandomCase c = MakeCase(2);
  KRemDefinabilityOptions dense_store, sparse_store;
  dense_store.max_tuples = sparse_store.max_tuples = 3;
  dense_store.tuple_store = KRemTupleStore::kDense;
  sparse_store.tuple_store = KRemTupleStore::kSparseFrontier;
  auto a = CheckKRemDefinability(c.graph, c.relation, c.k, dense_store);
  auto b = CheckKRemDefinability(c.graph, c.relation, c.k, sparse_store);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().verdict, b.value().verdict);
  EXPECT_EQ(a.value().tuples_explored, b.value().tuples_explored);
}

TEST(RelationBackendDiff, ReeIdenticalAcrossBackends) {
  // The level algorithm's semantic interner makes the blocked-relation run
  // reproduce the dense run exactly: same verdict, levels, monoid size,
  // and the same defining expression when one exists.
  for (std::uint64_t seed = 1; seed <= 16; seed++) {
    RandomCase c = MakeCase(seed);
    ReeDefinabilityOptions options;
    options.max_monoid_size = 20'000;
    auto dense = CheckReeDefinability(c.graph, c.relation, options);
    ASSERT_TRUE(dense.ok()) << "seed " << seed;
    for (RelationBackend backend : kAllBackends) {
      AdaptiveRelation adaptive = AdaptiveRelation::FromPairs(
          c.graph.NumNodes(), PairsOf(c.relation), backend);
      auto r = CheckReeDefinability(c.graph, adaptive, options);
      ASSERT_TRUE(r.ok())
          << "seed " << seed << " backend " << RelationBackendName(backend);
      EXPECT_EQ(dense.value().verdict, r.value().verdict)
          << "seed " << seed << " backend " << RelationBackendName(backend);
      EXPECT_EQ(dense.value().levels_used, r.value().levels_used)
          << "seed " << seed << " backend " << RelationBackendName(backend);
      EXPECT_EQ(dense.value().monoid_size, r.value().monoid_size)
          << "seed " << seed << " backend " << RelationBackendName(backend);
      if (dense.value().verdict == DefinabilityVerdict::kDefinable &&
          !c.relation.Empty()) {
        EXPECT_EQ(ReeToString(dense.value().defining_expression),
                  ReeToString(r.value().defining_expression))
            << "seed " << seed << " backend "
            << RelationBackendName(backend);
      }
    }
  }
}

TEST(RelationBackendDiff, UcrdpqIdenticalAcrossBackends) {
  // Pair-list seeding iterates row-major — the order FromBinary produces —
  // so verdicts, seeds_tried, and any violation witness all coincide.
  for (std::uint64_t seed = 1; seed <= 10; seed++) {
    RandomCase c = MakeCase(seed);
    UcrdpqDefinabilityOptions options;
    auto dense = CheckUcrdpqDefinability(c.graph, c.relation, options);
    ASSERT_TRUE(dense.ok()) << "seed " << seed;
    for (RelationBackend backend : kAllBackends) {
      AdaptiveRelation adaptive = AdaptiveRelation::FromPairs(
          c.graph.NumNodes(), PairsOf(c.relation), backend);
      auto r = CheckUcrdpqDefinability(c.graph, adaptive, options);
      ASSERT_TRUE(r.ok())
          << "seed " << seed << " backend " << RelationBackendName(backend);
      EXPECT_EQ(dense.value().verdict, r.value().verdict)
          << "seed " << seed << " backend " << RelationBackendName(backend);
      EXPECT_EQ(dense.value().seeds_tried, r.value().seeds_tried)
          << "seed " << seed << " backend " << RelationBackendName(backend);
      EXPECT_EQ(dense.value().violated_tuple.has_value(),
                r.value().violated_tuple.has_value())
          << "seed " << seed;
      if (dense.value().violated_tuple.has_value() &&
          r.value().violated_tuple.has_value()) {
        EXPECT_EQ(*dense.value().violated_tuple, *r.value().violated_tuple)
            << "seed " << seed;
      }
    }
  }
}

TEST(RelationBackendDiff, RpqIdenticalAcrossBackends) {
  for (std::uint64_t seed = 1; seed <= 12; seed++) {
    RandomCase c = MakeCase(seed);
    KRemDefinabilityOptions options;
    options.max_tuples = 20'000;
    auto dense = CheckRpqDefinability(c.graph, c.relation, options);
    ASSERT_TRUE(dense.ok()) << "seed " << seed;
    for (RelationBackend backend : kAllBackends) {
      AdaptiveRelation adaptive = AdaptiveRelation::FromPairs(
          c.graph.NumNodes(), PairsOf(c.relation), backend);
      auto r = CheckRpqDefinability(c.graph, adaptive, options);
      ASSERT_TRUE(r.ok())
          << "seed " << seed << " backend " << RelationBackendName(backend);
      EXPECT_EQ(dense.value().verdict, r.value().verdict)
          << "seed " << seed << " backend " << RelationBackendName(backend);
      EXPECT_EQ(dense.value().witness_words, r.value().witness_words)
          << "seed " << seed << " backend " << RelationBackendName(backend);
      EXPECT_EQ(dense.value().empty_relation_witness,
                r.value().empty_relation_witness)
          << "seed " << seed;
    }
  }
}

// --- Storage backends: resident vs mmap must be bit-identical -----------

/// Round-trips `graph` through a binary container and returns the mapped
/// zero-copy view (the shared_ptr keeps the mapping alive).
std::shared_ptr<const DataGraph> MapThroughContainer(const DataGraph& graph,
                                                     std::uint64_t seed) {
  std::string path = ::testing::TempDir() + "gqd_diff_" +
                     std::to_string(seed) + ".gqdg";
  Status written = WriteGraphContainer(graph, path);
  EXPECT_TRUE(written.ok()) << written;
  auto mapped = GraphStore::OpenContainer(path);
  EXPECT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_EQ(mapped.value().info.backend, GraphBackend::kMapped);
  return mapped.value().graph;
}

TEST(StorageDiff, KRemVerdictsIdenticalAcrossBackends) {
  // The checkers read the graph only through the DataGraph accessors, so a
  // zero-copy mapped view must produce the exact result of the resident
  // parse — verdicts, exploration counts and witnesses — at every thread
  // count and on both engines.
  for (std::uint64_t seed = 1; seed <= 12; seed++) {
    RandomCase c = MakeCase(seed);
    auto mapped = MapThroughContainer(c.graph, seed);
    ASSERT_NE(mapped, nullptr);
    for (std::size_t threads : {1, 4}) {
      for (KRemEngine engine : {KRemEngine::kKernel, KRemEngine::kReference}) {
        KRemDefinabilityOptions options;
        options.max_tuples = 20'000;
        options.num_threads = threads;
        options.engine = engine;
        auto resident = CheckKRemDefinability(c.graph, c.relation, c.k,
                                              options);
        auto view = CheckKRemDefinability(*mapped, c.relation, c.k, options);
        ASSERT_TRUE(resident.ok()) << "seed " << seed;
        ASSERT_TRUE(view.ok()) << "seed " << seed;
        ExpectSameKRemResult(resident.value(), view.value(), seed);
      }
    }
  }
}

TEST(StorageDiff, ReeVerdictsIdenticalAcrossBackends) {
  for (std::uint64_t seed = 1; seed <= 12; seed++) {
    RandomCase c = MakeCase(seed);
    auto mapped = MapThroughContainer(c.graph, seed + 100);
    ASSERT_NE(mapped, nullptr);
    ReeDefinabilityOptions options;
    options.max_monoid_size = 20'000;
    auto resident = CheckReeDefinability(c.graph, c.relation, options);
    auto view = CheckReeDefinability(*mapped, c.relation, options);
    ASSERT_TRUE(resident.ok()) << "seed " << seed;
    ASSERT_TRUE(view.ok()) << "seed " << seed;
    EXPECT_EQ(resident.value().verdict, view.value().verdict)
        << "seed " << seed;
    EXPECT_EQ(resident.value().levels_used, view.value().levels_used)
        << "seed " << seed;
    EXPECT_EQ(resident.value().monoid_size, view.value().monoid_size)
        << "seed " << seed;
    // A synthesized expression evaluates identically over both backends.
    if (resident.value().verdict == DefinabilityVerdict::kDefinable &&
        !c.relation.Empty()) {
      EXPECT_EQ(EvaluateRee(*mapped, resident.value().defining_expression),
                c.relation)
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace gqd
