// Unit tests for REE: parser, printer, membership — including the paper's
// Example 8 and the e3 expression of Example 12.

#include <gtest/gtest.h>

#include <sstream>

#include "common/interner.h"
#include "graph/data_path.h"
#include "ree/ast.h"
#include "ree/membership.h"
#include "ree/parser.h"

namespace gqd {
namespace {

StringInterner AbLabels() {
  StringInterner labels;
  labels.Intern("a");
  labels.Intern("b");
  return labels;
}

DataPath Path(const StringInterner& labels, const std::string& text) {
  DataPath p;
  std::istringstream is(text);
  std::string token;
  bool expect_value = true;
  while (is >> token) {
    if (expect_value) {
      p.values.push_back(static_cast<ValueId>(std::stoul(token)));
    } else {
      p.letters.push_back(*labels.Find(token));
    }
    expect_value = !expect_value;
  }
  return p;
}

TEST(ReeParser, ParsesPaperExpressions) {
  // Example 8: ((a)≠ · (b)≠)≠
  EXPECT_TRUE(ParseRee("((a)!= (b)!=)!=").ok());
  // Example 12: e3 = (a · (a)= · a)=
  EXPECT_TRUE(ParseRee("(a (a)= a)=").ok());
}

TEST(ReeParser, RejectsMalformed) {
  EXPECT_FALSE(ParseRee("").ok());
  EXPECT_FALSE(ParseRee("(a").ok());
  EXPECT_FALSE(ParseRee("a !").ok());
  EXPECT_FALSE(ParseRee("| a").ok());
}

TEST(ReePrinter, RoundTrip) {
  StringInterner labels = AbLabels();
  std::vector<DataPath> probes = {
      DataPath::Unit(0),
      Path(labels, "0 a 0"),
      Path(labels, "0 a 1"),
      Path(labels, "0 a 1 b 0"),
      Path(labels, "0 a 1 b 2"),
      Path(labels, "0 a 1 a 1 a 0"),
  };
  for (const char* text : {"((a)!= (b)!=)!=", "(a (a)= a)=", "a+ | b",
                           "(a | b)= (a)=", "a* b="}) {
    auto e1 = ParseRee(text);
    ASSERT_TRUE(e1.ok()) << text << ": " << e1.status();
    std::string printed = ReeToString(e1.value());
    auto e2 = ParseRee(printed);
    ASSERT_TRUE(e2.ok()) << text << " -> " << printed;
    for (const DataPath& p : probes) {
      EXPECT_EQ(ReeMatches(e1.value(), p, labels),
                ReeMatches(e2.value(), p, labels))
          << text << " vs " << printed;
    }
  }
}

TEST(ReeMembership, EpsilonAndLetter) {
  StringInterner labels = AbLabels();
  ReePtr eps = ParseRee("eps").ValueOrDie();
  EXPECT_TRUE(ReeMatches(eps, DataPath::Unit(5), labels));
  EXPECT_FALSE(ReeMatches(eps, Path(labels, "5 a 5"), labels));
  ReePtr a = ParseRee("a").ValueOrDie();
  EXPECT_TRUE(ReeMatches(a, Path(labels, "1 a 2"), labels));
  EXPECT_FALSE(ReeMatches(a, Path(labels, "1 b 2"), labels));
  EXPECT_FALSE(ReeMatches(a, DataPath::Unit(1), labels));
}

TEST(ReeMembership, EqAndNeqRestrictEndpoints) {
  StringInterner labels = AbLabels();
  ReePtr eq = ParseRee("(a a)=").ValueOrDie();
  EXPECT_TRUE(ReeMatches(eq, Path(labels, "3 a 9 a 3"), labels));
  EXPECT_FALSE(ReeMatches(eq, Path(labels, "3 a 9 a 4"), labels));
  ReePtr neq = ParseRee("(a a)!=").ValueOrDie();
  EXPECT_FALSE(ReeMatches(neq, Path(labels, "3 a 9 a 3"), labels));
  EXPECT_TRUE(ReeMatches(neq, Path(labels, "3 a 9 a 4"), labels));
}

TEST(ReeMembership, Example8AllThreeDistinct) {
  // ((a)≠ (b)≠)≠ : d1 a d2 b d3 with d1≠d2, d2≠d3, d1≠d3.
  StringInterner labels = AbLabels();
  ReePtr e = ParseRee("((a)!= (b)!=)!=").ValueOrDie();
  EXPECT_TRUE(ReeMatches(e, Path(labels, "1 a 2 b 3"), labels));
  EXPECT_FALSE(ReeMatches(e, Path(labels, "1 a 1 b 3"), labels));
  EXPECT_FALSE(ReeMatches(e, Path(labels, "1 a 2 b 2"), labels));
  EXPECT_FALSE(ReeMatches(e, Path(labels, "1 a 2 b 1"), labels));
}

TEST(ReeMembership, Example12E3) {
  // e3 = (a (a)= a)= matches w5 = 0a1a1a0, rejects w6 = 3a1a1a0 and
  // w7 = 1a2a3a1 (Example 12).
  StringInterner labels = AbLabels();
  ReePtr e3 = ParseRee("(a (a)= a)=").ValueOrDie();
  EXPECT_TRUE(ReeMatches(e3, Path(labels, "0 a 1 a 1 a 0"), labels));
  EXPECT_FALSE(ReeMatches(e3, Path(labels, "3 a 1 a 1 a 0"), labels));
  EXPECT_FALSE(ReeMatches(e3, Path(labels, "1 a 2 a 3 a 1"), labels));
}

TEST(ReeMembership, PlusIterates) {
  StringInterner labels = AbLabels();
  ReePtr e = ParseRee("((a)=)+").ValueOrDie();
  // Each a-step must repeat its start value.
  EXPECT_TRUE(ReeMatches(e, Path(labels, "2 a 2 a 2"), labels));
  EXPECT_FALSE(ReeMatches(e, Path(labels, "2 a 2 a 3"), labels));
  EXPECT_FALSE(ReeMatches(e, DataPath::Unit(2), labels));
}

TEST(ReeMembership, StarSugar) {
  StringInterner labels = AbLabels();
  ReePtr e = ParseRee("a*").ValueOrDie();
  EXPECT_TRUE(ReeMatches(e, DataPath::Unit(0), labels));
  EXPECT_TRUE(ReeMatches(e, Path(labels, "0 a 1 a 2"), labels));
  EXPECT_FALSE(ReeMatches(e, Path(labels, "0 b 1"), labels));
}

TEST(ReeMembership, AutomorphismInvariance) {
  // Fact 10 instance: REE cannot distinguish automorphic paths.
  StringInterner labels = AbLabels();
  for (const char* text :
       {"((a)!= (b)!=)!=", "(a (a)= a)=", "(a a)= | (a b)!=", "a+"}) {
    ReePtr e = ParseRee(text).ValueOrDie();
    DataPath w1 = Path(labels, "0 a 1 b 0 a 2");
    DataPath w2 = Path(labels, "7 a 3 b 7 a 9");  // automorphic image
    EXPECT_EQ(ReeMatches(e, w1, labels), ReeMatches(e, w2, labels)) << text;
  }
}

TEST(ReeMembership, UnknownLetterMatchesNothing) {
  StringInterner labels = AbLabels();
  ReePtr e = ParseRee("zz").ValueOrDie();
  EXPECT_FALSE(ReeMatches(e, Path(labels, "0 a 1"), labels));
}

}  // namespace
}  // namespace gqd
