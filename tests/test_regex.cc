// Unit tests for the regex substrate: parser, printer, NFA, DFA.

#include <gtest/gtest.h>

#include "common/interner.h"
#include "regex/ast.h"
#include "regex/nfa.h"
#include "regex/parser.h"

namespace gqd {
namespace {

/// Compiles `text` over alphabet {a, b, c} and returns (nfa, interner).
struct Compiled {
  StringInterner labels;
  Nfa nfa;
};

Compiled Compile(const std::string& text) {
  Compiled out;
  out.labels.Intern("a");
  out.labels.Intern("b");
  out.labels.Intern("c");
  auto regex = ParseRegex(text);
  EXPECT_TRUE(regex.ok()) << regex.status();
  out.nfa = CompileRegex(regex.value(), &out.labels);
  return out;
}

std::vector<std::uint32_t> Word(const Compiled& c, const std::string& letters) {
  std::vector<std::uint32_t> word;
  for (char ch : letters) {
    word.push_back(*c.labels.Find(std::string(1, ch)));
  }
  return word;
}

TEST(RegexParser, ParsesAtoms) {
  EXPECT_TRUE(ParseRegex("a").ok());
  EXPECT_TRUE(ParseRegex("eps").ok());
  EXPECT_TRUE(ParseRegex("'$'").ok());
  EXPECT_TRUE(ParseRegex("(a)").ok());
}

TEST(RegexParser, RejectsMalformed) {
  EXPECT_FALSE(ParseRegex("").ok());
  EXPECT_FALSE(ParseRegex("(a").ok());
  EXPECT_FALSE(ParseRegex("a)").ok());
  EXPECT_FALSE(ParseRegex("|a").ok());
  EXPECT_FALSE(ParseRegex("*").ok());
  EXPECT_FALSE(ParseRegex("'unterminated").ok());
}

TEST(RegexParser, PrecedenceUnionBelowConcat) {
  auto e = ParseRegex("a b | c").ValueOrDie();
  EXPECT_EQ(e->kind, RegexKind::kUnion);
  auto f = ParseRegex("a (b | c)").ValueOrDie();
  EXPECT_EQ(f->kind, RegexKind::kConcat);
}

TEST(RegexParser, PostfixBindsTightest) {
  auto e = ParseRegex("a b*").ValueOrDie();
  ASSERT_EQ(e->kind, RegexKind::kConcat);
  EXPECT_EQ(e->children[1]->kind, RegexKind::kStar);
}

TEST(RegexPrinter, RoundTripsThroughParser) {
  for (const char* text :
       {"a", "a b", "a | b", "(a | b) c*", "a+ (b | eps)", "'$' a* '$'"}) {
    auto e1 = ParseRegex(text).ValueOrDie();
    auto e2 = ParseRegex(RegexToString(e1));
    ASSERT_TRUE(e2.ok()) << text << " -> " << RegexToString(e1);
    // Compare languages on a small alphabet via DFA equivalence.
    StringInterner labels;
    labels.Intern("a");
    labels.Intern("b");
    labels.Intern("c");
    labels.Intern("$");
    Nfa n1 = CompileRegex(e1, &labels);
    Nfa n2 = CompileRegex(e2.value(), &labels);
    EXPECT_TRUE(DfaEquivalent(Determinize(n1, labels.size()),
                              Determinize(n2, labels.size())))
        << text;
  }
}

TEST(Nfa, LetterAndConcat) {
  Compiled c = Compile("a b");
  EXPECT_TRUE(c.nfa.Accepts(Word(c, "ab")));
  EXPECT_FALSE(c.nfa.Accepts(Word(c, "a")));
  EXPECT_FALSE(c.nfa.Accepts(Word(c, "ba")));
  EXPECT_FALSE(c.nfa.Accepts(Word(c, "abb")));
}

TEST(Nfa, Union) {
  Compiled c = Compile("a | b c");
  EXPECT_TRUE(c.nfa.Accepts(Word(c, "a")));
  EXPECT_TRUE(c.nfa.Accepts(Word(c, "bc")));
  EXPECT_FALSE(c.nfa.Accepts(Word(c, "b")));
}

TEST(Nfa, StarAcceptsEmpty) {
  Compiled c = Compile("a*");
  EXPECT_TRUE(c.nfa.Accepts({}));
  EXPECT_TRUE(c.nfa.Accepts(Word(c, "aaa")));
  EXPECT_FALSE(c.nfa.Accepts(Word(c, "ab")));
}

TEST(Nfa, PlusRejectsEmpty) {
  Compiled c = Compile("a+");
  EXPECT_FALSE(c.nfa.Accepts({}));
  EXPECT_TRUE(c.nfa.Accepts(Word(c, "a")));
  EXPECT_TRUE(c.nfa.Accepts(Word(c, "aaaa")));
}

TEST(Nfa, Epsilon) {
  Compiled c = Compile("eps");
  EXPECT_TRUE(c.nfa.Accepts({}));
  EXPECT_FALSE(c.nfa.Accepts(Word(c, "a")));
}

TEST(Nfa, UnknownLetterIsDead) {
  Compiled c = Compile("z");
  EXPECT_FALSE(c.nfa.Accepts({}));
  EXPECT_FALSE(c.nfa.Accepts(Word(c, "a")));
}

TEST(Nfa, GadgetShapedExpression) {
  // The Theorem 25 edge label (a | b)* c — "anything then a terminator".
  Compiled c = Compile("(a | b)* c");
  EXPECT_TRUE(c.nfa.Accepts(Word(c, "c")));
  EXPECT_TRUE(c.nfa.Accepts(Word(c, "ababbac")));
  EXPECT_FALSE(c.nfa.Accepts(Word(c, "abcb")));
}

TEST(Dfa, MatchesNfaOnEnumeratedWords) {
  Compiled c = Compile("(a b | c)* a");
  Dfa dfa = Determinize(c.nfa, c.labels.size());
  // Exhaustively compare on all words of length <= 6 over {a, b, c}.
  std::vector<std::vector<std::uint32_t>> words = {{}};
  for (int len = 0; len < 6; len++) {
    std::size_t start = 0, end = words.size();
    std::vector<std::vector<std::uint32_t>> next;
    for (std::size_t i = start; i < end; i++) {
      if (words[i].size() != static_cast<std::size_t>(len)) {
        continue;
      }
      for (std::uint32_t l = 0; l < 3; l++) {
        auto w = words[i];
        w.push_back(l);
        next.push_back(w);
      }
    }
    words.insert(words.end(), next.begin(), next.end());
  }
  for (const auto& w : words) {
    EXPECT_EQ(c.nfa.Accepts(w), dfa.Accepts(w));
  }
}

TEST(Dfa, EquivalenceDetectsDifference) {
  Compiled c1 = Compile("a*");
  Compiled c2 = Compile("a+");
  Dfa d1 = Determinize(c1.nfa, 3);
  Dfa d2 = Determinize(c2.nfa, 3);
  EXPECT_FALSE(DfaEquivalent(d1, d2));
  EXPECT_TRUE(DfaEquivalent(d1, d1));
}

TEST(ReBuilders, AnyOfBuildsUnion) {
  RegexPtr e = re::AnyOf({"a", "b", "c"});
  StringInterner labels;
  labels.Intern("a");
  labels.Intern("b");
  labels.Intern("c");
  Nfa nfa = CompileRegex(e, &labels);
  for (std::uint32_t l = 0; l < 3; l++) {
    EXPECT_TRUE(nfa.Accepts({l}));
  }
  EXPECT_FALSE(nfa.Accepts({0, 1}));
}

}  // namespace
}  // namespace gqd
