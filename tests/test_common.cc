// Unit tests for the common substrate: Status/Result, DynamicBitset,
// StringInterner.

#include <gtest/gtest.h>

#include "common/bitset.h"
#include "common/interner.h"
#include "common/status.h"

namespace gqd {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(Status, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return Status::InvalidArgument("odd");
  }
  return x / 2;
}

Result<int> Quarter(int x) {
  GQD_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(3).ok());
}

TEST(DynamicBitset, SetTestReset) {
  DynamicBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_FALSE(b.Test(0));
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_EQ(b.Count(), 3u);
  b.Reset(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(DynamicBitset, FindNextWalksSetBits) {
  DynamicBitset b(200);
  for (std::size_t i : {3u, 63u, 64u, 150u}) {
    b.Set(i);
  }
  std::vector<std::size_t> seen;
  for (std::size_t i = b.FindNext(0); i < b.size(); i = b.FindNext(i + 1)) {
    seen.push_back(i);
  }
  EXPECT_EQ(seen, (std::vector<std::size_t>{3, 63, 64, 150}));
}

TEST(DynamicBitset, FindNextSparseRowIteration) {
  // The kernel inner loops iterate sparse successor rows with
  // FindNext(i + 1); exercise the word-skip path: long all-zero gaps,
  // adjacent bits across a word boundary, and a lone bit in the last word.
  DynamicBitset b(1024);
  const std::vector<std::size_t> bits = {0, 1, 63, 64, 65, 511, 512, 1023};
  for (std::size_t i : bits) {
    b.Set(i);
  }
  std::vector<std::size_t> seen;
  for (std::size_t i = b.FindNext(0); i < b.size(); i = b.FindNext(i + 1)) {
    seen.push_back(i);
  }
  EXPECT_EQ(seen, bits);
  // Restarting mid-gap lands on the next set bit, not a word boundary.
  EXPECT_EQ(b.FindNext(66), 511u);
  EXPECT_EQ(b.FindNext(513), 1023u);
}

TEST(DynamicBitset, FindNextEmptyAndPastTheEnd) {
  DynamicBitset empty(256);
  EXPECT_EQ(empty.FindNext(0), empty.size());
  DynamicBitset b(128);
  b.Set(5);
  EXPECT_EQ(b.FindNext(6), b.size());     // nothing after the only bit
  EXPECT_EQ(b.FindNext(128), b.size());   // from == size
  EXPECT_EQ(b.FindNext(1000), b.size());  // from > size stays clamped
}

TEST(DynamicBitset, SetAlgebra) {
  DynamicBitset a(100), b(100);
  a.Set(1);
  a.Set(50);
  b.Set(50);
  b.Set(99);
  DynamicBitset u = a | b;
  EXPECT_EQ(u.Count(), 3u);
  DynamicBitset i = a & b;
  EXPECT_EQ(i.Count(), 1u);
  EXPECT_TRUE(i.Test(50));
  EXPECT_TRUE(i.IsSubsetOf(a));
  EXPECT_TRUE(i.IsSubsetOf(b));
  EXPECT_TRUE(a.IsSubsetOf(u));
  EXPECT_FALSE(u.IsSubsetOf(a));
  EXPECT_TRUE(a.Intersects(b));
  DynamicBitset d = a;
  d -= b;
  EXPECT_TRUE(d.Test(1));
  EXPECT_FALSE(d.Test(50));
}

TEST(DynamicBitset, NoneAnyClear) {
  DynamicBitset b(10);
  EXPECT_TRUE(b.None());
  EXPECT_FALSE(b.Any());
  b.Set(7);
  EXPECT_TRUE(b.Any());
  b.Clear();
  EXPECT_TRUE(b.None());
}

TEST(DynamicBitset, HashDistinguishesAndAgrees) {
  DynamicBitset a(100), b(100);
  a.Set(10);
  b.Set(10);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_EQ(a, b);
  b.Set(11);
  EXPECT_NE(a, b);
  EXPECT_NE(a.Hash(), b.Hash());  // not guaranteed in general, holds here
}

TEST(DynamicBitset, OrderIsTotal) {
  DynamicBitset a(10), b(10);
  a.Set(1);
  b.Set(2);
  EXPECT_TRUE((a < b) != (b < a));
  EXPECT_FALSE(a < a);
}

TEST(DynamicBitset, NonWordMultipleSizes) {
  // Sizes straddling word boundaries: 1, 63, 64, 65, 127, 129. The last
  // word's unused high bits must never leak into Count/None/equality.
  for (std::size_t size : {1u, 63u, 64u, 65u, 127u, 129u}) {
    DynamicBitset b(size);
    EXPECT_TRUE(b.None()) << size;
    b.Set(size - 1);
    EXPECT_EQ(b.Count(), 1u) << size;
    EXPECT_TRUE(b.Test(size - 1)) << size;
    EXPECT_EQ(b.FindNext(0), size - 1) << size;
    EXPECT_EQ(b.FindNext(size), size) << size;  // past-the-end stays put
    DynamicBitset c(size);
    c.Set(size - 1);
    EXPECT_EQ(b, c) << size;
    EXPECT_EQ(b.Hash(), c.Hash()) << size;
  }
}

TEST(DynamicBitset, FindNextAcrossWordBoundaries) {
  DynamicBitset b(256);
  b.Set(63);
  b.Set(128);
  b.Set(255);
  EXPECT_EQ(b.FindNext(0), 63u);
  EXPECT_EQ(b.FindNext(64), 128u);   // start exactly on a word boundary
  EXPECT_EQ(b.FindNext(129), 255u);  // skip an entirely-zero word
  EXPECT_EQ(b.FindNext(256), 256u);
  DynamicBitset empty(192);
  EXPECT_EQ(empty.FindNext(0), 192u);
}

TEST(DynamicBitset, UnionWithReportsChangedBits) {
  DynamicBitset a(130), b(130);
  a.Set(0);
  a.Set(129);
  b.Set(0);
  EXPECT_FALSE(a.UnionWith(b));  // b ⊆ a: nothing changes
  b.Set(64);
  EXPECT_TRUE(a.UnionWith(b));  // bit 64 is new
  EXPECT_TRUE(a.Test(64));
  EXPECT_FALSE(a.UnionWith(b));  // idempotent afterwards
  EXPECT_EQ(a.Count(), 3u);
}

TEST(DynamicBitset, UnionWithSelfNeverChanges) {
  DynamicBitset a(77);
  a.Set(3);
  a.Set(76);
  EXPECT_FALSE(a.UnionWith(a));
  EXPECT_EQ(a.Count(), 2u);
}

TEST(DynamicBitset, HashIsStableAcrossMutationHistory) {
  // Hash depends only on current contents, not on how they were reached.
  DynamicBitset direct(100);
  direct.Set(10);
  direct.Set(70);
  DynamicBitset via_mutation(100);
  via_mutation.Set(10);
  via_mutation.Set(42);
  via_mutation.Set(70);
  via_mutation.Reset(42);
  EXPECT_EQ(direct, via_mutation);
  EXPECT_EQ(direct.Hash(), via_mutation.Hash());
  // Same bits at a different size must not collide with trivial equality:
  // the size participates in the hash seed.
  DynamicBitset other_size(128);
  other_size.Set(10);
  other_size.Set(70);
  EXPECT_NE(direct.Hash(), other_size.Hash());
}

TEST(StringInterner, RoundTrips) {
  StringInterner interner;
  std::uint32_t a = interner.Intern("alpha");
  std::uint32_t b = interner.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.Intern("alpha"), a);
  EXPECT_EQ(interner.NameOf(a), "alpha");
  EXPECT_EQ(interner.NameOf(b), "beta");
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.Find("alpha"), std::optional<std::uint32_t>(a));
  EXPECT_EQ(interner.Find("gamma"), std::nullopt);
}

TEST(StringInterner, IdsAreDense) {
  StringInterner interner;
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(interner.Intern("s" + std::to_string(i)),
              static_cast<std::uint32_t>(i));
  }
}

}  // namespace
}  // namespace gqd
