// Tests for defining-query synthesis: every synthesized query must
// round-trip through its evaluator to exactly the input relation.

#include <gtest/gtest.h>

#include "eval/query.h"
#include "eval/rem_eval.h"
#include "eval/ree_eval.h"
#include "eval/rpq_eval.h"
#include "graph/examples.h"
#include "graph/generators.h"
#include "synthesis/synthesis.h"

namespace gqd {
namespace {

TEST(Synthesis, RpqForS1RoundTrips) {
  DataGraph g = Figure1Graph();
  BinaryRelation s1 = Figure1S1(g);
  auto query = SynthesizeRpqQuery(g, s1);
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_TRUE(query.value().has_value());
  EXPECT_EQ(EvaluateRpq(g, *query.value()), s1)
      << RegexToString(*query.value());
}

TEST(Synthesis, RpqForS2IsNull) {
  DataGraph g = Figure1Graph();
  auto query = SynthesizeRpqQuery(g, Figure1S2(g));
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_FALSE(query.value().has_value());
}

TEST(Synthesis, KRemForS2RoundTrips) {
  DataGraph g = Figure1Graph();
  BinaryRelation s2 = Figure1S2(g);
  auto query = SynthesizeKRemQuery(g, s2, 2);
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_TRUE(query.value().has_value());
  EXPECT_EQ(EvaluateRem(g, *query.value()), s2)
      << RemToString(*query.value());
}

TEST(Synthesis, KRemForS3RoundTrips) {
  DataGraph g = Figure1Graph();
  BinaryRelation s3 = Figure1S3(g);
  auto query = SynthesizeKRemQuery(g, s3, 2);
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_TRUE(query.value().has_value());
  EXPECT_EQ(EvaluateRem(g, *query.value()), s3);
}

TEST(Synthesis, KRemForEmptyRelation) {
  DataGraph g = Figure1Graph();
  auto query = SynthesizeKRemQuery(g, BinaryRelation(g.NumNodes()), 1);
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE(query.value().has_value());
  EXPECT_TRUE(EvaluateRem(g, *query.value()).Empty());
}

TEST(Synthesis, ReeForS3RoundTrips) {
  DataGraph g = Figure1Graph();
  BinaryRelation s3 = Figure1S3(g);
  auto query = SynthesizeReeQuery(g, s3);
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_TRUE(query.value().has_value());
  EXPECT_EQ(EvaluateRee(g, *query.value()), s3)
      << ReeToString(*query.value());
}

TEST(Synthesis, ReeForS2IsNull) {
  DataGraph g = Figure1Graph();
  auto query = SynthesizeReeQuery(g, Figure1S2(g));
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_FALSE(query.value().has_value());
}

TEST(Synthesis, CanonicalUcrdpqDefinesExample14Relation) {
  // {(v1, v2)} is UCRDPQ-definable but not RDPQ-definable; the canonical
  // query must evaluate to exactly it.
  DataGraph g = Figure1Graph();
  Figure1Nodes n = Figure1NodeIds(g);
  TupleRelation s(2);
  s.Insert({n.v1, n.v2});
  auto query = SynthesizeCanonicalUcrdpq(g, s);
  ASSERT_TRUE(query.ok()) << query.status();
  auto result = EvaluateUcrdpq(g, query.value());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value(), s) << result.value().ToString(g);
}

TEST(Synthesis, CanonicalUcrdpqOnNonDefinableYieldsHomClosure) {
  // For a non-definable S the canonical query evaluates to the closure of
  // S under homomorphisms — a strict superset.
  DataGraph g = Figure1Graph();
  Figure1Nodes n = Figure1NodeIds(g);
  TupleRelation s(2);
  s.Insert({n.v1, n.v4});  // half of S2; not definable on Figure 1
  auto query = SynthesizeCanonicalUcrdpq(g, s);
  ASSERT_TRUE(query.ok()) << query.status();
  auto result = EvaluateUcrdpq(g, query.value());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result.value().Contains({n.v1, n.v4}));
  EXPECT_GE(result.value().size(), s.size());
}

TEST(Synthesis, CanonicalUcrdpqRejectsEmptyRelation) {
  DataGraph g = Figure1Graph();
  EXPECT_FALSE(SynthesizeCanonicalUcrdpq(g, TupleRelation(2)).ok());
}

class SynthesisRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SynthesisRoundTrip, AllSynthesizersRoundTripOnRandomGraphs) {
  DataGraph g = RandomDataGraph({.num_nodes = 4,
                                 .num_labels = 2,
                                 .num_data_values = 2,
                                 .edge_percent = 30,
                                 .seed = GetParam()});
  // Use relations that are definable by construction: evaluations of
  // queries from each language.
  BinaryRelation from_rpq =
      EvaluateRpq(g, re::Concat({re::Letter("a"), re::Letter("b")}));
  auto rpq = SynthesizeRpqQuery(g, from_rpq);
  if (rpq.ok() && rpq.value().has_value()) {
    EXPECT_EQ(EvaluateRpq(g, *rpq.value()), from_rpq);
  }

  BinaryRelation from_ree =
      EvaluateRee(g, ree::Eq(ree::Plus(ree::Letter("a"))));
  auto ree_q = SynthesizeReeQuery(g, from_ree);
  ASSERT_TRUE(ree_q.ok());
  ASSERT_TRUE(ree_q.value().has_value()) << "seed " << GetParam();
  EXPECT_EQ(EvaluateRee(g, *ree_q.value()), from_ree);

  BinaryRelation from_rem = EvaluateRem(
      g, rem::Bind({0}, rem::Concat({rem::Letter("a"),
                                     rem::Test(rem::Letter("b"),
                                               cond::RegisterEq(0))})));
  auto rem_q = SynthesizeKRemQuery(g, from_rem, 1);
  ASSERT_TRUE(rem_q.ok());
  ASSERT_TRUE(rem_q.value().has_value()) << "seed " << GetParam();
  EXPECT_EQ(EvaluateRem(g, *rem_q.value()), from_rem);

  // Canonical UCRDPQ on the homomorphism-closed version of a seed tuple.
  if (!from_rem.Empty()) {
    TupleRelation s(2);
    auto pair = from_rem.Pairs()[0];
    s.Insert({pair.first, pair.second});
    auto query = SynthesizeCanonicalUcrdpq(g, s);
    ASSERT_TRUE(query.ok());
    auto first = EvaluateUcrdpq(g, query.value());
    ASSERT_TRUE(first.ok());
    // The evaluation is the hom-closure of s; running synthesis again on
    // the closure must be a fixpoint (it IS definable).
    auto query2 = SynthesizeCanonicalUcrdpq(g, first.value());
    ASSERT_TRUE(query2.ok());
    auto second = EvaluateUcrdpq(g, query2.value());
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(first.value(), second.value()) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, SynthesisRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace gqd
