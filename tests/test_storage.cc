// Storage subsystem tests: the binary graph container round-trips the text
// format byte-identically, corrupted containers fail with a clean Status
// (never a crash), the streaming generators emit the same graph through
// either sink, and the GraphRegistry dedupes by content fingerprint.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "graph/data_graph.h"
#include "graph/generators.h"
#include "graph/serialization.h"
#include "runtime/graph_registry.h"
#include "storage/container.h"
#include "storage/format.h"
#include "storage/graph_store.h"
#include "storage/metrics.h"

namespace gqd {
namespace {

/// Scratch path unique to the running test case: ctest runs each TEST as
/// its own process in parallel, and two processes sharing one scratch file
/// can SIGBUS each other (one truncates what the other has mmap'd).
std::string TestPath(const std::string& name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "gqd_storage_" + info->test_suite_name() +
         "_" + info->name() + "_" + name;
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

std::string ReadBytes(const std::string& path) {
  auto bytes = ReadFileToString(path);
  EXPECT_TRUE(bytes.ok()) << bytes.status();
  return bytes.ok() ? bytes.value() : std::string();
}

/// A spread of random graphs: empty-ish, sparse, dense, many values.
std::vector<RandomGraphOptions> PropertySweep() {
  std::vector<RandomGraphOptions> sweep;
  for (std::uint64_t seed = 1; seed <= 8; seed++) {
    RandomGraphOptions options;
    options.num_nodes = 1 + static_cast<std::size_t>(seed) * 3;
    options.num_labels = 1 + seed % 3;
    options.num_data_values = 1 + seed % 5;
    options.edge_percent = seed % 2 == 0 ? 35 : 10;
    options.seed = seed;
    sweep.push_back(options);
  }
  return sweep;
}

// --- Round-trip properties ----------------------------------------------

TEST(ContainerRoundTrip, TextConvertMapSerializeIsIdentity) {
  for (const RandomGraphOptions& options : PropertySweep()) {
    DataGraph graph = RandomDataGraph(options);
    const std::string text = WriteGraphText(graph);
    const std::string path = TestPath("roundtrip.gqdg");

    ASSERT_TRUE(WriteGraphContainer(graph, path).ok());
    OpenOptions deep;
    deep.validate = true;
    auto mapped = GraphStore::OpenContainer(path, deep);
    ASSERT_TRUE(mapped.ok()) << mapped.status();
    EXPECT_EQ(mapped.value().info.backend, GraphBackend::kMapped);

    // The mapped view serializes to the exact text of the original graph...
    EXPECT_EQ(WriteGraphText(*mapped.value().graph), text)
        << "seed " << options.seed;
    EXPECT_EQ(mapped.value().info.fingerprint,
              FingerprintToHex(FingerprintGraphText(graph)));

    // ...and re-serializing the mapped view reproduces the container
    // byte-for-byte (the writer is deterministic given the intern order the
    // container itself fixes).
    const std::string again = TestPath("roundtrip2.gqdg");
    ASSERT_TRUE(WriteGraphContainer(*mapped.value().graph, again).ok());
    EXPECT_EQ(ReadBytes(path), ReadBytes(again)) << "seed " << options.seed;
  }
}

TEST(ContainerRoundTrip, NamedNodesSurviveConversion) {
  DataGraph graph;
  graph.AddLabel("a");
  ValueId x = graph.AddDataValue("x");
  graph.AddNode(x, "alice");
  graph.AddNode(x, "bob");
  graph.AddNode(x);  // anonymous
  graph.AddEdge(0, 0, 1);
  graph.AddEdge(1, 0, 2);

  const std::string path = TestPath("named.gqdg");
  ASSERT_TRUE(WriteGraphContainer(graph, path).ok());
  auto mapped = GraphStore::OpenContainer(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_EQ(WriteGraphText(*mapped.value().graph), WriteGraphText(graph));
  // Name lookups work against the mapped name table, including the
  // synthesized "#<id>" form for the anonymous node.
  auto alice = mapped.value().graph->FindNode("alice");
  ASSERT_TRUE(alice.ok());
  EXPECT_EQ(alice.value(), 0u);
  auto anon = mapped.value().graph->FindNode("#2");
  ASSERT_TRUE(anon.ok());
  EXPECT_EQ(anon.value(), 2u);
}

TEST(ContainerRoundTrip, TextParseAndContainerAgreeOnFingerprint) {
  DataGraph graph = RandomDataGraph({});
  const std::string text_path = TestPath("agree.graph");
  const std::string bin_path = TestPath("agree.gqdg");
  WriteBytes(text_path, WriteGraphText(graph));
  ASSERT_TRUE(WriteGraphContainer(graph, bin_path).ok());

  auto from_text = GraphStore::OpenFile(text_path);
  auto from_bin = GraphStore::OpenFile(bin_path);
  ASSERT_TRUE(from_text.ok()) << from_text.status();
  ASSERT_TRUE(from_bin.ok()) << from_bin.status();
  EXPECT_EQ(from_text.value().info.backend, GraphBackend::kResident);
  EXPECT_EQ(from_bin.value().info.backend, GraphBackend::kMapped);
  EXPECT_EQ(from_text.value().info.fingerprint,
            from_bin.value().info.fingerprint);
  EXPECT_EQ(WriteGraphText(*from_text.value().graph),
            WriteGraphText(*from_bin.value().graph));
}

// --- Corruption: clean Status, never a crash ----------------------------

class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RandomGraphOptions options;
    options.num_nodes = 24;
    options.edge_percent = 25;
    graph_ = RandomDataGraph(options);
    path_ = TestPath("corrupt.gqdg");
    ASSERT_TRUE(WriteGraphContainer(graph_, path_).ok());
    bytes_ = ReadBytes(path_);
    ASSERT_GT(bytes_.size(), sizeof(GraphContainerHeader));
  }

  /// Writes a mutated copy and returns the open status (deep validation).
  Status OpenMutated(const std::string& bytes) {
    const std::string mutated = TestPath("corrupt_mut.gqdg");
    WriteBytes(mutated, bytes);
    OpenOptions deep;
    deep.validate = true;
    return GraphStore::OpenContainer(mutated, deep).status();
  }

  DataGraph graph_;
  std::string path_;
  std::string bytes_;
};

TEST_F(CorruptionTest, BadMagicIsInvalidArgument) {
  std::string bytes = bytes_;
  bytes[0] = 'X';
  Status status = OpenMutated(bytes);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status;
}

TEST_F(CorruptionTest, UnsupportedVersionIsInvalidArgument) {
  std::string bytes = bytes_;
  bytes[4] = 99;
  Status status = OpenMutated(bytes);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status;
}

TEST_F(CorruptionTest, TruncationIsIOError) {
  // Every truncation point must fail cleanly: inside the header, inside a
  // section, and one byte short.
  for (std::size_t keep :
       {std::size_t{10}, sizeof(GraphContainerHeader) + 3,
        bytes_.size() / 2, bytes_.size() - 1}) {
    Status status = OpenMutated(bytes_.substr(0, keep));
    EXPECT_EQ(status.code(), StatusCode::kIOError)
        << "kept " << keep << ": " << status;
  }
}

TEST_F(CorruptionTest, PayloadFlipFailsDeepValidation) {
  // Flip one bit in every payload byte position (sampled) — deep validation
  // must reject each mutant; the structural open may reject it too, but
  // must never crash.
  std::size_t rejected = 0;
  for (std::size_t at = sizeof(GraphContainerHeader); at < bytes_.size();
       at += 7) {
    std::string bytes = bytes_;
    bytes[at] = static_cast<char>(bytes[at] ^ 0x20);
    Status status = OpenMutated(bytes);
    if (!status.ok()) {
      rejected++;
    }
  }
  // The checksum covers every payload byte, so all flips must be caught.
  EXPECT_EQ(rejected,
            (bytes_.size() - sizeof(GraphContainerHeader) + 6) / 7);
}

TEST_F(CorruptionTest, HeaderFieldFuzzNeverCrashes) {
  // Bit-flip every header byte; any Status (or even a surviving open for
  // bits the checks don't constrain, e.g. reserved) is fine — the point is
  // memory safety under ASan.
  for (std::size_t at = 0; at < sizeof(GraphContainerHeader); at++) {
    std::string bytes = bytes_;
    bytes[at] = static_cast<char>(bytes[at] ^ 0xFF);
    (void)OpenMutated(bytes);
  }
}

TEST_F(CorruptionTest, ValidateGraphContainerReportsCorruption) {
  EXPECT_TRUE(ValidateGraphContainer(path_).ok());
  std::string bytes = bytes_;
  bytes[bytes.size() - 1] = static_cast<char>(bytes[bytes.size() - 1] ^ 1);
  const std::string mutated = TestPath("validate_mut.gqdg");
  WriteBytes(mutated, bytes);
  EXPECT_FALSE(ValidateGraphContainer(mutated).ok());
}

TEST(ContainerErrors, MissingAndEmptyFiles) {
  EXPECT_FALSE(GraphStore::OpenContainer(TestPath("nope.gqdg")).ok());
  const std::string empty = TestPath("empty.gqdg");
  WriteBytes(empty, "");
  EXPECT_FALSE(GraphStore::OpenContainer(empty).ok());
}

// --- Generators stream identically into either sink ---------------------

TEST(GeneratorSinks, GridBuilderMatchesResident) {
  GridOptions options;
  options.rows = 13;
  options.cols = 7;
  options.seed = 5;

  DataGraphSink resident;
  GenerateGrid(options, &resident);
  DataGraph expected = resident.Take();

  GraphContainerBuilder builder;
  GenerateGrid(options, &builder);
  const std::string path = TestPath("grid_sink.gqdg");
  ASSERT_TRUE(builder.WriteToFile(path).ok());
  OpenOptions deep;
  deep.validate = true;
  auto mapped = GraphStore::OpenContainer(path, deep);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_EQ(WriteGraphText(*mapped.value().graph), WriteGraphText(expected));
  EXPECT_EQ(FingerprintToHex(builder.fingerprint()),
            mapped.value().info.fingerprint);
}

TEST(GeneratorSinks, ScaleFreeBuilderMatchesResident) {
  ScaleFreeOptions options;
  options.num_nodes = 300;
  options.edges_per_node = 3;
  options.seed = 11;

  DataGraphSink resident;
  GenerateScaleFree(options, &resident);
  DataGraph expected = resident.Take();
  EXPECT_EQ(expected.NumNodes(), options.num_nodes);
  EXPECT_GT(expected.NumEdges(), options.num_nodes);  // attachment happened

  GraphContainerBuilder builder;
  GenerateScaleFree(options, &builder);
  const std::string path = TestPath("sf_sink.gqdg");
  ASSERT_TRUE(builder.WriteToFile(path).ok());
  auto mapped = GraphStore::OpenContainer(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_EQ(WriteGraphText(*mapped.value().graph), WriteGraphText(expected));
}

TEST(GeneratorSinks, DeterministicForFixedSeed) {
  ScaleFreeOptions options;
  options.num_nodes = 100;
  options.seed = 42;
  GraphContainerBuilder a;
  GenerateScaleFree(options, &a);
  GraphContainerBuilder b;
  GenerateScaleFree(options, &b);
  const std::string path_a = TestPath("det_a.gqdg");
  const std::string path_b = TestPath("det_b.gqdg");
  ASSERT_TRUE(a.WriteToFile(path_a).ok());
  ASSERT_TRUE(b.WriteToFile(path_b).ok());
  EXPECT_EQ(ReadBytes(path_a), ReadBytes(path_b));
}

// --- Registry dedupe ----------------------------------------------------

TEST(RegistryDedupe, IdenticalContentSharesOneCopy) {
  DataGraph graph = RandomDataGraph({});
  const std::string text = WriteGraphText(graph);

  GraphRegistry registry;
  auto first = registry.Load("one", text);
  auto second = registry.Load("two", text);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().fingerprint, second.value().fingerprint);
  // Same shared copy, not a second parse.
  EXPECT_EQ(first.value().graph.get(), second.value().graph.get());
  EXPECT_EQ(registry.size(), 2u);  // both names resolve
  auto got = registry.Get("two");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().graph.get(), first.value().graph.get());
}

TEST(RegistryDedupe, MappedAndResidentDedupeTogether) {
  DataGraph graph = RandomDataGraph({});
  const std::string text_path = TestPath("dedupe.graph");
  const std::string bin_path = TestPath("dedupe.gqdg");
  WriteBytes(text_path, WriteGraphText(graph));
  ASSERT_TRUE(WriteGraphContainer(graph, bin_path).ok());

  GraphRegistry registry;
  auto resident = registry.LoadFile("text", text_path);
  auto mapped = registry.LoadFile("bin", bin_path);
  ASSERT_TRUE(resident.ok()) << resident.status();
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  // Identical content: the second load (the container) shares the first
  // copy, and the mapping it briefly held is dropped.
  EXPECT_EQ(mapped.value().graph.get(), resident.value().graph.get());
  EXPECT_EQ(mapped.value().info.backend, GraphBackend::kResident);
}

TEST(RegistryDedupe, DifferentContentStaysSeparate) {
  RandomGraphOptions a_options;
  RandomGraphOptions b_options;
  b_options.seed = 2;
  GraphRegistry registry;
  auto a = registry.Load("a", WriteGraphText(RandomDataGraph(a_options)));
  auto b = registry.Load("b", WriteGraphText(RandomDataGraph(b_options)));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value().fingerprint, b.value().fingerprint);
  EXPECT_NE(a.value().graph.get(), b.value().graph.get());
}

// --- Bookkeeping --------------------------------------------------------

TEST(StorageCountersTest, OpenAndWriteAdvanceCounters) {
  auto& counters = StorageCounters::Instance();
  std::uint64_t writes_before = counters.containers_written.load();
  std::uint64_t opens_before = counters.containers_opened.load();

  DataGraph graph = RandomDataGraph({});
  const std::string path = TestPath("counters.gqdg");
  ASSERT_TRUE(WriteGraphContainer(graph, path).ok());
  ASSERT_TRUE(GraphStore::OpenContainer(path).ok());

  EXPECT_GT(counters.containers_written.load(), writes_before);
  EXPECT_GT(counters.containers_opened.load(), opens_before);
}

TEST(StorageInfoTest, MappedGraphReportsCosts) {
  GridOptions options;
  options.rows = 20;
  options.cols = 20;
  GraphContainerBuilder builder;
  GenerateGrid(options, &builder);
  const std::string path = TestPath("info.gqdg");
  ASSERT_TRUE(builder.WriteToFile(path).ok());

  auto mapped = GraphStore::OpenContainer(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  const GraphStoreInfo& info = mapped.value().info;
  EXPECT_EQ(info.source_bytes, ReadBytes(path).size());
  // The zero-copy view owns only interner strings and view bookkeeping, a
  // small fraction of the mapped file.
  EXPECT_LT(info.resident_bytes, info.source_bytes);
  EXPECT_EQ(info.fingerprint.size(), 16u);
}

}  // namespace
}  // namespace gqd
