// Additional cross-cutting coverage: ternary UCRDPQ relations, witness
// minimality of the macro-tuple BFS, serialization fuzzing, and CRDPQ
// evaluation corner cases.

#include <gtest/gtest.h>

#include "definability/krem_definability.h"
#include "definability/ucrdpq_definability.h"
#include "eval/query.h"
#include "eval/ree_eval.h"
#include "graph/data_path.h"
#include "graph/examples.h"
#include "graph/generators.h"
#include "graph/serialization.h"
#include "ree/parser.h"
#include "regex/parser.h"

namespace gqd {
namespace {

TEST(UcrdpqArity3, QueryResultsAreDefinable) {
  // Any UCRDPQ result is closed under homomorphisms (Lemma 34, 1 ⇒ 2), so
  // feeding a query's own result back into the checker must say
  // "definable" — here with a ternary relation on a small graph.
  DataGraph g = RandomDataGraph({.num_nodes = 5,
                                 .num_labels = 2,
                                 .num_data_values = 2,
                                 .edge_percent = 30,
                                 .seed = 4});
  Crdpq q;
  q.answer_variables = {"x", "y", "z"};
  q.atoms = {{"x", "y", ReePtr(ParseRee("(a)!=").ValueOrDie())},
             {"y", "z", RegexPtr(ParseRegex("a | b").ValueOrDie())}};
  auto result = EvaluateCrdpq(g, q);
  ASSERT_TRUE(result.ok()) << result.status();
  if (result.value().empty()) {
    GTEST_SKIP() << "query empty on this graph";
  }
  Ucrdpq u{{q}};
  auto tuples = EvaluateUcrdpq(g, u);
  ASSERT_TRUE(tuples.ok());
  auto definable = CheckUcrdpqDefinability(g, tuples.value());
  ASSERT_TRUE(definable.ok()) << definable.status();
  EXPECT_EQ(definable.value().verdict, DefinabilityVerdict::kDefinable);
}

TEST(UcrdpqArity3, DroppingATupleBreaksDefinabilityOrNot) {
  // Removing one tuple from a hom-closed ternary relation usually breaks
  // closure; whatever the verdict, a "not definable" answer must come with
  // a valid certificate.
  DataGraph g = RandomDataGraph({.num_nodes = 5,
                                 .num_labels = 2,
                                 .num_data_values = 2,
                                 .edge_percent = 30,
                                 .seed = 4});
  Crdpq q;
  q.answer_variables = {"x", "y", "z"};
  q.atoms = {{"x", "y", RegexPtr(ParseRegex("a").ValueOrDie())},
             {"y", "z", RegexPtr(ParseRegex("a | b").ValueOrDie())}};
  auto tuples = EvaluateCrdpq(g, q);
  ASSERT_TRUE(tuples.ok());
  if (tuples.value().size() < 2) {
    GTEST_SKIP() << "need at least two tuples";
  }
  TupleRelation smaller(3);
  bool skipped_one = false;
  for (const NodeTuple& t : tuples.value().tuples()) {
    if (!skipped_one) {
      skipped_one = true;
      continue;
    }
    smaller.Insert(t);
  }
  auto verdict = CheckUcrdpqDefinability(g, smaller);
  ASSERT_TRUE(verdict.ok());
  if (verdict.value().verdict == DefinabilityVerdict::kNotDefinable) {
    ASSERT_TRUE(verdict.value().violating_homomorphism.has_value());
    EXPECT_TRUE(IsDataGraphHomomorphism(
        g, *verdict.value().violating_homomorphism));
  }
}

TEST(WitnessMinimality, BfsWitnessesAreShortestOnFigure1) {
  // The macro-tuple search is a BFS over block sequences, so a returned
  // witness for ⟨u,v⟩ has minimal length among ALL basic k-REM witnesses.
  // Cross-check against the shortest connecting path: a witness can never
  // be shorter than the shortest u→v path, and for S2 the only connecting
  // paths have exactly 3 letters.
  DataGraph g = Figure1Graph();
  auto result = CheckKRemDefinability(g, Figure1S2(g), 2);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().verdict, DefinabilityVerdict::kDefinable);
  for (const KRemWitness& witness : result.value().witnesses) {
    std::size_t shortest_path = SIZE_MAX;
    for (const DataPath& p :
         EnumerateConnectingPaths(g, witness.from, witness.to, 6)) {
      shortest_path = std::min(shortest_path, p.Length());
    }
    EXPECT_GE(witness.blocks.size(), shortest_path);
    EXPECT_EQ(witness.blocks.size(), 3u);  // S2 pairs connect only via aaa
  }
}

TEST(SerializationFuzz, RandomGraphsRoundTripExactly) {
  for (std::uint64_t seed = 1; seed <= 25; seed++) {
    DataGraph g = RandomDataGraph({.num_nodes = 3 + seed % 10,
                                   .num_labels = 1 + seed % 3,
                                   .num_data_values = 1 + seed % 4,
                                   .edge_percent = 20,
                                   .seed = seed});
    auto parsed = ReadGraphText(WriteGraphText(g));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(parsed.value().NumNodes(), g.NumNodes());
    EXPECT_EQ(parsed.value().NumEdges(), g.NumEdges());
    // The text format canonicalizes: data values no node uses are not
    // serialized (they cannot affect any semantics — only the induced
    // partition matters), so compare the parse→write fixpoint.
    auto reparsed = ReadGraphText(WriteGraphText(parsed.value()));
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(WriteGraphText(reparsed.value()),
              WriteGraphText(parsed.value()));
    // Node values' partition survives exactly.
    for (NodeId x = 0; x < g.NumNodes(); x++) {
      for (NodeId y = 0; y < g.NumNodes(); y++) {
        EXPECT_EQ(g.DataValueOf(x) == g.DataValueOf(y),
                  parsed.value().DataValueOf(x) ==
                      parsed.value().DataValueOf(y));
      }
    }
    // Relations round-trip against the parsed graph too.
    BinaryRelation s = RandomRelation(g.NumNodes(), 25, seed);
    auto relation = ReadRelationText(parsed.value(),
                                     WriteRelationText(g, s));
    ASSERT_TRUE(relation.ok());
    EXPECT_EQ(relation.value(), s);
  }
}

TEST(CrdpqCorners, SharedVariableInBothPositions) {
  // x -a-> x: self-loop atoms bind one variable at both ends.
  DataGraph g;
  g.AddLabel("a");
  g.AddDataValue("0");
  NodeId u = g.AddNodeWithValue("0", "u");
  NodeId v = g.AddNodeWithValue("0", "v");
  g.AddEdgeByName(u, "a", u);
  g.AddEdgeByName(u, "a", v);
  Crdpq q;
  q.answer_variables = {"x"};
  q.atoms = {{"x", "x", RegexPtr(ParseRegex("a").ValueOrDie())}};
  auto result = EvaluateCrdpq(g, q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 1u);
  EXPECT_TRUE(result.value().Contains({u}));
}

TEST(CrdpqCorners, UnsatisfiableAtomYieldsEmpty) {
  DataGraph g = Figure1Graph();
  Crdpq q;
  q.answer_variables = {"x", "y"};
  q.atoms = {{"x", "y", ReePtr(ParseRee("(eps)!=").ValueOrDie())}};
  auto result = EvaluateCrdpq(g, q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST(CrdpqCorners, DiamondJoinOrderIndependent) {
  // Ans(x,w) := x-a->y ∧ x-a->z ∧ y-b->w ∧ z-b->w, evaluated with two
  // different atom orders, must agree (join correctness).
  DataGraph g = RandomDataGraph({.num_nodes = 6,
                                 .num_labels = 2,
                                 .num_data_values = 2,
                                 .edge_percent = 30,
                                 .seed = 12});
  RegexPtr a = ParseRegex("a").ValueOrDie();
  RegexPtr b = ParseRegex("b").ValueOrDie();
  Crdpq q1;
  q1.answer_variables = {"x", "w"};
  q1.atoms = {{"x", "y", a}, {"x", "z", a}, {"y", "w", b}, {"z", "w", b}};
  Crdpq q2 = q1;
  std::reverse(q2.atoms.begin(), q2.atoms.end());
  auto r1 = EvaluateCrdpq(g, q1);
  auto r2 = EvaluateCrdpq(g, q2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1.value(), r2.value());
}

TEST(DataPathCorners, SingleNodeGraphEnumeration) {
  DataGraph g;
  g.AddLabel("a");
  g.AddDataValue("0");
  g.AddNodeWithValue("0", "only");
  auto paths = EnumerateConnectingPaths(g, 0, 0, 3);
  ASSERT_EQ(paths.size(), 1u);  // just the unit path
  EXPECT_EQ(paths[0].Length(), 0u);
}

}  // namespace
}  // namespace gqd
