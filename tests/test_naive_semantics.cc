// Cross-validation of the register-automaton compilation against the
// literal Definition-5 semantics: for a battery of REMs and every data
// path over small alphabets, the two implementations must agree.

#include <gtest/gtest.h>

#include "graph/data_path.h"
#include "rem/naive_semantics.h"
#include "rem/parser.h"
#include "rem/register_automaton.h"

namespace gqd {
namespace {

StringInterner AbLabels() {
  StringInterner labels;
  labels.Intern("a");
  labels.Intern("b");
  return labels;
}

/// All data paths with `letters` letters over values {0..max_value} and
/// the a/b alphabet.
std::vector<DataPath> AllPaths(std::size_t letters, ValueId max_value) {
  std::vector<DataPath> out;
  std::vector<DataPath> frontier;
  for (ValueId d = 0; d <= max_value; d++) {
    frontier.push_back(DataPath::Unit(d));
  }
  out = frontier;
  for (std::size_t step = 0; step < letters; step++) {
    std::vector<DataPath> next;
    for (const DataPath& p : frontier) {
      for (LabelId l = 0; l < 2; l++) {
        for (ValueId d = 0; d <= max_value; d++) {
          DataPath extended = p;
          extended.Append(l, d);
          next.push_back(extended);
        }
      }
    }
    out.insert(out.end(), next.begin(), next.end());
    frontier = std::move(next);
  }
  return out;
}

class NaiveSemanticsAgreement
    : public ::testing::TestWithParam<const char*> {};

TEST_P(NaiveSemanticsAgreement, MatchesRegisterAutomaton) {
  StringInterner labels = AbLabels();
  RemPtr e = ParseRem(GetParam()).ValueOrDie();
  for (const DataPath& w : AllPaths(3, 2)) {
    EXPECT_EQ(NaiveRemMatches(e, w, labels), RemMatches(e, w, &labels))
        << GetParam() << " on path with " << w.letters.size() << " letters";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Expressions, NaiveSemanticsAgreement,
    ::testing::Values(
        "eps",                              // unit
        "a",                                // single letter
        "a b",                              // concatenation
        "a | b",                            // union
        "a+",                               // iteration
        "$r1. a[r1=]",                      // Example 6, first
        "$r1. a[r1!=]",                     // inequality
        "$r1. a b[r1=]",                    // register across concat
        "($r1. a[r1=])+",                   // bind under iteration
        "$r1. (a | b)[r1=]",                // bind over union
        "$(r1,r2). a[r1= & r2=]",           // multi-register bind
        "$r1. a ($r2. b[r1!=])[r2=]",       // nested binds
        "a[r1!=]",                          // unbound register (⊥ ≠ d)
        "a[~T]",                            // unsatisfiable condition
        "($r1. a)+ b[r1=]",                 // last-iteration binding wins
        "$r1. a+ [r1=]"));                  // the movieLink pattern

TEST(NaiveSemantics, RebindingInsideplusUsesLatestValue) {
  // ($r1. a)+ b[r1=]: each iteration of the plus rebinds r1 to its own
  // first value, so the b-step must repeat the value at the start of the
  // LAST a-step.
  StringInterner labels = AbLabels();
  RemPtr e = ParseRem("($r1. a)+ b[r1=]").ValueOrDie();
  LabelId a = *labels.Find("a");
  LabelId b = *labels.Find("b");
  // 0 a 1 a 2 b 1 : last a-step starts at value 1 -> b target must be 1. ✓
  DataPath good{{0, 1, 2, 1}, {a, a, b}};
  // 0 a 1 a 2 b 0 : 0 was the FIRST iteration's binding — stale. ✗
  DataPath stale{{0, 1, 2, 0}, {a, a, b}};
  EXPECT_TRUE(NaiveRemMatches(e, good, labels));
  EXPECT_TRUE(RemMatches(e, good, &labels));
  EXPECT_FALSE(NaiveRemMatches(e, stale, labels));
  EXPECT_FALSE(RemMatches(e, stale, &labels));
}

}  // namespace
}  // namespace gqd
