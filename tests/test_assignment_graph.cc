// Unit tests for the k-assignment graph T_G (Definition 19).

#include <gtest/gtest.h>

#include "definability/assignment_graph.h"
#include "graph/examples.h"
#include "graph/generators.h"

namespace gqd {
namespace {

TEST(AssignmentGraph, StateCountIsNTimesDeltaPlusOnePowK) {
  DataGraph g = Figure1Graph();  // n = 10, δ = 4
  for (std::size_t k = 0; k <= 2; k++) {
    auto ag = AssignmentGraph::Build(g, k);
    ASSERT_TRUE(ag.ok()) << ag.status();
    std::size_t expected = 10;
    for (std::size_t i = 0; i < k; i++) {
      expected *= 5;  // δ + 1
    }
    EXPECT_EQ(ag.value().num_states(), expected) << "k = " << k;
  }
}

TEST(AssignmentGraph, InitialStateHasBottomAssignment) {
  DataGraph g = Figure1Graph();
  auto ag = AssignmentGraph::Build(g, 2).ValueOrDie();
  for (NodeId v = 0; v < g.NumNodes(); v++) {
    AgState s = ag.InitialState(v);
    EXPECT_EQ(ag.NodeOf(s), v);
    RegisterAssignment sigma = ag.AssignmentOf(s);
    ASSERT_EQ(sigma.size(), 2u);
    EXPECT_EQ(sigma[0], kEmptyRegister);
    EXPECT_EQ(sigma[1], kEmptyRegister);
  }
}

TEST(AssignmentGraph, SuccessorsFollowEdgesAndStoreSemantics) {
  // Line v0(7) -a-> v1(7) -a-> v2(9): storing at v0 then moving to v1
  // (same value) yields pattern bit set; moving on to v2 (different) does
  // not.
  DataGraph g;
  g.AddLabel("a");
  g.AddDataValue("7");
  g.AddDataValue("9");
  NodeId v0 = g.AddNodeWithValue("7", "v0");
  NodeId v1 = g.AddNodeWithValue("7", "v1");
  NodeId v2 = g.AddNodeWithValue("9", "v2");
  g.AddEdgeByName(v0, "a", v1);
  g.AddEdgeByName(v1, "a", v2);

  auto ag = AssignmentGraph::Build(g, 1).ValueOrDie();
  AgState start = ag.InitialState(v0);

  // Store into r1 (mask 1) and read the a-edge.
  const auto& successors = ag.SuccessorsOf(/*store_mask=*/1, /*label=*/0,
                                           start);
  ASSERT_EQ(successors.size(), 1u);
  EXPECT_EQ(ag.NodeOf(successors[0].state), v1);
  // σ' holds ρ(v0) = "7"; target v1 also has "7": pattern bit 0 set.
  EXPECT_EQ(successors[0].pattern, 1);
  RegisterAssignment sigma = ag.AssignmentOf(successors[0].state);
  EXPECT_EQ(sigma[0], g.DataValueOf(v0));

  // Continue without storing: v1 -> v2, register still "7", v2 is "9".
  const auto& next = ag.SuccessorsOf(/*store_mask=*/0, /*label=*/0,
                                     successors[0].state);
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(ag.NodeOf(next[0].state), v2);
  EXPECT_EQ(next[0].pattern, 0);

  // Without storing at v0: register stays ⊥, pattern 0 at v1.
  const auto& unstored = ag.SuccessorsOf(/*store_mask=*/0, /*label=*/0,
                                         start);
  ASSERT_EQ(unstored.size(), 1u);
  EXPECT_EQ(unstored[0].pattern, 0);
  EXPECT_EQ(ag.AssignmentOf(unstored[0].state)[0], kEmptyRegister);
}

TEST(AssignmentGraph, NoEdgesMeansNoSuccessors) {
  DataGraph g;
  g.AddLabel("a");
  g.AddDataValue("0");
  g.AddNodeWithValue("0", "only");
  auto ag = AssignmentGraph::Build(g, 1).ValueOrDie();
  EXPECT_TRUE(ag.SuccessorsOf(0, 0, ag.InitialState(0)).empty());
  EXPECT_TRUE(ag.SuccessorsOf(1, 0, ag.InitialState(0)).empty());
}

TEST(AssignmentGraph, RejectsTooManyRegisters) {
  DataGraph g = Figure1Graph();
  auto ag = AssignmentGraph::Build(g, 5);
  EXPECT_FALSE(ag.ok());
  EXPECT_EQ(ag.status().code(), StatusCode::kOutOfRange);
}

TEST(AssignmentGraph, RejectsHugeStateSpaces) {
  DataGraph g = RandomDataGraph({.num_nodes = 200,
                                 .num_labels = 1,
                                 .num_data_values = 30,
                                 .edge_percent = 5,
                                 .seed = 1});
  auto ag = AssignmentGraph::Build(g, 4);
  EXPECT_FALSE(ag.ok());
}

TEST(AssignmentGraph, KZeroHasSingletonAssignment) {
  DataGraph g = Figure1Graph();
  auto ag = AssignmentGraph::Build(g, 0).ValueOrDie();
  EXPECT_EQ(ag.num_states(), g.NumNodes());
  EXPECT_EQ(ag.num_patterns(), 1u);
  EXPECT_EQ(ag.num_store_masks(), 1u);
  EXPECT_TRUE(ag.AssignmentOf(ag.InitialState(3)).empty());
}

}  // namespace
}  // namespace gqd
