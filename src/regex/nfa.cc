#include "regex/nfa.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <queue>
#include <set>

namespace gqd {

namespace {

/// Incremental Thompson builder.
class NfaBuilder {
 public:
  NfaBuilder(StringInterner* labels, bool intern_new)
      : labels_(labels), intern_new_(intern_new) {}

  NfaState NewState() {
    letter_edges_.emplace_back();
    eps_edges_.emplace_back();
    return static_cast<NfaState>(letter_edges_.size() - 1);
  }

  void AddEps(NfaState from, NfaState to) { eps_edges_[from].push_back(to); }

  void AddLetter(NfaState from, const std::string& letter, NfaState to) {
    std::optional<std::uint32_t> id;
    if (intern_new_) {
      id = labels_->Intern(letter);
    } else {
      id = labels_->Find(letter);
    }
    if (id.has_value()) {
      letter_edges_[from].emplace_back(*id, to);
    }
    // Unknown letter + no interning: dead fragment, no transition added.
  }

  /// Builds the fragment for `node`; returns (entry, exit).
  std::pair<NfaState, NfaState> Build(const RegexPtr& node) {
    switch (node->kind) {
      case RegexKind::kEpsilon: {
        NfaState s = NewState();
        NfaState t = NewState();
        AddEps(s, t);
        return {s, t};
      }
      case RegexKind::kLetter: {
        NfaState s = NewState();
        NfaState t = NewState();
        AddLetter(s, node->letter, t);
        return {s, t};
      }
      case RegexKind::kUnion: {
        NfaState s = NewState();
        NfaState t = NewState();
        for (const RegexPtr& child : node->children) {
          auto [cs, ct] = Build(child);
          AddEps(s, cs);
          AddEps(ct, t);
        }
        return {s, t};
      }
      case RegexKind::kConcat: {
        assert(!node->children.empty());
        auto [entry, exit] = Build(node->children[0]);
        for (std::size_t i = 1; i < node->children.size(); i++) {
          auto [cs, ct] = Build(node->children[i]);
          AddEps(exit, cs);
          exit = ct;
        }
        return {entry, exit};
      }
      case RegexKind::kStar: {
        auto [cs, ct] = Build(node->children[0]);
        NfaState s = NewState();
        NfaState t = NewState();
        AddEps(s, cs);
        AddEps(ct, t);
        AddEps(s, t);
        AddEps(ct, cs);
        return {s, t};
      }
      case RegexKind::kPlus: {
        auto [cs, ct] = Build(node->children[0]);
        NfaState s = NewState();
        NfaState t = NewState();
        AddEps(s, cs);
        AddEps(ct, t);
        AddEps(ct, cs);
        return {s, t};
      }
    }
    assert(false && "unreachable");
    return {0, 0};
  }

  Nfa Finish(NfaState start, NfaState accept) {
    Nfa nfa;
    nfa.num_states = letter_edges_.size();
    nfa.start = start;
    nfa.accept = accept;
    nfa.letter_edges = std::move(letter_edges_);
    nfa.eps_edges = std::move(eps_edges_);
    return nfa;
  }

 private:
  StringInterner* labels_;
  bool intern_new_;
  std::vector<std::vector<std::pair<std::uint32_t, NfaState>>> letter_edges_;
  std::vector<std::vector<NfaState>> eps_edges_;
};

}  // namespace

std::vector<NfaState> Nfa::EpsilonClosure(std::vector<NfaState> states) const {
  std::vector<bool> seen(num_states, false);
  std::queue<NfaState> frontier;
  for (NfaState s : states) {
    if (!seen[s]) {
      seen[s] = true;
      frontier.push(s);
    }
  }
  while (!frontier.empty()) {
    NfaState s = frontier.front();
    frontier.pop();
    for (NfaState t : eps_edges[s]) {
      if (!seen[t]) {
        seen[t] = true;
        frontier.push(t);
      }
    }
  }
  std::vector<NfaState> closure;
  for (NfaState s = 0; s < num_states; s++) {
    if (seen[s]) {
      closure.push_back(s);
    }
  }
  return closure;
}

bool Nfa::Accepts(const std::vector<std::uint32_t>& word) const {
  std::vector<NfaState> current = EpsilonClosure({start});
  for (std::uint32_t letter : word) {
    std::vector<NfaState> next;
    for (NfaState s : current) {
      for (const auto& [label, target] : letter_edges[s]) {
        if (label == letter) {
          next.push_back(target);
        }
      }
    }
    current = EpsilonClosure(std::move(next));
    if (current.empty()) {
      return false;
    }
  }
  return std::binary_search(current.begin(), current.end(), accept);
}

Nfa CompileRegex(const RegexPtr& regex, StringInterner* labels,
                 bool intern_new_labels) {
  NfaBuilder builder(labels, intern_new_labels);
  auto [start, accept] = builder.Build(regex);
  return builder.Finish(start, accept);
}

bool Dfa::Accepts(const std::vector<std::uint32_t>& word) const {
  std::uint32_t state = start;
  for (std::uint32_t letter : word) {
    assert(letter < num_labels);
    state = next[state * num_labels + letter];
    if (state == kNoTransition) {
      return false;
    }
  }
  return accepting[state];
}

Dfa Determinize(const Nfa& nfa, std::size_t num_labels) {
  Dfa dfa;
  dfa.num_labels = num_labels;
  std::map<std::vector<NfaState>, std::uint32_t> ids;
  std::vector<std::vector<NfaState>> subsets;

  auto intern = [&](std::vector<NfaState> subset) {
    auto [it, inserted] =
        ids.emplace(subset, static_cast<std::uint32_t>(subsets.size()));
    if (inserted) {
      subsets.push_back(std::move(subset));
    }
    return it->second;
  };

  dfa.start = intern(nfa.EpsilonClosure({nfa.start}));
  for (std::uint32_t i = 0; i < subsets.size(); i++) {
    const std::vector<NfaState> subset = subsets[i];  // copy: vector grows
    dfa.accepting.push_back(
        std::binary_search(subset.begin(), subset.end(), nfa.accept));
    for (std::uint32_t label = 0; label < num_labels; label++) {
      std::vector<NfaState> moved;
      for (NfaState s : subset) {
        for (const auto& [edge_label, target] : nfa.letter_edges[s]) {
          if (edge_label == label) {
            moved.push_back(target);
          }
        }
      }
      std::uint32_t target_id;
      if (moved.empty()) {
        target_id = Dfa::kNoTransition;
      } else {
        target_id = intern(nfa.EpsilonClosure(std::move(moved)));
      }
      dfa.next.push_back(target_id);
    }
  }
  dfa.num_states = subsets.size();
  return dfa;
}

bool DfaEquivalent(const Dfa& a, const Dfa& b) {
  assert(a.num_labels == b.num_labels);
  // BFS over the product, treating kNoTransition as an explicit dead state.
  auto encode = [&](std::uint32_t sa, std::uint32_t sb) {
    std::uint64_t da = (sa == Dfa::kNoTransition) ? a.num_states : sa;
    std::uint64_t db = (sb == Dfa::kNoTransition) ? b.num_states : sb;
    return da * (b.num_states + 1) + db;
  };
  auto accepts_a = [&](std::uint32_t s) {
    return s != Dfa::kNoTransition && a.accepting[s];
  };
  auto accepts_b = [&](std::uint32_t s) {
    return s != Dfa::kNoTransition && b.accepting[s];
  };
  std::set<std::uint64_t> seen;
  std::queue<std::pair<std::uint32_t, std::uint32_t>> frontier;
  frontier.emplace(a.start, b.start);
  seen.insert(encode(a.start, b.start));
  while (!frontier.empty()) {
    auto [sa, sb] = frontier.front();
    frontier.pop();
    if (accepts_a(sa) != accepts_b(sb)) {
      return false;
    }
    for (std::uint32_t label = 0; label < a.num_labels; label++) {
      std::uint32_t ta = (sa == Dfa::kNoTransition)
                             ? Dfa::kNoTransition
                             : a.next[sa * a.num_labels + label];
      std::uint32_t tb = (sb == Dfa::kNoTransition)
                             ? Dfa::kNoTransition
                             : b.next[sb * b.num_labels + label];
      if (ta == Dfa::kNoTransition && tb == Dfa::kNoTransition) {
        continue;
      }
      if (seen.insert(encode(ta, tb)).second) {
        frontier.emplace(ta, tb);
      }
    }
  }
  return true;
}

}  // namespace gqd
