// Recursive-descent parser for standard regular expressions.

#ifndef GQD_REGEX_PARSER_H_
#define GQD_REGEX_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "regex/ast.h"

namespace gqd {

/// Parses the concrete syntax documented in regex/ast.h.
/// Returns InvalidArgument with position information on malformed input.
Result<RegexPtr> ParseRegex(std::string_view text);

}  // namespace gqd

#endif  // GQD_REGEX_PARSER_H_
