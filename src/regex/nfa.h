// Thompson NFA construction and basic automaton algorithms.
//
// NFAs serve three roles in the library: RPQ evaluation (product with the
// graph), word membership for tests, and — unusually — *graph gadget
// expansion* in the Theorem 25 reduction, where a regex-labelled edge is
// replaced by the NFA's states as fresh graph nodes.

#ifndef GQD_REGEX_NFA_H_
#define GQD_REGEX_NFA_H_

#include <cstdint>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "regex/ast.h"

namespace gqd {

/// NFA state index.
using NfaState = std::uint32_t;

/// A Thompson-constructed NFA with a single start and single accept state.
///
/// Letter transitions use label ids resolved against the interner passed to
/// CompileRegex; a letter unknown to the interner yields a fragment with no
/// transition (its language relative to that alphabet is empty), which is
/// the right semantics for RPQ evaluation.
struct Nfa {
  std::size_t num_states = 0;
  NfaState start = 0;
  NfaState accept = 0;
  /// letter_edges[s] = (label, target) pairs.
  std::vector<std::vector<std::pair<std::uint32_t, NfaState>>> letter_edges;
  /// eps_edges[s] = ε-successor states.
  std::vector<std::vector<NfaState>> eps_edges;

  /// ε-closure of a state set (in place, as a sorted unique vector).
  std::vector<NfaState> EpsilonClosure(std::vector<NfaState> states) const;

  /// True iff the NFA accepts the given word of label ids.
  bool Accepts(const std::vector<std::uint32_t>& word) const;
};

/// Compiles `regex` to a Thompson NFA, resolving letters via `labels`.
///
/// When `intern_new_labels` is true, letters not yet in the interner are
/// added (used when the regex drives graph construction); otherwise unknown
/// letters produce dead fragments.
Nfa CompileRegex(const RegexPtr& regex, StringInterner* labels,
                 bool intern_new_labels = false);

/// Deterministic automaton produced by subset construction.
struct Dfa {
  std::size_t num_states = 0;
  std::size_t num_labels = 0;
  std::uint32_t start = 0;
  std::vector<bool> accepting;
  /// next[state * num_labels + label]; num_states acts as the dead state
  /// marker (kNoTransition).
  std::vector<std::uint32_t> next;

  static constexpr std::uint32_t kNoTransition = 0xffffffffu;

  bool Accepts(const std::vector<std::uint32_t>& word) const;
};

/// Subset construction over an alphabet of `num_labels` labels.
Dfa Determinize(const Nfa& nfa, std::size_t num_labels);

/// Language equivalence of two DFAs over the same alphabet (product walk).
bool DfaEquivalent(const Dfa& a, const Dfa& b);

}  // namespace gqd

#endif  // GQD_REGEX_NFA_H_
