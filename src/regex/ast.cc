#include "regex/ast.h"

#include <cassert>
#include <sstream>

#include "common/syntax.h"

namespace gqd {

namespace re {

RegexPtr Epsilon() {
  auto node = std::make_shared<RegexNode>();
  node->kind = RegexKind::kEpsilon;
  return node;
}

RegexPtr Letter(std::string name) {
  auto node = std::make_shared<RegexNode>();
  node->kind = RegexKind::kLetter;
  node->letter = std::move(name);
  return node;
}

RegexPtr Union(std::vector<RegexPtr> operands) {
  assert(!operands.empty());
  if (operands.size() == 1) {
    return operands[0];
  }
  auto node = std::make_shared<RegexNode>();
  node->kind = RegexKind::kUnion;
  node->children = std::move(operands);
  return node;
}

RegexPtr Concat(std::vector<RegexPtr> operands) {
  if (operands.empty()) {
    return Epsilon();
  }
  if (operands.size() == 1) {
    return operands[0];
  }
  auto node = std::make_shared<RegexNode>();
  node->kind = RegexKind::kConcat;
  node->children = std::move(operands);
  return node;
}

RegexPtr Star(RegexPtr operand) {
  auto node = std::make_shared<RegexNode>();
  node->kind = RegexKind::kStar;
  node->children = {std::move(operand)};
  return node;
}

RegexPtr Plus(RegexPtr operand) {
  auto node = std::make_shared<RegexNode>();
  node->kind = RegexKind::kPlus;
  node->children = {std::move(operand)};
  return node;
}

RegexPtr AnyOf(const std::vector<std::string>& names) {
  std::vector<RegexPtr> letters;
  letters.reserve(names.size());
  for (const std::string& name : names) {
    letters.push_back(Letter(name));
  }
  return Union(std::move(letters));
}

}  // namespace re

namespace {

// Precedence: union (1) < concat (2) < postfix (3) < atoms (4).
int Precedence(RegexKind kind) {
  switch (kind) {
    case RegexKind::kUnion:
      return 1;
    case RegexKind::kConcat:
      return 2;
    case RegexKind::kEpsilon:
    case RegexKind::kLetter:
      return 4;
    default:
      return 3;
  }
}

void Render(const RegexPtr& node, int parent_precedence, std::ostream& os) {
  int self = Precedence(node->kind);
  bool parens = self < parent_precedence;
  if (parens) {
    os << "(";
  }
  switch (node->kind) {
    case RegexKind::kEpsilon:
      os << "eps";
      break;
    case RegexKind::kLetter:
      RenderLabelName(node->letter, os);
      break;
    case RegexKind::kUnion:
      for (std::size_t i = 0; i < node->children.size(); i++) {
        if (i > 0) {
          os << " | ";
        }
        Render(node->children[i], self, os);
      }
      break;
    case RegexKind::kConcat:
      for (std::size_t i = 0; i < node->children.size(); i++) {
        if (i > 0) {
          os << " ";
        }
        // Right operands of concat at equal precedence still need no parens
        // (concat is associative), but unions inside do.
        Render(node->children[i], self, os);
      }
      break;
    case RegexKind::kStar:
      Render(node->children[0], 4, os);
      os << "*";
      break;
    case RegexKind::kPlus:
      Render(node->children[0], 4, os);
      os << "+";
      break;
  }
  if (parens) {
    os << ")";
  }
}

}  // namespace

std::string RegexToString(const RegexPtr& node) {
  std::ostringstream os;
  Render(node, 0, os);
  return os.str();
}

}  // namespace gqd
