// Standard regular expressions over a finite alphabet of edge labels.
//
// Grammar (paper Definition preliminaries / RPQ syntax):
//   e := ε | a | e + e | e · e | e* | e⁺
// Concrete syntax accepted by the parser (see parser.h):
//   union   e | f
//   concat  e f        (juxtaposition; also `e . f`)
//   star    e*
//   plus    e+         (postfix; binds like *; `+` is never infix)
//   epsilon eps
//   atoms   identifiers ([A-Za-z0-9_][A-Za-z0-9_']*), or arbitrary label
//           names quoted like '$'
//
// Nodes are immutable and shared (RegexPtr = shared_ptr<const RegexNode>),
// so gadget builders can reuse subexpressions freely.

#ifndef GQD_REGEX_AST_H_
#define GQD_REGEX_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace gqd {

enum class RegexKind {
  kEpsilon,  ///< ε — the empty word.
  kLetter,   ///< a single alphabet letter, by name.
  kUnion,    ///< e + f
  kConcat,   ///< e · f
  kStar,     ///< e*
  kPlus,     ///< e⁺ (one or more)
};

struct RegexNode;
using RegexPtr = std::shared_ptr<const RegexNode>;

/// Immutable regex AST node.
struct RegexNode {
  RegexKind kind;
  std::string letter;           ///< kLetter only.
  std::vector<RegexPtr> children;  ///< operands (2 for Union/Concat via
                                   ///< builder flattening, 1 for Star/Plus).
};

/// Builder helpers (namespace-style factory, used by the reduction gadgets).
namespace re {

RegexPtr Epsilon();
RegexPtr Letter(std::string name);
/// Union of any number of operands; returns ε-free simplifications where
/// trivial (0 operands is invalid, 1 operand returns it unchanged).
RegexPtr Union(std::vector<RegexPtr> operands);
/// Concatenation of any number of operands (0 operands yields ε).
RegexPtr Concat(std::vector<RegexPtr> operands);
RegexPtr Star(RegexPtr operand);
RegexPtr Plus(RegexPtr operand);
/// Union of single letters, one per name — e.g. AnyOf({"t1","t2","α"}).
RegexPtr AnyOf(const std::vector<std::string>& names);

}  // namespace re

/// Renders the regex with minimal parentheses, letters by name.
std::string RegexToString(const RegexPtr& node);

}  // namespace gqd

#endif  // GQD_REGEX_AST_H_
