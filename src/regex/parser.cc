#include "regex/parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace gqd {

namespace {

enum class TokenKind {
  kIdent,
  kPipe,
  kStar,
  kPlus,
  kDot,
  kLParen,
  kRParen,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;     // identifiers only
  std::size_t position; // byte offset, for diagnostics
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        pos_++;
        continue;
      }
      std::size_t start = pos_;
      switch (c) {
        case '|':
          tokens.push_back({TokenKind::kPipe, "", start});
          pos_++;
          continue;
        case '*':
          tokens.push_back({TokenKind::kStar, "", start});
          pos_++;
          continue;
        case '+':
          tokens.push_back({TokenKind::kPlus, "", start});
          pos_++;
          continue;
        case '.':
          tokens.push_back({TokenKind::kDot, "", start});
          pos_++;
          continue;
        case '(':
          tokens.push_back({TokenKind::kLParen, "", start});
          pos_++;
          continue;
        case ')':
          tokens.push_back({TokenKind::kRParen, "", start});
          pos_++;
          continue;
        case '\'': {
          // Quoted label name: '...'; the quotes are not part of the name.
          pos_++;
          std::string name;
          while (pos_ < text_.size() && text_[pos_] != '\'') {
            name += text_[pos_++];
          }
          if (pos_ >= text_.size()) {
            return Error(start, "unterminated quoted label");
          }
          pos_++;  // closing quote
          if (name.empty()) {
            return Error(start, "empty quoted label");
          }
          tokens.push_back({TokenKind::kIdent, std::move(name), start});
          continue;
        }
        default:
          break;
      }
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        std::string name;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '\'')) {
          // Allow primes inside identifiers (v'1), but a leading quote was
          // handled above as a quoted label.
          if (text_[pos_] == '\'' &&
              (pos_ + 1 >= text_.size() ||
               !(std::isalnum(static_cast<unsigned char>(text_[pos_ + 1])) ||
                 text_[pos_ + 1] == '_'))) {
            break;
          }
          name += text_[pos_++];
        }
        tokens.push_back({TokenKind::kIdent, std::move(name), start});
        continue;
      }
      return Error(start, std::string("unexpected character '") + c + "'");
    }
    tokens.push_back({TokenKind::kEnd, "", text_.size()});
    return tokens;
  }

 private:
  Status Error(std::size_t position, const std::string& msg) {
    return Status::InvalidArgument("regex at offset " +
                                   std::to_string(position) + ": " + msg);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<RegexPtr> Run() {
    GQD_ASSIGN_OR_RETURN(RegexPtr result, ParseUnion());
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input");
    }
    return result;
  }

 private:
  const Token& Peek() const { return tokens_[index_]; }
  void Advance() { index_++; }

  Status Error(const std::string& msg) {
    return Status::InvalidArgument("regex at offset " +
                                   std::to_string(Peek().position) + ": " +
                                   msg);
  }

  Result<RegexPtr> ParseUnion() {
    GQD_ASSIGN_OR_RETURN(RegexPtr first, ParseConcat());
    std::vector<RegexPtr> operands = {first};
    while (Peek().kind == TokenKind::kPipe) {
      Advance();
      GQD_ASSIGN_OR_RETURN(RegexPtr next, ParseConcat());
      operands.push_back(next);
    }
    return re::Union(std::move(operands));
  }

  Result<RegexPtr> ParseConcat() {
    GQD_ASSIGN_OR_RETURN(RegexPtr first, ParsePostfix());
    std::vector<RegexPtr> operands = {first};
    while (true) {
      TokenKind k = Peek().kind;
      if (k == TokenKind::kDot) {
        Advance();
        GQD_ASSIGN_OR_RETURN(RegexPtr next, ParsePostfix());
        operands.push_back(next);
      } else if (k == TokenKind::kIdent || k == TokenKind::kLParen) {
        GQD_ASSIGN_OR_RETURN(RegexPtr next, ParsePostfix());
        operands.push_back(next);
      } else {
        break;
      }
    }
    return re::Concat(std::move(operands));
  }

  Result<RegexPtr> ParsePostfix() {
    GQD_ASSIGN_OR_RETURN(RegexPtr node, ParseAtom());
    while (true) {
      if (Peek().kind == TokenKind::kStar) {
        Advance();
        node = re::Star(node);
      } else if (Peek().kind == TokenKind::kPlus) {
        Advance();
        node = re::Plus(node);
      } else {
        break;
      }
    }
    return node;
  }

  Result<RegexPtr> ParseAtom() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kIdent: {
        std::string name = token.text;
        Advance();
        if (name == "eps") {
          return re::Epsilon();
        }
        return re::Letter(std::move(name));
      }
      case TokenKind::kLParen: {
        Advance();
        GQD_ASSIGN_OR_RETURN(RegexPtr inner, ParseUnion());
        if (Peek().kind != TokenKind::kRParen) {
          return Error("expected ')'");
        }
        Advance();
        return inner;
      }
      default:
        return Error("expected a letter, 'eps' or '('");
    }
  }

  std::vector<Token> tokens_;
  std::size_t index_ = 0;
};

}  // namespace

Result<RegexPtr> ParseRegex(std::string_view text) {
  Lexer lexer(text);
  GQD_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Run());
  Parser parser(std::move(tokens));
  return parser.Run();
}

}  // namespace gqd
