// Metrics registry: named counters, gauges, and log2 histograms with
// Prometheus text exposition.
//
// Instruments are created (or looked up) by name plus an optional label
// set and returned as stable pointers; updates afterwards are lock-free
// atomics. The registry renders the whole family table in Prometheus text
// exposition format via RenderPrometheus().
//
//   MetricsRegistry registry;
//   Counter* hits = registry.GetCounter("gqd_cache_hits_total");
//   hits->Inc();
//   Histogram* lat = registry.GetHistogram("gqd_request_latency_us",
//                                          {{"command", "eval"}});
//   lat->Observe(elapsed_us);
//
// Histograms use log2 buckets: bucket b covers [2^b, 2^(b+1)) with bucket
// 0 absorbing 0 and 1, matching the serving runtime's historical latency
// histogram, plus an open-ended overflow bucket.

#ifndef GQD_OBS_METRICS_H_
#define GQD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gqd {

/// Monotonically increasing counter. `Set` exists for mirroring externally
/// accumulated monotonic totals (pool/cache snapshots) at exposition time;
/// instrumented code paths should only ever Inc.
class Counter {
 public:
  void Inc(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Set(std::uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time value.
class Gauge {
 public:
  void Set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log2-bucketed histogram of non-negative integer observations.
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 23;  // 1 .. ~4M, then +Inf

  void Observe(std::uint64_t value);

  /// Inclusive upper bound of bucket `b`; the last bucket has no bound
  /// (render as +Inf).
  static std::uint64_t BucketUpperBound(std::size_t b) {
    return (1ULL << (b + 1)) - 1;
  }

  std::uint64_t bucket(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Upper bound of the bucket where the cumulative count first reaches
  /// `quantile` (0 < quantile <= 1) of the total; 0 when empty. Coarse by
  /// construction — within a factor of 2.
  std::uint64_t QuantileUpperBound(double quantile) const;

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// One `key="value"` Prometheus label.
using MetricLabel = std::pair<std::string, std::string>;
using MetricLabels = std::vector<MetricLabel>;

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates an instrument. Pointers remain valid for the life of
  /// the registry. A name must keep one instrument kind; requesting the
  /// same name as a different kind returns a distinct dummy instrument
  /// that is never rendered (misuse stays visible in tests, not in prod).
  Counter* GetCounter(const std::string& name, const MetricLabels& labels = {});
  Gauge* GetGauge(const std::string& name, const MetricLabels& labels = {});
  Histogram* GetHistogram(const std::string& name,
                          const MetricLabels& labels = {});

  /// Renders every instrument in Prometheus text exposition format
  /// (`# TYPE` comment per family, samples sorted by name then labels,
  /// histograms as cumulative `_bucket{le=...}` plus `_sum`/`_count`).
  std::string RenderPrometheus() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Instrument {
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    Kind kind;
    // Keyed by serialized label set so lookup is deterministic.
    std::map<std::string, Instrument> instruments;
  };

  Instrument* FindOrCreate(const std::string& name, const MetricLabels& labels,
                           Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
  // Kind-mismatched requests land here, detached from exposition.
  std::vector<std::unique_ptr<Instrument>> orphans_;
};

/// Mirrors every registered failpoint site into `registry` as
/// `gqd_failpoint_triggered_total{site=...}` (injected faults) and
/// `gqd_failpoint_hits_total{site=...}` (site traversals). Pull-based:
/// call at exposition time; the failpoint hot path stays untouched.
void UpdateFailpointMetrics(MetricsRegistry* registry);

}  // namespace gqd

#endif  // GQD_OBS_METRICS_H_
