// Structured JSON event log.
//
// EventLog records discrete operational events — router worker-state
// transitions, failovers, admission sheds, storage loads, budget
// exhaustion — as one-line JSON objects with a level, both clocks
// (monotonic trace-epoch nanoseconds + wall milliseconds), a component,
// an event name, free-form string fields, and automatic trace-id
// correlation: an event emitted while a TraceBindingScope is live carries
// that trace's 32-hex id, so slow-request forensics can join the log
// against a merged trace.
//
// Storage is a bounded in-memory ring (drained over the wire by the
// serve/route `log` command) plus an optional append-only file sink. The
// process-wide instance (EventLog::Global()) is configured by
// GQD_LOG=level[:path], e.g. GQD_LOG=debug or GQD_LOG=info:/tmp/gqd.log;
// unset defaults to level info with no file sink. Emit below the minimum
// level costs one atomic load.
//
//   EventLog::Global().Emit(LogLevel::kWarn, "cluster", "failover",
//                           {{"worker", "2"}, {"cmd", "eval"}});
//
// Event JSON shape (docs/observability.md):
//   {"seq":N,"ts_ms":...,"mono_ns":...,"level":"warn","component":"...",
//    "event":"...","trace_id":"<32 hex>",...fields}

#ifndef GQD_OBS_LOG_H_
#define GQD_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace gqd {

enum class LogLevel : int { kDebug = 0, kInfo, kWarn, kError };

const char* LogLevelName(LogLevel level);
/// Accepts "debug", "info", "warn", "error".
bool ParseLogLevel(const std::string& text, LogLevel* out);

/// One recorded event. Fields are string key/value pairs; numeric values
/// are rendered by the caller (keeps the schema trivial to consume).
struct LogEvent {
  std::uint64_t seq = 0;       ///< process-wide emission order
  std::int64_t wall_ms = 0;    ///< system_clock milliseconds since epoch
  std::uint64_t mono_ns = 0;   ///< Tracer::NowNs (trace-epoch aligned)
  LogLevel level = LogLevel::kInfo;
  std::string component;
  std::string event;
  std::string trace_id;        ///< 32 hex chars, empty when uncorrelated
  std::vector<std::pair<std::string, std::string>> fields;

  std::string ToJson() const;
};

class EventLog {
 public:
  using Field = std::pair<std::string, std::string>;

  explicit EventLog(std::size_t capacity = kDefaultCapacity);
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Events below `level` are dropped at the Emit call site.
  void SetMinLevel(LogLevel level) {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel min_level() const {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }

  /// Opens (appends to) a file sink; every retained event is also written
  /// as one JSON line. Replaces any previous sink.
  Status OpenSink(const std::string& path);

  /// Records one event. The trace id is captured from the calling
  /// thread's current trace binding when one is installed.
  void Emit(LogLevel level, const std::string& component,
            const std::string& event, std::vector<Field> fields = {});

  /// Retained events at or above `min_level`, oldest first.
  std::vector<LogEvent> Snapshot(LogLevel min_level = LogLevel::kDebug) const;

  /// Snapshot rendered as a JSON array of event objects.
  std::string ToJsonArray(LogLevel min_level = LogLevel::kDebug) const;

  std::uint64_t emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }
  /// Ring evictions (events emitted but no longer retained).
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// The process-wide log, configured once from GQD_LOG=level[:path].
  static EventLog& Global();

  static constexpr std::size_t kDefaultCapacity = 1024;

 private:
  const std::size_t capacity_;
  std::atomic<int> min_level_{static_cast<int>(LogLevel::kInfo)};
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> next_seq_{1};

  mutable std::mutex mutex_;  ///< guards ring_ and sink_
  std::deque<LogEvent> ring_;
  std::ofstream sink_;
};

}  // namespace gqd

#endif  // GQD_OBS_LOG_H_
