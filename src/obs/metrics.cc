#include "obs/metrics.h"

#include "common/failpoint.h"

namespace gqd {

namespace {

std::size_t BucketFor(std::uint64_t value) {
  std::size_t bucket = 0;
  while (value > 1 && bucket + 1 < Histogram::kNumBuckets) {
    value >>= 1;
    bucket++;
  }
  return bucket;
}

/// Serialized label set used both as map key and rendered sample suffix:
/// `{key="value",...}` with keys in the caller's order, or "" when empty.
std::string LabelString(const MetricLabels& labels) {
  if (labels.empty()) {
    return "";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out += key;
    out += "=\"";
    // Prometheus label-value escaping: backslash, double-quote, newline.
    for (char c : value) {
      switch (c) {
        case '\\':
          out += "\\\\";
          break;
        case '"':
          out += "\\\"";
          break;
        case '\n':
          out += "\\n";
          break;
        default:
          out.push_back(c);
      }
    }
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

/// Joins a base label string with one extra label (for histogram `le`).
std::string WithExtraLabel(const std::string& labels, const std::string& key,
                           const std::string& value) {
  if (labels.empty()) {
    return "{" + key + "=\"" + value + "\"}";
  }
  std::string out = labels;
  out.pop_back();  // drop '}'
  out += "," + key + "=\"" + value + "\"}";
  return out;
}

}  // namespace

void Histogram::Observe(std::uint64_t value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t Histogram::QuantileUpperBound(double quantile) const {
  std::uint64_t total = count();
  if (total == 0) {
    return 0;
  }
  auto target = static_cast<std::uint64_t>(quantile * static_cast<double>(total));
  if (target == 0) {
    target = 1;
  }
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kNumBuckets; b++) {
    cumulative += bucket(b);
    if (cumulative >= target) {
      return BucketUpperBound(b);
    }
  }
  return BucketUpperBound(kNumBuckets - 1);
}

MetricsRegistry::Instrument* MetricsRegistry::FindOrCreate(
    const std::string& name, const MetricLabels& labels, Kind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto make = [&](Instrument* slot) {
    slot->labels = labels;
    switch (kind) {
      case Kind::kCounter:
        slot->counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        slot->gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        slot->histogram = std::make_unique<Histogram>();
        break;
    }
  };
  auto [it, inserted] = families_.try_emplace(name);
  Family& family = it->second;
  if (inserted) {
    family.kind = kind;
  } else if (family.kind != kind) {
    orphans_.push_back(std::make_unique<Instrument>());
    make(orphans_.back().get());
    return orphans_.back().get();
  }
  auto [inst_it, inst_inserted] =
      family.instruments.try_emplace(LabelString(labels));
  if (inst_inserted) {
    make(&inst_it->second);
  }
  return &inst_it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const MetricLabels& labels) {
  return FindOrCreate(name, labels, Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const MetricLabels& labels) {
  return FindOrCreate(name, labels, Kind::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const MetricLabels& labels) {
  return FindOrCreate(name, labels, Kind::kHistogram)->histogram.get();
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# TYPE " + name + " ";
    switch (family.kind) {
      case Kind::kCounter:
        out += "counter\n";
        break;
      case Kind::kGauge:
        out += "gauge\n";
        break;
      case Kind::kHistogram:
        out += "histogram\n";
        break;
    }
    for (const auto& [label_string, instrument] : family.instruments) {
      switch (family.kind) {
        case Kind::kCounter:
          out += name + label_string + " " +
                 std::to_string(instrument.counter->value()) + "\n";
          break;
        case Kind::kGauge:
          out += name + label_string + " " +
                 std::to_string(instrument.gauge->value()) + "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *instrument.histogram;
          std::uint64_t cumulative = 0;
          for (std::size_t b = 0; b < Histogram::kNumBuckets; b++) {
            cumulative += h.bucket(b);
            std::string le = b + 1 == Histogram::kNumBuckets
                                 ? "+Inf"
                                 : std::to_string(
                                       Histogram::BucketUpperBound(b));
            out += name + "_bucket" +
                   WithExtraLabel(label_string, "le", le) + " " +
                   std::to_string(cumulative) + "\n";
          }
          out += name + "_sum" + label_string + " " +
                 std::to_string(h.sum()) + "\n";
          out += name + "_count" + label_string + " " +
                 std::to_string(h.count()) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

void UpdateFailpointMetrics(MetricsRegistry* registry) {
  FailpointRegistry& failpoints = FailpointRegistry::Instance();
  for (const std::string& name : failpoints.SiteNames()) {
    const FailpointSite* site = failpoints.Find(name);
    if (site == nullptr) {
      continue;
    }
    registry
        ->GetCounter("gqd_failpoint_triggered_total", {{"site", name}})
        ->Set(site->fired());
    registry->GetCounter("gqd_failpoint_hits_total", {{"site", name}})
        ->Set(site->hits());
  }
}

}  // namespace gqd
