// Low-overhead span tracer.
//
// A Tracer owns per-thread ring buffers of SpanRecords. Instrumented code
// never sees the Tracer directly: it opens spans through the GQD_TRACE_SPAN
// macro, which records into whatever Tracer is installed for the current
// thread via Tracer::Scope. With no tracer installed a span site costs one
// thread-local load and a branch; with GQD_DISABLE_TRACING defined the
// macros compile away entirely.
//
//   Tracer tracer;
//   {
//     Tracer::Scope scope(&tracer);
//     GQD_TRACE_SPAN(span, "krem.bfs");
//     GQD_TRACE_SPAN_ATTR(span, "tuples_explored", tuples.size());
//     ...
//   }  // span closes, scope uninstalls
//   Tracer::DrainResult out = tracer.Drain();
//
// Worker threads do not inherit the submitting thread's scope; pass the
// Tracer pointer into the task (capture Tracer::Current() at submit time)
// and re-install it with a Tracer::Scope inside the task body.
//
// Timestamps come from std::chrono::steady_clock, expressed in nanoseconds
// relative to a process-wide epoch so spans from different tracers align on
// a common timeline.

#ifndef GQD_OBS_TRACE_H_
#define GQD_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace gqd {

/// One closed span. POD on purpose: recording a span performs no heap
/// allocation. `name` and attribute keys must be string literals (or
/// otherwise outlive the tracer).
struct SpanRecord {
  static constexpr std::size_t kMaxAttrs = 4;

  const char* name = nullptr;
  std::uint64_t start_ns = 0;  ///< relative to the process trace epoch
  std::uint64_t dur_ns = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 when the span is a root
  std::uint64_t trace_hi = 0;   ///< 128-bit distributed trace id, or 0/0
  std::uint64_t trace_lo = 0;   ///< when no trace context was bound
  std::uint32_t tid = 0;        ///< small per-process thread index
  std::uint32_t depth = 0;      ///< nesting depth on its thread (root = 0)
  struct Attr {
    const char* key = nullptr;
    std::uint64_t value = 0;
  };
  Attr attrs[kMaxAttrs];
  std::uint32_t num_attrs = 0;
};

/// Aggregate wall time per span name. Kept exactly even when the ring
/// buffer overflows and drops individual records.
struct StageTotal {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

class Tracer {
 public:
  struct DrainResult {
    std::vector<SpanRecord> spans;     ///< sorted by start_ns
    std::vector<StageTotal> totals;    ///< sorted by name
    std::uint64_t dropped_spans = 0;   ///< ring overflow casualties
  };

  /// `ring_capacity` bounds the records retained per recording thread;
  /// older records are dropped first (stage totals stay exact).
  explicit Tracer(std::size_t ring_capacity = kDefaultRingCapacity);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The tracer installed for this thread, or nullptr.
  static Tracer* Current();

  /// RAII installer: makes `tracer` Current() for this thread, restoring
  /// the previous tracer (usually nullptr) on destruction. Installing a
  /// null tracer is a no-op that leaves the current installation alone,
  /// so call sites can pass an optional tracer through unconditionally.
  class Scope {
   public:
    explicit Scope(Tracer* tracer);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Tracer* installed_;
    Tracer* previous_;
  };

  /// Appends a closed span from the calling thread. Thread-safe.
  void Record(const SpanRecord& record);

  /// Collects every thread's records (sorted by start time), exact
  /// per-name stage totals, and the overflow-drop count. Safe to call
  /// while other threads still hold a Scope, but records emitted
  /// concurrently with the drain may land in the next drain.
  DrainResult Drain();

  /// Nanoseconds since the process trace epoch (monotonic clock).
  static std::uint64_t NowNs();

  /// Allocates a process-unique span id (never 0). Seeded per process from
  /// pid + clock so ids from different processes in one merged cluster
  /// trace cannot collide.
  static std::uint64_t NextSpanId();

  /// The calling thread's distributed-trace binding: the 128-bit trace id
  /// every recorded span is stamped with, and the span id new roots parent
  /// under. All-zero when no context is bound (the default).
  struct Binding {
    std::uint64_t trace_hi = 0;
    std::uint64_t trace_lo = 0;
    std::uint64_t parent_span = 0;
  };
  static Binding CurrentBinding();

  static constexpr std::size_t kDefaultRingCapacity = 64 * 1024;

 private:
  struct Ring;

  Ring* RingForThisThread();

  const std::size_t ring_capacity_;
  const std::uint64_t tracer_id_;  ///< process-unique; validates TL caches
  std::mutex mutex_;               ///< guards rings_ registration + drain
  std::map<std::thread::id, std::unique_ptr<Ring>> rings_;
  std::uint32_t next_tid_ = 0;
};

#ifndef GQD_DISABLE_TRACING

/// RAII span handle used by the macros. Cheap when no tracer is installed:
/// the constructor does a single thread-local load and records nothing.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key/value attribute (first SpanRecord::kMaxAttrs stick).
  /// Keys must be string literals. Values are captured as uint64.
  void AddAttr(const char* key, std::uint64_t value);

  bool active() const { return tracer_ != nullptr; }

  /// The span's process-unique id (0 while inactive). Used by the router
  /// to parent remote worker spans under its transport span.
  std::uint64_t span_id() const { return record_.span_id; }

 private:
  Tracer* tracer_;
  SpanRecord record_;
  std::uint64_t saved_parent_ = 0;
  std::uint32_t saved_depth_ = 0;
};

/// RAII distributed-trace binding: stamps the given 128-bit trace id on
/// every span the calling thread records while the scope is live, and
/// reparents new root spans under `binding.parent_span` (a span id from
/// another thread or another process). Restores the previous binding on
/// destruction. Used to propagate a TraceContext received over the wire
/// into the tracer, and to carry the submitting thread's context into
/// pool tasks (alongside Tracer::Scope).
class TraceBindingScope {
 public:
  explicit TraceBindingScope(const Tracer::Binding& binding);
  ~TraceBindingScope();
  TraceBindingScope(const TraceBindingScope&) = delete;
  TraceBindingScope& operator=(const TraceBindingScope&) = delete;

 private:
  Tracer::Binding saved_;
};

#else  // GQD_DISABLE_TRACING

/// No-op stand-in: every call inlines to nothing, and arguments to the
/// macros below stay referenced so -Wunused does not fire on either
/// configuration.
class Span {
 public:
  explicit Span(const char*) {}
  void AddAttr(const char*, std::uint64_t) {}
  bool active() const { return false; }
  std::uint64_t span_id() const { return 0; }
};

class TraceBindingScope {
 public:
  explicit TraceBindingScope(const Tracer::Binding&) {}
};

#endif  // GQD_DISABLE_TRACING

#define GQD_TRACE_SPAN(var, name) ::gqd::Span var(name)
#define GQD_TRACE_SPAN_ATTR(var, key, value) \
  var.AddAttr(key, static_cast<std::uint64_t>(value))

}  // namespace gqd

#endif  // GQD_OBS_TRACE_H_
