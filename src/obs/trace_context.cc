#include "obs/trace_context.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <map>

#include "common/json.h"
#include "common/json_util.h"

namespace gqd {

namespace {

std::string HexU64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
  return buf;
}

bool ParseHexU64(const std::string& text, std::size_t offset,
                 std::uint64_t* out) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < 16; i++) {
    char c = text[offset + i];
    std::uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  *out = value;
  return true;
}

/// splitmix64 over a per-call seed: good-enough unpredictability for trace
/// ids without dragging in <random> state management.
std::uint64_t MixedRandom() {
  static std::atomic<std::uint64_t> counter{
      static_cast<std::uint64_t>(::getpid()) ^
      (static_cast<std::uint64_t>(
           std::chrono::system_clock::now().time_since_epoch().count())
       << 17)};
  std::uint64_t x =
      counter.fetch_add(0x9e3779b97f4a7c15ULL, std::memory_order_relaxed);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Nanoseconds rendered as decimal microseconds ("12.345"), matching the
/// per-process exporters so merged and local trees read identically.
std::string NsToUsString(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64, ns / 1000,
                ns % 1000);
  return buf;
}

void AppendOwnedArgs(const OwnedSpan& span, std::string* out) {
  out->push_back('{');
  bool first = true;
  for (const auto& [key, value] : span.args) {
    if (!first) {
      out->push_back(',');
    }
    first = false;
    *out += JsonQuote(key);
    out->push_back(':');
    *out += std::to_string(value);
  }
  out->push_back('}');
}

}  // namespace

std::string TraceContext::TraceIdHex() const {
  return HexU64(trace_hi) + HexU64(trace_lo);
}

std::string TraceContext::ToTraceparent() const {
  return "00-" + TraceIdHex() + "-" + HexU64(parent_span) + "-01";
}

bool TraceContext::FromTraceparent(const std::string& text,
                                   TraceContext* out) {
  // 00-<32 hex>-<16 hex>-01 → 2 + 1 + 32 + 1 + 16 + 1 + 2 = 55 chars.
  if (text.size() != 55 || text[0] != '0' || text[1] != '0' ||
      text[2] != '-' || text[35] != '-' || text[52] != '-' ||
      text[53] != '0' || text[54] != '1') {
    return false;
  }
  TraceContext parsed;
  if (!ParseHexU64(text, 3, &parsed.trace_hi) ||
      !ParseHexU64(text, 19, &parsed.trace_lo) ||
      !ParseHexU64(text, 36, &parsed.parent_span)) {
    return false;
  }
  if (!parsed.valid()) {
    return false;
  }
  *out = parsed;
  return true;
}

TraceContext TraceContext::Mint() {
  TraceContext ctx;
  // Retry the improbable all-zero draw: zero means "untraced" everywhere.
  do {
    ctx.trace_hi = MixedRandom();
    ctx.trace_lo = MixedRandom();
  } while (!ctx.valid());
  ctx.parent_span = 0;
  return ctx;
}

std::string SerializeSpanBatch(const std::vector<SpanRecord>& spans) {
  std::string out = "[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out += "{\"name\":";
    out += JsonQuote(span.name);
    out += ",\"start_ns\":";
    out += std::to_string(span.start_ns);
    out += ",\"dur_ns\":";
    out += std::to_string(span.dur_ns);
    out += ",\"span_id\":\"";
    out += HexU64(span.span_id);
    out += "\",\"parent_id\":\"";
    out += HexU64(span.parent_id);
    out += "\",\"tid\":";
    out += std::to_string(span.tid);
    out += ",\"args\":{";
    for (std::uint32_t a = 0; a < span.num_attrs; a++) {
      if (a > 0) {
        out.push_back(',');
      }
      out += JsonQuote(span.attrs[a].key);
      out.push_back(':');
      out += std::to_string(span.attrs[a].value);
    }
    out += "}}";
  }
  out.push_back(']');
  return out;
}

std::vector<OwnedSpan> ParseSpanBatch(const std::string& json,
                                      const std::string& source,
                                      std::uint32_t pid) {
  std::vector<OwnedSpan> out;
  auto parsed = JsonValue::Parse(json);
  if (!parsed.ok() || !parsed.value().is_array()) {
    return out;
  }
  for (const JsonValue& entry : parsed.value().AsArray()) {
    if (!entry.is_object()) {
      continue;
    }
    OwnedSpan span;
    auto name = entry.GetStringOr("name", "");
    if (!name.ok() || name.value().empty()) {
      continue;
    }
    span.name = name.value();
    auto span_id = entry.GetStringOr("span_id", "");
    auto parent_id = entry.GetStringOr("parent_id", "");
    if (!span_id.ok() || span_id.value().size() != 16 ||
        !ParseHexU64(span_id.value(), 0, &span.span_id)) {
      continue;
    }
    if (parent_id.ok() && parent_id.value().size() == 16) {
      (void)ParseHexU64(parent_id.value(), 0, &span.parent_id);
    }
    auto start_ns = entry.GetIntOr("start_ns", 0);
    auto dur_ns = entry.GetIntOr("dur_ns", 0);
    auto tid = entry.GetIntOr("tid", 0);
    span.start_ns =
        start_ns.ok() ? static_cast<std::uint64_t>(start_ns.value()) : 0;
    span.dur_ns = dur_ns.ok() ? static_cast<std::uint64_t>(dur_ns.value()) : 0;
    span.tid = tid.ok() ? static_cast<std::uint32_t>(tid.value()) : 0;
    span.pid = pid;
    span.source = source;
    if (const JsonValue* args = entry.Find("args");
        args != nullptr && args->is_object()) {
      for (const auto& [key, value] : args->AsObject()) {
        if (value.is_number()) {
          span.args.emplace_back(key,
                                 static_cast<std::uint64_t>(value.AsNumber()));
        }
      }
    }
    out.push_back(std::move(span));
  }
  return out;
}

std::vector<OwnedSpan> OwnSpans(const std::vector<SpanRecord>& spans,
                                const std::string& source,
                                std::uint32_t pid) {
  std::vector<OwnedSpan> out;
  out.reserve(spans.size());
  for (const SpanRecord& record : spans) {
    OwnedSpan span;
    span.name = record.name;
    span.start_ns = record.start_ns;
    span.dur_ns = record.dur_ns;
    span.span_id = record.span_id;
    span.parent_id = record.parent_id;
    span.tid = record.tid;
    span.pid = pid;
    span.source = source;
    for (std::uint32_t a = 0; a < record.num_attrs; a++) {
      span.args.emplace_back(record.attrs[a].key, record.attrs[a].value);
    }
    out.push_back(std::move(span));
  }
  return out;
}

namespace {

void AppendMergedNode(
    const OwnedSpan& span,
    const std::map<std::uint64_t, std::vector<std::size_t>>& children_of,
    const std::vector<OwnedSpan>& spans, std::string* out) {
  *out += "{\"name\":";
  *out += JsonQuote(span.name);
  *out += ",\"start_us\":";
  *out += NsToUsString(span.start_ns);
  *out += ",\"dur_us\":";
  *out += NsToUsString(span.dur_ns);
  *out += ",\"tid\":";
  *out += std::to_string(span.tid);
  *out += ",\"source\":";
  *out += JsonQuote(span.source);
  *out += ",\"args\":";
  AppendOwnedArgs(span, out);
  *out += ",\"children\":[";
  auto it = children_of.find(span.span_id);
  if (it != children_of.end()) {
    bool first = true;
    for (std::size_t child : it->second) {
      if (!first) {
        out->push_back(',');
      }
      first = false;
      AppendMergedNode(spans[child], children_of, spans, out);
    }
  }
  *out += "]}";
}

}  // namespace

std::string MergedSpanTreeToJson(const std::vector<OwnedSpan>& spans) {
  // Stable render order regardless of collection order: by start time,
  // span id breaking ties (same ordering the per-process Drain uses).
  std::vector<std::size_t> order(spans.size());
  for (std::size_t i = 0; i < spans.size(); i++) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&spans](std::size_t a, std::size_t b) {
    return spans[a].start_ns != spans[b].start_ns
               ? spans[a].start_ns < spans[b].start_ns
               : spans[a].span_id < spans[b].span_id;
  });
  std::map<std::uint64_t, bool> present;
  for (const OwnedSpan& span : spans) {
    present[span.span_id] = true;
  }
  std::map<std::uint64_t, std::vector<std::size_t>> children_of;
  std::vector<std::size_t> roots;
  for (std::size_t i : order) {
    const OwnedSpan& span = spans[i];
    if (span.parent_id != 0 && present.count(span.parent_id) > 0) {
      children_of[span.parent_id].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  std::string out = "[";
  bool first = true;
  for (std::size_t root : roots) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    AppendMergedNode(spans[root], children_of, spans, &out);
  }
  out.push_back(']');
  return out;
}

std::string MergedTraceToChromeJson(const std::vector<OwnedSpan>& spans) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  // Name each process track once so chrome://tracing shows "router" /
  // "worker N" instead of bare pids.
  std::map<std::uint32_t, std::string> track_names;
  for (const OwnedSpan& span : spans) {
    auto [it, inserted] = track_names.emplace(span.pid, span.source);
    (void)it;
    (void)inserted;
  }
  for (const auto& [pid, name] : track_names) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":0,\"args\":{\"name\":";
    out += JsonQuote(name);
    out += "}}";
  }
  for (const OwnedSpan& span : spans) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out += "{\"name\":";
    out += JsonQuote(span.name);
    out += ",\"cat\":\"gqd\",\"ph\":\"X\",\"ts\":";
    out += NsToUsString(span.start_ns);
    out += ",\"dur\":";
    out += NsToUsString(span.dur_ns);
    out += ",\"pid\":";
    out += std::to_string(span.pid);
    out += ",\"tid\":";
    out += std::to_string(span.tid);
    out += ",\"args\":";
    AppendOwnedArgs(span, &out);
    out.push_back('}');
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

SpanCollector::SpanCollector(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::vector<SpanRecord> SpanCollector::Take(std::uint64_t trace_hi,
                                            std::uint64_t trace_lo) {
  Tracer::DrainResult drained = tracer_.Drain();
  std::vector<SpanRecord> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const SpanRecord& record : drained.spans) {
    held_.push_back(record);
  }
  // Extract the requested trace, keep the rest held.
  std::deque<SpanRecord> keep;
  for (const SpanRecord& record : held_) {
    if (record.trace_hi == trace_hi && record.trace_lo == trace_lo) {
      out.push_back(record);
    } else {
      keep.push_back(record);
    }
  }
  held_ = std::move(keep);
  while (held_.size() > capacity_) {
    held_.pop_front();
    evicted_++;
  }
  // Drain() sorted its batch, but held spans from earlier drains precede
  // newer ones only per batch; re-sort the extraction.
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.span_id < b.span_id;
            });
  return out;
}

std::uint64_t SpanCollector::evicted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evicted_;
}

}  // namespace gqd
