#include "obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>

namespace gqd {

// Defined in env_trace.cc. Called from the Tracer constructor so that
// archive member — whose only entry point is a static initializer reading
// GQD_TRACE_OUT — is never dropped when linking against libgqd_obs.a.
void EnvTraceHookAnchor();

namespace {

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

// Forces epoch initialization at static-init time (single-threaded) so the
// first traced span does not pay for it and timestamps start near zero.
const std::chrono::steady_clock::time_point g_epoch_anchor = TraceEpoch();

/// Span ids must stay unique across every process contributing to one
/// merged cluster trace, so the counter starts at a per-process random
/// base (splitmix64 over pid + wall clock) with the low 32 bits left free
/// to count. Never 0 (0 marks "no parent").
std::uint64_t SpanIdSeed() {
  std::uint64_t x = static_cast<std::uint64_t>(::getpid());
  x ^= static_cast<std::uint64_t>(
           std::chrono::system_clock::now().time_since_epoch().count())
       << 16;
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return (x & ~0xffffffffULL) | 1;
}

std::atomic<std::uint64_t> g_next_span_id{SpanIdSeed()};
std::atomic<std::uint64_t> g_next_tracer_id{1};

thread_local Tracer* tl_current_tracer = nullptr;

#ifndef GQD_DISABLE_TRACING
// Span parent bookkeeping is per-thread, not per-tracer: span ids are
// process-unique, so a child recorded into a different tracer than its
// parent simply fails to resolve there and renders as a root.
thread_local std::uint64_t tl_current_span = 0;
thread_local std::uint32_t tl_current_depth = 0;
// Distributed-trace binding (TraceBindingScope): the trace id stamped on
// every span this thread records. Zero outside any bound context.
thread_local std::uint64_t tl_trace_hi = 0;
thread_local std::uint64_t tl_trace_lo = 0;
#endif  // GQD_DISABLE_TRACING

// Ring lookup cache. Validated against the tracer's process-unique id so a
// stale pointer to a destroyed (and possibly address-reused) tracer can
// never be dereferenced.
struct TlRingCache {
  std::uint64_t tracer_id = 0;
  void* ring = nullptr;
};
thread_local TlRingCache tl_ring_cache;

}  // namespace

struct Tracer::Ring {
  explicit Ring(std::size_t capacity, std::uint32_t tid)
      : capacity(capacity), tid(tid) {
    records.reserve(std::min<std::size_t>(capacity, 1024));
  }

  const std::size_t capacity;
  const std::uint32_t tid;
  std::mutex mutex;  // Record (owner thread) vs Drain (any thread)
  std::vector<SpanRecord> records;
  std::size_t head = 0;  // oldest record once the ring has wrapped
  bool wrapped = false;
  std::uint64_t dropped = 0;
  std::map<const char*, StageTotal> totals;  // keyed by literal identity
};

Tracer::Tracer(std::size_t ring_capacity)
    : ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      tracer_id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {
  EnvTraceHookAnchor();
}

Tracer::~Tracer() {
  // Threads holding a stale TlRingCache re-validate against tracer_id_
  // before use, so nothing to invalidate eagerly here.
}

Tracer* Tracer::Current() { return tl_current_tracer; }

Tracer::Scope::Scope(Tracer* tracer)
    : installed_(tracer), previous_(tl_current_tracer) {
  if (installed_ != nullptr) {
    tl_current_tracer = installed_;
  }
}

Tracer::Scope::~Scope() {
  if (installed_ != nullptr) {
    tl_current_tracer = previous_;
  }
}

Tracer::Ring* Tracer::RingForThisThread() {
  if (tl_ring_cache.tracer_id == tracer_id_) {
    return static_cast<Ring*>(tl_ring_cache.ring);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Ring>& slot = rings_[std::this_thread::get_id()];
  if (slot == nullptr) {
    slot = std::make_unique<Ring>(ring_capacity_, next_tid_++);
  }
  tl_ring_cache.tracer_id = tracer_id_;
  tl_ring_cache.ring = slot.get();
  return slot.get();
}

void Tracer::Record(const SpanRecord& record) {
  Ring* ring = RingForThisThread();
  std::lock_guard<std::mutex> lock(ring->mutex);
  StageTotal& total = ring->totals[record.name];
  if (total.count == 0) {
    total.name = record.name;
  }
  total.count++;
  total.total_ns += record.dur_ns;
  SpanRecord stamped = record;
  stamped.tid = ring->tid;
  if (ring->records.size() < ring->capacity) {
    ring->records.push_back(stamped);
    return;
  }
  // Full: overwrite the oldest record.
  ring->records[ring->head] = stamped;
  ring->head = (ring->head + 1) % ring->capacity;
  ring->wrapped = true;
  ring->dropped++;
}

Tracer::DrainResult Tracer::Drain() {
  DrainResult out;
  // Rings key totals by literal address for speed; the cross-thread merge
  // keys by content, since identical literals in different translation
  // units may not share an address.
  std::map<std::string, StageTotal> merged;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [thread_id, ring] : rings_) {
    (void)thread_id;
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    if (ring->wrapped) {
      // Oldest first: [head, end) then [0, head).
      out.spans.insert(out.spans.end(), ring->records.begin() + ring->head,
                       ring->records.end());
      out.spans.insert(out.spans.end(), ring->records.begin(),
                       ring->records.begin() + ring->head);
    } else {
      out.spans.insert(out.spans.end(), ring->records.begin(),
                       ring->records.end());
    }
    ring->records.clear();
    ring->head = 0;
    ring->wrapped = false;
    out.dropped_spans += ring->dropped;
    ring->dropped = 0;
    for (auto& [name, total] : ring->totals) {
      (void)name;
      StageTotal& slot = merged[total.name];
      if (slot.count == 0) {
        slot.name = total.name;
      }
      slot.count += total.count;
      slot.total_ns += total.total_ns;
    }
    ring->totals.clear();
  }
  std::sort(out.spans.begin(), out.spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.span_id < b.span_id;
            });
  out.totals.reserve(merged.size());
  for (auto& [name, total] : merged) {
    (void)name;
    out.totals.push_back(std::move(total));
  }
  std::sort(out.totals.begin(), out.totals.end(),
            [](const StageTotal& a, const StageTotal& b) {
              return a.name < b.name;
            });
  return out;
}

std::uint64_t Tracer::NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - TraceEpoch())
          .count());
}

std::uint64_t Tracer::NextSpanId() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

Tracer::Binding Tracer::CurrentBinding() {
#ifndef GQD_DISABLE_TRACING
  return Binding{tl_trace_hi, tl_trace_lo, tl_current_span};
#else
  return Binding{};
#endif
}

#ifndef GQD_DISABLE_TRACING

TraceBindingScope::TraceBindingScope(const Tracer::Binding& binding)
    : saved_{tl_trace_hi, tl_trace_lo, tl_current_span} {
  tl_trace_hi = binding.trace_hi;
  tl_trace_lo = binding.trace_lo;
  tl_current_span = binding.parent_span;
}

TraceBindingScope::~TraceBindingScope() {
  tl_trace_hi = saved_.trace_hi;
  tl_trace_lo = saved_.trace_lo;
  tl_current_span = saved_.parent_span;
}

Span::Span(const char* name) : tracer_(tl_current_tracer) {
  if (tracer_ == nullptr) {
    return;
  }
  record_.name = name;
  record_.start_ns = Tracer::NowNs();
  record_.span_id = Tracer::NextSpanId();
  record_.parent_id = tl_current_span;
  record_.trace_hi = tl_trace_hi;
  record_.trace_lo = tl_trace_lo;
  record_.depth = tl_current_depth;
  saved_parent_ = tl_current_span;
  saved_depth_ = tl_current_depth;
  tl_current_span = record_.span_id;
  tl_current_depth = record_.depth + 1;
}

Span::~Span() {
  if (tracer_ == nullptr) {
    return;
  }
  record_.dur_ns = Tracer::NowNs() - record_.start_ns;
  tl_current_span = saved_parent_;
  tl_current_depth = saved_depth_;
  tracer_->Record(record_);
}

void Span::AddAttr(const char* key, std::uint64_t value) {
  if (tracer_ == nullptr || record_.num_attrs >= SpanRecord::kMaxAttrs) {
    return;
  }
  record_.attrs[record_.num_attrs].key = key;
  record_.attrs[record_.num_attrs].value = value;
  record_.num_attrs++;
}

#endif  // GQD_DISABLE_TRACING

}  // namespace gqd
