// Cross-process trace propagation for the cluster serving topology.
//
// A TraceContext is a 128-bit trace id plus the span id to parent under,
// rendered on the wire in the W3C traceparent shape
// (`00-<32 hex trace id>-<16 hex parent span id>-01`). The router mints
// one per routed request (TraceContext::Mint), rewrites the request line
// with a `"trace": "<traceparent>"` field, and the worker installs it via
// TraceBindingScope so every span it records carries the trace id and its
// root parents under the router's transport span.
//
// Workers keep traced spans in a SpanCollector — one shared Tracer plus a
// bounded holding area — until the router drains them with the `spans`
// protocol command. The batch crosses the wire as JSON (span ids as hex
// strings: JSON numbers are doubles and 64-bit ids do not survive them),
// is parsed into OwnedSpans (owning copies of the POD SpanRecords, tagged
// with a source label and process track), aligned onto the router's clock
// and merged with the router's own spans into one tree / one Chrome
// trace. docs/observability.md documents the formats.

#ifndef GQD_OBS_TRACE_CONTEXT_H_
#define GQD_OBS_TRACE_CONTEXT_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace gqd {

/// A distributed trace identity: 128-bit trace id + parent span id.
struct TraceContext {
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t parent_span = 0;

  bool valid() const { return (trace_hi | trace_lo) != 0; }

  /// Lower 32 hex chars of the trace id (no parent), for log correlation
  /// and response `trace_id` fields.
  std::string TraceIdHex() const;

  /// `00-<32 hex trace id>-<16 hex parent span>-01`.
  std::string ToTraceparent() const;

  /// Parses a traceparent produced by ToTraceparent. Returns false (and
  /// leaves *out untouched) on any malformed input or an all-zero trace
  /// id, so callers can treat garbage as "not traced".
  static bool FromTraceparent(const std::string& text, TraceContext* out);

  /// A fresh random 128-bit trace id with no parent.
  static TraceContext Mint();

  Tracer::Binding binding() const {
    return Tracer::Binding{trace_hi, trace_lo, parent_span};
  }
};

/// A span that owns its strings: the parsed form of a SpanRecord that
/// crossed a process boundary, tagged with where it came from.
struct OwnedSpan {
  std::string name;
  std::uint64_t start_ns = 0;  ///< origin-process epoch until aligned
  std::uint64_t dur_ns = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::uint32_t tid = 0;
  std::uint32_t pid = 1;  ///< process track in merged Chrome traces
  std::string source;     ///< "router", "worker 0", ...
  std::vector<std::pair<std::string, std::uint64_t>> args;
};

/// Serializes records as the `spans` command's batch payload: a JSON array
/// of {"name","start_ns","dur_ns","span_id","parent_id","tid","args"}
/// objects with span ids as 16-hex strings.
std::string SerializeSpanBatch(const std::vector<SpanRecord>& spans);

/// Parses a SerializeSpanBatch payload. `source` and `pid` tag every
/// parsed span. Malformed entries are skipped, not fatal: a trace is a
/// diagnostic artifact and a partial one still renders.
std::vector<OwnedSpan> ParseSpanBatch(const std::string& json,
                                      const std::string& source,
                                      std::uint32_t pid);

/// Copies drained local records into OwnedSpans under a source tag.
std::vector<OwnedSpan> OwnSpans(const std::vector<SpanRecord>& spans,
                                const std::string& source, std::uint32_t pid);

/// Renders merged cross-process spans as a nested span tree — the same
/// node shape the per-process SpanTreeToJson emits plus a "source" field:
///   [{"name","start_us","dur_us","tid","source","args":{...},
///     "children":[...]}, ...]
/// Parent links resolve across sources (worker roots nest under the
/// router's transport span); spans whose parent is absent become roots.
std::string MergedSpanTreeToJson(const std::vector<OwnedSpan>& spans);

/// Renders merged cross-process spans as Chrome trace-event JSON: one
/// process track per distinct `pid`, named by `source` via metadata
/// events, plus the same complete-event schema the per-process exporter
/// uses.
std::string MergedTraceToChromeJson(const std::vector<OwnedSpan>& spans);

/// A Tracer plus a bounded holding area, shared by every traced request a
/// process serves. Take() drains the tracer into the holding area and
/// extracts the spans stamped with one trace id, leaving other in-flight
/// traces' spans held for their own Take. The holding area is bounded:
/// spans of traces nobody ever drains (tail-sampling leaves most behind)
/// age out oldest-first.
class SpanCollector {
 public:
  explicit SpanCollector(std::size_t capacity = kDefaultCapacity);

  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  /// Install with Tracer::Scope (plus a TraceBindingScope) for the
  /// duration of a traced request.
  Tracer* tracer() { return &tracer_; }

  /// All held spans stamped (trace_hi, trace_lo), ordered by start time.
  std::vector<SpanRecord> Take(std::uint64_t trace_hi, std::uint64_t trace_lo);

  /// Held spans evicted before anyone took them.
  std::uint64_t evicted() const;

  static constexpr std::size_t kDefaultCapacity = 16 * 1024;

 private:
  Tracer tracer_;
  mutable std::mutex mutex_;
  std::deque<SpanRecord> held_;
  const std::size_t capacity_;
  std::uint64_t evicted_ = 0;
};

}  // namespace gqd

#endif  // GQD_OBS_TRACE_CONTEXT_H_
