// Trace exporters: Chrome trace-event JSON (chrome://tracing / Perfetto)
// and a nested span-tree JSON used by the serve protocol's `trace: true`
// per-request option.

#ifndef GQD_OBS_EXPORT_H_
#define GQD_OBS_EXPORT_H_

#include <string>

#include "obs/trace.h"

namespace gqd {

/// Renders a drained trace as Chrome trace-event JSON: an object with a
/// `traceEvents` array of complete ("ph":"X") events, one track per
/// recording thread. Two gqd-specific extension keys ride along and are
/// ignored by trace viewers: `gqdStageTotals` (exact per-span-name wall
/// totals in nanoseconds, immune to ring overflow) and `gqdDroppedSpans`.
/// Timestamps are microseconds with nanosecond precision, relative to the
/// process trace epoch.
std::string TraceToChromeJson(const Tracer::DrainResult& trace);

/// Renders drained spans as a JSON array of root span nodes, children
/// nested under their parents:
///   [{"name":..., "start_us":..., "dur_us":..., "tid":...,
///     "args":{...}, "children":[...]}, ...]
/// A span whose parent was dropped (ring overflow) or recorded elsewhere
/// becomes a root.
std::string SpanTreeToJson(const std::vector<SpanRecord>& spans);

}  // namespace gqd

#endif  // GQD_OBS_EXPORT_H_
