#include "obs/log.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/json_util.h"
#include "obs/trace.h"

namespace gqd {

namespace {

std::string TraceIdFromBinding() {
  Tracer::Binding binding = Tracer::CurrentBinding();
  if ((binding.trace_hi | binding.trace_lo) == 0) {
    return std::string();
  }
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64 "%016" PRIx64,
                binding.trace_hi, binding.trace_lo);
  return buf;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

bool ParseLogLevel(const std::string& text, LogLevel* out) {
  if (text == "debug") {
    *out = LogLevel::kDebug;
  } else if (text == "info") {
    *out = LogLevel::kInfo;
  } else if (text == "warn") {
    *out = LogLevel::kWarn;
  } else if (text == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

std::string LogEvent::ToJson() const {
  std::string out = "{\"seq\":" + std::to_string(seq);
  out += ",\"ts_ms\":" + std::to_string(wall_ms);
  out += ",\"mono_ns\":" + std::to_string(mono_ns);
  out += ",\"level\":\"";
  out += LogLevelName(level);
  out += "\",\"component\":" + JsonQuote(component);
  out += ",\"event\":" + JsonQuote(event);
  if (!trace_id.empty()) {
    out += ",\"trace_id\":" + JsonQuote(trace_id);
  }
  for (const auto& [key, value] : fields) {
    out += "," + JsonQuote(key) + ":" + JsonQuote(value);
  }
  out.push_back('}');
  return out;
}

EventLog::EventLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

EventLog::~EventLog() = default;

Status EventLog::OpenSink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_.close();
  sink_.clear();
  sink_.open(path, std::ios::app);
  if (!sink_) {
    return Status::InvalidArgument("cannot open log sink '" + path + "'");
  }
  return Status::OK();
}

void EventLog::Emit(LogLevel level, const std::string& component,
                    const std::string& event, std::vector<Field> fields) {
  if (static_cast<int>(level) <
      min_level_.load(std::memory_order_relaxed)) {
    return;
  }
  LogEvent entry;
  entry.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  entry.wall_ms = static_cast<std::int64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  entry.mono_ns = Tracer::NowNs();
  entry.level = level;
  entry.component = component;
  entry.event = event;
  entry.trace_id = TraceIdFromBinding();
  entry.fields = std::move(fields);
  emitted_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  if (sink_.is_open()) {
    sink_ << entry.ToJson() << '\n';
    sink_.flush();
  }
  ring_.push_back(std::move(entry));
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<LogEvent> EventLog::Snapshot(LogLevel min_level) const {
  std::vector<LogEvent> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const LogEvent& event : ring_) {
    if (static_cast<int>(event.level) >= static_cast<int>(min_level)) {
      out.push_back(event);
    }
  }
  return out;
}

std::string EventLog::ToJsonArray(LogLevel min_level) const {
  std::string out = "[";
  bool first = true;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const LogEvent& event : ring_) {
    if (static_cast<int>(event.level) < static_cast<int>(min_level)) {
      continue;
    }
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out += event.ToJson();
  }
  out.push_back(']');
  return out;
}

EventLog& EventLog::Global() {
  // Leaked on purpose: emitters (router health thread, server threads) may
  // outlive static destruction order.
  static EventLog* global = [] {
    auto* log = new EventLog();
    const char* spec = std::getenv("GQD_LOG");
    if (spec != nullptr && *spec != '\0') {
      std::string text(spec);
      std::string level_text = text;
      std::string path;
      if (std::size_t colon = text.find(':'); colon != std::string::npos) {
        level_text = text.substr(0, colon);
        path = text.substr(colon + 1);
      }
      LogLevel level;
      if (ParseLogLevel(level_text, &level)) {
        log->SetMinLevel(level);
      } else {
        std::fprintf(stderr, "gqd: ignoring bad GQD_LOG level '%s'\n",
                     level_text.c_str());
      }
      if (!path.empty()) {
        Status opened = log->OpenSink(path);
        if (!opened.ok()) {
          std::fprintf(stderr, "gqd: %s\n",
                       std::string(opened.message()).c_str());
        }
      }
    }
    return log;
  }();
  return *global;
}

}  // namespace gqd
