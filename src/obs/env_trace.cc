// Process-wide tracing via the GQD_TRACE_OUT environment variable.
//
// When GQD_TRACE_OUT names a file, a global Tracer is created at static
// initialization, installed as the main thread's current tracer, and
// drained to a Chrome trace-event JSON file at static destruction. This
// gives any gqd binary — the benchmark runners in particular, whose mains
// live in google-benchmark — trace output without code changes.
//
// Worker threads spawned by instrumented code pick the tracer up the same
// way they do for scoped tracers: by capturing Tracer::Current() at submit
// time on the main thread.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>

#include "obs/export.h"
#include "obs/trace.h"

namespace gqd {
namespace {

struct EnvTraceHook {
  EnvTraceHook() {
    const char* out = std::getenv("GQD_TRACE_OUT");
    if (out == nullptr || *out == '\0') {
      return;
    }
    path = out;
    tracer.emplace();
    scope.emplace(&*tracer);
  }

  ~EnvTraceHook() {
    if (!tracer.has_value()) {
      return;
    }
    scope.reset();
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file) {
      std::fprintf(stderr, "gqd: cannot write GQD_TRACE_OUT=%s\n",
                   path.c_str());
      return;
    }
    file << TraceToChromeJson(tracer->Drain());
  }

  std::string path;
  std::optional<Tracer> tracer;
  std::optional<Tracer::Scope> scope;
};

// Constructed on the main thread during static init, destroyed after main
// returns (all worker threads joined by then).
EnvTraceHook g_env_trace_hook;

}  // namespace

// Referenced from trace.cc so this archive member — otherwise reachable
// only through its static initializer — is never dropped at link time.
void EnvTraceHookAnchor() {}

}  // namespace gqd
