#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <vector>

#include "common/json_util.h"

namespace gqd {

namespace {

/// Nanoseconds rendered as a decimal microsecond count ("12.345"). Chrome's
/// `ts`/`dur` fields are microseconds; emitting the three sub-microsecond
/// digits keeps short spans distinguishable and the output deterministic.
std::string NsToUsString(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64, ns / 1000,
                ns % 1000);
  return buf;
}

void AppendArgsObject(const SpanRecord& span, std::string* out) {
  out->push_back('{');
  for (std::uint32_t a = 0; a < span.num_attrs; a++) {
    if (a > 0) {
      out->push_back(',');
    }
    *out += JsonQuote(span.attrs[a].key);
    out->push_back(':');
    *out += std::to_string(span.attrs[a].value);
  }
  out->push_back('}');
}

}  // namespace

std::string TraceToChromeJson(const Tracer::DrainResult& trace) {
  std::string out;
  out.reserve(128 + trace.spans.size() * 128);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : trace.spans) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out += "{\"name\":";
    out += JsonQuote(span.name);
    out += ",\"cat\":\"gqd\",\"ph\":\"X\",\"ts\":";
    out += NsToUsString(span.start_ns);
    out += ",\"dur\":";
    out += NsToUsString(span.dur_ns);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(span.tid);
    out += ",\"args\":";
    AppendArgsObject(span, &out);
    out.push_back('}');
  }
  out += "],\"displayTimeUnit\":\"ms\",\"gqdStageTotals\":{";
  first = true;
  for (const StageTotal& total : trace.totals) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out += JsonQuote(total.name);
    out += ":{\"count\":";
    out += std::to_string(total.count);
    out += ",\"total_ns\":";
    out += std::to_string(total.total_ns);
    out.push_back('}');
  }
  out += "},\"gqdDroppedSpans\":";
  out += std::to_string(trace.dropped_spans);
  out.push_back('}');
  return out;
}

namespace {

void AppendSpanNode(const SpanRecord& span,
                    const std::map<std::uint64_t, std::vector<std::size_t>>&
                        children_of,
                    const std::vector<SpanRecord>& spans, std::string* out) {
  *out += "{\"name\":";
  *out += JsonQuote(span.name);
  *out += ",\"start_us\":";
  *out += NsToUsString(span.start_ns);
  *out += ",\"dur_us\":";
  *out += NsToUsString(span.dur_ns);
  *out += ",\"tid\":";
  *out += std::to_string(span.tid);
  *out += ",\"args\":";
  AppendArgsObject(span, out);
  *out += ",\"children\":[";
  auto it = children_of.find(span.span_id);
  if (it != children_of.end()) {
    bool first = true;
    for (std::size_t child : it->second) {
      if (!first) {
        out->push_back(',');
      }
      first = false;
      AppendSpanNode(spans[child], children_of, spans, out);
    }
  }
  *out += "]}";
}

}  // namespace

std::string SpanTreeToJson(const std::vector<SpanRecord>& spans) {
  std::map<std::uint64_t, std::vector<std::size_t>> children_of;
  std::map<std::uint64_t, bool> present;
  for (const SpanRecord& span : spans) {
    present[span.span_id] = true;
  }
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < spans.size(); i++) {
    const SpanRecord& span = spans[i];
    if (span.parent_id != 0 && present.count(span.parent_id) > 0) {
      children_of[span.parent_id].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  std::string out = "[";
  bool first = true;
  for (std::size_t root : roots) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    AppendSpanNode(spans[root], children_of, spans, &out);
  }
  out.push_back(']');
  return out;
}

}  // namespace gqd
