#include "graph/generators.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace gqd {

std::uint64_t SplitMix64::Next() {
  state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t SplitMix64::NextBelow(std::uint64_t bound) {
  assert(bound >= 1);
  return Next() % bound;
}

bool SplitMix64::NextBool(std::uint32_t numerator, std::uint32_t denominator) {
  assert(denominator > 0);
  return NextBelow(denominator) < numerator;
}

DataGraph RandomDataGraph(const RandomGraphOptions& options) {
  SplitMix64 rng(options.seed);
  DataGraph graph;
  for (std::size_t a = 0; a < options.num_labels; a++) {
    graph.AddLabel(std::string(1, static_cast<char>('a' + a % 26)) +
                   (a >= 26 ? std::to_string(a / 26) : ""));
  }
  for (std::size_t d = 0; d < options.num_data_values; d++) {
    graph.AddDataValue(std::to_string(d));
  }
  for (std::size_t v = 0; v < options.num_nodes; v++) {
    graph.AddNode(
        static_cast<ValueId>(rng.NextBelow(options.num_data_values)),
        "v" + std::to_string(v));
  }
  for (NodeId u = 0; u < options.num_nodes; u++) {
    for (LabelId a = 0; a < options.num_labels; a++) {
      for (NodeId v = 0; v < options.num_nodes; v++) {
        if (rng.NextBool(options.edge_percent, 100)) {
          graph.AddEdge(u, a, v);
        }
      }
    }
  }
  return graph;
}

DataGraph LineGraph(const std::vector<std::uint32_t>& values,
                    const char* label) {
  DataGraph graph;
  LabelId a = graph.AddLabel(label);
  for (std::size_t i = 0; i < values.size(); i++) {
    ValueId d = graph.AddDataValue(std::to_string(values[i]));
    graph.AddNode(d, "v" + std::to_string(i));
  }
  for (std::size_t i = 0; i + 1 < values.size(); i++) {
    graph.AddEdge(static_cast<NodeId>(i), a, static_cast<NodeId>(i + 1));
  }
  return graph;
}

DataGraph CycleGraph(const std::vector<std::uint32_t>& values,
                     const char* label) {
  DataGraph graph = LineGraph(values, label);
  if (values.size() > 1) {
    graph.AddEdge(static_cast<NodeId>(values.size() - 1), 0, 0);
  } else if (values.size() == 1) {
    graph.AddEdge(0, 0, 0);
  }
  return graph;
}

void GenerateScaleFree(const ScaleFreeOptions& options, GraphSink* sink) {
  assert(options.num_labels >= 1 && options.num_data_values >= 1);
  SplitMix64 rng(options.seed);
  std::vector<LabelId> labels;
  for (std::size_t a = 0; a < options.num_labels; a++) {
    labels.push_back(
        sink->AddLabel(std::string(1, static_cast<char>('a' + a % 26)) +
                       (a >= 26 ? std::to_string(a / 26) : "")));
  }
  for (std::size_t d = 0; d < options.num_data_values; d++) {
    sink->AddDataValue(std::to_string(d));
  }
  for (std::size_t v = 0; v < options.num_nodes; v++) {
    sink->AddNode(static_cast<ValueId>(rng.NextBelow(options.num_data_values)));
  }
  // Endpoint pool: every edge pushes both endpoints, so a uniform draw from
  // the pool picks nodes with probability proportional to degree.
  std::vector<NodeId> pool;
  pool.reserve(2 * options.edges_per_node * options.num_nodes);
  std::vector<std::uint64_t> picked;  // (label, target) pairs of this node
  for (std::size_t v = 1; v < options.num_nodes; v++) {
    NodeId from = static_cast<NodeId>(v);
    std::size_t want = std::min(options.edges_per_node, v);
    picked.clear();
    // Bounded retries keep the generator total even when the early pool is
    // too small to offer `want` distinct (label, target) pairs.
    for (std::size_t attempts = 0; picked.size() < want && attempts < 8 * want;
         attempts++) {
      NodeId to = pool.empty()
                      ? static_cast<NodeId>(rng.NextBelow(v))
                      : pool[rng.NextBelow(pool.size())];
      LabelId label = labels[rng.NextBelow(labels.size())];
      std::uint64_t key = (static_cast<std::uint64_t>(label) << 32) | to;
      if (std::find(picked.begin(), picked.end(), key) != picked.end()) {
        continue;
      }
      picked.push_back(key);
      sink->AddEdge(from, label, to);
      pool.push_back(from);
      pool.push_back(to);
    }
  }
}

void GenerateGrid(const GridOptions& options, GraphSink* sink) {
  assert(options.rows >= 1 && options.cols >= 1 &&
         options.num_data_values >= 1);
  SplitMix64 rng(options.seed);
  LabelId east = sink->AddLabel("a");
  LabelId south = sink->AddLabel("b");
  for (std::size_t d = 0; d < options.num_data_values; d++) {
    sink->AddDataValue(std::to_string(d));
  }
  for (std::size_t i = 0; i < options.rows * options.cols; i++) {
    sink->AddNode(static_cast<ValueId>(rng.NextBelow(options.num_data_values)));
  }
  for (std::size_t r = 0; r < options.rows; r++) {
    for (std::size_t c = 0; c < options.cols; c++) {
      NodeId at = static_cast<NodeId>(r * options.cols + c);
      if (c + 1 < options.cols) {
        sink->AddEdge(at, east, at + 1);
      }
      if (r + 1 < options.rows) {
        sink->AddEdge(at, south, static_cast<NodeId>(at + options.cols));
      }
    }
  }
}

BinaryRelation RandomRelation(std::size_t num_nodes,
                              std::uint32_t pair_percent, std::uint64_t seed) {
  SplitMix64 rng(seed);
  BinaryRelation rel(num_nodes);
  for (NodeId u = 0; u < num_nodes; u++) {
    for (NodeId v = 0; v < num_nodes; v++) {
      if (rng.NextBool(pair_percent, 100)) {
        rel.Set(u, v);
      }
    }
  }
  return rel;
}

}  // namespace gqd
