#include "graph/generators.h"

#include <cassert>
#include <string>

namespace gqd {

std::uint64_t SplitMix64::Next() {
  state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t SplitMix64::NextBelow(std::uint64_t bound) {
  assert(bound >= 1);
  return Next() % bound;
}

bool SplitMix64::NextBool(std::uint32_t numerator, std::uint32_t denominator) {
  assert(denominator > 0);
  return NextBelow(denominator) < numerator;
}

DataGraph RandomDataGraph(const RandomGraphOptions& options) {
  SplitMix64 rng(options.seed);
  DataGraph graph;
  for (std::size_t a = 0; a < options.num_labels; a++) {
    graph.AddLabel(std::string(1, static_cast<char>('a' + a % 26)) +
                   (a >= 26 ? std::to_string(a / 26) : ""));
  }
  for (std::size_t d = 0; d < options.num_data_values; d++) {
    graph.AddDataValue(std::to_string(d));
  }
  for (std::size_t v = 0; v < options.num_nodes; v++) {
    graph.AddNode(
        static_cast<ValueId>(rng.NextBelow(options.num_data_values)),
        "v" + std::to_string(v));
  }
  for (NodeId u = 0; u < options.num_nodes; u++) {
    for (LabelId a = 0; a < options.num_labels; a++) {
      for (NodeId v = 0; v < options.num_nodes; v++) {
        if (rng.NextBool(options.edge_percent, 100)) {
          graph.AddEdge(u, a, v);
        }
      }
    }
  }
  return graph;
}

DataGraph LineGraph(const std::vector<std::uint32_t>& values,
                    const char* label) {
  DataGraph graph;
  LabelId a = graph.AddLabel(label);
  for (std::size_t i = 0; i < values.size(); i++) {
    ValueId d = graph.AddDataValue(std::to_string(values[i]));
    graph.AddNode(d, "v" + std::to_string(i));
  }
  for (std::size_t i = 0; i + 1 < values.size(); i++) {
    graph.AddEdge(static_cast<NodeId>(i), a, static_cast<NodeId>(i + 1));
  }
  return graph;
}

DataGraph CycleGraph(const std::vector<std::uint32_t>& values,
                     const char* label) {
  DataGraph graph = LineGraph(values, label);
  if (values.size() > 1) {
    graph.AddEdge(static_cast<NodeId>(values.size() - 1), 0, 0);
  } else if (values.size() == 1) {
    graph.AddEdge(0, 0, 0);
  }
  return graph;
}

BinaryRelation RandomRelation(std::size_t num_nodes,
                              std::uint32_t pair_percent, std::uint64_t seed) {
  SplitMix64 rng(seed);
  BinaryRelation rel(num_nodes);
  for (NodeId u = 0; u < num_nodes; u++) {
    for (NodeId v = 0; v < num_nodes; v++) {
      if (rng.NextBool(pair_percent, 100)) {
        rel.Set(u, v);
      }
    }
  }
  return rel;
}

}  // namespace gqd
