#include "graph/serialization.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/json_util.h"

namespace gqd {

namespace {

/// Splits a line into whitespace-separated tokens.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    tokens.push_back(token);
  }
  return tokens;
}

bool IsCommentOrBlank(const std::vector<std::string>& tokens) {
  return tokens.empty() || tokens[0][0] == '#';
}

/// Streams the canonical `node`/`edge` text of `graph` line by line into
/// `emit`. WriteGraphText and FingerprintGraphText must agree byte for byte
/// — this is the single definition both build on.
template <typename Emit>
void EmitGraphText(const DataGraph& graph, Emit&& emit) {
  std::string line;
  line = "# gqd data graph: " + std::to_string(graph.NumNodes()) +
         " nodes, " + std::to_string(graph.NumEdges()) +
         " edges, delta=" + std::to_string(graph.NumDataValues()) + "\n";
  emit(line);
  for (NodeId v = 0; v < graph.NumNodes(); v++) {
    line = "node " + graph.NodeName(v) + " " +
           graph.data_values().NameOf(graph.DataValueOf(v)) + "\n";
    emit(line);
  }
  for (const Edge& e : graph.edges()) {
    line = "edge " + graph.NodeName(e.from) + " " +
           graph.labels().NameOf(e.label) + " " + graph.NodeName(e.to) +
           "\n";
    emit(line);
  }
}

}  // namespace

std::string WriteGraphText(const DataGraph& graph) {
  std::string out;
  // node/edge lines run ~20 bytes; reserve to avoid growth churn on
  // million-node graphs.
  out.reserve(32 * (graph.NumNodes() + graph.NumEdges()) + 64);
  EmitGraphText(graph, [&out](const std::string& line) { out += line; });
  return out;
}

std::uint64_t FingerprintGraphText(const DataGraph& graph) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
  EmitGraphText(graph, [&hash](const std::string& line) {
    for (unsigned char c : line) {
      hash ^= c;
      hash *= 0x100000001b3ULL;  // FNV prime
    }
  });
  return hash;
}

std::string FingerprintToHex(std::uint64_t fingerprint) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return std::string(buffer);
}

Result<DataGraph> ReadGraphText(const std::string& text) {
  DataGraph graph;
  // Parse-local name index: FindNode is a linear scan, which would make
  // edge resolution quadratic in the graph size; the map keeps a
  // million-line parse linear. "#<id>" names (the synthesized anonymous
  // form) still resolve through FindNode below.
  std::unordered_map<std::string, NodeId> nodes_by_name;
  std::istringstream is(text);
  std::string line;
  std::size_t line_number = 0;
  auto resolve = [&](const std::string& name) -> Result<NodeId> {
    auto it = nodes_by_name.find(name);
    if (it != nodes_by_name.end()) {
      return it->second;
    }
    return graph.FindNode(name);
  };
  while (std::getline(is, line)) {
    line_number++;
    std::vector<std::string> tokens = Tokenize(line);
    if (IsCommentOrBlank(tokens)) {
      continue;
    }
    auto error = [&](const std::string& msg) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": " + msg);
    };
    if (tokens[0] == "node") {
      if (tokens.size() != 3) {
        return error("expected: node <name> <data-value>");
      }
      if (nodes_by_name.count(tokens[1]) > 0) {
        return error("duplicate node '" + tokens[1] + "'");
      }
      NodeId id = graph.AddNodeWithValue(tokens[2], tokens[1]);
      nodes_by_name.emplace(tokens[1], id);
    } else if (tokens[0] == "edge") {
      if (tokens.size() != 4) {
        return error("expected: edge <from> <label> <to>");
      }
      auto from = resolve(tokens[1]);
      if (!from.ok()) {
        return error("unknown node '" + tokens[1] + "'");
      }
      auto to = resolve(tokens[3]);
      if (!to.ok()) {
        return error("unknown node '" + tokens[3] + "'");
      }
      graph.AddEdgeByName(from.value(), tokens[2], to.value());
    } else {
      return error("unknown directive '" + tokens[0] + "'");
    }
  }
  GQD_RETURN_NOT_OK(graph.Validate());
  return graph;
}

std::string WriteGraphDot(const DataGraph& graph) {
  std::ostringstream os;
  os << "digraph gqd {\n";
  for (NodeId v = 0; v < graph.NumNodes(); v++) {
    os << "  n" << v << " [label=\"" << graph.NodeName(v) << "\\n"
       << graph.data_values().NameOf(graph.DataValueOf(v)) << "\"];\n";
  }
  for (const Edge& e : graph.edges()) {
    os << "  n" << e.from << " -> n" << e.to << " [label=\""
       << graph.labels().NameOf(e.label) << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string WriteGraphInfoJson(const DataGraph& graph) {
  std::ostringstream os;
  os << "{\"nodes\":" << graph.NumNodes() << ",\"edges\":" << graph.NumEdges()
     << ",\"alphabet\":[";
  const std::vector<std::string>& labels = graph.labels().names();
  for (std::size_t i = 0; i < labels.size(); i++) {
    os << (i > 0 ? "," : "") << JsonQuote(labels[i]);
  }
  os << "],\"data_values\":[";
  const std::vector<std::string>& values = graph.data_values().names();
  for (std::size_t i = 0; i < values.size(); i++) {
    os << (i > 0 ? "," : "") << JsonQuote(values[i]);
  }
  os << "],\"num_data_values\":" << graph.NumDataValues() << "}";
  return os.str();
}

std::string WriteRelationText(const DataGraph& graph,
                              const BinaryRelation& rel) {
  std::ostringstream os;
  for (const auto& [u, v] : rel.Pairs()) {
    os << "pair " << graph.NodeName(u) << " " << graph.NodeName(v) << "\n";
  }
  return os.str();
}

Result<BinaryRelation> ReadRelationText(const DataGraph& graph,
                                        const std::string& text) {
  auto pairs = ReadRelationPairsText(graph, text);
  GQD_RETURN_NOT_OK(pairs.status());
  BinaryRelation rel(graph.NumNodes());
  for (const auto& [u, v] : pairs.value()) {
    rel.Set(u, v);
  }
  return rel;
}

Result<std::vector<std::pair<NodeId, NodeId>>> ReadRelationPairsText(
    const DataGraph& graph, const std::string& text) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  std::istringstream is(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    line_number++;
    std::vector<std::string> tokens = Tokenize(line);
    if (IsCommentOrBlank(tokens)) {
      continue;
    }
    if (tokens[0] != "pair" || tokens.size() != 3) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": expected: pair <u> <v>");
    }
    auto u = graph.FindNode(tokens[1]);
    auto v = graph.FindNode(tokens[2]);
    if (!u.ok() || !v.ok()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": unknown node '" +
          (u.ok() ? tokens[2] : tokens[1]) + "'");
    }
    pairs.emplace_back(u.value(), v.value());
  }
  return pairs;
}

std::string WriteRelationPairsText(
    const DataGraph& graph, std::vector<std::pair<NodeId, NodeId>> pairs) {
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  std::string out;
  out.reserve(24 * pairs.size());
  for (const auto& [u, v] : pairs) {
    out += "pair ";
    out += graph.NodeName(u);
    out += " ";
    out += graph.NodeName(v);
    out += "\n";
  }
  return out;
}

Result<TupleRelation> ReadTupleRelationText(const DataGraph& graph,
                                            const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::size_t line_number = 0;
  std::vector<NodeTuple> tuples;
  std::size_t arity = 0;
  while (std::getline(is, line)) {
    line_number++;
    std::vector<std::string> tokens = Tokenize(line);
    if (IsCommentOrBlank(tokens)) {
      continue;
    }
    if (tokens[0] != "tuple" || tokens.size() < 2) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": expected: tuple <n1> ... <nr>");
    }
    NodeTuple tuple;
    for (std::size_t i = 1; i < tokens.size(); i++) {
      auto v = graph.FindNode(tokens[i]);
      if (!v.ok()) {
        return Status::InvalidArgument("line " + std::to_string(line_number) +
                                       ": unknown node '" + tokens[i] + "'");
      }
      tuple.push_back(v.value());
    }
    if (arity == 0) {
      arity = tuple.size();
    } else if (tuple.size() != arity) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": inconsistent tuple arity");
    }
    tuples.push_back(std::move(tuple));
  }
  if (arity == 0) {
    return Status::InvalidArgument("relation file contains no tuples");
  }
  TupleRelation rel(arity);
  for (NodeTuple& t : tuples) {
    rel.Insert(std::move(t));
  }
  return rel;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "'");
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace gqd
