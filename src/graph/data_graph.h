// The data-graph model of Libkin & Vrgoč, as used by the paper.
//
// A data graph over a finite alphabet Σ and an infinite value domain D is
// G = (V, E, ρ): finitely many nodes, Σ-labelled directed edges, and a data
// value ρ(v) on every node (Definition 1 of the paper). Only the equality
// partition induced by ρ is observable to the query languages (Fact 10), so
// data values are interned to dense ids; δ denotes how many distinct values
// the graph actually uses.
//
// A DataGraph has two storage modes behind one read API:
//
//  - resident: built additively (AddLabel / AddNode / AddEdge) into owned
//    vectors — the mode every text parse and generator produces;
//  - view: frozen, borrowing node values, edge list, CSR adjacency and the
//    optional name table from externally owned memory — the zero-copy mode
//    the mmap-backed GraphStore (src/storage/) produces straight out of a
//    mapped binary container.
//
// Readers cannot tell the modes apart (adjacency comes back as std::span
// either way); mutation is only legal on resident graphs.

#ifndef GQD_GRAPH_DATA_GRAPH_H_
#define GQD_GRAPH_DATA_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "common/status.h"

namespace gqd {

/// Dense node index within one DataGraph.
using NodeId = std::uint32_t;
/// Dense edge-label index within one DataGraph's alphabet Σ.
using LabelId = std::uint32_t;
/// Dense data-value index within one DataGraph (the partition class of ρ).
using ValueId = std::uint32_t;

/// A directed labelled edge (source, label, target).
struct Edge {
  NodeId from;
  LabelId label;
  NodeId to;

  bool operator==(const Edge& other) const = default;
};

/// One adjacency entry: the label and the far endpoint of an edge incident
/// to the node whose list it sits in. Fixed 8-byte layout — the binary
/// graph container stores CSR entry sections as arrays of this struct and
/// the view mode reads them in place.
struct LabeledEdge {
  LabelId label;
  NodeId node;

  bool operator==(const LabeledEdge& other) const = default;
};

/// Borrowed storage for a view-mode DataGraph. All pointers must stay valid
/// for the lifetime of the graph (the mmap backend parks the mapping in a
/// shared keepalive). Offsets arrays have num_nodes + 1 entries; entry
/// arrays have num_edges entries. The name table is optional (both
/// pointers null when every node is anonymous).
struct GraphView {
  std::size_t num_nodes = 0;
  std::size_t num_edges = 0;
  const ValueId* node_values = nullptr;
  const Edge* edges = nullptr;
  const std::uint64_t* out_offsets = nullptr;
  const LabeledEdge* out_entries = nullptr;
  const std::uint64_t* in_offsets = nullptr;
  const LabeledEdge* in_entries = nullptr;
  const std::uint64_t* name_offsets = nullptr;
  const char* name_blob = nullptr;
};

/// A finite directed graph with Σ-labelled edges and data-valued nodes.
///
/// Construction is additive: AddLabel / AddNode / AddEdge. Nodes carry an
/// optional display name (used by serialization and the examples); names are
/// unique when present.
class DataGraph {
 public:
  DataGraph() = default;

  /// Wraps borrowed storage (see GraphView) as a frozen graph. `labels` and
  /// `values` are materialized eagerly — Σ and δ are small even for
  /// million-node graphs, so interners are the one part of a mapped graph
  /// that lives on the heap.
  static DataGraph FromView(StringInterner labels, StringInterner values,
                            const GraphView& view);

  // --- Construction (resident graphs only) --------------------------------

  /// Interns an edge label; idempotent.
  LabelId AddLabel(std::string_view name) { return labels_.Intern(name); }

  /// Interns a data value by name (e.g. "0", "movie:Alien"); idempotent.
  ValueId AddDataValue(std::string_view name) { return values_.Intern(name); }

  /// Adds a node with the given data value; returns its id.
  /// `name` may be empty (anonymous node).
  NodeId AddNode(ValueId value, std::string_view name = "");

  /// Adds a node whose data value is interned from `value_name`.
  NodeId AddNodeWithValue(std::string_view value_name,
                          std::string_view name = "") {
    return AddNode(AddDataValue(value_name), name);
  }

  /// Adds the edge (from, label, to); duplicate edges are ignored.
  void AddEdge(NodeId from, LabelId label, NodeId to);

  /// Adds an edge by label name, interning the label if new.
  void AddEdgeByName(NodeId from, std::string_view label, NodeId to) {
    AddEdge(from, AddLabel(label), to);
  }

  // --- Shape --------------------------------------------------------------

  std::size_t NumNodes() const {
    return frozen_ ? view_.num_nodes : node_values_.size();
  }
  std::size_t NumLabels() const { return labels_.size(); }
  /// δ: the number of distinct data values used by the graph.
  std::size_t NumDataValues() const { return values_.size(); }
  std::size_t NumEdges() const {
    return frozen_ ? view_.num_edges : edges_.size();
  }

  /// True for a frozen view-mode graph (mmap backend); false for the
  /// resident, mutable mode.
  bool is_view() const { return frozen_; }

  /// ρ(v): the data value of node v.
  ValueId DataValueOf(NodeId v) const {
    return frozen_ ? view_.node_values[v] : node_values_[v];
  }

  /// All edges in insertion order (the canonical serialization order).
  std::span<const Edge> edges() const {
    return frozen_ ? std::span<const Edge>(view_.edges, view_.num_edges)
                   : std::span<const Edge>(edges_);
  }

  /// Out-edges of `v` as (label, target) entries. Resident graphs keep
  /// insertion order; view graphs are sorted by (label, target) — readers
  /// must not rely on a particular order.
  std::span<const LabeledEdge> OutEdges(NodeId v) const {
    if (frozen_) {
      return {view_.out_entries + view_.out_offsets[v],
              static_cast<std::size_t>(view_.out_offsets[v + 1] -
                                       view_.out_offsets[v])};
    }
    return out_edges_[v];
  }
  /// In-edges of `v` as (label, source) entries; ordering as for OutEdges.
  std::span<const LabeledEdge> InEdges(NodeId v) const {
    if (frozen_) {
      return {view_.in_entries + view_.in_offsets[v],
              static_cast<std::size_t>(view_.in_offsets[v + 1] -
                                       view_.in_offsets[v])};
    }
    return in_edges_[v];
  }

  /// True iff the edge (from, label, to) exists.
  bool HasEdge(NodeId from, LabelId label, NodeId to) const;

  // --- Names --------------------------------------------------------------

  const StringInterner& labels() const { return labels_; }
  const StringInterner& data_values() const { return values_; }

  /// Display name of node `v` ("#<id>" if anonymous).
  std::string NodeName(NodeId v) const;

  /// The stored name of `v` ("" when anonymous); no "#<id>" synthesis.
  std::string_view RawNodeName(NodeId v) const;

  /// Finds a node by display name. Accepts the synthesized "#<id>" form
  /// for anonymous nodes, so relation files can address nodes of generated
  /// (nameless) graphs.
  Result<NodeId> FindNode(std::string_view name) const;

  /// Validates internal invariants (edge endpoints in range, etc.).
  Status Validate() const;

  /// Rough heap footprint of this graph's owned storage in bytes. View
  /// graphs only own their interners — the mapped sections are file-backed
  /// and accounted separately by the GraphStore.
  std::size_t EstimateResidentBytes() const;

 private:
  StringInterner labels_;
  StringInterner values_;
  // Resident storage; unused (empty) in view mode.
  std::vector<ValueId> node_values_;
  std::vector<std::string> node_names_;  // "" when anonymous
  std::size_t num_named_ = 0;            // lets FindNode skip all-anonymous scans
  std::vector<Edge> edges_;
  std::vector<std::vector<LabeledEdge>> out_edges_;
  std::vector<std::vector<LabeledEdge>> in_edges_;
  // View storage; all-null when resident.
  GraphView view_;
  bool frozen_ = false;
};

}  // namespace gqd

#endif  // GQD_GRAPH_DATA_GRAPH_H_
