// The data-graph model of Libkin & Vrgoč, as used by the paper.
//
// A data graph over a finite alphabet Σ and an infinite value domain D is
// G = (V, E, ρ): finitely many nodes, Σ-labelled directed edges, and a data
// value ρ(v) on every node (Definition 1 of the paper). Only the equality
// partition induced by ρ is observable to the query languages (Fact 10), so
// data values are interned to dense ids; δ denotes how many distinct values
// the graph actually uses.

#ifndef GQD_GRAPH_DATA_GRAPH_H_
#define GQD_GRAPH_DATA_GRAPH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "common/status.h"

namespace gqd {

/// Dense node index within one DataGraph.
using NodeId = std::uint32_t;
/// Dense edge-label index within one DataGraph's alphabet Σ.
using LabelId = std::uint32_t;
/// Dense data-value index within one DataGraph (the partition class of ρ).
using ValueId = std::uint32_t;

/// A directed labelled edge (source, label, target).
struct Edge {
  NodeId from;
  LabelId label;
  NodeId to;

  bool operator==(const Edge& other) const = default;
};

/// A finite directed graph with Σ-labelled edges and data-valued nodes.
///
/// Construction is additive: AddLabel / AddNode / AddEdge. Nodes carry an
/// optional display name (used by serialization and the examples); names are
/// unique when present.
class DataGraph {
 public:
  DataGraph() = default;

  // --- Construction -------------------------------------------------------

  /// Interns an edge label; idempotent.
  LabelId AddLabel(std::string_view name) { return labels_.Intern(name); }

  /// Interns a data value by name (e.g. "0", "movie:Alien"); idempotent.
  ValueId AddDataValue(std::string_view name) { return values_.Intern(name); }

  /// Adds a node with the given data value; returns its id.
  /// `name` may be empty (anonymous node).
  NodeId AddNode(ValueId value, std::string_view name = "");

  /// Adds a node whose data value is interned from `value_name`.
  NodeId AddNodeWithValue(std::string_view value_name,
                          std::string_view name = "") {
    return AddNode(AddDataValue(value_name), name);
  }

  /// Adds the edge (from, label, to); duplicate edges are ignored.
  void AddEdge(NodeId from, LabelId label, NodeId to);

  /// Adds an edge by label name, interning the label if new.
  void AddEdgeByName(NodeId from, std::string_view label, NodeId to) {
    AddEdge(from, AddLabel(label), to);
  }

  // --- Shape --------------------------------------------------------------

  std::size_t NumNodes() const { return node_values_.size(); }
  std::size_t NumLabels() const { return labels_.size(); }
  /// δ: the number of distinct data values used by the graph.
  std::size_t NumDataValues() const { return values_.size(); }
  std::size_t NumEdges() const { return edges_.size(); }

  /// ρ(v): the data value of node v.
  ValueId DataValueOf(NodeId v) const { return node_values_[v]; }

  const std::vector<Edge>& edges() const { return edges_; }

  /// Out-edges of `v` as (label, target) pairs, in insertion order.
  const std::vector<std::pair<LabelId, NodeId>>& OutEdges(NodeId v) const {
    return out_edges_[v];
  }
  /// In-edges of `v` as (label, source) pairs, in insertion order.
  const std::vector<std::pair<LabelId, NodeId>>& InEdges(NodeId v) const {
    return in_edges_[v];
  }

  /// True iff the edge (from, label, to) exists.
  bool HasEdge(NodeId from, LabelId label, NodeId to) const;

  // --- Names --------------------------------------------------------------

  const StringInterner& labels() const { return labels_; }
  const StringInterner& data_values() const { return values_; }

  /// Display name of node `v` ("#<id>" if anonymous).
  std::string NodeName(NodeId v) const;

  /// Finds a node by display name.
  Result<NodeId> FindNode(std::string_view name) const;

  /// Validates internal invariants (edge endpoints in range, etc.).
  Status Validate() const;

 private:
  StringInterner labels_;
  StringInterner values_;
  std::vector<ValueId> node_values_;
  std::vector<std::string> node_names_;  // "" when anonymous
  std::vector<Edge> edges_;
  std::vector<std::vector<std::pair<LabelId, NodeId>>> out_edges_;
  std::vector<std::vector<std::pair<LabelId, NodeId>>> in_edges_;
};

}  // namespace gqd

#endif  // GQD_GRAPH_DATA_GRAPH_H_
