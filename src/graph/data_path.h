// Data paths (Section 2 of the paper).
//
// A data path over Σ[D]* alternates data values and letters:
// d0 a0 d1 a1 ... a{m-1} dm. Two data paths are automorphic when a bijection
// of D maps one onto the other; REM/REE cannot distinguish automorphic paths
// (Fact 10), so CanonicalForm — first-occurrence renaming of values — is the
// library's normal form for the equivalence class [w].

#ifndef GQD_GRAPH_DATA_PATH_H_
#define GQD_GRAPH_DATA_PATH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/data_graph.h"

namespace gqd {

/// A data path: values.size() == letters.size() + 1, always non-empty.
/// The one-value, zero-letter path is the unit ("d" in the paper).
struct DataPath {
  std::vector<ValueId> values;
  std::vector<LabelId> letters;

  /// The single-value data path `d`.
  static DataPath Unit(ValueId d) { return DataPath{{d}, {}}; }

  /// Number of letters (edges traversed); 0 for the unit path.
  std::size_t Length() const { return letters.size(); }

  bool operator==(const DataPath& other) const = default;

  /// Appends one step (letter, value).
  void Append(LabelId letter, ValueId value) {
    letters.push_back(letter);
    values.push_back(value);
  }

  /// Concatenation w1 · w2; requires last value of this == first of `other`
  /// (the paper's concatenation overlaps the shared value).
  Result<DataPath> Concat(const DataPath& other) const;

  /// Renames data values in order of first occurrence: the canonical
  /// representative of the automorphism class [w].
  DataPath CanonicalForm() const;

  /// True iff `other` is an automorphic image of this path (Definition 9).
  bool IsAutomorphicTo(const DataPath& other) const {
    return CanonicalForm() == other.CanonicalForm();
  }

  /// Renders e.g. "0 a 1 a 0" using the graph's label/value names.
  std::string ToString(const DataGraph& graph) const;
};

/// The data path w_ξ of a node path ξ = v0 a0 v1 ... (values read off ρ).
/// Returns an error if some edge (v_i, a_i, v_{i+1}) is missing.
Result<DataPath> DataPathOfNodePath(const DataGraph& graph,
                                    const std::vector<NodeId>& nodes,
                                    const std::vector<LabelId>& labels);

/// Enumerates all data paths of length <= max_length that connect `from`
/// to `to` in `graph` (used by tests and brute-force oracles; exponential).
std::vector<DataPath> EnumerateConnectingPaths(const DataGraph& graph,
                                               NodeId from, NodeId to,
                                               std::size_t max_length);

/// All node paths (as node sequences with labels) from `from` of exactly
/// the lengths 0..max_length, paired with endpoints; helper for oracles.
struct NodePath {
  std::vector<NodeId> nodes;    ///< nodes.size() == labels.size() + 1
  std::vector<LabelId> labels;
};

/// Enumerates node paths starting at `from` with length <= max_length.
std::vector<NodePath> EnumerateNodePaths(const DataGraph& graph, NodeId from,
                                         std::size_t max_length);

}  // namespace gqd

#endif  // GQD_GRAPH_DATA_PATH_H_
