// Density-adaptive relation representations.
//
// BinaryRelation (relation.h) stores an n×n bit matrix — n²/8 bytes — which
// is ideal for the REE level closure on small graphs but is 125 GB at a
// million nodes. Real candidate relations on mmap-era graphs are sparse, so
// this layer adds two more representations behind one facade:
//
//   * SparseBinaryRelation — sorted coordinate list in CSR form. O(nnz)
//     bytes; membership by binary search within a row. The right shape for
//     nnz ≪ n (a few pairs per source, or most sources empty).
//   * BlockedBinaryRelation — roaring-style per-row containers: a sorted
//     u32 array while the row is small, a packed bitmap once the array
//     would outweigh it. The right shape for mid-density relations, and the
//     representation the streaming REE closure composes in.
//   * BinaryRelation — the dense matrix, retained for small n where n²/8 is
//     trivially affordable and the word-parallel kernels win outright.
//
// AdaptiveRelation picks one of the three from (n, nnz) — or an explicit
// override — and is what the checkers and the CLI admission path consume.
// All three representations describe the same set of pairs; the checkers'
// differential tests pin their verdicts bit-identical.

#ifndef GQD_GRAPH_SPARSE_RELATION_H_
#define GQD_GRAPH_SPARSE_RELATION_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bitset.h"
#include "graph/data_graph.h"
#include "graph/relation.h"

namespace gqd {

/// Which physical representation an AdaptiveRelation uses.
enum class RelationBackend : std::uint8_t {
  kAuto,     ///< Let ChooseRelationBackend pick from (n, nnz).
  kDense,    ///< n×n bit matrix (BinaryRelation).
  kSparse,   ///< Sorted coordinate list (CSR).
  kBlocked,  ///< Per-row array/bitmap containers.
};

/// Stable lowercase name ("auto", "dense", "sparse", "blocked") for CLI
/// flags, traces, metrics, and partial-progress messages.
const char* RelationBackendName(RelationBackend backend);

/// Parses a backend name as accepted by `--relation-backend`; returns true
/// and sets `*out` on success.
bool ParseRelationBackend(const std::string& name, RelationBackend* out);

/// Picks the representation for an n-node relation with `nnz` pairs. Dense
/// while the matrix is small in absolute terms (n ≤ 4096 ⇒ ≤ 2 MB) or the
/// relation is dense enough that containers cannot beat it; sparse while
/// rows average only a handful of entries; blocked in between.
RelationBackend ChooseRelationBackend(std::size_t n, std::size_t nnz);

/// Admission estimate, in bytes, of building the given backend for an
/// n-node relation with `nnz` pairs. kAuto estimates whatever
/// ChooseRelationBackend would pick. This is what `gqd check` charges
/// against --max-bytes instead of the old unconditional n²/8.
std::size_t EstimateRelationBytes(RelationBackend backend, std::size_t n,
                                  std::size_t nnz);

/// A binary relation as a sorted coordinate list (CSR: one offset per
/// source row into a single sorted column array). Immutable after
/// construction; O(nnz) bytes; Test is a binary search within the row.
class SparseBinaryRelation {
 public:
  SparseBinaryRelation() = default;

  /// Builds from pairs. The pairs need not be sorted or unique; the
  /// constructor sorts row-major and deduplicates.
  static SparseBinaryRelation FromPairs(
      std::size_t n, std::vector<std::pair<NodeId, NodeId>> pairs);

  std::size_t num_nodes() const { return n_; }
  std::size_t Nnz() const { return cols_.size(); }
  bool Empty() const { return cols_.empty(); }

  bool Test(NodeId u, NodeId v) const {
    const NodeId* begin = cols_.data() + offsets_[u];
    const NodeId* end = cols_.data() + offsets_[u + 1];
    return std::binary_search(begin, end, v);
  }

  std::size_t RowDegree(NodeId u) const { return offsets_[u + 1] - offsets_[u]; }

  /// Calls fn(v) for each v with (u, v) in the relation, ascending.
  template <typename Fn>
  void ForEachInRow(NodeId u, Fn&& fn) const {
    for (std::size_t i = offsets_[u]; i < offsets_[u + 1]; ++i) {
      fn(cols_[i]);
    }
  }

  /// All pairs in row-major order (the canonical order shared by every
  /// representation).
  std::vector<std::pair<NodeId, NodeId>> Pairs() const;

  /// Actual footprint of the offsets + column arrays.
  std::size_t ByteSize() const {
    return offsets_.size() * sizeof(std::uint64_t) +
           cols_.size() * sizeof(NodeId);
  }

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> offsets_;  // n+1 entries
  std::vector<NodeId> cols_;            // row-major, sorted within each row
};

/// A binary relation with roaring-style per-row containers: each row is
/// either a sorted u32 array (while its cardinality is at most
/// ArrayThreshold(n)) or an n-bit bitmap. The container choice is canonical
/// — a function of the row's cardinality only — so equal relations always
/// have identical physical layout, making Equal/Hash cheap and exact.
///
/// Unlike SparseBinaryRelation this representation supports the REE
/// operator set (union, composition, =/≠ restriction), composing by
/// streaming each source row's frontier through the other relation's rows
/// into an n-bit scratch and recompressing — never materializing anything
/// larger than one row.
class BlockedBinaryRelation {
 public:
  BlockedBinaryRelation() = default;

  /// Empty relation on n nodes.
  explicit BlockedBinaryRelation(std::size_t n) : n_(n), rows_(n) {}

  /// Array rows flip to bitmaps above this cardinality: the break-even
  /// point where 4·card bytes of sorted u32s would exceed the n/8-byte
  /// bitmap (with a small floor so tiny rows never allocate bitmap words).
  static std::size_t ArrayThreshold(std::size_t n) {
    return std::max<std::size_t>(8, n / 32);
  }

  static BlockedBinaryRelation FromPairs(
      std::size_t n, std::vector<std::pair<NodeId, NodeId>> pairs);
  static BlockedBinaryRelation FromDense(const BinaryRelation& dense);
  static BlockedBinaryRelation Identity(std::size_t n);
  /// {(u, v) | (u, label, v) ∈ E} — the letter relation S_a.
  static BlockedBinaryRelation FromEdges(const DataGraph& graph,
                                         LabelId label);

  std::size_t num_nodes() const { return n_; }
  std::size_t Nnz() const { return nnz_; }
  std::size_t Count() const { return nnz_; }
  bool Empty() const { return nnz_ == 0; }

  bool Test(NodeId u, NodeId v) const {
    const Row& row = rows_[u];
    if (row.is_bitmap) {
      return row.bits.Test(v);
    }
    return std::binary_search(row.array.begin(), row.array.end(), v);
  }

  std::size_t RowDegree(NodeId u) const {
    const Row& row = rows_[u];
    return row.is_bitmap ? row.card : row.array.size();
  }

  /// True iff row u currently uses the bitmap container (exposed so the
  /// flip-point property tests can pin the array↔bitmap boundary).
  bool RowIsBitmap(NodeId u) const { return rows_[u].is_bitmap; }

  /// Calls fn(v) for each v with (u, v) in the relation, ascending.
  template <typename Fn>
  void ForEachInRow(NodeId u, Fn&& fn) const {
    const Row& row = rows_[u];
    if (row.is_bitmap) {
      for (std::size_t v = row.bits.FindNext(0); v < n_;
           v = row.bits.FindNext(v + 1)) {
        fn(static_cast<NodeId>(v));
      }
    } else {
      for (NodeId v : row.array) {
        fn(v);
      }
    }
  }

  std::vector<std::pair<NodeId, NodeId>> Pairs() const;

  /// ORs row u into an n-bit scratch (used by the streaming composition).
  void OrRowInto(NodeId u, DynamicBitset* scratch) const;

  /// Replaces row u with the set bits of `scratch`, choosing the canonical
  /// container for the new cardinality.
  void SetRowFromBitset(NodeId u, const DynamicBitset& scratch);

  /// S1 + S2: row-wise union, recompressed per row.
  BlockedBinaryRelation& UnionWith(const BlockedBinaryRelation& other);

  /// S1 ∘ S2 by frontier streaming: for each source u, OR together
  /// other's rows at this's row-u frontier into one n-bit scratch, then
  /// compress. Peak intermediate is a single row, not an n² matrix.
  BlockedBinaryRelation Compose(const BlockedBinaryRelation& other) const;

  /// S= / S≠ against the node partition (Definition 26's restrictions).
  BlockedBinaryRelation EqRestrict(const ValueClassMasks& masks) const;
  BlockedBinaryRelation NeqRestrict(const ValueClassMasks& masks) const;

  bool IsSubsetOf(const BlockedBinaryRelation& other) const;

  bool operator==(const BlockedBinaryRelation& other) const;
  bool operator!=(const BlockedBinaryRelation& other) const {
    return !(*this == other);
  }

  /// Hash over the canonical (row-major sorted) pair stream. Because the
  /// container choice is canonical, equal relations hash equal regardless
  /// of how they were built.
  std::size_t Hash() const;

  /// Dense expansion (small n only; used by tests and verdict bridging).
  BinaryRelation ToDense() const;

  /// Actual footprint across all row containers.
  std::size_t ByteSize() const;

 private:
  struct Row {
    bool is_bitmap = false;
    std::size_t card = 0;           // only tracked for bitmap rows
    std::vector<NodeId> array;      // sorted; empty when is_bitmap
    DynamicBitset bits;             // empty when !is_bitmap
  };

  void SetRowFromSortedArray(NodeId u, std::vector<NodeId> sorted);

  std::size_t n_ = 0;
  std::size_t nnz_ = 0;
  std::vector<Row> rows_;
};

/// std::hash adapter for BlockedBinaryRelation.
struct BlockedBinaryRelationHash {
  std::size_t operator()(const BlockedBinaryRelation& r) const {
    return r.Hash();
  }
};

/// The facade the checkers and CLI consume: one of the three physical
/// representations, chosen by ChooseRelationBackend or forced by an
/// explicit override. Read-only once built.
class AdaptiveRelation {
 public:
  AdaptiveRelation() = default;

  /// Builds from pairs (sorted/deduplicated internally). `choice` kAuto
  /// defers to ChooseRelationBackend(n, distinct pairs).
  static AdaptiveRelation FromPairs(
      std::size_t n, std::vector<std::pair<NodeId, NodeId>> pairs,
      RelationBackend choice = RelationBackend::kAuto);

  /// Wraps an existing dense relation (backend is kDense).
  static AdaptiveRelation FromDense(BinaryRelation dense);

  RelationBackend backend() const { return backend_; }
  std::size_t num_nodes() const { return n_; }
  std::size_t Nnz() const { return nnz_; }
  bool Empty() const { return nnz_ == 0; }

  bool Test(NodeId u, NodeId v) const {
    switch (backend_) {
      case RelationBackend::kDense:
        return dense_.Test(u, v);
      case RelationBackend::kSparse:
        return sparse_.Test(u, v);
      default:
        return blocked_.Test(u, v);
    }
  }

  /// All pairs in row-major order — identical across backends.
  std::vector<std::pair<NodeId, NodeId>> Pairs() const;

  /// The wrapped dense relation; only valid when backend() == kDense.
  const BinaryRelation& dense() const { return dense_; }
  const SparseBinaryRelation& sparse() const { return sparse_; }
  const BlockedBinaryRelation& blocked() const { return blocked_; }

  /// Dense expansion regardless of backend (small n only).
  BinaryRelation ToDense() const;

  /// Footprint of the selected representation.
  std::size_t ByteSize() const;

 private:
  RelationBackend backend_ = RelationBackend::kDense;
  std::size_t n_ = 0;
  std::size_t nnz_ = 0;
  BinaryRelation dense_;
  SparseBinaryRelation sparse_;
  BlockedBinaryRelation blocked_;
};

}  // namespace gqd

#endif  // GQD_GRAPH_SPARSE_RELATION_H_
