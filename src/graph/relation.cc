#include "graph/relation.h"

#include <cassert>
#include <sstream>

namespace gqd {

ValueClassMasks::ValueClassMasks(const DataGraph& graph) {
  std::size_t n = graph.NumNodes();
  value_of_.resize(n);
  masks_.assign(graph.NumDataValues() == 0 ? 1 : graph.NumDataValues(),
                DynamicBitset(n));
  for (NodeId v = 0; v < n; v++) {
    value_of_[v] = graph.DataValueOf(v);
    masks_[value_of_[v]].Set(v);
  }
}

bool ValueClassMasks::AllSingletons() const {
  for (const DynamicBitset& mask : masks_) {
    if (mask.Count() > 1) {
      return false;
    }
  }
  return true;
}

BinaryRelation BinaryRelation::Identity(std::size_t n) {
  BinaryRelation r(n);
  for (NodeId v = 0; v < n; v++) {
    r.Set(v, v);
  }
  return r;
}

BinaryRelation BinaryRelation::Full(std::size_t n) {
  BinaryRelation r(n);
  for (NodeId u = 0; u < n; u++) {
    for (NodeId v = 0; v < n; v++) {
      r.Set(u, v);
    }
  }
  return r;
}

BinaryRelation BinaryRelation::FromEdges(const DataGraph& graph,
                                         LabelId label) {
  BinaryRelation r(graph.NumNodes());
  for (const Edge& e : graph.edges()) {
    if (e.label == label) {
      r.Set(e.from, e.to);
    }
  }
  return r;
}

BinaryRelation BinaryRelation::FromPairs(
    std::size_t n, const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  BinaryRelation r(n);
  for (const auto& [u, v] : pairs) {
    assert(u < n && v < n);
    r.Set(u, v);
  }
  return r;
}

std::size_t BinaryRelation::Count() const {
  std::size_t total = 0;
  for (const auto& row : rows_) {
    total += row.Count();
  }
  return total;
}

bool BinaryRelation::Empty() const {
  for (const auto& row : rows_) {
    if (row.Any()) {
      return false;
    }
  }
  return true;
}

std::vector<std::pair<NodeId, NodeId>> BinaryRelation::Pairs() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  for (NodeId u = 0; u < n_; u++) {
    for (std::size_t v = rows_[u].FindNext(0); v < n_;
         v = rows_[u].FindNext(v + 1)) {
      out.emplace_back(u, static_cast<NodeId>(v));
    }
  }
  return out;
}

BinaryRelation& BinaryRelation::UnionWith(const BinaryRelation& other) {
  assert(n_ == other.n_);
  for (std::size_t u = 0; u < n_; u++) {
    rows_[u] |= other.rows_[u];
  }
  return *this;
}

BinaryRelation BinaryRelation::Compose(const BinaryRelation& other) const {
  assert(n_ == other.n_);
  BinaryRelation result(n_);
  for (NodeId u = 0; u < n_; u++) {
    // result.row(u) = union of other.row(z) over all z with (u,z) in this.
    const DynamicBitset& mids = rows_[u];
    DynamicBitset& out = result.rows_[u];
    for (std::size_t z = mids.FindNext(0); z < n_; z = mids.FindNext(z + 1)) {
      out |= other.rows_[z];
    }
  }
  return result;
}

BinaryRelation BinaryRelation::EqRestrict(const DataGraph& graph) const {
  assert(graph.NumNodes() == n_);
  BinaryRelation result(n_);
  for (NodeId u = 0; u < n_; u++) {
    const DynamicBitset& row = rows_[u];
    for (std::size_t v = row.FindNext(0); v < n_; v = row.FindNext(v + 1)) {
      if (graph.DataValueOf(u) == graph.DataValueOf(static_cast<NodeId>(v))) {
        result.Set(u, static_cast<NodeId>(v));
      }
    }
  }
  return result;
}

BinaryRelation BinaryRelation::NeqRestrict(const DataGraph& graph) const {
  assert(graph.NumNodes() == n_);
  BinaryRelation result(n_);
  for (NodeId u = 0; u < n_; u++) {
    const DynamicBitset& row = rows_[u];
    for (std::size_t v = row.FindNext(0); v < n_; v = row.FindNext(v + 1)) {
      if (graph.DataValueOf(u) != graph.DataValueOf(static_cast<NodeId>(v))) {
        result.Set(u, static_cast<NodeId>(v));
      }
    }
  }
  return result;
}

BinaryRelation BinaryRelation::EqRestrict(const ValueClassMasks& masks) const {
  assert(masks.num_nodes() == n_);
  BinaryRelation result = *this;
  for (NodeId u = 0; u < n_; u++) {
    result.rows_[u] &= masks.ClassOf(u);
  }
  return result;
}

BinaryRelation BinaryRelation::NeqRestrict(const ValueClassMasks& masks) const {
  assert(masks.num_nodes() == n_);
  BinaryRelation result = *this;
  for (NodeId u = 0; u < n_; u++) {
    result.rows_[u] -= masks.ClassOf(u);
  }
  return result;
}

BinaryRelation BinaryRelation::EqRestrictDiagonal() const {
  BinaryRelation result(n_);
  for (NodeId u = 0; u < n_; u++) {
    if (rows_[u].Test(u)) {
      result.rows_[u].Set(u);
    }
  }
  return result;
}

BinaryRelation BinaryRelation::NeqRestrictDiagonal() const {
  BinaryRelation result = *this;
  for (NodeId u = 0; u < n_; u++) {
    result.rows_[u].Reset(u);
  }
  return result;
}

BinaryRelation& BinaryRelation::IntersectWith(const BinaryRelation& other) {
  assert(n_ == other.n_);
  for (std::size_t u = 0; u < n_; u++) {
    rows_[u] &= other.rows_[u];
  }
  return *this;
}

BinaryRelation& BinaryRelation::SubtractFrom(const BinaryRelation& other) {
  assert(n_ == other.n_);
  for (std::size_t u = 0; u < n_; u++) {
    rows_[u] -= other.rows_[u];
  }
  return *this;
}

bool BinaryRelation::IsSubsetOf(const BinaryRelation& other) const {
  assert(n_ == other.n_);
  for (std::size_t u = 0; u < n_; u++) {
    if (!rows_[u].IsSubsetOf(other.rows_[u])) {
      return false;
    }
  }
  return true;
}

bool BinaryRelation::operator<(const BinaryRelation& other) const {
  if (n_ != other.n_) {
    return n_ < other.n_;
  }
  return rows_ < other.rows_;
}

std::size_t BinaryRelation::Hash() const {
  std::size_t seed = n_;
  for (const auto& row : rows_) {
    seed = HashCombine(seed, row.Hash());
  }
  return seed;
}

std::string BinaryRelation::ToString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [u, v] : Pairs()) {
    if (!first) {
      os << ", ";
    }
    first = false;
    os << "(" << u << "," << v << ")";
  }
  os << "}";
  return os.str();
}

std::string BinaryRelation::ToString(const DataGraph& graph) const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [u, v] : Pairs()) {
    if (!first) {
      os << ", ";
    }
    first = false;
    os << "(" << graph.NodeName(u) << "," << graph.NodeName(v) << ")";
  }
  os << "}";
  return os.str();
}

BinaryRelation TransitivePlus(const BinaryRelation& rel) {
  // Floyd–Warshall-style closure on the row bitsets: O(n² · n/64) words.
  BinaryRelation out = rel;
  std::size_t n = rel.num_nodes();
  for (NodeId k = 0; k < n; k++) {
    const DynamicBitset row_k = out.Row(k);  // copy: rows mutate below
    for (NodeId i = 0; i < n; i++) {
      if (out.Test(i, k)) {
        out.MutableRow(i) |= row_k;
      }
    }
  }
  return out;
}

TupleRelation TupleRelation::FromBinary(const BinaryRelation& rel) {
  TupleRelation out(2);
  for (const auto& [u, v] : rel.Pairs()) {
    out.Insert({u, v});
  }
  return out;
}

void TupleRelation::Insert(NodeTuple tuple) {
  assert(tuple.size() == arity_);
  tuples_.insert(std::move(tuple));
}

std::string TupleRelation::ToString(const DataGraph& graph) const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const NodeTuple& t : tuples_) {
    if (!first) {
      os << ", ";
    }
    first = false;
    os << "(";
    for (std::size_t i = 0; i < t.size(); i++) {
      if (i > 0) {
        os << ",";
      }
      os << graph.NodeName(t[i]);
    }
    os << ")";
  }
  os << "}";
  return os.str();
}

}  // namespace gqd
