#include "graph/examples.h"

namespace gqd {

DataGraph Figure1Graph() {
  DataGraph g;
  g.AddLabel("a");
  for (const char* d : {"0", "1", "2", "3"}) {
    g.AddDataValue(d);
  }
  auto value = [&](const char* name) {
    return *g.data_values().Find(name);
  };
  NodeId v1 = g.AddNode(value("0"), "v1");
  NodeId v2 = g.AddNode(value("1"), "v2");
  NodeId v3 = g.AddNode(value("0"), "v3");
  NodeId v4 = g.AddNode(value("1"), "v4");
  NodeId z1 = g.AddNode(value("3"), "z1");
  NodeId z2 = g.AddNode(value("1"), "z2");
  NodeId w1 = g.AddNode(value("2"), "v'1");
  NodeId w2 = g.AddNode(value("3"), "v'2");
  NodeId w3 = g.AddNode(value("2"), "v'3");
  NodeId w4 = g.AddNode(value("3"), "v'4");
  LabelId a = *g.labels().Find("a");
  g.AddEdge(v1, a, v2);
  g.AddEdge(v2, a, v3);
  g.AddEdge(v3, a, v4);
  g.AddEdge(v3, a, w3);
  g.AddEdge(v1, a, z2);
  g.AddEdge(z2, a, v2);
  g.AddEdge(z1, a, z2);
  g.AddEdge(z2, a, w1);
  g.AddEdge(w1, a, w2);
  g.AddEdge(w2, a, w3);
  g.AddEdge(w3, a, w4);
  g.AddEdge(w2, a, v4);
  return g;
}

Figure1Nodes Figure1NodeIds(const DataGraph& graph) {
  Figure1Nodes n;
  n.v1 = graph.FindNode("v1").ValueOrDie();
  n.v2 = graph.FindNode("v2").ValueOrDie();
  n.v3 = graph.FindNode("v3").ValueOrDie();
  n.v4 = graph.FindNode("v4").ValueOrDie();
  n.z1 = graph.FindNode("z1").ValueOrDie();
  n.z2 = graph.FindNode("z2").ValueOrDie();
  n.w1 = graph.FindNode("v'1").ValueOrDie();
  n.w2 = graph.FindNode("v'2").ValueOrDie();
  n.w3 = graph.FindNode("v'3").ValueOrDie();
  n.w4 = graph.FindNode("v'4").ValueOrDie();
  return n;
}

BinaryRelation Figure1S1(const DataGraph& graph) {
  Figure1Nodes n = Figure1NodeIds(graph);
  return BinaryRelation::FromPairs(
      graph.NumNodes(),
      {{n.v1, n.v4},
       {n.v1, n.w3},
       {n.v1, n.v3},
       {n.v1, n.w2},
       {n.v2, n.w4},
       {n.z1, n.v3},
       {n.z1, n.w2},
       {n.z2, n.v4},
       {n.z2, n.w3},
       {n.w1, n.w4}});
}

BinaryRelation Figure1S2(const DataGraph& graph) {
  Figure1Nodes n = Figure1NodeIds(graph);
  return BinaryRelation::FromPairs(graph.NumNodes(),
                                   {{n.v1, n.v4}, {n.w1, n.w4}});
}

BinaryRelation Figure1S3(const DataGraph& graph) {
  Figure1Nodes n = Figure1NodeIds(graph);
  return BinaryRelation::FromPairs(graph.NumNodes(), {{n.v1, n.v3}});
}

}  // namespace gqd
