// Text and DOT serialization for data graphs and relations.
//
// The text format is line-oriented and diff-friendly:
//
//   # comment
//   node <name> <data-value-name>
//   edge <from-name> <label> <to-name>
//
// Relation files list one tuple per line, nodes by name:
//
//   pair <u> <v>            (binary relations)
//   tuple <n1> <n2> ... <nr> (any arity; all lines must agree on arity)

#ifndef GQD_GRAPH_SERIALIZATION_H_
#define GQD_GRAPH_SERIALIZATION_H_

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/data_graph.h"
#include "graph/relation.h"

namespace gqd {

/// Renders the graph in the `node`/`edge` text format.
std::string WriteGraphText(const DataGraph& graph);

/// Parses the `node`/`edge` text format. Node-name lookup is hash-based,
/// so parsing stays linear in the file size (million-node text graphs are
/// the slow-but-feasible baseline the mmap container is benchmarked
/// against).
Result<DataGraph> ReadGraphText(const std::string& text);

/// FNV-1a 64 of the canonical text serialization (WriteGraphText), computed
/// line by line without materializing the text. This is THE content
/// fingerprint of a graph: GraphRegistry keys result caches with it and the
/// binary graph container (src/storage/) stores it in the header, so every
/// backend agrees on identity.
std::uint64_t FingerprintGraphText(const DataGraph& graph);

/// Renders a 64-bit fingerprint as 16 lowercase hex digits.
std::string FingerprintToHex(std::uint64_t fingerprint);

/// Renders a Graphviz DOT view (data values as node labels).
std::string WriteGraphDot(const DataGraph& graph);

/// Renders a one-object JSON summary of the graph's shape:
///   {"nodes":N,"edges":M,"alphabet":[...],"data_values":[...],
///    "num_data_values":D}
/// Shared by `gqd info --json` and the query service's `info`/`load`
/// responses so the CLI and the server emit one format.
std::string WriteGraphInfoJson(const DataGraph& graph);

/// Renders a binary relation in the `pair` text format (node names).
std::string WriteRelationText(const DataGraph& graph,
                              const BinaryRelation& rel);

/// Parses the `pair` text format against `graph`'s node names.
Result<BinaryRelation> ReadRelationText(const DataGraph& graph,
                                        const std::string& text);

/// Parses the `pair` text format into a raw pair list without materializing
/// an n×n matrix — the form the density-adaptive relation layer
/// (graph/sparse_relation.h) builds from, and the only one that works at
/// million-node scale. Pairs are returned in file order, possibly with
/// duplicates; AdaptiveRelation::FromPairs canonicalizes.
Result<std::vector<std::pair<NodeId, NodeId>>> ReadRelationPairsText(
    const DataGraph& graph, const std::string& text);

/// Renders a pair list in the `pair` text format (node names), row-major
/// sorted first so output is canonical.
std::string WriteRelationPairsText(
    const DataGraph& graph,
    std::vector<std::pair<NodeId, NodeId>> pairs);

/// Parses the `tuple` text format against `graph`'s node names.
Result<TupleRelation> ReadTupleRelationText(const DataGraph& graph,
                                            const std::string& text);

/// Reads a whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace gqd

#endif  // GQD_GRAPH_SERIALIZATION_H_
