// Text and DOT serialization for data graphs and relations.
//
// The text format is line-oriented and diff-friendly:
//
//   # comment
//   node <name> <data-value-name>
//   edge <from-name> <label> <to-name>
//
// Relation files list one tuple per line, nodes by name:
//
//   pair <u> <v>            (binary relations)
//   tuple <n1> <n2> ... <nr> (any arity; all lines must agree on arity)

#ifndef GQD_GRAPH_SERIALIZATION_H_
#define GQD_GRAPH_SERIALIZATION_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "graph/data_graph.h"
#include "graph/relation.h"

namespace gqd {

/// Renders the graph in the `node`/`edge` text format.
std::string WriteGraphText(const DataGraph& graph);

/// Parses the `node`/`edge` text format.
Result<DataGraph> ReadGraphText(const std::string& text);

/// Renders a Graphviz DOT view (data values as node labels).
std::string WriteGraphDot(const DataGraph& graph);

/// Renders a one-object JSON summary of the graph's shape:
///   {"nodes":N,"edges":M,"alphabet":[...],"data_values":[...],
///    "num_data_values":D}
/// Shared by `gqd info --json` and the query service's `info`/`load`
/// responses so the CLI and the server emit one format.
std::string WriteGraphInfoJson(const DataGraph& graph);

/// Renders a binary relation in the `pair` text format (node names).
std::string WriteRelationText(const DataGraph& graph,
                              const BinaryRelation& rel);

/// Parses the `pair` text format against `graph`'s node names.
Result<BinaryRelation> ReadRelationText(const DataGraph& graph,
                                        const std::string& text);

/// Parses the `tuple` text format against `graph`'s node names.
Result<TupleRelation> ReadTupleRelationText(const DataGraph& graph,
                                            const std::string& text);

/// Reads a whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace gqd

#endif  // GQD_GRAPH_SERIALIZATION_H_
