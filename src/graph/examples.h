// The paper's running example (Figure 1) and its relations S1, S2, S3.
//
// The edge set is reconstructed from every concrete fact the paper states
// about the graph: the S1 listing of Example 12, the data paths w1..w7, and
// the unique valuation of Q4 in Example 14. The reconstruction is exact —
// tests verify all of those facts against this graph.

#ifndef GQD_GRAPH_EXAMPLES_H_
#define GQD_GRAPH_EXAMPLES_H_

#include "graph/data_graph.h"
#include "graph/relation.h"

namespace gqd {

/// Figure 1: ten nodes over Σ = {a}, data values {0, 1, 2, 3}.
///
/// Nodes (name : value): v1:0 v2:1 v3:0 v4:1 z1:3 z2:1 v'1:2 v'2:3 v'3:2
/// v'4:3. Twelve a-edges:
///   v1→v2, v2→v3, v3→v4, v3→v'3, v1→z2, z2→v2, z1→z2, z2→v'1,
///   v'1→v'2, v'2→v'3, v'3→v'4, v'2→v4.
DataGraph Figure1Graph();

/// Node ids of the Figure-1 graph, for readable test/example code.
struct Figure1Nodes {
  NodeId v1, v2, v3, v4, z1, z2, w1, w2, w3, w4;  // w_i = v'_i
};

/// Looks up the named nodes of Figure1Graph().
Figure1Nodes Figure1NodeIds(const DataGraph& graph);

/// S1 of Example 12: all pairs connected by the RPQ `aaa`.
BinaryRelation Figure1S1(const DataGraph& graph);

/// S2 of Example 12: {(v1,v4), (v'1,v'4)} — 2-REM-definable, neither
/// 1-REM- nor REE-definable.
BinaryRelation Figure1S2(const DataGraph& graph);

/// S3 of Example 12: {(v1,v3)} — REE-definable, not 1-REM-definable.
BinaryRelation Figure1S3(const DataGraph& graph);

}  // namespace gqd

#endif  // GQD_GRAPH_EXAMPLES_H_
