#include "graph/sparse_relation.h"

#include <algorithm>
#include <cassert>

namespace gqd {

namespace {

/// Sorts row-major and removes duplicate pairs — the canonical pair order
/// every representation builds from and emits.
void CanonicalizePairs(std::vector<std::pair<NodeId, NodeId>>* pairs) {
  std::sort(pairs->begin(), pairs->end());
  pairs->erase(std::unique(pairs->begin(), pairs->end()), pairs->end());
}

}  // namespace

const char* RelationBackendName(RelationBackend backend) {
  switch (backend) {
    case RelationBackend::kAuto:
      return "auto";
    case RelationBackend::kDense:
      return "dense";
    case RelationBackend::kSparse:
      return "sparse";
    case RelationBackend::kBlocked:
      return "blocked";
  }
  return "unknown";
}

bool ParseRelationBackend(const std::string& name, RelationBackend* out) {
  if (name == "auto") {
    *out = RelationBackend::kAuto;
  } else if (name == "dense") {
    *out = RelationBackend::kDense;
  } else if (name == "sparse") {
    *out = RelationBackend::kSparse;
  } else if (name == "blocked") {
    *out = RelationBackend::kBlocked;
  } else {
    return false;
  }
  return true;
}

RelationBackend ChooseRelationBackend(std::size_t n, std::size_t nnz) {
  // Small matrices are cheap in absolute terms (n ≤ 4096 ⇒ ≤ 2 MB) and the
  // dense word-parallel kernels are the fastest engines there.
  if (n <= 4096) {
    return RelationBackend::kDense;
  }
  // At density ≥ 1/32 the blocked rows are mostly bitmaps anyway, so the
  // dense matrix costs no more and keeps the fast kernels.
  if (n != 0 && nnz / n >= n / 32) {
    return RelationBackend::kDense;
  }
  // A handful of entries per row on average: the CSR list wins on both
  // bytes and scan cost.
  if (nnz <= 8 * n) {
    return RelationBackend::kSparse;
  }
  return RelationBackend::kBlocked;
}

std::size_t EstimateRelationBytes(RelationBackend backend, std::size_t n,
                                  std::size_t nnz) {
  switch (backend) {
    case RelationBackend::kAuto:
      return EstimateRelationBytes(ChooseRelationBackend(n, nnz), n, nnz);
    case RelationBackend::kDense:
      // n rows of n bits each.
      return n * ((n + 7) / 8);
    case RelationBackend::kSparse:
      // n+1 u64 offsets plus one u32 per pair.
      return (n + 1) * sizeof(std::uint64_t) + nnz * sizeof(NodeId);
    case RelationBackend::kBlocked: {
      // Worst-case container bytes: each pair costs at most 4 bytes in an
      // array row, and a row never flips to bitmap unless the bitmap is
      // smaller, so min(4·nnz, n·n/8) bounds the payload; add per-row
      // headers.
      std::size_t payload = std::min(nnz * sizeof(NodeId), n * ((n + 7) / 8));
      return payload + n * 32;
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// SparseBinaryRelation

SparseBinaryRelation SparseBinaryRelation::FromPairs(
    std::size_t n, std::vector<std::pair<NodeId, NodeId>> pairs) {
  CanonicalizePairs(&pairs);
  SparseBinaryRelation rel;
  rel.n_ = n;
  rel.offsets_.assign(n + 1, 0);
  rel.cols_.resize(pairs.size());
  for (const auto& [u, v] : pairs) {
    assert(u < n && v < n);
    rel.offsets_[u + 1]++;
  }
  for (std::size_t u = 0; u < n; ++u) {
    rel.offsets_[u + 1] += rel.offsets_[u];
  }
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    rel.cols_[i] = pairs[i].second;  // pairs are row-major sorted already
  }
  return rel;
}

std::vector<std::pair<NodeId, NodeId>> SparseBinaryRelation::Pairs() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(cols_.size());
  for (std::size_t u = 0; u < n_; ++u) {
    for (std::size_t i = offsets_[u]; i < offsets_[u + 1]; ++i) {
      out.emplace_back(static_cast<NodeId>(u), cols_[i]);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// BlockedBinaryRelation

void BlockedBinaryRelation::SetRowFromSortedArray(NodeId u,
                                                  std::vector<NodeId> sorted) {
  Row& row = rows_[u];
  nnz_ -= RowDegree(u);
  if (sorted.size() > ArrayThreshold(n_)) {
    row.is_bitmap = true;
    row.card = sorted.size();
    row.bits = DynamicBitset(n_);
    for (NodeId v : sorted) {
      row.bits.Set(v);
    }
    row.array.clear();
    row.array.shrink_to_fit();
  } else {
    row.is_bitmap = false;
    row.card = 0;
    row.array = std::move(sorted);
    row.bits = DynamicBitset();
  }
  nnz_ += RowDegree(u);
}

void BlockedBinaryRelation::SetRowFromBitset(NodeId u,
                                             const DynamicBitset& scratch) {
  std::size_t card = scratch.Count();
  Row& row = rows_[u];
  nnz_ -= RowDegree(u);
  if (card > ArrayThreshold(n_)) {
    row.is_bitmap = true;
    row.card = card;
    row.bits = scratch;
    row.array.clear();
    row.array.shrink_to_fit();
  } else {
    row.is_bitmap = false;
    row.card = 0;
    row.array.clear();
    row.array.reserve(card);
    for (std::size_t v = scratch.FindNext(0); v < n_;
         v = scratch.FindNext(v + 1)) {
      row.array.push_back(static_cast<NodeId>(v));
    }
    row.bits = DynamicBitset();
  }
  nnz_ += card;
}

BlockedBinaryRelation BlockedBinaryRelation::FromPairs(
    std::size_t n, std::vector<std::pair<NodeId, NodeId>> pairs) {
  CanonicalizePairs(&pairs);
  BlockedBinaryRelation rel(n);
  std::size_t i = 0;
  std::vector<NodeId> row;
  while (i < pairs.size()) {
    NodeId u = pairs[i].first;
    row.clear();
    for (; i < pairs.size() && pairs[i].first == u; ++i) {
      row.push_back(pairs[i].second);
    }
    rel.SetRowFromSortedArray(u, row);
  }
  return rel;
}

BlockedBinaryRelation BlockedBinaryRelation::FromDense(
    const BinaryRelation& dense) {
  std::size_t n = dense.num_nodes();
  BlockedBinaryRelation rel(n);
  for (std::size_t u = 0; u < n; ++u) {
    rel.SetRowFromBitset(static_cast<NodeId>(u), dense.Row(u));
  }
  return rel;
}

BlockedBinaryRelation BlockedBinaryRelation::Identity(std::size_t n) {
  BlockedBinaryRelation rel(n);
  for (std::size_t u = 0; u < n; ++u) {
    rel.rows_[u].array.push_back(static_cast<NodeId>(u));
  }
  rel.nnz_ = n;
  return rel;
}

BlockedBinaryRelation BlockedBinaryRelation::FromEdges(const DataGraph& graph,
                                                       LabelId label) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (const Edge& e : graph.edges()) {
    if (e.label == label) {
      pairs.emplace_back(e.from, e.to);
    }
  }
  return FromPairs(graph.NumNodes(), std::move(pairs));
}

std::vector<std::pair<NodeId, NodeId>> BlockedBinaryRelation::Pairs() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(nnz_);
  for (std::size_t u = 0; u < n_; ++u) {
    ForEachInRow(static_cast<NodeId>(u), [&](NodeId v) {
      out.emplace_back(static_cast<NodeId>(u), v);
    });
  }
  return out;
}

void BlockedBinaryRelation::OrRowInto(NodeId u, DynamicBitset* scratch) const {
  const Row& row = rows_[u];
  if (row.is_bitmap) {
    *scratch |= row.bits;
  } else {
    for (NodeId v : row.array) {
      scratch->Set(v);
    }
  }
}

BlockedBinaryRelation& BlockedBinaryRelation::UnionWith(
    const BlockedBinaryRelation& other) {
  assert(n_ == other.n_);
  std::vector<NodeId> merged;
  for (std::size_t u = 0; u < n_; ++u) {
    if (other.RowDegree(u) == 0) {
      continue;
    }
    if (!rows_[u].is_bitmap && !other.rows_[u].is_bitmap) {
      // Both sorted arrays: a linear merge, no n-bit scratch needed.
      merged.clear();
      std::set_union(rows_[u].array.begin(), rows_[u].array.end(),
                     other.rows_[u].array.begin(), other.rows_[u].array.end(),
                     std::back_inserter(merged));
      SetRowFromSortedArray(static_cast<NodeId>(u), merged);
    } else {
      DynamicBitset scratch(n_);
      OrRowInto(static_cast<NodeId>(u), &scratch);
      other.OrRowInto(static_cast<NodeId>(u), &scratch);
      SetRowFromBitset(static_cast<NodeId>(u), scratch);
    }
  }
  return *this;
}

BlockedBinaryRelation BlockedBinaryRelation::Compose(
    const BlockedBinaryRelation& other) const {
  assert(n_ == other.n_);
  BlockedBinaryRelation out(n_);
  DynamicBitset scratch(n_);
  for (std::size_t u = 0; u < n_; ++u) {
    if (RowDegree(static_cast<NodeId>(u)) == 0) {
      continue;
    }
    scratch.Clear();
    bool any = false;
    ForEachInRow(static_cast<NodeId>(u), [&](NodeId z) {
      if (other.RowDegree(z) != 0) {
        other.OrRowInto(z, &scratch);
        any = true;
      }
    });
    if (any) {
      out.SetRowFromBitset(static_cast<NodeId>(u), scratch);
    }
  }
  return out;
}

BlockedBinaryRelation BlockedBinaryRelation::EqRestrict(
    const ValueClassMasks& masks) const {
  BlockedBinaryRelation out(n_);
  std::vector<NodeId> kept;
  DynamicBitset scratch(n_);
  for (std::size_t u = 0; u < n_; ++u) {
    const Row& row = rows_[u];
    if (row.is_bitmap) {
      scratch = row.bits;
      scratch &= masks.ClassOf(static_cast<NodeId>(u));
      out.SetRowFromBitset(static_cast<NodeId>(u), scratch);
    } else if (!row.array.empty()) {
      const DynamicBitset& cls = masks.ClassOf(static_cast<NodeId>(u));
      kept.clear();
      for (NodeId v : row.array) {
        if (cls.Test(v)) {
          kept.push_back(v);
        }
      }
      out.SetRowFromSortedArray(static_cast<NodeId>(u), kept);
    }
  }
  return out;
}

BlockedBinaryRelation BlockedBinaryRelation::NeqRestrict(
    const ValueClassMasks& masks) const {
  BlockedBinaryRelation out(n_);
  std::vector<NodeId> kept;
  DynamicBitset scratch(n_);
  for (std::size_t u = 0; u < n_; ++u) {
    const Row& row = rows_[u];
    if (row.is_bitmap) {
      scratch = row.bits;
      scratch -= masks.ClassOf(static_cast<NodeId>(u));
      out.SetRowFromBitset(static_cast<NodeId>(u), scratch);
    } else if (!row.array.empty()) {
      const DynamicBitset& cls = masks.ClassOf(static_cast<NodeId>(u));
      kept.clear();
      for (NodeId v : row.array) {
        if (!cls.Test(v)) {
          kept.push_back(v);
        }
      }
      out.SetRowFromSortedArray(static_cast<NodeId>(u), kept);
    }
  }
  return out;
}

bool BlockedBinaryRelation::IsSubsetOf(
    const BlockedBinaryRelation& other) const {
  assert(n_ == other.n_);
  for (std::size_t u = 0; u < n_; ++u) {
    const Row& a = rows_[u];
    const Row& b = other.rows_[u];
    // The canonical container choice means a bitmap row always has higher
    // cardinality than any array row, so bitmap ⊆ array is impossible.
    if (a.is_bitmap && !b.is_bitmap) {
      return false;
    }
    if (a.is_bitmap) {
      if (!a.bits.IsSubsetOf(b.bits)) {
        return false;
      }
    } else if (b.is_bitmap) {
      for (NodeId v : a.array) {
        if (!b.bits.Test(v)) {
          return false;
        }
      }
    } else {
      if (!std::includes(b.array.begin(), b.array.end(), a.array.begin(),
                         a.array.end())) {
        return false;
      }
    }
  }
  return true;
}

bool BlockedBinaryRelation::operator==(
    const BlockedBinaryRelation& other) const {
  if (n_ != other.n_ || nnz_ != other.nnz_) {
    return false;
  }
  for (std::size_t u = 0; u < n_; ++u) {
    const Row& a = rows_[u];
    const Row& b = other.rows_[u];
    // Equal rows have equal cardinality, hence the same canonical
    // container kind; a kind mismatch is an inequality.
    if (a.is_bitmap != b.is_bitmap) {
      return false;
    }
    if (a.is_bitmap ? (a.bits != b.bits) : (a.array != b.array)) {
      return false;
    }
  }
  return true;
}

std::size_t BlockedBinaryRelation::Hash() const {
  std::size_t seed = HashCombine(0x5241444152ULL, n_);
  for (std::size_t u = 0; u < n_; ++u) {
    const Row& row = rows_[u];
    if (row.is_bitmap ? row.card == 0 : row.array.empty()) {
      continue;
    }
    seed = HashCombine(seed, u);
    if (row.is_bitmap) {
      seed = HashCombine(seed, row.bits.Hash());
    } else {
      for (NodeId v : row.array) {
        seed = HashCombine(seed, v);
      }
    }
  }
  return seed;
}

BinaryRelation BlockedBinaryRelation::ToDense() const {
  BinaryRelation dense(n_);
  for (std::size_t u = 0; u < n_; ++u) {
    ForEachInRow(static_cast<NodeId>(u),
                 [&](NodeId v) { dense.Set(static_cast<NodeId>(u), v); });
  }
  return dense;
}

std::size_t BlockedBinaryRelation::ByteSize() const {
  std::size_t bytes = rows_.size() * sizeof(Row);
  for (const Row& row : rows_) {
    bytes += row.is_bitmap ? row.bits.words().size() * sizeof(std::uint64_t)
                           : row.array.size() * sizeof(NodeId);
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// AdaptiveRelation

AdaptiveRelation AdaptiveRelation::FromPairs(
    std::size_t n, std::vector<std::pair<NodeId, NodeId>> pairs,
    RelationBackend choice) {
  CanonicalizePairs(&pairs);
  if (choice == RelationBackend::kAuto) {
    choice = ChooseRelationBackend(n, pairs.size());
  }
  AdaptiveRelation rel;
  rel.backend_ = choice;
  rel.n_ = n;
  rel.nnz_ = pairs.size();
  switch (choice) {
    case RelationBackend::kDense:
      rel.dense_ = BinaryRelation::FromPairs(n, pairs);
      break;
    case RelationBackend::kSparse:
      rel.sparse_ = SparseBinaryRelation::FromPairs(n, std::move(pairs));
      break;
    default:
      rel.backend_ = RelationBackend::kBlocked;
      rel.blocked_ = BlockedBinaryRelation::FromPairs(n, std::move(pairs));
      break;
  }
  return rel;
}

AdaptiveRelation AdaptiveRelation::FromDense(BinaryRelation dense) {
  AdaptiveRelation rel;
  rel.backend_ = RelationBackend::kDense;
  rel.n_ = dense.num_nodes();
  rel.nnz_ = dense.Count();
  rel.dense_ = std::move(dense);
  return rel;
}

std::vector<std::pair<NodeId, NodeId>> AdaptiveRelation::Pairs() const {
  switch (backend_) {
    case RelationBackend::kDense:
      return dense_.Pairs();
    case RelationBackend::kSparse:
      return sparse_.Pairs();
    default:
      return blocked_.Pairs();
  }
}

BinaryRelation AdaptiveRelation::ToDense() const {
  switch (backend_) {
    case RelationBackend::kDense:
      return dense_;
    case RelationBackend::kSparse:
      return BinaryRelation::FromPairs(n_, sparse_.Pairs());
    default:
      return blocked_.ToDense();
  }
}

std::size_t AdaptiveRelation::ByteSize() const {
  switch (backend_) {
    case RelationBackend::kDense:
      return n_ * ((n_ + 63) / 64) * sizeof(std::uint64_t);
    case RelationBackend::kSparse:
      return sparse_.ByteSize();
    default:
      return blocked_.ByteSize();
  }
}

}  // namespace gqd
