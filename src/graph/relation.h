// Relations over the nodes of a data graph.
//
// BinaryRelation is the workhorse: an n×n boolean matrix with the four
// operators of Definition 26 (union +, composition ∘, =-restriction,
// ≠-restriction). The REE definability checker (Definition 27's level
// closure) manipulates thousands of these, so the representation is one
// bitset row per source node and all operators are word-parallel.
//
// TupleRelation holds relations of arbitrary arity for UCRDPQ-definability
// (Definition 13 allows answer tuples of any width).

#ifndef GQD_GRAPH_RELATION_H_
#define GQD_GRAPH_RELATION_H_

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/bitset.h"
#include "graph/data_graph.h"

namespace gqd {

/// Pre-computed node partition by data value: one bitset per value class,
/// {v | ρ(v) = d}. With these, the =/≠ restrictions of Definition 26 become
/// one word-parallel AND (resp. AND-NOT) of each row against the source
/// node's class — the same rowized-kernel idea the k-REM checker uses —
/// instead of a per-bit value comparison per set pair.
class ValueClassMasks {
 public:
  explicit ValueClassMasks(const DataGraph& graph);

  std::size_t num_nodes() const { return value_of_.size(); }

  /// The class mask of u's data value: {v | ρ(v) = ρ(u)}.
  const DynamicBitset& ClassOf(NodeId u) const {
    return masks_[value_of_[u]];
  }

  /// True iff every value class is a single node (ρ is injective). Then
  /// ρ(u) = ρ(v) ⟺ u = v, so the =/≠ restrictions degenerate to the
  /// diagonal forms (EqRestrictDiagonal / NeqRestrictDiagonal) — the
  /// query-plan analyzer's cheapest REE kernel.
  bool AllSingletons() const;

 private:
  std::vector<std::uint32_t> value_of_;
  std::vector<DynamicBitset> masks_;
};

/// A binary relation on {0, ..., n-1}, stored as n row bitsets.
class BinaryRelation {
 public:
  BinaryRelation() : n_(0) {}

  /// The empty relation on n nodes.
  explicit BinaryRelation(std::size_t n)
      : n_(n), rows_(n, DynamicBitset(n)) {}

  /// {(v, v) | v ∈ V} — the relation S_ε defined by the ε query.
  static BinaryRelation Identity(std::size_t n);

  /// V × V.
  static BinaryRelation Full(std::size_t n);

  /// {(u, v) | (u, a, v) ∈ E} — the relation S_a defined by the letter a.
  static BinaryRelation FromEdges(const DataGraph& graph, LabelId label);

  /// Builds a relation from explicit pairs.
  static BinaryRelation FromPairs(
      std::size_t n, const std::vector<std::pair<NodeId, NodeId>>& pairs);

  std::size_t num_nodes() const { return n_; }

  bool Test(NodeId u, NodeId v) const { return rows_[u].Test(v); }
  void Set(NodeId u, NodeId v) { rows_[u].Set(v); }
  void Reset(NodeId u, NodeId v) { rows_[u].Reset(v); }

  /// Number of pairs in the relation.
  std::size_t Count() const;

  bool Empty() const;

  /// All pairs, in row-major order.
  std::vector<std::pair<NodeId, NodeId>> Pairs() const;

  /// S1 + S2 (Definition 26).
  BinaryRelation& UnionWith(const BinaryRelation& other);
  friend BinaryRelation operator|(BinaryRelation a, const BinaryRelation& b) {
    a.UnionWith(b);
    return a;
  }

  /// S1 ∘ S2 = {(u,v) | ∃z: (u,z) ∈ S1, (z,v) ∈ S2} (Definition 26).
  /// Boolean matrix product; O(n² · n/64) words touched.
  BinaryRelation Compose(const BinaryRelation& other) const;

  /// S= : keep pairs whose endpoints carry the same data value in `graph`.
  BinaryRelation EqRestrict(const DataGraph& graph) const;

  /// S≠ : keep pairs whose endpoints carry different data values.
  BinaryRelation NeqRestrict(const DataGraph& graph) const;

  /// Rowized S= : row u becomes row_u ∧ class(u), one word-parallel AND
  /// per row. Equivalent to EqRestrict(graph) for masks built from it.
  BinaryRelation EqRestrict(const ValueClassMasks& masks) const;

  /// Rowized S≠ : row u becomes row_u ∖ class(u).
  BinaryRelation NeqRestrict(const ValueClassMasks& masks) const;

  /// S= when every value class is a singleton (ValueClassMasks::
  /// AllSingletons): keeps only the diagonal pairs, row u ∧ {u}.
  BinaryRelation EqRestrictDiagonal() const;

  /// S≠ when every value class is a singleton: clears bit u of row u.
  BinaryRelation NeqRestrictDiagonal() const;

  /// Intersection (not one of the paper's operators, but used by checkers).
  BinaryRelation& IntersectWith(const BinaryRelation& other);

  /// Difference this \ other.
  BinaryRelation& SubtractFrom(const BinaryRelation& other);

  /// True iff every pair of this is in `other`.
  bool IsSubsetOf(const BinaryRelation& other) const;

  bool operator==(const BinaryRelation& other) const {
    return n_ == other.n_ && rows_ == other.rows_;
  }
  bool operator!=(const BinaryRelation& other) const {
    return !(*this == other);
  }
  bool operator<(const BinaryRelation& other) const;

  std::size_t Hash() const;

  /// Row `u` as a bitset over target nodes.
  const DynamicBitset& Row(NodeId u) const { return rows_[u]; }
  DynamicBitset& MutableRow(NodeId u) { return rows_[u]; }

  /// Renders "{(0,1), (2,3)}" using node ids.
  std::string ToString() const;

  /// Renders "{(u,v), ...}" using node display names from `graph`.
  std::string ToString(const DataGraph& graph) const;

 private:
  std::size_t n_;
  std::vector<DynamicBitset> rows_;
};

/// std::hash adapter for BinaryRelation.
struct BinaryRelationHash {
  std::size_t operator()(const BinaryRelation& r) const { return r.Hash(); }
};

/// R⁺ = R ∪ R∘R ∪ R∘R∘R ∪ ... (the relation of e⁺ given the relation of e).
BinaryRelation TransitivePlus(const BinaryRelation& rel);

/// A tuple of nodes (an element of V^r).
using NodeTuple = std::vector<NodeId>;

/// A finite relation of fixed arity over graph nodes.
class TupleRelation {
 public:
  /// Empty relation of the given arity.
  explicit TupleRelation(std::size_t arity) : arity_(arity) {}

  /// Wraps a binary relation as a TupleRelation of arity 2.
  static TupleRelation FromBinary(const BinaryRelation& rel);

  std::size_t arity() const { return arity_; }
  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Inserts a tuple; it must have the declared arity.
  void Insert(NodeTuple tuple);

  bool Contains(const NodeTuple& tuple) const {
    return tuples_.count(tuple) > 0;
  }

  const std::set<NodeTuple>& tuples() const { return tuples_; }

  bool operator==(const TupleRelation& other) const = default;

  std::string ToString(const DataGraph& graph) const;

 private:
  std::size_t arity_;
  std::set<NodeTuple> tuples_;
};

}  // namespace gqd

#endif  // GQD_GRAPH_RELATION_H_
