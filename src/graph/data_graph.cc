#include "graph/data_graph.h"

#include <algorithm>
#include <cassert>

namespace gqd {

NodeId DataGraph::AddNode(ValueId value, std::string_view name) {
  assert(value < values_.size() && "intern the data value first");
  NodeId id = static_cast<NodeId>(node_values_.size());
  node_values_.push_back(value);
  node_names_.emplace_back(name);
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  return id;
}

void DataGraph::AddEdge(NodeId from, LabelId label, NodeId to) {
  assert(from < NumNodes() && to < NumNodes() && label < NumLabels());
  if (HasEdge(from, label, to)) {
    return;
  }
  edges_.push_back(Edge{from, label, to});
  out_edges_[from].emplace_back(label, to);
  in_edges_[to].emplace_back(label, from);
}

bool DataGraph::HasEdge(NodeId from, LabelId label, NodeId to) const {
  if (from >= NumNodes()) {
    return false;
  }
  const auto& out = out_edges_[from];
  return std::find(out.begin(), out.end(), std::make_pair(label, to)) !=
         out.end();
}

std::string DataGraph::NodeName(NodeId v) const {
  if (v < node_names_.size() && !node_names_[v].empty()) {
    return node_names_[v];
  }
  return "#" + std::to_string(v);
}

Result<NodeId> DataGraph::FindNode(std::string_view name) const {
  for (NodeId v = 0; v < node_names_.size(); v++) {
    if (node_names_[v] == name) {
      return v;
    }
  }
  return Status::NotFound("no node named '" + std::string(name) + "'");
}

Status DataGraph::Validate() const {
  for (const Edge& e : edges_) {
    if (e.from >= NumNodes() || e.to >= NumNodes()) {
      return Status::Internal("edge endpoint out of range");
    }
    if (e.label >= NumLabels()) {
      return Status::Internal("edge label out of range");
    }
  }
  for (ValueId value : node_values_) {
    if (value >= NumDataValues()) {
      return Status::Internal("node data value out of range");
    }
  }
  // Node names, where present, must be unique.
  for (std::size_t i = 0; i < node_names_.size(); i++) {
    if (node_names_[i].empty()) {
      continue;
    }
    for (std::size_t j = i + 1; j < node_names_.size(); j++) {
      if (node_names_[i] == node_names_[j]) {
        return Status::Internal("duplicate node name '" + node_names_[i] +
                                "'");
      }
    }
  }
  return Status::OK();
}

}  // namespace gqd
