#include "graph/data_graph.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <unordered_set>

namespace gqd {

namespace {

/// Parses the synthesized "#<id>" display-name form; returns false when
/// `name` is not of that shape (no leading '#', junk after the digits).
bool ParseAnonymousName(std::string_view name, NodeId* id) {
  if (name.size() < 2 || name[0] != '#') {
    return false;
  }
  const char* first = name.data() + 1;
  const char* last = name.data() + name.size();
  auto [ptr, ec] = std::from_chars(first, last, *id);
  return ec == std::errc() && ptr == last;
}

}  // namespace

DataGraph DataGraph::FromView(StringInterner labels, StringInterner values,
                              const GraphView& view) {
  DataGraph graph;
  graph.labels_ = std::move(labels);
  graph.values_ = std::move(values);
  graph.view_ = view;
  graph.frozen_ = true;
  return graph;
}

NodeId DataGraph::AddNode(ValueId value, std::string_view name) {
  assert(!frozen_ && "view-mode graphs are immutable");
  assert(value < values_.size() && "intern the data value first");
  NodeId id = static_cast<NodeId>(node_values_.size());
  node_values_.push_back(value);
  node_names_.emplace_back(name);
  if (!name.empty()) {
    num_named_++;
  }
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  return id;
}

void DataGraph::AddEdge(NodeId from, LabelId label, NodeId to) {
  assert(!frozen_ && "view-mode graphs are immutable");
  assert(from < NumNodes() && to < NumNodes() && label < NumLabels());
  if (HasEdge(from, label, to)) {
    return;
  }
  edges_.push_back(Edge{from, label, to});
  out_edges_[from].push_back(LabeledEdge{label, to});
  in_edges_[to].push_back(LabeledEdge{label, from});
}

bool DataGraph::HasEdge(NodeId from, LabelId label, NodeId to) const {
  if (from >= NumNodes()) {
    return false;
  }
  std::span<const LabeledEdge> out = OutEdges(from);
  return std::find(out.begin(), out.end(), LabeledEdge{label, to}) !=
         out.end();
}

std::string_view DataGraph::RawNodeName(NodeId v) const {
  if (frozen_) {
    if (view_.name_offsets == nullptr) {
      return {};
    }
    return std::string_view(
        view_.name_blob + view_.name_offsets[v],
        static_cast<std::size_t>(view_.name_offsets[v + 1] -
                                 view_.name_offsets[v]));
  }
  return v < node_names_.size() ? std::string_view(node_names_[v])
                                : std::string_view();
}

std::string DataGraph::NodeName(NodeId v) const {
  std::string_view raw = RawNodeName(v);
  if (!raw.empty()) {
    return std::string(raw);
  }
  return "#" + std::to_string(v);
}

Result<NodeId> DataGraph::FindNode(std::string_view name) const {
  std::size_t n = NumNodes();
  bool any_names =
      frozen_ ? view_.name_offsets != nullptr : num_named_ > 0;
  if (any_names) {
    for (NodeId v = 0; v < n; v++) {
      if (RawNodeName(v) == name) {
        return v;
      }
    }
  }
  // "#<id>" resolves an anonymous node by id — the form NodeName
  // synthesizes, so serialized relations over nameless (generated) graphs
  // round-trip.
  NodeId id = 0;
  if (ParseAnonymousName(name, &id) && id < n && RawNodeName(id).empty()) {
    return id;
  }
  return Status::NotFound("no node named '" + std::string(name) + "'");
}

Status DataGraph::Validate() const {
  for (const Edge& e : edges()) {
    if (e.from >= NumNodes() || e.to >= NumNodes()) {
      return Status::Internal("edge endpoint out of range");
    }
    if (e.label >= NumLabels()) {
      return Status::Internal("edge label out of range");
    }
  }
  for (NodeId v = 0; v < NumNodes(); v++) {
    if (DataValueOf(v) >= NumDataValues()) {
      return Status::Internal("node data value out of range");
    }
  }
  // Node names, where present, must be unique.
  std::unordered_set<std::string_view> seen;
  seen.reserve(NumNodes());
  for (NodeId v = 0; v < NumNodes(); v++) {
    std::string_view name = RawNodeName(v);
    if (name.empty()) {
      continue;
    }
    if (!seen.insert(name).second) {
      return Status::Internal("duplicate node name '" + std::string(name) +
                              "'");
    }
  }
  return Status::OK();
}

std::size_t DataGraph::EstimateResidentBytes() const {
  std::size_t bytes = 0;
  for (const std::string& name : labels_.names()) {
    bytes += sizeof(std::string) + name.capacity() + 48;  // + hash-map slot
  }
  for (const std::string& name : values_.names()) {
    bytes += sizeof(std::string) + name.capacity() + 48;
  }
  if (frozen_) {
    return bytes;  // the sections themselves are file-backed
  }
  bytes += node_values_.capacity() * sizeof(ValueId);
  bytes += edges_.capacity() * sizeof(Edge);
  for (const std::string& name : node_names_) {
    bytes += sizeof(std::string) + name.capacity();
  }
  for (const auto& adj : out_edges_) {
    bytes += sizeof(adj) + adj.capacity() * sizeof(LabeledEdge);
  }
  for (const auto& adj : in_edges_) {
    bytes += sizeof(adj) + adj.capacity() * sizeof(LabeledEdge);
  }
  return bytes;
}

}  // namespace gqd
