#include "graph/data_path.h"

#include <cassert>
#include <sstream>
#include <unordered_map>

namespace gqd {

Result<DataPath> DataPath::Concat(const DataPath& other) const {
  assert(!values.empty() && !other.values.empty());
  if (values.back() != other.values.front()) {
    return Status::InvalidArgument(
        "concatenation requires matching boundary data values");
  }
  DataPath out = *this;
  out.letters.insert(out.letters.end(), other.letters.begin(),
                     other.letters.end());
  out.values.insert(out.values.end(), other.values.begin() + 1,
                    other.values.end());
  return out;
}

DataPath DataPath::CanonicalForm() const {
  DataPath out;
  out.letters = letters;
  out.values.reserve(values.size());
  std::unordered_map<ValueId, ValueId> rename;
  for (ValueId d : values) {
    auto [it, inserted] =
        rename.emplace(d, static_cast<ValueId>(rename.size()));
    out.values.push_back(it->second);
    (void)inserted;
  }
  return out;
}

std::string DataPath::ToString(const DataGraph& graph) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < values.size(); i++) {
    if (i > 0) {
      os << " " << graph.labels().NameOf(letters[i - 1]) << " ";
    }
    os << graph.data_values().NameOf(values[i]);
  }
  return os.str();
}

Result<DataPath> DataPathOfNodePath(const DataGraph& graph,
                                    const std::vector<NodeId>& nodes,
                                    const std::vector<LabelId>& labels) {
  if (nodes.empty() || nodes.size() != labels.size() + 1) {
    return Status::InvalidArgument("node path shape mismatch");
  }
  for (std::size_t i = 0; i < labels.size(); i++) {
    if (!graph.HasEdge(nodes[i], labels[i], nodes[i + 1])) {
      return Status::InvalidArgument("node path uses a missing edge");
    }
  }
  DataPath out;
  out.letters = labels;
  out.values.reserve(nodes.size());
  for (NodeId v : nodes) {
    out.values.push_back(graph.DataValueOf(v));
  }
  return out;
}

std::vector<NodePath> EnumerateNodePaths(const DataGraph& graph, NodeId from,
                                         std::size_t max_length) {
  std::vector<NodePath> result;
  // Iterative DFS over partial paths; exponential by design (oracle use).
  std::vector<NodePath> frontier;
  frontier.push_back(NodePath{{from}, {}});
  result.push_back(frontier.back());
  for (std::size_t len = 0; len < max_length; len++) {
    std::vector<NodePath> next;
    for (const NodePath& p : frontier) {
      NodeId tail = p.nodes.back();
      for (const auto& [label, to] : graph.OutEdges(tail)) {
        NodePath extended = p;
        extended.nodes.push_back(to);
        extended.labels.push_back(label);
        result.push_back(extended);
        next.push_back(std::move(extended));
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) {
      break;
    }
  }
  return result;
}

std::vector<DataPath> EnumerateConnectingPaths(const DataGraph& graph,
                                               NodeId from, NodeId to,
                                               std::size_t max_length) {
  std::vector<DataPath> out;
  for (const NodePath& p : EnumerateNodePaths(graph, from, max_length)) {
    if (p.nodes.back() != to) {
      continue;
    }
    auto dp = DataPathOfNodePath(graph, p.nodes, p.labels);
    assert(dp.ok());
    out.push_back(std::move(dp).value());
  }
  return out;
}

}  // namespace gqd
