// Synthetic data-graph generators for tests and benchmarks.
//
// All generators are deterministic given their seed (a SplitMix64 stream),
// so every benchmark row and property sweep is reproducible.

#ifndef GQD_GRAPH_GENERATORS_H_
#define GQD_GRAPH_GENERATORS_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "graph/data_graph.h"
#include "graph/relation.h"

namespace gqd {

/// Where a streaming generator emits its graph. The large-scale generators
/// (GenerateScaleFree / GenerateGrid) write through this interface so the
/// same deterministic emission order can fill either a resident DataGraph
/// (DataGraphSink) or the binary graph container's streaming builder
/// (GraphContainerBuilder in src/storage/) without ever materializing the
/// text form. Contract: labels and data values first, then every node,
/// then edges over existing node ids; duplicate edges are never emitted.
class GraphSink {
 public:
  virtual ~GraphSink() = default;

  virtual LabelId AddLabel(std::string_view name) = 0;
  virtual ValueId AddDataValue(std::string_view name) = 0;
  /// Adds an anonymous node; ids are assigned sequentially from 0.
  virtual NodeId AddNode(ValueId value) = 0;
  virtual void AddEdge(NodeId from, LabelId label, NodeId to) = 0;
};

/// GraphSink that fills a resident DataGraph.
class DataGraphSink : public GraphSink {
 public:
  LabelId AddLabel(std::string_view name) override {
    return graph_.AddLabel(name);
  }
  ValueId AddDataValue(std::string_view name) override {
    return graph_.AddDataValue(name);
  }
  NodeId AddNode(ValueId value) override { return graph_.AddNode(value); }
  void AddEdge(NodeId from, LabelId label, NodeId to) override {
    graph_.AddEdge(from, label, to);
  }

  DataGraph Take() { return std::move(graph_); }

 private:
  DataGraph graph_;
};

/// Deterministic 64-bit PRNG (SplitMix64); tiny, fast, seedable.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next();

  /// Uniform value in [0, bound) for bound >= 1.
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Bernoulli draw with probability numerator/denominator.
  bool NextBool(std::uint32_t numerator, std::uint32_t denominator);

 private:
  std::uint64_t state_;
};

/// Parameters for RandomDataGraph.
struct RandomGraphOptions {
  std::size_t num_nodes = 8;
  std::size_t num_labels = 2;       ///< |Σ|
  std::size_t num_data_values = 3;  ///< δ (values drawn uniformly)
  /// Independent edge probability per (u, label, v), as percent [0, 100].
  std::uint32_t edge_percent = 20;
  std::uint64_t seed = 1;
};

/// Erdős–Rényi-style random data graph: each directed (u, a, v) edge is
/// present independently with probability edge_percent/100; node values
/// are uniform over {0, ..., δ-1}. Labels are named "a", "b", ...; values
/// "0", "1", ....
DataGraph RandomDataGraph(const RandomGraphOptions& options);

/// A directed line v0 -a-> v1 -a-> ... -a-> v_{n-1} with the given
/// per-node data values (values.size() == n).
DataGraph LineGraph(const std::vector<std::uint32_t>& values,
                    const char* label = "a");

/// A directed cycle over n nodes labelled `label`, values as given.
DataGraph CycleGraph(const std::vector<std::uint32_t>& values,
                     const char* label = "a");

/// A random subrelation of V×V where each pair joins with the given
/// percent probability.
BinaryRelation RandomRelation(std::size_t num_nodes,
                              std::uint32_t pair_percent, std::uint64_t seed);

/// Parameters for GenerateScaleFree.
struct ScaleFreeOptions {
  std::size_t num_nodes = 1000;
  /// Out-edges attached per new node (m of Barabási–Albert).
  std::size_t edges_per_node = 4;
  std::size_t num_labels = 2;       ///< |Σ|, named "a", "b", ...
  std::size_t num_data_values = 16; ///< δ, named "0", "1", ...
  std::uint64_t seed = 1;
};

/// Streams a scale-free data graph into `sink`: preferential attachment via
/// an endpoint pool (each new node draws its targets from the multiset of
/// all prior edge endpoints, so attachment probability tracks degree), edges
/// oriented new → old with uniformly random labels, node values uniform over
/// δ. Deterministic for a fixed option set; nodes are anonymous so
/// million-node graphs carry no name table.
void GenerateScaleFree(const ScaleFreeOptions& options, GraphSink* sink);

/// Parameters for GenerateGrid.
struct GridOptions {
  std::size_t rows = 10;
  std::size_t cols = 10;
  std::size_t num_data_values = 16; ///< δ, named "0", "1", ...
  std::uint64_t seed = 1;
};

/// Streams a rows×cols directed grid into `sink`: nodes row-major with
/// uniform random data values, label "a" pointing east and "b" pointing
/// south. The worst-case-diameter shape used by the million-node storage
/// benchmarks. Deterministic for a fixed option set.
void GenerateGrid(const GridOptions& options, GraphSink* sink);

}  // namespace gqd

#endif  // GQD_GRAPH_GENERATORS_H_
