// Synthetic data-graph generators for tests and benchmarks.
//
// All generators are deterministic given their seed (a SplitMix64 stream),
// so every benchmark row and property sweep is reproducible.

#ifndef GQD_GRAPH_GENERATORS_H_
#define GQD_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "graph/data_graph.h"
#include "graph/relation.h"

namespace gqd {

/// Deterministic 64-bit PRNG (SplitMix64); tiny, fast, seedable.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next();

  /// Uniform value in [0, bound) for bound >= 1.
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Bernoulli draw with probability numerator/denominator.
  bool NextBool(std::uint32_t numerator, std::uint32_t denominator);

 private:
  std::uint64_t state_;
};

/// Parameters for RandomDataGraph.
struct RandomGraphOptions {
  std::size_t num_nodes = 8;
  std::size_t num_labels = 2;       ///< |Σ|
  std::size_t num_data_values = 3;  ///< δ (values drawn uniformly)
  /// Independent edge probability per (u, label, v), as percent [0, 100].
  std::uint32_t edge_percent = 20;
  std::uint64_t seed = 1;
};

/// Erdős–Rényi-style random data graph: each directed (u, a, v) edge is
/// present independently with probability edge_percent/100; node values
/// are uniform over {0, ..., δ-1}. Labels are named "a", "b", ...; values
/// "0", "1", ....
DataGraph RandomDataGraph(const RandomGraphOptions& options);

/// A directed line v0 -a-> v1 -a-> ... -a-> v_{n-1} with the given
/// per-node data values (values.size() == n).
DataGraph LineGraph(const std::vector<std::uint32_t>& values,
                    const char* label = "a");

/// A directed cycle over n nodes labelled `label`, values as given.
DataGraph CycleGraph(const std::vector<std::uint32_t>& values,
                     const char* label = "a");

/// A random subrelation of V×V where each pair joins with the given
/// percent probability.
BinaryRelation RandomRelation(std::size_t num_nodes,
                              std::uint32_t pair_percent, std::uint64_t seed);

}  // namespace gqd

#endif  // GQD_GRAPH_GENERATORS_H_
