// k-RDPQ_mem-definability (Section 3.1, Theorem 22) and, at k = 0,
// RPQ-definability (the baseline of Antonopoulos–Neven–Servais).
//
// By Lemmas 18/20/21, S is definable by a k-register REM iff every pair
// ⟨v_p, v_q⟩ ∈ S has a *k-REM witness*: a basic k-REM e (a block sequence
// ↓r̄_1.a_1[c_1] ··· ↓r̄_m.a_m[c_m]) such that
//   (1) some run (v_p, ⊥^k) —e→ (v_q, ·) exists in the assignment graph, and
//   (2) every run (v_i, ⊥^k) —e→ (v', ·) has ⟨v_i, v'⟩ ∈ S.
//
// The checker runs BFS over the deterministic *macro-tuple* system: a tuple
// ⟨Q_1, ..., Q_n⟩ of assignment-graph state sets, Q_i = states reachable
// from (v_i, ⊥^k) along the block prefix read so far (sequence (2) in the
// proof of Lemma 21). A tuple is *safe* when condition (2) holds of it, and
// accepts ⟨v_p, v_q⟩ when it is safe and v_q appears in Q_p. The paper's
// pigeonhole bound 2^(n²(δ+1)^k) on witness length is exactly the number of
// distinct tuples, i.e. the BFS's worst-case frontier — hence the explicit
// tuple budget.

#ifndef GQD_DEFINABILITY_KREM_DEFINABILITY_H_
#define GQD_DEFINABILITY_KREM_DEFINABILITY_H_

#include <optional>
#include <vector>

#include "common/budget.h"
#include "common/cancel.h"
#include "common/interner.h"
#include "common/status.h"
#include "definability/assignment_graph.h"
#include "definability/verdict.h"
#include "graph/data_graph.h"
#include "graph/relation.h"
#include "graph/sparse_relation.h"
#include "rem/ast.h"

namespace gqd {

/// A k-REM witness for one pair of S: the block sequence of a basic k-REM
/// (empty sequence = the ε expression, witnessing diagonal pairs).
struct KRemWitness {
  NodeId from;
  NodeId to;
  std::vector<BasicRemBlock> blocks;
};

/// Which successor machinery the BFS runs on. All engines explore tuples
/// in the same canonical order and compute the same successor bits, so
/// verdicts, witnesses and tuples_explored are identical at every thread
/// count — the reference engine exists as a differential-testing oracle
/// for the faster paths (see tests/test_definability_diff).
enum class KRemEngine {
  /// Specialized per-transition kernels picked by the query-plan static
  /// analyzer (analysis/plan/kernel_dispatch.h): identity, single-bit,
  /// CSR-sparse or dense inner loops clipped to the word spans each
  /// transition can touch. Downgrades to kKernel (then kReference) when
  /// the dispatch table declines to build. The default.
  kPlanned,
  /// Word-parallel kernel rows + incremental subset unions.
  kKernel,
  /// Straightforward per-successor derivation with from-scratch subset
  /// unions — the shape of the original implementation, kept as an oracle.
  kReference,
};

/// How the BFS stores macro tuples. Both stores intern tuples semantically
/// (two tuples are equal iff their state *sets* are), explore them in the
/// same canonical order, and produce identical verdicts, witnesses and
/// tuples_explored — they differ only in memory shape and in how budget
/// bytes are charged (each charges its actual allocation, so byte-budget
/// trip points are store-specific).
enum class KRemTupleStore {
  /// kDense while one flat tuple fits kDenseTupleBytesCap, else
  /// kSparseFrontier. The default.
  kAuto,
  /// Flat bitset tuples, n·⌈|Q|/64⌉ words each — O(n²) per tuple at k = 0,
  /// fast word-parallel engines, the historical representation.
  kDense,
  /// Sorted (node, state) entry lists — memory proportional to the live
  /// frontier states instead of n², the only representation that fits
  /// million-node graphs. Successor generation walks SuccessorsOf (the
  /// reference shape) and runs sequentially: the `engine` and
  /// `num_threads` options are ignored, with bit-identical results.
  kSparseFrontier,
};

/// Above this dense-tuple footprint (words × 8 bytes) KRemTupleStore::kAuto
/// switches to the sparse frontier store.
inline constexpr std::size_t kDenseTupleBytesCap = std::size_t{64} << 20;

struct KRemDefinabilityOptions {
  /// Maximum number of distinct macro tuples to explore before giving up.
  std::size_t max_tuples = 200'000;
  /// Successor-generation workers for each BFS frontier step. The
  /// independent (store set, letter) blocks of the current tuple fan out
  /// across a shared ThreadPool; results merge back in canonical block
  /// order, so verdicts, witnesses and tuples_explored are bit-identical
  /// for every thread count. 0 or 1 means sequential.
  std::size_t num_threads = 1;
  /// Successor machinery; kPlanned unless you are cross-checking. Ignored
  /// by the sparse frontier tuple store (reference-shape walk).
  KRemEngine engine = KRemEngine::kPlanned;
  /// Macro-tuple representation; kAuto unless you are cross-checking.
  KRemTupleStore tuple_store = KRemTupleStore::kAuto;
  /// Optional cooperative cancellation: the BFS (and its workers) polls
  /// this token and returns Status::DeadlineExceeded once it expires.
  const CancelToken* cancel = nullptr;
  /// Optional resource governance: the tuple store charges its allocations
  /// here and the BFS polls it at frontier boundaries. On exhaustion the
  /// checker stops cleanly with verdict kBudgetExhausted and a populated
  /// `partial` report (see KRemDefinabilityResult) instead of growing
  /// without bound.
  const ResourceBudget* budget = nullptr;
};

struct KRemDefinabilityResult {
  DefinabilityVerdict verdict = DefinabilityVerdict::kBudgetExhausted;
  /// One witness per pair of S (populated iff verdict == kDefinable).
  std::vector<KRemWitness> witnesses;
  /// Macro tuples explored (the E2 bench's cost measure).
  std::size_t tuples_explored = 0;
  /// Set iff an options.budget trip stopped the search: how far it got.
  /// (The legacy max_tuples cap reports kBudgetExhausted without this.)
  std::optional<PartialProgress> partial;
};

/// Decides whether S is definable by an RDPQ_mem using at most k registers.
/// Requires k <= 4 (see AssignmentGraph::Build).
Result<KRemDefinabilityResult> CheckKRemDefinability(
    const DataGraph& graph, const BinaryRelation& relation, std::size_t k,
    const KRemDefinabilityOptions& options = {});

/// Same decision on a density-adaptive relation. The BFS only ever probes
/// membership (relation.Test) and enumerates S once (relation.Pairs), so
/// any backend works without densification; verdicts are bit-identical to
/// the dense overload on the same pair set.
Result<KRemDefinabilityResult> CheckKRemDefinability(
    const DataGraph& graph, const AdaptiveRelation& relation, std::size_t k,
    const KRemDefinabilityOptions& options = {});

/// RDPQ_mem-definability with unbounded registers: by Lemma 23 this equals
/// δ-RDPQ_mem-definability, so this calls CheckKRemDefinability with
/// k = min(δ, needed) — δ registers always suffice, and fewer than δ are
/// never *required* to exceed (the call still fails with OutOfRange when
/// δ > 4, the practical wall the E3 bench demonstrates).
Result<KRemDefinabilityResult> CheckRemDefinability(
    const DataGraph& graph, const BinaryRelation& relation,
    const KRemDefinabilityOptions& options = {});

/// Unbounded-register decision on a density-adaptive relation.
Result<KRemDefinabilityResult> CheckRemDefinability(
    const DataGraph& graph, const AdaptiveRelation& relation,
    const KRemDefinabilityOptions& options = {});

/// Materializes a witness's block sequence as a basic k-REM AST
/// (Definition 16); the empty sequence yields ε. Conditions equal to the
/// full minterm set and empty store sets are omitted for readability.
RemPtr BasicRemFromBlocks(const std::vector<BasicRemBlock>& blocks,
                          std::size_t k, const StringInterner& labels);

}  // namespace gqd

#endif  // GQD_DEFINABILITY_KREM_DEFINABILITY_H_
