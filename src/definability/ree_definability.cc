#include "definability/ree_definability.h"

#include <cstdint>
#include <vector>

#include "analysis/plan/kernel_class.h"
#include "analysis/plan/plan_metrics.h"
#include "common/failpoint.h"
#include "definability/small_relation.h"
#include "obs/trace.h"

namespace gqd {

namespace {

GQD_FAILPOINT_DEFINE(fp_ree_closure, "ree.closure");

/// Policy for the generic level algorithm over plain BinaryRelations.
/// With `masks` set, the =/≠ restrictions run rowized (one word-parallel
/// AND / AND-NOT per row against the source node's value class); with
/// `masks == nullptr` they run the retained per-bit reference loops. With
/// `diagonal` set (planned engine, all value classes singletons) they run
/// the diagonal forms instead, counting executions into `diagonal_hits`.
struct BigRelationOps {
  using Rel = BinaryRelation;
  using Hash = BinaryRelationHash;

  const DataGraph* graph;
  const ValueClassMasks* masks;
  bool diagonal = false;
  std::uint64_t* diagonal_hits = nullptr;

  Rel Empty() const { return BinaryRelation(graph->NumNodes()); }
  Rel Identity() const { return BinaryRelation::Identity(graph->NumNodes()); }
  Rel FromLabel(LabelId a) const {
    return BinaryRelation::FromEdges(*graph, a);
  }
  Rel Compose(const Rel& a, const Rel& b) const { return a.Compose(b); }
  Rel Eq(const Rel& a) const {
    if (diagonal) {
      (*diagonal_hits)++;
      return a.EqRestrictDiagonal();
    }
    return masks != nullptr ? a.EqRestrict(*masks) : a.EqRestrict(*graph);
  }
  Rel Neq(const Rel& a) const {
    if (diagonal) {
      (*diagonal_hits)++;
      return a.NeqRestrictDiagonal();
    }
    return masks != nullptr ? a.NeqRestrict(*masks) : a.NeqRestrict(*graph);
  }
  bool Subset(const Rel& a, const Rel& b) const { return a.IsSubsetOf(b); }
  void UnionInto(Rel* a, const Rel& b) const { a->UnionWith(b); }
  bool Equal(const Rel& a, const Rel& b) const { return a == b; }
  /// Actual bytes one materialized relation costs (budget accounting):
  /// dense rows are fixed-size, so the n²-bit matrix is exact.
  std::size_t ElementBytes(const Rel& /*rel*/) const {
    std::size_t n = graph->NumNodes();
    return sizeof(Rel) + n * ((n + 63) / 64) * sizeof(std::uint64_t);
  }
};

/// Policy over blocked (array/bitmap container) relations — what the
/// AdaptiveRelation overload runs on for non-dense backends. Every
/// operation produces the same *set* the dense ops produce, and the monoid
/// interner is semantic (hash + Equal), so the closure enumerates the same
/// elements in the same order: verdict, levels_used, monoid_size and the
/// synthesized expression are identical to the dense engines. Compose
/// streams per-source frontiers through one n-bit scratch row instead of
/// materializing an n² intermediate.
struct BlockedRelationOps {
  using Rel = BlockedBinaryRelation;
  using Hash = BlockedBinaryRelationHash;

  const DataGraph* graph;
  const ValueClassMasks* masks;

  Rel Empty() const { return BlockedBinaryRelation(graph->NumNodes()); }
  Rel Identity() const {
    return BlockedBinaryRelation::Identity(graph->NumNodes());
  }
  Rel FromLabel(LabelId a) const {
    return BlockedBinaryRelation::FromEdges(*graph, a);
  }
  Rel Compose(const Rel& a, const Rel& b) const { return a.Compose(b); }
  Rel Eq(const Rel& a) const { return a.EqRestrict(*masks); }
  Rel Neq(const Rel& a) const { return a.NeqRestrict(*masks); }
  bool Subset(const Rel& a, const Rel& b) const { return a.IsSubsetOf(b); }
  void UnionInto(Rel* a, const Rel& b) const { a->UnionWith(b); }
  bool Equal(const Rel& a, const Rel& b) const { return a == b; }
  /// Actual per-element budget charge: blocked rows size with content, so
  /// the container's own heap accounting is the honest cost — a
  /// near-empty relation charges a few rows, a dense-ish one its bitmap
  /// blocks. Byte-budget trip points are therefore representation-exact,
  /// not a nominal per-element constant.
  std::size_t ElementBytes(const Rel& rel) const {
    return sizeof(Rel) + rel.ByteSize();
  }
};

/// Policy over packed 64-bit relations (n ≤ 8) — same algorithm, ~10-50×
/// cheaper per operation (the E9 ablation).
struct SmallRelationOps {
  using Rel = SmallRelation;
  using Hash = std::hash<std::uint64_t>;

  const SmallRelationSpace* space;

  Rel Empty() const { return space->Empty(); }
  Rel Identity() const { return space->Identity(); }
  Rel FromLabel(LabelId a) const { return space->FromLabel(a); }
  Rel Compose(Rel a, Rel b) const { return space->Compose(a, b); }
  Rel Eq(Rel a) const { return space->EqRestrict(a); }
  Rel Neq(Rel a) const { return space->NeqRestrict(a); }
  bool Subset(Rel a, Rel b) const { return space->IsSubsetOf(a, b); }
  void UnionInto(Rel* a, Rel b) const { *a |= b; }
  bool Equal(Rel a, Rel b) const { return a == b; }
  std::size_t ElementBytes(Rel /*rel*/) const { return sizeof(Rel); }
};

/// How a monoid element was derived. The closure attempts |M|·|gens|
/// compositions but inserts only |M| of them, so REE ASTs are *not* built
/// eagerly per attempt — each element records this five-word recipe and the
/// few elements the greedy cover actually uses are materialized at the end.
struct Derivation {
  enum class Kind : std::uint8_t { kEpsilon, kLetter, kConcat, kEq, kNeq };
  Kind kind = Kind::kEpsilon;
  std::uint32_t a = 0;  ///< left/only operand element index
  std::uint32_t b = 0;  ///< kConcat: right operand index; kLetter: label id
};

/// The level algorithm (Definition 27 / Lemmas 28-31), generic over the
/// relation representation. See the header for the algebraic argument
/// (distribution of ∘ and =/≠ over +) that reduces levels to a ∘-monoid
/// with generator-only closure.
template <typename Ops>
Result<ReeDefinabilityResult> RunLevelAlgorithm(
    const Ops& ops, const typename Ops::Rel& target, bool target_empty,
    std::size_t num_nodes, std::size_t num_labels,
    const std::vector<std::string>& label_names,
    const ReeDefinabilityOptions& options) {
  using Rel = typename Ops::Rel;
  std::size_t max_levels =
      options.max_levels > 0 ? options.max_levels : num_nodes * num_nodes;
  ReeDefinabilityResult result;
  GQD_TRACE_SPAN(algorithm_span, "ree.level_algorithm");
  GQD_TRACE_SPAN_ATTR(algorithm_span, "nodes", num_nodes);
  GQD_TRACE_SPAN_ATTR(algorithm_span, "labels", num_labels);

  // The monoid: distinct relations, each with one derivation recipe. The
  // interner is open-addressed over stored hashes — probes compare against
  // elements[slot] directly, so a relation is never copied into a map key.
  std::vector<Rel> elements;
  std::vector<Derivation> derivations;
  std::vector<std::size_t> hashes;
  std::vector<std::size_t> slots(64, 0);  // index+1, 0 = empty; pow-2 size
  // Generator bookkeeping: right-multiplication by generators alone
  // enumerates the ∘-semigroup (every element is a generator product),
  // making the closure |M|·|gens| instead of |M|².
  std::vector<std::size_t> gens;
  std::vector<bool> is_gen;
  std::vector<std::size_t> applied;

  // The monoid cap reuses ResourceBudget accounting: the bytes axis caps
  // the *actual* representation size of the interned elements (exact for
  // dense, the container's heap footprint for blocked), the tuples axis
  // keeps the legacy element-count cap. Tripping either stops the closure
  // with a partial-progress verdict, exactly like an options.budget trip.
  const ResourceBudget monoid_budget(options.max_monoid_bytes,
                                     options.max_monoid_size);
  // Interner bookkeeping per element (hash, slot, derivation, flags).
  const std::size_t bookkeeping_bytes =
      3 * sizeof(std::size_t) + sizeof(Derivation);

  auto add_element = [&](Rel rel, Derivation derivation) -> std::size_t {
    std::size_t hash = typename Ops::Hash{}(rel);
    std::size_t mask = slots.size() - 1;
    std::size_t pos = hash & mask;
    while (slots[pos] != 0) {
      std::size_t index = slots[pos] - 1;
      if (hashes[index] == hash && ops.Equal(elements[index], rel)) {
        return index;
      }
      pos = (pos + 1) & mask;
    }
    std::size_t index = elements.size();
    elements.push_back(std::move(rel));
    derivations.push_back(derivation);
    hashes.push_back(hash);
    applied.push_back(0);
    is_gen.push_back(false);
    slots[pos] = index + 1;
    const std::size_t element_bytes =
        ops.ElementBytes(elements.back()) + bookkeeping_bytes;
    monoid_budget.ChargeBytes(static_cast<std::int64_t>(element_bytes));
    monoid_budget.ChargeTuples(1);
    if (options.budget != nullptr) {
      options.budget->ChargeBytes(static_cast<std::int64_t>(element_bytes));
      options.budget->ChargeTuples(1);
    }
    if ((elements.size() + 1) * 4 > slots.size() * 3) {
      std::vector<std::size_t> bigger(slots.size() * 2, 0);
      std::size_t bigger_mask = bigger.size() - 1;
      for (std::size_t i = 0; i < elements.size(); i++) {
        std::size_t p = hashes[i] & bigger_mask;
        while (bigger[p] != 0) {
          p = (p + 1) & bigger_mask;
        }
        bigger[p] = i + 1;
      }
      slots.swap(bigger);
    }
    return index;
  };
  auto add_generator = [&](Rel rel, Derivation derivation) {
    std::size_t i = add_element(std::move(rel), derivation);
    if (!is_gen[i]) {
      is_gen[i] = true;
      gens.push_back(i);
    }
  };

  add_generator(ops.Identity(), Derivation{Derivation::Kind::kEpsilon, 0, 0});
  for (LabelId a = 0; a < num_labels; a++) {
    add_generator(ops.FromLabel(a),
                  Derivation{Derivation::Kind::kLetter, 0, a});
  }

  std::uint32_t ticks = 0;
  std::uint32_t budget_ticks = 0;
  bool expired = false;
  bool injected = false;
  bool budget_tripped = false;
  bool monoid_tripped = false;
  auto close = [&]() -> bool {
    GQD_TRACE_SPAN(round_span, "ree.closure_round");
    GQD_TRACE_SPAN_ATTR(round_span, "elements_before", elements.size());
    if (GQD_FAILPOINT_FIRED(fp_ree_closure)) {
      injected = true;
      return false;
    }
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t i = 0; i < elements.size(); i++) {
        while (applied[i] < gens.size()) {
          if (GQD_CANCEL_STRIDE_CHECK(options.cancel, ticks)) {
            expired = true;
            return false;
          }
          if (GQD_BUDGET_STRIDE_CHECK(options.budget, budget_ticks)) {
            budget_tripped = true;
            return false;
          }
          std::size_t g = gens[applied[i]++];
          std::size_t before = elements.size();
          add_element(ops.Compose(elements[i], elements[g]),
                      Derivation{Derivation::Kind::kConcat,
                                 static_cast<std::uint32_t>(i),
                                 static_cast<std::uint32_t>(g)});
          if (elements.size() > before) {
            progress = true;
          }
          if (elements.size() > before && monoid_budget.Exhausted()) {
            monoid_tripped = true;
            return false;
          }
        }
      }
    }
    return true;
  };

  // Maps a failed close() to the corresponding outcome: cancellation,
  // injected fault, ResourceBudget trip, or the monoid byte/count cap —
  // both budget paths report partial progress.
  auto closure_failure = [&]() -> Result<ReeDefinabilityResult> {
    if (expired) {
      return options.cancel->Check();
    }
    if (injected) {
      return Status::ResourceExhausted(
          "injected monoid closure failure (failpoint ree.closure)");
    }
    result.verdict = DefinabilityVerdict::kBudgetExhausted;
    result.monoid_size = elements.size();
    if (budget_tripped || (options.budget != nullptr &&
                           options.budget->Exhausted())) {
      result.partial =
          PartialProgress{elements.size(), result.levels_used,
                          options.budget->bytes_peak(), "ree-closure"};
    } else if (monoid_tripped || monoid_budget.Exhausted()) {
      result.partial =
          PartialProgress{elements.size(), result.levels_used,
                          monoid_budget.bytes_peak(), "ree-monoid"};
    }
    return result;
  };

  if (!close()) {
    return closure_failure();
  }
  for (std::size_t level = 0; level < max_levels; level++) {
    GQD_TRACE_SPAN(level_span, "ree.level");
    GQD_TRACE_SPAN_ATTR(level_span, "level", level);
    std::size_t before = elements.size();
    for (std::size_t i = 0; i < before; i++) {
      if (GQD_CANCEL_STRIDE_CHECK(options.cancel, ticks)) {
        return options.cancel->Check();
      }
      add_generator(ops.Eq(elements[i]),
                    Derivation{Derivation::Kind::kEq,
                               static_cast<std::uint32_t>(i), 0});
      add_generator(ops.Neq(elements[i]),
                    Derivation{Derivation::Kind::kNeq,
                               static_cast<std::uint32_t>(i), 0});
      if (GQD_BUDGET_STRIDE_CHECK(options.budget, budget_ticks)) {
        budget_tripped = true;
        return closure_failure();
      }
      if (monoid_budget.Exhausted()) {
        monoid_tripped = true;
        return closure_failure();
      }
    }
    if (elements.size() == before) {
      break;
    }
    result.levels_used = level + 1;
    if (!close()) {
      return closure_failure();
    }
  }
  result.monoid_size = elements.size();
  GQD_TRACE_SPAN_ATTR(algorithm_span, "monoid_size", elements.size());
  GQD_TRACE_SPAN_ATTR(algorithm_span, "levels_used", result.levels_used);

  // Decision (Lemma 30) + greedy synthesis.
  GQD_TRACE_SPAN(synthesis_span, "ree.synthesize");
  Rel covered = ops.Empty();
  std::vector<std::size_t> cover;
  for (std::size_t i = 0; i < elements.size(); i++) {
    if (!ops.Subset(elements[i], target)) {
      continue;
    }
    Rel merged = covered;
    ops.UnionInto(&merged, elements[i]);
    if (!ops.Equal(merged, covered)) {
      covered = merged;
      cover.push_back(i);
    }
    if (ops.Equal(covered, target)) {
      break;
    }
  }
  if (!ops.Equal(covered, target)) {
    result.verdict = DefinabilityVerdict::kNotDefinable;
    return result;
  }
  result.verdict = DefinabilityVerdict::kDefinable;
  if (target_empty) {
    result.defining_expression = ree::Neq(ree::Epsilon());
    return result;
  }

  // Materialize the cover members' recipes as REE ASTs (iteratively — a
  // concat chain's depth can approach the monoid size). Shared subtrees
  // materialize once via the memo.
  std::vector<ReePtr> memo(elements.size());
  std::vector<std::size_t> stack;
  std::vector<ReePtr> cover_exprs;
  for (std::size_t root : cover) {
    stack.push_back(root);
    while (!stack.empty()) {
      std::size_t i = stack.back();
      if (memo[i] != nullptr) {
        stack.pop_back();
        continue;
      }
      const Derivation& d = derivations[i];
      switch (d.kind) {
        case Derivation::Kind::kEpsilon:
          memo[i] = ree::Epsilon();
          break;
        case Derivation::Kind::kLetter:
          memo[i] = ree::Letter(label_names[d.b]);
          break;
        case Derivation::Kind::kConcat:
          if (memo[d.a] == nullptr) {
            stack.push_back(d.a);
          } else if (memo[d.b] == nullptr) {
            stack.push_back(d.b);
          } else {
            memo[i] = ree::Concat({memo[d.a], memo[d.b]});
          }
          break;
        case Derivation::Kind::kEq:
          if (memo[d.a] == nullptr) {
            stack.push_back(d.a);
          } else {
            memo[i] = ree::Eq(memo[d.a]);
          }
          break;
        case Derivation::Kind::kNeq:
          if (memo[d.a] == nullptr) {
            stack.push_back(d.a);
          } else {
            memo[i] = ree::Neq(memo[d.a]);
          }
          break;
      }
      if (memo[i] != nullptr) {
        stack.pop_back();
      }
    }
    cover_exprs.push_back(memo[root]);
  }
  result.defining_expression = ree::Union(std::move(cover_exprs));
  return result;
}

}  // namespace

Result<ReeDefinabilityResult> CheckReeDefinability(
    const DataGraph& graph, const BinaryRelation& relation,
    const ReeDefinabilityOptions& options) {
  if (relation.num_nodes() != graph.NumNodes()) {
    return Status::InvalidArgument(
        "relation is over a different node count than the graph");
  }
  const std::vector<std::string>& label_names = graph.labels().names();
  if (options.engine == ReeEngine::kReference) {
    BigRelationOps ops{&graph, nullptr};
    return RunLevelAlgorithm(ops, relation, relation.Empty(),
                             graph.NumNodes(), graph.NumLabels(), label_names,
                             options);
  }
  if (graph.NumNodes() <= 8 && graph.NumNodes() > 0) {
    SmallRelationSpace space(graph);
    SmallRelationOps ops{&space};
    return RunLevelAlgorithm(ops, space.Pack(relation), relation.Empty(),
                             graph.NumNodes(), graph.NumLabels(), label_names,
                             options);
  }
  ValueClassMasks masks(graph);
  if (options.engine == ReeEngine::kPlanned && masks.AllSingletons()) {
    // Planned diagonal kernel: ρ is injective, so the =/≠ restrictions
    // never need the class masks. Flush executions into the plan metrics
    // once, alongside the k-REM checker's kernel-class hits.
    std::uint64_t diagonal_hits = 0;
    BigRelationOps ops{&graph, &masks, /*diagonal=*/true, &diagonal_hits};
    Result<ReeDefinabilityResult> result = RunLevelAlgorithm(
        ops, relation, relation.Empty(), graph.NumNodes(), graph.NumLabels(),
        label_names, options);
    if (diagonal_hits != 0) {
      std::uint64_t hits[kNumKernelClasses] = {};
      hits[static_cast<std::size_t>(TransitionKernelClass::kDiagonal)] =
          diagonal_hits;
      RecordPlanKernelHits(hits);
    }
    return result;
  }
  BigRelationOps ops{&graph, &masks};
  return RunLevelAlgorithm(ops, relation, relation.Empty(),
                           graph.NumNodes(), graph.NumLabels(), label_names,
                           options);
}

Result<ReeDefinabilityResult> CheckReeDefinability(
    const DataGraph& graph, const AdaptiveRelation& relation,
    const ReeDefinabilityOptions& options) {
  if (relation.num_nodes() != graph.NumNodes()) {
    return Status::InvalidArgument(
        "relation is over a different node count than the graph");
  }
  if (relation.backend() == RelationBackend::kDense) {
    return CheckReeDefinability(graph, relation.dense(), options);
  }
  BlockedBinaryRelation converted;
  const BlockedBinaryRelation* target = &converted;
  if (relation.backend() == RelationBackend::kBlocked) {
    target = &relation.blocked();
  } else {
    converted = BlockedBinaryRelation::FromPairs(graph.NumNodes(),
                                                 relation.Pairs());
  }
  ValueClassMasks masks(graph);
  BlockedRelationOps ops{&graph, &masks};
  return RunLevelAlgorithm(ops, *target, relation.Empty(),
                           graph.NumNodes(), graph.NumLabels(),
                           graph.labels().names(), options);
}

}  // namespace gqd
