#include "definability/ree_definability.h"

#include <unordered_map>

#include "definability/small_relation.h"

namespace gqd {

namespace {

/// Policy for the generic level algorithm over plain BinaryRelations.
struct BigRelationOps {
  using Rel = BinaryRelation;
  using Hash = BinaryRelationHash;

  const DataGraph* graph;

  Rel Empty() const { return BinaryRelation(graph->NumNodes()); }
  Rel Identity() const { return BinaryRelation::Identity(graph->NumNodes()); }
  Rel FromLabel(LabelId a) const {
    return BinaryRelation::FromEdges(*graph, a);
  }
  Rel Compose(const Rel& a, const Rel& b) const { return a.Compose(b); }
  Rel Eq(const Rel& a) const { return a.EqRestrict(*graph); }
  Rel Neq(const Rel& a) const { return a.NeqRestrict(*graph); }
  bool Subset(const Rel& a, const Rel& b) const { return a.IsSubsetOf(b); }
  void UnionInto(Rel* a, const Rel& b) const { a->UnionWith(b); }
  bool Equal(const Rel& a, const Rel& b) const { return a == b; }
};

/// Policy over packed 64-bit relations (n ≤ 8) — same algorithm, ~10-50×
/// cheaper per operation (the E9 ablation).
struct SmallRelationOps {
  using Rel = SmallRelation;
  using Hash = std::hash<std::uint64_t>;

  const SmallRelationSpace* space;

  Rel Empty() const { return space->Empty(); }
  Rel Identity() const { return space->Identity(); }
  Rel FromLabel(LabelId a) const { return space->FromLabel(a); }
  Rel Compose(Rel a, Rel b) const { return space->Compose(a, b); }
  Rel Eq(Rel a) const { return space->EqRestrict(a); }
  Rel Neq(Rel a) const { return space->NeqRestrict(a); }
  bool Subset(Rel a, Rel b) const { return space->IsSubsetOf(a, b); }
  void UnionInto(Rel* a, Rel b) const { *a |= b; }
  bool Equal(Rel a, Rel b) const { return a == b; }
};

/// The level algorithm (Definition 27 / Lemmas 28-31), generic over the
/// relation representation. See the header for the algebraic argument
/// (distribution of ∘ and =/≠ over +) that reduces levels to a ∘-monoid
/// with generator-only closure.
template <typename Ops>
Result<ReeDefinabilityResult> RunLevelAlgorithm(
    const Ops& ops, const typename Ops::Rel& target, bool target_empty,
    std::size_t num_nodes, std::size_t num_labels,
    const std::vector<std::string>& label_names,
    const ReeDefinabilityOptions& options) {
  using Rel = typename Ops::Rel;
  std::size_t max_levels =
      options.max_levels > 0 ? options.max_levels : num_nodes * num_nodes;
  ReeDefinabilityResult result;

  // The monoid: distinct relations with one REE derivation each.
  std::unordered_map<Rel, std::size_t, typename Ops::Hash> index;
  std::vector<Rel> elements;
  std::vector<ReePtr> derivations;
  // Generator bookkeeping: right-multiplication by generators alone
  // enumerates the ∘-semigroup (every element is a generator product),
  // making the closure |M|·|gens| instead of |M|².
  std::vector<std::size_t> gens;
  std::vector<bool> is_gen;
  std::vector<std::size_t> applied;

  auto add_element = [&](Rel rel, const ReePtr& derivation) {
    auto [it, inserted] = index.emplace(rel, elements.size());
    if (inserted) {
      elements.push_back(std::move(rel));
      derivations.push_back(derivation);
      applied.push_back(0);
      is_gen.push_back(false);
    }
    return it->second;
  };
  auto add_generator = [&](Rel rel, const ReePtr& derivation) {
    std::size_t i = add_element(std::move(rel), derivation);
    if (!is_gen[i]) {
      is_gen[i] = true;
      gens.push_back(i);
    }
  };

  add_generator(ops.Identity(), ree::Epsilon());
  for (LabelId a = 0; a < num_labels; a++) {
    add_generator(ops.FromLabel(a), ree::Letter(label_names[a]));
  }

  std::uint32_t ticks = 0;
  bool expired = false;
  auto close = [&]() -> bool {
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t i = 0; i < elements.size(); i++) {
        while (applied[i] < gens.size()) {
          if (GQD_CANCEL_STRIDE_CHECK(options.cancel, ticks)) {
            expired = true;
            return false;
          }
          std::size_t g = gens[applied[i]++];
          std::size_t before = elements.size();
          add_element(ops.Compose(elements[i], elements[g]),
                      ree::Concat({derivations[i], derivations[g]}));
          if (elements.size() > before) {
            progress = true;
          }
          if (elements.size() > options.max_monoid_size) {
            return false;
          }
        }
      }
    }
    return true;
  };

  if (!close()) {
    if (expired) {
      return options.cancel->Check();
    }
    result.verdict = DefinabilityVerdict::kBudgetExhausted;
    result.monoid_size = elements.size();
    return result;
  }
  for (std::size_t level = 0; level < max_levels; level++) {
    std::size_t before = elements.size();
    for (std::size_t i = 0; i < before; i++) {
      if (GQD_CANCEL_STRIDE_CHECK(options.cancel, ticks)) {
        return options.cancel->Check();
      }
      add_generator(ops.Eq(elements[i]), ree::Eq(derivations[i]));
      add_generator(ops.Neq(elements[i]), ree::Neq(derivations[i]));
      if (elements.size() > options.max_monoid_size) {
        result.verdict = DefinabilityVerdict::kBudgetExhausted;
        result.monoid_size = elements.size();
        return result;
      }
    }
    if (elements.size() == before) {
      break;
    }
    result.levels_used = level + 1;
    if (!close()) {
      if (expired) {
        return options.cancel->Check();
      }
      result.verdict = DefinabilityVerdict::kBudgetExhausted;
      result.monoid_size = elements.size();
      return result;
    }
  }
  result.monoid_size = elements.size();

  // Decision (Lemma 30) + greedy synthesis.
  Rel covered = ops.Empty();
  std::vector<ReePtr> cover;
  for (std::size_t i = 0; i < elements.size(); i++) {
    if (!ops.Subset(elements[i], target)) {
      continue;
    }
    Rel merged = covered;
    ops.UnionInto(&merged, elements[i]);
    if (!ops.Equal(merged, covered)) {
      covered = merged;
      cover.push_back(derivations[i]);
    }
    if (ops.Equal(covered, target)) {
      break;
    }
  }
  if (ops.Equal(covered, target)) {
    result.verdict = DefinabilityVerdict::kDefinable;
    result.defining_expression =
        target_empty ? ree::Neq(ree::Epsilon()) : ree::Union(std::move(cover));
  } else {
    result.verdict = DefinabilityVerdict::kNotDefinable;
  }
  return result;
}

}  // namespace

Result<ReeDefinabilityResult> CheckReeDefinability(
    const DataGraph& graph, const BinaryRelation& relation,
    const ReeDefinabilityOptions& options) {
  if (relation.num_nodes() != graph.NumNodes()) {
    return Status::InvalidArgument(
        "relation is over a different node count than the graph");
  }
  const std::vector<std::string>& label_names = graph.labels().names();
  if (graph.NumNodes() <= 8 && graph.NumNodes() > 0) {
    SmallRelationSpace space(graph);
    SmallRelationOps ops{&space};
    return RunLevelAlgorithm(ops, space.Pack(relation), relation.Empty(),
                             graph.NumNodes(), graph.NumLabels(), label_names,
                             options);
  }
  BigRelationOps ops{&graph};
  return RunLevelAlgorithm(ops, relation, relation.Empty(),
                           graph.NumNodes(), graph.NumLabels(), label_names,
                           options);
}

}  // namespace gqd
