// RDPQ_=-definability (Section 4 of the paper): PSPACE algorithm via the
// level hierarchy of Definition 27.
//
// Key algebra (Lemma 29 + distributivity): ∘ distributes over +, and the
// =/≠ restrictions distribute over + as well:
//   (S1 + S2) ∘ T = S1∘T + S2∘T,   (S1 + S2)= = S1= + S2=.
// Hence every level L_i is exactly the set of unions of elements of a
// finite ∘-monoid M_i, where
//   M_0 = ∘-closure({S_ε} ∪ {S_a : a ∈ Σ})
//   M_i = ∘-closure(M_{i-1} ∪ {m=, m≠ : m ∈ M_{i-1}})
// and the hierarchy stabilizes within n² rounds (Lemma 28). By Lemma 30,
// S is RDPQ_=-definable iff S ∈ L_∞, i.e. iff S equals the union of all
// monoid elements contained in S.
//
// Every monoid element carries its REE derivation, so a defining REE is
// synthesized directly from a greedy cover of S (and round-trip-verified by
// tests through EvaluateRee).

#ifndef GQD_DEFINABILITY_REE_DEFINABILITY_H_
#define GQD_DEFINABILITY_REE_DEFINABILITY_H_

#include <optional>
#include <vector>

#include "common/budget.h"
#include "common/cancel.h"
#include "common/status.h"
#include "definability/verdict.h"
#include "graph/data_graph.h"
#include "graph/relation.h"
#include "graph/sparse_relation.h"
#include "ree/ast.h"

namespace gqd {

/// Which relation machinery the level closure runs on. All engines
/// enumerate the monoid in the same order and compute the same relations,
/// so verdicts, levels_used, monoid_size and the synthesized expression
/// are identical — the reference engine exists as a differential-testing
/// oracle for the faster paths (see tests/test_definability_diff).
enum class ReeEngine {
  /// kKernel plus the query-plan analyzer's diagonal specialization: when
  /// every value class is a single node (ρ injective), S= degenerates to
  /// row_u ∧ {u} and S≠ to clearing bit u — no class masks touched. Falls
  /// back to kKernel behavior otherwise. The default.
  kPlanned,
  /// Packed 64-bit relations when n ≤ 8, else word-parallel value-class
  /// restrictions (ValueClassMasks) over bitset rows.
  kKernel,
  /// Generic BinaryRelation ops with per-bit =/≠ restriction loops — the
  /// shape of the original implementation, kept as an oracle.
  kReference,
};

struct ReeDefinabilityOptions {
  /// Maximum number of distinct relations to materialize in the monoid
  /// (0 = unlimited). A secondary cap; max_monoid_bytes is the primary
  /// guard because blocked-relation elements vary in size by orders of
  /// magnitude, so a count bounds memory only for dense backends.
  std::size_t max_monoid_size = 200'000;
  /// Maximum bytes of monoid storage (0 = unlimited), accounted by each
  /// element's *actual* representation size (BlockedBinaryRelation's
  /// heap footprint for sparse backends, the n²-bit matrix for dense)
  /// through an internal ResourceBudget. Tripping either monoid cap stops
  /// the closure cleanly with verdict kBudgetExhausted and a populated
  /// `partial` report (stage "ree-monoid").
  std::size_t max_monoid_bytes = std::size_t{1} << 30;
  /// Maximum restriction levels; 0 means the paper's bound n².
  std::size_t max_levels = 0;
  /// Relation machinery; kPlanned unless you are cross-checking.
  ReeEngine engine = ReeEngine::kPlanned;
  /// Optional cooperative cancellation: the level closure polls this token
  /// and returns Status::DeadlineExceeded once it expires.
  const CancelToken* cancel = nullptr;
  /// Optional resource governance: monoid insertions are charged here and
  /// the closure polls it. On exhaustion the checker stops cleanly with
  /// verdict kBudgetExhausted and a populated `partial` report.
  const ResourceBudget* budget = nullptr;
};

struct ReeDefinabilityResult {
  DefinabilityVerdict verdict = DefinabilityVerdict::kBudgetExhausted;
  /// Number of restriction levels applied before the monoid stabilized.
  std::size_t levels_used = 0;
  /// Final monoid size (the E4 bench's cost measure).
  std::size_t monoid_size = 0;
  /// A defining REE (populated iff verdict == kDefinable and S non-empty).
  ReePtr defining_expression;
  /// Set iff a budget trip stopped the closure: how far it got. Stage
  /// "ree-closure" marks an options.budget trip, "ree-monoid" a
  /// max_monoid_bytes / max_monoid_size trip.
  std::optional<PartialProgress> partial;
};

/// Decides whether `relation` is definable by an RDPQ_= on `graph`.
Result<ReeDefinabilityResult> CheckReeDefinability(
    const DataGraph& graph, const BinaryRelation& relation,
    const ReeDefinabilityOptions& options = {});

/// Same decision on a density-adaptive relation. A dense backend delegates
/// to the overload above; sparse/blocked backends run the level closure on
/// blocked (array/bitmap container) relations, whose compose streams
/// per-source frontiers instead of materializing n² intermediates. The
/// monoid interner is semantic, so verdict, levels_used, monoid_size and
/// the synthesized expression are identical across backends (the `engine`
/// option only matters on the dense path).
Result<ReeDefinabilityResult> CheckReeDefinability(
    const DataGraph& graph, const AdaptiveRelation& relation,
    const ReeDefinabilityOptions& options = {});

}  // namespace gqd

#endif  // GQD_DEFINABILITY_REE_DEFINABILITY_H_
