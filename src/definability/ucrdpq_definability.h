// UCRDPQ-definability (Section 5, Theorem 35): coNP algorithm via
// data-graph homomorphisms.
//
// Lemma 34: a relation S (of any arity) is UCRDPQ-definable iff every
// data-graph homomorphism h maps every tuple of S back into S. The checker
// searches for a *violating* homomorphism: for each t ∈ S and each
// candidate image t' ∉ S it pins h(t) = t' and runs the CSP engine
// (homomorphism/); a solution is a certificate of non-definability.

#ifndef GQD_DEFINABILITY_UCRDPQ_DEFINABILITY_H_
#define GQD_DEFINABILITY_UCRDPQ_DEFINABILITY_H_

#include <optional>

#include "common/budget.h"
#include "common/status.h"
#include "definability/verdict.h"
#include "graph/data_graph.h"
#include "graph/relation.h"
#include "graph/sparse_relation.h"
#include "homomorphism/csp.h"
#include "homomorphism/data_graph_hom.h"

namespace gqd {

struct UcrdpqDefinabilityOptions {
  /// Passed through to the CSP engine for every seeded search.
  CspOptions csp;
};

struct UcrdpqDefinabilityResult {
  DefinabilityVerdict verdict = DefinabilityVerdict::kBudgetExhausted;
  /// When not definable: a homomorphism h and a tuple t ∈ S with h(t) ∉ S.
  std::optional<NodeMapping> violating_homomorphism;
  std::optional<NodeTuple> violated_tuple;
  /// Number of seeded CSP searches attempted (the E5 bench's measure).
  std::size_t seeds_tried = 0;
  CspStats csp_stats;
  /// Set iff a CspOptions::budget trip stopped the search: how far it got
  /// (tuples_explored = CSP nodes, frontier_depth = seeds tried).
  std::optional<PartialProgress> partial;
};

/// Decides whether `relation` is UCRDPQ-definable on `graph` (Lemma 34).
Result<UcrdpqDefinabilityResult> CheckUcrdpqDefinability(
    const DataGraph& graph, const TupleRelation& relation,
    const UcrdpqDefinabilityOptions& options = {});

/// Convenience overload for binary relations.
Result<UcrdpqDefinabilityResult> CheckUcrdpqDefinability(
    const DataGraph& graph, const BinaryRelation& relation,
    const UcrdpqDefinabilityOptions& options = {});

/// Density-adaptive overload: seeds the search from the relation's pair
/// list directly (no dense expansion). Verdicts, seeds_tried and witnesses
/// are identical to the dense overload on the same pair set.
Result<UcrdpqDefinabilityResult> CheckUcrdpqDefinability(
    const DataGraph& graph, const AdaptiveRelation& relation,
    const UcrdpqDefinabilityOptions& options = {});

}  // namespace gqd

#endif  // GQD_DEFINABILITY_UCRDPQ_DEFINABILITY_H_
