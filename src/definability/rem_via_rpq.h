// The paper's alternative route to RDPQ_mem-definability (Section 3,
// opening discussion): reduce to RPQ-definability on the automorphism-
// closure graph G_aut.
//
// G_aut is the disjoint union of G_π over all automorphisms π of the value
// set D_G (δ! copies). To "drop the special treatment of data values",
// every edge (u, a, v) of copy π is relabelled with the *value-annotated*
// letter (π⁻¹ρ(u), a, π⁻¹ρ(v)) — a word over these triples is exactly a
// data path, and the same word read in two copies describes two
// automorphic data paths. Lifting S to every copy, one gets
//
//   S is RDPQ_mem-definable on G  ⟺  S_lifted is RPQ-definable on G_aut,
//
// because an RPQ word witness on G_aut is precisely a data path whose
// *entire automorphism class* connects only S-pairs — the k-REM witness
// condition with k = δ (Lemmas 15/18/23).
//
// The construction costs δ! copies and is therefore usable only for tiny δ
// — which is exactly why the paper develops the assignment-graph algorithm
// instead. Here it serves as an independent cross-check of
// CheckRemDefinability (see test_rem_via_rpq.cc) and as the E10 ablation.

#ifndef GQD_DEFINABILITY_REM_VIA_RPQ_H_
#define GQD_DEFINABILITY_REM_VIA_RPQ_H_

#include "common/status.h"
#include "definability/krem_definability.h"
#include "definability/rpq_definability.h"
#include "definability/verdict.h"
#include "graph/data_graph.h"
#include "graph/relation.h"

namespace gqd {

/// The automorphism-closure graph plus the lifted relation.
struct AutomorphismClosure {
  /// One component per permutation of D_G; all nodes share a dummy value
  /// (RPQ-definability ignores values); edge labels are the annotated
  /// triples "d_from|a|d_to".
  DataGraph graph;
  /// S lifted into every copy.
  BinaryRelation lifted_relation;
  /// Number of copies (δ!).
  std::size_t num_copies = 0;
};

/// Builds G_aut and the lifted relation. Fails with OutOfRange when
/// δ! · n would be unreasonably large (δ > 5).
Result<AutomorphismClosure> BuildAutomorphismClosure(
    const DataGraph& graph, const BinaryRelation& relation);

struct RemViaRpqResult {
  DefinabilityVerdict verdict = DefinabilityVerdict::kBudgetExhausted;
  std::size_t num_copies = 0;
  std::size_t tuples_explored = 0;
};

/// Decides RDPQ_mem-definability through G_aut + the RPQ baseline checker.
/// Semantically equivalent to CheckRemDefinability (tested against it);
/// exponentially worse in δ, sometimes better in k-driven blow-ups.
Result<RemViaRpqResult> CheckRemDefinabilityViaRpq(
    const DataGraph& graph, const BinaryRelation& relation,
    const KRemDefinabilityOptions& options = {});

}  // namespace gqd

#endif  // GQD_DEFINABILITY_REM_VIA_RPQ_H_
