#include "definability/krem_definability.h"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "analysis/plan/kernel_dispatch.h"
#include "analysis/plan/plan_metrics.h"
#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace gqd {

namespace {

GQD_FAILPOINT_DEFINE(fp_krem_arena_grow, "krem.arena.grow");

// The BFS works on macro tuples ⟨Q_1, ..., Q_n⟩ stored as flat word arrays:
// n consecutive packed state sets of `set_words` words each. Flat storage
// keeps every interned tuple in one contiguous allocation (cache-friendly
// hashing/equality) and lets the interner probe by stored hash + index
// instead of keeping a second copy of the words as a map key.

inline void OrWords(std::uint64_t* dst, const std::uint64_t* src,
                    std::size_t count) {
  for (std::size_t i = 0; i < count; i++) {
    dst[i] |= src[i];
  }
}

std::uint64_t HashTupleWords(const std::uint64_t* words, std::size_t count) {
  std::size_t seed = count;
  for (std::size_t i = 0; i < count; i++) {
    seed = HashCombine(seed,
                       static_cast<std::size_t>(words[i] *
                                                0xff51afd7ed558ccdULL));
  }
  return seed;
}

/// Flat macro-tuple store with an open-addressed interner. Tuple `t`'s
/// words live at [t·tuple_words, (t+1)·tuple_words); the probe table holds
/// only (hash, index) — the words are never duplicated into a key.
class TupleStore {
 public:
  TupleStore(std::size_t tuple_words, const ResourceBudget* budget)
      : tuple_words_(tuple_words), slots_(64, 0), budget_(budget) {
    if (budget_ != nullptr) {
      budget_->ChargeBytes(
          static_cast<std::int64_t>(slots_.size() * sizeof(std::size_t)));
    }
  }

  std::size_t size() const { return count_; }

  /// True once an injected fault (failpoint krem.arena.grow) hit a growth
  /// path; the BFS surfaces it at the next frontier boundary. The store
  /// itself stays consistent — the probe table just stops growing.
  bool fault() const { return fault_; }

  const std::uint64_t* TupleAt(std::size_t index) const {
    return words_.data() + index * tuple_words_;
  }

  /// Returns the index of the tuple equal to `words`, interning a copy
  /// first when absent (*inserted reports which).
  std::size_t Intern(const std::uint64_t* words, std::uint64_t hash,
                     bool* inserted) {
    std::size_t mask = slots_.size() - 1;
    std::size_t pos = static_cast<std::size_t>(hash) & mask;
    while (slots_[pos] != 0) {
      std::size_t index = slots_[pos] - 1;
      if (hashes_[index] == hash &&
          std::memcmp(TupleAt(index), words,
                      tuple_words_ * sizeof(std::uint64_t)) == 0) {
        *inserted = false;
        return index;
      }
      pos = (pos + 1) & mask;
    }
    std::size_t index = count_++;
    words_.insert(words_.end(), words, words + tuple_words_);
    hashes_.push_back(hash);
    slots_[pos] = index + 1;
    if (budget_ != nullptr) {
      budget_->ChargeBytes(static_cast<std::int64_t>(
          (tuple_words_ + 1) * sizeof(std::uint64_t)));
      budget_->ChargeTuples(1);
    }
    if ((count_ + 1) * 4 > slots_.size() * 3) {
      Grow();
    }
    *inserted = true;
    return index;
  }

 private:
  void Grow() {
    if (GQD_FAILPOINT_FIRED(fp_krem_arena_grow)) {
      fault_ = true;
      return;
    }
    std::vector<std::size_t> bigger(slots_.size() * 2, 0);
    if (budget_ != nullptr) {
      budget_->ChargeBytes(static_cast<std::int64_t>(
          (bigger.size() - slots_.size()) * sizeof(std::size_t)));
    }
    std::size_t mask = bigger.size() - 1;
    for (std::size_t index = 0; index < count_; index++) {
      std::size_t pos = static_cast<std::size_t>(hashes_[index]) & mask;
      while (bigger[pos] != 0) {
        pos = (pos + 1) & mask;
      }
      bigger[pos] = index + 1;
    }
    slots_.swap(bigger);
  }

  std::size_t tuple_words_;
  std::vector<std::uint64_t> words_;
  std::vector<std::uint64_t> hashes_;
  std::vector<std::size_t> slots_;  ///< index+1, 0 = empty; pow-2 size
  std::size_t count_ = 0;
  const ResourceBudget* budget_;
  bool fault_ = false;
};

/// One candidate successor tuple of the current head under one block label:
/// the condition (minterm subset), the tuple's hash, and its words' offset
/// into the owning scratch arena.
struct Candidate {
  MintermMask condition;
  std::uint64_t hash;
  std::size_t offset;
};

/// Reusable per-(store set, letter) workspace. One instance per worker
/// slot; nothing inside the per-head loops allocates once these warm up.
struct BlockScratch {
  std::vector<std::uint64_t> parts;    ///< n × patterns × set_words
  std::vector<std::uint64_t> stack;    ///< DFS save buffers, one per depth
  std::vector<std::uint64_t> current;  ///< running union, tuple_words
  std::vector<std::uint8_t> achieved;  ///< patterns achieved by any part
  std::vector<Candidate> candidates;   ///< emitted in canonical order
  std::vector<std::uint64_t> arena;    ///< candidate tuple words
  std::uint8_t included[16];           ///< reference-engine DFS include path
  std::size_t included_count = 0;
  bool expired = false;
  std::uint32_t ticks = 0;
  /// Planned engine only: the word window [begin, end) pattern p's parts
  /// can occupy (from its TransitionPlan), so the subset-DFS save/OR/
  /// restore touches only words that can change.
  std::uint32_t span_begin[16] = {};
  std::uint32_t span_end[16] = {};
  /// Planned engine only: specialized inner-loop executions by class,
  /// accumulated per search and flushed once (RecordPlanKernelHits).
  std::uint64_t class_hits[kNumKernelClasses] = {};
};

/// Successor generation for one (store set, letter) block of one head
/// tuple. Pure function of the head tuple — interning state is never read —
/// so blocks can fan out across workers and merge back deterministically.
class SuccessorGenerator {
 public:
  /// Downgrade chain: planned needs an enabled dispatch table, kernel needs
  /// the assignment graph's packed rows; anything else runs the reference
  /// shape. All three compute identical successor bits.
  static KRemEngine Resolve(KRemEngine requested, const AssignmentGraph& ag,
                            const KernelDispatchTable* table) {
    if (requested == KRemEngine::kPlanned && table != nullptr &&
        table->enabled()) {
      return KRemEngine::kPlanned;
    }
    if (requested != KRemEngine::kReference && ag.has_kernel()) {
      return KRemEngine::kKernel;
    }
    return KRemEngine::kReference;
  }

  SuccessorGenerator(const AssignmentGraph& ag, std::size_t n,
                     KRemEngine engine, const KernelDispatchTable* table,
                     const CancelToken* cancel)
      : ag_(ag),
        table_(table),
        n_(n),
        num_patterns_(ag.num_patterns()),
        set_words_((ag.num_states() + 63) / 64),
        tuple_words_(n * set_words_),
        engine_(Resolve(engine, ag, table)),
        cancel_(cancel) {}

  std::size_t set_words() const { return set_words_; }
  std::size_t tuple_words() const { return tuple_words_; }

  void InitScratch(BlockScratch* s) const {
    s->parts.assign(n_ * num_patterns_ * set_words_, 0);
    s->stack.assign(num_patterns_ * tuple_words_, 0);
    s->current.assign(tuple_words_, 0);
    s->achieved.reserve(num_patterns_);
    s->candidates.reserve(16);
  }

  /// Emits, into `s`, every (condition, successor tuple) of `tuple` under
  /// (store_mask, label), in the canonical subset-DFS order shared by both
  /// engines. Sets s->expired (and stops early) if the token expires.
  void Generate(const std::uint64_t* tuple, std::uint32_t store_mask,
                LabelId label, BlockScratch* s) const {
    s->candidates.clear();
    s->arena.clear();
    s->achieved.clear();
    s->expired = false;
    std::fill(s->parts.begin(), s->parts.end(), 0);
    std::uint32_t achieved_mask;
    switch (engine_) {
      case KRemEngine::kPlanned:
        achieved_mask = FillPartsPlanned(tuple, store_mask, label, s);
        break;
      case KRemEngine::kKernel:
        achieved_mask = FillPartsKernel(tuple, store_mask, label, s);
        break;
      default:
        achieved_mask = FillPartsReference(tuple, store_mask, label, s);
        break;
    }
    if (s->expired || achieved_mask == 0) {
      return;
    }
    for (std::uint32_t p = 0; p < num_patterns_; p++) {
      if (achieved_mask & (1u << p)) {
        s->achieved.push_back(static_cast<std::uint8_t>(p));
        if (engine_ == KRemEngine::kPlanned) {
          const TransitionPlan& plan = table_->PlanFor(store_mask, label, p);
          s->span_begin[p] = plan.tgt_begin_word;
          s->span_end[p] = plan.tgt_end_word;
        }
      }
    }
    std::fill(s->current.begin(), s->current.end(), 0);
    s->included_count = 0;
    EnumerateSubsets(0, 0, s);
  }

 private:
  /// Specialized per-transition kernels: one TransitionPlan per pattern
  /// picks the inner loop, and every loop scans only Q ∧ source-mask over
  /// the plan's source word span. Produces bit-identical parts and achieved
  /// mask to the other engines — p is achieved iff some state of some Q_i
  /// has a pattern-p edge, i.e. iff Q_i intersects the source mask.
  std::uint32_t FillPartsPlanned(const std::uint64_t* tuple,
                                 std::uint32_t store_mask, LabelId label,
                                 BlockScratch* s) const {
    std::uint32_t achieved_mask = 0;
    for (std::uint32_t p = 0; p < num_patterns_; p++) {
      const TransitionPlan& plan = table_->PlanFor(store_mask, label, p);
      if (plan.cls == TransitionKernelClass::kNoOp) {
        continue;
      }
      const std::uint64_t* src_mask = table_->SourceMask(plan);
      bool hit = false;
      for (std::size_t i = 0; i < n_; i++) {
        if (GQD_CANCEL_STRIDE_CHECK(cancel_, s->ticks)) {
          s->expired = true;
          return achieved_mask;
        }
        const std::uint64_t* q = tuple + i * set_words_;
        std::uint64_t* part =
            s->parts.data() + (i * num_patterns_ + p) * set_words_;
        switch (plan.cls) {
          case TransitionKernelClass::kIdentity:
            // The source mask is the transition image: part |= Q ∧ mask.
            for (std::uint32_t w = plan.src_begin_word; w < plan.src_end_word;
                 w++) {
              std::uint64_t live = q[w] & src_mask[w];
              part[w] |= live;
              hit = hit || live != 0;
            }
            break;
          case TransitionKernelClass::kSingleBit: {
            const std::uint32_t* targets = table_->SingleTargets(plan);
            for (std::uint32_t w = plan.src_begin_word; w < plan.src_end_word;
                 w++) {
              std::uint64_t bits = q[w] & src_mask[w];
              hit = hit || bits != 0;
              while (bits != 0) {
                std::size_t state =
                    (static_cast<std::size_t>(w) << 6) +
                    static_cast<std::size_t>(__builtin_ctzll(bits));
                bits &= bits - 1;
                std::uint32_t t = targets[state];
                part[t >> 6] |= std::uint64_t{1} << (t & 63);
              }
            }
            break;
          }
          case TransitionKernelClass::kSparse: {
            const std::uint32_t* offsets = table_->CsrOffsets(plan);
            const std::uint32_t* tgts = table_->CsrTargets();
            for (std::uint32_t w = plan.src_begin_word; w < plan.src_end_word;
                 w++) {
              std::uint64_t bits = q[w] & src_mask[w];
              hit = hit || bits != 0;
              while (bits != 0) {
                std::size_t state =
                    (static_cast<std::size_t>(w) << 6) +
                    static_cast<std::size_t>(__builtin_ctzll(bits));
                bits &= bits - 1;
                for (std::uint32_t at = offsets[state];
                     at < offsets[state + 1]; at++) {
                  std::uint32_t t = tgts[at];
                  part[t >> 6] |= std::uint64_t{1} << (t & 63);
                }
              }
            }
            break;
          }
          default: {  // kDense: packed kernel rows over the target span
            std::size_t span = plan.tgt_end_word - plan.tgt_begin_word;
            for (std::uint32_t w = plan.src_begin_word; w < plan.src_end_word;
                 w++) {
              std::uint64_t bits = q[w] & src_mask[w];
              hit = hit || bits != 0;
              while (bits != 0) {
                AgState state = static_cast<AgState>(
                    (static_cast<std::size_t>(w) << 6) +
                    static_cast<std::size_t>(__builtin_ctzll(bits)));
                bits &= bits - 1;
                OrWords(part + plan.tgt_begin_word,
                        ag_.KernelRow(store_mask, label, p, state) +
                            plan.tgt_begin_word,
                        span);
              }
            }
            break;
          }
        }
      }
      if (hit) {
        achieved_mask |= 1u << p;
        s->class_hits[static_cast<std::size_t>(plan.cls)]++;
      }
    }
    return achieved_mask;
  }

  /// Word-parallel kernel: for each source state of each Q_i, OR the
  /// pre-packed 64-states-at-a-time successor rows into the pattern parts.
  std::uint32_t FillPartsKernel(const std::uint64_t* tuple,
                                std::uint32_t store_mask, LabelId label,
                                BlockScratch* s) const {
    assert(ag_.kernel_row_words() == set_words_);
    std::uint32_t achieved_mask = 0;
    for (std::size_t i = 0; i < n_; i++) {
      const std::uint64_t* q = tuple + i * set_words_;
      std::uint64_t* parts_i = s->parts.data() + i * num_patterns_ * set_words_;
      for (std::size_t w = 0; w < set_words_; w++) {
        std::uint64_t bits = q[w];
        while (bits != 0) {
          AgState state = static_cast<AgState>(
              (w << 6) + static_cast<std::size_t>(__builtin_ctzll(bits)));
          bits &= bits - 1;
          if (GQD_CANCEL_STRIDE_CHECK(cancel_, s->ticks)) {
            s->expired = true;
            return achieved_mask;
          }
          std::uint32_t pats = ag_.AchievedPatternsAt(store_mask, label, state);
          achieved_mask |= pats;
          while (pats != 0) {
            std::uint32_t p =
                static_cast<std::uint32_t>(__builtin_ctz(pats));
            pats &= pats - 1;
            OrWords(parts_i + p * set_words_,
                    ag_.KernelRow(store_mask, label, p, state), set_words_);
          }
        }
      }
    }
    return achieved_mask;
  }

  /// Reference shape: walk the successor lists one edge at a time.
  std::uint32_t FillPartsReference(const std::uint64_t* tuple,
                                   std::uint32_t store_mask, LabelId label,
                                   BlockScratch* s) const {
    std::uint32_t achieved_mask = 0;
    for (std::size_t i = 0; i < n_; i++) {
      const std::uint64_t* q = tuple + i * set_words_;
      std::uint64_t* parts_i = s->parts.data() + i * num_patterns_ * set_words_;
      for (std::size_t w = 0; w < set_words_; w++) {
        std::uint64_t bits = q[w];
        while (bits != 0) {
          AgState state = static_cast<AgState>(
              (w << 6) + static_cast<std::size_t>(__builtin_ctzll(bits)));
          bits &= bits - 1;
          if (GQD_CANCEL_STRIDE_CHECK(cancel_, s->ticks)) {
            s->expired = true;
            return achieved_mask;
          }
          for (const auto& successor :
               ag_.SuccessorsOf(store_mask, label, state)) {
            parts_i[successor.pattern * set_words_ +
                    (successor.state >> 6)] |=
                std::uint64_t{1} << (successor.state & 63);
            achieved_mask |= 1u << successor.pattern;
          }
        }
      }
    }
    return achieved_mask;
  }

  /// Enumerates the non-empty subsets of s->achieved in exclude-first DFS
  /// order — the canonical order both engines share. The kernel engine
  /// maintains the running union incrementally: entering the include branch
  /// costs one OR pass from the parent subset, and the parent's value is
  /// saved to a per-depth buffer and rolled back afterwards (the Gray-code
  /// style walk of the subset lattice; no allocation, no recompute). The
  /// reference engine rebuilds each leaf's union from its included parts.
  void EnumerateSubsets(std::size_t depth, MintermMask condition,
                        BlockScratch* s) const {
    if (s->expired) {
      return;
    }
    if (depth == s->achieved.size()) {
      if (condition != 0) {
        Emit(condition, s);
      }
      return;
    }
    EnumerateSubsets(depth + 1, condition, s);  // exclude achieved[depth]
    std::uint8_t pattern = s->achieved[depth];
    if (engine_ == KRemEngine::kPlanned) {
      // Same incremental union as the kernel branch, but the save/OR/
      // restore is clipped to the word window pattern's parts can occupy
      // (the plan's target span): words outside it never change, so
      // restoring only the window restores the whole union.
      std::uint32_t begin = s->span_begin[pattern];
      std::size_t span = s->span_end[pattern] - begin;
      std::uint64_t* save = s->stack.data() + depth * tuple_words_;
      for (std::size_t i = 0; i < n_; i++) {
        std::memcpy(save + i * set_words_ + begin,
                    s->current.data() + i * set_words_ + begin,
                    span * sizeof(std::uint64_t));
        OrWords(s->current.data() + i * set_words_ + begin,
                s->parts.data() +
                    (i * num_patterns_ + pattern) * set_words_ + begin,
                span);
      }
      EnumerateSubsets(depth + 1,
                       condition | (MintermMask{1} << pattern), s);
      for (std::size_t i = 0; i < n_; i++) {
        std::memcpy(s->current.data() + i * set_words_ + begin,
                    save + i * set_words_ + begin,
                    span * sizeof(std::uint64_t));
      }
    } else if (engine_ == KRemEngine::kKernel) {
      std::uint64_t* save = s->stack.data() + depth * tuple_words_;
      std::memcpy(save, s->current.data(),
                  tuple_words_ * sizeof(std::uint64_t));
      for (std::size_t i = 0; i < n_; i++) {
        OrWords(s->current.data() + i * set_words_,
                s->parts.data() + (i * num_patterns_ + pattern) * set_words_,
                set_words_);
      }
      EnumerateSubsets(depth + 1,
                       condition | (MintermMask{1} << pattern), s);
      std::memcpy(s->current.data(), save,
                  tuple_words_ * sizeof(std::uint64_t));
    } else {
      s->included[s->included_count++] = pattern;
      EnumerateSubsets(depth + 1,
                       condition | (MintermMask{1} << pattern), s);
      s->included_count--;
    }
  }

  void Emit(MintermMask condition, BlockScratch* s) const {
    if (GQD_CANCEL_STRIDE_CHECK(cancel_, s->ticks)) {
      s->expired = true;
      return;
    }
    if (engine_ == KRemEngine::kReference) {
      // From-scratch union of the included pattern parts.
      std::fill(s->current.begin(), s->current.end(), 0);
      for (std::size_t j = 0; j < s->included_count; j++) {
        std::uint8_t pattern = s->included[j];
        for (std::size_t i = 0; i < n_; i++) {
          OrWords(s->current.data() + i * set_words_,
                  s->parts.data() +
                      (i * num_patterns_ + pattern) * set_words_,
                  set_words_);
        }
      }
    }
    std::size_t offset = s->arena.size();
    s->arena.insert(s->arena.end(), s->current.begin(), s->current.end());
    s->candidates.push_back(Candidate{
        condition, HashTupleWords(s->current.data(), tuple_words_), offset});
  }

  const AssignmentGraph& ag_;
  const KernelDispatchTable* table_;
  std::size_t n_;
  std::size_t num_patterns_;
  std::size_t set_words_;
  std::size_t tuple_words_;
  KRemEngine engine_;
  const CancelToken* cancel_;
};

// --- Sparse frontier tuple store -------------------------------------------
//
// At k = 0 a dense macro tuple is n·⌈n/64⌉ words — 125 GB at a million
// nodes, and the projection scratch used for acceptance is just as large.
// The sparse store instead keeps each tuple as a sorted list of packed
// (node index, state) entries: memory proportional to the states actually
// live in the frontier. Interning is semantic (two tuples are equal iff
// their entry *sets* are), the subset DFS runs in the same exclude-first
// canonical order, and acceptance probes the pair map directly — so
// verdicts, witnesses and tuples_explored are bit-identical to the dense
// store on any input both can afford.

/// Packs frontier entry (i, state): sorting these u64s sorts by node index
/// first, then state — exactly the row-major order of the dense bitset.
inline std::uint64_t PackEntry(std::size_t i, AgState state) {
  return (static_cast<std::uint64_t>(i) << 32) | state;
}

/// Flat arena of sorted entry lists with an open-addressed semantic
/// interner — the sparse analogue of TupleStore. Shares the
/// krem.arena.grow failpoint so chaos scenarios cover both stores.
class SparseTupleStore {
 public:
  explicit SparseTupleStore(const ResourceBudget* budget)
      : slots_(64, 0), budget_(budget) {
    if (budget_ != nullptr) {
      budget_->ChargeBytes(
          static_cast<std::int64_t>(slots_.size() * sizeof(std::size_t)));
    }
  }

  std::size_t size() const { return count_; }
  bool fault() const { return fault_; }

  const std::uint64_t* EntriesAt(std::size_t index) const {
    return entries_.data() + offsets_[index];
  }
  std::size_t CountAt(std::size_t index) const {
    return offsets_[index + 1] - offsets_[index];
  }

  /// Returns the index of the tuple equal to `entries`, interning a copy
  /// first when absent (*inserted reports which). Pointers returned by
  /// EntriesAt are invalidated by an inserting call.
  std::size_t Intern(const std::uint64_t* entries, std::size_t count,
                     std::uint64_t hash, bool* inserted) {
    std::size_t mask = slots_.size() - 1;
    std::size_t pos = static_cast<std::size_t>(hash) & mask;
    while (slots_[pos] != 0) {
      std::size_t index = slots_[pos] - 1;
      if (hashes_[index] == hash && CountAt(index) == count &&
          std::memcmp(EntriesAt(index), entries,
                      count * sizeof(std::uint64_t)) == 0) {
        *inserted = false;
        return index;
      }
      pos = (pos + 1) & mask;
    }
    std::size_t index = count_++;
    entries_.insert(entries_.end(), entries, entries + count);
    offsets_.push_back(entries_.size());
    hashes_.push_back(hash);
    slots_[pos] = index + 1;
    if (budget_ != nullptr) {
      budget_->ChargeBytes(
          static_cast<std::int64_t>((count + 2) * sizeof(std::uint64_t)));
      budget_->ChargeTuples(1);
    }
    if ((count_ + 1) * 4 > slots_.size() * 3) {
      Grow();
    }
    *inserted = true;
    return index;
  }

 private:
  void Grow() {
    if (GQD_FAILPOINT_FIRED(fp_krem_arena_grow)) {
      fault_ = true;
      return;
    }
    std::vector<std::size_t> bigger(slots_.size() * 2, 0);
    if (budget_ != nullptr) {
      budget_->ChargeBytes(static_cast<std::int64_t>(
          (bigger.size() - slots_.size()) * sizeof(std::size_t)));
    }
    std::size_t mask = bigger.size() - 1;
    for (std::size_t index = 0; index < count_; index++) {
      std::size_t pos = static_cast<std::size_t>(hashes_[index]) & mask;
      while (bigger[pos] != 0) {
        pos = (pos + 1) & mask;
      }
      bigger[pos] = index + 1;
    }
    slots_.swap(bigger);
  }

  std::vector<std::uint64_t> entries_;
  std::vector<std::size_t> offsets_{0};  ///< tuple t spans [off[t], off[t+1])
  std::vector<std::uint64_t> hashes_;
  std::vector<std::size_t> slots_;  ///< index+1, 0 = empty; pow-2 size
  std::size_t count_ = 0;
  const ResourceBudget* budget_;
  bool fault_ = false;
};

/// One candidate successor of the current head under one block label, its
/// entries stored at [offset, offset+count) of the scratch arena.
struct SparseCandidate {
  MintermMask condition;
  std::uint64_t hash;
  std::size_t offset;
  std::size_t count;
};

/// Reusable workspace for sparse successor generation; nothing inside the
/// per-head loops allocates once the vectors warm up.
struct SparseBlockScratch {
  std::vector<std::vector<std::uint64_t>> parts;  ///< per pattern, sorted
  std::vector<std::uint8_t> achieved;  ///< patterns with non-empty parts
  std::vector<std::uint64_t> merged;   ///< Emit's union buffer
  std::vector<SparseCandidate> candidates;  ///< emitted in canonical order
  std::vector<std::uint64_t> arena;         ///< candidate tuple entries
  std::uint8_t included[16];                ///< DFS include path
  std::size_t included_count = 0;
  bool expired = false;
  std::uint32_t ticks = 0;
};

/// Sparse successor generation for one (store set, letter) block: walk
/// SuccessorsOf for every live entry (the reference shape), bucket by
/// pattern, then enumerate condition subsets in the same exclude-first DFS
/// order as SuccessorGenerator.
class SparseSuccessorGenerator {
 public:
  SparseSuccessorGenerator(const AssignmentGraph& ag,
                           const CancelToken* cancel)
      : ag_(ag), num_patterns_(ag.num_patterns()), cancel_(cancel) {}

  void InitScratch(SparseBlockScratch* s) const {
    s->parts.resize(num_patterns_);
    s->candidates.reserve(16);
  }

  void Generate(const std::uint64_t* entries, std::size_t count,
                std::uint32_t store_mask, LabelId label,
                SparseBlockScratch* s) const {
    s->candidates.clear();
    s->arena.clear();
    s->achieved.clear();
    s->expired = false;
    for (auto& part : s->parts) {
      part.clear();
    }
    for (std::size_t e = 0; e < count; e++) {
      if (GQD_CANCEL_STRIDE_CHECK(cancel_, s->ticks)) {
        s->expired = true;
        return;
      }
      std::size_t i = static_cast<std::size_t>(entries[e] >> 32);
      AgState state = static_cast<AgState>(entries[e]);
      for (const auto& successor :
           ag_.SuccessorsOf(store_mask, label, state)) {
        s->parts[successor.pattern].push_back(
            PackEntry(i, successor.state));
      }
    }
    for (std::uint32_t p = 0; p < num_patterns_; p++) {
      std::vector<std::uint64_t>& part = s->parts[p];
      if (part.empty()) {
        continue;
      }
      std::sort(part.begin(), part.end());
      part.erase(std::unique(part.begin(), part.end()), part.end());
      s->achieved.push_back(static_cast<std::uint8_t>(p));
    }
    if (s->achieved.empty()) {
      return;
    }
    s->included_count = 0;
    EnumerateSubsets(0, 0, s);
  }

 private:
  void EnumerateSubsets(std::size_t depth, MintermMask condition,
                        SparseBlockScratch* s) const {
    if (s->expired) {
      return;
    }
    if (depth == s->achieved.size()) {
      if (condition != 0) {
        Emit(condition, s);
      }
      return;
    }
    EnumerateSubsets(depth + 1, condition, s);  // exclude achieved[depth]
    std::uint8_t pattern = s->achieved[depth];
    s->included[s->included_count++] = pattern;
    EnumerateSubsets(depth + 1, condition | (MintermMask{1} << pattern), s);
    s->included_count--;
  }

  void Emit(MintermMask condition, SparseBlockScratch* s) const {
    if (GQD_CANCEL_STRIDE_CHECK(cancel_, s->ticks)) {
      s->expired = true;
      return;
    }
    // From-scratch union of the included pattern parts: concatenate the
    // sorted lists, re-sort, dedup — the sets match the dense Emit's ORs.
    s->merged.clear();
    for (std::size_t j = 0; j < s->included_count; j++) {
      const std::vector<std::uint64_t>& part = s->parts[s->included[j]];
      s->merged.insert(s->merged.end(), part.begin(), part.end());
    }
    std::sort(s->merged.begin(), s->merged.end());
    s->merged.erase(std::unique(s->merged.begin(), s->merged.end()),
                    s->merged.end());
    std::size_t offset = s->arena.size();
    s->arena.insert(s->arena.end(), s->merged.begin(), s->merged.end());
    s->candidates.push_back(SparseCandidate{
        condition, HashTupleWords(s->merged.data(), s->merged.size()),
        offset, s->merged.size()});
  }

  const AssignmentGraph& ag_;
  std::size_t num_patterns_;
  const CancelToken* cancel_;
};

/// The dense-tuple BFS — the historical implementation, generic over the
/// relation representation: only num_nodes(), Pairs() and Test() are used,
/// so any AdaptiveRelation backend drives it without densification.
template <typename Rel>
Result<KRemDefinabilityResult> CheckKRemDense(
    const DataGraph& graph, const Rel& relation, std::size_t k,
    const KRemDefinabilityOptions& options) {
  KRemDefinabilityResult result;
  std::vector<std::pair<NodeId, NodeId>> pairs = relation.Pairs();
  if (pairs.empty()) {
    // The empty relation is definable (e.g. by a[¬⊤], or by any REM whose
    // language contains no data path of the graph).
    result.verdict = DefinabilityVerdict::kDefinable;
    return result;
  }

  GQD_ASSIGN_OR_RETURN(AssignmentGraph ag,
                       AssignmentGraph::Build(graph, k, options.budget));
  std::size_t n = graph.NumNodes();

  // The query-plan dispatch table (built only when the planned engine is
  // requested; it declines over its memory budget, downgrading to kKernel).
  KernelDispatchTable dispatch;
  if (options.engine == KRemEngine::kPlanned) {
    dispatch = KernelDispatchTable::Build(ag);
  }
  SuccessorGenerator generator(ag, n, options.engine, &dispatch,
                               options.cancel);
  std::size_t set_words = generator.set_words();
  std::size_t tuple_words = generator.tuple_words();

  // BFS bookkeeping: flat tuple storage + interner, parent links, and the
  // incoming block of each tuple for witness reconstruction.
  TupleStore tuples(tuple_words, options.budget);
  std::vector<std::size_t> parent;
  std::vector<BasicRemBlock> incoming;

  // Pair bookkeeping: which pairs of S still need a witness, and the tuple
  // index at which each pair was first accepted.
  constexpr std::size_t kUnsolved = static_cast<std::size_t>(-1);
  std::unordered_map<std::uint64_t, std::size_t> pair_solution;
  for (const auto& [p, q] : pairs) {
    pair_solution[static_cast<std::uint64_t>(p) * n + q] = kUnsolved;
  }
  std::size_t unsolved = pairs.size();

  // Safety and acceptance of one tuple: every (v', σ) ∈ Q_i must have
  // ⟨v_i, v'⟩ ∈ S; a safe tuple accepts ⟨v_p, v_q⟩ iff v_q ∈ nodes(Q_p).
  std::size_t node_words = (n + 63) / 64;
  std::vector<std::uint64_t> projections(n * node_words);
  auto process_tuple = [&](std::size_t index) {
    const std::uint64_t* tuple = tuples.TupleAt(index);
    std::fill(projections.begin(), projections.end(), 0);
    for (std::size_t i = 0; i < n; i++) {
      const std::uint64_t* q = tuple + i * set_words;
      for (std::size_t w = 0; w < set_words; w++) {
        std::uint64_t bits = q[w];
        while (bits != 0) {
          std::size_t s = (w << 6) +
                          static_cast<std::size_t>(__builtin_ctzll(bits));
          bits &= bits - 1;
          NodeId v = ag.NodeOf(static_cast<AgState>(s));
          if (!relation.Test(static_cast<NodeId>(i), v)) {
            return;  // unsafe: this tuple accepts no pair
          }
          projections[i * node_words + (v >> 6)] |= std::uint64_t{1}
                                                    << (v & 63);
        }
      }
    }
    for (const auto& [p, q] : pairs) {
      std::uint64_t key = static_cast<std::uint64_t>(p) * n + q;
      auto it = pair_solution.find(key);
      if (it->second == kUnsolved &&
          (projections[p * node_words + (q >> 6)] >> (q & 63)) & 1u) {
        it->second = index;
        unsolved--;
      }
    }
  };

  // Initial tuple: Q_i = {(v_i, ⊥^k)} — the ε expression (zero blocks).
  {
    GQD_TRACE_SPAN(span, "krem.arena_init");
    GQD_TRACE_SPAN_ATTR(span, "tuple_words", tuple_words);
    std::vector<std::uint64_t> initial(tuple_words, 0);
    for (NodeId v = 0; v < n; v++) {
      AgState s = ag.InitialState(v);
      initial[v * set_words + (s >> 6)] |= std::uint64_t{1} << (s & 63);
    }
    bool inserted = false;
    tuples.Intern(initial.data(),
                  HashTupleWords(initial.data(), tuple_words), &inserted);
    parent.push_back(kUnsolved);
    incoming.push_back(BasicRemBlock{});
    process_tuple(0);
  }

  // Frontier-parallel setup. Successor generation is a pure function of
  // the head tuple, so the parallel path generates a *batch* of already-
  // known frontier heads per round (each worker takes a strided slice of
  // the batch, covering every (store set, letter) block of its heads) and
  // then merges sequentially in (head, block) order — one barrier per
  // batch instead of per head, and results identical to sequential.
  // Every (head-in-batch, block) pair owns a scratch slot, so the steady
  // state allocates nothing; the batch is sized to keep that scratch
  // within a fixed budget.
  std::size_t num_blocks = ag.num_store_masks() * ag.num_labels();
  std::optional<ThreadPool> pool;
  if (options.num_threads > 1) {
    pool.emplace(options.num_threads);
  }
  std::size_t batch_heads = 1;
  if (pool.has_value()) {
    constexpr std::size_t kBatchScratchBudgetBytes = std::size_t{256} << 20;
    std::size_t per_head_bytes =
        num_blocks *
        (n * ag.num_patterns() + ag.num_patterns() * n + 1) * set_words *
        sizeof(std::uint64_t);
    std::size_t memory_cap =
        kBatchScratchBudgetBytes / (per_head_bytes == 0 ? 1 : per_head_bytes);
    batch_heads = std::min<std::size_t>(
        {8 * pool->num_threads(), 128,
         memory_cap == 0 ? std::size_t{1} : memory_cap});
    if (batch_heads == 0) {
      batch_heads = 1;
    }
  }
  std::vector<BlockScratch> scratch(pool.has_value() ? batch_heads * num_blocks
                                                     : 1);
  for (BlockScratch& s : scratch) {
    generator.InitScratch(&s);
  }

  // Flush the planned engine's per-scratch kernel-class hit counters into
  // the global plan metrics exactly once, on every exit path.
  struct KernelHitsFlusher {
    const std::vector<BlockScratch>* scratch;
    ~KernelHitsFlusher() {
      std::uint64_t hits[kNumKernelClasses] = {};
      bool any = false;
      for (const BlockScratch& s : *scratch) {
        for (std::size_t c = 0; c < kNumKernelClasses; c++) {
          hits[c] += s.class_hits[c];
          any = any || hits[c] != 0;
        }
      }
      if (any) {
        RecordPlanKernelHits(hits);
      }
    }
  } hits_flusher{&scratch};

  // Merges one block's candidates into the store, in emission order.
  // Generation never reads interning state, so merge order — blocks in
  // (store_mask, label) order, candidates in DFS order — fully determines
  // the result regardless of thread count.
  auto merge_block = [&](BlockScratch& s, std::uint32_t mask,
                         LabelId label, std::size_t head) {
    for (const Candidate& c : s.candidates) {
      if (tuples.fault()) {
        // Injected growth failure: stop interning so the fixed-size probe
        // table cannot fill up; the BFS loop surfaces the fault.
        return;
      }
      bool inserted = false;
      std::size_t index =
          tuples.Intern(s.arena.data() + c.offset, c.hash, &inserted);
      if (inserted) {
        parent.push_back(head);
        incoming.push_back(BasicRemBlock{mask, label, c.condition});
        process_tuple(index);
        if (unsolved == 0) {
          return;
        }
      }
    }
  };

  // Blocks-of-`head` depth for the partial-progress report: the number of
  // BFS levels (= witness blocks) between the root and `index`.
  auto depth_of = [&](std::size_t index) {
    std::size_t d = 0;
    for (std::size_t at = index; at != 0; at = parent[at]) {
      d++;
    }
    return d;
  };
  // kBudgetExhausted with the structured partial-progress report — the
  // ResourceBudget trip path, as opposed to the legacy max_tuples cap.
  auto exhausted_result = [&](std::size_t at) {
    result.verdict = DefinabilityVerdict::kBudgetExhausted;
    result.tuples_explored = tuples.size();
    result.partial =
        PartialProgress{tuples.size(), depth_of(at),
                        options.budget->bytes_peak(), "krem-bfs"};
    return result;
  };
  auto injected_fault = [] {
    return Status::ResourceExhausted(
        "injected tuple-store growth failure (failpoint krem.arena.grow)");
  };

  // Whole-search span plus one child span per BFS generation (= frontier
  // level). Generation boundaries are tracked by head index: when `head`
  // crosses the store size snapshotted at the previous boundary, every
  // tuple of the previous frontier has been expanded and merged, so the
  // store size at that instant is the next boundary. Declared after any
  // early-return state so the generation span closes before the search
  // span on every exit path.
  std::optional<Span> bfs_span(std::in_place, "krem.bfs");
  std::size_t bfs_generation = 0;
  std::size_t generation_end = tuples.size();
  std::optional<Span> gen_span;
  auto advance_generation_span = [&](std::size_t at_head) {
    if (Tracer::Current() == nullptr) {
      return;
    }
    if (gen_span.has_value() && at_head < generation_end) {
      return;
    }
    if (gen_span.has_value()) {
      gen_span->AddAttr("tuples", tuples.size());
      gen_span.reset();
      bfs_generation++;
      generation_end = tuples.size();
    }
    gen_span.emplace("krem.bfs_generation");
    gen_span->AddAttr("generation", bfs_generation);
  };

  std::size_t head = 0;
  while (head < tuples.size() && unsolved > 0) {
    if (tuples.fault()) {
      return injected_fault();
    }
    if (options.budget != nullptr && options.budget->Exhausted()) {
      return exhausted_result(head);
    }
    if (tuples.size() > options.max_tuples) {
      result.verdict = DefinabilityVerdict::kBudgetExhausted;
      result.tuples_explored = tuples.size();
      return result;
    }
    if (pool.has_value()) {
      // Generate every block of up to batch_heads known heads in one
      // parallel round. The store is read-only until all workers finish
      // (interning happens only in the merge below), so TupleAt pointers
      // stay valid throughout the round.
      std::size_t batch = std::min(batch_heads, tuples.size() - head);
      std::size_t num_workers = std::min(pool->num_threads(), batch);
      std::mutex done_mutex;
      std::condition_variable done_cv;
      std::size_t remaining = num_workers;
      advance_generation_span(head);
      // Pool workers do not inherit this thread's tracer; each task
      // re-installs it so generation work shows up one track per worker.
      Tracer* tracer = Tracer::Current();
      {
        GQD_TRACE_SPAN(batch_span, "krem.generate_batch");
        GQD_TRACE_SPAN_ATTR(batch_span, "heads", batch);
        GQD_TRACE_SPAN_ATTR(batch_span, "workers", num_workers);
        for (std::size_t w = 0; w < num_workers; w++) {
          pool->Submit([&generator, &scratch, &tuples, &done_mutex, &done_cv,
                        &remaining, &ag, head, batch, num_workers, num_blocks,
                        tracer, w] {
            Tracer::Scope scope(tracer);
            GQD_TRACE_SPAN(worker_span, "krem.worker_generate");
            GQD_TRACE_SPAN_ATTR(worker_span, "worker", w);
            for (std::size_t b = w; b < batch; b += num_workers) {
              const std::uint64_t* words = tuples.TupleAt(head + b);
              for (std::size_t t = 0; t < num_blocks; t++) {
                generator.Generate(
                    words, static_cast<std::uint32_t>(t / ag.num_labels()),
                    static_cast<LabelId>(t % ag.num_labels()),
                    &scratch[b * num_blocks + t]);
              }
            }
            // Notify while holding the lock: the waiter owns these locals
            // and destroys them the moment it observes remaining == 0.
            std::lock_guard<std::mutex> lock(done_mutex);
            remaining--;
            done_cv.notify_one();
          });
        }
        {
          std::unique_lock<std::mutex> lock(done_mutex);
          done_cv.wait(lock, [&remaining] { return remaining == 0; });
        }
      }
      if (options.cancel != nullptr && options.cancel->Expired()) {
        return options.cancel->Check();
      }
      for (std::size_t b = 0; b < batch && unsolved > 0; b++, head++) {
        advance_generation_span(head);
        if (tuples.fault()) {
          return injected_fault();
        }
        if (options.budget != nullptr && options.budget->Exhausted()) {
          return exhausted_result(head);
        }
        if (tuples.size() > options.max_tuples) {
          result.verdict = DefinabilityVerdict::kBudgetExhausted;
          result.tuples_explored = tuples.size();
          return result;
        }
        GQD_TRACE_SPAN(merge_span, "krem.merge");
        GQD_TRACE_SPAN_ATTR(merge_span, "head", head);
        for (std::size_t t = 0; t < num_blocks && unsolved > 0; t++) {
          merge_block(scratch[b * num_blocks + t],
                      static_cast<std::uint32_t>(t / ag.num_labels()),
                      static_cast<LabelId>(t % ag.num_labels()), head);
        }
      }
    } else {
      advance_generation_span(head);
      for (std::uint32_t mask = 0;
           mask < ag.num_store_masks() && unsolved > 0; mask++) {
        for (LabelId label = 0; label < ag.num_labels() && unsolved > 0;
             label++) {
          if (options.cancel != nullptr && options.cancel->Expired()) {
            return options.cancel->Check();
          }
          generator.Generate(tuples.TupleAt(head), mask, label, &scratch[0]);
          if (scratch[0].expired) {
            return options.cancel->Check();
          }
          merge_block(scratch[0], mask, label, head);
        }
      }
      head++;
    }
  }

  if (gen_span.has_value()) {
    gen_span->AddAttr("tuples", tuples.size());
    gen_span.reset();
  }
  bfs_span->AddAttr("tuples_explored", tuples.size());
  bfs_span->AddAttr("frontier_depth", bfs_generation);
  if (options.budget != nullptr) {
    bfs_span->AddAttr("bytes_peak", options.budget->bytes_peak());
  }
  bfs_span.reset();

  if (tuples.fault()) {
    return injected_fault();
  }
  result.tuples_explored = tuples.size();
  if (unsolved > 0) {
    result.verdict = DefinabilityVerdict::kNotDefinable;
    return result;
  }

  // Reconstruct one witness per pair by walking parent links.
  result.verdict = DefinabilityVerdict::kDefinable;
  for (const auto& [p, q] : pairs) {
    std::size_t index =
        pair_solution[static_cast<std::uint64_t>(p) * n + q];
    KRemWitness witness;
    witness.from = p;
    witness.to = q;
    for (std::size_t at = index; at != 0; at = parent[at]) {
      witness.blocks.push_back(incoming[at]);
    }
    std::reverse(witness.blocks.begin(), witness.blocks.end());
    result.witnesses.push_back(std::move(witness));
  }
  return result;
}

/// The frontier-streaming BFS over the sparse tuple store: same canonical
/// exploration order and interning semantics as CheckKRemDense, but no
/// allocation is ever proportional to n² — tuples are sorted entry lists
/// and acceptance probes the pair map entry by entry instead of building
/// an n²-bit projection scratch. Sequential by design (the per-block work
/// is already proportional to the live frontier); `engine` and
/// `num_threads` are ignored.
template <typename Rel>
Result<KRemDefinabilityResult> CheckKRemSparseFrontier(
    const DataGraph& graph, const Rel& relation, std::size_t k,
    const KRemDefinabilityOptions& options) {
  KRemDefinabilityResult result;
  std::vector<std::pair<NodeId, NodeId>> pairs = relation.Pairs();
  if (pairs.empty()) {
    result.verdict = DefinabilityVerdict::kDefinable;
    return result;
  }

  GQD_ASSIGN_OR_RETURN(AssignmentGraph ag,
                       AssignmentGraph::Build(graph, k, options.budget));
  std::size_t n = graph.NumNodes();
  SparseSuccessorGenerator generator(ag, options.cancel);

  SparseTupleStore tuples(options.budget);
  std::vector<std::size_t> parent;
  std::vector<BasicRemBlock> incoming;

  constexpr std::size_t kUnsolved = static_cast<std::size_t>(-1);
  std::unordered_map<std::uint64_t, std::size_t> pair_solution;
  for (const auto& [p, q] : pairs) {
    pair_solution[static_cast<std::uint64_t>(p) * n + q] = kUnsolved;
  }
  std::size_t unsolved = pairs.size();

  // Safety and acceptance in one streaming pass over the entry list: every
  // (v', σ) ∈ Q_i needs ⟨v_i, v'⟩ ∈ S, and a safe tuple then marks each
  // still-unsolved ⟨v_i, v'⟩ it contains directly in the pair map.
  auto process_tuple = [&](std::size_t index) {
    const std::uint64_t* entries = tuples.EntriesAt(index);
    std::size_t count = tuples.CountAt(index);
    for (std::size_t e = 0; e < count; e++) {
      NodeId i = static_cast<NodeId>(entries[e] >> 32);
      NodeId v = ag.NodeOf(static_cast<AgState>(entries[e]));
      if (!relation.Test(i, v)) {
        return;  // unsafe: this tuple accepts no pair
      }
    }
    for (std::size_t e = 0; e < count && unsolved > 0; e++) {
      NodeId i = static_cast<NodeId>(entries[e] >> 32);
      NodeId v = ag.NodeOf(static_cast<AgState>(entries[e]));
      auto it = pair_solution.find(static_cast<std::uint64_t>(i) * n + v);
      if (it != pair_solution.end() && it->second == kUnsolved) {
        it->second = index;
        unsolved--;
      }
    }
  };

  // Initial tuple: Q_i = {(v_i, ⊥^k)}. Node indices increase, so the entry
  // list is born sorted.
  {
    GQD_TRACE_SPAN(span, "krem.arena_init");
    GQD_TRACE_SPAN_ATTR(span, "entries", n);
    std::vector<std::uint64_t> initial;
    initial.reserve(n);
    for (NodeId v = 0; v < n; v++) {
      initial.push_back(PackEntry(v, ag.InitialState(v)));
    }
    bool inserted = false;
    tuples.Intern(initial.data(), initial.size(),
                  HashTupleWords(initial.data(), initial.size()), &inserted);
    parent.push_back(kUnsolved);
    incoming.push_back(BasicRemBlock{});
    process_tuple(0);
  }

  SparseBlockScratch scratch;
  generator.InitScratch(&scratch);

  auto merge_block = [&](std::uint32_t mask, LabelId label,
                         std::size_t head) {
    for (const SparseCandidate& c : scratch.candidates) {
      if (tuples.fault()) {
        return;
      }
      bool inserted = false;
      std::size_t index = tuples.Intern(scratch.arena.data() + c.offset,
                                        c.count, c.hash, &inserted);
      if (inserted) {
        parent.push_back(head);
        incoming.push_back(BasicRemBlock{mask, label, c.condition});
        process_tuple(index);
        if (unsolved == 0) {
          return;
        }
      }
    }
  };

  auto depth_of = [&](std::size_t index) {
    std::size_t d = 0;
    for (std::size_t at = index; at != 0; at = parent[at]) {
      d++;
    }
    return d;
  };
  auto exhausted_result = [&](std::size_t at) {
    result.verdict = DefinabilityVerdict::kBudgetExhausted;
    result.tuples_explored = tuples.size();
    result.partial =
        PartialProgress{tuples.size(), depth_of(at),
                        options.budget->bytes_peak(), "krem-bfs"};
    return result;
  };
  auto injected_fault = [] {
    return Status::ResourceExhausted(
        "injected tuple-store growth failure (failpoint krem.arena.grow)");
  };

  std::optional<Span> bfs_span(std::in_place, "krem.bfs");
  std::size_t bfs_generation = 0;
  std::size_t generation_end = tuples.size();
  std::optional<Span> gen_span;
  auto advance_generation_span = [&](std::size_t at_head) {
    if (Tracer::Current() == nullptr) {
      return;
    }
    if (gen_span.has_value() && at_head < generation_end) {
      return;
    }
    if (gen_span.has_value()) {
      gen_span->AddAttr("tuples", tuples.size());
      gen_span.reset();
      bfs_generation++;
      generation_end = tuples.size();
    }
    gen_span.emplace("krem.bfs_generation");
    gen_span->AddAttr("generation", bfs_generation);
  };

  std::size_t head = 0;
  while (head < tuples.size() && unsolved > 0) {
    if (tuples.fault()) {
      return injected_fault();
    }
    if (options.budget != nullptr && options.budget->Exhausted()) {
      return exhausted_result(head);
    }
    if (tuples.size() > options.max_tuples) {
      result.verdict = DefinabilityVerdict::kBudgetExhausted;
      result.tuples_explored = tuples.size();
      return result;
    }
    advance_generation_span(head);
    for (std::uint32_t mask = 0;
         mask < ag.num_store_masks() && unsolved > 0; mask++) {
      for (LabelId label = 0; label < ag.num_labels() && unsolved > 0;
           label++) {
        if (options.cancel != nullptr && options.cancel->Expired()) {
          return options.cancel->Check();
        }
        // Generate reads the head's entries to completion before the merge
        // interns anything, so arena growth cannot invalidate them.
        generator.Generate(tuples.EntriesAt(head), tuples.CountAt(head),
                           mask, label, &scratch);
        if (scratch.expired) {
          return options.cancel->Check();
        }
        merge_block(mask, label, head);
      }
    }
    head++;
  }

  if (gen_span.has_value()) {
    gen_span->AddAttr("tuples", tuples.size());
    gen_span.reset();
  }
  bfs_span->AddAttr("tuples_explored", tuples.size());
  bfs_span->AddAttr("frontier_depth", bfs_generation);
  if (options.budget != nullptr) {
    bfs_span->AddAttr("bytes_peak", options.budget->bytes_peak());
  }
  bfs_span.reset();

  if (tuples.fault()) {
    return injected_fault();
  }
  result.tuples_explored = tuples.size();
  if (unsolved > 0) {
    result.verdict = DefinabilityVerdict::kNotDefinable;
    return result;
  }

  result.verdict = DefinabilityVerdict::kDefinable;
  for (const auto& [p, q] : pairs) {
    std::size_t index =
        pair_solution[static_cast<std::uint64_t>(p) * n + q];
    KRemWitness witness;
    witness.from = p;
    witness.to = q;
    for (std::size_t at = index; at != 0; at = parent[at]) {
      witness.blocks.push_back(incoming[at]);
    }
    std::reverse(witness.blocks.begin(), witness.blocks.end());
    result.witnesses.push_back(std::move(witness));
  }
  return result;
}

/// Footprint of one dense macro tuple (saturating): n·⌈n·(δ+1)^k/64⌉ words.
std::size_t DenseTupleFootprintBytes(std::size_t n, std::size_t num_values,
                                     std::size_t k) {
  constexpr std::uint64_t kSat = ~std::uint64_t{0};
  auto mul = [](std::uint64_t a, std::uint64_t b) -> std::uint64_t {
    return (b != 0 && a > kSat / b) ? kSat : a * b;
  };
  std::uint64_t codes = 1;
  for (std::size_t i = 0; i < k; i++) {
    codes = mul(codes, static_cast<std::uint64_t>(num_values) + 1);
  }
  std::uint64_t states = mul(n, codes);
  std::uint64_t set_words = states == kSat ? kSat : (states + 63) / 64;
  return static_cast<std::size_t>(
      mul(mul(n, set_words), sizeof(std::uint64_t)));
}

template <typename Rel>
Result<KRemDefinabilityResult> CheckKRemDispatch(
    const DataGraph& graph, const Rel& relation, std::size_t k,
    const KRemDefinabilityOptions& options) {
  if (relation.num_nodes() != graph.NumNodes()) {
    return Status::InvalidArgument(
        "relation is over a different node count than the graph");
  }
  KRemTupleStore store = options.tuple_store;
  if (store == KRemTupleStore::kAuto) {
    store = DenseTupleFootprintBytes(graph.NumNodes(), graph.NumDataValues(),
                                     k) <= kDenseTupleBytesCap
                ? KRemTupleStore::kDense
                : KRemTupleStore::kSparseFrontier;
  }
  if (store == KRemTupleStore::kDense) {
    return CheckKRemDense(graph, relation, k, options);
  }
  return CheckKRemSparseFrontier(graph, relation, k, options);
}

}  // namespace

Result<KRemDefinabilityResult> CheckKRemDefinability(
    const DataGraph& graph, const BinaryRelation& relation, std::size_t k,
    const KRemDefinabilityOptions& options) {
  return CheckKRemDispatch(graph, relation, k, options);
}

Result<KRemDefinabilityResult> CheckKRemDefinability(
    const DataGraph& graph, const AdaptiveRelation& relation, std::size_t k,
    const KRemDefinabilityOptions& options) {
  return CheckKRemDispatch(graph, relation, k, options);
}

Result<KRemDefinabilityResult> CheckRemDefinability(
    const DataGraph& graph, const BinaryRelation& relation,
    const KRemDefinabilityOptions& options) {
  return CheckKRemDefinability(graph, relation, graph.NumDataValues(),
                               options);
}

Result<KRemDefinabilityResult> CheckRemDefinability(
    const DataGraph& graph, const AdaptiveRelation& relation,
    const KRemDefinabilityOptions& options) {
  return CheckKRemDefinability(graph, relation, graph.NumDataValues(),
                               options);
}

RemPtr BasicRemFromBlocks(const std::vector<BasicRemBlock>& blocks,
                          std::size_t k, const StringInterner& labels) {
  if (blocks.empty()) {
    return rem::Epsilon();
  }
  MintermMask full = (NumMinterms(k) == 64)
                         ? ~MintermMask{0}
                         : ((MintermMask{1} << NumMinterms(k)) - 1);
  std::vector<RemPtr> parts;
  for (const BasicRemBlock& block : blocks) {
    RemPtr step = rem::Letter(labels.NameOf(block.label));
    if ((block.condition & full) != full) {
      step = rem::Test(std::move(step),
                       ConditionFromMinterms(block.condition, k));
    }
    if (block.store_mask != 0) {
      std::vector<std::size_t> registers;
      for (std::size_t r = 0; r < k; r++) {
        if (block.store_mask & (1u << r)) {
          registers.push_back(r);
        }
      }
      step = rem::Bind(std::move(registers), std::move(step));
    }
    parts.push_back(std::move(step));
  }
  return rem::Concat(std::move(parts));
}

}  // namespace gqd
