#include "definability/krem_definability.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace gqd {

namespace {

/// A macro tuple ⟨Q_1, ..., Q_n⟩ packed as one flat word vector for
/// hashing/equality (n consecutive bitsets over assignment-graph states).
struct MacroTuple {
  std::vector<DynamicBitset> sets;

  std::vector<std::uint64_t> Key() const {
    std::vector<std::uint64_t> key;
    for (const DynamicBitset& s : sets) {
      key.insert(key.end(), s.words().begin(), s.words().end());
    }
    return key;
  }
};

struct KeyHash {
  std::size_t operator()(const std::vector<std::uint64_t>& key) const {
    std::size_t seed = key.size();
    for (std::uint64_t w : key) {
      seed = HashCombine(seed,
                         static_cast<std::size_t>(w * 0xff51afd7ed558ccdULL));
    }
    return seed;
  }
};

}  // namespace

Result<KRemDefinabilityResult> CheckKRemDefinability(
    const DataGraph& graph, const BinaryRelation& relation, std::size_t k,
    const KRemDefinabilityOptions& options) {
  if (relation.num_nodes() != graph.NumNodes()) {
    return Status::InvalidArgument(
        "relation is over a different node count than the graph");
  }
  KRemDefinabilityResult result;
  std::vector<std::pair<NodeId, NodeId>> pairs = relation.Pairs();
  if (pairs.empty()) {
    // The empty relation is definable (e.g. by a[¬⊤], or by any REM whose
    // language contains no data path of the graph).
    result.verdict = DefinabilityVerdict::kDefinable;
    return result;
  }

  GQD_ASSIGN_OR_RETURN(AssignmentGraph ag, AssignmentGraph::Build(graph, k));
  std::size_t n = graph.NumNodes();
  std::size_t num_states = ag.num_states();
  std::size_t num_patterns = ag.num_patterns();

  // BFS bookkeeping: tuple storage, parent links, and the incoming block of
  // each tuple for witness reconstruction.
  std::vector<MacroTuple> tuples;
  std::vector<std::size_t> parent;
  std::vector<BasicRemBlock> incoming;
  std::unordered_map<std::vector<std::uint64_t>, std::size_t, KeyHash> seen;

  auto intern = [&](MacroTuple tuple, std::size_t parent_index,
                    BasicRemBlock block) -> std::size_t {
    auto key = tuple.Key();
    auto it = seen.find(key);
    if (it != seen.end()) {
      return it->second;
    }
    std::size_t index = tuples.size();
    seen.emplace(std::move(key), index);
    tuples.push_back(std::move(tuple));
    parent.push_back(parent_index);
    incoming.push_back(block);
    return index;
  };

  // Pair bookkeeping: which pairs of S still need a witness, and the tuple
  // index at which each pair was first accepted.
  constexpr std::size_t kUnsolved = static_cast<std::size_t>(-1);
  std::unordered_map<std::uint64_t, std::size_t> pair_solution;
  for (const auto& [p, q] : pairs) {
    pair_solution[static_cast<std::uint64_t>(p) * n + q] = kUnsolved;
  }
  std::size_t unsolved = pairs.size();

  // Safety and acceptance of one tuple.
  auto process_tuple = [&](std::size_t index) {
    const MacroTuple& tuple = tuples[index];
    // Project each Q_i to its node set and check safety:
    // every (v', σ) ∈ Q_i must have ⟨v_i, v'⟩ ∈ S.
    std::vector<DynamicBitset> projections(n, DynamicBitset(n));
    for (std::size_t i = 0; i < n; i++) {
      const DynamicBitset& q_i = tuple.sets[i];
      for (std::size_t s = q_i.FindNext(0); s < num_states;
           s = q_i.FindNext(s + 1)) {
        NodeId v = ag.NodeOf(static_cast<AgState>(s));
        if (!relation.Test(static_cast<NodeId>(i), v)) {
          return;  // unsafe: this tuple accepts no pair
        }
        projections[i].Set(v);
      }
    }
    // Safe: it accepts ⟨v_p, v_q⟩ iff v_q ∈ nodes(Q_p).
    for (const auto& [p, q] : pairs) {
      std::uint64_t key = static_cast<std::uint64_t>(p) * n + q;
      auto it = pair_solution.find(key);
      if (it->second == kUnsolved && projections[p].Test(q)) {
        it->second = index;
        unsolved--;
      }
    }
  };

  // Initial tuple: Q_i = {(v_i, ⊥^k)} — the ε expression (zero blocks).
  {
    MacroTuple initial;
    initial.sets.assign(n, DynamicBitset(num_states));
    for (NodeId v = 0; v < n; v++) {
      initial.sets[v].Set(ag.InitialState(v));
    }
    intern(std::move(initial), kUnsolved, BasicRemBlock{});
    process_tuple(0);
  }

  std::uint32_t ticks = 0;
  for (std::size_t head = 0; head < tuples.size() && unsolved > 0; head++) {
    if (tuples.size() > options.max_tuples) {
      result.verdict = DefinabilityVerdict::kBudgetExhausted;
      result.tuples_explored = tuples.size();
      return result;
    }
    for (std::uint32_t mask = 0; mask < ag.num_store_masks(); mask++) {
      if (options.cancel != nullptr && options.cancel->Expired()) {
        return options.cancel->Check();
      }
      for (LabelId label = 0; label < ag.num_labels(); label++) {
        // Successors of every Q_i grouped by equality pattern, so each
        // condition evaluates as a union of pre-computed pattern parts.
        std::vector<std::vector<DynamicBitset>> parts(
            n, std::vector<DynamicBitset>(num_patterns,
                                          DynamicBitset(num_states)));
        std::uint32_t achieved = 0;
        {
          // Copy: `tuples` may reallocate inside intern() below.
          const MacroTuple current = tuples[head];
          for (std::size_t i = 0; i < n; i++) {
            const DynamicBitset& q_i = current.sets[i];
            for (std::size_t s = q_i.FindNext(0); s < num_states;
                 s = q_i.FindNext(s + 1)) {
              for (const auto& successor :
                   ag.SuccessorsOf(mask, label, static_cast<AgState>(s))) {
                parts[i][successor.pattern].Set(successor.state);
                achieved |= (1u << successor.pattern);
              }
            }
          }
        }
        if (achieved == 0) {
          continue;  // no successors under (mask, label) at all
        }
        // Enumerate conditions as non-empty subsets of achieved patterns
        // (patterns outside `achieved` cannot change the successor tuple).
        std::vector<std::uint8_t> achieved_patterns;
        for (std::uint32_t p = 0; p < num_patterns; p++) {
          if (achieved & (1u << p)) {
            achieved_patterns.push_back(static_cast<std::uint8_t>(p));
          }
        }
        std::uint32_t subset_count = 1u << achieved_patterns.size();
        for (std::uint32_t subset = 1; subset < subset_count; subset++) {
          if (GQD_CANCEL_STRIDE_CHECK(options.cancel, ticks)) {
            return options.cancel->Check();
          }
          MintermMask condition = 0;
          MacroTuple successor;
          successor.sets.assign(n, DynamicBitset(num_states));
          for (std::size_t bit = 0; bit < achieved_patterns.size(); bit++) {
            if (!(subset & (1u << bit))) {
              continue;
            }
            std::uint8_t pattern = achieved_patterns[bit];
            condition |= (MintermMask{1} << pattern);
            for (std::size_t i = 0; i < n; i++) {
              successor.sets[i] |= parts[i][pattern];
            }
          }
          std::size_t before = tuples.size();
          std::size_t index = intern(
              std::move(successor), head,
              BasicRemBlock{mask, label, condition});
          if (index == before) {
            process_tuple(index);
            if (unsolved == 0) {
              break;
            }
          }
        }
        if (unsolved == 0) {
          break;
        }
      }
      if (unsolved == 0) {
        break;
      }
    }
  }

  result.tuples_explored = tuples.size();
  if (unsolved > 0) {
    result.verdict = DefinabilityVerdict::kNotDefinable;
    return result;
  }

  // Reconstruct one witness per pair by walking parent links.
  result.verdict = DefinabilityVerdict::kDefinable;
  for (const auto& [p, q] : pairs) {
    std::size_t index =
        pair_solution[static_cast<std::uint64_t>(p) * n + q];
    KRemWitness witness;
    witness.from = p;
    witness.to = q;
    for (std::size_t at = index; at != 0; at = parent[at]) {
      witness.blocks.push_back(incoming[at]);
    }
    std::reverse(witness.blocks.begin(), witness.blocks.end());
    result.witnesses.push_back(std::move(witness));
  }
  return result;
}

Result<KRemDefinabilityResult> CheckRemDefinability(
    const DataGraph& graph, const BinaryRelation& relation,
    const KRemDefinabilityOptions& options) {
  return CheckKRemDefinability(graph, relation, graph.NumDataValues(),
                               options);
}

RemPtr BasicRemFromBlocks(const std::vector<BasicRemBlock>& blocks,
                          std::size_t k, const StringInterner& labels) {
  if (blocks.empty()) {
    return rem::Epsilon();
  }
  MintermMask full = (NumMinterms(k) == 64)
                         ? ~MintermMask{0}
                         : ((MintermMask{1} << NumMinterms(k)) - 1);
  std::vector<RemPtr> parts;
  for (const BasicRemBlock& block : blocks) {
    RemPtr step = rem::Letter(labels.NameOf(block.label));
    if ((block.condition & full) != full) {
      step = rem::Test(std::move(step),
                       ConditionFromMinterms(block.condition, k));
    }
    if (block.store_mask != 0) {
      std::vector<std::size_t> registers;
      for (std::size_t r = 0; r < k; r++) {
        if (block.store_mask & (1u << r)) {
          registers.push_back(r);
        }
      }
      step = rem::Bind(std::move(registers), std::move(step));
    }
    parts.push_back(std::move(step));
  }
  return rem::Concat(std::move(parts));
}

}  // namespace gqd
