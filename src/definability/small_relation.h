// A binary relation over n ≤ 8 nodes packed into one 64-bit word
// (row-major: bit u·n + v ⟺ (u, v) ∈ R).
//
// The REE definability checker materializes tens of thousands of relations
// during the level closure; on small graphs — which is where definability
// checking is feasible at all — the packed form makes composition,
// restriction, hashing and dedup almost free. CheckReeDefinability
// dispatches to this representation automatically (see the E9 ablation).

#ifndef GQD_DEFINABILITY_SMALL_RELATION_H_
#define GQD_DEFINABILITY_SMALL_RELATION_H_

#include <cstdint>

#include "graph/data_graph.h"
#include "graph/relation.h"

namespace gqd {

/// Packed relation value; operations live in SmallRelationSpace.
using SmallRelation = std::uint64_t;

/// Context for packed-relation operations over a fixed small graph.
class SmallRelationSpace {
 public:
  /// Requires graph.NumNodes() <= 8.
  explicit SmallRelationSpace(const DataGraph& graph);

  std::size_t n() const { return n_; }

  SmallRelation Empty() const { return 0; }
  SmallRelation Identity() const { return identity_; }
  SmallRelation FromLabel(LabelId label) const { return labels_[label]; }

  SmallRelation Pack(const BinaryRelation& rel) const;
  BinaryRelation Unpack(SmallRelation rel) const;

  /// R1 ∘ R2 via per-row bit gathering.
  SmallRelation Compose(SmallRelation a, SmallRelation b) const {
    SmallRelation out = 0;
    for (std::size_t u = 0; u < n_; u++) {
      std::uint64_t row = (a >> (u * n_)) & row_mask_;
      std::uint64_t reachable = 0;
      while (row != 0) {
        std::size_t z = static_cast<std::size_t>(__builtin_ctzll(row));
        row &= row - 1;
        reachable |= (b >> (z * n_)) & row_mask_;
      }
      out |= reachable << (u * n_);
    }
    return out;
  }

  SmallRelation EqRestrict(SmallRelation rel) const { return rel & eq_mask_; }
  SmallRelation NeqRestrict(SmallRelation rel) const {
    return rel & ~eq_mask_ & full_mask_;
  }

  bool IsSubsetOf(SmallRelation a, SmallRelation b) const {
    return (a & ~b) == 0;
  }

 private:
  std::size_t n_;
  std::uint64_t row_mask_;   // low n bits
  std::uint64_t full_mask_;  // low n² bits
  std::uint64_t eq_mask_;    // pairs with equal data values
  SmallRelation identity_;
  std::vector<SmallRelation> labels_;
};

}  // namespace gqd

#endif  // GQD_DEFINABILITY_SMALL_RELATION_H_
