// Shared three-valued outcome for the definability checkers.

#ifndef GQD_DEFINABILITY_VERDICT_H_
#define GQD_DEFINABILITY_VERDICT_H_

namespace gqd {

/// Outcome of a definability check. The decision problems are complete for
/// EXPSPACE / PSPACE / coNP, so every checker carries an explicit search
/// budget; kBudgetExhausted means "gave up", not "no".
enum class DefinabilityVerdict {
  kDefinable,
  kNotDefinable,
  kBudgetExhausted,
};

/// Human-readable verdict name.
inline const char* DefinabilityVerdictToString(DefinabilityVerdict verdict) {
  switch (verdict) {
    case DefinabilityVerdict::kDefinable:
      return "definable";
    case DefinabilityVerdict::kNotDefinable:
      return "not definable";
    case DefinabilityVerdict::kBudgetExhausted:
      return "budget exhausted";
  }
  return "unknown";
}

}  // namespace gqd

#endif  // GQD_DEFINABILITY_VERDICT_H_
