// RPQ-definability: the data-free baseline (Antonopoulos–Neven–Servais),
// obtained from the k-REM machinery at k = 0.
//
// With zero registers a basic REM block degenerates to a bare letter, so a
// witness is a plain word over Σ and the macro-tuple system is the subset
// construction of the graph viewed as an automaton — exactly the PSPACE
// algorithm of [3] that the paper cites and generalizes. This wrapper also
// powers the Theorem-32 cross-check (RDPQ_= definability on a
// constant-data-value graph coincides with RPQ-definability).
//
// One subtlety the wrapper owns: REMs define the empty relation on every
// graph (e.g. ε[¬⊤] has empty language), but classical regexes cannot
// denote ∅ — every regex in the ε|a|+|·|* grammar has a non-empty language.
// So ∅ is RPQ-definable iff some word w over Σ connects no pair of nodes
// (R_w = ∅), decided here by a subset walk from the full node set.

#ifndef GQD_DEFINABILITY_RPQ_DEFINABILITY_H_
#define GQD_DEFINABILITY_RPQ_DEFINABILITY_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "definability/krem_definability.h"
#include "definability/verdict.h"
#include "graph/data_graph.h"
#include "graph/relation.h"
#include "graph/sparse_relation.h"
#include "regex/ast.h"

namespace gqd {

struct RpqDefinabilityResult {
  DefinabilityVerdict verdict = DefinabilityVerdict::kBudgetExhausted;
  /// One witness word (as label ids) per pair of S when definable and
  /// S ≠ ∅.
  std::vector<std::pair<std::pair<NodeId, NodeId>, std::vector<LabelId>>>
      witness_words;
  /// When S = ∅ and definable: a word w with R_w = ∅.
  std::optional<std::vector<LabelId>> empty_relation_witness;
  std::size_t tuples_explored = 0;
  /// Set iff an options.budget trip stopped the underlying k-REM search.
  std::optional<PartialProgress> partial;
};

/// Decides whether `relation` is definable by a regular path query.
Result<RpqDefinabilityResult> CheckRpqDefinability(
    const DataGraph& graph, const BinaryRelation& relation,
    const KRemDefinabilityOptions& options = {});

/// Density-adaptive overload: S = ∅ runs the killing-word subset walk
/// (graph-only, no relation memory); otherwise the k = 0 k-REM check runs
/// on the adaptive relation, streaming frontiers when the dense tuple
/// store would not fit. Verdicts and witnesses match the dense overload.
Result<RpqDefinabilityResult> CheckRpqDefinability(
    const DataGraph& graph, const AdaptiveRelation& relation,
    const KRemDefinabilityOptions& options = {});

/// Builds a defining regex from a kDefinable result: the union of witness
/// words (ε for the empty word), or the killing word for S = ∅.
RegexPtr RegexFromWitnesses(const RpqDefinabilityResult& result,
                            const StringInterner& labels);

}  // namespace gqd

#endif  // GQD_DEFINABILITY_RPQ_DEFINABILITY_H_
