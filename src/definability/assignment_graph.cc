#include "definability/assignment_graph.h"

#include <cassert>

#include "common/failpoint.h"
#include "obs/trace.h"

namespace gqd {

namespace {

GQD_FAILPOINT_DEFINE(fp_assignment_graph_build, "assignment_graph.build");

/// Encodes an assignment as a base-(δ+1) number; digit δ is ⊥.
std::uint64_t EncodeAssignment(const RegisterAssignment& assignment,
                               std::size_t num_values) {
  std::uint64_t base = num_values + 1;
  std::uint64_t code = 0;
  for (std::size_t i = assignment.size(); i-- > 0;) {
    std::uint64_t digit =
        (assignment[i] == kEmptyRegister) ? num_values : assignment[i];
    code = code * base + digit;
  }
  return code;
}

RegisterAssignment DecodeAssignment(std::uint64_t code, std::size_t k,
                                    std::size_t num_values) {
  std::uint64_t base = num_values + 1;
  RegisterAssignment assignment(k);
  for (std::size_t i = 0; i < k; i++) {
    std::uint64_t digit = code % base;
    assignment[i] = (digit == num_values)
                        ? kEmptyRegister
                        : static_cast<std::uint32_t>(digit);
    code /= base;
  }
  return assignment;
}

}  // namespace

Result<AssignmentGraph> AssignmentGraph::Build(const DataGraph& graph,
                                               std::size_t k,
                                               const ResourceBudget* budget) {
  if (GQD_FAILPOINT_FIRED(fp_assignment_graph_build)) {
    return Status::ResourceExhausted(
        "injected allocation failure (failpoint assignment_graph.build)");
  }
  if (k > 4) {
    return Status::OutOfRange(
        "assignment graphs support at most k = 4 registers (got k = " +
        std::to_string(k) + ")");
  }
  GQD_TRACE_SPAN(span, "krem.assignment_graph_build");
  AssignmentGraph ag;
  ag.k_ = k;
  ag.num_nodes_ = graph.NumNodes();
  ag.num_labels_ = graph.NumLabels();
  ag.num_values_ = graph.NumDataValues();
  ag.assignment_codes_ = 1;
  for (std::size_t i = 0; i < k; i++) {
    ag.assignment_codes_ *= (ag.num_values_ + 1);
  }
  ag.num_states_ = ag.num_nodes_ * ag.assignment_codes_;
  if (ag.num_states_ > (std::size_t{1} << 24)) {
    return Status::OutOfRange("assignment graph too large: " +
                              std::to_string(ag.num_states_) + " states");
  }

  ag.num_patterns_ = std::size_t{1} << k;
  std::size_t masks = std::size_t{1} << k;
  ag.adjacency_.assign(masks * ag.num_labels_ * ag.num_states_, {});
  if (budget != nullptr) {
    budget->ChargeBytes(static_cast<std::int64_t>(
        ag.adjacency_.size() * sizeof(std::vector<Successor>)));
    GQD_RETURN_NOT_OK(budget->Check());
  }

  // Materialize the word-parallel kernel rows unless they would blow the
  // memory budget (the successor lists above always exist as fallback).
  std::size_t row_words = (ag.num_states_ + 63) / 64;
  std::size_t num_rows =
      masks * ag.num_labels_ * ag.num_patterns_ * ag.num_states_;
  bool build_kernel =
      ag.num_states_ > 0 &&
      num_rows <= kKernelMemoryBudgetBytes / 8 / (row_words == 0 ? 1 : row_words);
  if (build_kernel && budget != nullptr && budget->max_bytes() != 0) {
    // The kernel is an optimization: degrade (skip it) rather than fail the
    // request when it would not fit the remaining byte budget.
    std::size_t kernel_bytes =
        num_rows * row_words * sizeof(std::uint64_t) +
        masks * ag.num_labels_ * ag.num_states_ * sizeof(std::uint16_t);
    if (budget->bytes_used() + kernel_bytes > budget->max_bytes()) {
      build_kernel = false;
    } else {
      budget->ChargeBytes(static_cast<std::int64_t>(kernel_bytes));
    }
  }
  if (build_kernel) {
    ag.kernel_row_words_ = row_words;
    ag.kernel_words_.assign(num_rows * row_words, 0);
    ag.kernel_patterns_.assign(masks * ag.num_labels_ * ag.num_states_, 0);
  }
  GQD_TRACE_SPAN_ATTR(span, "states", ag.num_states_);
  GQD_TRACE_SPAN_ATTR(span, "kernel", build_kernel ? 1 : 0);

  std::uint32_t budget_ticks = 0;
  for (AgState s = 0; s < ag.num_states_; s++) {
    if (GQD_BUDGET_STRIDE_CHECK(budget, budget_ticks)) {
      return budget->Check();
    }
    NodeId v = ag.NodeOf(s);
    RegisterAssignment sigma =
        DecodeAssignment(s % ag.assignment_codes_, k, ag.num_values_);
    std::uint32_t stored_value = graph.DataValueOf(v);
    std::size_t successors_added = 0;
    for (std::uint32_t mask = 0; mask < masks; mask++) {
      // σ' = σ[r̄ → ρ(v)].
      RegisterAssignment sigma_prime = sigma;
      for (std::size_t r = 0; r < k; r++) {
        if (mask & (1u << r)) {
          sigma_prime[r] = stored_value;
        }
      }
      std::uint64_t sigma_prime_code =
          EncodeAssignment(sigma_prime, ag.num_values_);
      for (const auto& [label, v_prime] : graph.OutEdges(v)) {
        AgState target = static_cast<AgState>(
            v_prime * ag.assignment_codes_ + sigma_prime_code);
        std::uint8_t pattern = static_cast<std::uint8_t>(
            EqualityPattern(graph.DataValueOf(v_prime), sigma_prime));
        ag.adjacency_[(mask * ag.num_labels_ + label) * ag.num_states_ + s]
            .push_back(Successor{target, pattern});
        successors_added++;
        if (build_kernel) {
          std::size_t row =
              ((mask * ag.num_labels_ + label) * ag.num_patterns_ + pattern) *
                  ag.num_states_ +
              s;
          ag.kernel_words_[row * row_words + (target >> 6)] |=
              std::uint64_t{1} << (target & 63);
          ag.kernel_patterns_[(mask * ag.num_labels_ + label) *
                                  ag.num_states_ +
                              s] |= static_cast<std::uint16_t>(1u << pattern);
        }
      }
    }
    if (budget != nullptr && successors_added > 0) {
      budget->ChargeBytes(
          static_cast<std::int64_t>(successors_added * sizeof(Successor)));
    }
  }
  if (budget != nullptr) {
    GQD_RETURN_NOT_OK(budget->Check());
  }
  return ag;
}

AgState AssignmentGraph::InitialState(NodeId v) const {
  RegisterAssignment bottom(k_, kEmptyRegister);
  return static_cast<AgState>(v * assignment_codes_ +
                              EncodeAssignment(bottom, num_values_));
}

RegisterAssignment AssignmentGraph::AssignmentOf(AgState state) const {
  return DecodeAssignment(state % assignment_codes_, k_, num_values_);
}

}  // namespace gqd
