// The k-assignment graph T_G (Definition 19 of the paper).
//
// States are pairs (v, σ) of a graph node and a register assignment over
// D_G ∪ {⊥}. A transition (v, σ) —↓r̄.a[c]→ (v', σ') exists when
// (v, a, v') ∈ E, σ' = σ[r̄ → ρ(v)], and ρ(v'), σ' ⊨ c.
//
// For the definability search the transition alphabet is finite: store sets
// r̄ range over the 2^k register subsets and conditions over the 2^(2^k)
// semantically distinct minterm masks. This class pre-computes, for every
// (r̄, a) pair and every state, the successor states *annotated with the
// equality pattern of the target value against σ'* — a condition mask then
// selects successors by pattern membership without re-deriving anything.

#ifndef GQD_DEFINABILITY_ASSIGNMENT_GRAPH_H_
#define GQD_DEFINABILITY_ASSIGNMENT_GRAPH_H_

#include <cstdint>
#include <vector>

#include "common/budget.h"
#include "common/status.h"
#include "graph/data_graph.h"
#include "rem/condition.h"

namespace gqd {

/// Dense index of an assignment-graph state (v, σ).
using AgState = std::uint32_t;

/// One transition block label ↓r̄.a[c] of a basic k-REM (Definition 16).
struct BasicRemBlock {
  std::uint32_t store_mask;  ///< bit i set ⟺ r_{i+1} ∈ r̄
  LabelId label;             ///< a
  MintermMask condition;     ///< c as a minterm set (see rem/condition.h)
};

/// The assignment graph of a data graph for a fixed register count k.
class AssignmentGraph {
 public:
  /// Requires k <= 4 (the transition alphabet has 2^k · |Σ| · 2^(2^k)
  /// letters; beyond k = 4 the construction is pointless in practice).
  ///
  /// When `budget` is given, the successor-list adjacency is charged
  /// against it and exhaustion mid-build fails with ResourceExhausted; the
  /// optional word-parallel kernel instead *degrades* — it is skipped when
  /// it would not fit the remaining budget, and callers fall back to
  /// SuccessorsOf (slower, but correct).
  static Result<AssignmentGraph> Build(const DataGraph& graph, std::size_t k,
                                       const ResourceBudget* budget = nullptr);

  std::size_t k() const { return k_; }
  /// n · (δ+1)^k.
  std::size_t num_states() const { return num_states_; }
  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_labels() const { return num_labels_; }
  std::size_t num_store_masks() const { return std::size_t{1} << k_; }
  std::size_t num_patterns() const { return std::size_t{1} << k_; }

  /// The state (v, ⊥^k).
  AgState InitialState(NodeId v) const;

  /// The node component of a state.
  NodeId NodeOf(AgState state) const {
    return static_cast<NodeId>(state / assignment_codes_);
  }

  /// Decodes the assignment component of a state.
  RegisterAssignment AssignmentOf(AgState state) const;

  /// A successor under a fixed (store set, letter), annotated with the
  /// equality pattern of the target node's value against the post-store
  /// assignment σ'. A block ↓r̄.a[c] admits the successor iff c's minterm
  /// mask contains `pattern`.
  struct Successor {
    AgState state;
    std::uint8_t pattern;
  };

  /// Successors of `state` under store set `store_mask` and letter `label`.
  const std::vector<Successor>& SuccessorsOf(std::uint32_t store_mask,
                                             LabelId label,
                                             AgState state) const {
    return adjacency_[(store_mask * num_labels_ + label) * num_states_ +
                      state];
  }

  // --- Word-parallel transition kernel -------------------------------------
  //
  // Build() additionally materializes, for every (store_mask, label,
  // pattern), a row-indexed bitset adjacency: row s is the set of successor
  // states of s whose equality pattern is `pattern`, packed as
  // ⌈|Q|/64⌉ words. The definability BFS then derives a frontier's
  // successors as word-parallel unions — `part |= row(s)` covers 64 target
  // states per instruction — instead of pushing successors one at a time.
  // Rows are stored flat (one contiguous word vector, fixed stride) so the
  // whole kernel is two allocations, not |masks|·|Σ|·|patterns|·|Q| of them.
  //
  // The kernel is skipped (has_kernel() == false) when its footprint would
  // exceed kKernelMemoryBudgetBytes; callers fall back to SuccessorsOf.

  /// Rows materialized at Build time and within the memory budget?
  bool has_kernel() const { return !kernel_words_.empty(); }

  /// Words per kernel row (⌈num_states/64⌉).
  std::size_t kernel_row_words() const { return kernel_row_words_; }

  /// Pointer to the packed successor row of `state` under (store_mask,
  /// label) restricted to equality pattern `pattern`; kernel_row_words()
  /// words. Requires has_kernel().
  const std::uint64_t* KernelRow(std::uint32_t store_mask, LabelId label,
                                 std::uint32_t pattern, AgState state) const {
    return kernel_words_.data() +
           (((store_mask * num_labels_ + label) * num_patterns_ + pattern) *
                num_states_ +
            state) *
               kernel_row_words_;
  }

  /// Bitmask over patterns with at least one successor of `state` under
  /// (store_mask, label) — lets the BFS skip all-zero kernel rows without
  /// touching them. Requires has_kernel().
  std::uint16_t AchievedPatternsAt(std::uint32_t store_mask, LabelId label,
                                  AgState state) const {
    return kernel_patterns_[(store_mask * num_labels_ + label) * num_states_ +
                            state];
  }

  /// Upper bound on the flat kernel's size; beyond it Build() leaves the
  /// kernel unmaterialized and callers use the successor lists.
  static constexpr std::size_t kKernelMemoryBudgetBytes =
      std::size_t{64} << 20;

 private:
  AssignmentGraph() = default;

  std::size_t k_ = 0;
  std::size_t num_nodes_ = 0;
  std::size_t num_labels_ = 0;
  std::size_t num_values_ = 0;
  std::size_t num_patterns_ = 1;  // 2^k
  std::uint64_t assignment_codes_ = 1;  // (δ+1)^k
  std::size_t num_states_ = 0;
  /// adjacency_[(mask·|Σ| + a)·|Q| + s] = successors of s under (mask, a).
  std::vector<std::vector<Successor>> adjacency_;
  /// Flat kernel rows, stride kernel_row_words_, indexed as in KernelRow.
  std::vector<std::uint64_t> kernel_words_;
  /// Achieved-pattern masks, indexed as in AchievedPatternsAt.
  std::vector<std::uint16_t> kernel_patterns_;
  std::size_t kernel_row_words_ = 0;
};

}  // namespace gqd

#endif  // GQD_DEFINABILITY_ASSIGNMENT_GRAPH_H_
