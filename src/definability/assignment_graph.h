// The k-assignment graph T_G (Definition 19 of the paper).
//
// States are pairs (v, σ) of a graph node and a register assignment over
// D_G ∪ {⊥}. A transition (v, σ) —↓r̄.a[c]→ (v', σ') exists when
// (v, a, v') ∈ E, σ' = σ[r̄ → ρ(v)], and ρ(v'), σ' ⊨ c.
//
// For the definability search the transition alphabet is finite: store sets
// r̄ range over the 2^k register subsets and conditions over the 2^(2^k)
// semantically distinct minterm masks. This class pre-computes, for every
// (r̄, a) pair and every state, the successor states *annotated with the
// equality pattern of the target value against σ'* — a condition mask then
// selects successors by pattern membership without re-deriving anything.

#ifndef GQD_DEFINABILITY_ASSIGNMENT_GRAPH_H_
#define GQD_DEFINABILITY_ASSIGNMENT_GRAPH_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/data_graph.h"
#include "rem/condition.h"

namespace gqd {

/// Dense index of an assignment-graph state (v, σ).
using AgState = std::uint32_t;

/// One transition block label ↓r̄.a[c] of a basic k-REM (Definition 16).
struct BasicRemBlock {
  std::uint32_t store_mask;  ///< bit i set ⟺ r_{i+1} ∈ r̄
  LabelId label;             ///< a
  MintermMask condition;     ///< c as a minterm set (see rem/condition.h)
};

/// The assignment graph of a data graph for a fixed register count k.
class AssignmentGraph {
 public:
  /// Requires k <= 4 (the transition alphabet has 2^k · |Σ| · 2^(2^k)
  /// letters; beyond k = 4 the construction is pointless in practice).
  static Result<AssignmentGraph> Build(const DataGraph& graph, std::size_t k);

  std::size_t k() const { return k_; }
  /// n · (δ+1)^k.
  std::size_t num_states() const { return num_states_; }
  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_labels() const { return num_labels_; }
  std::size_t num_store_masks() const { return std::size_t{1} << k_; }
  std::size_t num_patterns() const { return std::size_t{1} << k_; }

  /// The state (v, ⊥^k).
  AgState InitialState(NodeId v) const;

  /// The node component of a state.
  NodeId NodeOf(AgState state) const {
    return static_cast<NodeId>(state / assignment_codes_);
  }

  /// Decodes the assignment component of a state.
  RegisterAssignment AssignmentOf(AgState state) const;

  /// A successor under a fixed (store set, letter), annotated with the
  /// equality pattern of the target node's value against the post-store
  /// assignment σ'. A block ↓r̄.a[c] admits the successor iff c's minterm
  /// mask contains `pattern`.
  struct Successor {
    AgState state;
    std::uint8_t pattern;
  };

  /// Successors of `state` under store set `store_mask` and letter `label`.
  const std::vector<Successor>& SuccessorsOf(std::uint32_t store_mask,
                                             LabelId label,
                                             AgState state) const {
    return adjacency_[(store_mask * num_labels_ + label) * num_states_ +
                      state];
  }

 private:
  AssignmentGraph() = default;

  std::size_t k_ = 0;
  std::size_t num_nodes_ = 0;
  std::size_t num_labels_ = 0;
  std::size_t num_values_ = 0;
  std::uint64_t assignment_codes_ = 1;  // (δ+1)^k
  std::size_t num_states_ = 0;
  /// adjacency_[(mask·|Σ| + a)·|Q| + s] = successors of s under (mask, a).
  std::vector<std::vector<Successor>> adjacency_;
};

}  // namespace gqd

#endif  // GQD_DEFINABILITY_ASSIGNMENT_GRAPH_H_
