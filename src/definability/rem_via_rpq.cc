#include "definability/rem_via_rpq.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

namespace gqd {

Result<AutomorphismClosure> BuildAutomorphismClosure(
    const DataGraph& graph, const BinaryRelation& relation) {
  if (relation.num_nodes() != graph.NumNodes()) {
    return Status::InvalidArgument(
        "relation is over a different node count than the graph");
  }
  std::size_t delta = graph.NumDataValues();
  if (delta > 5) {
    return Status::OutOfRange(
        "G_aut needs δ! copies; refusing δ > 5 (got δ = " +
        std::to_string(delta) + ")");
  }
  std::size_t n = graph.NumNodes();

  AutomorphismClosure out;
  ValueId dummy = out.graph.AddDataValue("_");

  std::vector<std::uint32_t> perm(delta);
  std::iota(perm.begin(), perm.end(), 0);
  std::size_t copy = 0;
  do {
    // Nodes of this copy.
    for (NodeId v = 0; v < n; v++) {
      out.graph.AddNode(dummy, graph.NodeName(v) + "@" +
                                   std::to_string(copy));
    }
    NodeId base = static_cast<NodeId>(copy * n);
    for (const Edge& e : graph.edges()) {
      std::uint32_t from_value = perm[graph.DataValueOf(e.from)];
      std::uint32_t to_value = perm[graph.DataValueOf(e.to)];
      std::string letter = std::to_string(from_value) + "|" +
                           graph.labels().NameOf(e.label) + "|" +
                           std::to_string(to_value);
      out.graph.AddEdgeByName(base + e.from, letter, base + e.to);
    }
    copy++;
  } while (std::next_permutation(perm.begin(), perm.end()));
  out.num_copies = copy;

  out.lifted_relation = BinaryRelation(n * copy);
  for (const auto& [u, v] : relation.Pairs()) {
    for (std::size_t c = 0; c < copy; c++) {
      out.lifted_relation.Set(static_cast<NodeId>(c * n + u),
                              static_cast<NodeId>(c * n + v));
    }
  }
  return out;
}

Result<RemViaRpqResult> CheckRemDefinabilityViaRpq(
    const DataGraph& graph, const BinaryRelation& relation,
    const KRemDefinabilityOptions& options) {
  RemViaRpqResult result;
  if (relation.Empty()) {
    // The empty relation is always REM-definable (ε[¬⊤]); the RPQ detour
    // would wrongly depend on the existence of a killing word.
    result.verdict = DefinabilityVerdict::kDefinable;
    return result;
  }
  GQD_ASSIGN_OR_RETURN(AutomorphismClosure closure,
                       BuildAutomorphismClosure(graph, relation));
  result.num_copies = closure.num_copies;
  GQD_ASSIGN_OR_RETURN(
      RpqDefinabilityResult rpq,
      CheckRpqDefinability(closure.graph, closure.lifted_relation, options));
  result.verdict = rpq.verdict;
  result.tuples_explored = rpq.tuples_explored;
  return result;
}

}  // namespace gqd
