#include "definability/rpq_definability.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "obs/trace.h"

namespace gqd {

namespace {

/// For S = ∅: BFS over node subsets T_w = {v : some node reaches v by w},
/// starting from T_ε = V. R_w = ∅ iff T_w = ∅, so ∅ is RPQ-definable iff
/// the empty subset is reachable.
std::optional<std::vector<LabelId>> FindKillingWord(
    const DataGraph& graph, std::size_t max_subsets) {
  GQD_TRACE_SPAN(span, "rpq.killing_word");
  std::size_t n = graph.NumNodes();
  GQD_TRACE_SPAN_ATTR(span, "nodes", n);
  DynamicBitset start(n);
  for (NodeId v = 0; v < n; v++) {
    start.Set(v);
  }
  std::vector<DynamicBitset> subsets = {start};
  std::vector<std::size_t> parent = {0};
  std::vector<LabelId> incoming = {0};
  std::unordered_map<DynamicBitset, std::size_t, DynamicBitsetHash> seen;
  seen.emplace(start, 0);
  for (std::size_t head = 0; head < subsets.size(); head++) {
    if (subsets.size() > max_subsets) {
      return std::nullopt;  // budget; callers treat as "not found"
    }
    for (LabelId a = 0; a < graph.NumLabels(); a++) {
      DynamicBitset next(n);
      const DynamicBitset current = subsets[head];
      for (std::size_t v = current.FindNext(0); v < n;
           v = current.FindNext(v + 1)) {
        for (const auto& [label, to] : graph.OutEdges(static_cast<NodeId>(v))) {
          if (label == a) {
            next.Set(to);
          }
        }
      }
      bool empty = next.None();
      auto [it, inserted] = seen.emplace(std::move(next), subsets.size());
      if (inserted) {
        subsets.push_back(it->first);
        parent.push_back(head);
        incoming.push_back(a);
        if (empty) {
          // Reconstruct the word.
          std::vector<LabelId> word;
          for (std::size_t at = subsets.size() - 1; at != 0;
               at = parent[at]) {
            word.push_back(incoming[at]);
          }
          std::reverse(word.begin(), word.end());
          return word;
        }
      }
    }
  }
  return std::nullopt;
}

/// Shared body, generic over the relation representation (Empty plus
/// whatever CheckKRemDefinability needs).
template <typename Rel>
Result<RpqDefinabilityResult> CheckRpqImpl(
    const DataGraph& graph, const Rel& relation,
    const KRemDefinabilityOptions& options) {
  RpqDefinabilityResult result;
  if (relation.Empty()) {
    auto word = FindKillingWord(graph, options.max_tuples);
    if (word.has_value()) {
      result.verdict = DefinabilityVerdict::kDefinable;
      result.empty_relation_witness = std::move(word);
    } else {
      // Either truly unreachable or budget-bound; the subset space is 2^n,
      // which max_tuples covers for the sizes this library targets.
      result.verdict = DefinabilityVerdict::kNotDefinable;
    }
    return result;
  }
  GQD_ASSIGN_OR_RETURN(
      KRemDefinabilityResult krem,
      CheckKRemDefinability(graph, relation, /*k=*/0, options));
  result.verdict = krem.verdict;
  result.tuples_explored = krem.tuples_explored;
  result.partial = std::move(krem.partial);
  if (krem.verdict == DefinabilityVerdict::kDefinable) {
    for (const KRemWitness& witness : krem.witnesses) {
      std::vector<LabelId> word;
      for (const BasicRemBlock& block : witness.blocks) {
        assert(block.store_mask == 0);
        word.push_back(block.label);
      }
      result.witness_words.push_back(
          {{witness.from, witness.to}, std::move(word)});
    }
  }
  return result;
}

}  // namespace

Result<RpqDefinabilityResult> CheckRpqDefinability(
    const DataGraph& graph, const BinaryRelation& relation,
    const KRemDefinabilityOptions& options) {
  return CheckRpqImpl(graph, relation, options);
}

Result<RpqDefinabilityResult> CheckRpqDefinability(
    const DataGraph& graph, const AdaptiveRelation& relation,
    const KRemDefinabilityOptions& options) {
  return CheckRpqImpl(graph, relation, options);
}

RegexPtr RegexFromWitnesses(const RpqDefinabilityResult& result,
                            const StringInterner& labels) {
  auto word_to_regex = [&](const std::vector<LabelId>& word) -> RegexPtr {
    if (word.empty()) {
      return re::Epsilon();
    }
    std::vector<RegexPtr> letters;
    letters.reserve(word.size());
    for (LabelId a : word) {
      letters.push_back(re::Letter(labels.NameOf(a)));
    }
    return re::Concat(std::move(letters));
  };
  if (result.empty_relation_witness.has_value()) {
    return word_to_regex(*result.empty_relation_witness);
  }
  assert(!result.witness_words.empty());
  // Different pairs often share a witness word; dedupe the union branches.
  std::vector<std::vector<LabelId>> distinct;
  std::vector<RegexPtr> parts;
  for (const auto& [pair, word] : result.witness_words) {
    if (std::find(distinct.begin(), distinct.end(), word) ==
        distinct.end()) {
      distinct.push_back(word);
      parts.push_back(word_to_regex(word));
    }
  }
  return re::Union(std::move(parts));
}

}  // namespace gqd
