#include "definability/small_relation.h"

#include <cassert>

namespace gqd {

SmallRelationSpace::SmallRelationSpace(const DataGraph& graph)
    : n_(graph.NumNodes()) {
  assert(n_ <= 8 && "SmallRelationSpace requires at most 8 nodes");
  row_mask_ = (n_ == 0) ? 0 : ((std::uint64_t{1} << n_) - 1);
  full_mask_ =
      (n_ * n_ == 64) ? ~std::uint64_t{0}
                      : ((std::uint64_t{1} << (n_ * n_)) - 1);
  identity_ = 0;
  eq_mask_ = 0;
  for (std::size_t u = 0; u < n_; u++) {
    identity_ |= std::uint64_t{1} << (u * n_ + u);
    for (std::size_t v = 0; v < n_; v++) {
      if (graph.DataValueOf(static_cast<NodeId>(u)) ==
          graph.DataValueOf(static_cast<NodeId>(v))) {
        eq_mask_ |= std::uint64_t{1} << (u * n_ + v);
      }
    }
  }
  labels_.assign(graph.NumLabels(), 0);
  for (const Edge& e : graph.edges()) {
    labels_[e.label] |= std::uint64_t{1} << (e.from * n_ + e.to);
  }
}

SmallRelation SmallRelationSpace::Pack(const BinaryRelation& rel) const {
  assert(rel.num_nodes() == n_);
  SmallRelation out = 0;
  for (const auto& [u, v] : rel.Pairs()) {
    out |= std::uint64_t{1} << (u * n_ + v);
  }
  return out;
}

BinaryRelation SmallRelationSpace::Unpack(SmallRelation rel) const {
  BinaryRelation out(n_);
  for (std::size_t u = 0; u < n_; u++) {
    for (std::size_t v = 0; v < n_; v++) {
      if (rel & (std::uint64_t{1} << (u * n_ + v))) {
        out.Set(static_cast<NodeId>(u), static_cast<NodeId>(v));
      }
    }
  }
  return out;
}

}  // namespace gqd
