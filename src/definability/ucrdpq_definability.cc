#include "definability/ucrdpq_definability.h"

#include <cassert>

#include "common/failpoint.h"
#include "obs/trace.h"

namespace gqd {

namespace {

GQD_FAILPOINT_DEFINE(fp_ucrdpq_search, "ucrdpq.search");

/// Enumerates tuples of V^arity in lexicographic order via an odometer.
bool NextTuple(NodeTuple* tuple, std::size_t n) {
  for (std::size_t i = tuple->size(); i-- > 0;) {
    if (++(*tuple)[i] < n) {
      return true;
    }
    (*tuple)[i] = 0;
  }
  return false;
}

/// Pins consistent with the tuple pattern: positions of t with equal nodes
/// must receive equal images (they pin the same CSP variable).
bool BuildPins(const NodeTuple& source, const NodeTuple& image,
               std::vector<std::pair<NodeId, NodeId>>* pins) {
  pins->clear();
  for (std::size_t i = 0; i < source.size(); i++) {
    for (const auto& [node, pinned] : *pins) {
      if (node == source[i] && pinned != image[i]) {
        return false;  // contradictory pin: h(v) can't be two nodes
      }
    }
    pins->emplace_back(source[i], image[i]);
  }
  return true;
}

}  // namespace

Result<UcrdpqDefinabilityResult> CheckUcrdpqDefinability(
    const DataGraph& graph, const TupleRelation& relation,
    const UcrdpqDefinabilityOptions& options) {
  std::size_t n = graph.NumNodes();
  UcrdpqDefinabilityResult result;
  if (relation.empty()) {
    // Vacuously preserved by every homomorphism; definable (e.g. by a
    // CRDPQ with an unsatisfiable atom such as x -(eps)≠-> x... any query
    // with empty answer works).
    result.verdict = DefinabilityVerdict::kDefinable;
    return result;
  }

  GQD_TRACE_SPAN(search_span, "ucrdpq.search");
  GQD_TRACE_SPAN_ATTR(search_span, "tuples", relation.size());
  GQD_TRACE_SPAN_ATTR(search_span, "arity", relation.arity());
  // Build the homomorphism CSP once; each seed re-pins a copy.
  Csp base_csp;
  {
    GQD_TRACE_SPAN(build_span, "ucrdpq.build_csp");
    base_csp = BuildHomomorphismCsp(graph);
    GQD_TRACE_SPAN_ATTR(build_span, "variables", base_csp.num_variables);
    GQD_TRACE_SPAN_ATTR(build_span, "constraints", base_csp.constraints.size());
  }
  std::vector<std::pair<NodeId, NodeId>> pins;
  for (const NodeTuple& source : relation.tuples()) {
    NodeTuple image(relation.arity(), 0);
    do {
      if (relation.Contains(image)) {
        continue;  // h(t) ∈ S is not a violation
      }
      if (!BuildPins(source, image, &pins)) {
        continue;  // incompatible with h being a function
      }
      // Each seeded search may be too small to reach the CSP engine's
      // strided cancel poll, so the seed loop polls the deadline itself.
      if (options.csp.cancel != nullptr && options.csp.cancel->Expired()) {
        return options.csp.cancel->Check();
      }
      if (GQD_FAILPOINT_FIRED(fp_ucrdpq_search)) {
        return Status::ResourceExhausted(
            "injected seeded-search failure (failpoint ucrdpq.search)");
      }
      result.seeds_tried++;
      GQD_TRACE_SPAN(seed_span, "ucrdpq.seed");
      GQD_TRACE_SPAN_ATTR(seed_span, "seed", result.seeds_tried);
      // A pin wipes a domain exactly when the base domain already lacks the
      // pinned value, so probe the base CSP before paying for its copy.
      // Counted as a tried seed either way — seeds_tried is pinned by the
      // differential tests.
      bool wiped = false;
      for (const auto& [node, pinned] : pins) {
        if (!base_csp.domains[node].Test(pinned)) {
          wiped = true;
          break;
        }
      }
      if (wiped) {
        continue;
      }
      Csp csp = base_csp;
      for (const auto& [node, pinned] : pins) {
        csp.Pin(node, pinned);
      }
      auto solved = SolveCsp(csp, options.csp, &result.csp_stats);
      if (!solved.ok()) {
        if (solved.status().code() == StatusCode::kResourceExhausted) {
          result.verdict = DefinabilityVerdict::kBudgetExhausted;
          if (options.csp.budget != nullptr &&
              options.csp.budget->Exhausted()) {
            result.partial = PartialProgress{
                result.csp_stats.nodes_expanded, result.seeds_tried,
                options.csp.budget->bytes_peak(), "ucrdpq-csp"};
          }
          return result;
        }
        return solved.status();
      }
      if (solved.value().has_value()) {
        NodeMapping mapping(solved.value()->begin(), solved.value()->end());
        assert(IsDataGraphHomomorphism(graph, mapping));
        result.verdict = DefinabilityVerdict::kNotDefinable;
        result.violating_homomorphism = std::move(mapping);
        result.violated_tuple = source;
        return result;
      }
    } while (NextTuple(&image, n));
  }
  result.verdict = DefinabilityVerdict::kDefinable;
  return result;
}

Result<UcrdpqDefinabilityResult> CheckUcrdpqDefinability(
    const DataGraph& graph, const BinaryRelation& relation,
    const UcrdpqDefinabilityOptions& options) {
  return CheckUcrdpqDefinability(graph, TupleRelation::FromBinary(relation),
                                 options);
}

Result<UcrdpqDefinabilityResult> CheckUcrdpqDefinability(
    const DataGraph& graph, const AdaptiveRelation& relation,
    const UcrdpqDefinabilityOptions& options) {
  if (relation.num_nodes() != graph.NumNodes()) {
    return Status::InvalidArgument(
        "relation is over a different node count than the graph");
  }
  // TupleRelation's std::set iterates row-major — the same order
  // TupleRelation::FromBinary produces from a dense relation, so the seed
  // loop (and with it seeds_tried and any violation witness) is identical.
  TupleRelation tuples(2);
  for (const auto& [u, v] : relation.Pairs()) {
    tuples.Insert({u, v});
  }
  return CheckUcrdpqDefinability(graph, tuples, options);
}

}  // namespace gqd
