#include "runtime/stats.h"

#include "analysis/plan/plan_metrics.h"
#include "common/json_util.h"
#include "storage/metrics.h"

namespace gqd {

ServerStats::ServerStats() {
  requests_ = registry_.GetCounter("gqd_requests_total");
  errors_ = registry_.GetCounter("gqd_request_errors_total");
  shed_ = registry_.GetCounter("gqd_requests_shed_total");
  resource_exhausted_ = registry_.GetCounter("gqd_resource_exhausted_total");
  deadline_exceeded_ = registry_.GetCounter("gqd_deadline_exceeded_total");
  // Pre-registered so all three axes render at zero from the first scrape.
  budget_axis_[0] =
      registry_.GetCounter("gqd_budget_exhausted_total", {{"axis", "bytes"}});
  budget_axis_[1] =
      registry_.GetCounter("gqd_budget_exhausted_total", {{"axis", "tuples"}});
  budget_axis_[2] =
      registry_.GetCounter("gqd_budget_exhausted_total", {{"axis", "wall"}});
  latency_us_ = registry_.GetHistogram("gqd_request_latency_us");
}

ServerStats::PerCommand* ServerStats::PerCommandEntry(
    const std::string& command) {
  std::lock_guard<std::mutex> lock(mutex_);
  PerCommand& entry = per_command_[command];
  if (entry.requests == nullptr) {
    entry.requests = registry_.GetCounter("gqd_command_requests_total",
                                          {{"command", command}});
    entry.latency_us = registry_.GetHistogram("gqd_command_latency_us",
                                              {{"command", command}});
  }
  return &entry;
}

void ServerStats::Record(const std::string& command, bool ok,
                         std::chrono::nanoseconds latency, StatusCode code) {
  auto us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(latency).count());
  requests_->Inc();
  if (!ok) {
    errors_->Inc();
  }
  switch (code) {
    case StatusCode::kUnavailable:
      shed_->Inc();
      break;
    case StatusCode::kResourceExhausted:
      resource_exhausted_->Inc();
      break;
    case StatusCode::kDeadlineExceeded:
      deadline_exceeded_->Inc();
      break;
    default:
      break;
  }
  PerCommand* entry = PerCommandEntry(command);
  entry->requests->Inc();
  entry->latency_us->Observe(us);
  latency_us_->Observe(us);
}

void ServerStats::RecordBudgetAxis(BudgetAxis axis) {
  switch (axis) {
    case BudgetAxis::kBytes:
      budget_axis_[0]->Inc();
      break;
    case BudgetAxis::kTuples:
      budget_axis_[1]->Inc();
      break;
    case BudgetAxis::kWall:
      budget_axis_[2]->Inc();
      break;
    case BudgetAxis::kNone:
      break;
  }
}

std::uint64_t ServerStats::total_requests() const {
  return requests_->value();
}

std::uint64_t ServerStats::shed_requests() const { return shed_->value(); }

std::string ServerStats::ToJson(const ThreadPool::Stats& pool,
                                const ResultCache::Stats& cache,
                                const AdmissionStats& admission) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{";
  out += "\"requests\":" + std::to_string(requests_->value());
  out += ",\"errors\":" + std::to_string(errors_->value());
  out += ",\"shed\":" + std::to_string(shed_->value());
  out += ",\"resource_exhausted\":" +
         std::to_string(resource_exhausted_->value());
  out += ",\"deadline_exceeded\":" +
         std::to_string(deadline_exceeded_->value());
  out += ",\"budget_exhausted\":{";
  out += "\"bytes\":" + std::to_string(budget_axis_[0]->value());
  out += ",\"tuples\":" + std::to_string(budget_axis_[1]->value());
  out += ",\"wall\":" + std::to_string(budget_axis_[2]->value());
  out += "}";
  out += ",\"total_latency_us\":" + std::to_string(latency_us_->sum());
  out += ",\"per_command\":{";
  bool first = true;
  for (const auto& [command, entry] : per_command_) {
    if (!first) out += ",";
    first = false;
    out += JsonQuote(command) + ":" + std::to_string(entry.requests->value());
  }
  out += "}";
  // Per-command latency percentiles, read off the log2 histograms (each
  // value is the inclusive upper bound of the quantile's bucket).
  out += ",\"per_command_latency_us\":{";
  first = true;
  for (const auto& [command, entry] : per_command_) {
    if (!first) out += ",";
    first = false;
    out += JsonQuote(command) + ":{";
    out += "\"count\":" + std::to_string(entry.latency_us->count());
    out += ",\"p50\":" +
           std::to_string(entry.latency_us->QuantileUpperBound(0.50));
    out += ",\"p99\":" +
           std::to_string(entry.latency_us->QuantileUpperBound(0.99));
    out += "}";
  }
  out += "}";
  // Histogram as {"le_us": count} with the bucket's inclusive upper bound;
  // the final bucket is open-ended and keyed "inf".
  out += ",\"latency_histogram_us\":{";
  first = true;
  for (std::size_t b = 0; b < kNumLatencyBuckets; b++) {
    std::uint64_t count = latency_us_->bucket(b);
    if (count == 0) continue;
    if (!first) out += ",";
    first = false;
    if (b + 1 == kNumLatencyBuckets) {
      out += "\"inf\"";
    } else {
      out += "\"" + std::to_string(Histogram::BucketUpperBound(b)) + "\"";
    }
    out += ":" + std::to_string(count);
  }
  out += "}";
  out += ",\"pool\":{";
  out += "\"num_threads\":" + std::to_string(pool.num_threads);
  out += ",\"active_workers\":" + std::to_string(pool.active_workers);
  out += ",\"queued_tasks\":" + std::to_string(pool.queued_tasks);
  out += ",\"tasks_executed\":" + std::to_string(pool.tasks_executed);
  out += ",\"tasks_stolen\":" + std::to_string(pool.tasks_stolen);
  out += ",\"tasks_inline\":" + std::to_string(pool.tasks_inline);
  out += "}";
  out += ",\"cache\":{";
  out += "\"hits\":" + std::to_string(cache.hits);
  out += ",\"misses\":" + std::to_string(cache.misses);
  out += ",\"evictions\":" + std::to_string(cache.evictions);
  out += ",\"drops\":" + std::to_string(cache.drops);
  out += ",\"entries\":" + std::to_string(cache.entries);
  out += ",\"capacity\":" + std::to_string(cache.capacity);
  out += "}";
  out += ",\"admission\":{";
  out += "\"admitted\":" + std::to_string(admission.admitted);
  out += ",\"queued\":" + std::to_string(admission.queued);
  out += ",\"shed\":" + std::to_string(admission.shed);
  out += ",\"active\":" + std::to_string(admission.active);
  out += ",\"waiting\":" + std::to_string(admission.waiting);
  out += "}";
  out += "}";
  return out;
}

void ServerStats::MirrorSnapshots(const ThreadPool::Stats& pool,
                                  const ResultCache::Stats& cache,
                                  const AdmissionStats& admission) {
  registry_.GetGauge("gqd_pool_threads")
      ->Set(static_cast<std::int64_t>(pool.num_threads));
  registry_.GetGauge("gqd_pool_active_workers")
      ->Set(static_cast<std::int64_t>(pool.active_workers));
  registry_.GetGauge("gqd_pool_queued_tasks")
      ->Set(static_cast<std::int64_t>(pool.queued_tasks));
  registry_.GetCounter("gqd_pool_tasks_executed_total")
      ->Set(pool.tasks_executed);
  registry_.GetCounter("gqd_pool_tasks_stolen_total")->Set(pool.tasks_stolen);
  registry_.GetCounter("gqd_pool_tasks_inline_total")->Set(pool.tasks_inline);
  registry_.GetCounter("gqd_cache_hits_total")->Set(cache.hits);
  registry_.GetCounter("gqd_cache_misses_total")->Set(cache.misses);
  registry_.GetCounter("gqd_cache_evictions_total")->Set(cache.evictions);
  registry_.GetCounter("gqd_cache_drops_total")->Set(cache.drops);
  registry_.GetGauge("gqd_cache_entries")
      ->Set(static_cast<std::int64_t>(cache.entries));
  registry_.GetGauge("gqd_cache_capacity")
      ->Set(static_cast<std::int64_t>(cache.capacity));
  registry_.GetCounter("gqd_admission_admitted_total")->Set(admission.admitted);
  registry_.GetCounter("gqd_admission_queued_total")->Set(admission.queued);
  registry_.GetCounter("gqd_admission_shed_total")->Set(admission.shed);
  registry_.GetGauge("gqd_admission_active")
      ->Set(static_cast<std::int64_t>(admission.active));
  registry_.GetGauge("gqd_admission_waiting")
      ->Set(static_cast<std::int64_t>(admission.waiting));
}

std::string ServerStats::RenderPrometheus(const ThreadPool::Stats& pool,
                                          const ResultCache::Stats& cache,
                                          const AdmissionStats& admission) {
  MirrorSnapshots(pool, cache, admission);
  UpdateFailpointMetrics(&registry_);
  UpdatePlanMetrics(&registry_);
  UpdateStorageMetrics(&registry_);
  UpdateRelationMetrics(&registry_);
  return registry_.RenderPrometheus();
}

}  // namespace gqd
