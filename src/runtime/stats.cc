#include "runtime/stats.h"

#include "common/json_util.h"

namespace gqd {

namespace {

/// Index of the log2 bucket for a microsecond latency: bucket b covers
/// [2^b, 2^(b+1)) µs, bucket 0 also absorbs sub-microsecond requests.
std::size_t BucketFor(std::uint64_t us) {
  std::size_t bucket = 0;
  while (us > 1 && bucket + 1 < ServerStats::kNumLatencyBuckets) {
    us >>= 1;
    bucket++;
  }
  return bucket;
}

}  // namespace

void ServerStats::Record(const std::string& command, bool ok,
                         std::chrono::nanoseconds latency, StatusCode code) {
  auto us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(latency).count());
  std::lock_guard<std::mutex> lock(mutex_);
  requests_++;
  if (!ok) {
    errors_++;
  }
  switch (code) {
    case StatusCode::kUnavailable:
      shed_++;
      break;
    case StatusCode::kResourceExhausted:
      resource_exhausted_++;
      break;
    case StatusCode::kDeadlineExceeded:
      deadline_exceeded_++;
      break;
    default:
      break;
  }
  per_command_[command]++;
  latency_buckets_[BucketFor(us)]++;
  total_latency_us_ += us;
}

std::uint64_t ServerStats::total_requests() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return requests_;
}

std::uint64_t ServerStats::shed_requests() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

std::string ServerStats::ToJson(const ThreadPool::Stats& pool,
                                const ResultCache::Stats& cache,
                                const AdmissionStats& admission) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{";
  out += "\"requests\":" + std::to_string(requests_);
  out += ",\"errors\":" + std::to_string(errors_);
  out += ",\"shed\":" + std::to_string(shed_);
  out += ",\"resource_exhausted\":" + std::to_string(resource_exhausted_);
  out += ",\"deadline_exceeded\":" + std::to_string(deadline_exceeded_);
  out += ",\"total_latency_us\":" + std::to_string(total_latency_us_);
  out += ",\"per_command\":{";
  bool first = true;
  for (const auto& [command, count] : per_command_) {
    if (!first) out += ",";
    first = false;
    out += JsonQuote(command) + ":" + std::to_string(count);
  }
  out += "}";
  // Histogram as {"le_us": count} with the bucket's inclusive upper bound;
  // the final bucket is open-ended and keyed "inf".
  out += ",\"latency_histogram_us\":{";
  first = true;
  for (std::size_t b = 0; b < kNumLatencyBuckets; b++) {
    if (latency_buckets_[b] == 0) continue;
    if (!first) out += ",";
    first = false;
    if (b + 1 == kNumLatencyBuckets) {
      out += "\"inf\"";
    } else {
      out += "\"" + std::to_string((1ULL << (b + 1)) - 1) + "\"";
    }
    out += ":" + std::to_string(latency_buckets_[b]);
  }
  out += "}";
  out += ",\"pool\":{";
  out += "\"num_threads\":" + std::to_string(pool.num_threads);
  out += ",\"active_workers\":" + std::to_string(pool.active_workers);
  out += ",\"queued_tasks\":" + std::to_string(pool.queued_tasks);
  out += ",\"tasks_executed\":" + std::to_string(pool.tasks_executed);
  out += ",\"tasks_stolen\":" + std::to_string(pool.tasks_stolen);
  out += ",\"tasks_inline\":" + std::to_string(pool.tasks_inline);
  out += "}";
  out += ",\"cache\":{";
  out += "\"hits\":" + std::to_string(cache.hits);
  out += ",\"misses\":" + std::to_string(cache.misses);
  out += ",\"evictions\":" + std::to_string(cache.evictions);
  out += ",\"drops\":" + std::to_string(cache.drops);
  out += ",\"entries\":" + std::to_string(cache.entries);
  out += ",\"capacity\":" + std::to_string(cache.capacity);
  out += "}";
  out += ",\"admission\":{";
  out += "\"admitted\":" + std::to_string(admission.admitted);
  out += ",\"queued\":" + std::to_string(admission.queued);
  out += ",\"shed\":" + std::to_string(admission.shed);
  out += ",\"active\":" + std::to_string(admission.active);
  out += ",\"waiting\":" + std::to_string(admission.waiting);
  out += "}";
  out += "}";
  return out;
}

}  // namespace gqd
