// The query service: protocol dispatch for `gqd serve`.
//
// QueryService owns the long-lived pieces — thread pool, graph registry,
// result cache, stats — and maps one request line (a JSON object) to one
// response line. It is transport-agnostic: the TCP server (server.h) and
// in-process tests both drive HandleLine directly, so every protocol
// behaviour is testable without sockets.
//
// Protocol (newline-delimited JSON; full spec in docs/runtime.md):
//   {"cmd":"load","name":"g","text":"node u 1\n..."}
//   {"cmd":"eval","graph":"g","language":"rem","query":"$r. a+ [r=]",
//    "deadline_ms":100}
//   {"cmd":"eval","graph":"g","language":"rpq","queries":["a+","b+"]}
//   {"cmd":"check","graph":"g","checker":"krem","relation":"pair u v\n",
//    "k":2,"deadline_ms":500}
//   {"cmd":"lint","language":"ree","query":"(a)=","graph":"g"}
//   {"cmd":"info","graph":"g"}    {"cmd":"info"}
//   {"cmd":"stats"}               {"cmd":"ping"}    {"cmd":"shutdown"}
//   {"cmd":"metrics"}             {"cmd":"log"}
//   {"cmd":"spans","trace":"00-<32 hex>-<16 hex>-01"}
// Every response carries "ok"; errors carry {"error":{"code","message"}}.
// An "id" field, when present, is echoed back verbatim.
//
// Observability (docs/observability.md): `metrics` returns the full
// Prometheus text exposition (request counters, latency histograms, pool /
// cache / admission mirrors, budget axes, failpoint sites) in a "metrics"
// string field; it bypasses admission like the other introspection
// commands. Any request may add `"trace": true` to get a "trace" field on
// its success response — the span tree (admission wait, cache lookup,
// handler, checker stages) recorded while serving that request — plus a
// "trace_id". A string "trace" field instead carries a propagated
// TraceContext (W3C-traceparent shape) minted upstream by the router: the
// request's spans are recorded under that trace id into a process-wide
// SpanCollector and held for the router's `spans` drain, and the success
// response carries only the "trace_id". `log` returns the structured
// event-log ring (obs/log.h).
//
// Robustness (docs/robustness.md): eval and check accept per-request
// resource budgets ("max_bytes", "max_tuples"; 0 = unlimited) alongside
// "deadline_ms". Heavy commands (load/eval/check/lint) pass through a
// bounded admission gate when one is configured; shed requests get an
// Unavailable error with a "retry_after_ms" hint. ping, stats, info and
// shutdown bypass admission so health checks work under full load.

#ifndef GQD_RUNTIME_SERVICE_H_
#define GQD_RUNTIME_SERVICE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "analysis/plan/query_plan.h"
#include "common/budget.h"
#include "common/cancel.h"
#include "common/thread_pool.h"
#include "obs/trace_context.h"
#include "rem/ast.h"
#include "runtime/admission.h"
#include "runtime/graph_registry.h"
#include "runtime/json.h"
#include "runtime/line_handler.h"
#include "runtime/result_cache.h"
#include "runtime/stats.h"

namespace gqd {

struct ServiceOptions {
  /// Worker threads for batched evaluation; 0 = hardware concurrency.
  std::size_t num_threads = 0;
  /// Result-cache entry budget.
  std::size_t cache_capacity = 256;
  /// Load shedding for heavy commands; max_concurrent 0 = disabled.
  AdmissionOptions admission;
};

class QueryService : public LineHandler {
 public:
  explicit QueryService(const ServiceOptions& options = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Handles one request line; returns the one-line response JSON (without
  /// a trailing newline) and sets *shutdown on a shutdown request.
  std::string HandleLine(const std::string& line, bool* shutdown) override;

  /// Direct registry access for in-process embedding (tests, bench).
  GraphRegistry& registry() { return registry_; }

  ResultCache::Stats cache_stats() const { return cache_.GetStats(); }
  std::uint64_t total_requests() const { return stats_.total_requests(); }
  std::uint64_t shed_requests() const { return stats_.shed_requests(); }
  AdmissionStats admission_stats() const { return admission_.GetStats(); }

 private:
  Result<JsonValue> Dispatch(const JsonValue& request, bool* shutdown);
  /// Command routing proper; Dispatch wraps it with the optional
  /// per-request tracer so the admission wait is inside the trace.
  Result<JsonValue> DispatchCommand(const std::string& cmd,
                                    const JsonValue& request, bool* shutdown);
  Result<JsonValue> HandleLoad(const JsonValue& request);
  Result<JsonValue> HandleEval(const JsonValue& request);
  Result<JsonValue> HandleCheck(const JsonValue& request);
  Result<JsonValue> HandleLint(const JsonValue& request);
  Result<JsonValue> HandleInfo(const JsonValue& request);
  Result<JsonValue> HandleStats();
  Result<JsonValue> HandleMetrics();
  /// Drains this process's span collector for one propagated trace
  /// (request: {"cmd":"spans","trace":"<traceparent>"}); the router's
  /// trace-collect path. Responds with the span batch plus "now_ns" so the
  /// collector can align this process's monotonic clock with its own.
  Result<JsonValue> HandleSpans(const JsonValue& request);
  /// Returns the process event-log ring ({"cmd":"log","min_level":...}).
  Result<JsonValue> HandleLog(const JsonValue& request);

  /// Evaluates one query (cache-aware); used by single and batched eval.
  Result<JsonValue> EvalOne(const RegisteredGraph& entry,
                            const std::string& language,
                            const std::string& query,
                            const CancelToken* cancel,
                            const ResourceBudget* budget);

  /// The compiled QueryPlan for a normalized REM against one graph's
  /// alphabet, cached alongside the normalized query (same fingerprint
  /// keying as the result cache, under the "rem#plan" namespace) so repeat
  /// evaluations skip the analyze/prune stage even on result-cache misses.
  std::shared_ptr<const QueryPlan> GetOrBuildRemPlan(
      const RegisteredGraph& entry, const std::string& normalized,
      const RemPtr& expression);

  ThreadPool pool_;
  GraphRegistry registry_;
  ResultCache cache_;
  ServerStats stats_;
  AdmissionController admission_;
  /// Holds spans recorded under a propagated TraceContext (a string
  /// "trace" field) until the router drains them via `spans`. Bounded;
  /// traces nobody collects age out.
  SpanCollector collector_;

  /// Plan cache (separate from the result cache: plans are graph-alphabet-
  /// dependent compilation artifacts, not result payloads). Bounded by
  /// kPlanCacheCapacity; wholesale reset on overflow keeps it simple.
  static constexpr std::size_t kPlanCacheCapacity = 256;
  std::mutex plan_mutex_;
  std::unordered_map<std::string, std::shared_ptr<const QueryPlan>>
      plan_cache_;
};

}  // namespace gqd

#endif  // GQD_RUNTIME_SERVICE_H_
