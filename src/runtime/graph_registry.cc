#include "runtime/graph_registry.h"

#include <utility>

#include "graph/serialization.h"

namespace gqd {

Result<RegisteredGraph> GraphRegistry::Load(const std::string& name,
                                            const std::string& text) {
  if (name.empty()) {
    return Status::InvalidArgument("graph name must be non-empty");
  }
  GQD_ASSIGN_OR_RETURN(StoredGraph stored, GraphStore::FromText(text));
  return Register(name, std::move(stored));
}

Result<RegisteredGraph> GraphRegistry::LoadFile(const std::string& name,
                                                const std::string& path) {
  if (name.empty()) {
    return Status::InvalidArgument("graph name must be non-empty");
  }
  GQD_ASSIGN_OR_RETURN(StoredGraph stored, GraphStore::OpenFile(path));
  return Register(name, std::move(stored));
}

RegisteredGraph GraphRegistry::Register(const std::string& name,
                                        DataGraph graph) {
  return Register(name, GraphStore::FromGraph(std::move(graph)));
}

RegisteredGraph GraphRegistry::Register(const std::string& name,
                                        StoredGraph stored) {
  RegisteredGraph entry;
  entry.fingerprint = stored.info.fingerprint;
  entry.info = stored.info;
  std::lock_guard<std::mutex> lock(mutex_);
  // Dedupe by fingerprint: re-loading identical content under any name
  // shares the already-loaded copy (and drops the fresh one, along with
  // any mapping it holds) instead of keeping two.
  for (const auto& [other_name, other] : graphs_) {
    if (other.fingerprint == entry.fingerprint) {
      graphs_[name] = other;
      return other;
    }
  }
  entry.graph = std::move(stored.graph);
  graphs_[name] = entry;
  return entry;
}

Result<RegisteredGraph> GraphRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("no graph named '" + name +
                            "' is loaded (use the load command first)");
  }
  return it->second;
}

std::vector<std::string> GraphRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(graphs_.size());
  for (const auto& [name, entry] : graphs_) {
    names.push_back(name);
  }
  return names;
}

std::size_t GraphRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return graphs_.size();
}

std::string GraphRegistry::Fingerprint(const DataGraph& graph) {
  // Computed line by line (FingerprintGraphText) so fingerprinting a mapped
  // million-node graph never materializes its full text form.
  return FingerprintToHex(FingerprintGraphText(graph));
}

}  // namespace gqd
