#include "runtime/graph_registry.h"

#include <cstdio>

#include "graph/serialization.h"

namespace gqd {

Result<RegisteredGraph> GraphRegistry::Load(const std::string& name,
                                            const std::string& text) {
  if (name.empty()) {
    return Status::InvalidArgument("graph name must be non-empty");
  }
  GQD_ASSIGN_OR_RETURN(DataGraph graph, ReadGraphText(text));
  return Register(name, std::move(graph));
}

RegisteredGraph GraphRegistry::Register(const std::string& name,
                                        DataGraph graph) {
  RegisteredGraph entry;
  entry.fingerprint = Fingerprint(graph);
  entry.graph = std::make_shared<const DataGraph>(std::move(graph));
  std::lock_guard<std::mutex> lock(mutex_);
  graphs_[name] = entry;
  return entry;
}

Result<RegisteredGraph> GraphRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("no graph named '" + name +
                            "' is loaded (use the load command first)");
  }
  return it->second;
}

std::vector<std::string> GraphRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(graphs_.size());
  for (const auto& [name, entry] : graphs_) {
    names.push_back(name);
  }
  return names;
}

std::size_t GraphRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return graphs_.size();
}

std::string GraphRegistry::Fingerprint(const DataGraph& graph) {
  std::string canonical = WriteGraphText(graph);
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
  for (unsigned char c : canonical) {
    hash ^= c;
    hash *= 0x100000001b3ULL;  // FNV prime
  }
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(buffer);
}

}  // namespace gqd
