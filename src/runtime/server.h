// A newline-delimited JSON TCP server wrapping a LineHandler.
//
// Plain POSIX sockets, one thread per connection: the protocol work is
// query evaluation (milliseconds and up), so connection-handling overhead
// is irrelevant and the obvious threading model wins. Batch parallelism
// comes from the service's worker pool, not from connection count.
//
// Lifecycle: Start() binds and spawns the accept loop (port 0 picks an
// ephemeral port — tests use this to avoid collisions); Stop() (or a
// client's shutdown command) closes the listen socket, wakes the accept
// loop, closes live connections and joins every thread. Wait() blocks
// until the server stops.

#ifndef GQD_RUNTIME_SERVER_H_
#define GQD_RUNTIME_SERVER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "runtime/line_handler.h"

namespace gqd {

struct ServerOptions {
  /// Maximum bytes buffered for a single request line. A connection whose
  /// unterminated line exceeds this receives a structured
  /// `request_too_large` error and is closed — an unframed client cannot
  /// grow server memory without bound.
  std::size_t max_line_bytes = 1 << 20;
};

class Server {
 public:
  /// The handler must outlive the server. Any LineHandler works here:
  /// QueryService for a single-process worker, cluster::Router for a
  /// routing front.
  explicit Server(LineHandler* handler, const ServerOptions& options = {})
      : handler_(handler), options_(options) {}
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts accepting.
  Status Start(std::uint16_t port);

  /// The bound port (useful after Start(0)).
  std::uint16_t port() const { return port_; }

  /// Blocks until the server has stopped (via Stop() or a shutdown
  /// request).
  void Wait();

  /// Idempotent; safe to call from any thread.
  void Stop();

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  LineHandler* handler_;
  ServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex connections_mutex_;
  std::vector<std::thread> connection_threads_;
  std::vector<int> connection_fds_;  ///< open fds, for Stop() to close
};

}  // namespace gqd

#endif  // GQD_RUNTIME_SERVER_H_
