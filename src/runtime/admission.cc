#include "runtime/admission.h"

namespace gqd {

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->Release();
    controller_ = nullptr;
  }
}

Result<AdmissionController::Ticket> AdmissionController::Admit() {
  if (!enabled()) {
    return Ticket();  // admission disabled: an empty ticket, nothing held
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (active_ < options_.max_concurrent) {
    active_++;
    admitted_++;
    return Ticket(this);
  }
  if (waiting_ >= options_.max_queue) {
    shed_++;
    return Status::Unavailable(
        "server overloaded: " + std::to_string(active_) + " active and " +
        std::to_string(waiting_) + " queued requests; retry later");
  }
  waiting_++;
  slot_freed_.wait(lock, [this] { return active_ < options_.max_concurrent; });
  waiting_--;
  active_++;
  admitted_++;
  queued_++;
  return Ticket(this);
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    active_--;
  }
  slot_freed_.notify_one();
}

AdmissionStats AdmissionController::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  AdmissionStats stats;
  stats.admitted = admitted_;
  stats.queued = queued_;
  stats.shed = shed_;
  stats.active = active_;
  stats.waiting = waiting_;
  return stats;
}

}  // namespace gqd
