#include "runtime/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "common/failpoint.h"

namespace gqd {

namespace {

// Socket faults are connection-local: a fired failpoint fails (and closes)
// the one connection it hit, never the server. The accept loop and every
// other connection keep running.
GQD_FAILPOINT_DEFINE(fp_server_accept, "server.accept");
GQD_FAILPOINT_DEFINE(fp_server_read, "server.read");
GQD_FAILPOINT_DEFINE(fp_server_write, "server.write");

}  // namespace

Server::~Server() {
  Stop();
  Wait();
}

Status Server::Start(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status =
        Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) < 0) {
    Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    Status status =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) {
        return;  // Stop() closed the listen socket under us
      }
      if (errno == EINTR || errno == ECONNABORTED) {
        continue;
      }
      return;  // unrecoverable accept failure; shut the loop down
    }
    if (GQD_FAILPOINT_FIRED(fp_server_accept)) {
      // Simulated post-accept failure (e.g. EMFILE when duping the fd):
      // drop this connection, keep accepting.
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(connections_mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void Server::ServeConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  // Writes one full response; false means the connection is dead (peer
  // gone, Stop() closed the fd, or an injected write fault).
  auto write_all = [fd](const std::string& data) {
    if (GQD_FAILPOINT_FIRED(fp_server_write)) {
      return false;
    }
    std::size_t written = 0;
    while (written < data.size()) {
      // MSG_NOSIGNAL: a client that vanished mid-response is this
      // connection's problem, not a process-wide SIGPIPE.
      ssize_t w = ::send(fd, data.data() + written, data.size() - written,
                         MSG_NOSIGNAL);
      if (w <= 0) {
        return false;
      }
      written += static_cast<std::size_t>(w);
    }
    return true;
  };
  while (open && !stopping_.load(std::memory_order_acquire)) {
    if (GQD_FAILPOINT_FIRED(fp_server_read)) {
      break;  // injected read fault: drop this connection only
    }
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      break;  // peer closed, error, or Stop() closed the fd
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while (open && (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) {
        continue;  // tolerate blank lines (e.g. \r\n keepalives)
      }
      bool shutdown = false;
      std::string response = handler_->HandleLine(line, &shutdown);
      response += '\n';
      if (!write_all(response)) {
        open = false;
      }
      if (shutdown) {
        // Response is flushed; take the whole server down. Stop() never
        // joins, so calling it from a connection thread cannot deadlock,
        // and running it synchronously keeps it inside this thread's
        // lifetime (Wait() joins us before the Server is destroyed).
        Stop();
        open = false;
      }
    }
    if (open && buffer.size() > options_.max_line_bytes) {
      // An unterminated request line has outgrown the bound. Report the
      // limit (framing is lost, so the connection cannot be salvaged) and
      // close.
      write_all(
          "{\"ok\":false,\"error\":{\"code\":\"request_too_large\","
          "\"message\":\"request line exceeds " +
          std::to_string(options_.max_line_bytes) + "-byte limit\"}}\n");
      break;
    }
  }
  ::shutdown(fd, SHUT_RDWR);
  // The fd itself is closed by Stop() (it owns connection_fds_) unless the
  // connection ended first; closing here would race Stop()'s close on a
  // reused descriptor, so hand ownership back instead.
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (std::size_t i = 0; i < connection_fds_.size(); i++) {
    if (connection_fds_[i] == fd) {
      connection_fds_.erase(connection_fds_.begin() + i);
      ::close(fd);
      break;
    }
  }
}

void Server::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (int fd : connection_fds_) {
    ::shutdown(fd, SHUT_RDWR);
  }
}

void Server::Wait() {
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // After the accept loop exits no new threads are created; join the rest.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    threads.swap(connection_threads_);
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (int fd : connection_fds_) {
    ::close(fd);
  }
  connection_fds_.clear();
}

}  // namespace gqd
