#include "runtime/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace gqd {

Server::~Server() {
  Stop();
  Wait();
}

Status Server::Start(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status =
        Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) < 0) {
    Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    Status status =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) {
        return;  // Stop() closed the listen socket under us
      }
      if (errno == EINTR || errno == ECONNABORTED) {
        continue;
      }
      return;  // unrecoverable accept failure; shut the loop down
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(connections_mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void Server::ServeConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !stopping_.load(std::memory_order_acquire)) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      break;  // peer closed, error, or Stop() closed the fd
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while (open && (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) {
        continue;  // tolerate blank lines (e.g. \r\n keepalives)
      }
      bool shutdown = false;
      std::string response = service_->HandleLine(line, &shutdown);
      response += '\n';
      std::size_t written = 0;
      while (written < response.size()) {
        ssize_t w = ::write(fd, response.data() + written,
                            response.size() - written);
        if (w <= 0) {
          open = false;
          break;
        }
        written += static_cast<std::size_t>(w);
      }
      if (shutdown) {
        // Response is flushed; take the whole server down. Stop() never
        // joins, so calling it from a connection thread cannot deadlock,
        // and running it synchronously keeps it inside this thread's
        // lifetime (Wait() joins us before the Server is destroyed).
        Stop();
        open = false;
      }
    }
  }
  ::shutdown(fd, SHUT_RDWR);
  // The fd itself is closed by Stop() (it owns connection_fds_) unless the
  // connection ended first; closing here would race Stop()'s close on a
  // reused descriptor, so hand ownership back instead.
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (std::size_t i = 0; i < connection_fds_.size(); i++) {
    if (connection_fds_[i] == fd) {
      connection_fds_.erase(connection_fds_.begin() + i);
      ::close(fd);
      break;
    }
  }
}

void Server::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (int fd : connection_fds_) {
    ::shutdown(fd, SHUT_RDWR);
  }
}

void Server::Wait() {
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // After the accept loop exits no new threads are created; join the rest.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    threads.swap(connection_threads_);
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (int fd : connection_fds_) {
    ::close(fd);
  }
  connection_fds_.clear();
}

}  // namespace gqd
