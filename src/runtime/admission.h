// Bounded admission for heavyweight service commands.
//
// The serving runtime is thread-per-connection, so without a gate an
// overload burst turns into unbounded concurrent query evaluation: every
// connection dives into the checker or evaluator at once and the process
// thrashes or OOMs. AdmissionController caps concurrent admitted work and
// bounds the line of waiters behind it; anything beyond both caps is shed
// immediately with `Status::Unavailable`, which the protocol layer turns
// into an `overloaded` response carrying a retry_after_ms hint. Clients
// retry with backoff (LineClient::CallWithRetry) — the system degrades to
// higher latency instead of falling over.
//
// Cheap commands (ping, stats, shutdown, info) bypass admission entirely,
// so health checks and operator introspection still work under full load.

#ifndef GQD_RUNTIME_ADMISSION_H_
#define GQD_RUNTIME_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/status.h"

namespace gqd {

struct AdmissionOptions {
  /// Requests evaluated concurrently; 0 disables admission control
  /// entirely (every Admit succeeds immediately).
  std::size_t max_concurrent = 0;
  /// Requests allowed to wait for a slot before newcomers are shed.
  std::size_t max_queue = 16;
  /// Backoff hint attached to shed responses.
  std::int64_t retry_after_ms = 50;
};

/// Counters for ServerStats; a point-in-time snapshot.
struct AdmissionStats {
  std::uint64_t admitted = 0;  ///< requests that got a slot
  std::uint64_t queued = 0;    ///< admitted requests that had to wait first
  std::uint64_t shed = 0;      ///< requests rejected with Unavailable
  std::size_t active = 0;      ///< slots currently held
  std::size_t waiting = 0;     ///< requests currently queued
};

class AdmissionController {
 public:
  /// RAII admission slot: releasing (destruction or Release()) wakes one
  /// waiter. A default-constructed ticket holds nothing.
  class Ticket {
   public:
    Ticket() = default;
    explicit Ticket(AdmissionController* controller)
        : controller_(controller) {}
    ~Ticket() { Release(); }
    Ticket(Ticket&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    void Release();

   private:
    AdmissionController* controller_ = nullptr;
  };

  explicit AdmissionController(const AdmissionOptions& options)
      : options_(options) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Blocks until a slot frees up (if the wait line has room), then
  /// returns the held slot. Sheds with `Status::Unavailable` when
  /// max_queue requests are already waiting.
  Result<Ticket> Admit();

  bool enabled() const { return options_.max_concurrent > 0; }
  std::int64_t retry_after_ms() const { return options_.retry_after_ms; }

  AdmissionStats GetStats() const;

 private:
  void Release();

  AdmissionOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable slot_freed_;
  std::size_t active_ = 0;   ///< guarded by mutex_
  std::size_t waiting_ = 0;  ///< guarded by mutex_
  std::uint64_t admitted_ = 0;
  std::uint64_t queued_ = 0;
  std::uint64_t shed_ = 0;
};

}  // namespace gqd

#endif  // GQD_RUNTIME_ADMISSION_H_
