#include "runtime/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gqd {

LineClient::~LineClient() { Close(); }

Status LineClient::Connect(std::uint16_t port) {
  Close();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status =
        Status::IOError(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::OK();
}

Result<std::string> LineClient::Call(const std::string& line) {
  if (fd_ < 0) {
    return Status::IOError("not connected");
  }
  std::string framed = line;
  framed += '\n';
  std::size_t written = 0;
  while (written < framed.size()) {
    ssize_t w = ::write(fd_, framed.data() + written,
                        framed.size() - written);
    if (w <= 0) {
      return Status::IOError(std::string("write: ") + std::strerror(errno));
    }
    written += static_cast<std::size_t>(w);
  }
  char chunk[4096];
  while (true) {
    std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string response = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return response;
    }
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n <= 0) {
      return Status::IOError("connection closed before a response arrived");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void LineClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace gqd
