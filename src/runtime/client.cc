#include "runtime/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <random>
#include <thread>

#include "common/failpoint.h"
#include "runtime/json.h"

namespace gqd {

namespace {

// Client-side transport faults, for exercising the retry path without a
// flaky network: a fired site fails the operation exactly as a broken
// socket would, and CallWithRetry must recover.
GQD_FAILPOINT_DEFINE(fp_client_connect, "client.connect");
GQD_FAILPOINT_DEFINE(fp_client_read, "client.read");
GQD_FAILPOINT_DEFINE(fp_client_write, "client.write");

/// True when `response` is a protocol-level load-shed error. Sets
/// *retry_after_ms from the server's hint when one is present.
bool IsOverloadResponse(const std::string& response,
                        std::int64_t* retry_after_ms) {
  auto parsed = JsonValue::Parse(response);
  if (!parsed.ok() || !parsed.value().is_object()) {
    return false;
  }
  const JsonValue* ok = parsed.value().Find("ok");
  if (ok == nullptr || !ok->is_bool() || ok->AsBool()) {
    return false;
  }
  const JsonValue* error = parsed.value().Find("error");
  if (error == nullptr || !error->is_object()) {
    return false;
  }
  const JsonValue* code = error->Find("code");
  if (code == nullptr || !code->is_string() ||
      code->AsString() != "Unavailable") {
    return false;
  }
  const JsonValue* hint = error->Find("retry_after_ms");
  if (hint != nullptr && hint->is_number() && hint->AsNumber() >= 0) {
    *retry_after_ms = static_cast<std::int64_t>(hint->AsNumber());
  }
  return true;
}

}  // namespace

LineClient::~LineClient() { Close(); }

Status LineClient::Connect(std::uint16_t port) {
  Close();
  port_ = port;
  if (GQD_FAILPOINT_FIRED(fp_client_connect)) {
    return Status::IOError(
        "injected connect failure (failpoint client.connect)");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status =
        Status::IOError(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::OK();
}

Result<std::string> LineClient::Call(const std::string& line) {
  if (fd_ < 0) {
    return Status::IOError("not connected");
  }
  if (GQD_FAILPOINT_FIRED(fp_client_write)) {
    // A write fault leaves the stream in an unknown state; drop the
    // connection so a retry starts from a clean one.
    Close();
    return Status::IOError("injected write failure (failpoint client.write)");
  }
  std::string framed = line;
  framed += '\n';
  std::size_t written = 0;
  while (written < framed.size()) {
    // MSG_NOSIGNAL: a worker killed mid-conversation must surface as an
    // IOError the caller can fail over from, not a process-wide SIGPIPE.
    ssize_t w = ::send(fd_, framed.data() + written,
                       framed.size() - written, MSG_NOSIGNAL);
    if (w <= 0) {
      return Status::IOError(std::string("write: ") + std::strerror(errno));
    }
    written += static_cast<std::size_t>(w);
  }
  char chunk[4096];
  while (true) {
    std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string response = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return response;
    }
    if (GQD_FAILPOINT_FIRED(fp_client_read)) {
      Close();
      return Status::IOError("injected read failure (failpoint client.read)");
    }
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n <= 0) {
      return Status::IOError("connection closed before a response arrived");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Result<std::string> LineClient::CallWithRetry(const std::string& line,
                                              const RetryPolicy& policy) {
  std::mt19937_64 rng(policy.jitter_seed);
  int attempts = std::max(policy.max_attempts, 1);
  Result<std::string> last(Status::IOError("no attempts made"));
  for (int attempt = 0; attempt < attempts; attempt++) {
    if (attempt > 0) {
      retries_++;
    }
    if (!connected()) {
      Status status = Connect(port_);
      last = status.ok() ? Call(line) : Result<std::string>(status);
    } else {
      last = Call(line);
    }
    std::int64_t retry_after_ms = -1;
    if (last.ok() && !IsOverloadResponse(last.value(), &retry_after_ms)) {
      return last;  // success, or a non-retryable protocol error
    }
    if (!last.ok()) {
      // Transport failure: the stream state is unknown, reconnect fresh.
      Close();
    }
    if (attempt + 1 == attempts) {
      break;
    }
    std::chrono::milliseconds backoff{};
    if (retry_after_ms >= 0) {
      // The server told us when it expects capacity; honour that schedule
      // (it may be shorter than the exponential one — an overloaded server
      // draining a burst wants the retry soon, not in 2^i * initial).
      // Keep up to 50% jitter so a shed burst does not retry in lockstep.
      backoff = std::chrono::milliseconds(retry_after_ms);
    } else {
      backoff = policy.initial_backoff * (std::int64_t{1} << attempt);
      backoff =
          std::min<std::chrono::milliseconds>(backoff, policy.max_backoff);
    }
    if (backoff.count() > 0) {
      backoff += std::chrono::milliseconds(static_cast<std::int64_t>(
          rng() % static_cast<std::uint64_t>(backoff.count() / 2 + 1)));
    }
    if (backoff.count() > 0) {
      std::this_thread::sleep_for(backoff);
    }
  }
  if (last.ok()) {
    // Every attempt was shed; surface that as a structured status rather
    // than handing the caller a response they would retry themselves.
    return Status::Unavailable("server overloaded after " +
                               std::to_string(attempts) + " attempts");
  }
  return last;
}

void LineClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace gqd
