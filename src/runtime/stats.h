// Aggregated service counters exported by the `stats` and `metrics`
// commands.
//
// ServerStats records one observation per handled request: the command
// name, whether it succeeded, and its wall latency. Since the
// observability subsystem landed, the counters live in a MetricsRegistry
// (src/obs/metrics.h) rather than ad-hoc fields: request totals are
// counters, latencies land in log2-microsecond histograms — one global
// and one per command, so the report can quote p50/p99 per command — and
// budget exhaustion is recorded per axis (bytes vs tuples vs wall).
//
// Two export formats: ToJson() keeps the historical `stats` JSON shape
// (plus the per-command percentiles and per-axis budget counters), and
// RenderPrometheus() emits the full registry — including pool / cache /
// admission snapshots mirrored into gauges and every failpoint site — in
// Prometheus text exposition format.

#ifndef GQD_RUNTIME_STATS_H_
#define GQD_RUNTIME_STATS_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/budget.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "runtime/admission.h"
#include "runtime/result_cache.h"

namespace gqd {

class ServerStats {
 public:
  static constexpr std::size_t kNumLatencyBuckets = Histogram::kNumBuckets;

  ServerStats();
  ServerStats(const ServerStats&) = delete;
  ServerStats& operator=(const ServerStats&) = delete;

  /// Records one completed request. `code` classifies degraded outcomes:
  /// kUnavailable counts as shed, kResourceExhausted as budget-exhausted,
  /// kDeadlineExceeded (which also covers cancellation) as
  /// deadline-exceeded. Any other code (including kOk) only feeds the
  /// ok/error totals.
  void Record(const std::string& command, bool ok,
              std::chrono::nanoseconds latency,
              StatusCode code = StatusCode::kOk);

  /// Attributes one budget exhaustion to the axis that tripped
  /// (`gqd_budget_exhausted_total{axis=...}`). kNone is ignored.
  void RecordBudgetAxis(BudgetAxis axis);

  std::uint64_t total_requests() const;
  std::uint64_t shed_requests() const;

  /// The registry backing these counters; request-path instruments live
  /// here permanently, snapshot mirrors are refreshed by the exporters.
  MetricsRegistry* registry() { return &registry_; }

  /// One JSON object combining request counters, the latency histograms
  /// (global buckets plus per-command p50/p99), and the supplied
  /// pool/cache/admission snapshots.
  std::string ToJson(const ThreadPool::Stats& pool,
                     const ResultCache::Stats& cache,
                     const AdmissionStats& admission = {}) const;

  /// Prometheus text exposition of the whole registry, with the supplied
  /// pool/cache/admission snapshots mirrored into gauges/counters and
  /// every registered failpoint site exported.
  std::string RenderPrometheus(const ThreadPool::Stats& pool,
                               const ResultCache::Stats& cache,
                               const AdmissionStats& admission = {});

 private:
  struct PerCommand {
    Counter* requests = nullptr;
    Histogram* latency_us = nullptr;
  };

  PerCommand* PerCommandEntry(const std::string& command);
  void MirrorSnapshots(const ThreadPool::Stats& pool,
                       const ResultCache::Stats& cache,
                       const AdmissionStats& admission);

  MetricsRegistry registry_;

  // Request-path instruments, resolved once at construction.
  Counter* requests_;
  Counter* errors_;
  Counter* shed_;
  Counter* resource_exhausted_;
  Counter* deadline_exceeded_;
  Counter* budget_axis_[3];  ///< bytes, tuples, wall
  Histogram* latency_us_;

  mutable std::mutex mutex_;  ///< guards per_command_ map shape only
  std::map<std::string, PerCommand> per_command_;
};

}  // namespace gqd

#endif  // GQD_RUNTIME_STATS_H_
