// Aggregated service counters exported by the `stats` command.
//
// ServerStats records one observation per handled request: the command
// name, whether it succeeded, and its wall latency. Latencies land in
// log2-microsecond histogram buckets (1µs, 2µs, 4µs, ... ~4s, +overflow) —
// coarse, cheap, and enough to read p50/p99 off the report. A snapshot
// serializes to JSON together with pool and cache stats supplied by the
// caller.

#ifndef GQD_RUNTIME_STATS_H_
#define GQD_RUNTIME_STATS_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"
#include "common/thread_pool.h"
#include "runtime/admission.h"
#include "runtime/result_cache.h"

namespace gqd {

class ServerStats {
 public:
  static constexpr std::size_t kNumLatencyBuckets = 23;  // 1µs .. ~4s

  ServerStats() = default;
  ServerStats(const ServerStats&) = delete;
  ServerStats& operator=(const ServerStats&) = delete;

  /// Records one completed request. `code` classifies degraded outcomes:
  /// kUnavailable counts as shed, kResourceExhausted as budget-exhausted,
  /// kDeadlineExceeded (which also covers cancellation) as
  /// deadline-exceeded. Any other code (including kOk) only feeds the
  /// ok/error totals.
  void Record(const std::string& command, bool ok,
              std::chrono::nanoseconds latency,
              StatusCode code = StatusCode::kOk);

  std::uint64_t total_requests() const;
  std::uint64_t shed_requests() const;

  /// One JSON object combining request counters, the latency histogram,
  /// and the supplied pool/cache/admission snapshots.
  std::string ToJson(const ThreadPool::Stats& pool,
                     const ResultCache::Stats& cache,
                     const AdmissionStats& admission = {}) const;

 private:
  mutable std::mutex mutex_;
  std::uint64_t requests_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t shed_ = 0;               ///< rejected by admission control
  std::uint64_t resource_exhausted_ = 0; ///< budget-capped requests
  std::uint64_t deadline_exceeded_ = 0;  ///< deadline/cancel terminations
  std::map<std::string, std::uint64_t> per_command_;
  std::uint64_t latency_buckets_[kNumLatencyBuckets] = {};
  std::uint64_t total_latency_us_ = 0;
};

}  // namespace gqd

#endif  // GQD_RUNTIME_STATS_H_
