#include "runtime/service.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "analysis/pass_manager.h"
#include "definability/krem_definability.h"
#include "definability/ree_definability.h"
#include "definability/rpq_definability.h"
#include "definability/ucrdpq_definability.h"
#include "eval/eval_options.h"
#include "eval/ree_eval.h"
#include "eval/rem_eval.h"
#include "eval/rpq_eval.h"
#include "graph/serialization.h"
#include "graph/sparse_relation.h"
#include "obs/export.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "storage/metrics.h"
#include "ree/parser.h"
#include "regex/parser.h"
#include "rem/parser.h"

namespace gqd {

namespace {

/// Embeds a JSON string another module already serialized (diagnostics,
/// graph info, stats) into a JsonValue tree. Our own output always parses.
JsonValue EmbedJson(const std::string& serialized) {
  return JsonValue::Parse(serialized).ValueOrDie();
}

/// The per-graph storage block attached to load/info responses: which
/// backend holds the graph and what loading it cost.
JsonValue StorageInfoToJson(const GraphStoreInfo& info) {
  JsonValue::Object storage;
  storage.emplace_back("backend", GraphBackendName(info.backend));
  storage.emplace_back("source_bytes",
                       static_cast<double>(info.source_bytes));
  storage.emplace_back("resident_bytes",
                       static_cast<double>(info.resident_bytes));
  storage.emplace_back("load_micros", static_cast<double>(info.load_micros));
  return JsonValue(std::move(storage));
}

/// Reads "deadline_ms" (0 = no deadline). CancelToken itself is pinned in
/// place (atomic member), so the caller emplaces it locally from this.
Result<std::int64_t> DeadlineMsFrom(const JsonValue& request) {
  GQD_ASSIGN_OR_RETURN(std::int64_t deadline_ms,
                       request.GetIntOr("deadline_ms", 0));
  if (deadline_ms < 0) {
    return Status::InvalidArgument("deadline_ms must be non-negative");
  }
  return deadline_ms;
}

/// `retry_after_ms` >= 0 adds a backoff hint to the error object (used for
/// Unavailable / load-shed responses).
JsonValue ErrorResponse(const JsonValue* id, const Status& status,
                        std::int64_t retry_after_ms = -1) {
  JsonValue::Object error;
  error.emplace_back("code", std::string(StatusCodeToString(status.code())));
  error.emplace_back("message", status.message());
  if (retry_after_ms >= 0) {
    error.emplace_back("retry_after_ms",
                       static_cast<double>(retry_after_ms));
  }
  JsonValue::Object response;
  if (id != nullptr) {
    response.emplace_back("id", *id);
  }
  response.emplace_back("ok", false);
  response.emplace_back("error", JsonValue(std::move(error)));
  return JsonValue(std::move(response));
}

/// Reads the optional per-request resource budget ("max_bytes",
/// "max_tuples"; 0 = unlimited) into `*budget`; leaves it empty when
/// neither cap is set.
Status BudgetFrom(const JsonValue& request,
                  std::optional<ResourceBudget>* budget) {
  GQD_ASSIGN_OR_RETURN(std::int64_t max_bytes,
                       request.GetIntOr("max_bytes", 0));
  GQD_ASSIGN_OR_RETURN(std::int64_t max_tuples,
                       request.GetIntOr("max_tuples", 0));
  if (max_bytes < 0 || max_tuples < 0) {
    return Status::InvalidArgument(
        "max_bytes and max_tuples must be non-negative");
  }
  if (max_bytes > 0 || max_tuples > 0) {
    budget->emplace(static_cast<std::uint64_t>(max_bytes),
                    static_cast<std::uint64_t>(max_tuples));
  }
  return Status::OK();
}

/// Serializes a checker's PartialProgress into response JSON, so budget
/// exhaustion reports how far the search got.
void EmplacePartial(JsonValue::Object* body,
                    const std::optional<PartialProgress>& partial) {
  if (!partial.has_value()) {
    return;
  }
  JsonValue::Object progress;
  progress.emplace_back("stage", partial->stage);
  progress.emplace_back("tuples_explored",
                        static_cast<double>(partial->tuples_explored));
  progress.emplace_back("frontier_depth",
                        static_cast<double>(partial->frontier_depth));
  progress.emplace_back("bytes_peak",
                        static_cast<double>(partial->bytes_peak));
  body->emplace_back("partial", JsonValue(std::move(progress)));
}

/// Scope guard attributing a request's budget exhaustion to the axis that
/// tripped (bytes vs tuples vs wall). Fires on every return path of a
/// handler — budget trips surface both as error statuses (eval) and as
/// kBudgetExhausted verdicts (check), and this catches both.
class BudgetAxisRecorder {
 public:
  BudgetAxisRecorder(ServerStats* stats,
                     const std::optional<ResourceBudget>* budget)
      : stats_(stats), budget_(budget) {}
  ~BudgetAxisRecorder() {
    if (budget_->has_value()) {
      BudgetAxis axis = (*budget_)->TrippedAxis();
      stats_->RecordBudgetAxis(axis);
      if (axis != BudgetAxis::kNone) {
        EventLog::Global().Emit(LogLevel::kWarn, "serve", "budget_exhausted",
                               {{"axis", BudgetAxisName(axis)}});
      }
    }
  }
  BudgetAxisRecorder(const BudgetAxisRecorder&) = delete;
  BudgetAxisRecorder& operator=(const BudgetAxisRecorder&) = delete;

 private:
  ServerStats* stats_;
  const std::optional<ResourceBudget>* budget_;
};

}  // namespace

QueryService::QueryService(const ServiceOptions& options)
    : pool_(options.num_threads),
      cache_(options.cache_capacity),
      admission_(options.admission) {}

std::string QueryService::HandleLine(const std::string& line,
                                     bool* shutdown) {
  auto start = std::chrono::steady_clock::now();
  std::string command = "invalid";
  StatusCode code = StatusCode::kOk;
  JsonValue response;
  auto parsed = JsonValue::Parse(line);
  if (!parsed.ok()) {
    code = parsed.status().code();
    response = ErrorResponse(nullptr, parsed.status());
  } else if (!parsed.value().is_object()) {
    code = StatusCode::kInvalidArgument;
    response = ErrorResponse(
        nullptr, Status::InvalidArgument("request must be a JSON object"));
  } else {
    const JsonValue& request = parsed.value();
    const JsonValue* id = request.Find("id");
    auto cmd = request.GetString("cmd");
    if (cmd.ok()) {
      command = cmd.value();
    }
    auto result = Dispatch(request, shutdown);
    if (!result.ok()) {
      code = result.status().code();
      response = ErrorResponse(id, result.status(),
                               code == StatusCode::kUnavailable
                                   ? admission_.retry_after_ms()
                                   : -1);
    } else {
      JsonValue::Object body;
      if (id != nullptr) {
        body.emplace_back("id", *id);
      }
      body.emplace_back("ok", true);
      for (auto& [key, value] : result.value().AsObject()) {
        body.emplace_back(key, value);
      }
      response = JsonValue(std::move(body));
    }
  }
  bool ok = true;
  if (const JsonValue* ok_field = response.Find("ok")) {
    ok = ok_field->AsBool();
  }
  stats_.Record(command, ok, std::chrono::steady_clock::now() - start, code);
  return response.Serialize();
}

Result<JsonValue> QueryService::Dispatch(const JsonValue& request,
                                         bool* shutdown) {
  GQD_ASSIGN_OR_RETURN(std::string cmd, request.GetString("cmd"));
  const JsonValue* trace_field = request.Find("trace");
  // A string "trace" is a propagated TraceContext from an upstream router
  // ("spans" excepted: there the field names which trace to drain). Spans
  // are recorded into the process-wide collector, stamped with the remote
  // trace id and parented under the remote span, and held until the
  // router's `spans` drain. Garbage contexts degrade to untraced —
  // diagnostics must never fail a request.
  if (trace_field != nullptr && trace_field->is_string() && cmd != "spans") {
    TraceContext context;
    if (!TraceContext::FromTraceparent(trace_field->AsString(), &context)) {
      return DispatchCommand(cmd, request, shutdown);
    }
    Result<JsonValue> result = JsonValue();
    {
      Tracer::Scope scope(collector_.tracer());
      TraceBindingScope binding(context.binding());
      GQD_TRACE_SPAN(span, "serve.request");
      result = DispatchCommand(cmd, request, shutdown);
    }
    if (!result.ok()) {
      return result;
    }
    JsonValue::Object body = result.value().AsObject();
    body.emplace_back("trace_id", context.TraceIdHex());
    return JsonValue(std::move(body));
  }
  bool want_trace = trace_field != nullptr && trace_field->is_bool() &&
                    trace_field->AsBool();
  if (!want_trace) {
    return DispatchCommand(cmd, request, shutdown);
  }
  // `"trace": true` — a direct client asking for the span tree inline.
  // Per-request tracer, installed before the admission gate so the wait
  // for a slot shows up in the trace. Drained after the handler returns;
  // the span tree rides back on the success response. A minted context
  // gives the request a trace id so log events emitted while serving it
  // correlate even without a router upstream.
  TraceContext context = TraceContext::Mint();
  Tracer tracer;
  Result<JsonValue> result = JsonValue();
  {
    Tracer::Scope scope(&tracer);
    TraceBindingScope binding(context.binding());
    GQD_TRACE_SPAN(span, "serve.request");
    result = DispatchCommand(cmd, request, shutdown);
  }
  if (!result.ok()) {
    return result;
  }
  JsonValue::Object body = result.value().AsObject();
  body.emplace_back("trace", EmbedJson(SpanTreeToJson(tracer.Drain().spans)));
  body.emplace_back("trace_id", context.TraceIdHex());
  return JsonValue(std::move(body));
}

Result<JsonValue> QueryService::DispatchCommand(const std::string& cmd,
                                                const JsonValue& request,
                                                bool* shutdown) {
  // Heavy commands pass the admission gate (and hold their slot for the
  // whole request); cheap ones below bypass it so health checks and
  // operator introspection keep working under overload.
  if (cmd == "load" || cmd == "eval" || cmd == "check" || cmd == "lint") {
    std::optional<AdmissionController::Ticket> ticket;
    {
      GQD_TRACE_SPAN(span, "serve.admission");
      auto admitted = admission_.Admit();
      if (!admitted.ok()) {
        EventLog::Global().Emit(LogLevel::kWarn, "serve", "admission_shed",
                                {{"cmd", cmd}});
        return admitted.status();
      }
      ticket.emplace(std::move(admitted).value());
    }
    GQD_TRACE_SPAN(span, "serve.handler");
    if (cmd == "load") {
      return HandleLoad(request);
    }
    if (cmd == "eval") {
      return HandleEval(request);
    }
    if (cmd == "check") {
      return HandleCheck(request);
    }
    return HandleLint(request);
  }
  if (cmd == "ping") {
    JsonValue::Object body;
    body.emplace_back("pong", true);
    return JsonValue(std::move(body));
  }
  if (cmd == "info") {
    return HandleInfo(request);
  }
  if (cmd == "stats") {
    return HandleStats();
  }
  if (cmd == "metrics") {
    return HandleMetrics();
  }
  if (cmd == "spans") {
    return HandleSpans(request);
  }
  if (cmd == "log") {
    return HandleLog(request);
  }
  if (cmd == "shutdown") {
    if (shutdown != nullptr) {
      *shutdown = true;
    }
    JsonValue::Object body;
    body.emplace_back("shutting_down", true);
    return JsonValue(std::move(body));
  }
  return Status::InvalidArgument(
      "unknown command '" + cmd +
      "' (expected load, eval, check, lint, info, ping, stats, metrics, "
      "spans, log or shutdown)");
}

Result<JsonValue> QueryService::HandleLoad(const JsonValue& request) {
  GQD_ASSIGN_OR_RETURN(std::string name, request.GetString("name"));
  const JsonValue* text = request.Find("text");
  const JsonValue* path = request.Find("path");
  if ((text != nullptr) == (path != nullptr)) {
    return Status::InvalidArgument(
        "load takes exactly one of 'text' (inline graph) or 'path' (an "
        "on-disk text or container file)");
  }
  RegisteredGraph entry;
  if (text != nullptr) {
    if (!text->is_string()) {
      return Status::InvalidArgument("field 'text' must be a string");
    }
    GQD_ASSIGN_OR_RETURN(entry, registry_.Load(name, text->AsString()));
  } else {
    if (!path->is_string()) {
      return Status::InvalidArgument("field 'path' must be a string");
    }
    // A worker maps (or parses) the file itself: the client ships a path,
    // not megabytes of graph text, and a container attaches zero-copy.
    GQD_ASSIGN_OR_RETURN(entry, registry_.LoadFile(name, path->AsString()));
  }
  EventLog::Global().Emit(
      LogLevel::kInfo, "serve", "graph_load",
      {{"graph", name},
       {"fingerprint", entry.fingerprint},
       {"backend", GraphBackendName(entry.info.backend)},
       {"load_micros", std::to_string(entry.info.load_micros)}});
  JsonValue::Object body;
  body.emplace_back("name", name);
  body.emplace_back("fingerprint", entry.fingerprint);
  body.emplace_back("storage", StorageInfoToJson(entry.info));
  body.emplace_back("info", EmbedJson(WriteGraphInfoJson(*entry.graph)));
  return JsonValue(std::move(body));
}

Result<JsonValue> QueryService::EvalOne(const RegisteredGraph& entry,
                                        const std::string& language,
                                        const std::string& query,
                                        const CancelToken* cancel,
                                        const ResourceBudget* budget) {
  const DataGraph& graph = *entry.graph;
  auto cache_get = [this](const std::string& key) {
    GQD_TRACE_SPAN(span, "serve.cache_lookup");
    std::shared_ptr<const BinaryRelation> found = cache_.Get(key);
    GQD_TRACE_SPAN_ATTR(span, "hit", found != nullptr ? 1 : 0);
    return found;
  };
  // Normalize: parse, then canonical-print, so formatting differences
  // ("a . b" vs "a.b") share one cache entry.
  std::string normalized;
  std::shared_ptr<const BinaryRelation> relation;
  EvalOptions eval_options;
  eval_options.cancel = cancel;
  eval_options.budget = budget;
  if (language == "rpq" || language == "regex") {
    GQD_ASSIGN_OR_RETURN(RegexPtr expression, ParseRegex(query));
    normalized = RegexToString(expression);
    std::string key =
        ResultCache::MakeKey(entry.fingerprint, "rpq", normalized);
    relation = cache_get(key);
    if (relation == nullptr) {
      GQD_ASSIGN_OR_RETURN(BinaryRelation computed,
                           EvaluateRpq(graph, expression, eval_options));
      relation =
          std::make_shared<const BinaryRelation>(std::move(computed));
      cache_.Put(key, relation);
    }
  } else if (language == "rem") {
    GQD_ASSIGN_OR_RETURN(RemPtr expression, ParseRem(query));
    normalized = RemToString(expression);
    std::string key =
        ResultCache::MakeKey(entry.fingerprint, "rem", normalized);
    relation = cache_get(key);
    if (relation == nullptr) {
      // The cached QueryPlan carries the plan-pruned automaton; the BFS
      // runs on it directly, skipping re-compile + re-analysis.
      std::shared_ptr<const QueryPlan> plan =
          GetOrBuildRemPlan(entry, normalized, expression);
      GQD_ASSIGN_OR_RETURN(
          BinaryRelation computed,
          EvaluateRemAutomaton(graph, plan->automaton, eval_options));
      relation =
          std::make_shared<const BinaryRelation>(std::move(computed));
      cache_.Put(key, relation);
    }
  } else if (language == "ree") {
    GQD_ASSIGN_OR_RETURN(ReePtr expression, ParseRee(query));
    normalized = ReeToString(expression);
    std::string key =
        ResultCache::MakeKey(entry.fingerprint, "ree", normalized);
    relation = cache_get(key);
    if (relation == nullptr) {
      GQD_ASSIGN_OR_RETURN(BinaryRelation computed,
                           EvaluateRee(graph, expression, eval_options));
      relation =
          std::make_shared<const BinaryRelation>(std::move(computed));
      cache_.Put(key, relation);
    }
  } else {
    return Status::InvalidArgument("unknown language '" + language +
                                   "' (expected rpq, regex, rem or ree)");
  }
  JsonValue::Object body;
  body.emplace_back("query", query);
  body.emplace_back("normalized", normalized);
  body.emplace_back("count", static_cast<double>(relation->Count()));
  // Same rendering as `gqd eval`, so client output is interchangeable.
  body.emplace_back("relation", relation->ToString(graph));
  return JsonValue(std::move(body));
}

std::shared_ptr<const QueryPlan> QueryService::GetOrBuildRemPlan(
    const RegisteredGraph& entry, const std::string& normalized,
    const RemPtr& expression) {
  std::string key =
      ResultCache::MakeKey(entry.fingerprint, "rem#plan", normalized);
  {
    std::lock_guard<std::mutex> lock(plan_mutex_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      return it->second;
    }
  }
  // Build outside the lock (analysis can be non-trivial); a racing build
  // of the same plan is wasted work, not a correctness problem, because
  // plans are pure functions of (graph alphabet, normalized query).
  StringInterner labels = entry.graph->labels();
  auto plan = std::make_shared<const QueryPlan>(
      BuildRemQueryPlan(expression, &labels, /*intern_new_labels=*/false));
  std::lock_guard<std::mutex> lock(plan_mutex_);
  if (plan_cache_.size() >= kPlanCacheCapacity) {
    plan_cache_.clear();
  }
  plan_cache_.emplace(key, plan);
  return plan;
}

Result<JsonValue> QueryService::HandleEval(const JsonValue& request) {
  GQD_ASSIGN_OR_RETURN(std::string graph_name, request.GetString("graph"));
  GQD_ASSIGN_OR_RETURN(RegisteredGraph entry, registry_.Get(graph_name));
  GQD_ASSIGN_OR_RETURN(std::string language, request.GetString("language"));
  GQD_ASSIGN_OR_RETURN(std::int64_t deadline_ms, DeadlineMsFrom(request));
  std::optional<CancelToken> deadline;
  if (deadline_ms > 0) {
    deadline.emplace(std::chrono::milliseconds(deadline_ms));
  }
  const CancelToken* cancel =
      deadline.has_value() ? &deadline.value() : nullptr;
  // One budget for the whole request: batched queries draw on a shared
  // allowance, the per-request isolation boundary.
  std::optional<ResourceBudget> budget_storage;
  GQD_RETURN_NOT_OK(BudgetFrom(request, &budget_storage));
  const ResourceBudget* budget =
      budget_storage.has_value() ? &budget_storage.value() : nullptr;
  BudgetAxisRecorder axis_recorder(&stats_, &budget_storage);

  const JsonValue* queries = request.Find("queries");
  if (queries == nullptr) {
    GQD_ASSIGN_OR_RETURN(std::string query, request.GetString("query"));
    return EvalOne(entry, language, query, cancel, budget);
  }

  // Batched form: one graph, many queries, fanned out across the pool.
  if (!queries->is_array()) {
    return Status::InvalidArgument("field 'queries' must be an array");
  }
  std::vector<std::string> texts;
  texts.reserve(queries->AsArray().size());
  for (const JsonValue& q : queries->AsArray()) {
    if (!q.is_string()) {
      return Status::InvalidArgument(
          "field 'queries' must contain only strings");
    }
    texts.push_back(q.AsString());
  }
  std::vector<Result<JsonValue>> outcomes(
      texts.size(), Result<JsonValue>(Status::Internal("not run")));
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t remaining = texts.size();
  // Pool workers do not inherit this thread's tracer installation or trace
  // binding; each task re-installs both so per-query spans land on the
  // worker's track and still carry the request's trace id.
  Tracer* tracer = Tracer::Current();
  GQD_TRACE_SPAN(dispatch_span, "serve.pool_dispatch");
  GQD_TRACE_SPAN_ATTR(dispatch_span, "queries", texts.size());
  // Captured inside the dispatch span, so re-bound task spans parent
  // under serve.pool_dispatch.
  Tracer::Binding trace_binding = Tracer::CurrentBinding();
  for (std::size_t i = 0; i < texts.size(); i++) {
    pool_.Submit([this, &entry, &language, &texts, &outcomes, &done_mutex,
                  &done_cv, &remaining, cancel, budget, tracer,
                  trace_binding, i] {
      Tracer::Scope scope(tracer);
      TraceBindingScope binding(trace_binding);
      Result<JsonValue> outcome = Status::Internal("not run");
      {
        GQD_TRACE_SPAN(task_span, "serve.eval_task");
        GQD_TRACE_SPAN_ATTR(task_span, "query_index", i);
        outcome = EvalOne(entry, language, texts[i], cancel, budget);
      }
      // Notify while holding the lock: the waiter owns these locals and
      // destroys them the moment it observes remaining == 0, so the last
      // worker must not touch the condition variable after unlocking.
      std::lock_guard<std::mutex> lock(done_mutex);
      outcomes[i] = std::move(outcome);
      remaining--;
      done_cv.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&remaining] { return remaining == 0; });
  }

  JsonValue::Array results;
  results.reserve(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); i++) {
    if (outcomes[i].ok()) {
      JsonValue::Object entry_body;
      entry_body.emplace_back("ok", true);
      for (auto& [key, value] : outcomes[i].value().AsObject()) {
        entry_body.emplace_back(key, value);
      }
      results.emplace_back(std::move(entry_body));
    } else {
      JsonValue error = ErrorResponse(nullptr, outcomes[i].status());
      JsonValue::Object entry_body = error.AsObject();
      entry_body.insert(entry_body.begin(), {"query", JsonValue(texts[i])});
      results.emplace_back(std::move(entry_body));
    }
  }
  JsonValue::Object body;
  body.emplace_back("results", JsonValue(std::move(results)));
  return JsonValue(std::move(body));
}

Result<JsonValue> QueryService::HandleCheck(const JsonValue& request) {
  GQD_ASSIGN_OR_RETURN(std::string graph_name, request.GetString("graph"));
  GQD_ASSIGN_OR_RETURN(RegisteredGraph entry, registry_.Get(graph_name));
  GQD_ASSIGN_OR_RETURN(std::string checker, request.GetString("checker"));
  GQD_ASSIGN_OR_RETURN(std::string relation_text,
                       request.GetString("relation"));
  using RelationPairs = std::vector<std::pair<NodeId, NodeId>>;
  GQD_ASSIGN_OR_RETURN(RelationPairs pairs,
                       ReadRelationPairsText(*entry.graph, relation_text));
  GQD_ASSIGN_OR_RETURN(std::int64_t deadline_ms, DeadlineMsFrom(request));
  std::optional<CancelToken> deadline;
  if (deadline_ms > 0) {
    deadline.emplace(std::chrono::milliseconds(deadline_ms));
  }
  const CancelToken* cancel =
      deadline.has_value() ? &deadline.value() : nullptr;
  std::optional<ResourceBudget> budget_storage;
  GQD_RETURN_NOT_OK(BudgetFrom(request, &budget_storage));
  const ResourceBudget* budget =
      budget_storage.has_value() ? &budget_storage.value() : nullptr;
  BudgetAxisRecorder axis_recorder(&stats_, &budget_storage);
  // Optional frontier-parallel successor generation (krem/rpq checkers);
  // any thread count returns bit-identical results.
  GQD_ASSIGN_OR_RETURN(std::int64_t threads, request.GetIntOr("threads", 1));
  if (threads < 0) {
    return Status::InvalidArgument("field 'threads' must be non-negative");
  }
  // Optional "relation_backend": auto (default), dense, sparse, blocked.
  // The estimated cost of the selected representation is admitted against
  // the request budget before anything is built, so a served check is
  // governed the same way the CLI is.
  RelationBackend backend_choice = RelationBackend::kAuto;
  if (const JsonValue* backend_field = request.Find("relation_backend")) {
    if (!backend_field->is_string() ||
        !ParseRelationBackend(backend_field->AsString(), &backend_choice)) {
      return Status::InvalidArgument(
          "field 'relation_backend' must be auto, dense, sparse or blocked");
    }
  }
  const std::size_t n = entry.graph->NumNodes();
  RelationBackend resolved = backend_choice == RelationBackend::kAuto
                                 ? ChooseRelationBackend(n, pairs.size())
                                 : backend_choice;
  if (budget != nullptr) {
    budget->ChargeBytes(static_cast<std::int64_t>(
        EstimateRelationBytes(resolved, n, pairs.size())));
    if (Status admitted = budget->Check(); !admitted.ok()) {
      RelationCounters::Instance().admission_refusals.fetch_add(
          1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          std::string("relation admission: ") +
          RelationBackendName(resolved) + " backend over " +
          std::to_string(n) + " nodes exceeds the request byte budget");
    }
  }
  auto build_start = std::chrono::steady_clock::now();
  AdaptiveRelation relation =
      AdaptiveRelation::FromPairs(n, std::move(pairs), backend_choice);
  NoteRelationBackendSelected(relation.backend());
  RelationCounters::Instance().build_micros.fetch_add(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - build_start)
              .count()),
      std::memory_order_relaxed);

  JsonValue::Object body;
  body.emplace_back("checker", checker);
  body.emplace_back("relation_backend",
                    std::string(RelationBackendName(relation.backend())));
  body.emplace_back("relation_nnz", static_cast<double>(relation.Nnz()));
  if (checker == "rpq") {
    KRemDefinabilityOptions options;
    options.cancel = cancel;
    options.budget = budget;
    options.num_threads = static_cast<std::size_t>(threads);
    GQD_ASSIGN_OR_RETURN(RpqDefinabilityResult result,
                         CheckRpqDefinability(*entry.graph, relation,
                                              options));
    body.emplace_back("verdict",
                      std::string(DefinabilityVerdictToString(
                          result.verdict)));
    body.emplace_back("tuples_explored",
                      static_cast<double>(result.tuples_explored));
    EmplacePartial(&body, result.partial);
  } else if (checker == "krem") {
    GQD_ASSIGN_OR_RETURN(std::int64_t k, request.GetIntOr("k", 2));
    if (k < 0) {
      return Status::InvalidArgument("field 'k' must be non-negative");
    }
    KRemDefinabilityOptions options;
    options.cancel = cancel;
    options.budget = budget;
    options.num_threads = static_cast<std::size_t>(threads);
    GQD_ASSIGN_OR_RETURN(
        KRemDefinabilityResult result,
        CheckKRemDefinability(*entry.graph, relation,
                              static_cast<std::size_t>(k), options));
    body.emplace_back("verdict",
                      std::string(DefinabilityVerdictToString(
                          result.verdict)));
    body.emplace_back("k", static_cast<double>(k));
    body.emplace_back("tuples_explored",
                      static_cast<double>(result.tuples_explored));
    EmplacePartial(&body, result.partial);
  } else if (checker == "ree") {
    ReeDefinabilityOptions options;
    options.cancel = cancel;
    options.budget = budget;
    GQD_ASSIGN_OR_RETURN(ReeDefinabilityResult result,
                         CheckReeDefinability(*entry.graph, relation,
                                              options));
    body.emplace_back("verdict",
                      std::string(DefinabilityVerdictToString(
                          result.verdict)));
    body.emplace_back("levels_used",
                      static_cast<double>(result.levels_used));
    body.emplace_back("monoid_size",
                      static_cast<double>(result.monoid_size));
    EmplacePartial(&body, result.partial);
  } else if (checker == "ucrdpq") {
    UcrdpqDefinabilityOptions options;
    options.csp.cancel = cancel;
    options.csp.budget = budget;
    GQD_ASSIGN_OR_RETURN(UcrdpqDefinabilityResult result,
                         CheckUcrdpqDefinability(*entry.graph, relation,
                                                 options));
    body.emplace_back("verdict",
                      std::string(DefinabilityVerdictToString(
                          result.verdict)));
    body.emplace_back("seeds_tried",
                      static_cast<double>(result.seeds_tried));
    EmplacePartial(&body, result.partial);
  } else {
    return Status::InvalidArgument(
        "unknown checker '" + checker +
        "' (expected rpq, krem, ree or ucrdpq)");
  }
  return JsonValue(std::move(body));
}

Result<JsonValue> QueryService::HandleLint(const JsonValue& request) {
  GQD_ASSIGN_OR_RETURN(std::string language, request.GetString("language"));
  GQD_ASSIGN_OR_RETURN(std::string query, request.GetString("query"));
  AnalysisOptions options;
  RegisteredGraph entry;  // keeps the shared_ptr alive across the lint
  if (const JsonValue* graph_name = request.Find("graph")) {
    if (!graph_name->is_string()) {
      return Status::InvalidArgument("field 'graph' must be a string");
    }
    GQD_ASSIGN_OR_RETURN(entry, registry_.Get(graph_name->AsString()));
    options.graph = entry.graph.get();
  }
  std::vector<Diagnostic> diagnostics;
  if (language == "rpq" || language == "regex") {
    GQD_ASSIGN_OR_RETURN(RegexPtr expression, ParseRegex(query));
    diagnostics = LintRegex(expression, options);
  } else if (language == "rem") {
    GQD_ASSIGN_OR_RETURN(RemPtr expression, ParseRem(query));
    diagnostics = LintRem(expression, options);
  } else if (language == "ree") {
    GQD_ASSIGN_OR_RETURN(ReePtr expression, ParseRee(query));
    diagnostics = LintRee(expression, options);
  } else {
    return Status::InvalidArgument("unknown language '" + language +
                                   "' (expected rpq, regex, rem or ree)");
  }
  // Anchor findings to line:column within the query text, then lift the
  // array out of DiagnosticsToJson's {"diagnostics":[...]} wrapper so the
  // response carries it directly.
  ResolveDiagnosticLocations(query, &diagnostics);
  JsonValue wrapped = EmbedJson(DiagnosticsToJson(diagnostics));
  JsonValue::Object body;
  body.emplace_back("diagnostics", *wrapped.Find("diagnostics"));
  return JsonValue(std::move(body));
}

Result<JsonValue> QueryService::HandleInfo(const JsonValue& request) {
  const JsonValue* graph_name = request.Find("graph");
  if (graph_name == nullptr) {
    JsonValue::Array names;
    for (const std::string& name : registry_.Names()) {
      names.emplace_back(name);
    }
    JsonValue::Object body;
    body.emplace_back("graphs", JsonValue(std::move(names)));
    return JsonValue(std::move(body));
  }
  if (!graph_name->is_string()) {
    return Status::InvalidArgument("field 'graph' must be a string");
  }
  GQD_ASSIGN_OR_RETURN(RegisteredGraph entry,
                       registry_.Get(graph_name->AsString()));
  JsonValue::Object body;
  body.emplace_back("name", graph_name->AsString());
  body.emplace_back("fingerprint", entry.fingerprint);
  body.emplace_back("storage", StorageInfoToJson(entry.info));
  body.emplace_back("info", EmbedJson(WriteGraphInfoJson(*entry.graph)));
  return JsonValue(std::move(body));
}

Result<JsonValue> QueryService::HandleStats() {
  JsonValue::Object body;
  body.emplace_back(
      "stats",
      EmbedJson(stats_.ToJson(pool_.GetStats(), cache_.GetStats(),
                              admission_.GetStats())));
  return JsonValue(std::move(body));
}

Result<JsonValue> QueryService::HandleMetrics() {
  JsonValue::Object body;
  body.emplace_back("metrics",
                    stats_.RenderPrometheus(pool_.GetStats(),
                                            cache_.GetStats(),
                                            admission_.GetStats()));
  return JsonValue(std::move(body));
}

Result<JsonValue> QueryService::HandleSpans(const JsonValue& request) {
  GQD_ASSIGN_OR_RETURN(std::string traceparent, request.GetString("trace"));
  TraceContext context;
  if (!TraceContext::FromTraceparent(traceparent, &context)) {
    return Status::InvalidArgument(
        "field 'trace' must be a traceparent (00-<32 hex>-<16 hex>-01)");
  }
  std::vector<SpanRecord> spans =
      collector_.Take(context.trace_hi, context.trace_lo);
  JsonValue::Object body;
  body.emplace_back("trace_id", context.TraceIdHex());
  body.emplace_back("spans", EmbedJson(SerializeSpanBatch(spans)));
  // The drainer aligns this process's monotonic epoch with its own by
  // bracketing the roundtrip and assuming now_ns was sampled mid-flight.
  body.emplace_back("now_ns", static_cast<double>(Tracer::NowNs()));
  return JsonValue(std::move(body));
}

Result<JsonValue> QueryService::HandleLog(const JsonValue& request) {
  LogLevel min_level = LogLevel::kDebug;
  if (const JsonValue* level_field = request.Find("min_level")) {
    if (!level_field->is_string() ||
        !ParseLogLevel(level_field->AsString(), &min_level)) {
      return Status::InvalidArgument(
          "field 'min_level' must be debug, info, warn or error");
    }
  }
  const EventLog& log = EventLog::Global();
  JsonValue::Object body;
  body.emplace_back("events", EmbedJson(log.ToJsonArray(min_level)));
  body.emplace_back("emitted", static_cast<double>(log.emitted()));
  body.emplace_back("dropped", static_cast<double>(log.dropped()));
  return JsonValue(std::move(body));
}

}  // namespace gqd
