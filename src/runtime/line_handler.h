// The protocol-handler seam between the TCP server and whatever speaks
// the newline-delimited JSON protocol behind it.
//
// `Server` owns sockets and framing only; each complete request line is
// handed to a `LineHandler` which returns the response line (without the
// trailing newline). `QueryService` is the single-process handler; the
// cluster `Router` implements the same interface so a front process can
// proxy lines to a worker fleet without the server knowing the difference.

#ifndef GQD_RUNTIME_LINE_HANDLER_H_
#define GQD_RUNTIME_LINE_HANDLER_H_

#include <string>

namespace gqd {

class LineHandler {
 public:
  virtual ~LineHandler() = default;

  /// Handles one complete request line and returns the response line.
  /// Sets `*shutdown` to true when the request asks the hosting server to
  /// stop after the response is flushed. Must be safe to call from many
  /// connection threads concurrently.
  virtual std::string HandleLine(const std::string& line, bool* shutdown) = 0;
};

}  // namespace gqd

#endif  // GQD_RUNTIME_LINE_HANDLER_H_
