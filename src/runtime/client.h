// A minimal blocking client for the gqd serve protocol.
//
// One TCP connection, one request line out, one response line back. Used
// by the serve tests and by `gqd bench-serve`; not a general-purpose
// client library.
//
// Call() is a single attempt. CallWithRetry() adds the client half of
// graceful degradation: transport failures reconnect, and `Unavailable`
// (load-shed) responses are retried after a jittered exponential backoff,
// honouring the server's retry_after_ms hint when one is present.

#ifndef GQD_RUNTIME_CLIENT_H_
#define GQD_RUNTIME_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace gqd {

/// Backoff schedule for CallWithRetry. Attempt i sleeps
/// min(initial_backoff * 2^i, max_backoff) plus up to 50% seeded jitter.
/// When a shed response carries a retry_after_ms hint, the hint (plus the
/// same jitter) replaces the exponential sleep entirely — the server knows
/// when it expects capacity better than a client-side schedule does.
struct RetryPolicy {
  int max_attempts = 5;
  std::chrono::milliseconds initial_backoff{10};
  std::chrono::milliseconds max_backoff{1000};
  /// Seed for the jitter RNG, so tests are reproducible.
  std::uint64_t jitter_seed = 0;
};

class LineClient {
 public:
  LineClient() = default;
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Connects to 127.0.0.1:`port`. The port is remembered so
  /// CallWithRetry can reconnect after a transport failure.
  Status Connect(std::uint16_t port);

  /// Sends `line` (a newline is appended) and returns the one response
  /// line, without its trailing newline.
  Result<std::string> Call(const std::string& line);

  /// Call() with reconnection and backoff: transport errors (including
  /// injected client.* faults) reconnect and retry; responses whose
  /// error code is `Unavailable` (load shedding) retry after the backoff.
  /// Any other response — success or error — is returned as-is. Fails
  /// with the last error once `policy.max_attempts` attempts are spent.
  Result<std::string> CallWithRetry(const std::string& line,
                                    const RetryPolicy& policy = {});

  void Close();

  bool connected() const { return fd_ >= 0; }

  /// Total retries performed by CallWithRetry over this client's lifetime.
  std::uint64_t retries() const { return retries_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;  ///< last Connect() target, for reconnects
  std::uint64_t retries_ = 0;
  std::string buffer_;  ///< bytes read past the last returned line
};

}  // namespace gqd

#endif  // GQD_RUNTIME_CLIENT_H_
