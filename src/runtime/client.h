// A minimal blocking client for the gqd serve protocol.
//
// One TCP connection, one request line out, one response line back. Used
// by the serve tests and by `gqd bench-serve`; not a general-purpose
// client library.

#ifndef GQD_RUNTIME_CLIENT_H_
#define GQD_RUNTIME_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace gqd {

class LineClient {
 public:
  LineClient() = default;
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Connects to 127.0.0.1:`port`.
  Status Connect(std::uint16_t port);

  /// Sends `line` (a newline is appended) and returns the one response
  /// line, without its trailing newline.
  Result<std::string> Call(const std::string& line);

  void Close();

  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
};

}  // namespace gqd

#endif  // GQD_RUNTIME_CLIENT_H_
