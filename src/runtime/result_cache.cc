#include "runtime/result_cache.h"

#include <functional>

#include "common/failpoint.h"

namespace gqd {

namespace {
GQD_FAILPOINT_DEFINE(fp_result_cache_put, "result_cache.put");
}  // namespace

ResultCache::ResultCache(std::size_t capacity) {
  if (capacity < kNumShards) {
    capacity = kNumShards;  // at least one entry per shard
  }
  per_shard_capacity_ = capacity / kNumShards;
}

std::string ResultCache::MakeKey(const std::string& graph_fingerprint,
                                 const std::string& language,
                                 const std::string& normalized_query) {
  // \x1f (unit separator) cannot appear in any component.
  std::string key;
  key.reserve(graph_fingerprint.size() + language.size() +
              normalized_query.size() + 2);
  key += graph_fingerprint;
  key += '\x1f';
  key += language;
  key += '\x1f';
  key += normalized_query;
  return key;
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kNumShards];
}

const ResultCache::Shard& ResultCache::ShardFor(const std::string& key) const {
  return shards_[std::hash<std::string>{}(key) % kNumShards];
}

std::shared_ptr<const BinaryRelation> ResultCache::Get(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    shard.misses++;
    return nullptr;
  }
  shard.hits++;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void ResultCache::Put(const std::string& key,
                      std::shared_ptr<const BinaryRelation> value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (GQD_FAILPOINT_FIRED(fp_result_cache_put)) {
    shard.drops++;
    return;
  }
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    shard.evictions++;
  }
  shard.lru.emplace_front(key, std::move(value));
  shard.index[key] = shard.lru.begin();
}

ResultCache::Stats ResultCache::GetStats() const {
  Stats stats;
  stats.capacity = per_shard_capacity_ * kNumShards;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.evictions += shard.evictions;
    stats.drops += shard.drops;
    stats.entries += shard.lru.size();
  }
  return stats;
}

}  // namespace gqd
