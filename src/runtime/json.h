// Forwarding shim: the JSON document model moved to common/json.h so the
// observability layer (span-batch parsing in obs/trace_context.cc) can use
// it without a runtime → obs → runtime cycle. Existing includers keep
// working; new code should include "common/json.h" directly.

#ifndef GQD_RUNTIME_JSON_H_
#define GQD_RUNTIME_JSON_H_

#include "common/json.h"  // IWYU pragma: export

#endif  // GQD_RUNTIME_JSON_H_
