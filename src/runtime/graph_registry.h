// Named, immutable, fingerprinted data graphs shared across requests.
//
// The batch CLI re-parses its graph file on every invocation; the serving
// layer instead loads each graph once into a GraphRegistry and hands out
// shared_ptr<const DataGraph> — concurrent requests share one parsed copy
// with no locking beyond the registry map itself.
//
// Every entry carries a content fingerprint: a 64-bit FNV-1a hash of the
// canonical text serialization (WriteGraphText), rendered as 16 hex
// digits. Result-cache keys embed the fingerprint rather than the name, so
// re-loading a name with different content can never serve stale cached
// relations, and two names with identical content share cache entries.

#ifndef GQD_RUNTIME_GRAPH_REGISTRY_H_
#define GQD_RUNTIME_GRAPH_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/data_graph.h"

namespace gqd {

/// One registered graph: the shared parsed form plus its fingerprint.
struct RegisteredGraph {
  std::shared_ptr<const DataGraph> graph;
  std::string fingerprint;  ///< 16 lowercase hex digits
};

class GraphRegistry {
 public:
  GraphRegistry() = default;
  GraphRegistry(const GraphRegistry&) = delete;
  GraphRegistry& operator=(const GraphRegistry&) = delete;

  /// Parses `text` (the node/edge format) and registers it under `name`,
  /// replacing any previous graph of that name. Returns the new entry.
  Result<RegisteredGraph> Load(const std::string& name,
                               const std::string& text);

  /// Registers an already-built graph (in-process embedding, tests).
  RegisteredGraph Register(const std::string& name, DataGraph graph);

  /// Looks up a graph by name.
  Result<RegisteredGraph> Get(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  std::size_t size() const;

  /// Content fingerprint of a graph: FNV-1a 64 over WriteGraphText.
  static std::string Fingerprint(const DataGraph& graph);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, RegisteredGraph> graphs_;
};

}  // namespace gqd

#endif  // GQD_RUNTIME_GRAPH_REGISTRY_H_
