// Named, immutable, fingerprinted data graphs shared across requests.
//
// The batch CLI re-parses its graph file on every invocation; the serving
// layer instead loads each graph once into a GraphRegistry and hands out
// shared_ptr<const DataGraph> — concurrent requests share one parsed copy
// with no locking beyond the registry map itself.
//
// Graphs arrive through the GraphStore, so a registry entry may be resident
// (parsed text) or a zero-copy view of an mmap-mapped binary container; the
// entry's GraphStoreInfo says which. Every entry carries a content
// fingerprint: a 64-bit FNV-1a hash of the canonical text serialization
// (WriteGraphText), rendered as 16 hex digits. Result-cache keys embed the
// fingerprint rather than the name, so re-loading a name with different
// content can never serve stale cached relations — and loading identical
// content under any name dedupes onto the already-loaded copy instead of
// holding a second one.

#ifndef GQD_RUNTIME_GRAPH_REGISTRY_H_
#define GQD_RUNTIME_GRAPH_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/data_graph.h"
#include "storage/graph_store.h"

namespace gqd {

/// One registered graph: the shared loaded form, its fingerprint, and how
/// the store is holding it (backend, sizes, load time).
struct RegisteredGraph {
  std::shared_ptr<const DataGraph> graph;
  std::string fingerprint;  ///< 16 lowercase hex digits
  GraphStoreInfo info;
};

class GraphRegistry {
 public:
  GraphRegistry() = default;
  GraphRegistry(const GraphRegistry&) = delete;
  GraphRegistry& operator=(const GraphRegistry&) = delete;

  /// Parses `text` (the node/edge format) and registers it under `name`,
  /// replacing any previous graph of that name. Returns the new entry.
  Result<RegisteredGraph> Load(const std::string& name,
                               const std::string& text);

  /// Loads the file at `path` through the GraphStore (container files map,
  /// text files parse) and registers it under `name`. This is how a serve
  /// worker attaches a multi-gigabyte on-disk graph without re-parsing.
  Result<RegisteredGraph> LoadFile(const std::string& name,
                                   const std::string& path);

  /// Registers an already-built graph (in-process embedding, tests).
  RegisteredGraph Register(const std::string& name, DataGraph graph);

  /// Registers a StoredGraph from the GraphStore under `name`.
  RegisteredGraph Register(const std::string& name, StoredGraph stored);

  /// Looks up a graph by name.
  Result<RegisteredGraph> Get(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  std::size_t size() const;

  /// Content fingerprint of a graph: FNV-1a 64 over WriteGraphText.
  static std::string Fingerprint(const DataGraph& graph);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, RegisteredGraph> graphs_;
};

}  // namespace gqd

#endif  // GQD_RUNTIME_GRAPH_REGISTRY_H_
