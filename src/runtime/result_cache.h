// A sharded LRU cache of evaluated query results.
//
// Key = graph fingerprint + query language + *normalized* query text
// (parse, then canonical-print, so `a . b` and `a.b` share an entry).
// Value = the evaluated BinaryRelation, shared immutably.
//
// Sharding: the key hash picks one of a fixed power-of-two number of
// shards, each with its own mutex, LRU list and map — concurrent requests
// for different queries rarely contend. Counters (hits, misses,
// evictions) are per-shard and summed on demand for ServerStats.

#ifndef GQD_RUNTIME_RESULT_CACHE_H_
#define GQD_RUNTIME_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "graph/relation.h"

namespace gqd {

class ResultCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t drops = 0;  ///< inserts skipped by an injected fault
    std::size_t entries = 0;
    std::size_t capacity = 0;
  };

  /// `capacity` is the total entry budget across all shards (>= 1).
  explicit ResultCache(std::size_t capacity);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Builds the canonical cache key. `normalized_query` must already be in
  /// canonical printed form; `language` is "rpq", "rem" or "ree".
  static std::string MakeKey(const std::string& graph_fingerprint,
                             const std::string& language,
                             const std::string& normalized_query);

  /// Returns the cached relation and bumps recency, or nullptr on miss.
  std::shared_ptr<const BinaryRelation> Get(const std::string& key);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// entry of the same shard when that shard is full. The cache is an
  /// optimization: when the `result_cache.put` failpoint fires (simulating
  /// an allocation failure), the insert is skipped — callers never notice
  /// beyond a later cache miss.
  void Put(const std::string& key,
           std::shared_ptr<const BinaryRelation> value);

  Stats GetStats() const;

 private:
  // 8 shards: enough to decorrelate a pool's worth of workers without
  // fragmenting a small capacity.
  static constexpr std::size_t kNumShards = 8;

  struct Shard {
    mutable std::mutex mutex;
    /// Front = most recent. Stores key copies so the map can reference them.
    std::list<std::pair<std::string,
                        std::shared_ptr<const BinaryRelation>>> lru;
    std::unordered_map<std::string, decltype(lru)::iterator> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t drops = 0;
  };

  Shard& ShardFor(const std::string& key);
  const Shard& ShardFor(const std::string& key) const;

  std::size_t per_shard_capacity_;
  Shard shards_[kNumShards];
};

}  // namespace gqd

#endif  // GQD_RUNTIME_RESULT_CACHE_H_
