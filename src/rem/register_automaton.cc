#include "rem/register_automaton.h"

#include <cassert>
#include <map>
#include <queue>
#include <set>
#include <unordered_map>

namespace gqd {

namespace {

/// Thompson-style builder over the three transition kinds.
class RaBuilder {
 public:
  RaBuilder(StringInterner* labels, bool intern_new)
      : labels_(labels), intern_new_(intern_new) {}

  RaState NewState() {
    store_edges_.emplace_back();
    check_edges_.emplace_back();
    letter_edges_.emplace_back();
    return static_cast<RaState>(store_edges_.size() - 1);
  }

  void AddEps(RaState from, RaState to) {
    // A plain ε-move is a Check(⊤).
    check_edges_[from].push_back({cond::True(), to});
  }

  std::pair<RaState, RaState> Build(const RemPtr& node) {
    switch (node->kind) {
      case RemKind::kEpsilon: {
        RaState s = NewState();
        RaState t = NewState();
        AddEps(s, t);
        return {s, t};
      }
      case RemKind::kLetter: {
        RaState s = NewState();
        RaState t = NewState();
        std::optional<std::uint32_t> id;
        if (intern_new_) {
          id = labels_->Intern(node->letter);
        } else {
          id = labels_->Find(node->letter);
        }
        if (id.has_value()) {
          letter_edges_[s].push_back({*id, t});
        }
        return {s, t};
      }
      case RemKind::kUnion: {
        RaState s = NewState();
        RaState t = NewState();
        for (const RemPtr& child : node->children) {
          auto [cs, ct] = Build(child);
          AddEps(s, cs);
          AddEps(ct, t);
        }
        return {s, t};
      }
      case RemKind::kConcat: {
        assert(!node->children.empty());
        auto [entry, exit] = Build(node->children[0]);
        for (std::size_t i = 1; i < node->children.size(); i++) {
          auto [cs, ct] = Build(node->children[i]);
          AddEps(exit, cs);
          exit = ct;
        }
        return {entry, exit};
      }
      case RemKind::kPlus: {
        auto [cs, ct] = Build(node->children[0]);
        RaState s = NewState();
        RaState t = NewState();
        AddEps(s, cs);
        AddEps(ct, t);
        AddEps(ct, cs);
        return {s, t};
      }
      case RemKind::kCondition: {
        auto [cs, ct] = Build(node->children[0]);
        RaState t = NewState();
        check_edges_[ct].push_back({node->condition, t});
        return {cs, t};
      }
      case RemKind::kBind: {
        auto [cs, ct] = Build(node->children[0]);
        RaState s = NewState();
        store_edges_[s].push_back({node->registers, cs});
        return {s, ct};
      }
    }
    assert(false && "unreachable");
    return {0, 0};
  }

  RegisterAutomaton Finish(RaState start, RaState accept,
                           std::size_t num_registers) {
    RegisterAutomaton ra;
    ra.num_states = store_edges_.size();
    ra.num_registers = num_registers;
    ra.start = start;
    ra.accept = accept;
    ra.store_edges = std::move(store_edges_);
    ra.check_edges = std::move(check_edges_);
    ra.letter_edges = std::move(letter_edges_);
    return ra;
  }

 private:
  StringInterner* labels_;
  bool intern_new_;
  std::vector<std::vector<RegisterAutomaton::StoreEdge>> store_edges_;
  std::vector<std::vector<RegisterAutomaton::CheckEdge>> check_edges_;
  std::vector<std::vector<RegisterAutomaton::LetterEdge>> letter_edges_;
};

using Config = std::pair<RaState, RegisterAssignment>;

/// Saturates a configuration set under Store/Check moves at a position
/// whose data value is `value`.
std::set<Config> EpsilonSaturate(const RegisterAutomaton& ra,
                                 std::set<Config> configs,
                                 std::uint32_t value) {
  std::queue<Config> frontier;
  for (const Config& c : configs) {
    frontier.push(c);
  }
  while (!frontier.empty()) {
    Config current = frontier.front();
    frontier.pop();
    const auto& [state, assignment] = current;
    for (const auto& edge : ra.store_edges[state]) {
      RegisterAssignment next = assignment;
      for (std::size_t r : edge.registers) {
        next[r] = value;
      }
      Config successor{edge.to, std::move(next)};
      if (configs.insert(successor).second) {
        frontier.push(std::move(successor));
      }
    }
    for (const auto& edge : ra.check_edges[state]) {
      if (ConditionSatisfied(edge.condition, value, assignment)) {
        Config successor{edge.to, assignment};
        if (configs.insert(successor).second) {
          frontier.push(std::move(successor));
        }
      }
    }
  }
  return configs;
}

}  // namespace

bool RegisterAutomaton::AcceptsDataPath(const DataPath& path) const {
  std::set<Config> configs;
  configs.insert(
      {start, RegisterAssignment(num_registers, kEmptyRegister)});
  configs = EpsilonSaturate(*this, std::move(configs), path.values[0]);
  for (std::size_t i = 0; i < path.letters.size(); i++) {
    std::set<Config> next;
    for (const auto& [state, assignment] : configs) {
      for (const auto& edge : letter_edges[state]) {
        if (edge.label == path.letters[i]) {
          next.insert({edge.to, assignment});
        }
      }
    }
    if (next.empty()) {
      return false;
    }
    configs = EpsilonSaturate(*this, std::move(next), path.values[i + 1]);
  }
  for (const auto& [state, assignment] : configs) {
    if (state == accept) {
      return true;
    }
  }
  return false;
}

RegisterAutomaton CompileRem(const RemPtr& expression, StringInterner* labels,
                             bool intern_new_labels) {
  RaBuilder builder(labels, intern_new_labels);
  auto [start, accept] = builder.Build(expression);
  return builder.Finish(start, accept, RemNumRegisters(expression));
}

bool RemMatches(const RemPtr& expression, const DataPath& path,
                StringInterner* labels) {
  RegisterAutomaton ra = CompileRem(expression, labels);
  return ra.AcceptsDataPath(path);
}

RemPtr BuildPathRem(const DataPath& path, const StringInterner& label_names) {
  // Registers in first-occurrence order of the path's data values.
  std::map<std::uint32_t, std::size_t> register_of;
  // e[d1] = ↓r1.ε
  std::size_t first_register = register_of
      .emplace(path.values[0], register_of.size())
      .first->second;
  RemPtr expr = rem::Bind({first_register}, rem::Epsilon());
  for (std::size_t i = 0; i < path.letters.size(); i++) {
    const std::string& letter =
        label_names.NameOf(path.letters[i]);
    std::uint32_t value = path.values[i + 1];
    auto it = register_of.find(value);
    if (it != register_of.end()) {
      // e[w]·a[r_i=]. Registers hold pairwise distinct values, so equality
      // with r_i already implies inequality with every other register.
      expr = rem::Concat(
          {expr, rem::Test(rem::Letter(letter),
                           cond::RegisterEq(it->second))});
    } else {
      // Fresh value: the paper's "e[w]·a·↓r_i.ε" alone would also admit
      // paths whose new value repeats an old one (e.g. 0a0 for w = 0a1),
      // which are not automorphic to w. Guard the position with
      // a[r_1≠ ∧ ... ∧ r_{i-1}≠] before binding the new register.
      ConditionPtr all_fresh;
      for (std::size_t j = 0; j < register_of.size(); j++) {
        ConditionPtr atom = cond::RegisterNeq(j);
        all_fresh = all_fresh ? cond::And(std::move(all_fresh), std::move(atom))
                              : std::move(atom);
      }
      std::size_t reg = register_of.emplace(value, register_of.size())
                            .first->second;
      RemPtr step = all_fresh
                        ? rem::Test(rem::Letter(letter), std::move(all_fresh))
                        : rem::Letter(letter);
      expr = rem::Concat(
          {expr, std::move(step), rem::Bind({reg}, rem::Epsilon())});
    }
  }
  return expr;
}

}  // namespace gqd
