#include "rem/ast.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "common/syntax.h"

namespace gqd {

namespace rem {

RemPtr Epsilon() {
  auto node = std::make_shared<RemNode>();
  node->kind = RemKind::kEpsilon;
  return node;
}

RemPtr Letter(std::string name) {
  auto node = std::make_shared<RemNode>();
  node->kind = RemKind::kLetter;
  node->letter = std::move(name);
  return node;
}

RemPtr Union(std::vector<RemPtr> operands) {
  assert(!operands.empty());
  if (operands.size() == 1) {
    return operands[0];
  }
  auto node = std::make_shared<RemNode>();
  node->kind = RemKind::kUnion;
  node->children = std::move(operands);
  return node;
}

RemPtr Concat(std::vector<RemPtr> operands) {
  if (operands.empty()) {
    return Epsilon();
  }
  if (operands.size() == 1) {
    return operands[0];
  }
  auto node = std::make_shared<RemNode>();
  node->kind = RemKind::kConcat;
  node->children = std::move(operands);
  return node;
}

RemPtr Plus(RemPtr operand) {
  auto node = std::make_shared<RemNode>();
  node->kind = RemKind::kPlus;
  node->children = {std::move(operand)};
  return node;
}

RemPtr Star(RemPtr operand) {
  return Union({Epsilon(), Plus(std::move(operand))});
}

RemPtr Test(RemPtr operand, ConditionPtr condition) {
  auto node = std::make_shared<RemNode>();
  node->kind = RemKind::kCondition;
  node->children = {std::move(operand)};
  node->condition = std::move(condition);
  return node;
}

RemPtr Bind(std::vector<std::size_t> registers, RemPtr operand) {
  assert(!registers.empty());
  auto node = std::make_shared<RemNode>();
  node->kind = RemKind::kBind;
  node->children = {std::move(operand)};
  node->registers = std::move(registers);
  return node;
}

RemPtr WithSourceOffset(const RemPtr& node, std::size_t offset) {
  if (node == nullptr || offset == kNoSourceOffset ||
      node->source_offset != kNoSourceOffset) {
    return node;
  }
  auto annotated = std::make_shared<RemNode>(*node);
  annotated->source_offset = offset;
  return annotated;
}

}  // namespace rem

std::size_t RemNumRegisters(const RemPtr& expression) {
  std::size_t k = 0;
  switch (expression->kind) {
    case RemKind::kCondition:
      k = ConditionNumRegisters(expression->condition);
      break;
    case RemKind::kBind:
      for (std::size_t r : expression->registers) {
        k = std::max(k, r + 1);
      }
      break;
    default:
      break;
  }
  for (const RemPtr& child : expression->children) {
    k = std::max(k, RemNumRegisters(child));
  }
  return k;
}

namespace {

// Precedence: union (1) < concat/bind (2) < postfix (3) < atoms (4).
int Precedence(RemKind kind) {
  switch (kind) {
    case RemKind::kUnion:
      return 1;
    case RemKind::kConcat:
      return 2;
    case RemKind::kBind:
      return 2;  // $r1. e extends as far right as possible, like concat.
    case RemKind::kEpsilon:
    case RemKind::kLetter:
      return 4;
    default:
      return 3;
  }
}

void Render(const RemPtr& node, int parent_precedence, std::ostream& os) {
  int self = Precedence(node->kind);
  bool parens = self < parent_precedence;
  if (parens) {
    os << "(";
  }
  switch (node->kind) {
    case RemKind::kEpsilon:
      os << "eps";
      break;
    case RemKind::kLetter:
      RenderLabelName(node->letter, os);
      break;
    case RemKind::kUnion:
      for (std::size_t i = 0; i < node->children.size(); i++) {
        if (i > 0) {
          os << " | ";
        }
        Render(node->children[i], self, os);
      }
      break;
    case RemKind::kConcat:
      for (std::size_t i = 0; i < node->children.size(); i++) {
        if (i > 0) {
          os << " ";
        }
        // Children that are themselves binds need parens except in tail
        // position (a bind extends to the end of the expression).
        int child_min = (i + 1 < node->children.size() &&
                         node->children[i]->kind == RemKind::kBind)
                            ? 3
                            : self;
        Render(node->children[i], child_min, os);
      }
      break;
    case RemKind::kPlus:
      Render(node->children[0], 4, os);
      os << "+";
      break;
    case RemKind::kCondition:
      Render(node->children[0], 4, os);
      os << "[" << ConditionToString(node->condition) << "]";
      break;
    case RemKind::kBind:
      if (node->registers.size() == 1) {
        os << "$r" << (node->registers[0] + 1) << ". ";
      } else {
        os << "$(";
        for (std::size_t i = 0; i < node->registers.size(); i++) {
          if (i > 0) {
            os << ",";
          }
          os << "r" << (node->registers[i] + 1);
        }
        os << "). ";
      }
      Render(node->children[0], 2, os);
      break;
  }
  if (parens) {
    os << ")";
  }
}

}  // namespace

std::string RemToString(const RemPtr& expression) {
  std::ostringstream os;
  Render(expression, 0, os);
  return os.str();
}

}  // namespace gqd
