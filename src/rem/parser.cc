#include "rem/parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace gqd {

namespace {

enum class TokenKind {
  kIdent,    // letters, eps, T, r<k> (disambiguated by the parser)
  kPipe,     // |
  kStar,     // *
  kPlus,     // +
  kDot,      // .
  kLParen,   // (
  kRParen,   // )
  kLBracket, // [
  kRBracket, // ]
  kDollar,   // $
  kComma,    // ,
  kAmp,      // &
  kTilde,    // ~
  kEq,       // =
  kNeq,      // !=
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t position;
};

Result<std::vector<Token>> Lex(std::string_view text) {
  std::vector<Token> tokens;
  std::size_t pos = 0;
  auto error = [&](std::size_t at, const std::string& msg) {
    return Status::InvalidArgument("REM at offset " + std::to_string(at) +
                                   ": " + msg);
  };
  while (pos < text.size()) {
    char c = text[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      pos++;
      continue;
    }
    std::size_t start = pos;
    auto single = [&](TokenKind kind) {
      tokens.push_back({kind, "", start});
      pos++;
    };
    switch (c) {
      case '|': single(TokenKind::kPipe); continue;
      case '*': single(TokenKind::kStar); continue;
      case '+': single(TokenKind::kPlus); continue;
      case '.': single(TokenKind::kDot); continue;
      case '(': single(TokenKind::kLParen); continue;
      case ')': single(TokenKind::kRParen); continue;
      case '[': single(TokenKind::kLBracket); continue;
      case ']': single(TokenKind::kRBracket); continue;
      case '$': single(TokenKind::kDollar); continue;
      case ',': single(TokenKind::kComma); continue;
      case '&': single(TokenKind::kAmp); continue;
      case '~': single(TokenKind::kTilde); continue;
      case '=': single(TokenKind::kEq); continue;
      case '!':
        if (pos + 1 < text.size() && text[pos + 1] == '=') {
          tokens.push_back({TokenKind::kNeq, "", start});
          pos += 2;
          continue;
        }
        return error(start, "expected '=' after '!'");
      case '\'': {
        pos++;
        std::string name;
        while (pos < text.size() && text[pos] != '\'') {
          name += text[pos++];
        }
        if (pos >= text.size()) {
          return error(start, "unterminated quoted label");
        }
        pos++;
        if (name.empty()) {
          return error(start, "empty quoted label");
        }
        tokens.push_back({TokenKind::kIdent, std::move(name), start});
        continue;
      }
      default:
        break;
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      std::string name;
      while (pos < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[pos])) ||
              text[pos] == '_')) {
        name += text[pos++];
      }
      tokens.push_back({TokenKind::kIdent, std::move(name), start});
      continue;
    }
    return error(start, std::string("unexpected character '") + c + "'");
  }
  tokens.push_back({TokenKind::kEnd, "", text.size()});
  return tokens;
}

/// Parses "r<digits>" into a 0-based register index.
bool ParseRegisterName(const std::string& name, std::size_t* index) {
  if (name.size() < 2 || name[0] != 'r') {
    return false;
  }
  std::size_t value = 0;
  for (std::size_t i = 1; i < name.size(); i++) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) {
      return false;
    }
    value = value * 10 + static_cast<std::size_t>(name[i] - '0');
  }
  if (value == 0) {
    return false;  // registers are 1-based in the syntax
  }
  *index = value - 1;
  return true;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<RemPtr> ParseExpression() {
    GQD_ASSIGN_OR_RETURN(RemPtr result, ParseUnion());
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input");
    }
    return result;
  }

  Result<ConditionPtr> ParseBareCondition() {
    GQD_ASSIGN_OR_RETURN(ConditionPtr result, ParseConditionOr());
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input");
    }
    return result;
  }

 private:
  const Token& Peek() const { return tokens_[index_]; }
  void Advance() { index_++; }

  Status Error(const std::string& msg) {
    return Status::InvalidArgument("REM at offset " +
                                   std::to_string(Peek().position) + ": " +
                                   msg);
  }

  Result<RemPtr> ParseUnion() {
    std::size_t start = Peek().position;
    GQD_ASSIGN_OR_RETURN(RemPtr first, ParseConcat());
    std::vector<RemPtr> operands = {first};
    while (Peek().kind == TokenKind::kPipe) {
      Advance();
      GQD_ASSIGN_OR_RETURN(RemPtr next, ParseConcat());
      operands.push_back(next);
    }
    return rem::WithSourceOffset(rem::Union(std::move(operands)), start);
  }

  Result<RemPtr> ParseConcat() {
    std::size_t start = Peek().position;
    std::vector<RemPtr> operands;
    while (true) {
      TokenKind k = Peek().kind;
      if (k == TokenKind::kDollar) {
        // A bind swallows the rest of this concatenation:
        // `$r1. a b` parses as $r1.(a b).
        GQD_ASSIGN_OR_RETURN(RemPtr bind, ParseBind());
        operands.push_back(bind);
        break;
      }
      if (k == TokenKind::kIdent || k == TokenKind::kLParen) {
        GQD_ASSIGN_OR_RETURN(RemPtr next, ParsePostfix());
        operands.push_back(next);
        continue;
      }
      if (k == TokenKind::kDot) {
        Advance();
        continue;  // explicit concat separator
      }
      break;
    }
    if (operands.empty()) {
      return Error("expected an expression");
    }
    return rem::WithSourceOffset(rem::Concat(std::move(operands)), start);
  }

  Result<RemPtr> ParseBind() {
    std::size_t start = Peek().position;
    Advance();  // consume $
    std::vector<std::size_t> registers;
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      while (true) {
        if (Peek().kind != TokenKind::kIdent) {
          return Error("expected a register name");
        }
        std::size_t index;
        if (!ParseRegisterName(Peek().text, &index)) {
          return Error("bad register name '" + Peek().text + "'");
        }
        registers.push_back(index);
        Advance();
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
      if (Peek().kind != TokenKind::kRParen) {
        return Error("expected ')' after register list");
      }
      Advance();
    } else if (Peek().kind == TokenKind::kIdent) {
      std::size_t index;
      if (!ParseRegisterName(Peek().text, &index)) {
        return Error("bad register name '" + Peek().text + "'");
      }
      registers.push_back(index);
      Advance();
    } else {
      return Error("expected a register name after '$'");
    }
    if (Peek().kind != TokenKind::kDot) {
      return Error("expected '.' after bind registers");
    }
    Advance();
    GQD_ASSIGN_OR_RETURN(RemPtr body, ParseConcat());
    return rem::WithSourceOffset(
        rem::Bind(std::move(registers), std::move(body)), start);
  }

  Result<RemPtr> ParsePostfix() {
    std::size_t start = Peek().position;
    GQD_ASSIGN_OR_RETURN(RemPtr node, ParseAtom());
    while (true) {
      TokenKind k = Peek().kind;
      if (k == TokenKind::kStar) {
        Advance();
        node = rem::WithSourceOffset(rem::Star(node), start);
      } else if (k == TokenKind::kPlus) {
        Advance();
        node = rem::WithSourceOffset(rem::Plus(node), start);
      } else if (k == TokenKind::kLBracket) {
        Advance();
        GQD_ASSIGN_OR_RETURN(ConditionPtr c, ParseConditionOr());
        if (Peek().kind != TokenKind::kRBracket) {
          return Error("expected ']'");
        }
        Advance();
        node = rem::WithSourceOffset(rem::Test(node, std::move(c)), start);
      } else {
        break;
      }
    }
    return node;
  }

  Result<RemPtr> ParseAtom() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kIdent: {
        std::string name = token.text;
        std::size_t start = token.position;
        Advance();
        if (name == "eps") {
          return rem::WithSourceOffset(rem::Epsilon(), start);
        }
        return rem::WithSourceOffset(rem::Letter(std::move(name)), start);
      }
      case TokenKind::kLParen: {
        Advance();
        GQD_ASSIGN_OR_RETURN(RemPtr inner, ParseUnion());
        if (Peek().kind != TokenKind::kRParen) {
          return Error("expected ')'");
        }
        Advance();
        return inner;
      }
      default:
        return Error("expected a letter, 'eps', '$' or '('");
    }
  }

  // --- Conditions ---------------------------------------------------------

  Result<ConditionPtr> ParseConditionOr() {
    GQD_ASSIGN_OR_RETURN(ConditionPtr left, ParseConditionAnd());
    while (Peek().kind == TokenKind::kPipe) {
      Advance();
      GQD_ASSIGN_OR_RETURN(ConditionPtr right, ParseConditionAnd());
      left = cond::Or(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ConditionPtr> ParseConditionAnd() {
    GQD_ASSIGN_OR_RETURN(ConditionPtr left, ParseConditionNot());
    while (Peek().kind == TokenKind::kAmp) {
      Advance();
      GQD_ASSIGN_OR_RETURN(ConditionPtr right, ParseConditionNot());
      left = cond::And(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ConditionPtr> ParseConditionNot() {
    if (Peek().kind == TokenKind::kTilde) {
      Advance();
      GQD_ASSIGN_OR_RETURN(ConditionPtr inner, ParseConditionNot());
      return cond::Not(std::move(inner));
    }
    return ParseConditionAtom();
  }

  Result<ConditionPtr> ParseConditionAtom() {
    const Token& token = Peek();
    if (token.kind == TokenKind::kLParen) {
      Advance();
      GQD_ASSIGN_OR_RETURN(ConditionPtr inner, ParseConditionOr());
      if (Peek().kind != TokenKind::kRParen) {
        return Error("expected ')'");
      }
      Advance();
      return inner;
    }
    if (token.kind == TokenKind::kIdent) {
      if (token.text == "T") {
        Advance();
        return cond::True();
      }
      std::size_t index;
      if (!ParseRegisterName(token.text, &index)) {
        return Error("bad register name '" + token.text + "'");
      }
      Advance();
      if (Peek().kind == TokenKind::kEq) {
        Advance();
        return cond::RegisterEq(index);
      }
      if (Peek().kind == TokenKind::kNeq) {
        Advance();
        return cond::RegisterNeq(index);
      }
      return Error("expected '=' or '!=' after register");
    }
    return Error("expected a condition");
  }

  std::vector<Token> tokens_;
  std::size_t index_ = 0;
};

}  // namespace

Result<RemPtr> ParseRem(std::string_view text) {
  GQD_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  return parser.ParseExpression();
}

Result<ConditionPtr> ParseCondition(std::string_view text) {
  GQD_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  return parser.ParseBareCondition();
}

}  // namespace gqd
