// Register conditions C_k (Definition 3 of the paper).
//
//   c := ⊤ | r_i= | r_i≠ | c ∨ c | c ∧ c | ¬c
//
// Satisfaction is relative to a data value d and an assignment
// τ ∈ (D ∪ ⊥)^k:  d,τ ⊨ r_i=  iff τ_i = d, and  d,τ ⊨ r_i≠  iff τ_i ≠ d
// (an empty register ⊥ differs from every value, so r_i≠ holds on ⊥).
//
// Semantically a condition over k registers is determined by the k-bit
// vector b where b_i = (τ_i = d): it denotes a set of such vectors — a
// *minterm set*, here a bitmask over 2^k minterms. The definability
// machinery enumerates conditions by minterm set (there are exactly
// 2^(2^k) semantically distinct conditions), and synthesis converts a
// minterm set back to a small AST.
//
// Concrete syntax: `T`, `r1=`, `r1!=`, `c & c`, `c | c`, `~c`, `(c)`.

#ifndef GQD_REM_CONDITION_H_
#define GQD_REM_CONDITION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace gqd {

/// Sentinel for an empty register (⊥) in assignments.
inline constexpr std::uint32_t kEmptyRegister = 0xffffffffu;

/// A register assignment τ ∈ (D ∪ ⊥)^k; entries are value ids or ⊥.
using RegisterAssignment = std::vector<std::uint32_t>;

enum class ConditionKind {
  kTrue,
  kRegisterEq,   ///< r_i=
  kRegisterNeq,  ///< r_i≠
  kAnd,
  kOr,
  kNot,
};

struct ConditionNode;
using ConditionPtr = std::shared_ptr<const ConditionNode>;

/// Immutable condition AST node.
struct ConditionNode {
  ConditionKind kind;
  std::size_t register_index = 0;      ///< kRegisterEq / kRegisterNeq.
  std::vector<ConditionPtr> children;  ///< 2 for And/Or, 1 for Not.
};

namespace cond {

ConditionPtr True();
ConditionPtr False();  ///< sugar: ¬⊤
ConditionPtr RegisterEq(std::size_t index);
ConditionPtr RegisterNeq(std::size_t index);
ConditionPtr And(ConditionPtr a, ConditionPtr b);
ConditionPtr Or(ConditionPtr a, ConditionPtr b);
ConditionPtr Not(ConditionPtr a);

}  // namespace cond

/// d,τ ⊨ c (Definition 3).
bool ConditionSatisfied(const ConditionPtr& condition, std::uint32_t value,
                        const RegisterAssignment& assignment);

/// Highest register index mentioned, plus one (0 if none).
std::size_t ConditionNumRegisters(const ConditionPtr& condition);

/// Renders the concrete syntax (registers as r1, r2, ...).
std::string ConditionToString(const ConditionPtr& condition);

// --- Minterm view ----------------------------------------------------------

/// A set of minterms over k registers packed into a 64-bit mask
/// (bit m set ⟺ the condition holds when the equality pattern is m,
/// where pattern bit i = "τ_i equals the current value"). Requires k <= 6.
using MintermMask = std::uint64_t;

/// Number of minterms for k registers (2^k). Requires k <= 6.
std::size_t NumMinterms(std::size_t k);

/// The equality pattern of (d, τ): bit i set iff τ_i = d.
std::uint32_t EqualityPattern(std::uint32_t value,
                              const RegisterAssignment& assignment);

/// Semantic compilation of a condition into its minterm mask over k
/// registers. Requires ConditionNumRegisters(c) <= k <= 6.
MintermMask ConditionToMinterms(const ConditionPtr& condition, std::size_t k);

/// Canonical small AST for a minterm set (disjunction of full conjunctions;
/// ⊤ and ¬⊤ when the set is full/empty). Inverse of ConditionToMinterms up
/// to semantic equivalence.
ConditionPtr ConditionFromMinterms(MintermMask mask, std::size_t k);

}  // namespace gqd

#endif  // GQD_REM_CONDITION_H_
