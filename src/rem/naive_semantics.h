// A direct, literal implementation of the REM semantics (Definition 5 of
// the paper): the relation (e, w, σ) ⊢ σ' computed bottom-up over the AST
// as tables of assignment pairs per subpath.
//
// This is deliberately naive — O(|e| · m² · |Σσ|²) with explicit set-of-
// assignment-pairs tables — and exists purely as an *oracle*: the test
// suite checks the register-automaton compilation (rem/register_automaton)
// against it on enumerated paths, so a bug in the Thompson-style compiler
// cannot hide.

#ifndef GQD_REM_NAIVE_SEMANTICS_H_
#define GQD_REM_NAIVE_SEMANTICS_H_

#include <set>
#include <utility>

#include "common/interner.h"
#include "graph/data_path.h"
#include "rem/ast.h"
#include "rem/condition.h"

namespace gqd {

/// All pairs (σ, σ') with (e, w[i..j], σ) ⊢ σ', for every subpath [i..j]
/// of `path` (value positions i <= j). Assignments range over the path's
/// values plus ⊥.
using AssignmentPair = std::pair<RegisterAssignment, RegisterAssignment>;
using AssignmentRelation = std::set<AssignmentPair>;

/// (e, w, ⊥^k) ⊢ σ' for some σ' — Definition 5's acceptance, literally.
/// `k` defaults to RemNumRegisters(e). Letters resolve via `labels`.
bool NaiveRemMatches(const RemPtr& expression, const DataPath& path,
                     const StringInterner& labels);

}  // namespace gqd

#endif  // GQD_REM_NAIVE_SEMANTICS_H_
