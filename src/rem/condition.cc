#include "rem/condition.h"

#include <cassert>
#include <sstream>

namespace gqd {

namespace cond {

ConditionPtr True() {
  auto node = std::make_shared<ConditionNode>();
  node->kind = ConditionKind::kTrue;
  return node;
}

ConditionPtr False() { return Not(True()); }

ConditionPtr RegisterEq(std::size_t index) {
  auto node = std::make_shared<ConditionNode>();
  node->kind = ConditionKind::kRegisterEq;
  node->register_index = index;
  return node;
}

ConditionPtr RegisterNeq(std::size_t index) {
  auto node = std::make_shared<ConditionNode>();
  node->kind = ConditionKind::kRegisterNeq;
  node->register_index = index;
  return node;
}

ConditionPtr And(ConditionPtr a, ConditionPtr b) {
  auto node = std::make_shared<ConditionNode>();
  node->kind = ConditionKind::kAnd;
  node->children = {std::move(a), std::move(b)};
  return node;
}

ConditionPtr Or(ConditionPtr a, ConditionPtr b) {
  auto node = std::make_shared<ConditionNode>();
  node->kind = ConditionKind::kOr;
  node->children = {std::move(a), std::move(b)};
  return node;
}

ConditionPtr Not(ConditionPtr a) {
  auto node = std::make_shared<ConditionNode>();
  node->kind = ConditionKind::kNot;
  node->children = {std::move(a)};
  return node;
}

}  // namespace cond

bool ConditionSatisfied(const ConditionPtr& condition, std::uint32_t value,
                        const RegisterAssignment& assignment) {
  switch (condition->kind) {
    case ConditionKind::kTrue:
      return true;
    case ConditionKind::kRegisterEq:
      assert(condition->register_index < assignment.size());
      return assignment[condition->register_index] != kEmptyRegister &&
             assignment[condition->register_index] == value;
    case ConditionKind::kRegisterNeq:
      assert(condition->register_index < assignment.size());
      // ⊥ ≠ d for every data value d (Definition 3).
      return assignment[condition->register_index] == kEmptyRegister ||
             assignment[condition->register_index] != value;
    case ConditionKind::kAnd:
      return ConditionSatisfied(condition->children[0], value, assignment) &&
             ConditionSatisfied(condition->children[1], value, assignment);
    case ConditionKind::kOr:
      return ConditionSatisfied(condition->children[0], value, assignment) ||
             ConditionSatisfied(condition->children[1], value, assignment);
    case ConditionKind::kNot:
      return !ConditionSatisfied(condition->children[0], value, assignment);
  }
  assert(false && "unreachable");
  return false;
}

std::size_t ConditionNumRegisters(const ConditionPtr& condition) {
  switch (condition->kind) {
    case ConditionKind::kTrue:
      return 0;
    case ConditionKind::kRegisterEq:
    case ConditionKind::kRegisterNeq:
      return condition->register_index + 1;
    default: {
      std::size_t max_k = 0;
      for (const ConditionPtr& child : condition->children) {
        max_k = std::max(max_k, ConditionNumRegisters(child));
      }
      return max_k;
    }
  }
}

namespace {

// Precedence: or (1) < and (2) < not/atoms (3).
int Precedence(ConditionKind kind) {
  switch (kind) {
    case ConditionKind::kOr:
      return 1;
    case ConditionKind::kAnd:
      return 2;
    default:
      return 3;
  }
}

void Render(const ConditionPtr& node, int parent_precedence,
            std::ostream& os) {
  int self = Precedence(node->kind);
  bool parens = self < parent_precedence;
  if (parens) {
    os << "(";
  }
  switch (node->kind) {
    case ConditionKind::kTrue:
      os << "T";
      break;
    case ConditionKind::kRegisterEq:
      os << "r" << (node->register_index + 1) << "=";
      break;
    case ConditionKind::kRegisterNeq:
      os << "r" << (node->register_index + 1) << "!=";
      break;
    case ConditionKind::kAnd:
      Render(node->children[0], self, os);
      os << " & ";
      Render(node->children[1], self, os);
      break;
    case ConditionKind::kOr:
      Render(node->children[0], self, os);
      os << " | ";
      Render(node->children[1], self, os);
      break;
    case ConditionKind::kNot:
      os << "~";
      Render(node->children[0], 3, os);
      break;
  }
  if (parens) {
    os << ")";
  }
}

}  // namespace

std::string ConditionToString(const ConditionPtr& condition) {
  std::ostringstream os;
  Render(condition, 0, os);
  return os.str();
}

std::size_t NumMinterms(std::size_t k) {
  assert(k <= 6);
  return std::size_t{1} << k;
}

std::uint32_t EqualityPattern(std::uint32_t value,
                              const RegisterAssignment& assignment) {
  std::uint32_t pattern = 0;
  for (std::size_t i = 0; i < assignment.size(); i++) {
    if (assignment[i] != kEmptyRegister && assignment[i] == value) {
      pattern |= (1u << i);
    }
  }
  return pattern;
}

MintermMask ConditionToMinterms(const ConditionPtr& condition,
                                std::size_t k) {
  assert(ConditionNumRegisters(condition) <= k && k <= 6);
  std::size_t count = NumMinterms(k);
  MintermMask mask = 0;
  for (std::uint32_t pattern = 0; pattern < count; pattern++) {
    // Simulate a (d, τ) realizing this pattern: value 0, register i holds 0
    // when bit i is set and a distinct value otherwise.
    RegisterAssignment assignment(k);
    for (std::size_t i = 0; i < k; i++) {
      assignment[i] = (pattern & (1u << i)) ? 0u : static_cast<std::uint32_t>(
                                                       i + 1);
    }
    if (ConditionSatisfied(condition, 0u, assignment)) {
      mask |= (MintermMask{1} << pattern);
    }
  }
  return mask;
}

ConditionPtr ConditionFromMinterms(MintermMask mask, std::size_t k) {
  std::size_t count = NumMinterms(k);
  MintermMask full = (count == 64) ? ~MintermMask{0}
                                   : ((MintermMask{1} << count) - 1);
  if (mask == full) {
    return cond::True();
  }
  if (mask == 0) {
    return cond::False();
  }
  ConditionPtr result;
  for (std::uint32_t pattern = 0; pattern < count; pattern++) {
    if (!(mask & (MintermMask{1} << pattern))) {
      continue;
    }
    ConditionPtr term;
    for (std::size_t i = 0; i < k; i++) {
      ConditionPtr atom = (pattern & (1u << i))
                              ? cond::RegisterEq(i)
                              : cond::RegisterNeq(i);
      term = term ? cond::And(std::move(term), std::move(atom))
                  : std::move(atom);
    }
    if (!term) {
      term = cond::True();  // k == 0: the single minterm is ⊤.
    }
    result = result ? cond::Or(std::move(result), std::move(term))
                    : std::move(term);
  }
  return result;
}

}  // namespace gqd
