// Parser for REM concrete syntax (documented in rem/ast.h).

#ifndef GQD_REM_PARSER_H_
#define GQD_REM_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "rem/ast.h"

namespace gqd {

/// Parses an REM. Registers are written r1, r2, ... (1-based in the syntax,
/// 0-based in the AST). Returns InvalidArgument with offsets on bad input.
Result<RemPtr> ParseRem(std::string_view text);

/// Parses a bare register condition (the `c` of `e[c]`).
Result<ConditionPtr> ParseCondition(std::string_view text);

}  // namespace gqd

#endif  // GQD_REM_PARSER_H_
