// Regular expressions with memory — REM (Definition 4 of the paper).
//
//   e := ε | a | e + e | e · e | e⁺ | e[c] | ↓r̄.e
//
// Concrete syntax accepted by the parser (rem/parser.h):
//   bind       $r1. e        and multi-register  $(r1,r3). e
//   condition  e[c]          with c per rem/condition.h syntax
//   union      e | f
//   concat     e f           (juxtaposition; also `e . f` — the dot after a
//                             bind prefix belongs to the bind)
//   plus       e+            (postfix)
//   star       e*            (sugar: e* ≡ eps | e+)
//   epsilon    eps
//   letters    identifiers or quoted '...'
//
// Example 6 of the paper: `$r1. a [r1=]` and
// `$r1. a $r2. b a[r1=] b[r2!=]`.

#ifndef GQD_REM_AST_H_
#define GQD_REM_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "rem/condition.h"

namespace gqd {

enum class RemKind {
  kEpsilon,
  kLetter,
  kUnion,
  kConcat,
  kPlus,
  kCondition,  ///< e[c]
  kBind,       ///< ↓r̄.e
};

struct RemNode;
using RemPtr = std::shared_ptr<const RemNode>;

/// "This node has no source anchor" — the value synthesized nodes carry.
inline constexpr std::size_t kNoSourceOffset = static_cast<std::size_t>(-1);

/// Immutable REM AST node.
struct RemNode {
  RemKind kind;
  std::string letter;                   ///< kLetter.
  std::vector<RemPtr> children;         ///< operands.
  ConditionPtr condition;               ///< kCondition.
  std::vector<std::size_t> registers;   ///< kBind: indices stored into.
  /// Byte offset of the node's first token in the parsed query text;
  /// kNoSourceOffset for programmatically built expressions. Lint passes
  /// copy it into Diagnostic::offset so findings are clickable.
  std::size_t source_offset = kNoSourceOffset;
};

namespace rem {

RemPtr Epsilon();
RemPtr Letter(std::string name);
RemPtr Union(std::vector<RemPtr> operands);
RemPtr Concat(std::vector<RemPtr> operands);
RemPtr Plus(RemPtr operand);
/// e* desugared as eps | e+.
RemPtr Star(RemPtr operand);
RemPtr Test(RemPtr operand, ConditionPtr condition);  ///< e[c]
RemPtr Bind(std::vector<std::size_t> registers, RemPtr operand);  ///< ↓r̄.e

/// `node` annotated with a source offset. Nodes are immutable and shared,
/// so this is copy-on-annotate (shallow — children stay shared); a no-op
/// when the node already carries an offset, so desugarings that reuse a
/// subterm keep its original anchor.
RemPtr WithSourceOffset(const RemPtr& node, std::size_t offset);

}  // namespace rem

/// Number of registers used: one past the highest register index mentioned
/// in any bind or condition (the k of "k-REM").
std::size_t RemNumRegisters(const RemPtr& expression);

/// Renders the concrete syntax.
std::string RemToString(const RemPtr& expression);

}  // namespace gqd

#endif  // GQD_REM_AST_H_
