// Register automata over data paths, and the REM → automaton compiler.
//
// REM are expressively equivalent to register automata (Libkin & Vrgoč,
// "Regular expressions for data words"); the library uses the automaton as
// REM's operational model for both data-path membership and query
// evaluation on graphs (eval/rem_eval.h).
//
// The automaton walks the positions of a data path d0 a0 d1 ... dm. Three
// transition kinds:
//   Store(r̄)  — ε-move: writes the *current* data value into registers r̄
//               (the compilation of ↓r̄.e, which stores the first value);
//   Check(c)  — ε-move: requires d_cur, σ ⊨ c (the compilation of e[c],
//               which tests the last value);
//   Letter(a) — advances one position, consuming letter a.
// A data path is accepted iff some run starting at (start, ⊥^k) on position
// 0 reaches (accept, ·) at the final position.

#ifndef GQD_REM_REGISTER_AUTOMATON_H_
#define GQD_REM_REGISTER_AUTOMATON_H_

#include <cstdint>
#include <vector>

#include "common/interner.h"
#include "graph/data_path.h"
#include "rem/ast.h"
#include "rem/condition.h"

namespace gqd {

/// Register automaton state index.
using RaState = std::uint32_t;

/// A compiled register automaton (single start / single accept).
struct RegisterAutomaton {
  std::size_t num_states = 0;
  std::size_t num_registers = 0;
  RaState start = 0;
  RaState accept = 0;

  struct StoreEdge {
    std::vector<std::size_t> registers;
    RaState to;
  };
  struct CheckEdge {
    ConditionPtr condition;
    RaState to;
  };
  struct LetterEdge {
    std::uint32_t label;
    RaState to;
  };

  std::vector<std::vector<StoreEdge>> store_edges;
  std::vector<std::vector<CheckEdge>> check_edges;
  std::vector<std::vector<LetterEdge>> letter_edges;

  /// Membership test for a data path (letters as label ids resolved by the
  /// same interner used at compile time). Runs the standard configuration-
  /// set simulation; assignments range over values appearing in the path.
  bool AcceptsDataPath(const DataPath& path) const;
};

/// Compiles an REM to a register automaton. Letters resolve via `labels`;
/// with intern_new_labels == false, letters unknown to the interner become
/// dead fragments (they can never fire), matching query-evaluation
/// semantics against a graph whose alphabet lacks them.
RegisterAutomaton CompileRem(const RemPtr& expression, StringInterner* labels,
                             bool intern_new_labels = false);

/// Convenience: does `expression` (compiled against `labels`) accept `path`?
bool RemMatches(const RemPtr& expression, const DataPath& path,
                StringInterner* labels);

/// Lemma 15: the REM e[w] whose language is exactly the automorphism class
/// [w]. Uses one register per distinct data value of w, in first-occurrence
/// order; labels are emitted by name via `label_names`.
RemPtr BuildPathRem(const DataPath& path, const StringInterner& label_names);

}  // namespace gqd

#endif  // GQD_REM_REGISTER_AUTOMATON_H_
