#include "rem/naive_semantics.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <vector>

namespace gqd {

namespace {

/// Enumerates every assignment over the path's distinct values plus ⊥.
std::vector<RegisterAssignment> AllAssignments(const DataPath& path,
                                               std::size_t k) {
  std::vector<std::uint32_t> values;
  for (ValueId v : path.values) {
    if (std::find(values.begin(), values.end(), v) == values.end()) {
      values.push_back(v);
    }
  }
  values.push_back(kEmptyRegister);
  std::vector<RegisterAssignment> out;
  RegisterAssignment current(k, kEmptyRegister);
  std::vector<std::size_t> index(k, 0);
  while (true) {
    for (std::size_t r = 0; r < k; r++) {
      current[r] = values[index[r]];
    }
    out.push_back(current);
    std::size_t r = 0;
    while (r < k && ++index[r] == values.size()) {
      index[r] = 0;
      r++;
    }
    if (r == k) {
      break;
    }
  }
  if (k == 0) {
    out.assign(1, RegisterAssignment{});
  }
  return out;
}

/// Tables indexed by (i, j): the ⊢ relation for the subpath w[i..j].
class Table {
 public:
  explicit Table(std::size_t positions)
      : positions_(positions), cells_(positions * positions) {}

  AssignmentRelation& At(std::size_t i, std::size_t j) {
    return cells_[i * positions_ + j];
  }
  const AssignmentRelation& At(std::size_t i, std::size_t j) const {
    return cells_[i * positions_ + j];
  }
  std::size_t positions() const { return positions_; }

 private:
  std::size_t positions_;
  std::vector<AssignmentRelation> cells_;
};

/// R1 ∘ R2 as relations on assignments.
AssignmentRelation ComposeRelations(const AssignmentRelation& r1,
                                    const AssignmentRelation& r2) {
  AssignmentRelation out;
  for (const auto& [a, b] : r1) {
    for (const auto& [c, d] : r2) {
      if (b == c) {
        out.insert({a, d});
      }
    }
  }
  return out;
}

Table Evaluate(const RemPtr& node, const DataPath& path,
               const StringInterner& labels, std::size_t k) {
  std::size_t positions = path.values.size();
  Table table(positions);
  switch (node->kind) {
    case RemKind::kEpsilon:
      // (ε, w, σ) ⊢ σ' iff w = d and σ = σ'.
      for (std::size_t i = 0; i < positions; i++) {
        for (const RegisterAssignment& sigma : AllAssignments(path, k)) {
          table.At(i, i).insert({sigma, sigma});
        }
      }
      break;
    case RemKind::kLetter: {
      // (a, w, σ) ⊢ σ' iff w = d1 a d2 and σ' = σ.
      auto id = labels.Find(node->letter);
      if (!id.has_value()) {
        break;
      }
      for (std::size_t i = 0; i + 1 < positions; i++) {
        if (path.letters[i] != *id) {
          continue;
        }
        for (const RegisterAssignment& sigma : AllAssignments(path, k)) {
          table.At(i, i + 1).insert({sigma, sigma});
        }
      }
      break;
    }
    case RemKind::kUnion:
      for (const RemPtr& child : node->children) {
        Table sub = Evaluate(child, path, labels, k);
        for (std::size_t i = 0; i < positions; i++) {
          for (std::size_t j = 0; j < positions; j++) {
            for (const AssignmentPair& p : sub.At(i, j)) {
              table.At(i, j).insert(p);
            }
          }
        }
      }
      break;
    case RemKind::kConcat: {
      assert(!node->children.empty());
      table = Evaluate(node->children[0], path, labels, k);
      for (std::size_t c = 1; c < node->children.size(); c++) {
        Table rhs = Evaluate(node->children[c], path, labels, k);
        Table next(positions);
        for (std::size_t i = 0; i < positions; i++) {
          for (std::size_t mid = 0; mid < positions; mid++) {
            if (table.At(i, mid).empty()) {
              continue;
            }
            for (std::size_t j = 0; j < positions; j++) {
              AssignmentRelation composed =
                  ComposeRelations(table.At(i, mid), rhs.At(mid, j));
              for (const AssignmentPair& p : composed) {
                next.At(i, j).insert(p);
              }
            }
          }
        }
        table = std::move(next);
      }
      break;
    }
    case RemKind::kPlus: {
      // (e+, w, σ) ⊢ σ': least fixpoint of R ∪ R∘R⁺ over subpath splits.
      Table base = Evaluate(node->children[0], path, labels, k);
      table = base;
      bool changed = true;
      while (changed) {
        changed = false;
        for (std::size_t i = 0; i < positions; i++) {
          for (std::size_t mid = 0; mid < positions; mid++) {
            if (base.At(i, mid).empty()) {
              continue;
            }
            for (std::size_t j = 0; j < positions; j++) {
              AssignmentRelation composed =
                  ComposeRelations(base.At(i, mid), table.At(mid, j));
              for (const AssignmentPair& p : composed) {
                if (table.At(i, j).insert(p).second) {
                  changed = true;
                }
              }
            }
          }
        }
      }
      break;
    }
    case RemKind::kCondition: {
      // (e[c], w, σ) ⊢ σ' iff (e, w, σ) ⊢ σ' and σ', d_last ⊨ c.
      Table sub = Evaluate(node->children[0], path, labels, k);
      for (std::size_t i = 0; i < positions; i++) {
        for (std::size_t j = 0; j < positions; j++) {
          for (const AssignmentPair& p : sub.At(i, j)) {
            if (ConditionSatisfied(node->condition, path.values[j],
                                   p.second)) {
              table.At(i, j).insert(p);
            }
          }
        }
      }
      break;
    }
    case RemKind::kBind: {
      // (↓r̄.e, w, σ) ⊢ σ' iff (e, w, σ[r̄ → d_first]) ⊢ σ'.
      Table sub = Evaluate(node->children[0], path, labels, k);
      for (std::size_t i = 0; i < positions; i++) {
        for (std::size_t j = 0; j < positions; j++) {
          for (const RegisterAssignment& sigma : AllAssignments(path, k)) {
            RegisterAssignment stored = sigma;
            for (std::size_t r : node->registers) {
              stored[r] = path.values[i];
            }
            for (const AssignmentPair& p : sub.At(i, j)) {
              if (p.first == stored) {
                table.At(i, j).insert({sigma, p.second});
              }
            }
          }
        }
      }
      break;
    }
  }
  return table;
}

}  // namespace

bool NaiveRemMatches(const RemPtr& expression, const DataPath& path,
                     const StringInterner& labels) {
  std::size_t k = RemNumRegisters(expression);
  Table table = Evaluate(expression, path, labels, k);
  RegisterAssignment bottom(k, kEmptyRegister);
  for (const AssignmentPair& p :
       table.At(0, path.values.size() - 1)) {
    if (p.first == bottom) {
      return true;
    }
  }
  return false;
}

}  // namespace gqd
