#include "eval/preflight.h"

#include <variant>

#include "analysis/pass_manager.h"

namespace gqd {

namespace {

Status RejectOnErrors(const std::vector<Diagnostic>& diagnostics,
                      const std::string& what) {
  if (!HasErrors(diagnostics)) {
    return Status::OK();
  }
  std::vector<Diagnostic> errors;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == DiagnosticSeverity::kError) {
      errors.push_back(d);
    }
  }
  return Status::InvalidArgument("pre-flight rejected " + what + ":\n" +
                                 DiagnosticsToText(errors));
}

}  // namespace

std::vector<Diagnostic> LintPathExpression(const DataGraph& graph,
                                           const PathExpression& expression) {
  AnalysisOptions options;
  options.graph = &graph;
  if (const RegexPtr* regex = std::get_if<RegexPtr>(&expression)) {
    return LintRegex(*regex, options);
  }
  if (const RemPtr* rem = std::get_if<RemPtr>(&expression)) {
    return LintRem(*rem, options);
  }
  return LintRee(std::get<ReePtr>(expression), options);
}

Status PreflightPathExpression(const DataGraph& graph,
                               const PathExpression& expression) {
  return RejectOnErrors(LintPathExpression(graph, expression),
                        "expression `" + PathExpressionToString(expression) +
                            "`");
}

Status PreflightCrdpq(const DataGraph& graph, const Crdpq& query) {
  GQD_RETURN_NOT_OK(query.Validate());
  for (const CrdpqAtom& atom : query.atoms) {
    GQD_RETURN_NOT_OK(RejectOnErrors(
        LintPathExpression(graph, atom.expression),
        "atom " + atom.from_variable + " -[" +
            PathExpressionToString(atom.expression) + "]-> " +
            atom.to_variable));
  }
  return Status::OK();
}

Status PreflightUcrdpq(const DataGraph& graph, const Ucrdpq& query) {
  GQD_RETURN_NOT_OK(query.Validate());
  for (const Crdpq& disjunct : query.disjuncts) {
    GQD_RETURN_NOT_OK(PreflightCrdpq(graph, disjunct));
  }
  return Status::OK();
}

}  // namespace gqd
