#include "eval/convert.h"

#include <cassert>

namespace gqd {

RemPtr RegexToRem(const RegexPtr& expression) {
  switch (expression->kind) {
    case RegexKind::kEpsilon:
      return rem::Epsilon();
    case RegexKind::kLetter:
      return rem::Letter(expression->letter);
    case RegexKind::kUnion: {
      std::vector<RemPtr> children;
      for (const RegexPtr& child : expression->children) {
        children.push_back(RegexToRem(child));
      }
      return rem::Union(std::move(children));
    }
    case RegexKind::kConcat: {
      std::vector<RemPtr> children;
      for (const RegexPtr& child : expression->children) {
        children.push_back(RegexToRem(child));
      }
      return rem::Concat(std::move(children));
    }
    case RegexKind::kStar:
      return rem::Star(RegexToRem(expression->children[0]));
    case RegexKind::kPlus:
      return rem::Plus(RegexToRem(expression->children[0]));
  }
  assert(false && "unreachable");
  return rem::Epsilon();
}

std::size_t ReeRestrictionDepth(const ReePtr& expression) {
  std::size_t depth = 0;
  for (const ReePtr& child : expression->children) {
    depth = std::max(depth, ReeRestrictionDepth(child));
  }
  if (expression->kind == ReeKind::kEq ||
      expression->kind == ReeKind::kNeq) {
    depth += 1;
  }
  return depth;
}

namespace {

/// `depth` is the register index reserved for the innermost enclosing
/// restriction-in-progress; the next restriction below uses `depth`.
RemPtr Convert(const ReePtr& node, std::size_t depth) {
  switch (node->kind) {
    case ReeKind::kEpsilon:
      return rem::Epsilon();
    case ReeKind::kLetter:
      return rem::Letter(node->letter);
    case ReeKind::kUnion: {
      std::vector<RemPtr> children;
      for (const ReePtr& child : node->children) {
        children.push_back(Convert(child, depth));
      }
      return rem::Union(std::move(children));
    }
    case ReeKind::kConcat: {
      std::vector<RemPtr> children;
      for (const ReePtr& child : node->children) {
        children.push_back(Convert(child, depth));
      }
      return rem::Concat(std::move(children));
    }
    case ReeKind::kPlus:
      return rem::Plus(Convert(node->children[0], depth));
    case ReeKind::kEq:
      // e= ↦ ↓r.ẽ[r=]: store the first value into register `depth`, run
      // the body (whose own restrictions use deeper registers), test the
      // last value for equality.
      return rem::Bind({depth},
                       rem::Test(Convert(node->children[0], depth + 1),
                                 cond::RegisterEq(depth)));
    case ReeKind::kNeq:
      return rem::Bind({depth},
                       rem::Test(Convert(node->children[0], depth + 1),
                                 cond::RegisterNeq(depth)));
  }
  assert(false && "unreachable");
  return rem::Epsilon();
}

}  // namespace

RemPtr ReeToRem(const ReePtr& expression) { return Convert(expression, 0); }

}  // namespace gqd
