#include "eval/rpq_eval.h"

#include <queue>
#include <vector>

#include "obs/trace.h"
#include "regex/nfa.h"

namespace gqd {

namespace {

/// Product BFS shared by both entry points. `cancel` may be null; with a
/// token the search polls it (stride-amortized) and reports expiry.
Result<BinaryRelation> EvaluateRpqImpl(const DataGraph& graph,
                                       const RegexPtr& regex,
                                       const CancelToken* cancel,
                                       const ResourceBudget* budget) {
  GQD_TRACE_SPAN(span, "eval.rpq");
  // The graph's interner is const; compile against a copy so unknown regex
  // letters stay unknown (dead) without mutating the graph.
  StringInterner labels = graph.labels();
  Nfa nfa = CompileRegex(regex, &labels, /*intern_new_labels=*/false);

  std::size_t n = graph.NumNodes();
  GQD_TRACE_SPAN_ATTR(span, "nodes", n);
  GQD_TRACE_SPAN_ATTR(span, "nfa_states", nfa.num_states);
  BinaryRelation result(n);
  std::uint32_t ticks = 0;
  std::uint32_t budget_ticks = 0;

  // One BFS over (node, nfa-state) per start node.
  for (NodeId u = 0; u < n; u++) {
    std::vector<bool> seen(n * nfa.num_states, false);
    std::queue<std::pair<NodeId, NfaState>> frontier;
    auto visit = [&](NodeId v, NfaState s) {
      std::size_t key = v * nfa.num_states + s;
      if (!seen[key]) {
        seen[key] = true;
        frontier.emplace(v, s);
      }
    };
    visit(u, nfa.start);
    while (!frontier.empty()) {
      if (GQD_CANCEL_STRIDE_CHECK(cancel, ticks)) {
        return cancel->Check();
      }
      if (budget != nullptr) {
        budget->ChargeTuples(1);
        if (GQD_BUDGET_STRIDE_CHECK(budget, budget_ticks)) {
          return budget->Check();
        }
      }
      auto [v, s] = frontier.front();
      frontier.pop();
      if (s == nfa.accept) {
        result.Set(u, v);
      }
      for (NfaState t : nfa.eps_edges[s]) {
        visit(v, t);
      }
      for (const auto& [label, t] : nfa.letter_edges[s]) {
        for (const auto& [edge_label, w] : graph.OutEdges(v)) {
          if (edge_label == label) {
            visit(w, t);
          }
        }
      }
    }
  }
  return result;
}

}  // namespace

BinaryRelation EvaluateRpq(const DataGraph& graph, const RegexPtr& regex) {
  return EvaluateRpqImpl(graph, regex, nullptr, nullptr).ValueOrDie();
}

Result<BinaryRelation> EvaluateRpq(const DataGraph& graph,
                                   const RegexPtr& regex,
                                   const EvalOptions& options) {
  return EvaluateRpqImpl(graph, regex, options.cancel, options.budget);
}

}  // namespace gqd
