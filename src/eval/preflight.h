// Opt-in pre-flight static analysis before query evaluation.
//
// Evaluation happily returns ∅ for queries that are silently vacuous (a
// register compared before any store, a letter outside Σ, an unsatisfiable
// condition). The pre-flight runs the lint pass manager against the target
// graph and converts error-level findings into an InvalidArgument Status
// whose message carries the rendered diagnostics — fast rejection before
// the expensive product-construction machinery runs. Warnings and notes
// never block evaluation.

#ifndef GQD_EVAL_PREFLIGHT_H_
#define GQD_EVAL_PREFLIGHT_H_

#include <vector>

#include "analysis/diagnostic.h"
#include "common/status.h"
#include "eval/query.h"
#include "graph/data_graph.h"

namespace gqd {

/// Lints `expression` against `graph`; InvalidArgument on error-level
/// findings, OK otherwise.
Status PreflightPathExpression(const DataGraph& graph,
                               const PathExpression& expression);

/// Pre-flights every atom of the query.
Status PreflightCrdpq(const DataGraph& graph, const Crdpq& query);

/// Pre-flights every disjunct.
Status PreflightUcrdpq(const DataGraph& graph, const Ucrdpq& query);

/// The diagnostics themselves (all severities), for callers that want to
/// report rather than reject.
std::vector<Diagnostic> LintPathExpression(const DataGraph& graph,
                                           const PathExpression& expression);

}  // namespace gqd

#endif  // GQD_EVAL_PREFLIGHT_H_
