#include "eval/explain.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "eval/convert.h"
#include "rem/register_automaton.h"

namespace gqd {

namespace {

/// Dense assignment codec (mirrors eval/rem_eval.cc).
class Codec {
 public:
  Codec(std::size_t num_registers, std::size_t num_values)
      : num_registers_(num_registers), base_(num_values + 1) {}

  std::uint64_t Encode(const RegisterAssignment& assignment) const {
    std::uint64_t code = 0;
    for (std::size_t i = num_registers_; i-- > 0;) {
      std::uint64_t digit = (assignment[i] == kEmptyRegister)
                                ? (base_ - 1)
                                : assignment[i];
      code = code * base_ + digit;
    }
    return code;
  }

  RegisterAssignment Decode(std::uint64_t code) const {
    RegisterAssignment assignment(num_registers_);
    for (std::size_t i = 0; i < num_registers_; i++) {
      std::uint64_t digit = code % base_;
      assignment[i] = (digit == base_ - 1)
                          ? kEmptyRegister
                          : static_cast<std::uint32_t>(digit);
      code /= base_;
    }
    return assignment;
  }

  std::uint64_t NumCodes() const {
    std::uint64_t total = 1;
    for (std::size_t i = 0; i < num_registers_; i++) {
      total *= base_;
    }
    return total;
  }

 private:
  std::size_t num_registers_;
  std::uint64_t base_;
};

struct Step {
  std::uint64_t parent;
  bool via_letter = false;
  LabelId label = 0;
};

}  // namespace

std::optional<ExplainedPath> ExplainRemPair(const DataGraph& graph,
                                            const RemPtr& expression,
                                            NodeId from, NodeId to) {
  StringInterner labels = graph.labels();
  RegisterAutomaton ra =
      CompileRem(expression, &labels, /*intern_new_labels=*/false);
  Codec codec(ra.num_registers, graph.NumDataValues());
  std::uint64_t codes = codec.NumCodes();

  auto key_of = [&](NodeId v, RaState q, std::uint64_t code) {
    return (static_cast<std::uint64_t>(v) * ra.num_states + q) * codes +
           code;
  };
  auto node_of = [&](std::uint64_t key) {
    return static_cast<NodeId>(key / codes / ra.num_states);
  };
  auto state_of = [&](std::uint64_t key) {
    return static_cast<RaState>((key / codes) % ra.num_states);
  };
  auto code_of = [&](std::uint64_t key) { return key % codes; };

  std::unordered_map<std::uint64_t, Step> parents;
  std::uint64_t start = key_of(
      from, ra.start,
      codec.Encode(RegisterAssignment(ra.num_registers, kEmptyRegister)));
  parents.emplace(start, Step{start, false, 0});

  // Layered BFS: saturate with ε-like moves (store/check), then take one
  // letter step; witnesses are therefore letter-minimal.
  std::vector<std::uint64_t> frontier = {start};
  std::optional<std::uint64_t> accepting;

  auto saturate = [&](std::vector<std::uint64_t> layer) {
    std::vector<std::uint64_t> saturated;
    while (!layer.empty()) {
      std::uint64_t key = layer.back();
      layer.pop_back();
      saturated.push_back(key);
      NodeId v = node_of(key);
      RaState q = state_of(key);
      std::uint32_t value = graph.DataValueOf(v);
      RegisterAssignment assignment = codec.Decode(code_of(key));
      for (const auto& edge : ra.store_edges[q]) {
        RegisterAssignment next = assignment;
        for (std::size_t r : edge.registers) {
          next[r] = value;
        }
        std::uint64_t next_key = key_of(v, edge.to, codec.Encode(next));
        if (parents.emplace(next_key, Step{key, false, 0}).second) {
          layer.push_back(next_key);
        }
      }
      for (const auto& edge : ra.check_edges[q]) {
        if (ConditionSatisfied(edge.condition, value, assignment)) {
          std::uint64_t next_key = key_of(v, edge.to, code_of(key));
          if (parents.emplace(next_key, Step{key, false, 0}).second) {
            layer.push_back(next_key);
          }
        }
      }
    }
    return saturated;
  };

  frontier = saturate(std::move(frontier));
  while (true) {
    for (std::uint64_t key : frontier) {
      if (node_of(key) == to && state_of(key) == ra.accept) {
        accepting = key;
        break;
      }
    }
    if (accepting.has_value()) {
      break;
    }
    std::vector<std::uint64_t> next_layer;
    for (std::uint64_t key : frontier) {
      NodeId v = node_of(key);
      RaState q = state_of(key);
      for (const auto& edge : ra.letter_edges[q]) {
        for (const auto& [edge_label, w] : graph.OutEdges(v)) {
          if (edge_label == edge.label) {
            std::uint64_t next_key = key_of(w, edge.to, code_of(key));
            if (parents.emplace(next_key, Step{key, true, edge.label})
                    .second) {
              next_layer.push_back(next_key);
            }
          }
        }
      }
    }
    if (next_layer.empty()) {
      return std::nullopt;
    }
    frontier = saturate(std::move(next_layer));
  }

  // Reconstruct the node/label path by walking parents.
  ExplainedPath path;
  std::uint64_t at = *accepting;
  path.nodes.push_back(node_of(at));
  while (at != start) {
    const Step& step = parents.at(at);
    if (step.via_letter) {
      path.labels.push_back(step.label);
      path.nodes.push_back(node_of(step.parent));
    }
    at = step.parent;
  }
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.labels.begin(), path.labels.end());
  auto data_path = DataPathOfNodePath(graph, path.nodes, path.labels);
  assert(data_path.ok());
  path.data_path = std::move(data_path).value();
  return path;
}

std::optional<ExplainedPath> ExplainRpqPair(const DataGraph& graph,
                                            const RegexPtr& expression,
                                            NodeId from, NodeId to) {
  return ExplainRemPair(graph, RegexToRem(expression), from, to);
}

std::optional<ExplainedPath> ExplainReePair(const DataGraph& graph,
                                            const ReePtr& expression,
                                            NodeId from, NodeId to) {
  return ExplainRemPair(graph, ReeToRem(expression), from, to);
}

}  // namespace gqd
