// Witness extraction for query evaluation: not just *that* ⟨u, v⟩ is in
// Q(G), but a concrete path demonstrating it.
//
// For an REM query the witness comes out of the same product space the
// evaluator walks — (node, automaton state, register assignment) — by BFS
// with parent links, so the returned path is one of minimum length. RPQ
// and REE queries are explained through their REM embeddings
// (eval/convert.h).

#ifndef GQD_EVAL_EXPLAIN_H_
#define GQD_EVAL_EXPLAIN_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "graph/data_graph.h"
#include "graph/data_path.h"
#include "regex/ast.h"
#include "ree/ast.h"
#include "rem/ast.h"

namespace gqd {

/// A witness: the node path, its edge labels, and the induced data path.
struct ExplainedPath {
  std::vector<NodeId> nodes;    ///< nodes.size() == labels.size() + 1
  std::vector<LabelId> labels;
  DataPath data_path;
};

/// A shortest data path from `from` to `to` in L(expression), or nullopt
/// when ⟨from, to⟩ ∉ Q(G).
std::optional<ExplainedPath> ExplainRemPair(const DataGraph& graph,
                                            const RemPtr& expression,
                                            NodeId from, NodeId to);

std::optional<ExplainedPath> ExplainRpqPair(const DataGraph& graph,
                                            const RegexPtr& expression,
                                            NodeId from, NodeId to);

std::optional<ExplainedPath> ExplainReePair(const DataGraph& graph,
                                            const ReePtr& expression,
                                            NodeId from, NodeId to);

}  // namespace gqd

#endif  // GQD_EVAL_EXPLAIN_H_
