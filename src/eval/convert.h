// Expressiveness inclusions, executable: RPQ ⊆ RDPQ_= ⊆ RDPQ_mem
// (Section 2.2 of the paper — "RDPQ_mem can define more relations than
// RDPQ_=", and both subsume RPQs).
//
// * A standard regex is a register-free REM (structural embedding).
// * An REE embeds into REM by spending one register per restriction
//   *nesting level*: e= becomes ↓r.ẽ[r=] — store the first value, test
//   the last. Sequential restrictions at the same depth reuse the same
//   register (each ↓ re-stores on entry), so the register count is the
//   restriction nesting depth, not the restriction count.
//
// These conversions power witness extraction (eval/explain.h) and are
// property-tested: evaluation before and after conversion must agree on
// every graph.

#ifndef GQD_EVAL_CONVERT_H_
#define GQD_EVAL_CONVERT_H_

#include "regex/ast.h"
#include "ree/ast.h"
#include "rem/ast.h"

namespace gqd {

/// Embeds a standard regex as a register-free REM.
RemPtr RegexToRem(const RegexPtr& expression);

/// Embeds an REE as an REM with ReeRestrictionDepth(e) registers.
RemPtr ReeToRem(const ReePtr& expression);

/// Maximum nesting depth of =/≠ restrictions (the register budget of
/// ReeToRem).
std::size_t ReeRestrictionDepth(const ReePtr& expression);

}  // namespace gqd

#endif  // GQD_EVAL_CONVERT_H_
