#include "eval/rem_eval.h"

#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "analysis/plan/automaton_analysis.h"
#include "obs/trace.h"
#include "rem/register_automaton.h"

namespace gqd {

namespace {

/// Dense encoding of register assignments over D_G ∪ {⊥}: each register
/// takes one of δ+1 codes (δ = the ⊥ code).
class AssignmentCodec {
 public:
  AssignmentCodec(std::size_t num_registers, std::size_t num_values)
      : num_registers_(num_registers), base_(num_values + 1) {}

  std::uint64_t Encode(const RegisterAssignment& assignment) const {
    std::uint64_t code = 0;
    for (std::size_t i = num_registers_; i-- > 0;) {
      std::uint64_t digit = (assignment[i] == kEmptyRegister)
                                ? (base_ - 1)
                                : assignment[i];
      code = code * base_ + digit;
    }
    return code;
  }

  RegisterAssignment Decode(std::uint64_t code) const {
    RegisterAssignment assignment(num_registers_);
    for (std::size_t i = 0; i < num_registers_; i++) {
      std::uint64_t digit = code % base_;
      assignment[i] = (digit == base_ - 1)
                          ? kEmptyRegister
                          : static_cast<std::uint32_t>(digit);
      code /= base_;
    }
    return assignment;
  }

  std::uint64_t NumCodes() const {
    std::uint64_t total = 1;
    for (std::size_t i = 0; i < num_registers_; i++) {
      total *= base_;
    }
    return total;
  }

 private:
  std::size_t num_registers_;
  std::uint64_t base_;
};

/// Configuration BFS shared by all entry points, over an already-compiled
/// (and typically plan-pruned) automaton. `cancel` may be null; with a
/// token the search polls it (stride-amortized) and reports expiry.
Result<BinaryRelation> EvaluateRemImpl(const DataGraph& graph,
                                       const RegisterAutomaton& ra,
                                       const CancelToken* cancel,
                                       const ResourceBudget* budget) {
  GQD_TRACE_SPAN(span, "eval.rem");
  std::size_t n = graph.NumNodes();
  AssignmentCodec codec(ra.num_registers, graph.NumDataValues());
  GQD_TRACE_SPAN_ATTR(span, "nodes", n);
  GQD_TRACE_SPAN_ATTR(span, "registers", ra.num_registers);
  BinaryRelation result(n);
  std::uint32_t ticks = 0;
  std::uint32_t budget_ticks = 0;

  struct Config {
    NodeId node;
    RaState state;
    std::uint64_t assignment_code;
  };

  std::uint64_t assignment_codes = codec.NumCodes();
  for (NodeId u = 0; u < n; u++) {
    std::unordered_set<std::uint64_t> seen;
    std::queue<Config> frontier;
    auto visit = [&](NodeId v, RaState q, std::uint64_t code) {
      std::uint64_t key =
          (static_cast<std::uint64_t>(v) * ra.num_states + q) *
              assignment_codes +
          code;
      if (seen.insert(key).second) {
        if (budget != nullptr) {
          // Each retained configuration costs a hash-set node plus the
          // queued Config (the PSPACE blow-up axis of REM evaluation).
          budget->ChargeTuples(1);
          budget->ChargeBytes(static_cast<std::int64_t>(
              sizeof(std::uint64_t) + sizeof(Config)));
        }
        frontier.push(Config{v, q, code});
      }
    };
    visit(u, ra.start,
          codec.Encode(RegisterAssignment(ra.num_registers, kEmptyRegister)));
    while (!frontier.empty()) {
      if (GQD_CANCEL_STRIDE_CHECK(cancel, ticks)) {
        return cancel->Check();
      }
      if (GQD_BUDGET_STRIDE_CHECK(budget, budget_ticks)) {
        return budget->Check();
      }
      Config c = frontier.front();
      frontier.pop();
      if (c.state == ra.accept) {
        result.Set(u, c.node);
      }
      std::uint32_t value = graph.DataValueOf(c.node);
      RegisterAssignment assignment = codec.Decode(c.assignment_code);
      for (const auto& edge : ra.store_edges[c.state]) {
        RegisterAssignment next = assignment;
        for (std::size_t r : edge.registers) {
          next[r] = value;
        }
        visit(c.node, edge.to, codec.Encode(next));
      }
      for (const auto& edge : ra.check_edges[c.state]) {
        if (ConditionSatisfied(edge.condition, value, assignment)) {
          visit(c.node, edge.to, c.assignment_code);
        }
      }
      for (const auto& edge : ra.letter_edges[c.state]) {
        for (const auto& [edge_label, w] : graph.OutEdges(c.node)) {
          if (edge_label == edge.label) {
            visit(w, edge.to, c.assignment_code);
          }
        }
      }
    }
  }
  return result;
}

/// Compiles against the graph's alphabet and applies the plan pass's
/// language-preserving automaton reduction before the BFS.
RegisterAutomaton CompileAndPrune(const DataGraph& graph,
                                  const RemPtr& expression) {
  StringInterner labels = graph.labels();
  RegisterAutomaton ra =
      CompileRem(expression, &labels, /*intern_new_labels=*/false);
  return PruneAutomaton(ra, AnalyzeAutomaton(ra));
}

}  // namespace

BinaryRelation EvaluateRem(const DataGraph& graph, const RemPtr& expression) {
  return EvaluateRemImpl(graph, CompileAndPrune(graph, expression), nullptr,
                         nullptr)
      .ValueOrDie();
}

Result<BinaryRelation> EvaluateRem(const DataGraph& graph,
                                   const RemPtr& expression,
                                   const EvalOptions& options) {
  return EvaluateRemImpl(graph, CompileAndPrune(graph, expression),
                         options.cancel, options.budget);
}

Result<BinaryRelation> EvaluateRemAutomaton(const DataGraph& graph,
                                            const RegisterAutomaton& automaton,
                                            const EvalOptions& options) {
  return EvaluateRemImpl(graph, automaton, options.cancel, options.budget);
}

}  // namespace gqd
