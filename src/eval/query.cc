#include "eval/query.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "eval/rem_eval.h"
#include "eval/ree_eval.h"
#include "eval/rpq_eval.h"

namespace gqd {

BinaryRelation EvaluatePathExpression(const DataGraph& graph,
                                      const PathExpression& expression) {
  if (const auto* regex = std::get_if<RegexPtr>(&expression)) {
    return EvaluateRpq(graph, *regex);
  }
  if (const auto* rem = std::get_if<RemPtr>(&expression)) {
    return EvaluateRem(graph, *rem);
  }
  return EvaluateRee(graph, std::get<ReePtr>(expression));
}

std::string PathExpressionToString(const PathExpression& expression) {
  if (const auto* regex = std::get_if<RegexPtr>(&expression)) {
    return RegexToString(*regex);
  }
  if (const auto* rem = std::get_if<RemPtr>(&expression)) {
    return RemToString(*rem);
  }
  return ReeToString(std::get<ReePtr>(expression));
}

Status Crdpq::Validate() const {
  if (atoms.empty()) {
    return Status::InvalidArgument("CRDPQ needs at least one atom");
  }
  if (answer_variables.empty()) {
    return Status::InvalidArgument("CRDPQ needs a non-empty answer tuple");
  }
  for (const std::string& z : answer_variables) {
    bool found = false;
    for (const CrdpqAtom& atom : atoms) {
      if (atom.from_variable == z || atom.to_variable == z) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("answer variable '" + z +
                                     "' not used in any atom");
    }
  }
  return Status::OK();
}

std::string Crdpq::ToString() const {
  std::ostringstream os;
  os << "Ans(";
  for (std::size_t i = 0; i < answer_variables.size(); i++) {
    if (i > 0) {
      os << ",";
    }
    os << answer_variables[i];
  }
  os << ") := ";
  for (std::size_t i = 0; i < atoms.size(); i++) {
    if (i > 0) {
      os << " & ";
    }
    os << atoms[i].from_variable << " -["
       << PathExpressionToString(atoms[i].expression) << "]-> "
       << atoms[i].to_variable;
  }
  return os.str();
}

Result<TupleRelation> EvaluateCrdpq(const DataGraph& graph,
                                    const Crdpq& query) {
  GQD_RETURN_NOT_OK(query.Validate());

  // Collect variables in first-use order and evaluate each atom once.
  std::vector<std::string> variables;
  auto variable_index = [&](const std::string& name) {
    auto it = std::find(variables.begin(), variables.end(), name);
    if (it != variables.end()) {
      return static_cast<std::size_t>(it - variables.begin());
    }
    variables.push_back(name);
    return variables.size() - 1;
  };

  struct IndexedAtom {
    std::size_t from;
    std::size_t to;
    BinaryRelation relation;
  };
  std::vector<IndexedAtom> atoms;
  for (const CrdpqAtom& atom : query.atoms) {
    IndexedAtom indexed;
    indexed.from = variable_index(atom.from_variable);
    indexed.to = variable_index(atom.to_variable);
    indexed.relation = EvaluatePathExpression(graph, atom.expression);
    atoms.push_back(std::move(indexed));
  }
  std::vector<std::size_t> answer_indices;
  for (const std::string& z : query.answer_variables) {
    answer_indices.push_back(variable_index(z));
  }

  // Backtracking join: assign variables in order; after assigning variable
  // i, check every atom whose endpoints are both <= i.
  std::size_t n = graph.NumNodes();
  TupleRelation result(query.answer_variables.size());
  std::vector<NodeId> assignment(variables.size(), 0);

  auto consistent_up_to = [&](std::size_t bound) {
    for (const IndexedAtom& atom : atoms) {
      if (atom.from > bound || atom.to > bound) {
        continue;
      }
      // Only atoms whose later endpoint is exactly `bound` are new.
      if (atom.from != bound && atom.to != bound) {
        continue;
      }
      if (!atom.relation.Test(assignment[atom.from], assignment[atom.to])) {
        return false;
      }
    }
    return true;
  };

  // Iterative backtracking over variable positions.
  std::size_t depth = 0;
  std::vector<NodeId> next_candidate(variables.size() + 1, 0);
  while (true) {
    if (depth == variables.size()) {
      NodeTuple tuple;
      tuple.reserve(answer_indices.size());
      for (std::size_t idx : answer_indices) {
        tuple.push_back(assignment[idx]);
      }
      result.Insert(std::move(tuple));
      // Backtrack.
      if (depth == 0) {
        break;
      }
      depth--;
      continue;
    }
    bool advanced = false;
    for (NodeId v = next_candidate[depth]; v < n; v++) {
      assignment[depth] = v;
      if (consistent_up_to(depth)) {
        next_candidate[depth] = v + 1;
        depth++;
        next_candidate[depth] = 0;
        advanced = true;
        break;
      }
    }
    if (!advanced) {
      if (depth == 0) {
        break;
      }
      next_candidate[depth] = 0;
      depth--;
    }
  }
  return result;
}

Status Ucrdpq::Validate() const {
  if (disjuncts.empty()) {
    return Status::InvalidArgument("UCRDPQ needs at least one disjunct");
  }
  std::size_t arity = disjuncts[0].answer_variables.size();
  for (const Crdpq& q : disjuncts) {
    GQD_RETURN_NOT_OK(q.Validate());
    if (q.answer_variables.size() != arity) {
      return Status::InvalidArgument("UCRDPQ disjuncts have mixed arity");
    }
  }
  return Status::OK();
}

std::string Ucrdpq::ToString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < disjuncts.size(); i++) {
    if (i > 0) {
      os << "\nUNION\n";
    }
    os << disjuncts[i].ToString();
  }
  return os.str();
}

Result<TupleRelation> EvaluateUcrdpq(const DataGraph& graph,
                                     const Ucrdpq& query) {
  GQD_RETURN_NOT_OK(query.Validate());
  TupleRelation result(query.disjuncts[0].answer_variables.size());
  for (const Crdpq& q : query.disjuncts) {
    GQD_ASSIGN_OR_RETURN(TupleRelation part, EvaluateCrdpq(graph, q));
    for (const NodeTuple& t : part.tuples()) {
      result.Insert(t);
    }
  }
  return result;
}

}  // namespace gqd
