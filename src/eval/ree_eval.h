// RDPQ_= evaluation: Q = x -e-> y for an REE e.
//
// Unlike REM, REE subexpressions compose through their endpoint relations
// alone (Lemma 29 of the paper): S_{e+f} = S_e + S_f, S_{ef} = S_e ∘ S_f,
// S_{e=} = (S_e)=, S_{e≠} = (S_e)≠, and S_{e⁺} is the transitive closure
// of S_e. Evaluation is therefore a bottom-up pass over the AST using the
// BinaryRelation algebra — polynomial time, and the key structural fact
// behind the PSPACE definability algorithm.

#ifndef GQD_EVAL_REE_EVAL_H_
#define GQD_EVAL_REE_EVAL_H_

#include "common/status.h"
#include "eval/eval_options.h"
#include "graph/data_graph.h"
#include "graph/relation.h"
#include "ree/ast.h"

namespace gqd {

/// Evaluates the RDPQ_= x -e-> y on `graph`; returns all satisfying pairs.
BinaryRelation EvaluateRee(const DataGraph& graph, const ReePtr& expression);

/// Cancellable variant: polls `options.cancel` between relation-algebra
/// steps and returns Status::DeadlineExceeded once it expires.
Result<BinaryRelation> EvaluateRee(const DataGraph& graph,
                                   const ReePtr& expression,
                                   const EvalOptions& options);

}  // namespace gqd

#endif  // GQD_EVAL_REE_EVAL_H_
