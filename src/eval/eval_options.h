// Shared options for the query evaluators (eval/rpq_eval.h and friends).

#ifndef GQD_EVAL_EVAL_OPTIONS_H_
#define GQD_EVAL_EVAL_OPTIONS_H_

#include "common/budget.h"
#include "common/cancel.h"

namespace gqd {

/// Options accepted by the cancellable evaluator overloads. The evaluators
/// poll `cancel` inside their product BFS / AST recursion and return
/// Status::DeadlineExceeded once it expires; `budget` is charged for
/// explored configurations / materialized relations and exhaustion returns
/// Status::ResourceExhausted. Both may be null.
struct EvalOptions {
  const CancelToken* cancel = nullptr;
  const ResourceBudget* budget = nullptr;
};

}  // namespace gqd

#endif  // GQD_EVAL_EVAL_OPTIONS_H_
