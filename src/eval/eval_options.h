// Shared options for the query evaluators (eval/rpq_eval.h and friends).

#ifndef GQD_EVAL_EVAL_OPTIONS_H_
#define GQD_EVAL_EVAL_OPTIONS_H_

#include "common/cancel.h"

namespace gqd {

/// Options accepted by the cancellable evaluator overloads. The evaluators
/// poll `cancel` inside their product BFS / AST recursion and return
/// Status::DeadlineExceeded once it expires.
struct EvalOptions {
  const CancelToken* cancel = nullptr;
};

}  // namespace gqd

#endif  // GQD_EVAL_EVAL_OPTIONS_H_
