// Query types: regular data path queries and (unions of) conjunctive
// regular data path queries (Definitions 11 and 13 of the paper).

#ifndef GQD_EVAL_QUERY_H_
#define GQD_EVAL_QUERY_H_

#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "graph/data_graph.h"
#include "graph/relation.h"
#include "regex/ast.h"
#include "rem/ast.h"
#include "ree/ast.h"

namespace gqd {

/// The body of a regular data path query x -e-> y: a standard regex (RPQ),
/// an REM (RDPQ_mem) or an REE (RDPQ_=).
using PathExpression = std::variant<RegexPtr, RemPtr, ReePtr>;

/// Evaluates x -e-> y on `graph` for any of the three expression kinds.
BinaryRelation EvaluatePathExpression(const DataGraph& graph,
                                      const PathExpression& expression);

/// Renders the expression in its concrete syntax.
std::string PathExpressionToString(const PathExpression& expression);

/// One conjunct x -e-> y of a CRDPQ; variables are free-form names.
struct CrdpqAtom {
  std::string from_variable;
  std::string to_variable;
  PathExpression expression;
};

/// A conjunctive regular data path query
///   Ans(z) := ∧_i  x_i -e_i-> y_i
/// with z a tuple of variables among the x_i, y_i.
struct Crdpq {
  std::vector<std::string> answer_variables;
  std::vector<CrdpqAtom> atoms;

  /// Checks shape: at least one atom, every answer variable appears in some
  /// atom.
  Status Validate() const;

  std::string ToString() const;
};

/// Evaluates a CRDPQ: the set of µ(z) over all valuations µ of the atom
/// variables into nodes such that every atom's pair is in its expression's
/// relation. Backtracking join over the atom relations.
Result<TupleRelation> EvaluateCrdpq(const DataGraph& graph, const Crdpq& query);

/// A union of CRDPQs of equal arity (Definition 13).
struct Ucrdpq {
  std::vector<Crdpq> disjuncts;

  Status Validate() const;

  std::string ToString() const;
};

/// Evaluates a UCRDPQ: the union of its disjuncts' results.
Result<TupleRelation> EvaluateUcrdpq(const DataGraph& graph,
                                     const Ucrdpq& query);

}  // namespace gqd

#endif  // GQD_EVAL_QUERY_H_
