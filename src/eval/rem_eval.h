// RDPQ_mem evaluation: Q = x -e-> y for an REM e.
//
// Q(G) = all pairs (u, v) connected by a data path in L(e). Evaluated by
// BFS over the product (node, automaton state, register assignment), where
// assignments range over D_G ∪ {⊥} — registers can only ever hold values
// seen along the path. Polynomial for fixed k, exponential in k; this is
// the tractability result of Libkin & Vrgoč the paper builds on.

#ifndef GQD_EVAL_REM_EVAL_H_
#define GQD_EVAL_REM_EVAL_H_

#include "common/status.h"
#include "eval/eval_options.h"
#include "graph/data_graph.h"
#include "graph/relation.h"
#include "rem/ast.h"
#include "rem/register_automaton.h"

namespace gqd {

/// Evaluates the RDPQ_mem x -e-> y on `graph`; returns all satisfying
/// pairs. Letters of `expression` absent from the graph's alphabet match
/// nothing. Both overloads compile against the graph's alphabet and run the
/// plan pass's automaton reduction (analysis/plan/automaton_analysis.h)
/// before the BFS, so dead fragments cost nothing at evaluation time.
BinaryRelation EvaluateRem(const DataGraph& graph, const RemPtr& expression);

/// Cancellable variant: polls `options.cancel` inside the configuration BFS
/// and returns Status::DeadlineExceeded once it expires.
Result<BinaryRelation> EvaluateRem(const DataGraph& graph,
                                   const RemPtr& expression,
                                   const EvalOptions& options);

/// Evaluates a pre-compiled automaton (e.g. a cached QueryPlan's pruned
/// machine). The automaton's labels must be interned against `graph`'s
/// alphabet; no further reduction is applied.
Result<BinaryRelation> EvaluateRemAutomaton(const DataGraph& graph,
                                            const RegisterAutomaton& automaton,
                                            const EvalOptions& options = {});

}  // namespace gqd

#endif  // GQD_EVAL_REM_EVAL_H_
