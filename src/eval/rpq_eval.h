// Regular path query (RPQ) evaluation: Q = x -e-> y for a standard regex e.
//
// Q(G) = all pairs (u, v) with a path from u to v whose label word is in
// L(e). Evaluated by BFS over the product of the graph with e's Thompson
// NFA — the classical PTIME algorithm.

#ifndef GQD_EVAL_RPQ_EVAL_H_
#define GQD_EVAL_RPQ_EVAL_H_

#include "common/status.h"
#include "eval/eval_options.h"
#include "graph/data_graph.h"
#include "graph/relation.h"
#include "regex/ast.h"

namespace gqd {

/// Evaluates the RPQ x -e-> y on `graph`; returns all satisfying pairs.
/// Letters of `regex` not in the graph's alphabet match nothing.
BinaryRelation EvaluateRpq(const DataGraph& graph, const RegexPtr& regex);

/// Cancellable variant: polls `options.cancel` inside the product BFS and
/// returns Status::DeadlineExceeded once it expires.
Result<BinaryRelation> EvaluateRpq(const DataGraph& graph,
                                   const RegexPtr& regex,
                                   const EvalOptions& options);

}  // namespace gqd

#endif  // GQD_EVAL_RPQ_EVAL_H_
