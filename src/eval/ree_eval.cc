#include "eval/ree_eval.h"

#include <cassert>

#include "obs/trace.h"

namespace gqd {

namespace {

/// Bottom-up AST pass shared by both entry points. `cancel` may be null;
/// with a token the recursion polls it before every node's relation-algebra
/// step (each step is O(n³/64) words — coarse-grained polling suffices).
Result<BinaryRelation> EvaluateReeImpl(const DataGraph& graph,
                                       const ReePtr& expression,
                                       const CancelToken* cancel,
                                       const ResourceBudget* budget) {
  if (cancel != nullptr && cancel->Expired()) {
    return cancel->Check();
  }
  std::size_t n = graph.NumNodes();
  if (budget != nullptr) {
    // Each AST node materializes one n×n relation.
    budget->ChargeTuples(1);
    budget->ChargeBytes(
        static_cast<std::int64_t>(n * ((n + 63) / 64) * sizeof(std::uint64_t)));
    GQD_RETURN_NOT_OK(budget->Check());
  }
  switch (expression->kind) {
    case ReeKind::kEpsilon:
      return BinaryRelation::Identity(n);
    case ReeKind::kLetter: {
      auto id = graph.labels().Find(expression->letter);
      if (!id.has_value()) {
        return BinaryRelation(n);
      }
      return BinaryRelation::FromEdges(graph, *id);
    }
    case ReeKind::kUnion: {
      BinaryRelation out(n);
      for (const ReePtr& child : expression->children) {
        GQD_ASSIGN_OR_RETURN(BinaryRelation r,
                             EvaluateReeImpl(graph, child, cancel, budget));
        out.UnionWith(r);
      }
      return out;
    }
    case ReeKind::kConcat: {
      assert(!expression->children.empty());
      GQD_ASSIGN_OR_RETURN(
          BinaryRelation out,
          EvaluateReeImpl(graph, expression->children[0], cancel, budget));
      for (std::size_t i = 1; i < expression->children.size(); i++) {
        GQD_ASSIGN_OR_RETURN(
            BinaryRelation next,
            EvaluateReeImpl(graph, expression->children[i], cancel, budget));
        out = out.Compose(next);
      }
      return out;
    }
    case ReeKind::kPlus: {
      GQD_ASSIGN_OR_RETURN(
          BinaryRelation base,
          EvaluateReeImpl(graph, expression->children[0], cancel, budget));
      return TransitivePlus(base);
    }
    case ReeKind::kEq: {
      GQD_ASSIGN_OR_RETURN(
          BinaryRelation base,
          EvaluateReeImpl(graph, expression->children[0], cancel, budget));
      return base.EqRestrict(graph);
    }
    case ReeKind::kNeq: {
      GQD_ASSIGN_OR_RETURN(
          BinaryRelation base,
          EvaluateReeImpl(graph, expression->children[0], cancel, budget));
      return base.NeqRestrict(graph);
    }
  }
  assert(false && "unreachable");
  return BinaryRelation(n);
}

}  // namespace

BinaryRelation EvaluateRee(const DataGraph& graph, const ReePtr& expression) {
  GQD_TRACE_SPAN(span, "eval.ree");
  GQD_TRACE_SPAN_ATTR(span, "nodes", graph.NumNodes());
  return EvaluateReeImpl(graph, expression, nullptr, nullptr).ValueOrDie();
}

Result<BinaryRelation> EvaluateRee(const DataGraph& graph,
                                   const ReePtr& expression,
                                   const EvalOptions& options) {
  GQD_TRACE_SPAN(span, "eval.ree");
  GQD_TRACE_SPAN_ATTR(span, "nodes", graph.NumNodes());
  return EvaluateReeImpl(graph, expression, options.cancel, options.budget);
}

}  // namespace gqd
