#include "eval/ree_eval.h"

#include <cassert>

namespace gqd {

BinaryRelation EvaluateRee(const DataGraph& graph, const ReePtr& expression) {
  std::size_t n = graph.NumNodes();
  switch (expression->kind) {
    case ReeKind::kEpsilon:
      return BinaryRelation::Identity(n);
    case ReeKind::kLetter: {
      auto id = graph.labels().Find(expression->letter);
      if (!id.has_value()) {
        return BinaryRelation(n);
      }
      return BinaryRelation::FromEdges(graph, *id);
    }
    case ReeKind::kUnion: {
      BinaryRelation out(n);
      for (const ReePtr& child : expression->children) {
        out.UnionWith(EvaluateRee(graph, child));
      }
      return out;
    }
    case ReeKind::kConcat: {
      assert(!expression->children.empty());
      BinaryRelation out = EvaluateRee(graph, expression->children[0]);
      for (std::size_t i = 1; i < expression->children.size(); i++) {
        out = out.Compose(EvaluateRee(graph, expression->children[i]));
      }
      return out;
    }
    case ReeKind::kPlus:
      return TransitivePlus(EvaluateRee(graph, expression->children[0]));
    case ReeKind::kEq:
      return EvaluateRee(graph, expression->children[0]).EqRestrict(graph);
    case ReeKind::kNeq:
      return EvaluateRee(graph, expression->children[0]).NeqRestrict(graph);
  }
  assert(false && "unreachable");
  return BinaryRelation(n);
}

}  // namespace gqd
