#include "common/budget.h"

namespace gqd {

std::string PartialProgressToString(const PartialProgress& progress) {
  std::string out = "stage=";
  out += progress.stage.empty() ? "unknown" : progress.stage;
  out += " tuples_explored=" + std::to_string(progress.tuples_explored);
  out += " frontier_depth=" + std::to_string(progress.frontier_depth);
  out += " bytes_peak=" + std::to_string(progress.bytes_peak);
  return out;
}

}  // namespace gqd
