#include "common/budget.h"

namespace gqd {

const char* BudgetAxisName(BudgetAxis axis) {
  switch (axis) {
    case BudgetAxis::kBytes:
      return "bytes";
    case BudgetAxis::kTuples:
      return "tuples";
    case BudgetAxis::kWall:
      return "wall";
    case BudgetAxis::kNone:
      break;
  }
  return "none";
}

std::string PartialProgressToString(const PartialProgress& progress) {
  std::string out = "stage=";
  out += progress.stage.empty() ? "unknown" : progress.stage;
  out += " tuples_explored=" + std::to_string(progress.tuples_explored);
  out += " frontier_depth=" + std::to_string(progress.frontier_depth);
  out += " bytes_peak=" + std::to_string(progress.bytes_peak);
  return out;
}

}  // namespace gqd
