#include "common/thread_pool.h"

#include "common/failpoint.h"

namespace gqd {

namespace {

GQD_FAILPOINT_DEFINE(fp_thread_pool_dispatch, "thread_pool.dispatch");

/// Thread-local index of the worker running on this thread, or npos on
/// external threads; lets Submit() push to the caller's own queue.
thread_local std::size_t tls_worker_index =
    static_cast<std::size_t>(-1);
thread_local const ThreadPool* tls_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) {
      num_threads = 2;
    }
  }
  queues_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; i++) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; i++) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (GQD_FAILPOINT_FIRED(fp_thread_pool_dispatch)) {
    // Degradation, not loss: a failed dispatch runs the task inline on the
    // submitting thread, so every Submit still completes exactly once.
    task();
    std::lock_guard<std::mutex> lock(stats_mutex_);
    tasks_inline_++;
    return;
  }
  std::size_t target;
  if (tls_worker_pool == this) {
    target = tls_worker_index;  // keep recursive fan-out local
  } else {
    std::lock_guard<std::mutex> lock(submit_mutex_);
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    pending_++;
  }
  wake_cv_.notify_one();
}

std::function<void()> ThreadPool::TakeTask(std::size_t self, bool* stolen) {
  *stolen = false;
  {
    std::lock_guard<std::mutex> lock(queues_[self]->mutex);
    if (!queues_[self]->tasks.empty()) {
      std::function<void()> task = std::move(queues_[self]->tasks.back());
      queues_[self]->tasks.pop_back();
      return task;
    }
  }
  // Steal scan: start after self so victims rotate.
  for (std::size_t offset = 1; offset < queues_.size(); offset++) {
    std::size_t victim = (self + offset) % queues_.size();
    std::lock_guard<std::mutex> lock(queues_[victim]->mutex);
    if (!queues_[victim]->tasks.empty()) {
      std::function<void()> task = std::move(queues_[victim]->tasks.front());
      queues_[victim]->tasks.pop_front();
      *stolen = true;
      return task;
    }
  }
  return nullptr;
}

void ThreadPool::WorkerLoop(std::size_t self) {
  tls_worker_index = self;
  tls_worker_pool = this;
  while (true) {
    bool stolen = false;
    std::function<void()> task = TakeTask(self, &stolen);
    if (task == nullptr) {
      std::unique_lock<std::mutex> lock(wake_mutex_);
      wake_cv_.wait(lock, [this] { return stopping_ || pending_ > 0; });
      if (stopping_) {
        return;
      }
      continue;  // retry the take; another worker may have won the race
    }
    {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      pending_--;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      active_workers_++;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      active_workers_--;
      tasks_executed_++;
      if (stolen) {
        tasks_stolen_++;
      }
    }
  }
}

ThreadPool::Stats ThreadPool::GetStats() const {
  Stats stats;
  stats.num_threads = workers_.size();
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stats.queued_tasks = pending_;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats.active_workers = active_workers_;
    stats.tasks_executed = tasks_executed_;
    stats.tasks_stolen = tasks_stolen_;
    stats.tasks_inline = tasks_inline_;
  }
  return stats;
}

}  // namespace gqd
