// A fixed-size thread pool with per-worker work-stealing queues.
//
// Lives in common/ so both the serving layer (src/runtime/) and the
// algorithm layers can share it: the server fans batched requests across
// queries, and the k-REM definability checker fans the per-(store set,
// letter) successor generation of each BFS frontier across workers.
//
// The serving layer fans one batched request out across queries; each
// worker owns a deque it treats as a LIFO stack (good locality for the
// just-submitted work), and idle workers steal from the FIFO end of a
// random victim so long request bursts spread across cores. Submission
// round-robins across worker queues (or pushes to the submitting worker's
// own queue when called from inside the pool).
//
// The implementation favours obvious correctness over lock-free cleverness:
// every queue is mutex-protected (tasks here are milliseconds to hours, so
// enqueue costs are noise), and TSan runs the whole thing in CI
// (GQD_SANITIZE=thread).

#ifndef GQD_COMMON_THREAD_POOL_H_
#define GQD_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gqd {

class ThreadPool {
 public:
  /// Point-in-time view of pool activity (for ServerStats).
  struct Stats {
    std::size_t num_threads = 0;
    std::size_t active_workers = 0;   ///< workers currently running a task
    std::size_t queued_tasks = 0;     ///< submitted, not yet started
    std::uint64_t tasks_executed = 0; ///< completed since construction
    std::uint64_t tasks_stolen = 0;   ///< completed via a steal
    std::uint64_t tasks_inline = 0;   ///< degraded to the submitting thread
  };

  /// Spawns `num_threads` workers (>= 1; 0 means hardware concurrency).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains nothing: pending tasks are abandoned, running tasks are joined.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Never blocks; tasks must not throw.
  ///
  /// Graceful degradation: when the `thread_pool.dispatch` failpoint fires
  /// (simulating a dispatch failure / worker stall), the task runs inline
  /// on the submitting thread instead of being enqueued — slower, but every
  /// submitted task still completes exactly once.
  void Submit(std::function<void()> task);

  std::size_t num_threads() const { return workers_.size(); }

  Stats GetStats() const;

 private:
  struct WorkerQueue {
    mutable std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(std::size_t self);
  /// Pops from own stack, else steals; sets *stolen accordingly.
  std::function<void()> TakeTask(std::size_t self, bool* stolen);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  mutable std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::size_t pending_ = 0;  ///< guarded by wake_mutex_
  bool stopping_ = false;    ///< guarded by wake_mutex_

  mutable std::mutex stats_mutex_;
  std::size_t active_workers_ = 0;
  std::uint64_t tasks_executed_ = 0;
  std::uint64_t tasks_stolen_ = 0;
  std::uint64_t tasks_inline_ = 0;

  std::mutex submit_mutex_;
  std::size_t next_queue_ = 0;  ///< round-robin cursor, guarded above
};

}  // namespace gqd

#endif  // GQD_COMMON_THREAD_POOL_H_
