#include "common/bitset.h"

#include <bit>
#include <cassert>

namespace gqd {

void DynamicBitset::Clear() {
  for (auto& w : words_) {
    w = 0;
  }
}

std::size_t DynamicBitset::Count() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) {
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}

bool DynamicBitset::None() const {
  for (std::uint64_t w : words_) {
    if (w != 0) {
      return false;
    }
  }
  return true;
}

std::size_t DynamicBitset::FindNext(std::size_t from) const {
  if (from >= size_) {
    return size_;
  }
  std::size_t word_index = from >> 6;
  std::uint64_t word = words_[word_index] >> (from & 63);
  if (word != 0) {
    return from + static_cast<std::size_t>(std::countr_zero(word));
  }
  for (word_index++; word_index < words_.size(); word_index++) {
    if (words_[word_index] != 0) {
      return (word_index << 6) +
             static_cast<std::size_t>(std::countr_zero(words_[word_index]));
    }
  }
  return size_;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  assert(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); i++) {
    words_[i] |= other.words_[i];
  }
  return *this;
}

bool DynamicBitset::OrAssignAndTestChanged(const std::uint64_t* words,
                                           std::size_t num_words) {
  assert(num_words == words_.size());
  std::uint64_t changed = 0;
  for (std::size_t i = 0; i < num_words; i++) {
    std::uint64_t before = words_[i];
    std::uint64_t after = before | words[i];
    words_[i] = after;
    changed |= before ^ after;
  }
  return changed != 0;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  assert(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); i++) {
    words_[i] &= other.words_[i];
  }
  return *this;
}

DynamicBitset& DynamicBitset::operator-=(const DynamicBitset& other) {
  assert(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); i++) {
    words_[i] &= ~other.words_[i];
  }
  return *this;
}

bool DynamicBitset::IsSubsetOf(const DynamicBitset& other) const {
  assert(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); i++) {
    if ((words_[i] & ~other.words_[i]) != 0) {
      return false;
    }
  }
  return true;
}

bool DynamicBitset::Intersects(const DynamicBitset& other) const {
  assert(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); i++) {
    if ((words_[i] & other.words_[i]) != 0) {
      return true;
    }
  }
  return false;
}

bool DynamicBitset::operator<(const DynamicBitset& other) const {
  if (size_ != other.size_) {
    return size_ < other.size_;
  }
  return words_ < other.words_;
}

std::size_t DynamicBitset::Hash() const {
  std::size_t seed = size_;
  for (std::uint64_t w : words_) {
    seed = HashCombine(seed, static_cast<std::size_t>(w * 0xff51afd7ed558ccdULL));
  }
  return seed;
}

}  // namespace gqd
