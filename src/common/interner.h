// String interning: maps symbol names (edge labels, data-value names) to
// dense integer ids so the rest of the library works on small ints.

#ifndef GQD_COMMON_INTERNER_H_
#define GQD_COMMON_INTERNER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gqd {

/// Bidirectional string <-> dense id map. Ids are assigned in insertion
/// order starting at 0 and never change.
class StringInterner {
 public:
  /// Returns the id of `name`, interning it if new.
  std::uint32_t Intern(std::string_view name);

  /// Returns the id of `name` if already interned.
  std::optional<std::uint32_t> Find(std::string_view name) const;

  /// Returns the name for `id`; `id` must be < size().
  const std::string& NameOf(std::uint32_t id) const;

  std::size_t size() const { return names_.size(); }

  /// All interned names in id order.
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::vector<std::string> names_;
};

}  // namespace gqd

#endif  // GQD_COMMON_INTERNER_H_
