#include "common/json_util.h"

#include <cstdio>

namespace gqd {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonQuote(const std::string& text) {
  return "\"" + JsonEscape(text) + "\"";
}

}  // namespace gqd
