// Shared helpers for hand-rolled JSON emission.
//
// Several layers emit JSON without a serializer dependency (analysis
// diagnostics, graph info, the runtime service protocol); the escaping
// rules live here so they exist exactly once.

#ifndef GQD_COMMON_JSON_UTIL_H_
#define GQD_COMMON_JSON_UTIL_H_

#include <string>

namespace gqd {

/// Escapes a string for embedding in a JSON string literal (no quotes).
std::string JsonEscape(const std::string& text);

/// `"text"` with escaping — the quoted JSON string literal.
std::string JsonQuote(const std::string& text);

}  // namespace gqd

#endif  // GQD_COMMON_JSON_UTIL_H_
