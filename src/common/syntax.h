// Shared concrete-syntax helpers for the expression printers.

#ifndef GQD_COMMON_SYNTAX_H_
#define GQD_COMMON_SYNTAX_H_

#include <cctype>
#include <ostream>
#include <string>

namespace gqd {

/// True iff `name` can appear unquoted in expression syntax: a non-empty
/// run of [A-Za-z0-9_] that doesn't collide with a keyword.
inline bool IsPlainLabelName(const std::string& name) {
  if (name.empty() || name == "eps" || name == "T") {
    return false;
  }
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

/// Prints `name`, quoting it ('...') when it is not a plain identifier, so
/// the parsers can read it back.
inline void RenderLabelName(const std::string& name, std::ostream& os) {
  if (IsPlainLabelName(name)) {
    os << name;
  } else {
    os << "'" << name << "'";
  }
}

}  // namespace gqd

#endif  // GQD_COMMON_SYNTAX_H_
