#include "common/failpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

namespace gqd {
namespace {

// Splits `s` on `sep` without collapsing empty fields.
std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

bool ParseU64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

FailpointSite::FailpointSite(const char* name) : name_(name) {
  FailpointRegistry::Instance().Register(this);
}

void FailpointSite::Arm(Mode mode, std::uint64_t arg, std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  arg_ = arg;
  armed_hits_ = 0;
  rng_.seed(seed);
  mode_.store(mode, std::memory_order_relaxed);
}

bool FailpointSite::Fire() {
  hits_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t delay_ms = 0;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Mode mode = mode_.load(std::memory_order_relaxed);
    ++armed_hits_;
    switch (mode) {
      case Mode::kOff:
        break;
      case Mode::kFail:
        fire = true;
        break;
      case Mode::kFailOnce:
        fire = true;
        mode_.store(Mode::kOff, std::memory_order_relaxed);
        break;
      case Mode::kFailNth:
        if (armed_hits_ == arg_) {
          fire = true;
          mode_.store(Mode::kOff, std::memory_order_relaxed);
        }
        break;
      case Mode::kFailProb:
        fire = rng_() % 100 < arg_;
        break;
      case Mode::kDelayMs:
        delay_ms = arg_;
        break;
    }
  }
  // Sleep outside the lock so a delayed site does not serialize other hits.
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  if (fire) {
    fired_.fetch_add(1, std::memory_order_relaxed);
  }
  return fire;
}

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

FailpointRegistry::FailpointRegistry() {
  if (const char* env = std::getenv("GQD_FAILPOINTS")) {
    // Malformed env entries are ignored rather than fatal: the registry is
    // constructed during static init, where there is no good way to report.
    (void)Configure(env);
  }
}

void FailpointRegistry::Register(FailpointSite* site) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.push_back(site);
  for (const PendingConfig& config : pending_) {
    if (config.name == site->name()) {
      site->Arm(config.mode, config.arg, config.seed);
    }
  }
}

Status FailpointRegistry::Configure(const std::string& spec) {
  if (spec.empty()) return Status::OK();
  for (const std::string& entry : Split(spec, ',')) {
    if (entry.empty()) continue;
    PendingConfig config;
    GQD_RETURN_NOT_OK(ParseEntry(entry, &config));
    std::lock_guard<std::mutex> lock(mutex_);
    // Later entries for the same site replace earlier ones.
    pending_.erase(
        std::remove_if(pending_.begin(), pending_.end(),
                       [&](const PendingConfig& p) {
                         return p.name == config.name;
                       }),
        pending_.end());
    pending_.push_back(config);
    for (FailpointSite* site : sites_) {
      if (config.name == site->name()) {
        site->Arm(config.mode, config.arg, config.seed);
      }
    }
  }
  return Status::OK();
}

Status FailpointRegistry::ParseEntry(const std::string& entry,
                                     PendingConfig* config) const {
  std::vector<std::string> parts = Split(entry, ':');
  if (parts.size() < 2 || parts[0].empty()) {
    return Status::InvalidArgument("failpoint spec entry '" + entry +
                                   "' is not name:mode[:arg[:seed]]");
  }
  config->name = parts[0];
  config->arg = 0;
  config->seed = 0;
  const std::string& mode = parts[1];
  if (mode == "off") {
    config->mode = FailpointSite::Mode::kOff;
  } else if (mode == "fail") {
    config->mode = FailpointSite::Mode::kFail;
  } else if (mode == "fail-once") {
    config->mode = FailpointSite::Mode::kFailOnce;
  } else if (mode == "fail-nth") {
    config->mode = FailpointSite::Mode::kFailNth;
    if (parts.size() < 3 || !ParseU64(parts[2], &config->arg) ||
        config->arg == 0) {
      return Status::InvalidArgument("failpoint '" + entry +
                                     "': fail-nth needs a positive N");
    }
  } else if (mode == "fail-prob") {
    config->mode = FailpointSite::Mode::kFailProb;
    if (parts.size() < 3 || !ParseU64(parts[2], &config->arg) ||
        config->arg > 100) {
      return Status::InvalidArgument(
          "failpoint '" + entry + "': fail-prob needs a percent in [0,100]");
    }
    if (parts.size() >= 4 && !ParseU64(parts[3], &config->seed)) {
      return Status::InvalidArgument("failpoint '" + entry +
                                     "': fail-prob seed must be an integer");
    }
  } else if (mode == "delay-ms") {
    config->mode = FailpointSite::Mode::kDelayMs;
    if (parts.size() < 3 || !ParseU64(parts[2], &config->arg)) {
      return Status::InvalidArgument("failpoint '" + entry +
                                     "': delay-ms needs a millisecond count");
    }
  } else {
    return Status::InvalidArgument("failpoint '" + entry +
                                   "': unknown mode '" + mode + "'");
  }
  return Status::OK();
}

void FailpointRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_.clear();
  for (FailpointSite* site : sites_) {
    site->Disarm();
  }
}

std::vector<std::string> FailpointRegistry::SiteNames() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    names.reserve(sites_.size());
    for (const FailpointSite* site : sites_) {
      names.emplace_back(site->name());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

FailpointSite* FailpointRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (FailpointSite* site : sites_) {
    if (name == site->name()) return site;
  }
  return nullptr;
}

}  // namespace gqd
